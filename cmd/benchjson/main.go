// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for dashboards and regression tracking:
//
//	go test -bench=. -benchmem -short . | benchjson -o BENCH_20260806.json
//
// Each benchmark line becomes one record with its iteration count and
// every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units like mean_µs). Non-benchmark lines are ignored,
// so the full `go test` stream can be piped in unfiltered.
//
// Repeated samples of one benchmark (`-count=N`, or several runs
// concatenated) collapse to the sample with the lowest ns/op. The
// minimum is the standard noise estimator for wall-clock benchmarks: a
// sample can only be slowed down by scheduler preemption, frequency
// scaling, or GC pauses from neighbouring benchmarks, never sped up,
// so the fastest observation is the closest to the code's true cost.
// On a single-core CI box macro benchmarks jitter by tens of percent
// run to run; best-of-N keeps the regression gate about the code.
//
// With -compare it becomes the regression gate instead:
//
//	benchjson -compare old.json new.json
//
// exits 1 when any benchmark present in both documents got more than
// -threshold percent slower (ns/op) or allocates more per op than
// before, and 2 on usage or unreadable input. The allocs/op gate is
// zero-tolerance for zero-alloc baselines (the hot-path invariant this
// repo actually defends); for allocation-heavy macro benchmarks, whose
// counts jitter by a few parts per million from runtime internals, an
// increase must exceed 0.1% to fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	out := flag.String("o", "", "output file (default BENCH_<YYYYMMDD>.json)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON documents instead of converting")
	threshold := flag.Float64("threshold", 20, "ns/op slowdown (percent) tolerated by -compare")
	flag.Parse()
	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold, os.Stdout, os.Stderr))
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	}
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), path)
}

// Doc is the exported JSON shape.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkXxx-N  iters  metrics...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output. Repeated samples of one
// benchmark keep only the fastest (lowest ns/op) whole record — see
// the package comment for why min is the right fold.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		b, ok := parseBenchLine(line)
		if !ok {
			parseHeader(doc, line)
			continue
		}
		i, seen := index[b.Name]
		if !seen {
			index[b.Name] = len(doc.Benchmarks)
			doc.Benchmarks = append(doc.Benchmarks, b)
			continue
		}
		if b.Metrics["ns/op"] < doc.Benchmarks[i].Metrics["ns/op"] {
			doc.Benchmarks[i] = b
		}
	}
	return doc, sc.Err()
}

// parseHeader captures the goos/goarch/pkg/cpu preamble.
func parseHeader(doc *Doc, line string) {
	var s string
	if n, _ := fmt.Sscanf(line, "goos: %s", &s); n == 1 {
		doc.Goos = s
	} else if n, _ := fmt.Sscanf(line, "goarch: %s", &s); n == 1 {
		doc.Goarch = s
	} else if n, _ := fmt.Sscanf(line, "pkg: %s", &s); n == 1 {
		doc.Pkg = s
	} else if len(line) > 5 && line[:5] == "cpu: " {
		doc.CPU = line[5:]
	}
}

// Regression is one benchmark that got worse between two documents.
type Regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
	Pct    float64 // percent change (ns/op only)
}

func (r Regression) String() string {
	if r.Metric == "allocs/op" {
		return fmt.Sprintf("%s: allocs/op %.0f -> %.0f", r.Name, r.Old, r.New)
	}
	return fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%%)", r.Name, r.Old, r.New, r.Pct)
}

// allocNoisePct is the relative allocs/op increase tolerated on
// benchmarks whose baseline already allocates: macro benchmarks jitter
// by a handful of allocations out of millions (map growth timing,
// runtime internals), and a real regression — one extra allocation per
// frame or per event — clears 0.1% by orders of magnitude. Zero-alloc
// baselines get no tolerance at all.
const allocNoisePct = 0.1

// Compare judges cur against base: benchmarks present in both are
// checked for a >thresholdPct ns/op slowdown and for an allocs/op
// increase (any increase on a zero-alloc baseline, >allocNoisePct
// otherwise). Benchmarks that exist on only one side are reported in
// added/removed but never fail the gate — the suite is allowed to grow.
func Compare(base, cur *Doc, thresholdPct float64) (regs []Regression, added, removed []string) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
		old, ok := baseBy[b.Name]
		if !ok {
			added = append(added, b.Name)
			continue
		}
		if ons, ok1 := old.Metrics["ns/op"]; ok1 && ons > 0 {
			if nns, ok2 := b.Metrics["ns/op"]; ok2 {
				pct := (nns - ons) / ons * 100
				if pct > thresholdPct {
					regs = append(regs, Regression{Name: b.Name, Metric: "ns/op", Old: ons, New: nns, Pct: pct})
				}
			}
		}
		if oal, ok1 := old.Metrics["allocs/op"]; ok1 {
			if nal, ok2 := b.Metrics["allocs/op"]; ok2 && nal > oal {
				if oal == 0 || (nal-oal)/oal*100 > allocNoisePct {
					regs = append(regs, Regression{Name: b.Name, Metric: "allocs/op", Old: oal, New: nal})
				}
			}
		}
	}
	for _, b := range base.Benchmarks {
		if _, ok := curBy[b.Name]; !ok {
			removed = append(removed, b.Name)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(added)
	sort.Strings(removed)
	return regs, added, removed
}

// runCompare implements `benchjson -compare old.json new.json` and
// returns the process exit code: 0 clean, 1 regression, 2 usage/IO.
func runCompare(args []string, thresholdPct float64, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "benchjson: usage: benchjson -compare [-threshold pct] old.json new.json")
		return 2
	}
	base, err := readDoc(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	cur, err := readDoc(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	regs, added, removed := Compare(base, cur, thresholdPct)
	for _, name := range added {
		fmt.Fprintf(stdout, "new benchmark: %s\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(stdout, "missing benchmark: %s (was in baseline)\n", name)
	}
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "benchjson: %d benchmarks compared, no regressions (threshold %.0f%% ns/op, %.1f%% allocs/op)\n",
			len(cur.Benchmarks), thresholdPct, allocNoisePct)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(stdout, "REGRESSION %s\n", r)
	}
	fmt.Fprintf(stderr, "benchjson: %d regression(s)\n", len(regs))
	return 1
}

// readDoc loads one benchmark JSON document.
func readDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFrameCodec-8   1201886   996.5 ns/op   0 B/op   0 allocs/op
//
// Metric values and units come in pairs after the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
