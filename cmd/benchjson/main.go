// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for dashboards and regression tracking:
//
//	go test -bench=. -benchmem -short . | benchjson -o BENCH_20260806.json
//
// Each benchmark line becomes one record with its iteration count and
// every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units like mean_µs). Non-benchmark lines are ignored,
// so the full `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

func main() {
	out := flag.String("o", "", "output file (default BENCH_<YYYYMMDD>.json)")
	flag.Parse()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	}
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), path)
}

// Doc is the exported JSON shape.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkXxx-N  iters  metrics...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
			continue
		}
		parseHeader(doc, line)
	}
	return doc, sc.Err()
}

// parseHeader captures the goos/goarch/pkg/cpu preamble.
func parseHeader(doc *Doc, line string) {
	var s string
	if n, _ := fmt.Sscanf(line, "goos: %s", &s); n == 1 {
		doc.Goos = s
	} else if n, _ := fmt.Sscanf(line, "goarch: %s", &s); n == 1 {
		doc.Goarch = s
	} else if n, _ := fmt.Sscanf(line, "pkg: %s", &s); n == 1 {
		doc.Pkg = s
	} else if len(line) > 5 && line[:5] == "cpu: " {
		doc.CPU = line[5:]
	}
}

// parseBenchLine parses one result line:
//
//	BenchmarkFrameCodec-8   1201886   996.5 ns/op   0 B/op   0 allocs/op
//
// Metric values and units come in pairs after the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
