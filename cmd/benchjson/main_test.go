package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/tsnbuilder/tsnbuilder
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkFrameCodec-8   	 1201886	       996.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig7Hops-8     	       1	1803442511 ns/op	       195.1 mean_µs	       2.12 jitter_µs	       0 loss_%
--- BENCH: BenchmarkSomething
    bench_test.go:42: note
PASS
ok  	github.com/tsnbuilder/tsnbuilder	12.3s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("header: got %q/%q", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/tsnbuilder/tsnbuilder" {
		t.Errorf("pkg: got %q", doc.Pkg)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu: got %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	fc := doc.Benchmarks[0]
	if fc.Name != "BenchmarkFrameCodec-8" || fc.Iterations != 1201886 {
		t.Errorf("codec record: %+v", fc)
	}
	if fc.Metrics["ns/op"] != 996.5 || fc.Metrics["allocs/op"] != 0 {
		t.Errorf("codec metrics: %+v", fc.Metrics)
	}
	fig := doc.Benchmarks[1]
	if fig.Metrics["mean_µs"] != 195.1 || fig.Metrics["jitter_µs"] != 2.12 {
		t.Errorf("custom metrics lost: %+v", fig.Metrics)
	}
}

func TestParseBestOfN(t *testing.T) {
	// -count=3 style repeats collapse to the fastest whole record —
	// the slow middle sample's custom metrics must not leak through.
	doc, err := Parse(strings.NewReader(`
BenchmarkX-8   100   300.0 ns/op   5 B/op   1 allocs/op   7.0 mean_µs
BenchmarkX-8   100   500.0 ns/op   9 B/op   2 allocs/op   9.0 mean_µs
BenchmarkX-8   200   250.0 ns/op   4 B/op   1 allocs/op   6.5 mean_µs
BenchmarkY-8   100   100.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("want 2 collapsed benchmarks, got %+v", doc.Benchmarks)
	}
	x := doc.Benchmarks[0]
	if x.Name != "BenchmarkX-8" || x.Iterations != 200 {
		t.Errorf("kept wrong sample: %+v", x)
	}
	if x.Metrics["ns/op"] != 250 || x.Metrics["B/op"] != 4 || x.Metrics["mean_µs"] != 6.5 {
		t.Errorf("metrics not from the fastest sample: %+v", x.Metrics)
	}
	if doc.Benchmarks[1].Name != "BenchmarkY-8" {
		t.Errorf("single-sample benchmark lost: %+v", doc.Benchmarks[1])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmark\nBenchmarkX notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("want 0 benchmarks, got %+v", doc.Benchmarks)
	}
}

func docOf(benches ...Benchmark) *Doc { return &Doc{Benchmarks: benches} }

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 100, Metrics: map[string]float64{
		"ns/op": ns, "allocs/op": allocs,
	}}
}

func TestCompareClean(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 2), bench("BenchmarkB", 50, 0))
	cur := docOf(bench("BenchmarkA", 110, 2), bench("BenchmarkB", 45, 0))
	regs, added, removed := Compare(base, cur, 20)
	if len(regs) != 0 || len(added) != 0 || len(removed) != 0 {
		t.Fatalf("regs=%v added=%v removed=%v", regs, added, removed)
	}
}

func TestCompareNsOpRegression(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 0))
	cur := docOf(bench("BenchmarkA", 121, 0)) // +21% > 20% threshold
	regs, _, _ := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regs = %v", regs)
	}
	if regs[0].Pct < 20.9 || regs[0].Pct > 21.1 {
		t.Fatalf("pct = %v", regs[0].Pct)
	}
	// Exactly at the threshold passes: the gate is strictly greater.
	cur = docOf(bench("BenchmarkA", 120, 0))
	if regs, _, _ := Compare(base, cur, 20); len(regs) != 0 {
		t.Fatalf("at-threshold flagged: %v", regs)
	}
}

func TestCompareAnyAllocIncreaseFails(t *testing.T) {
	base := docOf(bench("BenchmarkHot", 100, 0))
	cur := docOf(bench("BenchmarkHot", 100, 1))
	regs, _, _ := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v", regs)
	}
	// Alloc decreases are fine.
	base = docOf(bench("BenchmarkHot", 100, 5))
	cur = docOf(bench("BenchmarkHot", 100, 3))
	if regs, _, _ := Compare(base, cur, 20); len(regs) != 0 {
		t.Fatalf("alloc decrease flagged: %v", regs)
	}
}

func TestCompareAllocNoiseFloor(t *testing.T) {
	// Ppm-scale jitter on an allocation-heavy macro benchmark passes:
	// +3 allocs on a 1.3M-alloc baseline is runtime noise, not a leak.
	base := docOf(bench("BenchmarkMacro", 100, 1_300_000))
	cur := docOf(bench("BenchmarkMacro", 100, 1_300_003))
	if regs, _, _ := Compare(base, cur, 20); len(regs) != 0 {
		t.Fatalf("noise-scale alloc jitter flagged: %v", regs)
	}
	// A real regression — well past 0.1% — still fails.
	cur = docOf(bench("BenchmarkMacro", 100, 1_320_000))
	regs, _, _ := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("1.5%% alloc growth not flagged: %v", regs)
	}
	// Zero-alloc baselines stay zero-tolerance even for +1.
	base = docOf(bench("BenchmarkHot", 100, 0))
	cur = docOf(bench("BenchmarkHot", 100, 1))
	if regs, _, _ := Compare(base, cur, 20); len(regs) != 1 {
		t.Fatalf("zero-alloc baseline increase not flagged: %v", regs)
	}
}

func TestCompareAddedRemovedNeverFail(t *testing.T) {
	base := docOf(bench("BenchmarkOld", 100, 0))
	cur := docOf(bench("BenchmarkNew", 9999, 50))
	regs, added, removed := Compare(base, cur, 20)
	if len(regs) != 0 {
		t.Fatalf("disjoint sets produced regressions: %v", regs)
	}
	if len(added) != 1 || added[0] != "BenchmarkNew" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "BenchmarkOld" {
		t.Fatalf("removed = %v", removed)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc *Doc) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", docOf(bench("BenchmarkA", 100, 0)))
	same := write("same.json", docOf(bench("BenchmarkA", 100, 0)))
	slow := write("slow.json", docOf(bench("BenchmarkA", 200, 0)))

	var out, errw strings.Builder
	if code := runCompare([]string{old, same}, 20, &out, &errw); code != 0 {
		t.Fatalf("clean compare exit %d: %s%s", code, out.String(), errw.String())
	}
	if code := runCompare([]string{old, slow}, 20, &out, &errw); code != 1 {
		t.Fatalf("regressed compare exit %d", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("no REGRESSION line in output: %s", out.String())
	}
	if code := runCompare([]string{old}, 20, &out, &errw); code != 2 {
		t.Fatalf("usage error exit %d", code)
	}
	if code := runCompare([]string{old, filepath.Join(dir, "missing.json")}, 20, &out, &errw); code != 2 {
		t.Fatalf("missing file exit %d", code)
	}
}
