package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/tsnbuilder/tsnbuilder
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkFrameCodec-8   	 1201886	       996.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig7Hops-8     	       1	1803442511 ns/op	       195.1 mean_µs	       2.12 jitter_µs	       0 loss_%
--- BENCH: BenchmarkSomething
    bench_test.go:42: note
PASS
ok  	github.com/tsnbuilder/tsnbuilder	12.3s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("header: got %q/%q", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/tsnbuilder/tsnbuilder" {
		t.Errorf("pkg: got %q", doc.Pkg)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu: got %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	fc := doc.Benchmarks[0]
	if fc.Name != "BenchmarkFrameCodec-8" || fc.Iterations != 1201886 {
		t.Errorf("codec record: %+v", fc)
	}
	if fc.Metrics["ns/op"] != 996.5 || fc.Metrics["allocs/op"] != 0 {
		t.Errorf("codec metrics: %+v", fc.Metrics)
	}
	fig := doc.Benchmarks[1]
	if fig.Metrics["mean_µs"] != 195.1 || fig.Metrics["jitter_µs"] != 2.12 {
		t.Errorf("custom metrics lost: %+v", fig.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmark\nBenchmarkX notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("want 0 benchmarks, got %+v", doc.Benchmarks)
	}
}
