package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []string{"star", "ring", "linear"} {
		if err := run(topo, 6, 3, 64, 2, 10, 64, 65, "fpga", false); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunASICPlatform(t *testing.T) {
	if err := run("ring", 6, 3, 32, 2, 10, 64, 65, "asic", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommercialOnly(t *testing.T) {
	if err := run("ring", 6, 3, 32, 2, 10, 64, 65, "fpga", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("mesh", 6, 3, 32, 2, 10, 64, 65, "fpga", false); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("ring", 6, 3, 32, 2, 10, 64, 65, "tpu", false); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRunSpec(t *testing.T) {
	doc := `{"topology":"linear","switches":4,"hosts":{"a":0,"b":3},
		"flows":[{"class":"TS","count":8,"src":"a","dst":"b","period_us":10000}]}`
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(path, "fpga"); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(filepath.Join(dir, "missing.json"), "fpga"); err == nil {
		t.Error("missing spec accepted")
	}
	if err := runSpec(path, "tpu"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRunSpecExampleFile(t *testing.T) {
	// The checked-in example scenario must stay derivable.
	path := filepath.Join("..", "..", "examples", "scenarios", "production-line.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("example scenario not present")
	}
	if err := runSpec(path, "fpga"); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeTopology(t *testing.T) {
	if err := run("tree", 0, 2, 64, 3, 10, 64, 65, "fpga", false); err != nil {
		t.Fatal(err)
	}
}
