// Command tsnbuild is the TSN-Builder customization front end: it takes
// an application scenario (topology shape + flow features) on the
// command line, derives the resource parameters per the paper's §III.C
// guidelines, prices them on the chosen platform and prints the
// resource report next to the commercial (BCM53154) baseline.
//
// Example:
//
//	tsnbuild -topology ring -switches 6 -flows 1024 -hops 3
//	tsnbuild -topology star -children 3 -flows 1024 -platform asic
//	tsnbuild -commercial
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tsnbuilder/tsnbuilder/internal/scenariofile"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func main() {
	var (
		topoKind   = flag.String("topology", "ring", "topology kind: star, ring, linear or tree")
		switches   = flag.Int("switches", 6, "switch count (ring/linear)")
		children   = flag.Int("children", 3, "child count (star)")
		flowCount  = flag.Int("flows", 1024, "number of TS flows")
		hops       = flag.Int("hops", 3, "switches each flow traverses")
		periodMs   = flag.Int("period", 10, "TS flow period in ms")
		wireSize   = flag.Int("size", 64, "TS frame size in bytes")
		slotUs     = flag.Int("slot", 65, "CQF slot size in µs")
		platform   = flag.String("platform", "fpga", "cost model: fpga or asic")
		commercial = flag.Bool("commercial", false, "print only the commercial baseline")
		spec       = flag.String("spec", "", "JSON scenario file (overrides the workload flags)")
	)
	flag.Parse()
	var err error
	if *spec != "" {
		err = runSpec(*spec, *platform)
	} else {
		err = run(*topoKind, *switches, *children, *flowCount, *hops,
			*periodMs, *wireSize, *slotUs, *platform, *commercial)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsnbuild:", err)
		os.Exit(1)
	}
}

// runSpec derives and prices the design described by a scenario file.
func runSpec(path, platformName string) error {
	platform, err := platformFor(platformName)
	if err != nil {
		return err
	}
	file, err := scenariofile.Load(path)
	if err != nil {
		return err
	}
	sc, err := file.Scenario()
	if err != nil {
		return err
	}
	der, err := tsnbuilder.DeriveConfig(sc)
	if err != nil {
		return err
	}
	design, err := tsnbuilder.BuilderFor(der.Config, platform).Build()
	if err != nil {
		return err
	}
	base, err := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), platform).Build()
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s: %d flows, %d-switch %s\n",
		path, len(sc.Flows), sc.Topo.N, sc.Topo.Kind)
	fmt.Printf("ITP plan: worst queue occupancy %d → depth %d, %d buffers/port\n\n",
		der.Plan.MaxOccupancy, der.Config.QueueDepth, der.Config.BufferNum)
	fmt.Print(design.Report.String())
	fmt.Printf("\nreduction vs commercial: %.2f%%\n", 100*design.Report.ReductionVs(base.Report))
	return nil
}

func platformFor(name string) (tsnbuilder.Platform, error) {
	switch name {
	case "fpga":
		return tsnbuilder.FPGA{}, nil
	case "asic":
		return tsnbuilder.ASIC{}, nil
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}

func run(topoKind string, switches, children, flowCount, hops,
	periodMs, wireSize, slotUs int, platformName string, commercialOnly bool) error {

	platform, err := platformFor(platformName)
	if err != nil {
		return err
	}

	base, err := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), platform).Build()
	if err != nil {
		return err
	}
	if commercialOnly {
		fmt.Print(base.Report.String())
		return nil
	}

	var topo *tsnbuilder.Topology
	switch topoKind {
	case "star":
		topo = tsnbuilder.Star(children)
	case "ring":
		topo = tsnbuilder.Ring(switches)
	case "linear":
		topo = tsnbuilder.Linear(switches)
	case "tree":
		topo = tsnbuilder.Tree(children, 2)
	default:
		return fmt.Errorf("unknown topology %q", topoKind)
	}
	n := topo.N
	for h := 0; h < n; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    flowCount,
		Period:   tsnbuilder.Time(periodMs) * tsnbuilder.Millisecond,
		WireSize: wireSize,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % n
			return 100 + src, 100 + (src+hops)%n
		},
		Seed: 42,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		return err
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{
		Topo:     topo,
		Flows:    specs,
		SlotSize: tsnbuilder.Time(slotUs) * tsnbuilder.Microsecond,
	})
	if err != nil {
		return err
	}
	design, err := tsnbuilder.BuilderFor(der.Config, platform).Build()
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d TS flows, period %dms, %dB frames, %d-switch %s, slot %dµs\n",
		flowCount, periodMs, wireSize, n, topoKind, slotUs)
	fmt.Printf("ITP plan: worst queue occupancy %d → depth %d, %d buffers/port\n\n",
		der.Plan.MaxOccupancy, der.Config.QueueDepth, der.Config.BufferNum)
	fmt.Print(design.Report.String())
	fmt.Println()
	fmt.Print(base.Report.String())
	fmt.Printf("\nreduction vs commercial: %.2f%%\n", 100*design.Report.ReductionVs(base.Report))
	return nil
}
