package main

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/experiments"
)

func tiny() experiments.Params {
	return experiments.Params{TSFlows: 32, Duration: 10_000_000, Seed: 42}
}

func TestRunCheapExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "table3", "sync", "itp", "platform"} {
		if err := run(exp, tiny()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	for _, exp := range []string{"fig7a", "fig7c", "qos", "tas", "sms"} {
		if err := run(exp, tiny()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
