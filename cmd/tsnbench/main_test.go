package main

import (
	"net/http"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/experiments"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

func tiny() experiments.Params {
	return experiments.Params{TSFlows: 32, Duration: 10_000_000, Seed: 42}
}

func TestRunCheapExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "table3", "sync", "itp", "platform"} {
		if err := run(exp, tiny()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	for _, exp := range []string{"fig7a", "fig7c", "qos", "tas", "sms"} {
		if err := run(exp, tiny()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestServeTelemetryGracefulDrain checks the -serve exit path: the
// server answers /metrics while held, drainTelemetry shuts it down
// cleanly, and the listener stops accepting afterwards.
func TestServeTelemetryGracefulDrain(t *testing.T) {
	oldPublish, oldDrain := publishTelemetry, drainTelemetry
	defer func() { publishTelemetry, drainTelemetry = oldPublish, oldDrain }()

	addr, err := serveTelemetry("127.0.0.1:0", metrics.New())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d before drain", resp.StatusCode)
	}
	if err := drainTelemetry(); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if resp, err := http.Get(base + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting connections after drain")
	}
}
