// Command tsnbench regenerates the paper's tables and figures.
//
//	tsnbench -exp all          # everything, paper scale
//	tsnbench -exp table3       # just Table III
//	tsnbench -exp fig7a -short # reduced workload
//	tsnbench -exp all -parallel 1  # force fully serial sweeps
//
// Experiments: table1, fig2, table3, fig7a, fig7b, fig7c, fig7d, qos,
// sync, itp, scale, platform, all.
//
// Sweep points (independent build-and-run simulations) fan out on a
// worker pool sized by -parallel (default GOMAXPROCS). Output is
// byte-identical at every -parallel setting, including -metrics and
// -csv exports: every sweep collects its rows and merges its telemetry
// in sweep order regardless of worker scheduling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/experiments"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1 fig2 table3 fig7a fig7b fig7c fig7d qos sync itp tas threshold sms desync deadline cbs preempt rate scale platform all)")
		short    = flag.Bool("short", false, "reduced workload for quick runs")
		seed     = flag.Uint64("seed", 42, "workload seed")
		csvDir   = flag.String("csv", "", "also write each latency series as CSV into this directory")
		metPath  = flag.String("metrics", "", "write accumulated telemetry (all runs, one registry) to this file ('-' for stdout)")
		metJSON  = flag.Bool("metrics-json", false, "export -metrics as JSON instead of Prometheus text")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size (1 = serial; output is identical at any setting)")
		serve    = flag.String("serve", "", "serve accumulated telemetry (/metrics) and /debug/pprof on this address; holds after completion until interrupted")
	)
	flag.Parse()
	p := experiments.DefaultParams()
	if *short {
		p = experiments.ShortParams()
	}
	p.Seed = *seed
	p.Parallel = *parallel
	if *metPath != "" || *serve != "" {
		p.Metrics = metrics.New()
	}
	if *serve != "" {
		if _, err := serveTelemetry(*serve, p.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "tsnbench:", err)
			os.Exit(1)
		}
	}
	csvOut = *csvDir
	if err := run(*exp, p); err != nil {
		fmt.Fprintln(os.Stderr, "tsnbench:", err)
		os.Exit(1)
	}
	publishTelemetry()
	if *metPath != "" {
		if err := writeMetrics(p.Metrics, *metPath, *metJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tsnbench:", err)
			os.Exit(1)
		}
	}
	if *serve != "" {
		fmt.Println("telemetry: holding final state — interrupt to exit")
		<-benchSignals()
		if err := drainTelemetry(); err != nil {
			// The server is down either way; an interrupted hold after a
			// successful run still exits 0.
			fmt.Println("telemetry: drain timed out, connections force-closed:", err)
		}
	}
}

// benchSignals returns the channel the -serve hold blocks on
// (SIGINT/SIGTERM); tests swap it for a channel they control.
var benchSignals = func() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

// publishTelemetry refreshes the served snapshot; a no-op without
// -serve. It only runs at quiescent points (between experiment
// sections), so it never races the sweeps' hot-path registry writes.
var publishTelemetry = func() {}

// drainTelemetry gracefully shuts the telemetry server down, draining
// in-flight requests; a no-op without -serve.
var drainTelemetry = func() error { return nil }

// telemetryDrainTimeout bounds how long the exit path waits for
// in-flight requests before force-closing their connections.
const telemetryDrainTimeout = 5 * time.Second

// serveTelemetry starts the telemetry server over the accumulated
// experiment registry — /metrics refreshes after every emitted series,
// /debug/pprof profiles the runner itself live. It returns the bound
// address and arms drainTelemetry for the graceful exit path.
func serveTelemetry(addr string, reg *metrics.Registry) (string, error) {
	srv := obs.NewServer(nil, nil, nil)
	srv.Publish(reg.Snapshot())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("telemetry: live on http://%s (/metrics /debug/pprof)\n", ln.Addr())
	publishTelemetry = func() { srv.Publish(reg.Snapshot()) }
	drainTelemetry = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), telemetryDrainTimeout)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), nil
}

// writeMetrics dumps the registry to path ("-" = stdout).
func writeMetrics(reg *metrics.Registry, path string, asJSON bool) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	snap := reg.Snapshot()
	if asJSON {
		return snap.WriteJSON(w)
	}
	return snap.WritePrometheus(w)
}

// csvOut, when set, receives one CSV file per latency series.
var csvOut string

// emitSeries prints a series and optionally writes its CSV.
func emitSeries(id string, s *experiments.Series) error {
	fmt.Println(s.String())
	publishTelemetry()
	if csvOut == "" {
		return nil
	}
	if err := os.MkdirAll(csvOut, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(csvOut, id+".csv"), []byte(s.CSV()), 0o644)
}

func run(exp string, p experiments.Params) error {
	all := exp == "all"
	did := false

	if all || exp == "table1" {
		did = true
		fmt.Print(experiments.FormatTableI(experiments.TableI()))
		fmt.Println()
	}
	if all || exp == "fig2" {
		did = true
		for _, bg := range []string{"BE", "RC"} {
			for _, cse := range []int{1, 2} {
				s, err := experiments.Fig2(p, bg, cse)
				if err != nil {
					return err
				}
				if err := emitSeries(fmt.Sprintf("fig2-%s-case%d", bg, cse), s); err != nil {
					return err
				}
			}
		}
	}
	if all || exp == "table3" {
		did = true
		cols, err := experiments.TableIII()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableIII(cols))
	}
	figs := map[string]func(experiments.Params) (*experiments.Series, error){
		"fig7a": experiments.Fig7Hops,
		"fig7b": experiments.Fig7PktSize,
		"fig7c": experiments.Fig7Slot,
		"fig7d": experiments.Fig7Background,
		"qos":   experiments.CommercialVsCustomizedQoS,
	}
	for _, id := range []string{"fig7a", "fig7b", "fig7c", "fig7d", "qos"} {
		if all || exp == id {
			did = true
			s, err := figs[id](p)
			if err != nil {
				return err
			}
			if err := emitSeries(id, s); err != nil {
				return err
			}
		}
	}
	if all || exp == "sync" {
		did = true
		res := experiments.SyncPrecision(p.Seed)
		fmt.Printf("E-SYNC — gPTP precision (6-switch ring, ±50ppm oscillators)\n")
		fmt.Printf("  steady-state worst offset: %v (target < 50ns)\n", res.SteadyState)
		fmt.Printf("  converged after:           %v\n\n", res.ConvergedAfter)
	}
	if all || exp == "itp" {
		did = true
		rows, err := experiments.ITPAblation(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatITP(rows))
		fmt.Println()
	}
	if all || exp == "tas" {
		did = true
		rows, err := experiments.TASvsCQF(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTAS(rows))
		fmt.Println()
	}
	if all || exp == "threshold" {
		did = true
		rows, err := experiments.ThresholdStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThreshold(rows))
		planned, naive, err := experiments.NoITPStudy(p, 6)
		if err != nil {
			return err
		}
		fmt.Printf("  with depth 6: planned-injection loss %.2f%%, naive-injection loss %.2f%% (highwater %d vs %d)\n\n",
			100*planned.TSLossRate, 100*naive.TSLossRate, planned.HighWater, naive.HighWater)
	}
	if all || exp == "cbs" {
		did = true
		rows, err := experiments.CBSStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCBS(rows))
		fmt.Println()
	}
	if all || exp == "deadline" {
		did = true
		rows, err := experiments.DeadlineStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatDeadline(rows))
		fmt.Println()
	}
	if all || exp == "desync" {
		did = true
		rows, err := experiments.DesyncStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatDesync(rows))
		fmt.Println()
	}
	if all || exp == "sms" {
		did = true
		rows, err := experiments.SMSStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSMS(rows))
		fmt.Println()
	}
	if all || exp == "preempt" {
		did = true
		rows, err := experiments.PreemptStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPreempt(rows))
		fmt.Println()
	}
	if all || exp == "rate" {
		did = true
		rows, err := experiments.RateStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRate(rows))
		fmt.Println()
	}
	if all || exp == "scale" {
		did = true
		rows, err := experiments.ScaleStudy(p)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScale(rows))
		fmt.Println()
	}
	if all || exp == "platform" {
		did = true
		rows, err := experiments.PlatformAblation()
		if err != nil {
			return err
		}
		fmt.Println("E-PLATFORM — same customization, different cost models (ring config)")
		for _, r := range rows {
			fmt.Printf("  %-10s %8.1fKb\n", r.Platform, r.TotalKb)
		}
		fmt.Println()
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
