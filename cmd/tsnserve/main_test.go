package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// TestServeAndSIGTERMDrain boots the daemon on an ephemeral port,
// exercises the API, then delivers the (swapped) SIGTERM and checks the
// run loop drains and returns nil — the graceful-exit contract.
func TestServeAndSIGTERMDrain(t *testing.T) {
	addr := freePort(t)
	sig := make(chan os.Signal, 1)
	oldSignals := serveSignals
	serveSignals = func() <-chan os.Signal { return sig }
	defer func() { serveSignals = oldSignals }()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", addr, "-switches", "2", "-ts-flows", "4"})
	}()
	base := "http://" + addr
	waitReady(t, base)

	resp, err := http.Post(base+"/v1/derive", "application/json",
		strings.NewReader(`{"topology":"linear","switches":3,"ts_flows":8}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("derive: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Post(base+"/v1/reconfig", "application/json",
		strings.NewReader(`{"meter_size":64}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconfig: %d %s", resp.StatusCode, body)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
	// The listener is actually gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}

// TestStateDirSurvivesRestart is the README quickstart as a test: boot
// with -state-dir, commit a reconfiguration, drain on SIGTERM, boot a
// second life on the same directory and find the journal intact and
// the committed configuration back in force.
func TestStateDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	life := func(check func(base string)) {
		addr := freePort(t)
		sig := make(chan os.Signal, 1)
		oldSignals := serveSignals
		serveSignals = func() <-chan os.Signal { return sig }
		defer func() { serveSignals = oldSignals }()
		runErr := make(chan error, 1)
		go func() {
			runErr <- run([]string{"-addr", addr, "-switches", "2", "-ts-flows", "4", "-state-dir", dir})
		}()
		waitReady(t, "http://"+addr)
		check("http://" + addr)
		sig <- syscall.SIGTERM
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("run after SIGTERM: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain within 30s of SIGTERM")
		}
	}

	life(func(base string) {
		resp, err := http.Post(base+"/v1/reconfig", "application/json",
			strings.NewReader(`{"meter_size":64}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconfig: %d %s", resp.StatusCode, body)
		}
	})
	life(func(base string) {
		resp, err := http.Get(base + "/v1/journal")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"seq":1`) {
			t.Fatalf("restarted journal: %d %s", resp.StatusCode, body)
		}
		resp, err = http.Get(base + "/v1/config")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), `"meter_size":64`) {
			t.Fatalf("restarted config lost the committed meter_size: %s", body)
		}
	})
}

// TestChaosModeSmoke runs a tiny chaos campaign through the CLI path
// and expects a clean verdict.
func TestChaosModeSmoke(t *testing.T) {
	err := run([]string{
		"-chaos", "-chaos-requests", "60", "-chaos-clients", "4",
		"-switches", "2", "-ts-flows", "6", "-chaos-budget-s", "60",
	})
	if err != nil {
		t.Fatalf("chaos mode: %v", err)
	}
}

func TestParseFlagsRejectsGarbage(t *testing.T) {
	if _, err := parseFlags([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	o, err := parseFlags([]string{"-addr", "127.0.0.1:1234", "-topology", "ring"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:1234" || o.workload().Topology != "ring" {
		t.Fatalf("flags not applied: %+v", o)
	}
	if fmt.Sprintf("%v", o.svcOptions().DeriveDeadline) != "2s" {
		t.Fatalf("default derive deadline: %v", o.svcOptions().DeriveDeadline)
	}
}
