// Command tsnserve is the TSN-as-a-Service control plane daemon: it
// manages one long-running simulated switch network and serves the
// northbound HTTP API over it.
//
//	POST /v1/derive    application spec → derived switch configuration
//	POST /v1/reconfig  delta → transactional live reconfiguration
//	GET  /v1/config    the configuration in force
//	GET  /v1/journal   the committed-transaction journal
//	GET  /healthz      liveness + watchdog/verification health
//	GET  /readyz       readiness (breaker, queues, drain state)
//	GET  /metrics      Prometheus exposition (service + simulation)
//
// The daemon is built for overload: bounded admission queues shed with
// 429 before anything melts, per-request deadlines propagate, a circuit
// breaker guards the reconfiguration path, and SIGTERM drains in-flight
// requests before the managed instance stops.
//
// With -chaos the daemon instead builds a service in-process, attacks
// it with the fixed-seed concurrent chaos campaign and exits non-zero
// on any oracle violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/chaos"
	"github.com/tsnbuilder/tsnbuilder/internal/svc"
	"github.com/tsnbuilder/tsnbuilder/internal/wal"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

type options struct {
	addr string

	topology string
	switches int
	tsFlows  int
	hops     int
	wireSize int
	slotUs   int
	seed     uint64

	cacheSize     int
	deriveConc    int
	deriveQueue   int
	reconfigQueue int
	deriveMs      int
	reconfigMs    int
	breakerTrips  int
	breakerCoolMs int
	retryMax      int
	retryUs       int

	stateDir  string
	ckptEvery int

	chaos         bool
	chaosSeed     uint64
	chaosRequests int
	chaosClients  int
	chaosBudgetS  int

	crashChaos    bool
	crashKills    int
	crashAfterWAL int64
	crashTorn     bool
}

func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("tsnserve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:9780", "listen address")

	fs.StringVar(&o.topology, "topology", "linear", "managed network topology (star|ring|bidir-ring|linear|tree)")
	fs.IntVar(&o.switches, "switches", 4, "managed network switch count")
	fs.IntVar(&o.tsFlows, "ts-flows", 24, "managed network TS flow count")
	fs.IntVar(&o.hops, "hops", 2, "TS flow hop length")
	fs.IntVar(&o.wireSize, "wire-size", 200, "TS frame wire size (bytes)")
	fs.IntVar(&o.slotUs, "slot-us", 65, "CQF slot (µs)")
	fs.Uint64Var(&o.seed, "seed", 1, "managed network seed")

	fs.IntVar(&o.cacheSize, "cache-size", 512, "derivation cache entries")
	fs.IntVar(&o.deriveConc, "derive-concurrency", 4, "concurrent derivations")
	fs.IntVar(&o.deriveQueue, "derive-queue", 64, "derive admission wait bound")
	fs.IntVar(&o.reconfigQueue, "reconfig-queue", 16, "reconfig admission wait bound")
	fs.IntVar(&o.deriveMs, "derive-deadline-ms", 2000, "default derive deadline (ms)")
	fs.IntVar(&o.reconfigMs, "reconfig-deadline-ms", 10000, "default reconfig deadline (ms)")
	fs.IntVar(&o.breakerTrips, "breaker-threshold", 3, "consecutive commit failures that open the breaker")
	fs.IntVar(&o.breakerCoolMs, "breaker-cooldown-ms", 2000, "breaker open→half-open cooldown (ms)")
	fs.IntVar(&o.retryMax, "retry-max", 3, "bounded commit retries")
	fs.IntVar(&o.retryUs, "retry-backoff-us", 0, "commit retry backoff (µs, 0 = one CQF cycle)")

	fs.StringVar(&o.stateDir, "state-dir", "", "durable state directory (WAL + checkpoints); empty = in-memory only")
	fs.IntVar(&o.ckptEvery, "checkpoint-every", 16, "fold the journal into a checkpoint every n commits")

	fs.BoolVar(&o.chaos, "chaos", false, "run the service chaos campaign instead of serving")
	fs.Uint64Var(&o.chaosSeed, "chaos-seed", 42, "chaos campaign seed")
	fs.IntVar(&o.chaosRequests, "chaos-requests", 200, "chaos campaign scripted requests")
	fs.IntVar(&o.chaosClients, "chaos-clients", 8, "chaos campaign concurrent clients")
	fs.IntVar(&o.chaosBudgetS, "chaos-budget-s", 120, "chaos campaign wall-clock budget (s)")

	fs.BoolVar(&o.crashChaos, "crash-chaos", false, "run the crash-recovery chaos campaign (kill -9 + restart) instead of serving")
	fs.IntVar(&o.crashKills, "crash-kills", 50, "crash campaign kill rounds")
	fs.Int64Var(&o.crashAfterWAL, "crash-after-wal-writes", 0, "TESTING: exit hard after this many WAL appends (0 = off)")
	fs.BoolVar(&o.crashTorn, "crash-torn", false, "TESTING: leave a torn WAL frame behind the armed crash")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *options) workload() workload.Params {
	return workload.Params{
		Topology: o.topology, Switches: o.switches, TSFlows: o.tsFlows,
		Hops: o.hops, WireSize: o.wireSize, SlotUs: o.slotUs, Seed: o.seed,
	}
}

func (o *options) svcOptions() svc.Options {
	return svc.Options{
		Workload:          o.workload(),
		CacheSize:         o.cacheSize,
		DeriveConcurrency: o.deriveConc,
		DeriveQueue:       o.deriveQueue,
		ReconfigQueue:     o.reconfigQueue,
		DeriveDeadline:    time.Duration(o.deriveMs) * time.Millisecond,
		ReconfigDeadline:  time.Duration(o.reconfigMs) * time.Millisecond,
		BreakerThreshold:  o.breakerTrips,
		BreakerCooldown:   time.Duration(o.breakerCoolMs) * time.Millisecond,
		RetryMax:          o.retryMax,
		RetryBackoffUs:    o.retryUs,
		StateDir:          o.stateDir,
		CheckpointEvery:   o.ckptEvery,
	}
}

// serveSignals returns the channel the daemon blocks on
// (SIGINT/SIGTERM); tests swap it for a channel they control.
var serveSignals = func() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

// drainTimeout bounds how long shutdown waits for in-flight requests
// (and the queued commits behind them) before force-closing.
const drainTimeout = 15 * time.Second

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.chaos {
		return runChaos(o)
	}
	if o.crashChaos {
		return runCrashChaos(o)
	}
	if o.crashAfterWAL > 0 {
		// The deterministic kill point for the crash campaign's armed
		// rounds: this life dies hard after its Nth WAL append.
		wal.ArmCrash(o.crashAfterWAL, o.crashTorn)
	}

	s, err := svc.NewService(o.svcOptions())
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("tsnserve: managing %s/%d switches, %d TS flows on http://%s\n",
		o.topology, o.switches, o.tsFlows, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	select {
	case sig := <-serveSignals():
		fmt.Printf("tsnserve: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			// Stuck clients were force-closed; the daemon still exits
			// cleanly — accepted work resolved before the instance stopped.
			fmt.Printf("tsnserve: drain timed out, connections force-closed (%v)\n", err)
		}
		<-serveErr
		fmt.Println("tsnserve: drained")
		return nil
	case err := <-serveErr:
		return fmt.Errorf("tsnserve: serve: %w", err)
	}
}

// runChaos runs the service chaos campaign and reports its verdict.
func runChaos(o *options) error {
	fmt.Printf("tsnserve: chaos campaign seed=%d requests=%d clients=%d\n",
		o.chaosSeed, o.chaosRequests, o.chaosClients)
	sum, err := chaos.RunServiceCampaign(chaos.ServiceOptions{
		Seed:     o.chaosSeed,
		Clients:  o.chaosClients,
		Requests: o.chaosRequests,
		Budget:   time.Duration(o.chaosBudgetS) * time.Second,
		Service:  o.svcOptions(),
		Log: func(format string, args ...any) {
			fmt.Printf("chaos: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: %d/%d executed, %d accepted, %d coherence probes, %d faults\n",
		sum.Executed, sum.Planned, sum.Accepted, sum.CoherenceProbes, sum.FaultsArmed)
	codes := make([]int, 0, len(sum.ByStatus))
	for code := range sum.ByStatus {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("chaos:   status %d × %d\n", code, sum.ByStatus[code])
	}
	for _, v := range sum.Violations {
		fmt.Printf("chaos: VIOLATION %s\n", v)
	}
	for _, e := range sum.Errors {
		fmt.Printf("chaos: ERROR %s\n", e)
	}
	if sum.Failed() {
		return fmt.Errorf("tsnserve: chaos campaign failed: %d violations, %d errors",
			len(sum.Violations), len(sum.Errors))
	}
	fmt.Println("chaos: PASS — both service oracles held")
	return nil
}

// runCrashChaos runs the crash-recovery campaign, re-executing this
// very binary as the server under test so no separate build is needed.
func runCrashChaos(o *options) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("tsnserve: resolve own binary: %w", err)
	}
	fmt.Printf("tsnserve: crash campaign seed=%d kills=%d\n", o.chaosSeed, o.crashKills)
	sum, err := chaos.RunCrashCampaign(chaos.CrashOptions{
		Seed:       o.chaosSeed,
		Kills:      o.crashKills,
		ServerPath: exe,
		StateDir:   o.stateDir,
		Budget:     time.Duration(o.chaosBudgetS) * time.Second,
		Log: func(format string, args ...any) {
			fmt.Printf("crash: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("crash: %d/%d kills (%d armed, %d torn, %d random), %d acks, %d journal entries recovered\n",
		sum.Kills, sum.Planned, sum.ArmedKills, sum.TornKills, sum.RandomKills, sum.Accepted, sum.Recovered)
	for _, v := range sum.Violations {
		fmt.Printf("crash: VIOLATION %s\n", v)
	}
	for _, e := range sum.Errors {
		fmt.Printf("crash: ERROR %s\n", e)
	}
	if sum.Failed() {
		return fmt.Errorf("tsnserve: crash campaign failed: %d violations, %d errors (state kept at %s)",
			len(sum.Violations), len(sum.Errors), sum.StateDir)
	}
	fmt.Println("crash: PASS — every acknowledged transaction survived every kill")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
