package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerated(t *testing.T) {
	if err := run("", 32, 3, 10, 64, 2, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run("", 8, 2, 5, 128, 4, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecFile(t *testing.T) {
	doc := `{"topology":"linear","switches":4,"hosts":{"a":0,"b":3},
		"flows":[{"class":"TS","count":8,"src":"a","dst":"b","period_us":10000}]}`
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, 0, 0, 0, 2, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingSpec(t *testing.T) {
	if err := run("/nonexistent.json", 0, 0, 0, 0, 2, false); err == nil {
		t.Fatal("missing spec accepted")
	}
}

func TestRunInfeasible(t *testing.T) {
	// 4000 large flows in a 1 ms period cannot be scheduled.
	if err := run("", 4000, 3, 1, 1500, 2, false); err == nil {
		t.Fatal("infeasible workload accepted")
	}
}
