// Command tsntas synthesizes an 802.1Qbv Time-Aware Shaper schedule
// for a scenario and prints it: per-port transmission windows, the
// compiled gate control lists, per-flow injection offsets and
// worst-case latency bounds — the artifact an engineer would load into
// the switches' gate tables.
//
// Example:
//
//	tsntas -spec examples/scenarios/production-line.json
//	tsntas -flows 64 -hops 3 -period 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/scenariofile"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tas"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func main() {
	var (
		spec     = flag.String("spec", "", "JSON scenario file (overrides the workload flags)")
		flowN    = flag.Int("flows", 64, "TS flow count")
		hops     = flag.Int("hops", 3, "switches each flow traverses")
		periodMs = flag.Int("period", 10, "TS period (ms)")
		sizeB    = flag.Int("size", 64, "TS frame size (bytes)")
		guardUs  = flag.Int("guard", 2, "per-window guard slack (µs)")
		verbose  = flag.Bool("v", false, "print every window")
	)
	flag.Parse()
	if err := run(*spec, *flowN, *hops, *periodMs, *sizeB, *guardUs, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "tsntas:", err)
		os.Exit(1)
	}
}

func run(spec string, flowN, hops, periodMs, sizeB, guardUs int, verbose bool) error {
	var topo *topology.Topology
	var specs []*flows.Spec
	if spec != "" {
		file, err := scenariofile.Load(spec)
		if err != nil {
			return err
		}
		if topo, specs, err = file.Build(); err != nil {
			return err
		}
	} else {
		topo = topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
		}
		specs = flows.GenerateTS(flows.TSParams{
			Count:    flowN,
			Period:   sim.Time(periodMs) * sim.Millisecond,
			WireSize: sizeB,
			VID:      1,
			Hosts: func(i int) (int, int) {
				src := i % 6
				return 100 + src, 100 + (src+hops-1)%6
			},
			Seed: 42,
		})
		for i, s := range specs {
			s.VID = uint16(1 + i%4000)
		}
		if err := core.BindPaths(topo, specs); err != nil {
			return err
		}
	}

	sch, err := tas.Synthesize(specs, topo, tas.Options{
		Guard:         sim.Time(guardUs) * sim.Microsecond,
		MaxFrameBytes: 1522,
	})
	if err != nil {
		return err
	}

	fmt.Printf("schedule cycle: %v, guard band: %v, max gate entries: %d\n\n",
		sch.Cycle, sch.GuardBand, sch.MaxGateEntries)

	// Per-port window summaries, sorted for stable output.
	ports := make([]tas.PortKey, 0, len(sch.Windows))
	for pk := range sch.Windows {
		ports = append(ports, pk)
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].Switch != ports[j].Switch {
			return ports[i].Switch < ports[j].Switch
		}
		return ports[i].Port < ports[j].Port
	})
	for _, pk := range ports {
		ws := sch.Windows[pk]
		var busy sim.Time
		for _, w := range ws {
			busy += w.End - w.Start
		}
		util := 100 * float64(busy) / float64(sch.Cycle)
		fmt.Printf("sw%d port %d: %3d windows, %6.2f%% of cycle reserved\n",
			pk.Switch, pk.Port, len(ws), util)
		if verbose {
			for _, w := range ws {
				fmt.Printf("    [%10v, %10v) flow %d\n", w.Start, w.End, w.FlowID)
			}
		}
	}

	// Worst-case bounds per flow (summarized).
	var worst, sum sim.Time
	var worstFlow uint32
	tsCount := 0
	for _, s := range specs {
		if _, ok := sch.Offsets[s.ID]; !ok {
			continue
		}
		wc, err := sch.WorstCaseLatency(s, topo)
		if err != nil {
			return err
		}
		tsCount++
		sum += wc
		if wc > worst {
			worst, worstFlow = wc, s.ID
		}
	}
	if tsCount > 0 {
		fmt.Printf("\nworst-case latency: %v (flow %d); mean bound: %v across %d flows\n",
			worst, worstFlow, sum/sim.Time(tsCount), tsCount)
	}
	return nil
}
