package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "reconfig.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReconfigFlagCommits(t *testing.T) {
	o := baseOpts()
	o.reconfig = writeSpec(t,
		`{"at_us": 10000, "unicast_size": 64, "class_size": 64, "meter_size": 64, "buffer_num": 256}`)
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := net.LiveConfig()
	if live.UnicastSize != 64 || live.ClassSize != 64 || live.BufferNum != 256 {
		t.Fatalf("candidate not committed: %+v", live)
	}
	if ts := net.Switches[0].Config(); ts.UnicastSize != 64 {
		t.Fatalf("switch table not grown: %d", ts.UnicastSize)
	}
}

func TestReconfigFlagRejectedKeepsLiveConfig(t *testing.T) {
	o := baseOpts()
	// Shrinking the MAC table to one entry is below the live occupancy
	// of 16 programmed flows: the transaction must be rejected and the
	// run must still complete cleanly.
	o.reconfig = writeSpec(t, `{"at_us": 10000, "unicast_size": 1}`)
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.LiveConfig().UnicastSize == 1 {
		t.Fatal("invalid candidate was applied")
	}
}

func TestReconfigSpecStrictParsing(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"at_us": 0, "uncast_size": 64}`, "unknown field"},
		{"negative time", `{"at_us": -1, "unicast_size": 64}`, "negative at_us -1"},
		{"wrong type", `{"at_us": 0, "unicast_size": "big"}`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadReconfigSpec(writeSpec(t, tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestReconfigSpecBadPath(t *testing.T) {
	o := baseOpts()
	o.reconfig = "/nonexistent/reconfig.json"
	if _, err := run(o, nil); err == nil {
		t.Fatal("missing reconfig spec accepted")
	}
}

func TestDeadlineDiagnostic(t *testing.T) {
	got := deadlineDiagnostic(30*time.Second, 1500000, 123456, 789)
	for _, want := range []string{
		"deadline 30s exceeded", "sim time reached", "events executed:   123456",
		"event-queue depth: 789",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, got)
		}
	}
}

func TestDeadlineGuardFires(t *testing.T) {
	status := -1
	exit = func(code int) { status = code }
	defer func() { exit = os.Exit }()

	o := baseOpts()
	// Enough simulated work that the progress hook (every 64k events)
	// fires at least once; any positive wall time exceeds 1 ns.
	o.flows, o.rcMbps, o.beMbps, o.durMs = 32, 50, 50, 300
	o.deadline = time.Nanosecond
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
	if status != 2 {
		t.Fatalf("exit status = %d, want 2", status)
	}
}

func TestDeadlineNotExceeded(t *testing.T) {
	status := -1
	exit = func(code int) { status = code }
	defer func() { exit = os.Exit }()

	o := baseOpts()
	o.deadline = time.Hour
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
	if status != -1 {
		t.Fatalf("guard fired with an hour of headroom (status %d)", status)
	}
}
