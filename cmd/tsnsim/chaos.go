package main

import (
	"fmt"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/chaos"
)

// chaosOpts bundles the -chaos flag family.
type chaosOpts struct {
	profile  string // profile JSON path, or "default"
	runs     int
	budget   time.Duration
	parallel int
	out      string
}

// runChaos executes a chaos campaign and writes a minimal-repro
// artifact set for every failing case into o.out. It returns whether
// any invariant oracle rejected a case (the caller exits 1 on true)
// and any infrastructure error.
func runChaos(o chaosOpts) (bool, error) {
	p := chaos.DefaultProfile()
	if o.profile != "default" {
		loaded, err := chaos.LoadProfile(o.profile)
		if err != nil {
			return true, err
		}
		p = loaded
	}
	fmt.Printf("chaos: campaign seed=%d runs=%d topologies=%v budget=%v\n",
		p.Seed, campaignRuns(p, o.runs), p.Topologies, o.budget)
	sum, err := chaos.RunCampaign(chaos.Options{
		Profile:  p,
		Runs:     o.runs,
		Budget:   o.budget,
		Parallel: o.parallel,
		Log:      func(format string, args ...any) { fmt.Printf("chaos: "+format+"\n", args...) },
	})
	if err != nil {
		return true, err
	}
	fmt.Printf("chaos: executed %d/%d cases, %d determinism checks, %d parity checks, %d failures, %d errors\n",
		sum.Executed, sum.Planned, sum.DeterminismChecks, sum.ParityChecks, len(sum.Failures), len(sum.Errors))
	for _, e := range sum.Errors {
		fmt.Printf("chaos: ERROR %s\n", e)
	}
	for _, f := range sum.Failures {
		name := fmt.Sprintf("case%04d", f.Result.Case.Index)
		path, werr := chaos.WriteRepro(o.out, name, f.Minimal, f.MinimalViolations)
		if werr != nil {
			return true, fmt.Errorf("writing repro for case %d: %w", f.Result.Case.Index, werr)
		}
		fmt.Printf("chaos: case %d FAILED (%d violations), minimal repro (%d faults) at %s\n",
			f.Result.Case.Index, len(f.MinimalViolations), len(f.Minimal.Faults), path)
		for _, v := range f.MinimalViolations {
			fmt.Printf("chaos:   %s\n", v)
		}
	}
	if !sum.Failed() {
		fmt.Println("chaos: all invariants held")
	}
	return sum.Failed(), nil
}

// campaignRuns mirrors RunCampaign's run-count resolution for the
// banner line.
func campaignRuns(p chaos.Profile, override int) int {
	if override > 0 {
		return override
	}
	return p.MaxRuns
}

// runChaosReplay re-executes a minimal-repro artifact written by a
// previous campaign. It returns whether the recorded violations still
// reproduce (the caller exits 1 on true, matching the campaign's exit
// semantics: non-zero means an invariant is violated).
func runChaosReplay(path string) (bool, error) {
	repro, err := chaos.LoadRepro(path)
	if err != nil {
		return true, err
	}
	fmt.Printf("chaos: replaying %s (case %d, seed %d, %d faults)\n",
		path, repro.Case.Index, repro.Case.Seed, len(repro.Case.Faults))
	res, err := chaos.Execute(repro.Case)
	if err != nil {
		return true, err
	}
	if len(res.Violations) == 0 {
		fmt.Println("chaos: repro did NOT reproduce — all invariants held")
		return false, nil
	}
	for _, v := range res.Violations {
		fmt.Printf("chaos: reproduced %s\n", v)
	}
	return true, nil
}
