// Command tsnsim runs one end-to-end simulation of a customized TSN
// network — the software analogue of powering up the paper's Fig. 6
// demo: switches are generated from the derived design, TSNNic hosts
// inject TS flows plus optional RC/BE background, gPTP synchronizes
// the switch clocks, and the analyzer prints latency/jitter/loss.
//
// Example:
//
//	tsnsim -topology ring -switches 6 -flows 1024 -hops 3 -rc 200 -be 200
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

func main() {
	var (
		topoKind = flag.String("topology", "ring", "topology: star, ring, linear or tree")
		switches = flag.Int("switches", 6, "switch count (ring/linear); star children = switches-1")
		flowN    = flag.Int("flows", 1024, "TS flow count")
		hops     = flag.Int("hops", 3, "switches each TS flow traverses")
		sizeB    = flag.Int("size", 64, "TS frame size (bytes)")
		slotUs   = flag.Int("slot", 65, "CQF slot (µs)")
		rcMbps   = flag.Int("rc", 0, "RC background per injector (Mbps)")
		beMbps   = flag.Int("be", 0, "BE background per injector (Mbps)")
		durMs    = flag.Int("duration", 100, "measurement window (ms)")
		noGPTP   = flag.Bool("no-gptp", false, "run with perfect clocks instead of gPTP")
		seed     = flag.Uint64("seed", 42, "workload seed")
		csvPath  = flag.String("csv", "", "write per-flow statistics to this CSV file")
		pcapPath = flag.String("pcap", "", "write delivered frames to this pcap file")
		hotspots = flag.Bool("hotspots", false, "trace the dataplane and print the worst queue-residence cells")
	)
	flag.Parse()
	if err := runWithOutputs(*topoKind, *switches, *flowN, *hops, *sizeB, *slotUs,
		*rcMbps, *beMbps, *durMs, !*noGPTP, *seed, *csvPath, *pcapPath, *hotspots); err != nil {
		fmt.Fprintln(os.Stderr, "tsnsim:", err)
		os.Exit(1)
	}
}

// runWithOutputs is run plus optional per-flow CSV and pcap dumps.
func runWithOutputs(topoKind string, switches, flowN, hops, sizeB, slotUs,
	rcMbps, beMbps, durMs int, gptpOn bool, seed uint64, csvPath, pcapPath string, hotspots bool) error {
	var pcapOut io.Writer
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcapOut = f
	}
	net, err := run(topoKind, switches, flowN, hops, sizeB, slotUs,
		rcMbps, beMbps, durMs, gptpOn, seed, pcapOut, hotspots)
	if err != nil {
		return err
	}
	if hotspots {
		fmt.Println("worst queue residences:")
		for _, r := range trace.TopResidences(net.Tracer, 8) {
			fmt.Printf("  %s\n", r)
		}
	}
	if net.Capture != nil {
		fmt.Printf("pcap: %d frames captured to %s\n", net.Capture.Count(), pcapPath)
	}
	if csvPath == "" {
		return nil
	}
	return writeCSV(net, csvPath)
}

// writeCSV dumps one row per flow for external plotting.
func writeCSV(net *testbed.Net, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"flow", "class", "sent", "received",
		"mean_us", "jitter_us", "min_us", "max_us", "deadline_misses"}); err != nil {
		return err
	}
	sent := net.SentCounts()
	for _, st := range net.Collector.Flows() {
		row := []string{
			fmt.Sprintf("%d", st.FlowID),
			st.Class.String(),
			fmt.Sprintf("%d", sent[st.FlowID]),
			fmt.Sprintf("%d", st.Received),
			fmt.Sprintf("%.3f", st.MeanLatency().Micros()),
			fmt.Sprintf("%.3f", st.Jitter().Micros()),
			fmt.Sprintf("%.3f", st.MinLat.Micros()),
			fmt.Sprintf("%.3f", st.MaxLat.Micros()),
			fmt.Sprintf("%d", st.DeadlineMisses),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

func run(topoKind string, switches, flowN, hops, sizeB, slotUs,
	rcMbps, beMbps, durMs int, gptpOn bool, seed uint64, pcapOut io.Writer, traceOn bool) (*testbed.Net, error) {

	var topo *topology.Topology
	switch topoKind {
	case "star":
		topo = topology.Star(switches - 1)
	case "ring":
		topo = topology.Ring(switches)
	case "linear":
		topo = topology.Linear(switches)
	case "tree":
		topo = topology.Tree(2, (switches-3)/2)
	default:
		return nil, fmt.Errorf("unknown topology %q", topoKind)
	}
	n := topo.N
	for h := 0; h < n; h++ {
		topo.AttachHost(100+h, h)
		topo.AttachHost(200+h, h)
	}

	specs := flows.GenerateTS(flows.TSParams{
		Count:    flowN,
		Period:   10 * sim.Millisecond,
		WireSize: sizeB,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % n
			return 100 + src, 100 + (src+hops-1)%n
		},
		Seed: seed,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	id := uint32(100_000)
	for srcIdx := 0; srcIdx < 3 && srcIdx < n; srcIdx++ {
		if rcMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassRC,
				200+srcIdx, 100+(srcIdx+hops-1)%n, uint16(3000+srcIdx),
				ethernet.Rate(rcMbps)*ethernet.Mbps))
			id++
		}
		if beMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassBE,
				200+srcIdx, 100+(srcIdx+hops-1)%n, uint16(3200+srcIdx),
				ethernet.Rate(beMbps)*ethernet.Mbps))
			id++
		}
	}
	if err := core.BindPaths(topo, specs); err != nil {
		return nil, err
	}
	der, err := core.DeriveConfig(core.Scenario{
		Topo: topo, Flows: specs,
		SlotSize: sim.Time(slotUs) * sim.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		return nil, err
	}
	net, err := testbed.Build(testbed.Options{
		Design: design, Topo: topo, Flows: specs,
		EnableGPTP: gptpOn, Seed: seed, Pcap: pcapOut,
		EnableTrace: traceOn,
	})
	if err != nil {
		return nil, err
	}
	warmup := sim.Time(0)
	if gptpOn {
		warmup = 2 * sim.Second
	}
	fmt.Printf("running %s/%d: %d TS flows (%dB, %d hops), rc=%dMbps be=%dMbps, slot=%dµs, gptp=%v\n",
		topoKind, n, flowN, sizeB, hops, rcMbps, beMbps, slotUs, gptpOn)
	net.Run(warmup, sim.Time(durMs)*sim.Millisecond)

	for _, cls := range []ethernet.Class{ethernet.ClassTS, ethernet.ClassRC, ethernet.ClassBE} {
		s := net.Summary(cls)
		if s.Flows == 0 {
			continue
		}
		fmt.Printf("%-3s flows=%-5d sent=%-7d recv=%-7d loss=%5.2f%%  mean=%9.1fµs jitter=%8.2fµs min=%9.1fµs max=%9.1fµs\n",
			cls, s.Flows, s.Sent, s.Received, 100*s.LossRate,
			s.MeanLatency.Micros(), s.Jitter.Micros(), s.MinLat.Micros(), s.MaxLat.Micros())
		if cls == ethernet.ClassTS {
			fmt.Printf("    deadline misses: %d\n", s.DeadlineMisses)
		}
	}
	st := net.SwitchStats()
	fmt.Printf("switches: rx=%d tx=%d drops=%d (no-route=%d meter=%d gate=%d buffer=%d queue=%d)\n",
		st.RxFrames, st.TxFrames, st.TotalDrops(),
		st.Drops[0], st.Drops[1], st.Drops[2], st.Drops[3], st.Drops[4])
	fmt.Printf("worst TS queue occupancy: %d (provisioned depth %d)\n",
		net.MaxQueueHighWater(), der.Config.QueueDepth)
	if net.Domain != nil {
		fmt.Printf("gPTP precision at end: %v\n", net.Domain.MaxAbsOffset())
	}
	return net, nil
}
