// Command tsnsim runs one end-to-end simulation of a customized TSN
// network — the software analogue of powering up the paper's Fig. 6
// demo: switches are generated from the derived design, TSNNic hosts
// inject TS flows plus optional RC/BE background, gPTP synchronizes
// the switch clocks, and the analyzer prints latency/jitter/loss.
//
// Example:
//
//	tsnsim -topology ring -switches 6 -flows 1024 -hops 3 -rc 200 -be 200
//
// Observability: -metrics dumps the telemetry registry in Prometheus
// text exposition (or JSON with -metrics-json), -trace-json exports
// the per-packet trace for chrome://tracing, and -progress prints
// live event-rate lines to stderr during long runs.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/obs"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// runOpts bundles one simulation's parameters.
type runOpts struct {
	topo       string
	switches   int
	flows      int
	hops       int
	size       int
	slotUs     int
	rcMbps     int
	beMbps     int
	durMs      int
	gptp       bool
	seed       uint64
	frer       int
	watchdog   bool
	faults     string
	reconfig   string
	retries    int
	backoff    time.Duration
	deadline   time.Duration
	tsDeadline time.Duration
	serve      string

	csvPath     string
	pcapPath    string
	hotspots    bool
	metricsPath string // "-" = stdout, "" = no export
	metricsJSON bool
	traceJSON   string
	progress    time.Duration
	partitions  int
}

func main() {
	var o runOpts
	flag.StringVar(&o.topo, "topology", "ring", "topology: star, ring, bidir-ring, linear, tree, mesh or fattree")
	flag.IntVar(&o.switches, "switches", 6, "switch count (ring/linear); star children = switches-1")
	flag.IntVar(&o.flows, "flows", 1024, "TS flow count")
	flag.IntVar(&o.hops, "hops", 3, "switches each TS flow traverses")
	flag.IntVar(&o.size, "size", 64, "TS frame size (bytes)")
	flag.IntVar(&o.slotUs, "slot", 65, "CQF slot (µs)")
	flag.IntVar(&o.rcMbps, "rc", 0, "RC background per injector (Mbps)")
	flag.IntVar(&o.beMbps, "be", 0, "BE background per injector (Mbps)")
	flag.IntVar(&o.durMs, "duration", 100, "measurement window (ms)")
	noGPTP := flag.Bool("no-gptp", false, "run with perfect clocks instead of gPTP")
	flag.Uint64Var(&o.seed, "seed", 42, "workload seed")
	flag.IntVar(&o.frer, "frer", 0, "make the first n TS flows 802.1CB-redundant (bidir-ring only, max 64)")
	flag.BoolVar(&o.watchdog, "watchdog", false, "run the invariant watchdog and graceful-degradation policy")
	flag.StringVar(&o.faults, "faults", "", "fault-scenario JSON file to inject during the run")
	flag.StringVar(&o.reconfig, "reconfig", "", "live-reconfiguration JSON file to apply mid-run")
	flag.IntVar(&o.retries, "reconfig-retries", 0, "retry a failed reconfig commit up to this many times")
	flag.DurationVar(&o.backoff, "reconfig-backoff", 0, "backoff between reconfig commit retries (simulated time)")
	flag.DurationVar(&o.deadline, "deadline", 0, "abort with a diagnostic if the run exceeds this wall-clock time (e.g. 30s)")
	flag.DurationVar(&o.tsDeadline, "ts-deadline", 0, "override every TS flow's latency deadline (tight values force misses, e.g. 10us)")
	flag.StringVar(&o.serve, "serve", "", "serve live telemetry on this address (e.g. :9090); holds after the run until interrupted")
	flag.StringVar(&o.csvPath, "csv", "", "write per-flow statistics to this CSV file")
	flag.StringVar(&o.pcapPath, "pcap", "", "write delivered frames to this pcap file")
	flag.BoolVar(&o.hotspots, "hotspots", false, "trace the dataplane and print the worst queue-residence cells")
	flag.StringVar(&o.metricsPath, "metrics", "", "write the metrics registry to this file ('-' for stdout)")
	flag.BoolVar(&o.metricsJSON, "metrics-json", false, "export -metrics as JSON instead of Prometheus text")
	flag.StringVar(&o.traceJSON, "trace-json", "", "write the packet trace as Chrome trace-event JSON to this file")
	flag.DurationVar(&o.progress, "progress", 0, "print progress to stderr at this wall-clock interval (e.g. 2s)")
	flag.IntVar(&o.partitions, "partitions", 0, "shard the topology across this many parallel engines (conservative lookahead; results byte-identical to serial, needs -no-gptp)")
	var co chaosOpts
	flag.StringVar(&co.profile, "chaos", "", "run a chaos campaign from this profile JSON ('default' for the built-in profile) instead of one simulation")
	flag.IntVar(&co.runs, "chaos-runs", 0, "override the profile's case count")
	flag.DurationVar(&co.budget, "chaos-budget", 0, "wall-clock budget; the campaign stops claiming new cases when it expires")
	flag.IntVar(&co.parallel, "chaos-parallel", 0, "campaign worker count (default GOMAXPROCS)")
	flag.StringVar(&co.out, "chaos-out", "chaos-out", "directory for minimal-repro artifacts of failing cases")
	chaosReplay := flag.String("chaos-replay", "", "re-execute a minimal-repro artifact (<case>.repro.json) and report whether it still reproduces")
	flag.Parse()
	o.gptp = !*noGPTP
	switch {
	case *chaosReplay != "":
		reproduced, err := runChaosReplay(*chaosReplay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsnsim:", err)
			os.Exit(1)
		}
		if reproduced {
			os.Exit(1)
		}
	case co.profile != "":
		failed, err := runChaos(co)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsnsim:", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
	default:
		if err := runWithOutputs(o); err != nil {
			fmt.Fprintln(os.Stderr, "tsnsim:", err)
			os.Exit(1)
		}
	}
}

// runWithOutputs is run plus the optional file exports: per-flow CSV,
// pcap, metrics (Prometheus/JSON) and Chrome trace JSON.
func runWithOutputs(o runOpts) error {
	var pcapOut io.Writer
	if o.pcapPath != "" {
		f, err := os.Create(o.pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcapOut = f
	}
	net, err := run(o, pcapOut)
	if err != nil {
		return err
	}
	if o.hotspots {
		fmt.Println("worst queue residences:")
		for _, r := range trace.TopResidences(net.Tracer, 8) {
			fmt.Printf("  %s\n", r)
		}
		if n := net.Tracer.Truncated(); n > 0 {
			fmt.Printf("  (trace truncated: %d events beyond the %d-event limit were not recorded)\n",
				n, net.Tracer.Limit)
		}
	}
	if net.Capture != nil {
		fmt.Printf("pcap: %d frames captured to %s\n", net.Capture.Count(), o.pcapPath)
	}
	if o.traceJSON != "" {
		f, err := os.Create(o.traceJSON)
		if err != nil {
			return err
		}
		if err := net.Tracer.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s\n", net.Tracer.Len(), o.traceJSON)
	}
	if o.metricsPath != "" {
		if err := writeMetrics(net.Metrics, o.metricsPath, o.metricsJSON); err != nil {
			return err
		}
	}
	if o.csvPath != "" {
		if err := writeCSV(net, o.csvPath); err != nil {
			return err
		}
	}
	if o.serve != "" {
		fmt.Printf("telemetry: holding final state on %s — interrupt to exit\n", o.serve)
		if err := serveHold(net.Server); err != nil {
			// The drain timed out on a stuck client; the server is down
			// regardless, and a held -serve that was interrupted still
			// exits 0 — the simulation itself succeeded.
			fmt.Printf("telemetry: drain timed out, connections force-closed (%v)\n", err)
		}
	}
	return nil
}

// serveSignals returns the channel the -serve hold blocks on
// (SIGINT/SIGTERM); tests swap it for a channel they control.
var serveSignals = func() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

// serveDrainTimeout bounds how long the -serve exit path waits for
// in-flight requests to finish before force-closing their connections.
const serveDrainTimeout = 5 * time.Second

// serveHold blocks the -serve run after the simulation finishes so the
// final telemetry state stays queryable, then shuts the server down
// gracefully on the first interrupt: the listener closes, streaming
// endpoints terminate, and in-flight requests drain within
// serveDrainTimeout. Tests swap it out.
var serveHold = func(srv *obs.Server) error {
	<-serveSignals()
	ctx, cancel := context.WithTimeout(context.Background(), serveDrainTimeout)
	defer cancel()
	return srv.Shutdown(ctx)
}

// writeMetrics dumps the registry to path ("-" = stdout) in Prometheus
// text exposition or, with asJSON, as an indented JSON snapshot.
func writeMetrics(reg *metrics.Registry, path string, asJSON bool) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	snap := reg.Snapshot()
	if asJSON {
		return snap.WriteJSON(w)
	}
	return snap.WritePrometheus(w)
}

// exit is swapped out by tests; the deadline guard calls it with a
// non-zero status from the simulation thread.
var exit = os.Exit

// reconfigSpec is the on-disk form of a -reconfig request: the instant
// to begin the transaction plus per-field overrides of the running
// configuration. Absent fields keep their live values. Structural
// parameters (queue_num, port_num, link_rate) are deliberately not
// representable — changing them requires regeneration, which the
// engine would reject anyway.
type reconfigSpec struct {
	AtUs          int64  `json:"at_us"`
	UnicastSize   *int   `json:"unicast_size"`
	MulticastSize *int   `json:"multicast_size"`
	ClassSize     *int   `json:"class_size"`
	MeterSize     *int   `json:"meter_size"`
	GateSize      *int   `json:"gate_size"`
	CBSMapSize    *int   `json:"cbs_map_size"`
	CBSSize       *int   `json:"cbs_size"`
	QueueDepth    *int   `json:"queue_depth"`
	BufferNum     *int   `json:"buffer_num"`
	FRERSize      *int   `json:"frer_size"`
	FRERHistory   *int   `json:"frer_history"`
	SlotUs        *int64 `json:"slot_us"`
}

// loadReconfigSpec parses path strictly: unknown fields and a negative
// begin time are rejected here, before the simulation is built.
func loadReconfigSpec(path string) (*reconfigSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rs reconfigSpec
	if err := dec.Decode(&rs); err != nil {
		return nil, fmt.Errorf("reconfig spec %s: %w", path, err)
	}
	if rs.AtUs < 0 {
		return nil, fmt.Errorf("reconfig spec %s: negative at_us %d", path, rs.AtUs)
	}
	return &rs, nil
}

// candidate overlays the spec's overrides on the live configuration.
func (rs *reconfigSpec) candidate(cfg core.Config) core.Config {
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&cfg.UnicastSize, rs.UnicastSize)
	setInt(&cfg.MulticastSize, rs.MulticastSize)
	setInt(&cfg.ClassSize, rs.ClassSize)
	setInt(&cfg.MeterSize, rs.MeterSize)
	setInt(&cfg.GateSize, rs.GateSize)
	setInt(&cfg.CBSMapSize, rs.CBSMapSize)
	setInt(&cfg.CBSSize, rs.CBSSize)
	setInt(&cfg.QueueDepth, rs.QueueDepth)
	setInt(&cfg.BufferNum, rs.BufferNum)
	setInt(&cfg.FRERSize, rs.FRERSize)
	setInt(&cfg.FRERHistory, rs.FRERHistory)
	if rs.SlotUs != nil {
		cfg.SlotSize = sim.Time(*rs.SlotUs) * sim.Microsecond
	}
	return cfg
}

// scheduleReconfig arms the -reconfig transaction on the running
// network and returns a reporter to call once the simulation ends.
func scheduleReconfig(net *testbed.Net, rs *reconfigSpec) (report func()) {
	at := sim.Time(rs.AtUs) * sim.Microsecond
	var txn *reconfig.Txn
	var beginErr error
	net.Engine.At(at, "live-reconfig", func(*sim.Engine) {
		txn, beginErr = net.Reconfigure(rs.candidate(net.LiveConfig()))
	})
	return func() {
		switch {
		case beginErr != nil:
			fmt.Printf("reconfig: rejected: %v\n", beginErr)
		case txn == nil:
			fmt.Printf("reconfig: begin time %v is outside the run; nothing applied\n", at)
		case txn.State() == reconfig.StateCommitted:
			fmt.Printf("reconfig: committed at %v (%d ops)\n", txn.CommitTime(), len(txn.Ops()))
		case txn.State() == reconfig.StateRolledBack:
			fmt.Printf("reconfig: rolled back: %v\n", txn.Err())
		default:
			fmt.Printf("reconfig: unresolved at simulation end (state %v)\n", txn.State())
		}
	}
}

// deadlineDiagnostic renders the dump printed when the -deadline guard
// trips: how far simulated time got and how much work remained queued,
// so a hung or exploding scenario is diagnosable from the abort alone.
func deadlineDiagnostic(limit time.Duration, now sim.Time, executed uint64, pending int) string {
	return fmt.Sprintf("tsnsim: wall-clock deadline %v exceeded\n"+
		"  sim time reached:  %v\n"+
		"  events executed:   %d\n"+
		"  event-queue depth: %d\n", limit, now, executed, pending)
}

// writeCSV dumps one row per flow for external plotting.
func writeCSV(net *testbed.Net, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"flow", "class", "sent", "received",
		"mean_us", "jitter_us", "min_us", "max_us", "deadline_misses"}); err != nil {
		return err
	}
	sent := net.SentCounts()
	for _, st := range net.Collector.Flows() {
		row := []string{
			fmt.Sprintf("%d", st.FlowID),
			st.Class.String(),
			fmt.Sprintf("%d", sent[st.FlowID]),
			fmt.Sprintf("%d", st.Received),
			fmt.Sprintf("%.3f", st.MeanLatency().Micros()),
			fmt.Sprintf("%.3f", st.Jitter().Micros()),
			fmt.Sprintf("%.3f", st.MinLat.Micros()),
			fmt.Sprintf("%.3f", st.MaxLat.Micros()),
			fmt.Sprintf("%d", st.DeadlineMisses),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

// validatePartitions rejects flag combinations a partitioned run
// cannot honor: features the testbed refuses to shard, plus the
// single-engine conveniences (progress, deadline guard, live serving)
// that hook the one serial engine.
func validatePartitions(o runOpts, pcapOut io.Writer) error {
	if o.partitions <= 1 {
		return nil
	}
	reasons := []struct {
		bad  bool
		flag string
	}{
		{o.gptp, "-partitions needs -no-gptp (clock sync spans partitions)"},
		{o.frer > 0, "-frer is not supported with -partitions"},
		{o.watchdog, "-watchdog is not supported with -partitions"},
		{o.faults != "", "-faults is not supported with -partitions"},
		{o.reconfig != "", "-reconfig is not supported with -partitions"},
		{o.serve != "", "-serve is not supported with -partitions"},
		{o.progress > 0, "-progress is not supported with -partitions"},
		{o.deadline > 0, "-deadline is not supported with -partitions"},
		{o.hotspots, "-hotspots is not supported with -partitions"},
		{o.traceJSON != "", "-trace-json is not supported with -partitions"},
		{pcapOut != nil, "-pcap is not supported with -partitions"},
	}
	for _, r := range reasons {
		if r.bad {
			return fmt.Errorf("%s", r.flag)
		}
	}
	return nil
}

func run(o runOpts, pcapOut io.Writer) (*testbed.Net, error) {
	if err := validatePartitions(o, pcapOut); err != nil {
		return nil, err
	}
	wl, err := workload.Build(workload.Params{
		Topology: o.topo, Switches: o.switches,
		TSFlows: o.flows, Hops: o.hops, WireSize: o.size,
		SlotUs: o.slotUs, RCMbps: o.rcMbps, BEMbps: o.beMbps,
		FRERFlows: o.frer, TSDeadline: sim.Time(o.tsDeadline),
		Seed: o.seed,
	})
	if err != nil {
		return nil, err
	}
	topo, specs, der, design := wl.Topo, wl.Specs, wl.Der, wl.Design
	n := topo.N
	var scenario *faults.Scenario
	if o.faults != "" {
		if scenario, err = faults.Load(o.faults); err != nil {
			return nil, err
		}
	}
	var rspec *reconfigSpec
	if o.reconfig != "" {
		if rspec, err = loadReconfigSpec(o.reconfig); err != nil {
			return nil, err
		}
	}
	// The registry is always built: the exit summary reads it even when
	// no export flag is set, and instrumented forwarding costs ~nothing.
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design: design, Topo: topo, Flows: specs,
		EnableGPTP: o.gptp, Seed: o.seed, Pcap: pcapOut,
		EnableTrace:    o.hotspots || o.traceJSON != "",
		Metrics:        reg,
		Faults:         scenario,
		EnableWatchdog: o.watchdog,
		Partitions:     o.partitions,
	})
	if err != nil {
		return nil, err
	}
	if o.retries > 0 {
		net.Reconfig.SetRetryPolicy(o.retries, sim.Time(o.backoff))
	}
	reportReconfig := func() {}
	if rspec != nil {
		reportReconfig = scheduleReconfig(net, rspec)
	}
	var srv *obs.Server
	if o.serve != "" {
		var addr string
		if srv, addr, err = net.Serve(o.serve); err != nil {
			return nil, err
		}
		fmt.Printf("telemetry: live on http://%s (/metrics /healthz /flows /events /flightrec /debug/pprof)\n", addr)
	}
	if o.progress > 0 || o.deadline > 0 {
		guardStart := time.Now()
		last := guardStart
		var lastExec uint64
		tripped := false
		// Check wall time every 64k events: cheap against µs-scale
		// event costs, responsive against second-scale intervals. The
		// deadline guard runs on the simulation thread, so the dump is
		// consistent with the instant it fires.
		net.Engine.SetProgress(1<<16, func(executed uint64, now sim.Time) {
			if o.deadline > 0 && !tripped && time.Since(guardStart) > o.deadline {
				tripped = true
				fmt.Fprint(os.Stderr, deadlineDiagnostic(o.deadline, now, executed, net.Engine.Pending()))
				exit(2)
			}
			if o.progress <= 0 || time.Since(last) < o.progress {
				return
			}
			rate := float64(executed-lastExec) / time.Since(last).Seconds()
			fmt.Fprintf(os.Stderr, "progress: sim=%v events=%d (%.0f ev/s)\n", now, executed, rate)
			last = time.Now()
			lastExec = executed
		})
	}
	warmup := sim.Time(0)
	if o.gptp {
		warmup = 2 * sim.Second
	}
	fmt.Printf("running %s/%d: %d TS flows (%dB, %d hops), rc=%dMbps be=%dMbps, slot=%dµs, gptp=%v\n",
		o.topo, n, o.flows, o.size, o.hops, o.rcMbps, o.beMbps, o.slotUs, o.gptp)
	if net.Partitions() > 1 {
		fmt.Printf("partitions: %d parallel engines, lookahead window %v\n",
			net.Partitions(), net.LookaheadWindow())
	}
	wallStart := time.Now()
	net.Run(warmup, sim.Time(o.durMs)*sim.Millisecond)
	wall := time.Since(wallStart)

	for _, cls := range []ethernet.Class{ethernet.ClassTS, ethernet.ClassRC, ethernet.ClassBE} {
		s := net.Summary(cls)
		if s.Flows == 0 {
			continue
		}
		fmt.Printf("%-3s flows=%-5d sent=%-7d recv=%-7d loss=%5.2f%%  mean=%9.1fµs jitter=%8.2fµs min=%9.1fµs max=%9.1fµs\n",
			cls, s.Flows, s.Sent, s.Received, 100*s.LossRate,
			s.MeanLatency.Micros(), s.Jitter.Micros(), s.MinLat.Micros(), s.MaxLat.Micros())
		if cls == ethernet.ClassTS {
			fmt.Printf("    deadline misses: %d\n", s.DeadlineMisses)
		}
	}
	reportReconfig()
	st := net.SwitchStats()
	fmt.Printf("switches: rx=%d tx=%d drops=%d (no-route=%d meter=%d gate=%d buffer=%d queue=%d)\n",
		st.RxFrames, st.TxFrames, st.TotalDrops(),
		st.Drops[0], st.Drops[1], st.Drops[2], st.Drops[3], st.Drops[4])
	fmt.Printf("worst TS queue occupancy: %d (provisioned depth %d)\n",
		net.MaxQueueHighWater(), der.Config.QueueDepth)
	if net.Domain != nil {
		fmt.Printf("gPTP precision at end: %v\n", net.Domain.MaxAbsOffset())
	}
	if net.Injector != nil {
		fmt.Printf("faults: injected=%d recovered=%d link-drops=%d\n",
			net.Injector.Injected(), net.Injector.Recovered(),
			reg.SumCounter(faults.MetricLinkDrops))
	}
	printSummary(reg, wall, net.Tracer)
	printAttribution(net)
	if srv != nil {
		srv.Publish(reg.Snapshot())
	}
	return net, nil
}

// printAttribution renders the top-3 flows by worst-case latency, one
// line each with the worst delivery's component decomposition, plus
// the flight-recorder capture retained for the worst deadline miss.
func printAttribution(net *testbed.Net) {
	if net.Attr == nil {
		return
	}
	top := net.Attr.TopByWorst(3)
	if len(top) == 0 {
		return
	}
	fmt.Println("worst flows (component breakdown of worst delivery):")
	for _, fl := range top {
		w := fl.Worst
		fmt.Printf("  flow %-6d %-3s worst=%9.1fµs seq=%-6d prop=%.1fµs ser=%.1fµs queue=%.1fµs gate=%.1fµs shape=%.1fµs misses=%d\n",
			fl.FlowID, fl.Class, fl.WorstLat.Micros(), fl.WorstSeq,
			w.Prop.Micros(), w.Ser.Micros(), w.Queue.Micros(), w.Gate.Micros(), w.Shape.Micros(),
			fl.Misses)
	}
	if dumps := net.Attr.Dumps(); len(dumps) > 0 {
		d := dumps[len(dumps)-1]
		fmt.Printf("flight recorder: worst miss flow=%d seq=%d lat=%.1fµs — %d events captured (serve /flightrec for the chain)\n",
			d.FlowID, d.Seq, d.Lat.Micros(), len(d.Events))
	}
}

// printSummary renders the exit summary line from the telemetry
// registry — delivered frames, drops by reason, the simulator's event
// throughput over the measured wall time, and an honest note when the
// packet trace hit its recording limit.
func printSummary(reg *metrics.Registry, wall time.Duration, tr *trace.Recorder) {
	delivered := reg.SumCounter("tsn_flows_delivered_total")
	drops := reg.SumCounter(tsnswitch.MetricDrops)
	line := fmt.Sprintf("summary: delivered=%d drops=%d", delivered, drops)
	if drops > 0 {
		for _, r := range tsnswitch.DropReasons() {
			if v := reg.SumCounter(tsnswitch.MetricDrops, metrics.L("reason", r.String())); v > 0 {
				line += fmt.Sprintf(" %s=%d", r, v)
			}
		}
	}
	events := reg.CounterValue("tsn_sim_events_total")
	line += fmt.Sprintf(" events=%d", events)
	if secs := wall.Seconds(); secs > 0 {
		line += fmt.Sprintf(" (%.0f ev/s)", float64(events)/secs)
	}
	if dropped := tr.Truncated(); dropped > 0 {
		line += fmt.Sprintf(" trace-dropped=%d", dropped)
	}
	fmt.Println(line)
}
