package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRingSmall(t *testing.T) {
	if _, err := run("ring", 6, 32, 2, 64, 65, 50, 50, 20, false, 1, nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunStarWithGPTP(t *testing.T) {
	if testing.Short() {
		t.Skip("gPTP warmup is seconds of simulated time")
	}
	if _, err := run("star", 4, 16, 2, 64, 65, 0, 0, 20, true, 1, nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunLinear(t *testing.T) {
	if _, err := run("linear", 4, 16, 3, 128, 65, 0, 20, 20, false, 1, nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if _, err := run("mesh", 6, 8, 2, 64, 65, 0, 0, 10, false, 1, nil, false); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flows.csv")
	if err := runWithOutputs("ring", 6, 16, 2, 64, 65, 0, 0, 20, false, 1, path, "", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 17 { // header + 16 flows
		t.Fatalf("CSV lines = %d, want 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "flow,class,sent,received") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "TS") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestPcapOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.pcap")
	if err := runWithOutputs("ring", 6, 8, 2, 64, 65, 0, 0, 10, false, 1, "", path, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24+16+60 {
		t.Fatalf("pcap too small: %d bytes", len(data))
	}
	// Nanosecond pcap magic, little endian.
	if data[0] != 0x4d || data[1] != 0x3c || data[2] != 0xb2 || data[3] != 0xa1 {
		t.Fatalf("pcap magic = % x", data[:4])
	}
}

func TestPcapBadPath(t *testing.T) {
	if err := runWithOutputs("ring", 6, 8, 2, 64, 65, 0, 0, 10, false, 1, "", "/nonexistent/x.pcap", false); err == nil {
		t.Fatal("bad pcap path accepted")
	}
}

func TestHotspots(t *testing.T) {
	if err := runWithOutputs("ring", 6, 16, 3, 64, 65, 0, 0, 20, false, 1, "", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestCSVBadPath(t *testing.T) {
	if err := runWithOutputs("ring", 6, 8, 2, 64, 65, 0, 0, 10, false, 1, "/nonexistent/dir/x.csv", "", false); err == nil {
		t.Fatal("bad CSV path accepted")
	}
}
