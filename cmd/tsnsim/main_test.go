package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// baseOpts returns a small, fast scenario; tests override fields.
func baseOpts() runOpts {
	return runOpts{
		topo: "ring", switches: 6, flows: 16, hops: 2,
		size: 64, slotUs: 65, durMs: 20, gptp: false, seed: 1,
	}
}

func TestRunRingSmall(t *testing.T) {
	o := baseOpts()
	o.flows, o.rcMbps, o.beMbps = 32, 50, 50
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunStarWithGPTP(t *testing.T) {
	if testing.Short() {
		t.Skip("gPTP warmup is seconds of simulated time")
	}
	o := baseOpts()
	o.topo, o.switches, o.gptp = "star", 4, true
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunLinear(t *testing.T) {
	o := baseOpts()
	o.topo, o.switches, o.hops, o.size, o.beMbps = "linear", 4, 3, 128, 20
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunPartitioned(t *testing.T) {
	o := baseOpts()
	o.partitions, o.rcMbps = 3, 30
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Partitions() != 3 {
		t.Fatalf("ran on %d partitions, want 3", net.Partitions())
	}
}

func TestPartitionsRejectUnshardableFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runOpts)
	}{
		{"gptp", func(o *runOpts) { o.gptp = true }},
		{"frer", func(o *runOpts) { o.topo, o.frer = "bidir-ring", 2 }},
		{"watchdog", func(o *runOpts) { o.watchdog = true }},
		{"faults", func(o *runOpts) { o.faults = "x.json" }},
		{"reconfig", func(o *runOpts) { o.reconfig = "x.json" }},
		{"serve", func(o *runOpts) { o.serve = ":0" }},
		{"progress", func(o *runOpts) { o.progress = 1 }},
		{"deadline", func(o *runOpts) { o.deadline = 1 }},
		{"hotspots", func(o *runOpts) { o.hotspots = true }},
		{"trace-json", func(o *runOpts) { o.traceJSON = "x.json" }},
	}
	for _, tc := range cases {
		o := baseOpts()
		o.partitions = 2
		tc.mut(&o)
		if _, err := run(o, nil); err == nil {
			t.Errorf("%s: accepted with -partitions", tc.name)
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	o := baseOpts()
	o.topo = "moebius"
	if _, err := run(o, nil); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	o := baseOpts()
	o.csvPath = filepath.Join(t.TempDir(), "flows.csv")
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 17 { // header + 16 flows
		t.Fatalf("CSV lines = %d, want 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "flow,class,sent,received") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "TS") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestPcapOutput(t *testing.T) {
	o := baseOpts()
	o.flows = 8
	o.durMs = 10
	o.pcapPath = filepath.Join(t.TempDir(), "run.pcap")
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24+16+60 {
		t.Fatalf("pcap too small: %d bytes", len(data))
	}
	// Nanosecond pcap magic, little endian.
	if data[0] != 0x4d || data[1] != 0x3c || data[2] != 0xb2 || data[3] != 0xa1 {
		t.Fatalf("pcap magic = % x", data[:4])
	}
}

func TestPcapBadPath(t *testing.T) {
	o := baseOpts()
	o.pcapPath = "/nonexistent/x.pcap"
	if err := runWithOutputs(o); err == nil {
		t.Fatal("bad pcap path accepted")
	}
}

func TestHotspots(t *testing.T) {
	o := baseOpts()
	o.hops = 3
	o.hotspots = true
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
}

func TestCSVBadPath(t *testing.T) {
	o := baseOpts()
	o.csvPath = "/nonexistent/dir/x.csv"
	if err := runWithOutputs(o); err == nil {
		t.Fatal("bad CSV path accepted")
	}
}

func TestMetricsPrometheusOutput(t *testing.T) {
	o := baseOpts()
	o.metricsPath = filepath.Join(t.TempDir(), "run.prom")
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE tsn_switch_rx_frames_total counter",
		`tsn_switch_rx_frames_total{switch="0"}`,
		"# TYPE tsn_e2e_latency_ns histogram",
		`le="+Inf"`,
		"tsn_sim_events_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every line must be a comment or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestMetricsJSONOutput(t *testing.T) {
	o := baseOpts()
	o.metricsPath = filepath.Join(t.TempDir(), "run.json")
	o.metricsJSON = true
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(snap.Families) == 0 {
		t.Fatal("no metric families exported")
	}
}

func TestTraceJSONOutput(t *testing.T) {
	o := baseOpts()
	o.flows = 8
	o.durMs = 10
	o.traceJSON = filepath.Join(t.TempDir(), "trace.json")
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.traceJSON)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(got.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
}

func TestMetricsBadPath(t *testing.T) {
	o := baseOpts()
	o.metricsPath = "/nonexistent/dir/x.prom"
	if err := runWithOutputs(o); err == nil {
		t.Fatal("bad metrics path accepted")
	}
}

// faultScenarioJSON is a mixed fault script used by the -faults tests:
// a transient outage and probabilistic loss on ring trunks, plus a
// clock phase step. Times sit inside the 20 ms test window.
const faultScenarioJSON = `{
	"faults": [
		{"at_us": 5000, "kind": "link-down", "a": 1, "b": 2},
		{"at_us": 9000, "kind": "link-up", "a": 1, "b": 2},
		{"at_us": 2000, "kind": "link-loss", "a": 2, "b": 3, "prob": 0.3, "duration_us": 10000},
		{"at_us": 4000, "kind": "clock-step", "switch": 4, "step_ns": 700}
	]
}`

func TestRunWithFaultScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, []byte(faultScenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.faults = path
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Injector == nil {
		t.Fatal("no injector built despite -faults")
	}
	if net.Injector.Injected() != 3 || net.Injector.Recovered() != 2 {
		t.Fatalf("fault counts = %d/%d, want 3/2",
			net.Injector.Injected(), net.Injector.Recovered())
	}
}

func TestRunBidirRing(t *testing.T) {
	o := baseOpts()
	o.topo = "bidir-ring"
	if _, err := run(o, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultScenarioDeterministic(t *testing.T) {
	// Same -seed, same fault scenario: the full metrics snapshot —
	// every counter, gauge and histogram bucket in the registry — must
	// be byte-identical across runs.
	dir := t.TempDir()
	scenario := filepath.Join(dir, "faults.json")
	if err := os.WriteFile(scenario, []byte(faultScenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	snapshot := func(out string) []byte {
		o := baseOpts()
		o.flows, o.rcMbps = 32, 30
		o.faults = scenario
		o.metricsPath = filepath.Join(dir, out)
		o.metricsJSON = true
		if err := runWithOutputs(o); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := snapshot("a.json"), snapshot("b.json")
	if !bytes.Equal(first, second) {
		t.Fatalf("metrics snapshots differ between identical runs:\n--- first ---\n%.2000s\n--- second ---\n%.2000s", first, second)
	}
}

func TestFaultScenarioBadFile(t *testing.T) {
	o := baseOpts()
	o.faults = "/nonexistent/faults.json"
	if _, err := run(o, nil); err == nil {
		t.Fatal("missing fault scenario accepted")
	}
}
