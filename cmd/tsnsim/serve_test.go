package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeWithForcedMisses drives a run whose TS deadline is forced to
// 1µs so every delivery misses, with the telemetry server live: the
// attribution must record the misses, the worst flow must decompose
// exactly, and the flight recorder must have captured the worst chain.
func TestServeWithForcedMisses(t *testing.T) {
	o := baseOpts()
	o.tsDeadline = time.Microsecond
	o.serve = "127.0.0.1:0"
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Attr == nil {
		t.Fatal("run built no attribution")
	}
	top := net.Attr.TopByWorst(3)
	if len(top) == 0 {
		t.Fatal("no flows ranked")
	}
	var misses uint64
	for _, fl := range top {
		if got := fl.Worst.Total(); got != fl.WorstLat {
			t.Fatalf("flow %d: components sum %v != worst %v", fl.FlowID, got, fl.WorstLat)
		}
		misses += fl.Misses
	}
	if misses == 0 {
		t.Fatal("1µs deadline forced no misses")
	}
	if dumps := net.Attr.Dumps(); len(dumps) == 0 || len(dumps[len(dumps)-1].Events) == 0 {
		t.Fatal("no flight-recorder dump of the offending chain")
	}
}

// TestServeEndpointsDuringHold checks the -serve lifecycle end to end:
// runWithOutputs serves, holds, and the held server answers /metrics,
// /healthz and /flows/{id} with live content.
func TestServeEndpointsDuringHold(t *testing.T) {
	o := baseOpts()
	o.tsDeadline = time.Microsecond
	o.serve = "127.0.0.1:18462"

	probed := make(chan error, 1)
	oldHold := serveHold
	defer func() { serveHold = oldHold }()
	serveHold = func() {
		probed <- probeServe("http://" + o.serve)
	}
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	if err := <-probed; err != nil {
		t.Fatal(err)
	}
}

// probeServe exercises the held server the way the CI smoke job does.
func probeServe(base string) error {
	get := func(path string) (int, string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}
	if code, body, err := get("/metrics"); err != nil || code != 200 ||
		!strings.Contains(body, "tsn_latency_component_ns") {
		return fmtErr("/metrics", code, err)
	}
	if code, body, err := get("/healthz"); err != nil || code != 200 ||
		!strings.Contains(body, `"ok"`) {
		return fmtErr("/healthz", code, err)
	}
	code, body, err := get("/flows/1")
	if err != nil || code != 200 {
		return fmtErr("/flows/1", code, err)
	}
	var fj struct {
		Count   uint64 `json:"count"`
		WorstNs int64  `json:"worst_ns"`
	}
	if err := json.Unmarshal([]byte(body), &fj); err != nil {
		return err
	}
	if fj.Count == 0 || fj.WorstNs == 0 {
		return fmtErr("/flows/1 empty breakdown", code, nil)
	}
	return nil
}

func fmtErr(what string, code int, err error) error {
	if err != nil {
		return err
	}
	return &probeError{what: what, code: code}
}

type probeError struct {
	what string
	code int
}

func (e *probeError) Error() string {
	return e.what + " failed with status " + http.StatusText(e.code)
}
