package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/obs"
)

// TestServeWithForcedMisses drives a run whose TS deadline is forced to
// 1µs so every delivery misses, with the telemetry server live: the
// attribution must record the misses, the worst flow must decompose
// exactly, and the flight recorder must have captured the worst chain.
func TestServeWithForcedMisses(t *testing.T) {
	o := baseOpts()
	o.tsDeadline = time.Microsecond
	o.serve = "127.0.0.1:0"
	net, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Attr == nil {
		t.Fatal("run built no attribution")
	}
	top := net.Attr.TopByWorst(3)
	if len(top) == 0 {
		t.Fatal("no flows ranked")
	}
	var misses uint64
	for _, fl := range top {
		if got := fl.Worst.Total(); got != fl.WorstLat {
			t.Fatalf("flow %d: components sum %v != worst %v", fl.FlowID, got, fl.WorstLat)
		}
		misses += fl.Misses
	}
	if misses == 0 {
		t.Fatal("1µs deadline forced no misses")
	}
	if dumps := net.Attr.Dumps(); len(dumps) == 0 || len(dumps[len(dumps)-1].Events) == 0 {
		t.Fatal("no flight-recorder dump of the offending chain")
	}
}

// TestServeEndpointsDuringHold checks the -serve lifecycle end to end:
// runWithOutputs serves, holds, and the held server answers /metrics,
// /healthz and /flows/{id} with live content.
func TestServeEndpointsDuringHold(t *testing.T) {
	o := baseOpts()
	o.tsDeadline = time.Microsecond
	o.serve = "127.0.0.1:18462"

	probed := make(chan error, 1)
	oldHold := serveHold
	defer func() { serveHold = oldHold }()
	serveHold = func(*obs.Server) error {
		probed <- probeServe("http://" + o.serve)
		return nil
	}
	if err := runWithOutputs(o); err != nil {
		t.Fatal(err)
	}
	if err := <-probed; err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulShutdownOnSignal drives the real serveHold path: a
// run holds with the telemetry server live, an NDJSON /events stream
// is in flight, and one SIGTERM drains everything — the stream ends
// cleanly, runWithOutputs returns nil (exit 0), and the listener stops
// accepting new connections.
func TestServeGracefulShutdownOnSignal(t *testing.T) {
	o := baseOpts()
	o.serve = "127.0.0.1:18463"

	sig := make(chan os.Signal, 1)
	oldSignals := serveSignals
	defer func() { serveSignals = oldSignals }()
	serveSignals = func() <-chan os.Signal { return sig }

	done := make(chan error, 1)
	go func() { done <- runWithOutputs(o) }()

	// Wait for the held server to come up.
	base := "http://" + o.serve
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("held server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Attach a streaming request that only ends when the server tells
	// it to. http.Get returns once the handler has flushed headers, so
	// the stream is in flight before the signal fires.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(chan error, 1)
	go func() {
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		streamed <- cerr
	}()

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown surfaced an error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("runWithOutputs did not return after SIGTERM")
	}
	select {
	case err := <-streamed:
		if err != nil {
			t.Fatalf("in-flight /events stream did not drain cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/events stream still open after shutdown returned")
	}
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting connections after drain")
	}
}

// probeServe exercises the held server the way the CI smoke job does.
func probeServe(base string) error {
	get := func(path string) (int, string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}
	if code, body, err := get("/metrics"); err != nil || code != 200 ||
		!strings.Contains(body, "tsn_latency_component_ns") {
		return fmtErr("/metrics", code, err)
	}
	if code, body, err := get("/healthz"); err != nil || code != 200 ||
		!strings.Contains(body, `"ok"`) {
		return fmtErr("/healthz", code, err)
	}
	code, body, err := get("/flows/1")
	if err != nil || code != 200 {
		return fmtErr("/flows/1", code, err)
	}
	var fj struct {
		Count   uint64 `json:"count"`
		WorstNs int64  `json:"worst_ns"`
	}
	if err := json.Unmarshal([]byte(body), &fj); err != nil {
		return err
	}
	if fj.Count == 0 || fj.WorstNs == 0 {
		return fmtErr("/flows/1 empty breakdown", code, nil)
	}
	return nil
}

func fmtErr(what string, code int, err error) error {
	if err != nil {
		return err
	}
	return &probeError{what: what, code: code}
}

type probeError struct {
	what string
	code int
}

func (e *probeError) Error() string {
	return e.what + " failed with status " + http.StatusText(e.code)
}
