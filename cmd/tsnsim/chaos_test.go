package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/chaos"
)

// wedgeProfile writes a small campaign profile guaranteed to seed the
// mid-commit wedge bug (reconfig_prob=1, wedge_prob=1) and returns its
// path — the CLI loads it the way a user's -chaos <file> would.
func wedgeProfile(t *testing.T, dir string) string {
	t.Helper()
	p := chaos.DefaultProfile()
	p.MaxRuns = 6
	p.Topologies = []string{"bidir-ring"}
	p.MaxSwitches = 5
	p.MinTSFlows = 2
	p.MaxTSFlows = 6
	p.MinDurMs = 10
	p.MaxDurMs = 15
	p.MaxFaults = 3
	p.RCMaxMbps = 20
	p.BEMaxMbps = 20
	p.ReconfigProb = 1
	p.WedgeProb = 1
	p.TransientProb = 0
	p.DeterminismEvery = 0
	p.Seed = 7
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wedge-profile.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestChaosCampaignCLI drives the whole -chaos surface: a wedge-heavy
// profile must produce failures, write minimal-repro artifacts, and
// -chaos-replay of an artifact must still reproduce the violation.
func TestChaosCampaignCLI(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "repros")
	failed, err := runChaos(chaosOpts{
		profile:  wedgeProfile(t, dir),
		parallel: 4,
		out:      out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("wedge-heavy campaign reported no failures")
	}
	repros, err := filepath.Glob(filepath.Join(out, "*.repro.json"))
	if err != nil || len(repros) == 0 {
		t.Fatalf("no repro artifacts written to %s (err %v)", out, err)
	}
	reproduced, err := runChaosReplay(repros[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reproduced {
		t.Fatalf("replay of %s did not reproduce", repros[0])
	}
}

// TestChaosReplayBudgetZeroExit checks the passing side of the exit
// contract: a campaign whose oracles all hold reports failed=false.
func TestChaosCleanCampaignPasses(t *testing.T) {
	dir := t.TempDir()
	p := chaos.DefaultProfile()
	p.MaxRuns = 4
	p.Topologies = []string{"ring", "linear"}
	p.MaxSwitches = 5
	p.MinTSFlows = 2
	p.MaxTSFlows = 6
	p.MinDurMs = 10
	p.MaxDurMs = 15
	p.MaxFaults = 2
	p.RCMaxMbps = 0
	p.BEMaxMbps = 0
	p.ReconfigProb = 0
	p.DeterminismEvery = 2
	p.Seed = 3
	data, _ := json.Marshal(p)
	path := filepath.Join(dir, "clean.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	failed, err := runChaos(chaosOpts{profile: path, parallel: 2, out: dir})
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("clean campaign reported failures")
	}
}

// TestChaosReproReplaysThroughPlainTsnsim proves the acceptance
// contract end to end: the minimal repro's sidecar files drive a plain
// tsnsim run (-faults/-reconfig), i.e. the artifact is not tied to the
// chaos harness.
func TestChaosReproReplaysThroughPlainTsnsim(t *testing.T) {
	dir := t.TempDir()
	failed, err := runChaos(chaosOpts{
		profile:  wedgeProfile(t, dir),
		parallel: 4,
		out:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("campaign found nothing to replay")
	}
	repros, _ := filepath.Glob(filepath.Join(dir, "*.repro.json"))
	repro, err := chaos.LoadRepro(repros[0])
	if err != nil {
		t.Fatal(err)
	}
	c := repro.Case
	o := runOpts{
		topo: c.Topology, switches: c.Switches, flows: c.TSFlows,
		hops: c.Hops, size: c.WireSize, slotUs: c.SlotUs,
		rcMbps: c.RCMbps, beMbps: c.BEMbps, durMs: c.DurMs,
		seed: c.Seed, frer: c.FRERFlows, watchdog: c.Watchdog,
		retries: c.RetryMax,
		backoff: time.Duration(c.RetryBackoffUs) * time.Microsecond,
	}
	base := strings.TrimSuffix(repros[0], ".repro.json")
	if _, err := os.Stat(base + ".faults.json"); err == nil {
		o.faults = base + ".faults.json"
	}
	if _, err := os.Stat(base + ".reconfig.json"); err == nil {
		o.reconfig = base + ".reconfig.json"
	}
	if o.faults == "" || o.reconfig == "" {
		t.Fatalf("wedge repro missing sidecars (faults=%q reconfig=%q)", o.faults, o.reconfig)
	}
	net, err := run(o, nil)
	if err != nil {
		t.Fatalf("plain tsnsim replay rejected the repro: %v", err)
	}
	// The replayed wedge leaves the reconfiguration half-applied: the
	// live config claims the pre state while some switch carries
	// candidate values — exactly what VerifyLive detects.
	if err := net.VerifyLive(); err == nil {
		t.Fatal("replay did not reproduce the partial-commit state")
	}
}
