package psim

import (
	"reflect"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func TestLookaheadTable(t *testing.T) {
	gbit := ethernet.Gbps
	cases := []struct {
		name string
		cuts []CutLink
		want sim.Time
	}{
		{
			// Degenerate: a single partition (or any partitioning of a
			// cut-free graph) has no inter-partition channel at all.
			name: "zero cuts is unbounded",
			cuts: nil,
			want: Unbounded,
		},
		{
			name: "empty slice is unbounded",
			cuts: []CutLink{},
			want: Unbounded,
		},
		{
			// 64-byte min frame at 1 Gbps serializes in 512ns; plus the
			// 100ns cable: no event can cross in under 612ns.
			name: "single gigabit cut",
			cuts: []CutLink{{Prop: 100, Rate: gbit}},
			want: 100 + ethernet.TxTime(ethernet.MinFrameBytes, gbit),
		},
		{
			name: "minimum over heterogeneous cuts",
			cuts: []CutLink{
				{Prop: 10 * sim.Microsecond, Rate: gbit},
				{Prop: 100, Rate: gbit},                // the minimum: 612ns
				{Prop: 100, Rate: 100 * ethernet.Mbps}, // slower wire: 5220ns
				{Prop: 50 * sim.Microsecond, Rate: gbit},
			},
			want: 100 + ethernet.TxTime(ethernet.MinFrameBytes, gbit),
		},
		{
			// Propagation dominates on a long cable even at a slow rate.
			name: "store-and-forward term",
			cuts: []CutLink{{Prop: 0, Rate: 10 * ethernet.Mbps}},
			want: ethernet.TxTime(ethernet.MinFrameBytes, 10*ethernet.Mbps),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Lookahead(c.cuts); got != c.want {
				t.Fatalf("Lookahead = %v, want %v", got, c.want)
			}
		})
	}
	// Sanity anchor for the gigabit numbers above.
	if w := ethernet.TxTime(ethernet.MinFrameBytes, gbit); w != 512 {
		t.Fatalf("min-frame gigabit serialization = %v, want 512ns", w)
	}
}

func TestAssignRingContiguousArcs(t *testing.T) {
	topo := topology.Ring(12)
	assign := Assign(topo, 4)
	// Ascending ID blocks on a ring are the contiguous arcs
	// [0..2] [3..5] [6..8] [9..11].
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	if !reflect.DeepEqual(assign, want) {
		t.Fatalf("assign = %v, want %v", assign, want)
	}
	// A unidirectional 12-ring split into 4 arcs cuts exactly 4 cables.
	if cuts := CutTrunks(topo, assign); len(cuts) != 4 {
		t.Fatalf("cut %d cables, want 4", len(cuts))
	}
}

func TestAssignBalanced(t *testing.T) {
	for _, n := range []int{7, 16, 100} {
		for _, parts := range []int{1, 2, 3, 5, 8} {
			topo := topology.Ring(n)
			assign := Assign(topo, parts)
			count := map[int]int{}
			for _, p := range assign {
				count[p]++
			}
			eff := parts
			if eff > n {
				eff = n
			}
			if len(count) != eff {
				t.Fatalf("ring(%d)/%d: %d non-empty partitions, want %d", n, parts, len(count), eff)
			}
			min, max := n, 0
			for _, c := range count {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Fatalf("ring(%d)/%d: imbalanced partitions %v", n, parts, count)
			}
		}
	}
}

func TestAssignSinglePartitionHasNoCuts(t *testing.T) {
	topo := topology.Tree(4, 3)
	assign := Assign(topo, 1)
	for sw, p := range assign {
		if p != 0 {
			t.Fatalf("switch %d assigned to %d with one partition", sw, p)
		}
	}
	if cuts := CutTrunks(topo, assign); len(cuts) != 0 {
		t.Fatalf("single partition cut %d cables, want 0", len(cuts))
	}
}

func TestAssignCoversEverySwitch(t *testing.T) {
	for _, build := range []func() *topology.Topology{
		func() *topology.Topology { return topology.Star(6) },
		func() *topology.Topology { return topology.Linear(9) },
		func() *topology.Topology { return topology.RingBidir(8) },
		func() *topology.Topology { return topology.Tree(3, 4) },
	} {
		topo := build()
		assign := Assign(topo, 3)
		if len(assign) != topo.N {
			t.Fatalf("%v: assign length %d, want %d", topo.Kind, len(assign), topo.N)
		}
		for sw, p := range assign {
			if p < 0 || p >= 3 {
				t.Fatalf("%v: switch %d assigned out of range: %d", topo.Kind, sw, p)
			}
		}
	}
}

// recorder collects scheduled remote deliveries for mailbox tests.
type recorder struct {
	got []Message
}

func (r *recorder) ScheduleRemoteDelivery(f *ethernet.Frame, at, wire sim.Time) {
	r.got = append(r.got, Message{To: r, Frame: f, At: at, Wire: wire})
}

func TestMailboxFIFOThroughOverflow(t *testing.T) {
	rec := &recorder{}
	m := NewMailbox(4)
	frames := make([]*ethernet.Frame, 10)
	for i := range frames {
		frames[i] = &ethernet.Frame{}
		m.Post(Message{To: rec, Frame: frames[i], At: sim.Time(i), Wire: 1})
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d, want 10", m.Len())
	}
	m.Drain()
	if m.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", m.Len())
	}
	if len(rec.got) != 10 {
		t.Fatalf("drained %d messages, want 10", len(rec.got))
	}
	for i, msg := range rec.got {
		if msg.Frame != frames[i] || msg.At != sim.Time(i) {
			t.Fatalf("message %d out of order: at=%v", i, msg.At)
		}
	}
	// The ring is reusable and the overflow slice drained for good.
	rec.got = nil
	m.Post(Message{To: rec, Frame: frames[0], At: 99, Wire: 1})
	m.Drain()
	if len(rec.got) != 1 || rec.got[0].At != 99 {
		t.Fatalf("mailbox not reusable after overflow: %v", rec.got)
	}
}

// engineReceiver schedules drained messages as prioritized engine
// events and records execution order — a stand-in for netdev.Ifc.
type engineReceiver struct {
	engine *sim.Engine
	prio   uint64
	log    *[]sim.Time
}

func (e *engineReceiver) ScheduleRemoteDelivery(f *ethernet.Frame, at, wire sim.Time) {
	e.engine.AtPrio(at, e.prio, "rdeliver", func(en *sim.Engine) {
		*e.log = append(*e.log, en.Now())
	})
}

// TestRunnerPingPong drives two partitions that mail each other a
// "frame" every window and checks both executed the full exchange in
// timestamp order up to the deadline, inclusive.
func TestRunnerPingPong(t *testing.T) {
	const window = sim.Time(100)
	ea, eb := sim.NewEngine(), sim.NewEngine()
	var logA, logB []sim.Time
	recvA := &engineReceiver{engine: ea, prio: 1, log: &logA}
	recvB := &engineReceiver{engine: eb, prio: 2, log: &logB}
	aToB := NewMailbox(2)
	bToA := NewMailbox(2)

	pa, pb := NewPartition(ea), NewPartition(eb)
	pa.AddInbox(bToA)
	pb.AddInbox(aToB)

	// Every 50ns each side posts a message that arrives exactly one
	// window later — the tightest arrival the protocol admits.
	var tickA, tickB sim.Handler
	tickA = func(en *sim.Engine) {
		aToB.Post(Message{To: recvB, Frame: &ethernet.Frame{}, At: en.Now() + window, Wire: 1})
		en.After(50, "tickA", tickA)
	}
	tickB = func(en *sim.Engine) {
		bToA.Post(Message{To: recvA, Frame: &ethernet.Frame{}, At: en.Now() + window, Wire: 1})
		en.After(50, "tickB", tickB)
	}
	ea.At(0, "tickA", tickA)
	eb.At(0, "tickB", tickB)

	r := NewRunner([]*Partition{pa, pb}, window)
	const deadline = sim.Time(1000)
	r.RunUntil(deadline)

	if ea.Now() != deadline || eb.Now() != deadline {
		t.Fatalf("clocks = %v/%v, want %v", ea.Now(), eb.Now(), deadline)
	}
	// Ticks at 0,50,...,1000 arrive at 100,150,...,1100; arrivals ≤ 1000
	// execute: 100..1000 step 50 = 19 deliveries per side.
	for side, log := range map[string][]sim.Time{"A": logA, "B": logB} {
		if len(log) != 19 {
			t.Fatalf("side %s delivered %d messages, want 19 (%v)", side, len(log), log)
		}
		for i, at := range log {
			if want := sim.Time(100 + 50*i); at != want {
				t.Fatalf("side %s delivery %d at %v, want %v", side, i, at, want)
			}
		}
	}
}

// TestRunnerUnboundedWindow checks the zero-cut degenerate case: one
// window straight to the deadline.
func TestRunnerUnboundedWindow(t *testing.T) {
	ea, eb := sim.NewEngine(), sim.NewEngine()
	// One counter per partition: each is touched only by its own worker.
	ran := make([]int, 2)
	for i, e := range []*sim.Engine{ea, eb} {
		i := i
		var tick sim.Handler
		tick = func(en *sim.Engine) {
			ran[i]++
			en.After(10, "tick", tick)
		}
		e.At(0, "tick", tick)
	}
	r := NewRunner([]*Partition{NewPartition(ea), NewPartition(eb)}, Unbounded)
	r.RunUntil(1000)
	if ea.Now() != 1000 || eb.Now() != 1000 {
		t.Fatalf("clocks = %v/%v, want 1000", ea.Now(), eb.Now())
	}
	if ran[0]+ran[1] != 2*101 {
		t.Fatalf("ran %d events, want %d", ran[0]+ran[1], 2*101)
	}
}

// TestRunnerRepeatedRunUntil checks a runner advances across several
// calls (the testbed runs warmup and measurement as separate spans).
func TestRunnerRepeatedRunUntil(t *testing.T) {
	e := sim.NewEngine()
	n := 0
	var tick sim.Handler
	tick = func(en *sim.Engine) {
		n++
		en.After(30, "tick", tick)
	}
	e.At(0, "tick", tick)
	r := NewRunner([]*Partition{NewPartition(e)}, 100)
	r.RunUntil(300)
	if n != 11 {
		t.Fatalf("after first span: %d ticks, want 11", n)
	}
	r.RunUntil(600)
	if n != 21 {
		t.Fatalf("after second span: %d ticks, want 21", n)
	}
	if e.Now() != 600 {
		t.Fatalf("Now = %v, want 600", e.Now())
	}
}

func TestNewRunnerRejectsNonPositiveWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewRunner([]*Partition{NewPartition(sim.NewEngine())}, 0)
}
