// Package psim is the conservative parallel discrete-event layer over
// internal/sim: it shards one large topology into partitions, gives
// each partition its own event heap (a plain sim.Engine) and worker
// goroutine, and synchronizes them with barrier-stepped conservative
// lookahead.
//
// The safe window W is the minimum over cut links (links whose
// endpoints land in different partitions) of propagation plus
// store-and-forward serialization of a minimum frame: an event
// executing at time t in one partition cannot affect another partition
// before t+W, because the only inter-partition channel is a frame on a
// cut link, and a frame launched at t is delivered no earlier than
// t + TxTime(min frame) + prop ≥ t + W. Each partition therefore runs
// the half-open window [T, T+W) to completion without hearing from its
// neighbors, the workers barrier, cross-partition deliveries drain
// from their mailboxes onto the receiving engines, and the next window
// begins. With no cut links the window is Unbounded and the run
// degenerates to one uninterrupted serial pass per partition.
//
// Determinism contract: merged execution order is a function of the
// model, not of goroutine scheduling. Same-instant events order by
// (prio, scheduling order) inside every engine; frame deliveries carry
// the receiving interface's global index as prio (two deliveries to
// one interface can never tie — the wire serializes them), so at any
// instant each engine executes its locals in FIFO order and its
// deliveries in interface order, exactly as the serial engine would.
// Cross-partition deliveries are stamped with their precomputed
// (arrival time, interface prio) and drained in a fixed mailbox order,
// making the partitioned run byte-identical to the serial run on every
// exported metric.
package psim

import (
	"fmt"
	"math"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// Unbounded is the lookahead of a partitioning with no cut links: the
// partitions never interact and each runs to its deadline in one
// window.
const Unbounded = sim.Time(math.MaxInt64)

// CutLink describes one link crossing a partition boundary, in the
// terms the lookahead derivation needs: its propagation delay and line
// rate.
type CutLink struct {
	Prop sim.Time
	Rate ethernet.Rate
}

// Lookahead returns the conservative safe window for a set of cut
// links: the minimum over links of propagation + store-and-forward
// serialization of a minimum Ethernet frame. A frame transmitted at
// time t on a cut link arrives at t + TxTime(wireBytes) + prop with
// wireBytes ≥ MinFrameBytes, so no event at time t can affect a remote
// partition before t + Lookahead. Zero cut links (including the
// degenerate single-partition case) return Unbounded.
func Lookahead(cuts []CutLink) sim.Time {
	w := Unbounded
	for _, c := range cuts {
		d := c.Prop + ethernet.TxTime(ethernet.MinFrameBytes, c.Rate)
		if d < w {
			w = d
		}
	}
	return w
}

// Assign shards a topology's switches into parts partitions and
// returns the per-switch partition index: contiguous, balanced,
// ascending switch-ID blocks (switch sw goes to sw*parts/N).
//
// Contiguous ID blocks are load-bearing twice over. First, parity:
// the serial testbed registers every switch's metric samples in
// ascending switch-ID order, and merging per-partition registries
// appends each partition's samples in partition order — so the merged
// sample order equals the serial order exactly when the partitions
// are ascending ID ranges. Second, edge cut: every topology this repo
// generates numbers switches locality-preservingly (a ring's arcs, a
// chain's segments, a tree's levels, a grid's rows, a fat-tree's
// pods), so adjacent IDs are usually adjacent in the graph and an ID
// band cuts few cables. Hosts are not assigned here: each NIC follows
// the switch it attaches to. parts must be ≥ 1; parts > N collapses
// to one switch per partition.
func Assign(t *topology.Topology, parts int) []int {
	if parts < 1 {
		panic(fmt.Sprintf("psim: Assign with %d partitions", parts))
	}
	if parts > t.N {
		parts = t.N
	}
	assign := make([]int, t.N)
	for sw := 0; sw < t.N; sw++ {
		assign[sw] = sw * parts / t.N
	}
	return assign
}

// CutTrunks returns the physical cables whose endpoints land in
// different partitions under assign, in TrunkLinks order.
func CutTrunks(t *topology.Topology, assign []int) []topology.Link {
	var out []topology.Link
	for _, l := range t.TrunkLinks() {
		if assign[l.A.Switch] != assign[l.B.Switch] {
			out = append(out, l)
		}
	}
	return out
}
