package psim

import (
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// RemoteReceiver schedules a cross-partition frame delivery onto the
// receiving partition's engine. netdev.Ifc implements it.
type RemoteReceiver interface {
	ScheduleRemoteDelivery(f *ethernet.Frame, at, wire sim.Time)
}

// Message is one frame in flight across a partition boundary: the
// receiving interface, the frame, its precomputed arrival instant and
// the final fragment's wire time (the attribution hop closure needs
// it). The arrival instant is what makes drain-then-run conservative:
// At is always ≥ the next window's start, so scheduling it never
// violates the receiving engine's causality check.
type Message struct {
	To    RemoteReceiver
	Frame *ethernet.Frame
	At    sim.Time
	Wire  sim.Time
}

// Mailbox is the bounded SPSC channel one directed cut link posts its
// deliveries through. It carries no locks or atomics: the barrier
// protocol is its synchronization. The producer (the sending
// partition's worker) posts only during run phases, the consumer (the
// receiving partition's worker) drains only during drain phases, and
// every phase change passes through a barrier, which establishes the
// happens-before edge between the producer's writes and the consumer's
// reads. The fixed-capacity ring is the steady-state path; a burst
// beyond capacity spills to an overflow slice (never dropped) that
// drains after the ring, preserving post order.
type Mailbox struct {
	ring     []Message
	n        int
	overflow []Message
}

// NewMailbox returns a mailbox with the given ring capacity.
func NewMailbox(capacity int) *Mailbox {
	if capacity < 1 {
		capacity = 1
	}
	return &Mailbox{ring: make([]Message, capacity)}
}

// Post appends one message. Producer-side only (run phase).
func (m *Mailbox) Post(msg Message) {
	if m.n < len(m.ring) {
		m.ring[m.n] = msg
		m.n++
		return
	}
	m.overflow = append(m.overflow, msg)
}

// Drain consumes every posted message in post order (ring first, then
// overflow — the ring is always older) and schedules it on the
// receiving engine. Consumer-side only (drain phase). Message slots
// are cleared so a parked mailbox never pins frame payloads.
func (m *Mailbox) Drain() {
	for i := 0; i < m.n; i++ {
		msg := &m.ring[i]
		msg.To.ScheduleRemoteDelivery(msg.Frame, msg.At, msg.Wire)
		*msg = Message{}
	}
	m.n = 0
	for i := range m.overflow {
		msg := &m.overflow[i]
		msg.To.ScheduleRemoteDelivery(msg.Frame, msg.At, msg.Wire)
		*msg = Message{}
	}
	m.overflow = m.overflow[:0]
}

// Len reports how many messages are pending.
func (m *Mailbox) Len() int { return m.n + len(m.overflow) }
