package psim

import (
	"fmt"
	"sync"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Partition is one shard of the simulation: its own engine plus the
// mailboxes other partitions post deliveries to it through. Inboxes
// drain in AddInbox order, which the builder fixes (cut links in
// TrunkLinks order), so the merged schedule is independent of worker
// timing. (Order only affects engine-internal seq numbers; the events
// themselves carry (time, interface prio), which fully orders them.)
type Partition struct {
	Engine *sim.Engine
	inbox  []*Mailbox
}

// NewPartition wraps an engine as a partition.
func NewPartition(e *sim.Engine) *Partition { return &Partition{Engine: e} }

// AddInbox registers a mailbox whose messages this partition receives.
func (p *Partition) AddInbox(m *Mailbox) { p.inbox = append(p.inbox, m) }

// drain schedules every pending inbound message on the engine.
func (p *Partition) drain() {
	for _, m := range p.inbox {
		m.Drain()
	}
}

// barrier is a reusable N-party rendezvous. Its mutex hand-off is the
// happens-before edge the lock-free mailboxes rely on.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all parties have arrived.
func (b *barrier) wait() {
	b.mu.Lock()
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	phase := b.phase
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Runner steps a set of partitions through barrier-synchronized
// conservative windows.
type Runner struct {
	parts  []*Partition
	window sim.Time
}

// NewRunner builds a runner over the partitions with the given safe
// window (from Lookahead). A non-positive window would deadlock the
// protocol (zero progress per barrier) and panics; pass Unbounded for
// a partitioning with no cut links.
func NewRunner(parts []*Partition, window sim.Time) *Runner {
	if len(parts) == 0 {
		panic("psim: NewRunner with no partitions")
	}
	if window <= 0 {
		panic(fmt.Sprintf("psim: non-positive lookahead window %v", window))
	}
	return &Runner{parts: parts, window: window}
}

// Window returns the conservative lookahead the runner steps by.
func (r *Runner) Window() sim.Time { return r.window }

// RunUntil advances every partition to the deadline, inclusive —
// the partitioned equivalent of sim.Engine.RunUntil. All engines must
// agree on the current instant (they do after construction, and after
// every RunUntil).
//
// Per window each worker drains its inboxes, barriers (no engine runs
// until every drain is done), executes the half-open window [T, T+W)
// via RunBefore, and barriers again (no drain starts until every
// producer is quiescent). The final window — when less than W remains
// — runs RunUntil(deadline) so events at exactly the deadline execute,
// matching serial semantics; anything posted during it arrives
// strictly beyond the deadline (arrival ≥ T+W > deadline) and is
// drained after the last barrier only so no message is silently lost.
func (r *Runner) RunUntil(deadline sim.Time) {
	start := r.parts[0].Engine.Now()
	for _, p := range r.parts[1:] {
		if p.Engine.Now() != start {
			panic(fmt.Sprintf("psim: partitions disagree on now (%v vs %v)", p.Engine.Now(), start))
		}
	}
	if deadline < start {
		panic(fmt.Sprintf("psim: RunUntil(%v) before now %v", deadline, start))
	}
	bar := newBarrier(len(r.parts))
	var wg sync.WaitGroup
	for _, p := range r.parts {
		wg.Add(1)
		go func(p *Partition) {
			defer wg.Done()
			t := start
			for {
				p.drain()
				bar.wait()
				if deadline-t < r.window {
					p.Engine.RunUntil(deadline)
					bar.wait()
					p.drain()
					return
				}
				limit := t + r.window
				p.Engine.RunBefore(limit)
				t = limit
				bar.wait()
			}
		}(p)
	}
	wg.Wait()
}
