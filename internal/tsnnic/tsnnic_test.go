package tsnnic

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// wirePair connects a generator NIC to a sink NIC back-to-back.
func wirePair(e *sim.Engine) (*NIC, *NIC, *analyzer.Collector) {
	col := analyzer.NewCollector()
	gen := New(e, 1, ethernet.Gbps, nil)
	rcv := New(e, 2, ethernet.Gbps, col)
	netdev.Connect(gen.Ifc(), rcv.Ifc(), 100*sim.Nanosecond)
	return gen, rcv, col
}

func tsSpec() *flows.Spec {
	return &flows.Spec{
		ID: 1, Class: ethernet.ClassTS, SrcHost: 1, DstHost: 2,
		VID: 1, PCP: 7, WireSize: 64, Period: sim.Millisecond,
	}
}

func TestPeriodicTSGeneration(t *testing.T) {
	e := sim.NewEngine()
	gen, _, col := wirePair(e)
	gen.SetStopTime(10 * sim.Millisecond)
	gen.StartFlow(tsSpec())
	e.RunUntil(20 * sim.Millisecond)
	// Ticks at 0,1,...,9 ms → 10 frames.
	if gen.Sent()[1] != 10 {
		t.Fatalf("sent = %d, want 10", gen.Sent()[1])
	}
	st := col.Flow(1)
	if st == nil || st.Received != 10 {
		t.Fatalf("received = %+v", st)
	}
	// Back-to-back link: latency = 512 ns wire + 100 ns prop.
	if st.MeanLatency() != 612 {
		t.Fatalf("latency = %v, want 612ns", st.MeanLatency())
	}
	if st.Jitter() != 0 {
		t.Fatalf("jitter = %v, want 0 on a dedicated wire", st.Jitter())
	}
}

func TestOffsetDelaysFirstFrame(t *testing.T) {
	e := sim.NewEngine()
	gen, _, col := wirePair(e)
	spec := tsSpec()
	spec.Offset = 300 * sim.Microsecond
	gen.SetStopTime(sim.Millisecond)
	gen.StartFlow(spec)
	e.RunUntil(2 * sim.Millisecond)
	if gen.Sent()[1] != 1 {
		t.Fatalf("sent = %d, want 1", gen.Sent()[1])
	}
	// Frame left at 300 µs.
	st := col.Flow(1)
	if st.Received != 1 {
		t.Fatal("frame lost")
	}
}

func TestRCPacing(t *testing.T) {
	e := sim.NewEngine()
	gen, _, col := wirePair(e)
	// 100 Mbps RC flow of 1024B frames: interval = 1044B*8/100M = 83.52µs
	// → ~119 frames in 10 ms.
	spec := flows.Background(7, ethernet.ClassRC, 1, 2, 1, 100*ethernet.Mbps)
	gen.SetStopTime(10 * sim.Millisecond)
	gen.StartFlow(spec)
	e.RunUntil(20 * sim.Millisecond)
	sent := gen.Sent()[7]
	if sent < 115 || sent > 123 {
		t.Fatalf("RC frames in 10ms = %d, want ~119", sent)
	}
	if col.Flow(7).Received != sent {
		t.Fatal("RC frames lost on dedicated wire")
	}
}

func TestStrictPriorityAtNIC(t *testing.T) {
	// Saturating BE + periodic TS on one NIC: TS frames still leave
	// within one MTU time of their schedule.
	e := sim.NewEngine()
	gen, _, col := wirePair(e)
	be := flows.Background(2, ethernet.ClassBE, 1, 2, 1, 990*ethernet.Mbps)
	be.WireSize = 1500
	gen.SetStopTime(50 * sim.Millisecond)
	gen.StartFlow(be)
	gen.StartFlow(tsSpec())
	e.RunUntil(60 * sim.Millisecond)
	st := col.Flow(1)
	if st == nil || st.Received == 0 {
		t.Fatal("no TS frames received")
	}
	// Worst case: TS waits one 1500B frame (12.16 µs) + own wire time.
	if st.MaxLat > 15*sim.Microsecond {
		t.Fatalf("TS max latency %v behind BE, want < 15µs", st.MaxLat)
	}
}

func TestSentAtStampedOnWire(t *testing.T) {
	// When the MAC delays a frame, SentAt must reflect wire entry, not
	// schedule time.
	e := sim.NewEngine()
	gen, _, col := wirePair(e)
	big := flows.Background(2, ethernet.ClassBE, 1, 2, 1, ethernet.Mbps)
	big.WireSize = 1500
	ts := tsSpec()
	gen.SetStopTime(sim.Millisecond)
	// Both injected at t=0: BE first grabs the wire (FIFO drain order
	// is by injection), TS queues ~12 µs.
	gen.StartFlow(big)
	gen.StartFlow(ts)
	e.RunUntil(2 * sim.Millisecond)
	st := col.Flow(1)
	if st == nil || st.Received != 1 {
		t.Fatal("TS frame missing")
	}
	// Latency excludes MAC queueing: still wire+prop only.
	if st.MeanLatency() != 612 {
		t.Fatalf("TS latency = %v, want 612ns", st.MeanLatency())
	}
}

func TestWrongHostPanics(t *testing.T) {
	e := sim.NewEngine()
	gen, _, _ := wirePair(e)
	spec := tsSpec()
	spec.SrcHost = 42
	defer func() {
		if recover() == nil {
			t.Error("wrong-host StartFlow did not panic")
		}
	}()
	gen.StartFlow(spec)
}

func TestInvalidSpecPanics(t *testing.T) {
	e := sim.NewEngine()
	gen, _, _ := wirePair(e)
	spec := tsSpec()
	spec.Period = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid spec did not panic")
		}
	}()
	gen.StartFlow(spec)
}

func TestSeqIncrements(t *testing.T) {
	e := sim.NewEngine()
	gen, rcv, _ := wirePair(e)
	_ = rcv
	col := analyzer.NewCollector()
	rcv.Collector = col
	gen.SetStopTime(5 * sim.Millisecond)
	gen.StartFlow(tsSpec())
	e.RunUntil(10 * sim.Millisecond)
	if gen.Sent()[1] != 5 {
		t.Fatalf("sent = %d", gen.Sent()[1])
	}
}
