// Package tsnnic models the paper's network tester: a Zynq-based NIC
// ("TSNNic") that injects user-defined TS/RC/BE flows into the TSN
// network and, at the receive side, hands frames to the analyzer.
//
// Each NIC has a strict-priority MAC with one FIFO per traffic class,
// so a periodic TS injection is never stuck behind a queued background
// frame for more than one MTU time. TS flows fire at offset + k·period
// (the offset comes from the ITP planner); RC and BE flows are paced at
// their configured rate.
package tsnnic

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// NIC is one tester endpoint.
type NIC struct {
	HostID int

	engine *sim.Engine
	ifc    *netdev.Ifc

	// Strict-priority MAC FIFOs indexed by class (TS > RC > BE).
	fifos [3][]*ethernet.Frame
	busy  bool

	// Collector receives frames arriving at this NIC; shared collectors
	// across NICs are allowed (one "analyzer" box).
	Collector *analyzer.Collector

	// sent counts transmitted frames per flow.
	sent map[uint32]uint64
	seq  map[uint32]uint32

	// stopAt bounds generation (0 = unbounded).
	stopAt sim.Time
}

// New creates a NIC for hostID on engine with the given line rate.
func New(engine *sim.Engine, hostID int, rate ethernet.Rate, col *analyzer.Collector) *NIC {
	n := &NIC{
		HostID:    hostID,
		engine:    engine,
		Collector: col,
		sent:      make(map[uint32]uint64),
		seq:       make(map[uint32]uint32),
	}
	n.ifc = netdev.NewIfc(engine, fmt.Sprintf("nic%d", hostID), n, rate)
	return n
}

// Ifc returns the NIC's physical interface for cabling.
func (n *NIC) Ifc() *netdev.Ifc { return n.ifc }

// SetStopTime bounds flow generation: no frame is enqueued at or after
// t. Zero means unbounded.
func (n *NIC) SetStopTime(t sim.Time) { n.stopAt = t }

// Sent returns per-flow transmit counts (live map; read-only use).
func (n *NIC) Sent() map[uint32]uint64 { return n.sent }

// Receive implements netdev.Receiver: arriving frames go to the
// analyzer collector.
func (n *NIC) Receive(f *ethernet.Frame, on *netdev.Ifc) {
	if n.Collector != nil {
		n.Collector.Record(f, n.engine.Now())
	}
}

// classIndex orders FIFOs: 0 = TS (highest), 1 = RC, 2 = BE.
func classIndex(c ethernet.Class) int {
	switch c {
	case ethernet.ClassTS:
		return 0
	case ethernet.ClassRC:
		return 1
	default:
		return 2
	}
}

// drain starts the next transmission if the wire is free, strict
// priority across the class FIFOs.
func (n *NIC) drain() {
	if n.busy {
		return
	}
	for ci := 0; ci < 3; ci++ {
		if len(n.fifos[ci]) == 0 {
			continue
		}
		f := n.fifos[ci][0]
		n.fifos[ci] = n.fifos[ci][1:]
		// Stamp the tester timestamp when the frame actually hits the
		// wire: queueing inside the tester is not network latency.
		f.SentAt = n.engine.Now()
		n.busy = true
		n.ifc.Transmit(f, func() {
			n.busy = false
			n.drain()
		})
		return
	}
}

// inject enqueues one frame of spec into the MAC.
func (n *NIC) inject(spec *flows.Spec) {
	seq := n.seq[spec.ID]
	n.seq[spec.ID] = seq + 1
	n.sent[spec.ID]++
	f := &ethernet.Frame{
		Dst:       ethernet.HostMAC(spec.DstHost),
		Src:       ethernet.HostMAC(spec.SrcHost),
		VID:       spec.VID,
		PCP:       spec.PCP,
		EtherType: ethernet.TypeTSN,
		Payload:   make([]byte, ethernet.PayloadForWireSize(spec.WireSize)),
		FlowID:    spec.ID,
		Seq:       seq,
		Class:     spec.Class,
	}
	ci := classIndex(spec.Class)
	n.fifos[ci] = append(n.fifos[ci], f)
	n.drain()
}

// StartFlow schedules spec's generation. TS flows fire at
// Offset + k·Period; RC/BE flows are paced at their rate starting at
// Offset.
func (n *NIC) StartFlow(spec *flows.Spec) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.SrcHost != n.HostID {
		panic(fmt.Sprintf("tsnnic: flow %d src host %d started on NIC %d",
			spec.ID, spec.SrcHost, n.HostID))
	}
	interval := spec.FrameInterval()
	burst := spec.BurstFrames()
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		if n.stopAt > 0 && e.Now() >= n.stopAt {
			return
		}
		for i := 0; i < burst; i++ {
			n.inject(spec)
		}
		e.After(interval, fmt.Sprintf("flow%d", spec.ID), tick)
	}
	n.engine.At(n.engine.Now()+spec.Offset, fmt.Sprintf("flow%d-start", spec.ID), tick)
}
