// Package tsnnic models the paper's network tester: a Zynq-based NIC
// ("TSNNic") that injects user-defined TS/RC/BE flows into the TSN
// network and, at the receive side, hands frames to the analyzer.
//
// Each NIC has a strict-priority MAC with one FIFO per traffic class,
// so a periodic TS injection is never stuck behind a queued background
// frame for more than one MTU time. TS flows fire at offset + k·period
// (the offset comes from the ITP planner); RC and BE flows are paced at
// their configured rate.
package tsnnic

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// NIC is one tester endpoint.
type NIC struct {
	HostID int

	engine *sim.Engine
	ifc    *netdev.Ifc

	// Strict-priority MAC FIFOs indexed by class (TS > RC > BE).
	fifos [3][]*ethernet.Frame
	busy  bool

	// Collector receives frames arriving at this NIC; shared collectors
	// across NICs are allowed (one "analyzer" box).
	Collector *analyzer.Collector

	// sent counts transmitted frames per flow. FRER flows count each
	// sequence number once: the member-stream replica is redundancy,
	// not offered load.
	sent map[uint32]uint64
	seq  map[uint32]uint32

	// replicate maps flow ID → alternate VID for 802.1CB talker-side
	// replication; replicas counts the extra member-stream frames.
	replicate map[uint32]uint16
	replicas  uint64

	// recovery, when set, is the listener-side 802.1CB sequence
	// recovery run on every arriving frame before the collector.
	recovery *frer.Table

	// stopAt bounds generation (0 = unbounded).
	stopAt sim.Time
}

// New creates a NIC for hostID on engine with the given line rate.
func New(engine *sim.Engine, hostID int, rate ethernet.Rate, col *analyzer.Collector) *NIC {
	n := &NIC{
		HostID:    hostID,
		engine:    engine,
		Collector: col,
		sent:      make(map[uint32]uint64),
		seq:       make(map[uint32]uint32),
	}
	n.ifc = netdev.NewIfc(engine, fmt.Sprintf("nic%d", hostID), n, rate)
	return n
}

// Ifc returns the NIC's physical interface for cabling.
func (n *NIC) Ifc() *netdev.Ifc { return n.ifc }

// SetStopTime bounds flow generation: no frame is enqueued at or after
// t. Zero means unbounded.
func (n *NIC) SetStopTime(t sim.Time) { n.stopAt = t }

// Sent returns per-flow transmit counts (live map; read-only use).
func (n *NIC) Sent() map[uint32]uint64 { return n.sent }

// SetReplication enables 802.1CB talker-side replication for flow id:
// every injected frame is duplicated onto a member stream tagged
// altVID, which the network forwards along a disjoint path.
func (n *NIC) SetReplication(id uint32, altVID uint16) {
	if n.replicate == nil {
		n.replicate = make(map[uint32]uint16)
	}
	n.replicate[id] = altVID
}

// SetRecovery installs the listener-side sequence-recovery table:
// arriving frames of registered streams pass the 802.1CB vector
// recovery function; eliminated duplicates and rogues are reported to
// the collector as such, never as deliveries.
func (n *NIC) SetRecovery(t *frer.Table) { n.recovery = t }

// Recovery returns the listener's sequence-recovery table (nil when
// FRER is not in use).
func (n *NIC) Recovery() *frer.Table { return n.recovery }

// Replicas returns how many member-stream duplicates this talker
// emitted.
func (n *NIC) Replicas() uint64 { return n.replicas }

// Receive implements netdev.Receiver: arriving frames pass sequence
// recovery (when configured) and then go to the analyzer collector.
func (n *NIC) Receive(f *ethernet.Frame, on *netdev.Ifc) {
	if n.recovery != nil {
		switch n.recovery.Accept(f.FlowID, f.Seq) {
		case frer.Duplicate:
			if n.Collector != nil {
				n.Collector.NoteDuplicate(f.FlowID)
			}
			return
		case frer.Rogue:
			if n.Collector != nil {
				n.Collector.NoteRogue(f.FlowID)
			}
			return
		}
	}
	if n.Collector != nil {
		n.Collector.Record(f, n.engine.Now())
	}
}

// classIndex orders FIFOs: 0 = TS (highest), 1 = RC, 2 = BE.
func classIndex(c ethernet.Class) int {
	switch c {
	case ethernet.ClassTS:
		return 0
	case ethernet.ClassRC:
		return 1
	default:
		return 2
	}
}

// drain starts the next transmission if the wire is free, strict
// priority across the class FIFOs.
func (n *NIC) drain() {
	if n.busy {
		return
	}
	for ci := 0; ci < 3; ci++ {
		if len(n.fifos[ci]) == 0 {
			continue
		}
		f := n.fifos[ci][0]
		n.fifos[ci] = n.fifos[ci][1:]
		// Stamp the tester timestamp when the frame actually hits the
		// wire: queueing inside the tester is not network latency. The
		// attribution span anchors at the same instant so its buckets
		// sum exactly to the analyzer's latency.
		f.SentAt = n.engine.Now()
		f.Span.Begin(f.SentAt)
		n.busy = true
		n.ifc.Transmit(f, func() {
			n.busy = false
			n.drain()
		})
		return
	}
}

// inject enqueues one frame of spec into the MAC.
func (n *NIC) inject(spec *flows.Spec) {
	seq := n.seq[spec.ID]
	n.seq[spec.ID] = seq + 1
	n.sent[spec.ID]++
	f := &ethernet.Frame{
		Dst:       ethernet.HostMAC(spec.DstHost),
		Src:       ethernet.HostMAC(spec.SrcHost),
		VID:       spec.VID,
		PCP:       spec.PCP,
		EtherType: ethernet.TypeTSN,
		Payload:   make([]byte, ethernet.PayloadForWireSize(spec.WireSize)),
		FlowID:    spec.ID,
		Seq:       seq,
		Class:     spec.Class,
	}
	ci := classIndex(spec.Class)
	n.fifos[ci] = append(n.fifos[ci], f)
	// 802.1CB replication: the member stream is the same frame (same
	// FlowID, same sequence number) tagged with the alternate VID, so
	// the network's forwarding tables steer it onto the disjoint path.
	// It serializes back-to-back behind the primary and is NOT counted
	// in sent: the analyzer's loss accounting is per logical frame.
	if altVID, ok := n.replicate[spec.ID]; ok {
		r := f.CloneHeader() // re-tags the VID, a header field; payload is shared
		r.VID = altVID
		n.fifos[ci] = append(n.fifos[ci], r)
		n.replicas++
	}
	n.drain()
}

// StartFlow schedules spec's generation. TS flows fire at
// Offset + k·Period; RC/BE flows are paced at their rate starting at
// Offset.
func (n *NIC) StartFlow(spec *flows.Spec) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.SrcHost != n.HostID {
		panic(fmt.Sprintf("tsnnic: flow %d src host %d started on NIC %d",
			spec.ID, spec.SrcHost, n.HostID))
	}
	interval := spec.FrameInterval()
	burst := spec.BurstFrames()
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		if n.stopAt > 0 && e.Now() >= n.stopAt {
			return
		}
		for i := 0; i < burst; i++ {
			n.inject(spec)
		}
		e.After(interval, fmt.Sprintf("flow%d", spec.ID), tick)
	}
	n.engine.At(n.engine.Now()+spec.Offset, fmt.Sprintf("flow%d-start", spec.ID), tick)
}
