package flows

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestGenerateTSWorkload(t *testing.T) {
	specs := GenerateTS(TSParams{
		Count:    1024,
		Period:   10 * sim.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts:    func(i int) (int, int) { return 100, 200 },
		Seed:     1,
	})
	if len(specs) != 1024 {
		t.Fatalf("count = %d", len(specs))
	}
	deadlines := map[sim.Time]int{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Class != ethernet.ClassTS || s.Period != 10*sim.Millisecond || s.WireSize != 64 {
			t.Fatalf("spec = %+v", s)
		}
		deadlines[s.Deadline]++
	}
	// All four deadline classes should appear in 1024 draws.
	if len(deadlines) != len(DeadlineSet) {
		t.Fatalf("deadline classes drawn = %d, want %d", len(deadlines), len(DeadlineSet))
	}
	for _, d := range DeadlineSet {
		if deadlines[d] == 0 {
			t.Fatalf("deadline %v never drawn", d)
		}
	}
}

func TestGenerateTSDeterministic(t *testing.T) {
	gen := func() []*Spec {
		return GenerateTS(TSParams{
			Count: 10, Period: sim.Millisecond, WireSize: 128,
			Hosts: func(i int) (int, int) { return i, i + 1 },
			Seed:  7,
		})
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i].Deadline != b[i].Deadline {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestBackgroundFlow(t *testing.T) {
	s := Background(5000, ethernet.ClassRC, 1, 2, 1, 100*ethernet.Mbps)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.WireSize != 1024 {
		t.Fatalf("background wire size = %d, want 1024 (paper)", s.WireSize)
	}
	if s.PCP != 5 {
		t.Fatalf("RC PCP = %d", s.PCP)
	}
	// Pacing: 1044B per frame at 100 Mbps ≈ 83.52 µs.
	iv := s.FrameInterval()
	if iv < 83*sim.Microsecond || iv > 84*sim.Microsecond {
		t.Fatalf("FrameInterval = %v", iv)
	}
}

func TestBackgroundPanicsOnTS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Background with TS class did not panic")
		}
	}()
	Background(1, ethernet.ClassTS, 1, 2, 1, ethernet.Mbps)
}

func TestValidateErrors(t *testing.T) {
	bad := []*Spec{
		{ID: 1, Class: ethernet.ClassTS, WireSize: 10, Period: sim.Millisecond},   // tiny frame
		{ID: 2, Class: ethernet.ClassTS, WireSize: 9000, Period: sim.Millisecond}, // jumbo
		{ID: 3, Class: ethernet.ClassTS, WireSize: 64},                            // no period
		{ID: 4, Class: ethernet.ClassRC, WireSize: 64},                            // no rate
		{ID: 5, Class: ethernet.Class(9), WireSize: 64},                           // unknown class
		{ID: 6, Class: ethernet.ClassTS, WireSize: 64, Period: 100, Offset: 200},  // offset >= period
		{ID: 7, Class: ethernet.ClassTS, WireSize: 64, Period: 100, Offset: -1},   // negative offset
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", s.ID, s)
		}
	}
	good := &Spec{ID: 8, Class: ethernet.ClassTS, WireSize: 64, Period: 100, Offset: 50}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestFrameIntervalTS(t *testing.T) {
	s := &Spec{Class: ethernet.ClassTS, Period: 10 * sim.Millisecond}
	if s.FrameInterval() != 10*sim.Millisecond {
		t.Fatal("TS interval must equal period")
	}
}

func TestPCPFor(t *testing.T) {
	if PCPFor(ethernet.ClassTS) != 7 || PCPFor(ethernet.ClassRC) != 5 || PCPFor(ethernet.ClassBE) != 0 {
		t.Fatal("PCP mapping wrong")
	}
}

func TestSplitMulticast(t *testing.T) {
	tmpl := &Spec{
		ID: 100, Class: ethernet.ClassTS, SrcHost: 1,
		WireSize: 64, Period: sim.Millisecond, VID: 9,
		Path: []int{1, 2, 3},
	}
	out := SplitMulticast(tmpl, []int{10, 11, 12})
	if len(out) != 3 {
		t.Fatalf("split = %d specs", len(out))
	}
	for i, s := range out {
		if s.ID != uint32(100+i) || s.DstHost != 10+i {
			t.Fatalf("spec %d = %+v", i, s)
		}
		if s.Path != nil {
			t.Fatal("path must be cleared for re-binding")
		}
		if s.VID != 9 || s.Period != sim.Millisecond || s.SrcHost != 1 {
			t.Fatal("template fields not copied")
		}
	}
	// The template itself is untouched.
	if tmpl.DstHost != 0 || len(tmpl.Path) != 3 {
		t.Fatal("template mutated")
	}
}

func TestSplitMulticastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty destination set did not panic")
		}
	}()
	SplitMulticast(&Spec{}, nil)
}

func TestGenerateTSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid TSParams did not panic")
		}
	}()
	GenerateTS(TSParams{Count: 0})
}
