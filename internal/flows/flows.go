// Package flows describes the traffic of a TSN application scenario:
// Time-Sensitive (TS), Rate-Constrained (RC) and Best-Effort (BE) flow
// specifications (§II.A), plus an IEC 60802-style scenario generator
// matching the paper's evaluation workload — 1024 periodic TS flows
// with 10 ms periods, deadlines drawn from {1,2,4,8 ms} and packet
// sizes from {64,...,1500 B}.
package flows

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Spec is one flow's static description, the unit the classification
// and switch tables are dimensioned from.
type Spec struct {
	ID    uint32
	Class ethernet.Class
	// SrcHost/DstHost are end-device identifiers.
	SrcHost, DstHost int
	VID              uint16
	PCP              uint8
	// WireSize is the on-wire frame size in bytes (excluding
	// preamble/IFG).
	WireSize int

	// Period and Deadline apply to TS flows.
	Period   sim.Time
	Deadline sim.Time
	// Offset is the injection phase within the period, assigned by the
	// ITP planner.
	Offset sim.Time

	// Rate is the reserved/offered bandwidth of RC and BE flows.
	Rate ethernet.Rate
	// Burst is how many back-to-back frames RC/BE flows emit per tick
	// (0 or 1 = smooth pacing). The tick interval scales with the
	// burst so the average rate is unchanged.
	Burst int

	// Path is the switch sequence the flow traverses (filled by the
	// testbed from the topology).
	Path []int

	// FRER enables 802.1CB seamless redundancy: the talker replicates
	// every frame onto a second, link-disjoint member stream carried on
	// AltVID along AltPath, and the listener eliminates duplicates in
	// its sequence-recovery table. AltVID must differ from VID so the
	// two member streams hit distinct forwarding entries.
	FRER    bool
	AltVID  uint16
	AltPath []int
}

// Validate checks that the spec is internally consistent.
func (s *Spec) Validate() error {
	if s.WireSize < ethernet.MinFrameBytes || s.WireSize > ethernet.MaxFrameBytes {
		return fmt.Errorf("flows: flow %d wire size %d", s.ID, s.WireSize)
	}
	switch s.Class {
	case ethernet.ClassTS:
		if s.Period <= 0 {
			return fmt.Errorf("flows: TS flow %d without period", s.ID)
		}
		if s.Offset < 0 || (s.Period > 0 && s.Offset >= s.Period) {
			return fmt.Errorf("flows: TS flow %d offset %v outside period %v", s.ID, s.Offset, s.Period)
		}
	case ethernet.ClassRC, ethernet.ClassBE:
		if s.Rate <= 0 {
			return fmt.Errorf("flows: %v flow %d without rate", s.Class, s.ID)
		}
		if s.Burst < 0 {
			return fmt.Errorf("flows: flow %d negative burst", s.ID)
		}
	default:
		return fmt.Errorf("flows: flow %d unknown class %d", s.ID, s.Class)
	}
	if s.FRER {
		if s.Class != ethernet.ClassTS {
			return fmt.Errorf("flows: FRER flow %d must be TS, is %v", s.ID, s.Class)
		}
		if s.AltVID == 0 || s.AltVID == s.VID {
			return fmt.Errorf("flows: FRER flow %d needs AltVID distinct from VID %d", s.ID, s.VID)
		}
	}
	return nil
}

// FrameInterval returns the emission interval: the period for TS flows,
// or the pacing interval that realizes Rate for RC/BE flows (per burst
// of BurstFrames frames).
func (s *Spec) FrameInterval() sim.Time {
	if s.Class == ethernet.ClassTS {
		return s.Period
	}
	return ethernet.TxTime(s.WireSize+ethernet.OverheadBytes, s.Rate) * sim.Time(s.BurstFrames())
}

// BurstFrames returns the frames emitted per tick (≥ 1).
func (s *Spec) BurstFrames() int {
	if s.Burst < 1 {
		return 1
	}
	return s.Burst
}

// PCPFor returns the conventional priority code point for a class: TS
// flows ride the highest priority, RC the middle band, BE zero.
func PCPFor(c ethernet.Class) uint8 {
	switch c {
	case ethernet.ClassTS:
		return 7
	case ethernet.ClassRC:
		return 5
	default:
		return 0
	}
}

// DeadlineSet is the paper's IEC 60802-guided deadline choices.
var DeadlineSet = []sim.Time{
	1 * sim.Millisecond,
	2 * sim.Millisecond,
	4 * sim.Millisecond,
	8 * sim.Millisecond,
}

// PacketSizeSet is the paper's TS packet-size sweep.
var PacketSizeSet = []int{64, 128, 256, 512, 1024, 1500}

// TSParams configures GenerateTS.
type TSParams struct {
	Count    int
	Period   sim.Time
	WireSize int
	VID      uint16
	// Hosts maps flow index → (src, dst) end devices. Required.
	Hosts func(i int) (src, dst int)
	// Seed drives the random deadline assignment.
	Seed uint64
}

// GenerateTS builds the paper's TS workload: Count periodic flows of
// one wire size, deadlines drawn uniformly from DeadlineSet.
func GenerateTS(p TSParams) []*Spec {
	if p.Count <= 0 || p.Period <= 0 || p.Hosts == nil {
		panic("flows: invalid TSParams")
	}
	rng := sim.NewRand(p.Seed)
	specs := make([]*Spec, 0, p.Count)
	for i := 0; i < p.Count; i++ {
		src, dst := p.Hosts(i)
		specs = append(specs, &Spec{
			ID:       uint32(i + 1),
			Class:    ethernet.ClassTS,
			SrcHost:  src,
			DstHost:  dst,
			VID:      p.VID,
			PCP:      PCPFor(ethernet.ClassTS),
			WireSize: p.WireSize,
			Period:   p.Period,
			Deadline: sim.Pick(rng, DeadlineSet),
		})
	}
	return specs
}

// SplitMulticast performs the paper's multicast handling (§IV.B: "the
// multicast flows can be split into multiple unicast flows"): one
// template flow to a set of destination hosts becomes one unicast spec
// per destination. IDs extend from the template's (template, +1, ...);
// callers must keep that range free.
func SplitMulticast(template *Spec, dstHosts []int) []*Spec {
	if len(dstHosts) == 0 {
		panic("flows: SplitMulticast without destinations")
	}
	out := make([]*Spec, 0, len(dstHosts))
	for i, dst := range dstHosts {
		s := *template
		s.ID = template.ID + uint32(i)
		s.DstHost = dst
		s.Path = nil // re-bind per destination
		out = append(out, &s)
	}
	return out
}

// Background builds one RC or BE flow of the given rate; the paper sets
// background packet size to 1024 B.
func Background(id uint32, class ethernet.Class, src, dst int, vid uint16, rate ethernet.Rate) *Spec {
	if class != ethernet.ClassRC && class != ethernet.ClassBE {
		panic("flows: Background requires RC or BE class")
	}
	return &Spec{
		ID:       id,
		Class:    class,
		SrcHost:  src,
		DstHost:  dst,
		VID:      vid,
		PCP:      PCPFor(class),
		WireSize: 1024,
		Rate:     rate,
	}
}
