package ethernet

import "github.com/tsnbuilder/tsnbuilder/internal/sim"

// Rate is a link or flow bandwidth in bits per second.
type Rate int64

// Common rates.
const (
	Mbps Rate = 1_000_000
	Gbps Rate = 1_000_000_000
)

// TxTime returns the serialization delay of n on-wire bytes (already
// including preamble/IFG if the caller wants them) at rate r.
func TxTime(n int, r Rate) sim.Time {
	if r <= 0 {
		panic("ethernet: non-positive rate")
	}
	bits := int64(n) * 8
	// Round up: the frame occupies the wire until its last bit leaves.
	return sim.Time((bits*int64(sim.Second) + int64(r) - 1) / int64(r))
}

// FrameTxTime returns the full wire occupancy of frame f at rate r,
// including preamble, SFD and inter-frame gap. This is the pacing
// interval between back-to-back frames.
func FrameTxTime(f *Frame, r Rate) sim.Time {
	return TxTime(f.WireBytes()+OverheadBytes, r)
}

// PayloadForWireSize returns the payload length that yields an on-wire
// frame (excluding preamble/IFG) of exactly size bytes. The paper's
// packet-size sweep {64,128,...,1500} refers to on-wire frame size.
func PayloadForWireSize(size int) int {
	p := size - HeaderBytes - VLANTagBytes - FCSBytes
	if p < 0 {
		p = 0
	}
	return p
}
