package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// EtherType values used by the testbed.
const (
	TypeVLAN uint16 = 0x8100 // 802.1Q tag
	TypeTSN  uint16 = 0x88B5 // experimental: TS/RC/BE test payloads
	TypePTP  uint16 = 0x88F7 // gPTP event/general messages
)

// Frame sizing constants in bytes.
const (
	HeaderBytes   = 14 // dst + src + ethertype
	VLANTagBytes  = 4  // 802.1Q tag
	FCSBytes      = 4  // CRC32 trailer
	MinFrameBytes = 64 // minimum on-wire frame (without preamble)
	MaxFrameBytes = 1522
	// OverheadBytes is preamble (7) + SFD (1) + inter-frame gap (12):
	// consumed on the wire per frame but not stored in buffers.
	OverheadBytes = 20
)

// Class is the TSN traffic class of a flow, in priority order.
type Class uint8

// Traffic classes from the paper's §II.A taxonomy.
const (
	ClassBE Class = iota // best-effort, lowest priority
	ClassRC              // rate-constrained, medium priority
	ClassTS              // time-sensitive, highest priority
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassTS:
		return "TS"
	case ClassRC:
		return "RC"
	case ClassBE:
		return "BE"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Frame is one Ethernet frame traversing the simulated network.
//
// Dataplane-visible fields mirror the real header (addresses, VLAN ID,
// PCP priority, EtherType). FlowID, Seq and the timestamps are
// "tester-side" fields: the hardware TSNNic in the paper embeds them in
// the payload; we carry them as struct fields and also encode them in
// the binary payload so that Marshal/Unmarshal is lossless.
type Frame struct {
	Dst       MAC
	Src       MAC
	VID       uint16 // VLAN ID, 12 bits
	PCP       uint8  // priority code point, 3 bits
	EtherType uint16
	Payload   []byte

	// Tester metadata (encoded in payload for TypeTSN frames).
	FlowID uint32
	Seq    uint32
	Class  Class

	// SentAt is stamped by the generator when the first bit hits the
	// wire; the analyzer computes latency from it. Not on the wire in
	// hardware (the tester correlates by FlowID/Seq); carried here for
	// convenience.
	SentAt sim.Time

	// Span is the per-hop latency attribution context, advanced by
	// netdev at every delivery and by switches at every egress pop. It
	// travels with CloneHeader copies like the other tester metadata
	// and is never marshaled to the wire.
	Span Span
}

// WireBytes returns the frame's on-wire size excluding preamble/IFG:
// header + VLAN tag + payload + FCS, padded to the 64-byte minimum.
func (f *Frame) WireBytes() int {
	n := HeaderBytes + VLANTagBytes + len(f.Payload) + FCSBytes
	if n < MinFrameBytes {
		n = MinFrameBytes
	}
	return n
}

// BufferBytes returns the bytes a switch must store for the frame
// (same as WireBytes; preamble/IFG are never buffered).
func (f *Frame) BufferBytes() int { return f.WireBytes() }

// Payload ownership contract
//
// A frame's Payload is immutable from the instant the frame enters the
// dataplane (NIC injection or Unmarshal). Per-hop forwarding therefore
// copies only the header via CloneHeader — the payload bytes are shared
// by every copy in flight, which removes the dominant per-hop
// allocation of the simulator. Header fields (VID, PCP, addresses) on
// a CloneHeader copy are the copy's own and may be rewritten freely
// (FRER re-tagging does). A path that genuinely needs to rewrite
// payload bytes (a PTP correction-field rewrite in place, fault-model
// bit corruption) must take ownership first with CloneDeep.

// CloneHeader returns a copy of the frame that shares the payload
// bytes — the cheap per-hop copy of the forwarding path. The copy's
// header fields are independent; its Payload aliases the original and
// must be treated as read-only per the payload ownership contract.
func (f *Frame) CloneHeader() *Frame {
	g := *f
	return &g
}

// CloneDeep returns a fully independent copy, payload included. Use it
// on the rare paths that mutate payload bytes in place.
func (f *Frame) CloneDeep() *Frame {
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	return &g
}

// testerHeaderBytes is the encoded size of the tester metadata that
// Marshal prepends to TypeTSN payloads.
const testerHeaderBytes = 4 + 4 + 1 + 8

// MarshaledBytes returns the exact encoded size of the frame: header,
// VLAN tag, tester metadata (TypeTSN only) and payload.
func (f *Frame) MarshaledBytes() int {
	n := HeaderBytes + VLANTagBytes + len(f.Payload)
	if f.EtherType == TypeTSN {
		n += testerHeaderBytes
	}
	return n
}

// AppendMarshal encodes the frame to wire format appended to dst and
// returns the extended slice — the allocation-free codec path when the
// caller recycles its buffer. The tester metadata is embedded at the
// front of the payload for TypeTSN frames, mirroring what the hardware
// TSNNic does.
func (f *Frame) AppendMarshal(dst []byte) []byte {
	need := f.MarshaledBytes()
	off := len(dst)
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	b := dst[off:]
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	binary.BigEndian.PutUint16(b[12:14], TypeVLAN)
	tci := uint16(f.PCP&0x7)<<13 | f.VID&0x0fff
	binary.BigEndian.PutUint16(b[14:16], tci)
	binary.BigEndian.PutUint16(b[16:18], f.EtherType)
	body := b[HeaderBytes+VLANTagBytes:]
	if f.EtherType == TypeTSN {
		binary.BigEndian.PutUint32(body[0:], f.FlowID)
		binary.BigEndian.PutUint32(body[4:], f.Seq)
		body[8] = byte(f.Class)
		binary.BigEndian.PutUint64(body[9:], uint64(f.SentAt))
		body = body[testerHeaderBytes:]
	}
	copy(body, f.Payload)
	return dst
}

// Marshal encodes the frame into one exactly-sized fresh buffer.
func (f *Frame) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, f.MarshaledBytes()))
}

// Unmarshal decodes a frame previously produced by Marshal. The
// returned frame owns its payload (the relevant bytes of b are
// copied), so b may be reused or mutated freely afterwards.
func Unmarshal(b []byte) (*Frame, error) {
	f, err := UnmarshalNoCopy(b)
	if err != nil {
		return nil, err
	}
	f.Payload = append([]byte(nil), f.Payload...)
	return f, nil
}

// UnmarshalNoCopy decodes a frame without copying the payload: the
// returned frame's Payload aliases b.
//
// Aliasing rule: the frame is only valid while b is — callers must not
// retain the frame past the lifetime (or next reuse) of b, and must
// not mutate b while the frame is live. It is meant for transient
// read paths (the pcap reader, analyzers) that decode, inspect and
// discard; anything that keeps the frame must use Unmarshal, which
// owns its buffer.
func UnmarshalNoCopy(b []byte) (*Frame, error) {
	if len(b) < HeaderBytes+VLANTagBytes {
		return nil, errors.New("ethernet: frame too short")
	}
	f := &Frame{}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	if binary.BigEndian.Uint16(b[12:14]) != TypeVLAN {
		return nil, errors.New("ethernet: missing 802.1Q tag")
	}
	tci := binary.BigEndian.Uint16(b[14:16])
	f.PCP = uint8(tci >> 13)
	f.VID = tci & 0x0fff
	f.EtherType = binary.BigEndian.Uint16(b[16:18])
	body := b[18:]
	if f.EtherType == TypeTSN {
		if len(body) < testerHeaderBytes {
			return nil, errors.New("ethernet: truncated tester header")
		}
		f.FlowID = binary.BigEndian.Uint32(body[0:])
		f.Seq = binary.BigEndian.Uint32(body[4:])
		f.Class = Class(body[8])
		f.SentAt = sim.Time(binary.BigEndian.Uint64(body[9:]))
		body = body[testerHeaderBytes:]
	}
	f.Payload = body
	return f, nil
}

// String summarizes the frame for logs.
func (f *Frame) String() string {
	return fmt.Sprintf("%s flow=%d seq=%d %s->%s vid=%d pcp=%d %dB",
		f.Class, f.FlowID, f.Seq, f.Src, f.Dst, f.VID, f.PCP, f.WireBytes())
}
