// Package ethernet models IEEE 802.3/802.1Q frames at the level a TSN
// switch dataplane needs: MAC addressing, VLAN tags with PCP priority,
// a binary codec used by the simulated wire, and transmission-time math
// (including preamble and inter-frame gap) so end-to-end latencies match
// what a hardware tester would observe on 1 Gbps links.
package ethernet

import (
	"fmt"
)

// MAC is a 48-bit IEEE MAC address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsMulticast reports whether the address has the group bit set
// (includes broadcast). The paper's Packet Switch consults this bit to
// choose between the unicast and multicast tables.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// String formats the address in canonical colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// HostMAC returns a deterministic locally-administered unicast MAC for
// host number id. The testbed uses these for end devices.
func HostMAC(id int) MAC {
	return MAC{0x02, 0x00, 0x5e, byte(id >> 16), byte(id >> 8), byte(id)}
}

// SwitchMAC returns a deterministic MAC identifying switch id. Used as
// the source of gPTP messages originated by a switch.
func SwitchMAC(id int) MAC {
	return MAC{0x02, 0x01, 0x5e, byte(id >> 16), byte(id >> 8), byte(id)}
}

// GroupMAC returns a multicast group address for group id.
func GroupMAC(id int) MAC {
	return MAC{0x01, 0x00, 0x5e, byte(id >> 16), byte(id >> 8), byte(id)}
}
