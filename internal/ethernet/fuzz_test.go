package ethernet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the frame decoder against arbitrary wire bytes:
// it must never panic, and every successfully decoded frame must
// re-encode to a byte string that decodes to the same frame
// (decode/encode/decode fixed point).
func FuzzUnmarshal(f *testing.F) {
	seed := &Frame{
		Dst: HostMAC(1), Src: HostMAC(2), VID: 100, PCP: 7,
		EtherType: TypeTSN, Payload: []byte("payload"),
		FlowID: 1, Seq: 2, Class: ClassTS,
	}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 17))
	f.Add(make([]byte, 64))
	ptp := &Frame{EtherType: TypePTP, Payload: []byte{1, 2, 3}}
	f.Add(ptp.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := frame.Marshal()
		frame2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if frame2.Dst != frame.Dst || frame2.Src != frame.Src ||
			frame2.VID != frame.VID || frame2.PCP != frame.PCP ||
			frame2.EtherType != frame.EtherType ||
			frame2.FlowID != frame.FlowID || frame2.Seq != frame.Seq ||
			!bytes.Equal(frame2.Payload, frame.Payload) {
			t.Fatalf("decode/encode/decode not a fixed point:\n%+v\n%+v", frame, frame2)
		}
	})
}
