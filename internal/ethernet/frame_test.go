package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestMACClassification(t *testing.T) {
	if HostMAC(1).IsMulticast() {
		t.Error("host MAC classified as multicast")
	}
	if !GroupMAC(1).IsMulticast() {
		t.Error("group MAC not classified as multicast")
	}
	if !Broadcast.IsMulticast() || !Broadcast.IsBroadcast() {
		t.Error("broadcast misclassified")
	}
	if HostMAC(5).IsBroadcast() {
		t.Error("host MAC classified as broadcast")
	}
}

func TestMACDistinct(t *testing.T) {
	seen := map[MAC]bool{}
	for i := 0; i < 100; i++ {
		for _, m := range []MAC{HostMAC(i), SwitchMAC(i), GroupMAC(i)} {
			if seen[m] {
				t.Fatalf("duplicate MAC %s", m)
			}
			seen[m] = true
		}
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x5e, 0x00, 0x00, 0x2a}
	if m.String() != "02:00:5e:00:00:2a" {
		t.Errorf("String = %q", m.String())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:       HostMAC(2),
		Src:       HostMAC(1),
		VID:       100,
		PCP:       7,
		EtherType: TypeTSN,
		Payload:   []byte("hello tsn"),
		FlowID:    1234,
		Seq:       56,
		Class:     ClassTS,
		SentAt:    65 * sim.Microsecond,
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.VID != f.VID || g.PCP != f.PCP ||
		g.EtherType != f.EtherType || g.FlowID != f.FlowID || g.Seq != f.Seq ||
		g.Class != f.Class || g.SentAt != f.SentAt || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", g, f)
	}
}

func TestFrameRoundTripNonTSN(t *testing.T) {
	f := &Frame{
		Dst:       SwitchMAC(1),
		Src:       SwitchMAC(2),
		VID:       1,
		PCP:       6,
		EtherType: TypePTP,
		Payload:   []byte{1, 2, 3, 4},
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Payload, f.Payload) || g.EtherType != TypePTP {
		t.Fatalf("PTP round trip mismatch: %+v", g)
	}
}

// Property: Marshal/Unmarshal is lossless over the dataplane-visible
// field space.
func TestFrameCodecProperty(t *testing.T) {
	prop := func(dst, src [6]byte, vid uint16, pcp uint8, flow, seq uint32, cls uint8, payload []byte) bool {
		f := &Frame{
			Dst: dst, Src: src,
			VID: vid & 0x0fff, PCP: pcp & 0x7,
			EtherType: TypeTSN,
			Payload:   payload,
			FlowID:    flow, Seq: seq,
			Class: Class(cls % 3),
		}
		g, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		return g.Dst == f.Dst && g.Src == f.Src && g.VID == f.VID &&
			g.PCP == f.PCP && g.FlowID == f.FlowID && g.Seq == f.Seq &&
			g.Class == f.Class && bytes.Equal(g.Payload, f.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	// No VLAN tag.
	raw := make([]byte, 64)
	if _, err := Unmarshal(raw); err == nil {
		t.Error("untagged frame accepted")
	}
	// Truncated tester header.
	f := &Frame{EtherType: TypeTSN}
	b := f.Marshal()
	if _, err := Unmarshal(b[:20]); err == nil {
		t.Error("truncated tester header accepted")
	}
}

func TestWireBytesMinimum(t *testing.T) {
	f := &Frame{Payload: nil}
	if f.WireBytes() != MinFrameBytes {
		t.Errorf("empty frame WireBytes = %d, want %d", f.WireBytes(), MinFrameBytes)
	}
	f.Payload = make([]byte, 1000)
	want := HeaderBytes + VLANTagBytes + 1000 + FCSBytes
	if f.WireBytes() != want {
		t.Errorf("WireBytes = %d, want %d", f.WireBytes(), want)
	}
}

func TestCloneDeep(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}, FlowID: 9}
	g := f.CloneDeep()
	g.Payload[0] = 99
	g.FlowID = 10
	if f.Payload[0] != 1 || f.FlowID != 9 {
		t.Error("CloneDeep aliases original")
	}
}

func TestCloneHeaderSharesPayload(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}, FlowID: 9, VID: 7}
	g := f.CloneHeader()
	g.FlowID = 10
	g.VID = 8
	if f.FlowID != 9 || f.VID != 7 {
		t.Error("CloneHeader header fields alias original")
	}
	if &g.Payload[0] != &f.Payload[0] {
		t.Error("CloneHeader copied the payload; want shared bytes")
	}
}

func TestClassString(t *testing.T) {
	if ClassTS.String() != "TS" || ClassRC.String() != "RC" || ClassBE.String() != "BE" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class formatting wrong")
	}
}

func TestTxTime(t *testing.T) {
	// 64B at 1 Gbps = 512 ns.
	if got := TxTime(64, Gbps); got != 512*sim.Nanosecond {
		t.Errorf("TxTime(64B, 1Gbps) = %v, want 512ns", got)
	}
	// 1250 bytes at 100 Mbps = 100 µs.
	if got := TxTime(1250, 100*Mbps); got != 100*sim.Microsecond {
		t.Errorf("TxTime(1250B, 100Mbps) = %v, want 100µs", got)
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps = ceil(8/3 s) = 2666666667 ns.
	got := TxTime(1, 3)
	if got != sim.Time(2666666667) {
		t.Errorf("TxTime rounding = %v", got)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate did not panic")
		}
	}()
	TxTime(64, 0)
}

func TestFrameTxTimeIncludesOverhead(t *testing.T) {
	f := &Frame{} // 64B minimum
	// (64+20)B at 1 Gbps = 672 ns.
	if got := FrameTxTime(f, Gbps); got != 672*sim.Nanosecond {
		t.Errorf("FrameTxTime = %v, want 672ns", got)
	}
}

func TestPayloadForWireSize(t *testing.T) {
	for _, size := range []int{64, 128, 256, 512, 1024, 1500} {
		p := PayloadForWireSize(size)
		f := &Frame{Payload: make([]byte, p)}
		if f.WireBytes() != size {
			t.Errorf("size %d: WireBytes = %d", size, f.WireBytes())
		}
	}
	if PayloadForWireSize(10) != 0 {
		t.Error("tiny wire size should clamp payload at 0")
	}
}

// Property: TxTime is monotone in both byte count and (inversely) rate,
// and never zero for a non-empty frame.
func TestTxTimeMonotoneProperty(t *testing.T) {
	prop := func(aRaw, bRaw uint16, rateRaw uint8) bool {
		a, b := int(aRaw%3000)+1, int(bRaw%3000)+1
		if a > b {
			a, b = b, a
		}
		rate := Rate(int64(rateRaw%100)+1) * Mbps
		ta, tb := TxTime(a, rate), TxTime(b, rate)
		if ta > tb || ta <= 0 {
			return false
		}
		// Higher rate never takes longer.
		return TxTime(b, rate*2) <= tb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	for _, f := range []*Frame{
		{Dst: HostMAC(1), Src: HostMAC(2), VID: 100, PCP: 7, EtherType: TypeTSN,
			Payload: []byte{1, 2, 3, 4}, FlowID: 5, Seq: 6, Class: ClassTS, SentAt: 777},
		{Dst: HostMAC(3), Src: HostMAC(4), VID: 1, PCP: 0, EtherType: TypeVLAN,
			Payload: []byte{9, 8}},
		{EtherType: TypePTP},
	} {
		want := f.Marshal()
		if len(want) != f.MarshaledBytes() {
			t.Fatalf("MarshaledBytes = %d, Marshal produced %d", f.MarshaledBytes(), len(want))
		}
		got := f.AppendMarshal(nil)
		if string(got) != string(want) {
			t.Fatalf("AppendMarshal(nil) = %x, want %x", got, want)
		}
		// Appending after a prefix keeps the prefix and encodes after it.
		pre := f.AppendMarshal([]byte{0xAA, 0xBB})
		if pre[0] != 0xAA || pre[1] != 0xBB || string(pre[2:]) != string(want) {
			t.Fatalf("AppendMarshal with prefix mangled output")
		}
	}
}

func TestAppendMarshalReusedBufferZeroAlloc(t *testing.T) {
	f := &Frame{Dst: HostMAC(1), Src: HostMAC(2), VID: 100, PCP: 7,
		EtherType: TypeTSN, Payload: make([]byte, 1000), FlowID: 1, Seq: 2, Class: ClassTS}
	buf := f.AppendMarshal(nil)
	allocs := testing.AllocsPerRun(100, func() {
		buf = f.AppendMarshal(buf[:0])
	})
	if allocs > 0 {
		t.Fatalf("AppendMarshal into recycled buffer allocated %.1f/run, want 0", allocs)
	}
}

func TestUnmarshalNoCopyAliases(t *testing.T) {
	f := &Frame{Dst: HostMAC(1), Src: HostMAC(2), VID: 9, PCP: 3,
		EtherType: TypeTSN, Payload: []byte{10, 20, 30}, FlowID: 4, Seq: 5, Class: ClassRC}
	buf := f.Marshal()
	g, err := UnmarshalNoCopy(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.FlowID != 4 || g.Seq != 5 || g.Class != ClassRC || len(g.Payload) != 3 {
		t.Fatalf("UnmarshalNoCopy decoded %+v", g)
	}
	// The no-copy payload aliases the input buffer.
	buf[len(buf)-3] = 99
	if g.Payload[0] != 99 {
		t.Error("UnmarshalNoCopy payload does not alias input")
	}
	// The copying variant owns its bytes.
	buf2 := f.Marshal()
	h, err := Unmarshal(buf2)
	if err != nil {
		t.Fatal(err)
	}
	buf2[len(buf2)-3] = 99
	if h.Payload[0] != 10 {
		t.Error("Unmarshal payload aliases input; want owned copy")
	}
}
