package ethernet

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestSpanBooksExactly(t *testing.T) {
	var s Span
	if s.Active() {
		t.Fatal("zero span reports active")
	}
	s.Begin(1000)
	if !s.Active() {
		t.Fatal("span inactive after Begin")
	}

	// Hop 1: 100 prop, 200 ser, arrives at 1000+100+200+50 — the 50
	// unexplained ns book as queue.
	s.OnDeliver(1350, 100, 200)
	if s.Prop != 100 || s.Ser != 200 || s.Queue != 50 {
		t.Fatalf("hop 1 books wrong: %+v", s)
	}

	// Hop 2: the switch claims 300 gate + 100 shape out of a 500 ns
	// residence; the remaining 100 is queue.
	s.Claim(300, 100)
	s.OnDeliver(1350+100+200+500, 100, 200)
	if s.Gate != 300 || s.Shape != 100 {
		t.Fatalf("claims not booked: %+v", s)
	}
	if s.Queue != 50+100 {
		t.Fatalf("queue residual = %v, want 150", s.Queue)
	}
	if got, want := s.Total(), sim.Time(2150-1000); got != want {
		t.Fatalf("total %v != elapsed %v — books out of balance", got, want)
	}
}

func TestSpanZeroTimeInjection(t *testing.T) {
	var s Span
	s.Begin(0) // first bit on the wire at engine time zero
	if !s.Active() {
		t.Fatal("time-0 Begin not recognized as active")
	}
	s.OnDeliver(300, 100, 200)
	if s.Total() != 300 || s.Queue != 0 {
		t.Fatalf("time-0 span books wrong: %+v", s)
	}
}

func TestSpanNeverBooksNegativeQueue(t *testing.T) {
	var s Span
	s.Begin(1000)
	// Claim exactly the whole residence: queue residual must be zero,
	// not negative.
	s.Claim(500, 0)
	s.OnDeliver(1000+100+200+500, 100, 200)
	if s.Queue != 0 {
		t.Fatalf("queue = %v, want 0", s.Queue)
	}
	if s.Total() != 800 {
		t.Fatalf("total = %v, want 800", s.Total())
	}
}

func TestSpanInactiveDeliverIsNoop(t *testing.T) {
	var s Span
	s.OnDeliver(500, 100, 200)
	if s.Total() != 0 {
		t.Fatalf("inactive span booked %v", s.Total())
	}
}

func TestSpanBeginResets(t *testing.T) {
	var s Span
	s.Begin(0)
	s.Claim(10, 10)
	s.OnDeliver(100, 10, 10)
	s.Begin(200)
	if s.Total() != 0 || s.Queue != 0 {
		t.Fatalf("Begin did not reset: %+v", s)
	}
}

// TestSpanTravelsWithCloneHeader: the span is a value field, so header
// clones (multicast, FRER replication) each carry independent books.
func TestSpanTravelsWithCloneHeader(t *testing.T) {
	f := &Frame{FlowID: 1, Payload: []byte{1, 2, 3}}
	f.Span.Begin(100)
	f.Span.Claim(30, 0)
	g := f.CloneHeader()
	g.Span.OnDeliver(500, 100, 200)
	if f.Span.Total() != 30 {
		t.Fatalf("clone delivery mutated the original: %+v", f.Span)
	}
	if g.Span.Gate != 30 || g.Span.Queue != 500-100-100-200-30 {
		t.Fatalf("clone books wrong: %+v", g.Span)
	}
}

func TestSpanOpsAllocFree(t *testing.T) {
	var s Span
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Begin(100)
		s.Claim(10, 5)
		s.OnDeliver(400, 50, 100)
	}); allocs != 0 {
		t.Fatalf("span ops allocate %.1f/op, want 0", allocs)
	}
}
