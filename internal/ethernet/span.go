package ethernet

import "github.com/tsnbuilder/tsnbuilder/internal/sim"

// Span is the per-frame latency attribution context a frame carries
// across the network: it decomposes the end-to-end latency the analyzer
// measures into where the time actually went. It is a plain value
// embedded in Frame, so CloneHeader propagates it for free and the hot
// path never allocates.
//
// Accounting contract (all integers, so the books balance exactly):
//
//   - Begin is called by the injecting NIC at the instant the first bit
//     hits the wire — the same instant SentAt is stamped, so the span
//     window equals the analyzer's latency window.
//   - OnDeliver is called by netdev at every delivery instant. It adds
//     the link's propagation delay and the delivered (final) fragment's
//     serialization time, and books everything else since the previous
//     boundary — minus whatever the switch already claimed — as queue
//     wait. The boundary then advances to the delivery instant.
//   - Claim is called by a switch when it pops the frame for
//     transmission, moving part of the pending hop wait from the queue
//     bucket into the gate and shaping buckets. Claimed amounts must
//     not exceed the actual wait (the switch clamps), so the queue
//     residual at OnDeliver is never negative.
//
// At the final delivery, Prop+Ser+Queue+Gate+Shape equals the
// analyzer's end-to-end latency exactly: every bucket is a difference
// of engine timestamps and each instant is booked exactly once.
type Span struct {
	// Prop is cable propagation time summed over every traversed link.
	Prop sim.Time
	// Ser is store-and-forward serialization time: the wire time of the
	// delivered fragment at each hop (preempted first fragments land in
	// Queue, as residence at the preempting switch).
	Ser sim.Time
	// Queue is time spent admitted but not transmitting for any reason
	// not claimed below: head-of-line blocking, a busy wire, preemption
	// gaps.
	Queue sim.Time
	// Gate is time waiting for the egress gate schedule (closed gate or
	// length-aware guard band), computed analytically from the GCL.
	Gate sim.Time
	// Shape is time the credit-based shaper held an otherwise eligible
	// queue back.
	Shape sim.Time

	// mark is the engine instant of the last accounting boundary; claimed
	// is wait already attributed to Gate/Shape and pending subtraction
	// from the next hop's queue residual.
	mark    sim.Time
	claimed sim.Time
	active  bool
}

// Begin resets the span and anchors its first boundary at now — the
// injection wire stamp.
func (s *Span) Begin(now sim.Time) { *s = Span{mark: now, active: true} }

// Active reports whether Begin has anchored the span (delivery without
// Begin — e.g. a hand-built test frame — books nothing).
func (s *Span) Active() bool { return s.active }

// Claim moves gate- and shaper-attributed wait out of the pending hop's
// queue residual. The caller guarantees gate+shape does not exceed the
// frame's actual wait at this hop.
func (s *Span) Claim(gate, shape sim.Time) {
	s.Gate += gate
	s.Shape += shape
	s.claimed += gate + shape
}

// OnDeliver closes one hop at delivery instant now: prop is the link's
// propagation delay, ser the serialization time of the delivered
// fragment. The remainder since the last boundary, minus claimed
// gate/shape time, books as queue wait.
func (s *Span) OnDeliver(now, prop, ser sim.Time) {
	if !s.Active() {
		return
	}
	s.Prop += prop
	s.Ser += ser
	if q := now - s.mark - prop - ser - s.claimed; q > 0 {
		s.Queue += q
	}
	s.claimed = 0
	s.mark = now
}

// Total returns the attributed latency booked so far.
func (s *Span) Total() sim.Time { return s.Prop + s.Ser + s.Queue + s.Gate + s.Shape }
