package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time copy of every instrument, safe to
// export while the simulation continues.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric name's samples.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Samples []SampleSnapshot `json:"samples"`
}

// SampleSnapshot is one labeled cell. Counters and gauges use Value;
// histograms use Bounds/Counts/Sum/Count.
type SampleSnapshot struct {
	Labels []Label  `json:"labels,omitempty"`
	Value  float64  `json:"value"`
	Bounds []int64  `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Sum    float64  `json:"sum,omitempty"`
	Count  uint64   `json:"count,omitempty"`
	// Exemplar is the histogram's worst retained observation (JSON
	// export only; the Prometheus text format has no exemplar syntax).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Quantile estimates the q-quantile of a histogram sample (0 for
// other kinds).
func (s SampleSnapshot) Quantile(q float64) float64 {
	return quantile(s.Bounds, s.Counts, s.Count, q)
}

// Snapshot copies the registry's current state. Families appear in
// registration order, samples in registration order, so exports are
// deterministic. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for _, f := range r.families {
		if f.kind == "" {
			continue // Help() registered a name never instrumented
		}
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		for _, s := range f.samples {
			ss := SampleSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(*s.c)
			case KindGauge:
				ss.Value = float64(*s.g)
			case KindHistogram:
				ss.Bounds = append([]int64(nil), s.h.bounds...)
				ss.Counts = append([]uint64(nil), s.h.counts...)
				ss.Sum = s.h.sum
				ss.Count = s.h.count
				if s.h.exSet {
					ex := s.h.ex
					ss.Exemplar = &ex
				}
			}
			fs.Samples = append(fs.Samples, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatLabels renders {k="v",...}, optionally with an extra trailing
// label (the histogram le).
func formatLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value without exponent notation for
// integers (the common case), matching conventional expositions.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus emits the snapshot in the Prometheus text
// exposition format (version 0.0.4).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, smp := range f.Samples {
			switch f.Kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.Name, formatLabels(smp.Labels, "", ""), formatValue(smp.Value)); err != nil {
					return err
				}
			case KindHistogram:
				var cum uint64
				for i, c := range smp.Counts {
					cum += c
					le := "+Inf"
					if i < len(smp.Bounds) {
						le = fmt.Sprintf("%d", smp.Bounds[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, formatLabels(smp.Labels, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
					f.Name, formatLabels(smp.Labels, "", ""), formatValue(smp.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
					f.Name, formatLabels(smp.Labels, "", ""), smp.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON emits the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
