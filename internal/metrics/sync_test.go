package metrics

import (
	"sync"
	"testing"
)

func TestSyncCounterConcurrent(t *testing.T) {
	var c SyncCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1010 {
		t.Fatalf("counter = %d, want %d", got, 8*1010)
	}
}

func TestSyncGaugeConcurrentAdd(t *testing.T) {
	var g SyncGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0 after balanced adds", got)
	}
}

func TestSyncGaugeSetMax(t *testing.T) {
	var g SyncGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.SetMax(int64(w * 100))
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 700 {
		t.Fatalf("gauge = %d, want 700 (SetMax high-water)", got)
	}
	g.Set(-5)
	if got := g.Value(); got != -5 {
		t.Fatalf("gauge after Set = %d, want -5", got)
	}
	g.SetMax(-10)
	if got := g.Value(); got != -5 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
}
