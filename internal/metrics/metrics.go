// Package metrics is the dataplane telemetry registry: named
// counters, gauges and fixed-bucket histograms with Prometheus and
// JSON exporters. It is designed for a hot path that runs millions of
// events per second of wall time:
//
//   - Instruments are resolved to handles once, at switch (or
//     subsystem) construction time. A handle is one pointer; an
//     increment is one nil check plus one memory write — no map
//     lookups, no interface calls, no allocation.
//   - The zero value of every handle is a valid no-op, so an
//     uninstrumented dataplane (nil *Registry) pays only the nil
//     check. Instrumentation sites never need their own guards.
//   - Registration is idempotent: asking for the same name + label
//     set returns a handle onto the same cell, so shared resources
//     (an SMS buffer pool serving every port) can be instrumented
//     from several sites without double counting.
//
// The simulation is single-threaded, so handle operations are
// deliberately unsynchronized; registration and snapshotting take the
// registry mutex and may run from other goroutines (e.g. a progress
// reporter).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair qualifying an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an instrument family.
type Kind string

// Instrument kinds, named after their Prometheus exposition types.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing counter handle. The zero
// value is a no-op.
type Counter struct{ v *uint64 }

// Inc adds one.
func (c Counter) Inc() {
	if c.v != nil {
		*c.v++
	}
}

// Add adds n.
func (c Counter) Add(n uint64) {
	if c.v != nil {
		*c.v += n
	}
}

// Active reports whether the handle is bound to a registry cell.
func (c Counter) Active() bool { return c.v != nil }

// Value returns the current count (0 for an unbound handle).
func (c Counter) Value() uint64 {
	if c.v == nil {
		return 0
	}
	return *c.v
}

// Gauge is a settable signed instrument handle. The zero value is a
// no-op.
type Gauge struct{ v *int64 }

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.v != nil {
		*g.v = v
	}
}

// Add adjusts the gauge by d.
func (g Gauge) Add(d int64) {
	if g.v != nil {
		*g.v += d
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water update used by queue and heap depth instrumentation.
func (g Gauge) SetMax(v int64) {
	if g.v != nil && v > *g.v {
		*g.v = v
	}
}

// Active reports whether the handle is bound to a registry cell.
func (g Gauge) Active() bool { return g.v != nil }

// Value returns the current value (0 for an unbound handle).
func (g Gauge) Value() int64 {
	if g.v == nil {
		return 0
	}
	return *g.v
}

// Exemplar is the worst exemplar-bearing observation of a histogram
// sample: the value plus an opaque label locating the event (e.g.
// "flow=17 seq=412") and the instant it happened. The JSON snapshot
// exports it; the Prometheus 0.0.4 text format has no exemplar syntax
// and stays unchanged.
type Exemplar struct {
	Value int64  `json:"value"`
	Label string `json:"label"`
	At    int64  `json:"at"`
}

// histData is the backing store of one histogram sample.
type histData struct {
	bounds []int64  // sorted upper bounds; an implicit +Inf bucket follows
	counts []uint64 // len(bounds)+1
	sum    float64
	count  uint64
	ex     Exemplar
	exSet  bool
}

// Histogram is a fixed-bucket distribution handle. The zero value is
// a no-op.
type Histogram struct{ h *histData }

// Observe records v into its bucket.
func (h Histogram) Observe(v int64) {
	d := h.h
	if d == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~16) and the branch
	// predictor does well on latency distributions; no allocation.
	i := 0
	for i < len(d.bounds) && v > d.bounds[i] {
		i++
	}
	d.counts[i]++
	d.sum += float64(v)
	d.count++
}

// ObserveExemplar is Observe plus exemplar retention: when v is the
// largest exemplar-bearing observation the sample has seen, (label, at)
// is kept as its exemplar. Strictly-greater-wins, so among equal worst
// values the first observed survives — which keeps serial and
// sweep-order-merged parallel runs byte-identical.
func (h Histogram) ObserveExemplar(v int64, label string, at int64) {
	h.Observe(v)
	d := h.h
	if d == nil {
		return
	}
	if !d.exSet || v > d.ex.Value {
		d.ex = Exemplar{Value: v, Label: label, At: at}
		d.exSet = true
	}
}

// Exemplar returns the sample's retained exemplar, if any.
func (h Histogram) Exemplar() (Exemplar, bool) {
	if h.h == nil || !h.h.exSet {
		return Exemplar{}, false
	}
	return h.h.ex, true
}

// Active reports whether the handle is bound to a registry cell.
func (h Histogram) Active() bool { return h.h != nil }

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	if h.h == nil {
		return 0
	}
	return h.h.count
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket containing the target rank. Values in the +Inf
// bucket clamp to the highest finite bound.
func (h Histogram) Quantile(q float64) float64 {
	if h.h == nil {
		return 0
	}
	return quantile(h.h.bounds, h.h.counts, h.h.count, q)
}

// quantile is the shared bucket-interpolation estimator (also used on
// snapshots).
func quantile(bounds []int64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return float64(bounds[len(bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return float64(bounds[len(bounds)-1])
}

// ExponentialBounds returns n upper bounds starting at start and
// multiplying by factor — the usual latency bucket layout.
func ExponentialBounds(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: invalid exponential bounds")
	}
	out := make([]int64, n)
	f := float64(start)
	for i := range out {
		out[i] = int64(f)
		f *= factor
	}
	return out
}

// sample is one labeled cell of a family.
type sample struct {
	labels []Label
	c      *uint64
	g      *int64
	h      *histData
}

// family groups every sample of one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	bounds  []int64 // histogram families share bucket layout
	samples []*sample
	byKey   map[string]*sample
}

// Registry owns instrument cells. A nil *Registry is valid: every
// lookup returns an unbound (no-op) handle.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Help attaches an explanatory string to a metric name, emitted as
// the Prometheus # HELP line. Safe to call before or after the first
// instrument registration.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		f.help = help
		return
	}
	f := &family{name: name, help: help, byKey: make(map[string]*sample)}
	r.byName[name] = f
	r.families = append(r.families, f)
}

// labelKey builds the dedup key of a sorted label set.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// lookup finds or creates the cell for (name, labels) of the given
// kind. Kind mismatches on an existing family panic: they are
// programming errors at instrumentation sites.
func (r *Registry) lookup(name string, kind Kind, bounds []int64, labels []Label) *sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, byKey: make(map[string]*sample)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind == "" {
		f.kind = kind
		f.bounds = bounds
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &sample{labels: sorted}
	switch kind {
	case KindCounter:
		s.c = new(uint64)
	case KindGauge:
		s.g = new(int64)
	case KindHistogram:
		s.h = &histData{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.byKey[key] = s
	f.samples = append(f.samples, s)
	return s
}

// Counter resolves (or creates) a counter cell and returns its
// handle. A nil registry returns a no-op handle.
func (r *Registry) Counter(name string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{v: r.lookup(name, KindCounter, nil, labels).c}
}

// Gauge resolves (or creates) a gauge cell and returns its handle.
func (r *Registry) Gauge(name string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{v: r.lookup(name, KindGauge, nil, labels).g}
}

// Histogram resolves (or creates) a histogram cell with the given
// upper bounds (first registration wins the bucket layout) and
// returns its handle.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) Histogram {
	if r == nil {
		return Histogram{}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bounds not strictly increasing", name))
		}
	}
	return Histogram{h: r.lookup(name, KindHistogram, bounds, labels).h}
}

// CounterValue reads a counter cell without creating it; missing
// cells read as 0. Intended for tests and report generation.
func (r *Registry) CounterValue(name string, labels ...Label) uint64 {
	if s := r.find(name, labels); s != nil && s.c != nil {
		return *s.c
	}
	return 0
}

// GaugeValue reads a gauge cell without creating it.
func (r *Registry) GaugeValue(name string, labels ...Label) int64 {
	if s := r.find(name, labels); s != nil && s.g != nil {
		return *s.g
	}
	return 0
}

// SumCounter totals every sample of a counter family whose labels
// include the given subset — e.g. all drop counters of one reason
// across switches.
func (r *Registry) SumCounter(name string, subset ...Label) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok || f.kind != KindCounter {
		return 0
	}
	var total uint64
	for _, s := range f.samples {
		if labelsInclude(s.labels, subset) {
			total += *s.c
		}
	}
	return total
}

// labelsInclude reports whether have contains every label of want.
func labelsInclude(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (r *Registry) find(name string, labels []Label) *sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return nil
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return f.byKey[labelKey(sorted)]
}
