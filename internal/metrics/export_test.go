package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := New()
	r.Help("tsn_switch_rx_frames_total", "frames received by the ingress pipeline")
	r.Counter("tsn_switch_rx_frames_total", L("switch", "0")).Add(10)
	r.Counter("tsn_switch_rx_frames_total", L("switch", "1")).Add(20)
	r.Gauge("tsn_pool_occupancy", L("switch", "0"), L("port", "2")).Set(7)
	h := r.Histogram("tsn_residence_ns", []int64{1000, 10000}, L("switch", "0"))
	h.Observe(500)
	h.Observe(5000)
	h.Observe(50000)
	return r
}

// parsePrometheus is a minimal text-exposition parser: it validates
// the line grammar this package emits and returns metric→value
// entries keyed by "name{labels}".
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	types := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = key[:i]
			body := key[i+1 : len(key)-1]
			for _, pair := range strings.Split(body, ",") {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
			}
		}
		out[key] = val
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := parsePrometheus(t, text)

	if v := samples[`tsn_switch_rx_frames_total{switch="0"}`]; v != 10 {
		t.Fatalf("rx switch 0 = %g, want 10 in:\n%s", v, text)
	}
	if v := samples[`tsn_pool_occupancy{port="2",switch="0"}`]; v != 7 {
		t.Fatalf("occupancy = %g in:\n%s", v, text)
	}
	// Histogram exposition: cumulative buckets, sum, count.
	if v := samples[`tsn_residence_ns_bucket{switch="0",le="1000"}`]; v != 1 {
		t.Fatalf("le=1000 bucket = %g in:\n%s", v, text)
	}
	if v := samples[`tsn_residence_ns_bucket{switch="0",le="10000"}`]; v != 2 {
		t.Fatalf("le=10000 bucket = %g", v)
	}
	if v := samples[`tsn_residence_ns_bucket{switch="0",le="+Inf"}`]; v != 3 {
		t.Fatalf("le=+Inf bucket = %g", v)
	}
	if v := samples[`tsn_residence_ns_count{switch="0"}`]; v != 3 {
		t.Fatalf("count = %g", v)
	}
	if v := samples[`tsn_residence_ns_sum{switch="0"}`]; v != 55500 {
		t.Fatalf("sum = %g", v)
	}
	if !strings.Contains(text, "# HELP tsn_switch_rx_frames_total frames received") {
		t.Fatalf("missing HELP line in:\n%s", text)
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("weird", L("detail", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `weird{detail="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	snap := buildRegistry().Snapshot()
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got.Families) != len(snap.Families) {
		t.Fatalf("families = %d, want %d", len(got.Families), len(snap.Families))
	}
	for i, f := range got.Families {
		if f.Name != snap.Families[i].Name || f.Kind != snap.Families[i].Kind {
			t.Fatalf("family %d mismatch: %+v vs %+v", i, f, snap.Families[i])
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	snap := r.Snapshot()
	c.Add(100)
	if snap.Families[0].Samples[0].Value != 1 {
		t.Fatal("snapshot shares state with live registry")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	mk := func() string {
		r := New()
		for i := 0; i < 5; i++ {
			r.Counter("a", L("i", fmt.Sprint(i))).Inc()
			r.Gauge("b", L("i", fmt.Sprint(i))).Set(int64(i))
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if mk() != mk() {
		t.Fatal("exposition not deterministic")
	}
}

func TestSampleQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	smp := r.Snapshot().Families[0].Samples[0]
	q := smp.Quantile(0.5)
	if q <= 10 || q > 20 {
		t.Fatalf("snapshot q50 = %g, want in (10,20]", q)
	}
}
