package metrics

import (
	"bytes"
	"testing"
)

func TestMergeCounters(t *testing.T) {
	a, b := New(), New()
	a.Counter("hits", L("sw", "0")).Add(3)
	b.Counter("hits", L("sw", "0")).Add(4)
	b.Counter("hits", L("sw", "1")).Add(5)
	a.Merge(b)
	if got := a.CounterValue("hits", L("sw", "0")); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.CounterValue("hits", L("sw", "1")); got != 5 {
		t.Errorf("new-cell counter = %d, want 5", got)
	}
}

func TestMergeGaugesTakeMax(t *testing.T) {
	a, b := New(), New()
	a.Gauge("hw").SetMax(10)
	b.Gauge("hw").SetMax(4)
	b.Gauge("hw2").SetMax(9)
	a.Merge(b)
	if got := a.GaugeValue("hw"); got != 10 {
		t.Errorf("merged gauge = %d, want 10 (max)", got)
	}
	if got := a.GaugeValue("hw2"); got != 9 {
		t.Errorf("new gauge = %d, want 9", got)
	}
}

func TestMergeHistograms(t *testing.T) {
	bounds := []int64{10, 100}
	a, b := New(), New()
	ha := a.Histogram("lat", bounds)
	hb := b.Histogram("lat", bounds)
	ha.Observe(5)
	hb.Observe(50)
	hb.Observe(500)
	a.Merge(b)
	if got := a.Histogram("lat", bounds).Count(); got != 3 {
		t.Errorf("merged histogram count = %d, want 3", got)
	}
}

func TestMergeOrderIndependentOfWorkerCompletion(t *testing.T) {
	// Two scratch registries merged in sweep order must export exactly
	// like one registry accumulating the same registrations serially.
	mk := func(seed uint64) *Registry {
		r := New()
		r.Help("x_total", "an x")
		r.Counter("x_total", L("row", "0")).Add(seed)
		r.Gauge("x_hw").SetMax(int64(seed))
		return r
	}
	serial := New()
	serial.Merge(mk(1))
	serial.Merge(mk(2))

	parallelStyle := New()
	regs := []*Registry{mk(1), mk(2)} // workers finish in any order...
	for _, r := range regs {          // ...but merge happens in sweep order
		parallelStyle.Merge(r)
	}

	var s, p bytes.Buffer
	if err := serial.Snapshot().WritePrometheus(&s); err != nil {
		t.Fatal(err)
	}
	if err := parallelStyle.Snapshot().WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	if s.String() != p.String() {
		t.Errorf("exports differ:\n--- serial ---\n%s--- merged ---\n%s", s.String(), p.String())
	}
}

func TestMergeSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-merge did not panic")
		}
	}()
	r := New()
	r.Merge(r)
}

func TestMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(New()) // no-op
	New().Merge(nil)
}

func TestMergeEmptyRegistries(t *testing.T) {
	// Empty into populated: nothing changes.
	a := New()
	a.Counter("hits").Add(3)
	before := snapText(t, a)
	a.Merge(New())
	if after := snapText(t, a); after != before {
		t.Errorf("merging empty registry changed export:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	// Populated into empty: full copy, export identical to the source.
	b := New()
	b.Help("lat", "latency")
	b.Histogram("lat", []int64{10, 100}).Observe(50)
	b.Gauge("hw").SetMax(7)
	dst := New()
	dst.Merge(b)
	if got, want := snapText(t, dst), snapText(t, b); got != want {
		t.Errorf("merge into empty differs from source:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Empty into empty stays empty.
	e := New()
	e.Merge(New())
	if n := len(e.Snapshot().Families); n != 0 {
		t.Errorf("empty-into-empty produced %d families", n)
	}
}

func TestMergeGaugeMaxTie(t *testing.T) {
	a, b := New(), New()
	a.Gauge("hw").Set(10)
	b.Gauge("hw").Set(10)
	a.Merge(b)
	if got := a.GaugeValue("hw"); got != 10 {
		t.Errorf("tied gauge merge = %d, want 10", got)
	}
	// Ties must also hold for negative and zero values.
	a2, b2 := New(), New()
	a2.Gauge("z").Set(0)
	b2.Gauge("z").Set(0)
	a2.Merge(b2)
	if got := a2.GaugeValue("z"); got != 0 {
		t.Errorf("zero-tie gauge merge = %d, want 0", got)
	}
}

func TestMergeBucketMismatchPanicsWithoutCorrupting(t *testing.T) {
	a, b := New(), New()
	// A counter family that would merge fine, registered BEFORE the
	// mismatched histogram so a non-validating merge would have already
	// mutated it by the time the panic fires.
	a.Counter("hits").Add(1)
	b.Counter("hits").Add(10)
	a.Histogram("lat", []int64{10, 100}).Observe(5)
	b.Histogram("lat", []int64{10, 100, 1000}).Observe(5)
	before := snapText(t, a)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bucket-layout mismatch did not panic")
			}
		}()
		a.Merge(b)
	}()
	if after := snapText(t, a); after != before {
		t.Errorf("failed merge corrupted destination:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

func TestMergeBoundValueMismatchPanics(t *testing.T) {
	// Same bucket COUNT, different boundary values: counts would add
	// bucket-wise without complaint, silently mixing incomparable
	// layouts. Must panic too.
	a, b := New(), New()
	a.Histogram("lat", []int64{10, 100}).Observe(5)
	b.Histogram("lat", []int64{20, 200}).Observe(5)
	defer func() {
		if recover() == nil {
			t.Fatal("bound-value mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestMergeKindMismatchPanicsWithoutCorrupting(t *testing.T) {
	a, b := New(), New()
	a.Counter("early").Add(1)
	b.Counter("early").Add(1)
	a.Counter("x")
	b.Gauge("x")
	before := snapText(t, a)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch did not panic")
			}
		}()
		a.Merge(b)
	}()
	if after := snapText(t, a); after != before {
		t.Errorf("failed merge corrupted destination:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

func TestMergeExemplars(t *testing.T) {
	bounds := []int64{10, 100}
	// Greater source exemplar replaces the destination's.
	a, b := New(), New()
	a.Histogram("lat", bounds).ObserveExemplar(50, "flow=1", 100)
	b.Histogram("lat", bounds).ObserveExemplar(70, "flow=2", 200)
	a.Merge(b)
	ex, ok := a.Histogram("lat", bounds).Exemplar()
	if !ok || ex.Value != 70 || ex.Label != "flow=2" {
		t.Errorf("merged exemplar = %+v ok=%v, want value 70 from flow=2", ex, ok)
	}
	// A tie keeps the destination's (earlier in sweep order), matching
	// ObserveExemplar's strictly-greater-wins retention.
	c, d := New(), New()
	c.Histogram("lat", bounds).ObserveExemplar(70, "flow=1", 100)
	d.Histogram("lat", bounds).ObserveExemplar(70, "flow=2", 200)
	c.Merge(d)
	ex, ok = c.Histogram("lat", bounds).Exemplar()
	if !ok || ex.Label != "flow=1" {
		t.Errorf("tied exemplar = %+v ok=%v, want destination's flow=1", ex, ok)
	}
	// New cell: the exemplar travels into a registry that never saw the
	// family.
	e := New()
	e.Merge(a)
	ex, ok = e.Histogram("lat", bounds).Exemplar()
	if !ok || ex.Value != 70 {
		t.Errorf("exemplar lost merging into empty registry: %+v ok=%v", ex, ok)
	}
	// Source without an exemplar leaves the destination's in place.
	f, g := New(), New()
	f.Histogram("lat", bounds).ObserveExemplar(50, "flow=1", 100)
	g.Histogram("lat", bounds).Observe(500)
	f.Merge(g)
	ex, ok = f.Histogram("lat", bounds).Exemplar()
	if !ok || ex.Label != "flow=1" {
		t.Errorf("exemplar-free source clobbered destination exemplar: %+v ok=%v", ex, ok)
	}
}

func TestMergeExemplarSerialParallelParity(t *testing.T) {
	bounds := []int64{10, 100}
	obs := [][3]int64{{30, 1, 10}, {90, 2, 20}, {90, 3, 30}, {60, 4, 40}}
	serial := New()
	hs := serial.Histogram("lat", bounds)
	for _, o := range obs {
		hs.ObserveExemplar(o[0], labelFor(o[1]), o[2])
	}
	// Two workers split the observations; merge in sweep order.
	w1, w2 := New(), New()
	for i, o := range obs {
		w := w1
		if i >= 2 {
			w = w2
		}
		w.Histogram("lat", bounds).ObserveExemplar(o[0], labelFor(o[1]), o[2])
	}
	merged := New()
	merged.Merge(w1)
	merged.Merge(w2)
	var s, p bytes.Buffer
	if err := serial.Snapshot().WriteJSON(&s); err != nil {
		t.Fatal(err)
	}
	if err := merged.Snapshot().WriteJSON(&p); err != nil {
		t.Fatal(err)
	}
	if s.String() != p.String() {
		t.Errorf("exemplar exports differ:\n--- serial ---\n%s--- merged ---\n%s", s.String(), p.String())
	}
}

func labelFor(flow int64) string { return "flow=" + string(rune('0'+flow)) }

// snapText renders a registry's Prometheus export for equality checks.
func snapText(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
