package metrics

import (
	"bytes"
	"testing"
)

func TestMergeCounters(t *testing.T) {
	a, b := New(), New()
	a.Counter("hits", L("sw", "0")).Add(3)
	b.Counter("hits", L("sw", "0")).Add(4)
	b.Counter("hits", L("sw", "1")).Add(5)
	a.Merge(b)
	if got := a.CounterValue("hits", L("sw", "0")); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.CounterValue("hits", L("sw", "1")); got != 5 {
		t.Errorf("new-cell counter = %d, want 5", got)
	}
}

func TestMergeGaugesTakeMax(t *testing.T) {
	a, b := New(), New()
	a.Gauge("hw").SetMax(10)
	b.Gauge("hw").SetMax(4)
	b.Gauge("hw2").SetMax(9)
	a.Merge(b)
	if got := a.GaugeValue("hw"); got != 10 {
		t.Errorf("merged gauge = %d, want 10 (max)", got)
	}
	if got := a.GaugeValue("hw2"); got != 9 {
		t.Errorf("new gauge = %d, want 9", got)
	}
}

func TestMergeHistograms(t *testing.T) {
	bounds := []int64{10, 100}
	a, b := New(), New()
	ha := a.Histogram("lat", bounds)
	hb := b.Histogram("lat", bounds)
	ha.Observe(5)
	hb.Observe(50)
	hb.Observe(500)
	a.Merge(b)
	if got := a.Histogram("lat", bounds).Count(); got != 3 {
		t.Errorf("merged histogram count = %d, want 3", got)
	}
}

func TestMergeOrderIndependentOfWorkerCompletion(t *testing.T) {
	// Two scratch registries merged in sweep order must export exactly
	// like one registry accumulating the same registrations serially.
	mk := func(seed uint64) *Registry {
		r := New()
		r.Help("x_total", "an x")
		r.Counter("x_total", L("row", "0")).Add(seed)
		r.Gauge("x_hw").SetMax(int64(seed))
		return r
	}
	serial := New()
	serial.Merge(mk(1))
	serial.Merge(mk(2))

	parallelStyle := New()
	regs := []*Registry{mk(1), mk(2)} // workers finish in any order...
	for _, r := range regs {          // ...but merge happens in sweep order
		parallelStyle.Merge(r)
	}

	var s, p bytes.Buffer
	if err := serial.Snapshot().WritePrometheus(&s); err != nil {
		t.Fatal(err)
	}
	if err := parallelStyle.Snapshot().WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	if s.String() != p.String() {
		t.Errorf("exports differ:\n--- serial ---\n%s--- merged ---\n%s", s.String(), p.String())
	}
}

func TestMergeSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-merge did not panic")
		}
	}()
	r := New()
	r.Merge(r)
}

func TestMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(New()) // no-op
	New().Merge(nil)
}
