package metrics

import "sync/atomic"

// Goroutine-safe instrument cells for subsystems that live outside the
// single-threaded simulation — the service control plane's HTTP
// handlers in particular. The hot-path Counter/Gauge handles are
// deliberately unsynchronized (see the package comment); these are
// their atomic siblings for code where several OS threads genuinely
// race on one cell. They are not registered in a Registry: the owner
// folds their values into a snapshot registry at scrape time, so the
// unsynchronized registry cells are still only ever written from one
// goroutine at a time.

// SyncCounter is a monotonically increasing counter safe for
// concurrent use. The zero value is ready to use.
type SyncCounter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *SyncCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *SyncCounter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *SyncCounter) Value() uint64 { return c.v.Load() }

// SyncGauge is a settable signed instrument safe for concurrent use.
// The zero value is ready to use.
type SyncGauge struct{ v atomic.Int64 }

// Set stores v.
func (g *SyncGauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d and returns the new value.
func (g *SyncGauge) Add(d int64) int64 { return g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *SyncGauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *SyncGauge) Value() int64 { return g.v.Load() }
