package metrics

import "fmt"

// Merge folds every instrument of src into r:
//
//   - counters and histograms accumulate (sums of sums, bucket-wise
//     counts);
//   - gauges take the maximum — high-water semantics, matching how the
//     dataplane uses gauges (queue/pool/heap high waters via SetMax).
//     Snapshot-style gauges (an occupancy at run end) are only
//     meaningful per run and read as the cross-run worst after a merge;
//   - help strings and family/sample registration order are preserved:
//     families (and samples within a family) missing from r are
//     appended in src's registration order, so merging the same run
//     sequence in the same order always produces a byte-identical
//     export.
//
// Merge is how the parallel experiment harness keeps the hot path
// unsynchronized: every worker instruments its own scratch registry,
// and the harness merges them back in sweep order once the rows are
// done. Merging a registry into itself panics. Merge locks src while
// copying and r while applying (never both), so concurrent snapshots
// stay safe; two goroutines merging two registries into each other
// concurrently is the caller's bug.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	if r == src {
		panic("metrics: Merge of a registry into itself")
	}
	// Copy src's cells under its lock...
	src.mu.Lock()
	type cell struct {
		name   string
		help   string
		kind   Kind
		bounds []int64
		labels []Label
		c      uint64
		g      int64
		h      *histData
	}
	cells := make([]cell, 0, 64)
	for _, f := range src.families {
		for _, s := range f.samples {
			c := cell{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds, labels: s.labels}
			switch f.kind {
			case KindCounter:
				c.c = *s.c
			case KindGauge:
				c.g = *s.g
			case KindHistogram:
				h := &histData{bounds: s.h.bounds, counts: append([]uint64(nil), s.h.counts...),
					sum: s.h.sum, count: s.h.count, ex: s.h.ex, exSet: s.h.exSet}
				c.h = h
			}
			cells = append(cells, c)
		}
		if f.kind == "" && f.help != "" {
			// Help-only family (Help called before any instrument).
			cells = append(cells, cell{name: f.name, help: f.help})
		}
	}
	src.mu.Unlock()

	// ...validate every cell against r's existing families BEFORE any
	// mutation, so a kind or bucket-layout mismatch panics with r intact
	// instead of half-merged...
	r.mu.Lock()
	var mismatch string
	for _, c := range cells {
		f, ok := r.byName[c.name]
		if !ok || f.kind == "" || c.kind == "" {
			continue
		}
		if f.kind != c.kind {
			mismatch = fmt.Sprintf("metrics: Merge of %s registered as %s, merged as %s",
				c.name, f.kind, c.kind)
			break
		}
		if c.kind == KindHistogram && !equalBounds(f.bounds, c.bounds) {
			mismatch = fmt.Sprintf("metrics: Merge of %s with mismatched bucket layouts (%v vs %v)",
				c.name, f.bounds, c.bounds)
			break
		}
	}
	r.mu.Unlock()
	if mismatch != "" {
		panic(mismatch)
	}

	// ...then apply under r's lock via the normal registration path, so
	// family/sample ordering matches a serial run registering the same
	// sequence.
	for _, c := range cells {
		if c.help != "" {
			r.Help(c.name, c.help)
		}
		switch c.kind {
		case KindCounter:
			s := r.lookup(c.name, KindCounter, nil, c.labels)
			*s.c += c.c
		case KindGauge:
			s := r.lookup(c.name, KindGauge, nil, c.labels)
			if c.g > *s.g {
				*s.g = c.g
			}
		case KindHistogram:
			s := r.lookup(c.name, KindHistogram, c.bounds, c.labels)
			for i, n := range c.h.counts {
				s.h.counts[i] += n
			}
			s.h.sum += c.h.sum
			s.h.count += c.h.count
			// Exemplars fold like ObserveExemplar retains them:
			// strictly-greater value wins; among equal values the earlier
			// observation (smaller At) wins, matching the serial engine
			// keeping the FIRST equal-worst it saw — so merging partition
			// registries reproduces the serial exemplar no matter which
			// partition observed it. An exact (value, At) tie keeps the
			// destination's (earlier-in-merge-order) exemplar.
			if c.h.exSet && (!s.h.exSet || c.h.ex.Value > s.h.ex.Value ||
				(c.h.ex.Value == s.h.ex.Value && c.h.ex.At < s.h.ex.At)) {
				s.h.ex = c.h.ex
				s.h.exSet = true
			}
		}
	}
}

// equalBounds reports whether two bucket layouts are identical.
func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
