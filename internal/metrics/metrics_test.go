package metrics

import (
	"math"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("frames_total", L("switch", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("frames_total", L("switch", "0")); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	// Same name+labels resolves to the same cell.
	c2 := r.Counter("frames_total", L("switch", "0"))
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("dedup failed: %d, want 6", got)
	}
	// Label order must not matter.
	a := r.Counter("d", L("x", "1"), L("y", "2"))
	b := r.Counter("d", L("y", "2"), L("x", "1"))
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("label order created distinct cells")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("depth", L("q", "7"))
	g.Set(3)
	g.Add(2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(4)
	if g.Value() != 5 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
	if r.GaugeValue("depth", L("q", "7")) != 9 {
		t.Fatal("GaugeValue mismatch")
	}
}

func TestNilRegistryAndZeroHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	// All must be inert no-ops.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Active() || g.Active() || h.Active() {
		t.Fatal("nil-registry handles report active")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero handles returned nonzero values")
	}
	r.Help("x", "ignored")
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 || r.SumCounter("x") != 0 {
		t.Fatal("nil registry reads nonzero")
	}
	if len(r.Snapshot().Families) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	// Zero-value handles (e.g. fields of an uninstrumented switch).
	var zc Counter
	var zg Gauge
	var zh Histogram
	zc.Inc()
	zg.SetMax(10)
	zh.Observe(10)
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for v := int64(1); v <= 10; v++ {
		h.Observe(v) // 10 obs in (…,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // 10 obs in (10,100]
	}
	h.Observe(5000) // 1 obs in +Inf
	if h.Count() != 21 {
		t.Fatalf("count = %d, want 21", h.Count())
	}
	snap := r.Snapshot()
	smp := snap.Families[0].Samples[0]
	wantCounts := []uint64{10, 10, 0, 1}
	for i, c := range smp.Counts {
		if c != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", smp.Counts, wantCounts)
		}
	}
	// Median falls in the (…,10] or (10,100] boundary region.
	q50 := h.Quantile(0.5)
	if q50 < 1 || q50 > 100 {
		t.Fatalf("q50 = %g, want within (1,100]", q50)
	}
	// 99th percentile lands in +Inf bucket → clamps to highest bound.
	if q := h.Quantile(0.999); q != 1000 {
		t.Fatalf("q99.9 = %g, want clamp to 1000", q)
	}
	// Quantiles must be monotone.
	prev := -math.MaxFloat64
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(100, 2, 4)
	want := []int64{100, 200, 400, 800}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}

func TestSumCounter(t *testing.T) {
	r := New()
	r.Counter("drops", L("switch", "0"), L("reason", "meter")).Add(3)
	r.Counter("drops", L("switch", "1"), L("reason", "meter")).Add(4)
	r.Counter("drops", L("switch", "1"), L("reason", "gate")).Add(5)
	if got := r.SumCounter("drops"); got != 12 {
		t.Fatalf("total = %d, want 12", got)
	}
	if got := r.SumCounter("drops", L("reason", "meter")); got != 7 {
		t.Fatalf("meter total = %d, want 7", got)
	}
	if got := r.SumCounter("drops", L("switch", "1")); got != 9 {
		t.Fatalf("switch 1 total = %d, want 9", got)
	}
	if got := r.SumCounter("missing"); got != 0 {
		t.Fatalf("missing family = %d, want 0", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m")
}

// TestHotPathAllocs enforces the acceptance criterion: the counter
// path (and the other handle operations) must not allocate.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExponentialBounds(100, 4, 10))
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.SetMax(5) }); n != 0 {
		t.Fatalf("Gauge.SetMax allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
	var zero Counter
	if n := testing.AllocsPerRun(1000, func() { zero.Inc() }); n != 0 {
		t.Fatalf("zero Counter.Inc allocates %.1f/op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncUnbound(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("h", ExponentialBounds(100, 4, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000)
	}
}
