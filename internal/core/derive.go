package core

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// Scenario is the application-level input of the top-down flow: the
// pre-determined topology and flow features of §II.A from which the
// resource parameters are computed.
type Scenario struct {
	Topo *topology.Topology
	// Flows must have Path filled (use BindPaths).
	Flows []*flows.Spec
	// SlotSize is the CQF slot; zero selects the paper's 65 µs.
	SlotSize sim.Time
	// RCQueues is the number of queues reserved for RC traffic (the
	// paper uses 3).
	RCQueues int
	// QueueNum is the queues per port (the paper uses 8).
	QueueNum int
	// LinkRate defaults to 1 Gbps.
	LinkRate ethernet.Rate
	// AccessRate, when positive, is the slowest egress rate a TS flow
	// crosses (field-device links). DeriveConfig then checks the slot
	// against the drain-feasibility constraint and widens it if needed.
	AccessRate ethernet.Rate
	// DepthMargin is the multiplicative headroom applied to the ITP
	// occupancy bound, in percent. Zero selects 50, which is how the
	// paper's planned occupancy of 8 becomes the provisioned depth 12.
	DepthMargin int
}

func (sc *Scenario) defaults() {
	if sc.SlotSize == 0 {
		sc.SlotSize = 65 * sim.Microsecond
	}
	if sc.RCQueues == 0 {
		sc.RCQueues = 3
	}
	if sc.QueueNum == 0 {
		sc.QueueNum = 8
	}
	if sc.LinkRate == 0 {
		sc.LinkRate = ethernet.Gbps
	}
	if sc.DepthMargin == 0 {
		sc.DepthMargin = 50
	}
}

// BindPaths fills each flow's Path from the topology and the hosts'
// attachment points. FRER flows get two link-disjoint member-stream
// paths (Path + AltPath), which requires a topology that can provide
// them (a bidirectional ring).
func BindPaths(topo *topology.Topology, specs []*flows.Spec) error {
	for _, s := range specs {
		if s.FRER {
			pri, alt, err := topo.DisjointHostPaths(s.SrcHost, s.DstHost)
			if err != nil {
				return fmt.Errorf("core: FRER flow %d: %w", s.ID, err)
			}
			s.Path, s.AltPath = pri, alt
			continue
		}
		p, err := topo.HostPath(s.SrcHost, s.DstHost)
		if err != nil {
			return fmt.Errorf("core: flow %d: %w", s.ID, err)
		}
		s.Path = p
	}
	return nil
}

// Derivation is DeriveConfig's result: the configuration plus the ITP
// plan that justified the queue depth.
type Derivation struct {
	Config Config
	Plan   *itp.Plan
}

// DeriveConfig computes the resource parameters from the scenario,
// following the §III.C guidelines:
//
//  1. switch/classification/meter tables sized to the flow count;
//  2. gate tables sized to the slots per scheduling cycle (2 for CQF);
//  3. CBS tables sized to the RC queue count;
//  4. queue depth from the ITP occupancy bound (plus margin), buffers
//     = depth × queue count;
//  5. enabled ports from the topology.
func DeriveConfig(sc Scenario) (*Derivation, error) {
	sc.defaults()
	if sc.Topo == nil {
		return nil, fmt.Errorf("core: scenario without topology")
	}
	if len(sc.Flows) == 0 {
		return nil, fmt.Errorf("core: scenario without flows")
	}
	nFlows, nFRER := 0, 0
	for _, s := range sc.Flows {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if len(s.Path) == 0 {
			return nil, fmt.Errorf("core: flow %d has no path (call BindPaths)", s.ID)
		}
		nFlows++
		if s.FRER {
			if len(s.AltPath) == 0 {
				return nil, fmt.Errorf("core: FRER flow %d has no alternate path (call BindPaths)", s.ID)
			}
			nFRER++
		}
	}

	// Guideline (4): plan injection times, then provision depth with
	// margin. The cell key is port-aware: flows through the same
	// switch toward different next hops use different egress queues.
	key := func(s *flows.Spec, hop int) string {
		next := -1
		if hop+1 < len(s.Path) {
			next = s.Path[hop+1]
		} else {
			next = -(s.DstHost + 2) // egress to the destination host
		}
		return fmt.Sprintf("sw%d->%d", s.Path[hop], next)
	}
	plan, err := itp.Compute(sc.Flows, sc.SlotSize, key)
	if err != nil {
		return nil, err
	}
	// Mixed-speed networks: widen the slot until one slot's frames can
	// drain through the slowest egress ("a packet received at a time
	// slot must be sent at the next time slot"). Widening the slot can
	// change the plan, so iterate to a fixed point.
	if sc.AccessRate > 0 && sc.AccessRate < sc.LinkRate {
		maxWire := 0
		for _, s := range sc.Flows {
			if s.Class == ethernet.ClassTS && s.WireSize > maxWire {
				maxWire = s.WireSize
			}
		}
		for iter := 0; iter < 4; iter++ {
			issues := CheckSlotFeasibility(plan, sc.AccessRate, maxWire)
			if len(issues) == 0 {
				break
			}
			wider := MinFeasibleSlot(plan.MaxOccupancy, sc.AccessRate, maxWire, 5*sim.Microsecond)
			if wider <= sc.SlotSize {
				wider = sc.SlotSize + 5*sim.Microsecond
			}
			sc.SlotSize = wider
			if plan, err = itp.Compute(sc.Flows, sc.SlotSize, key); err != nil {
				return nil, err
			}
			if iter == 3 {
				return nil, fmt.Errorf("core: no feasible slot for access rate %d bps (worst cell: %v)",
					sc.AccessRate, issues[0])
			}
		}
	}
	depth := plan.MaxOccupancy
	if depth < 1 {
		depth = 1
	}
	depth += (depth*sc.DepthMargin + 99) / 100

	// Each FRER flow consumes a second forwarding/classification entry
	// (its member stream on AltVID) and one sequence-recovery entry.
	// The ITP plan covers the primary paths; the replicas ride the same
	// injection offsets, and the depth margin absorbs their extra
	// occupancy on the disjoint alternate paths.
	nEntries := nFlows + nFRER
	cfg := Config{
		UnicastSize:   nEntries, // guideline (1): one entry per flow worst case
		MulticastSize: 0,        // multicast split into unicast flows (§IV.B)
		ClassSize:     nEntries,
		MeterSize:     nFlows,
		GateSize:      2, // CQF: scheduling cycle = 2 slots
		QueueNum:      sc.QueueNum,
		PortNum:       sc.Topo.EnabledTSNPorts,
		CBSMapSize:    sc.RCQueues,
		CBSSize:       sc.RCQueues,
		QueueDepth:    depth,
		BufferNum:     depth * sc.QueueNum, // overall buffers = depth × all queues
		SlotSize:      sc.SlotSize,
		LinkRate:      sc.LinkRate,
	}
	if nFRER > 0 {
		cfg.FRERSize = nFRER
		cfg.FRERHistory = frer.DefaultHistory
	}
	return &Derivation{Config: cfg, Plan: plan}, nil
}

// BuilderFor returns a Builder pre-loaded with cfg through the
// customization APIs, ready to Build for the given platform.
func BuilderFor(cfg Config, platform Platform) *Builder {
	b := NewBuilder(platform)
	b.SetSwitchTbl(cfg.UnicastSize, cfg.MulticastSize).
		SetClassTbl(cfg.ClassSize).
		SetMeterTbl(cfg.MeterSize).
		SetGateTbl(cfg.GateSize, cfg.QueueNum, cfg.PortNum).
		SetCBSTbl(cfg.CBSMapSize, cfg.CBSSize, cfg.PortNum).
		SetQueues(cfg.QueueDepth, cfg.QueueNum, cfg.PortNum).
		SetBuffers(cfg.BufferNum, cfg.PortNum).
		SetTiming(cfg.SlotSize, cfg.LinkRate)
	if cfg.FRERSize > 0 {
		b.SetFRERTbl(cfg.FRERSize, cfg.FRERHistory)
	}
	return b
}

// CommercialProfile returns the BCM53154 resource configuration the
// paper uses as its baseline (§IV.B): 4 TSN ports, 16K MAC entries, 1K
// classification entries, 512 meters, 8 queues/shapers per port with
// depth 16, and 128 buffers per port. Parameters the datasheet leaves
// open are set as in the customized switches, exactly as the paper
// does.
func CommercialProfile() Config {
	return Config{
		UnicastSize:   16 * 1024,
		MulticastSize: 0,
		ClassSize:     1024,
		MeterSize:     512,
		GateSize:      2,
		QueueNum:      8,
		PortNum:       4,
		CBSMapSize:    8,
		CBSSize:       8,
		QueueDepth:    16,
		BufferNum:     128,
		SlotSize:      65 * sim.Microsecond,
		LinkRate:      ethernet.Gbps,
	}
}

// PaperCustomizedConfig returns the customized column of Table III for
// the given enabled-port count (3 = star, 2 = linear, 1 = ring),
// reproducing the paper's exact parameters for 1024 flows.
func PaperCustomizedConfig(ports int) Config {
	return Config{
		UnicastSize:   1024,
		MulticastSize: 0,
		ClassSize:     1024,
		MeterSize:     1024,
		GateSize:      2,
		QueueNum:      8,
		PortNum:       ports,
		CBSMapSize:    3,
		CBSSize:       3,
		QueueDepth:    12,
		BufferNum:     96,
		SlotSize:      65 * sim.Microsecond,
		LinkRate:      ethernet.Gbps,
	}
}
