package core

import (
	"errors"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// Config is the complete resource specification a Builder accumulates:
// one value per customization-API parameter of Table II, plus the gate
// timing the Gate Ctrl template needs.
type Config struct {
	// set_switch_tbl
	UnicastSize   int
	MulticastSize int
	// set_class_tbl
	ClassSize int
	// set_meter_tbl
	MeterSize int
	// set_gate_tbl
	GateSize int
	QueueNum int
	PortNum  int
	// set_cbs_tbl
	CBSMapSize int
	CBSSize    int
	// set_queues
	QueueDepth int
	// set_buffers
	BufferNum int
	// set_frer_tbl — the eighth resource class (802.1CB sequence
	// recovery), optional: zero means no FRER hardware is generated.
	FRERSize    int
	FRERHistory int

	// SlotSize is the gate time slot (65 µs in the evaluation).
	SlotSize sim.Time
	// LinkRate is the port line rate (1 Gbps in the evaluation).
	LinkRate ethernet.Rate
}

// Builder accumulates a Config through the Table II APIs. Methods
// chain; errors accumulate and surface at Build, matching how a
// hardware generator validates a whole parameter file.
type Builder struct {
	platform Platform
	cfg      Config
	set      map[string]bool
	selected map[Template]bool
	errs     []error
}

// NewBuilder starts a customization against platform (nil selects the
// default FPGA platform). All five templates start selected; use
// Select to restrict.
func NewBuilder(platform Platform) *Builder {
	if platform == nil {
		platform = FPGA{}
	}
	b := &Builder{
		platform: platform,
		set:      make(map[string]bool),
		selected: make(map[Template]bool),
	}
	for _, t := range AllTemplates() {
		b.selected[t] = true
	}
	b.cfg.SlotSize = 65 * sim.Microsecond
	b.cfg.LinkRate = ethernet.Gbps
	return b
}

// Select restricts the design to the given templates. APIs touching an
// unselected template fail at Build.
func (b *Builder) Select(ts ...Template) *Builder {
	for t := range b.selected {
		b.selected[t] = false
	}
	for _, t := range ts {
		b.selected[t] = true
	}
	return b
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) need(t Template, api string) {
	if !b.selected[t] {
		b.errf("core: %s called but template %q not selected", api, t)
	}
	b.set[api] = true
}

// SetSwitchTbl implements set_switch_tbl(unicast_size, multicast_size).
func (b *Builder) SetSwitchTbl(unicastSize, multicastSize int) *Builder {
	b.need(TemplatePacketSwitch, "set_switch_tbl")
	if unicastSize < 0 || multicastSize < 0 {
		b.errf("core: set_switch_tbl negative size (%d, %d)", unicastSize, multicastSize)
	}
	b.cfg.UnicastSize, b.cfg.MulticastSize = unicastSize, multicastSize
	return b
}

// SetClassTbl implements set_class_tbl(class_size).
func (b *Builder) SetClassTbl(classSize int) *Builder {
	b.need(TemplateIngressFilter, "set_class_tbl")
	if classSize < 0 {
		b.errf("core: set_class_tbl negative size %d", classSize)
	}
	b.cfg.ClassSize = classSize
	return b
}

// SetMeterTbl implements set_meter_tbl(meter_size).
func (b *Builder) SetMeterTbl(meterSize int) *Builder {
	b.need(TemplateIngressFilter, "set_meter_tbl")
	if meterSize < 0 {
		b.errf("core: set_meter_tbl negative size %d", meterSize)
	}
	b.cfg.MeterSize = meterSize
	return b
}

// SetGateTbl implements set_gate_tbl(gate_size, queue_num, port_num).
func (b *Builder) SetGateTbl(gateSize, queueNum, portNum int) *Builder {
	b.need(TemplateGateCtrl, "set_gate_tbl")
	if gateSize < 2 {
		b.errf("core: set_gate_tbl gate_size %d < 2", gateSize)
	}
	b.checkQueueNum("set_gate_tbl", queueNum)
	b.checkPortNum("set_gate_tbl", portNum)
	b.cfg.GateSize = gateSize
	return b
}

// SetCBSTbl implements set_cbs_tbl(cbs_map_size, cbs_size, port_num).
func (b *Builder) SetCBSTbl(cbsMapSize, cbsSize, portNum int) *Builder {
	b.need(TemplateEgressSched, "set_cbs_tbl")
	if cbsMapSize < 0 || cbsSize < 0 {
		b.errf("core: set_cbs_tbl negative size (%d, %d)", cbsMapSize, cbsSize)
	}
	b.checkPortNum("set_cbs_tbl", portNum)
	b.cfg.CBSMapSize, b.cfg.CBSSize = cbsMapSize, cbsSize
	return b
}

// SetQueues implements set_queues(queue_depth, queue_num, port_num).
func (b *Builder) SetQueues(queueDepth, queueNum, portNum int) *Builder {
	b.need(TemplateGateCtrl, "set_queues")
	if queueDepth <= 0 {
		b.errf("core: set_queues non-positive depth %d", queueDepth)
	}
	b.checkQueueNum("set_queues", queueNum)
	b.checkPortNum("set_queues", portNum)
	b.cfg.QueueDepth = queueDepth
	return b
}

// SetBuffers implements set_buffers(buffer_num, port_num).
func (b *Builder) SetBuffers(bufferNum, portNum int) *Builder {
	b.need(TemplateGateCtrl, "set_buffers")
	if bufferNum <= 0 {
		b.errf("core: set_buffers non-positive count %d", bufferNum)
	}
	b.checkPortNum("set_buffers", portNum)
	b.cfg.BufferNum = bufferNum
	return b
}

// SetFRERTbl implements set_frer_tbl(frer_size, history_len), the
// eighth customization API: an 802.1CB sequence-recovery table of
// frer_size streams with a history_len-bit window per entry. Unlike
// the paper's seven APIs it is optional — designs without redundant
// streams simply never call it and pay zero BRAM.
func (b *Builder) SetFRERTbl(frerSize, historyLen int) *Builder {
	b.need(TemplateIngressFilter, "set_frer_tbl")
	if frerSize < 0 {
		b.errf("core: set_frer_tbl negative size %d", frerSize)
	}
	if frerSize > 0 && (historyLen < 1 || historyLen > frer.MaxHistory) {
		b.errf("core: set_frer_tbl history %d out of [1,%d]", historyLen, frer.MaxHistory)
	}
	b.cfg.FRERSize, b.cfg.FRERHistory = frerSize, historyLen
	return b
}

// SetTiming adjusts the gate slot size and port line rate (defaults:
// 65 µs, 1 Gbps).
func (b *Builder) SetTiming(slot sim.Time, rate ethernet.Rate) *Builder {
	if slot <= 0 || rate <= 0 {
		b.errf("core: SetTiming invalid (%v, %d)", slot, rate)
	}
	b.cfg.SlotSize, b.cfg.LinkRate = slot, rate
	return b
}

// checkPortNum enforces that every per-port API names the same
// port_num.
func (b *Builder) checkPortNum(api string, portNum int) {
	if portNum <= 0 {
		b.errf("core: %s non-positive port_num %d", api, portNum)
		return
	}
	if b.cfg.PortNum != 0 && b.cfg.PortNum != portNum {
		b.errf("core: %s port_num %d conflicts with earlier %d", api, portNum, b.cfg.PortNum)
		return
	}
	b.cfg.PortNum = portNum
}

func (b *Builder) checkQueueNum(api string, queueNum int) {
	if queueNum <= 0 || queueNum > 16 {
		b.errf("core: %s queue_num %d out of range", api, queueNum)
		return
	}
	if b.cfg.QueueNum != 0 && b.cfg.QueueNum != queueNum {
		b.errf("core: %s queue_num %d conflicts with earlier %d", api, queueNum, b.cfg.QueueNum)
		return
	}
	b.cfg.QueueNum = queueNum
}

// requiredAPIs maps each selected template to the APIs it needs.
var requiredAPIs = map[Template][]string{
	TemplatePacketSwitch:  {"set_switch_tbl"},
	TemplateIngressFilter: {"set_class_tbl", "set_meter_tbl"},
	TemplateGateCtrl:      {"set_gate_tbl", "set_queues", "set_buffers"},
	TemplateEgressSched:   {"set_cbs_tbl"},
}

// Build validates the accumulated configuration and produces the
// Design.
func (b *Builder) Build() (*Design, error) {
	errs := append([]error(nil), b.errs...)
	for _, t := range AllTemplates() {
		if !b.selected[t] {
			continue
		}
		for _, api := range requiredAPIs[t] {
			if !b.set[api] {
				errs = append(errs, fmt.Errorf("core: template %q selected but %s never called", t, api))
			}
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	var templates []Template
	for _, t := range AllTemplates() {
		if b.selected[t] {
			templates = append(templates, t)
		}
	}
	return &Design{
		Config:    b.cfg,
		Templates: templates,
		Platform:  b.platform,
		Report:    b.platform.MemoryCost(b.cfg),
	}, nil
}

// Design is a completed customization: the configuration, the selected
// templates and the platform memory report.
type Design struct {
	Config    Config
	Templates []Template
	Platform  Platform
	Report    *resource.Report
}

// SwitchConfig materializes the dataplane configuration for switch id
// with the given number of instantiated ports. ports may exceed the
// design's PortNum: access (host-facing) ports exist physically but are
// outside the TSN resource budget, exactly as the paper counts only
// "enabled TSN ports".
func (d *Design) SwitchConfig(id, ports int) tsnswitch.Config {
	if ports < d.Config.PortNum {
		ports = d.Config.PortNum
	}
	return tsnswitch.Config{
		ID:             id,
		Ports:          ports,
		QueuesPerPort:  d.Config.QueueNum,
		QueueDepth:     d.Config.QueueDepth,
		BuffersPerPort: d.Config.BufferNum,
		UnicastSize:    d.Config.UnicastSize,
		MulticastSize:  d.Config.MulticastSize,
		ClassSize:      d.Config.ClassSize,
		MeterSize:      d.Config.MeterSize,
		GateSize:       d.Config.GateSize,
		CBSMapSize:     d.Config.CBSMapSize,
		CBSSize:        d.Config.CBSSize,
		SlotSize:       d.Config.SlotSize,
		TSQueueA:       d.Config.QueueNum - 1,
		TSQueueB:       d.Config.QueueNum - 2,
		LinkRate:       d.Config.LinkRate,
	}
}
