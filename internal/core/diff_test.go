package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDiffConfigsIdentical(t *testing.T) {
	a := PaperCustomizedConfig(1)
	if d := DiffConfigs(a, a); len(d) != 0 {
		t.Fatalf("identical configs diff: %v", d)
	}
}

func TestDiffConfigsReportsEveryField(t *testing.T) {
	a := PaperCustomizedConfig(1)
	b := a
	b.UnicastSize = 2048
	b.MulticastSize = 16
	b.ClassSize = 2048
	b.MeterSize = 2048
	b.GateSize = 4
	b.QueueNum = 4
	b.PortNum = 2
	b.CBSMapSize = 2
	b.CBSSize = 2
	b.QueueDepth = 20
	b.BufferNum = 160
	b.SlotSize = a.SlotSize * 2
	b.LinkRate = a.LinkRate / 10
	d := DiffConfigs(a, b)
	if len(d) != 13 {
		t.Fatalf("diff lines = %d, want 13:\n%s", len(d), strings.Join(d, "\n"))
	}
	joined := strings.Join(d, "\n")
	for _, frag := range []string{"set_switch_tbl", "set_class_tbl", "set_meter_tbl",
		"set_gate_tbl", "set_cbs_tbl", "set_queues", "set_buffers", "slot_size", "link_rate"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("diff missing %q", frag)
		}
	}
}

func TestDiffConfigsScenarioEvolution(t *testing.T) {
	// The paper's rapid-reconfiguration pitch: doubling the flow count
	// touches only the table sizes and queue/buffer provisioning, not
	// the structural parameters.
	a := PaperCustomizedConfig(1)
	b := a
	b.UnicastSize, b.ClassSize, b.MeterSize = 2048, 2048, 2048
	d := DiffConfigs(a, b)
	if len(d) != 3 {
		t.Fatalf("diff = %v", d)
	}
	for _, line := range d {
		if strings.Contains(line, "gate") || strings.Contains(line, "port_num") {
			t.Fatalf("structural parameter changed: %s", line)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := PaperCustomizedConfig(1).String()
	for _, frag := range []string{
		"set_switch_tbl(1024, 0)",
		"set_gate_tbl(2, 8, 1)",
		"set_queues(12, 8, 1)",
		"set_buffers(96, 1)",
		"slot=65µs",
		"rate=1000Mbps",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("Config.String missing %q:\n%s", frag, s)
		}
	}
}

// TestConfigJSONRoundTrip guards the on-disk representability of a
// configuration (tooling saves/loads derived designs).
func TestConfigJSONRoundTrip(t *testing.T) {
	a := PaperCustomizedConfig(3)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Config
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", a, b)
	}
	if d := DiffConfigs(a, b); len(d) != 0 {
		t.Fatalf("round trip diff: %v", d)
	}
}
