package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDiffConfigsIdentical(t *testing.T) {
	a := PaperCustomizedConfig(1)
	if d := DiffConfigs(a, a); len(d) != 0 {
		t.Fatalf("identical configs diff: %v", d)
	}
}

func TestDiffConfigsReportsEveryField(t *testing.T) {
	a := PaperCustomizedConfig(1)
	b := a
	b.UnicastSize = 2048
	b.MulticastSize = 16
	b.ClassSize = 2048
	b.MeterSize = 2048
	b.GateSize = 4
	b.QueueNum = 4
	b.PortNum = 2
	b.CBSMapSize = 2
	b.CBSSize = 2
	b.QueueDepth = 20
	b.BufferNum = 160
	b.SlotSize = a.SlotSize * 2
	b.LinkRate = a.LinkRate / 10
	d := DiffConfigs(a, b)
	if len(d) != 13 {
		t.Fatalf("diff lines = %d, want 13:\n%s", len(d), strings.Join(d, "\n"))
	}
	joined := strings.Join(d, "\n")
	for _, frag := range []string{"set_switch_tbl", "set_class_tbl", "set_meter_tbl",
		"set_gate_tbl", "set_cbs_tbl", "set_queues", "set_buffers", "slot_size", "link_rate"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("diff missing %q", frag)
		}
	}
}

// TestDiffConfigsPerField exercises every resource class one field at
// a time: each change must produce exactly one diff line naming the
// owning customization API and the field.
func TestDiffConfigsPerField(t *testing.T) {
	base := PaperCustomizedConfig(1)
	base.FRERSize, base.FRERHistory = 8, 16 // so FRER fields have a baseline
	cases := []struct {
		name   string
		mutate func(*Config)
		api    string
		field  string
	}{
		{"unicast", func(c *Config) { c.UnicastSize++ }, "set_switch_tbl", "unicast_size"},
		{"multicast", func(c *Config) { c.MulticastSize++ }, "set_switch_tbl", "multicast_size"},
		{"class", func(c *Config) { c.ClassSize++ }, "set_class_tbl", "class_size"},
		{"meter", func(c *Config) { c.MeterSize++ }, "set_meter_tbl", "meter_size"},
		{"gate", func(c *Config) { c.GateSize++ }, "set_gate_tbl", "gate_size"},
		{"queue_num", func(c *Config) { c.QueueNum++ }, "set_gate_tbl/set_queues", "queue_num"},
		{"port_num", func(c *Config) { c.PortNum++ }, "per-port APIs", "port_num"},
		{"cbs_map", func(c *Config) { c.CBSMapSize++ }, "set_cbs_tbl", "cbs_map_size"},
		{"cbs", func(c *Config) { c.CBSSize++ }, "set_cbs_tbl", "cbs_size"},
		{"queue_depth", func(c *Config) { c.QueueDepth++ }, "set_queues", "queue_depth"},
		{"buffer_num", func(c *Config) { c.BufferNum++ }, "set_buffers", "buffer_num"},
		{"frer_size", func(c *Config) { c.FRERSize++ }, "set_frer_tbl", "frer_size"},
		{"frer_history", func(c *Config) { c.FRERHistory++ }, "set_frer_tbl", "history_len"},
		{"slot_size", func(c *Config) { c.SlotSize *= 2 }, "timing", "slot_size"},
		{"link_rate", func(c *Config) { c.LinkRate /= 2 }, "timing", "link_rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := base
			tc.mutate(&mutated)
			d := DiffConfigs(base, mutated)
			if len(d) != 1 {
				t.Fatalf("diff = %v, want exactly 1 line", d)
			}
			if !strings.Contains(d[0], tc.api) || !strings.Contains(d[0], tc.field) {
				t.Fatalf("line %q missing %q / %q", d[0], tc.api, tc.field)
			}
			// Symmetry: the reverse diff reports the same field.
			r := DiffConfigs(mutated, base)
			if len(r) != 1 || !strings.Contains(r[0], tc.field) {
				t.Fatalf("reverse diff = %v", r)
			}
		})
	}
}

func TestDiffConfigsScenarioEvolution(t *testing.T) {
	// The paper's rapid-reconfiguration pitch: doubling the flow count
	// touches only the table sizes and queue/buffer provisioning, not
	// the structural parameters.
	a := PaperCustomizedConfig(1)
	b := a
	b.UnicastSize, b.ClassSize, b.MeterSize = 2048, 2048, 2048
	d := DiffConfigs(a, b)
	if len(d) != 3 {
		t.Fatalf("diff = %v", d)
	}
	for _, line := range d {
		if strings.Contains(line, "gate") || strings.Contains(line, "port_num") {
			t.Fatalf("structural parameter changed: %s", line)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := PaperCustomizedConfig(1).String()
	for _, frag := range []string{
		"set_switch_tbl(1024, 0)",
		"set_gate_tbl(2, 8, 1)",
		"set_queues(12, 8, 1)",
		"set_buffers(96, 1)",
		"slot=65µs",
		"rate=1000Mbps",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("Config.String missing %q:\n%s", frag, s)
		}
	}
}

// TestConfigJSONRoundTrip guards the on-disk representability of a
// configuration (tooling saves/loads derived designs).
func TestConfigJSONRoundTrip(t *testing.T) {
	a := PaperCustomizedConfig(3)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Config
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", a, b)
	}
	if d := DiffConfigs(a, b); len(d) != 0 {
		t.Fatalf("round trip diff: %v", d)
	}
}
