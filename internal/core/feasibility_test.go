package core

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func planWith(cells map[string]int, slot sim.Time) *itp.Plan {
	return &itp.Plan{PerCell: cells, Slot: slot}
}

func TestFeasibilityAtGigabit(t *testing.T) {
	// 12 frames of 64 B at 1 Gbps drain in ~8 µs ≪ 65 µs.
	plan := planWith(map[string]int{"sw0->1": 12}, 65*sim.Microsecond)
	if issues := CheckSlotFeasibility(plan, ethernet.Gbps, 64); len(issues) != 0 {
		t.Fatalf("gigabit flagged infeasible: %v", issues)
	}
}

func TestFeasibilityAtSlowAccess(t *testing.T) {
	// 12 frames of 64 B at 10 Mbps need ~807 µs ≫ 65 µs.
	plan := planWith(map[string]int{"sw0->host": 12, "sw1->2": 2}, 65*sim.Microsecond)
	issues := CheckSlotFeasibility(plan, 10*ethernet.Mbps, 64)
	if len(issues) != 2 {
		t.Fatalf("issues = %v", issues)
	}
	// Worst first.
	if issues[0].Cell != "sw0->host" || issues[0].Occupancy != 12 {
		t.Fatalf("ordering wrong: %v", issues)
	}
	if !strings.Contains(issues[0].String(), "sw0->host") {
		t.Fatal("issue formatting broken")
	}
}

func TestFeasibilityDegenerateInputs(t *testing.T) {
	if CheckSlotFeasibility(nil, ethernet.Gbps, 64) != nil {
		t.Fatal("nil plan produced issues")
	}
	plan := planWith(map[string]int{"x": 1}, sim.Microsecond)
	if CheckSlotFeasibility(plan, 0, 64) != nil || CheckSlotFeasibility(plan, ethernet.Gbps, 0) != nil {
		t.Fatal("degenerate rate/size produced issues")
	}
}

func TestDeriveWidensSlotForSlowAccess(t *testing.T) {
	topo := topologyRing6(t)
	specs := ringFlows(t, topo, 256)
	// Fast access: the default 65 µs slot stands.
	fast, err := DeriveConfig(Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Config.SlotSize != 65*sim.Microsecond {
		t.Fatalf("fast slot = %v", fast.Config.SlotSize)
	}
	// 10 Mbps field devices: a 64 B frame needs 67.2 µs — the slot must
	// widen past the per-slot drain demand.
	slow, err := DeriveConfig(Scenario{Topo: topo, Flows: specs, AccessRate: 10 * ethernet.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Config.SlotSize <= 65*sim.Microsecond {
		t.Fatalf("slow slot = %v, want widened", slow.Config.SlotSize)
	}
	if issues := CheckSlotFeasibility(slow.Plan, 10*ethernet.Mbps, 64); len(issues) != 0 {
		t.Fatalf("derived slot still infeasible: %v", issues)
	}
}

// topologyRing6/ringFlows are small helpers for the feasibility tests.
func topologyRing6(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	return topo
}

func ringFlows(t *testing.T, topo *topology.Topology, n int) []*flows.Spec {
	t.Helper()
	specs := flows.GenerateTS(flows.TSParams{
		Count: n, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:  5,
	})
	if err := BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestMinFeasibleSlot(t *testing.T) {
	// 12 × 84 B at 100 Mbps = 80.64 µs → rounds to 81 µs.
	got := MinFeasibleSlot(12, 100*ethernet.Mbps, 64, sim.Microsecond)
	if got != 81*sim.Microsecond {
		t.Fatalf("MinFeasibleSlot = %v, want 81µs", got)
	}
	// The returned slot must actually be feasible.
	plan := planWith(map[string]int{"c": 12}, got)
	if issues := CheckSlotFeasibility(plan, 100*ethernet.Mbps, 64); len(issues) != 0 {
		t.Fatalf("MinFeasibleSlot result infeasible: %v", issues)
	}
	if MinFeasibleSlot(0, ethernet.Gbps, 64, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}
