package core

import (
	"fmt"
	"strings"
)

// DiffConfigs reports the parameter-level differences between two
// configurations — the "regulate the related parameters and reuse
// these templates" step of §III.C's synthesis stage. An empty result
// means the designs are identical and nothing needs rebuilding.
func DiffConfigs(old, new Config) []string {
	var out []string
	add := func(api, field string, o, n any) {
		out = append(out, fmt.Sprintf("%s: %s %v → %v", api, field, o, n))
	}
	if old.UnicastSize != new.UnicastSize {
		add("set_switch_tbl", "unicast_size", old.UnicastSize, new.UnicastSize)
	}
	if old.MulticastSize != new.MulticastSize {
		add("set_switch_tbl", "multicast_size", old.MulticastSize, new.MulticastSize)
	}
	if old.ClassSize != new.ClassSize {
		add("set_class_tbl", "class_size", old.ClassSize, new.ClassSize)
	}
	if old.MeterSize != new.MeterSize {
		add("set_meter_tbl", "meter_size", old.MeterSize, new.MeterSize)
	}
	if old.GateSize != new.GateSize {
		add("set_gate_tbl", "gate_size", old.GateSize, new.GateSize)
	}
	if old.QueueNum != new.QueueNum {
		add("set_gate_tbl/set_queues", "queue_num", old.QueueNum, new.QueueNum)
	}
	if old.PortNum != new.PortNum {
		add("per-port APIs", "port_num", old.PortNum, new.PortNum)
	}
	if old.CBSMapSize != new.CBSMapSize {
		add("set_cbs_tbl", "cbs_map_size", old.CBSMapSize, new.CBSMapSize)
	}
	if old.CBSSize != new.CBSSize {
		add("set_cbs_tbl", "cbs_size", old.CBSSize, new.CBSSize)
	}
	if old.QueueDepth != new.QueueDepth {
		add("set_queues", "queue_depth", old.QueueDepth, new.QueueDepth)
	}
	if old.BufferNum != new.BufferNum {
		add("set_buffers", "buffer_num", old.BufferNum, new.BufferNum)
	}
	if old.FRERSize != new.FRERSize {
		add("set_frer_tbl", "frer_size", old.FRERSize, new.FRERSize)
	}
	if old.FRERHistory != new.FRERHistory {
		add("set_frer_tbl", "history_len", old.FRERHistory, new.FRERHistory)
	}
	if old.SlotSize != new.SlotSize {
		add("timing", "slot_size", old.SlotSize, new.SlotSize)
	}
	if old.LinkRate != new.LinkRate {
		add("timing", "link_rate", old.LinkRate, new.LinkRate)
	}
	return out
}

// String renders the configuration as the customization-API call
// sequence that reproduces it.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "set_switch_tbl(%d, %d)\n", c.UnicastSize, c.MulticastSize)
	fmt.Fprintf(&b, "set_class_tbl(%d)\n", c.ClassSize)
	fmt.Fprintf(&b, "set_meter_tbl(%d)\n", c.MeterSize)
	fmt.Fprintf(&b, "set_gate_tbl(%d, %d, %d)\n", c.GateSize, c.QueueNum, c.PortNum)
	fmt.Fprintf(&b, "set_cbs_tbl(%d, %d, %d)\n", c.CBSMapSize, c.CBSSize, c.PortNum)
	fmt.Fprintf(&b, "set_queues(%d, %d, %d)\n", c.QueueDepth, c.QueueNum, c.PortNum)
	fmt.Fprintf(&b, "set_buffers(%d, %d)\n", c.BufferNum, c.PortNum)
	if c.FRERSize > 0 {
		fmt.Fprintf(&b, "set_frer_tbl(%d, %d)\n", c.FRERSize, c.FRERHistory)
	}
	fmt.Fprintf(&b, "timing: slot=%v rate=%dMbps", c.SlotSize, int64(c.LinkRate)/1_000_000)
	return b.String()
}
