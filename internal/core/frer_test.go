package core

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func TestSetFRERTblOptional(t *testing.T) {
	// A design that never calls set_frer_tbl builds fine and pays no
	// BRAM for the eighth class.
	cfg := PaperCustomizedConfig(1)
	d, err := BuilderFor(cfg, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range d.Report.Items {
		if it.Name == "FRER Tbl" {
			t.Fatal("FRER row present without set_frer_tbl")
		}
	}

	cfg.FRERSize, cfg.FRERHistory = 16, frer.DefaultHistory
	d, err = BuilderFor(cfg, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range d.Report.Items {
		if it.Name == "FRER Tbl" {
			found = true
			if it.Bits == 0 {
				t.Fatal("FRER row costs no BRAM")
			}
		}
	}
	if !found {
		t.Fatal("FRER row missing after set_frer_tbl")
	}
	if !strings.Contains(d.Config.String(), "set_frer_tbl(16, 32)") {
		t.Fatalf("config string misses set_frer_tbl: %s", d.Config.String())
	}
}

func TestSetFRERTblValidation(t *testing.T) {
	b := NewBuilder(nil)
	b.SetFRERTbl(-1, 8)
	if _, err := b.Build(); err == nil {
		t.Fatal("negative frer_size accepted")
	}
	b = NewBuilder(nil)
	b.SetFRERTbl(4, frer.MaxHistory+1)
	if _, err := b.Build(); err == nil {
		t.Fatal("oversize history accepted")
	}
}

func TestDiffConfigsFRER(t *testing.T) {
	a := PaperCustomizedConfig(1)
	b := a
	b.FRERSize, b.FRERHistory = 8, 32
	diffs := DiffConfigs(a, b)
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "frer_size") || !strings.Contains(joined, "history_len") {
		t.Fatalf("FRER diff missing: %v", diffs)
	}
}

func TestDeriveConfigFRER(t *testing.T) {
	topo := topology.RingBidir(6)
	topo.AttachHost(0, 0)
	topo.AttachHost(1, 3)
	specs := []*flows.Spec{
		{
			ID: 1, Class: ethernet.ClassTS, SrcHost: 0, DstHost: 1,
			VID: 100, AltVID: 2148, PCP: 7, WireSize: 256,
			Period: 10 * sim.Millisecond, Deadline: 2 * sim.Millisecond,
			FRER: true,
		},
		{
			ID: 2, Class: ethernet.ClassTS, SrcHost: 0, DstHost: 1,
			VID: 100, PCP: 7, WireSize: 256,
			Period: 10 * sim.Millisecond, Deadline: 2 * sim.Millisecond,
		},
	}
	if err := BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	if len(specs[0].AltPath) == 0 {
		t.Fatal("BindPaths did not fill AltPath for FRER flow")
	}
	if specs[0].Path[1] == specs[0].AltPath[1] {
		t.Fatal("member-stream paths not disjoint")
	}
	der, err := DeriveConfig(Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := der.Config
	if cfg.FRERSize != 1 || cfg.FRERHistory != frer.DefaultHistory {
		t.Fatalf("FRER sizing = %d/%d", cfg.FRERSize, cfg.FRERHistory)
	}
	// 2 flows + 1 member stream = 3 forwarding/classification entries.
	if cfg.UnicastSize != 3 || cfg.ClassSize != 3 {
		t.Fatalf("entry sizing = %d/%d, want 3/3", cfg.UnicastSize, cfg.ClassSize)
	}
	if cfg.MeterSize != 2 {
		t.Fatalf("meter sizing = %d, want 2", cfg.MeterSize)
	}
}

func TestBindPathsFRERNeedsBidirRing(t *testing.T) {
	topo := topology.Ring(4)
	topo.AttachHost(0, 0)
	topo.AttachHost(1, 2)
	specs := []*flows.Spec{{
		ID: 1, Class: ethernet.ClassTS, SrcHost: 0, DstHost: 1,
		VID: 100, AltVID: 2148, WireSize: 128, Period: sim.Millisecond,
		FRER: true,
	}}
	if err := BindPaths(topo, specs); err == nil {
		t.Fatal("FRER on a unidirectional ring bound paths")
	}
}
