package core

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// FeasibilityIssue flags one queueing point whose per-slot traffic
// cannot drain within a slot — the constraint behind the §III.C
// guideline "a packet received at a time slot must be sent at the next
// time slot": if the frames CQF parks in one slot take longer than a
// slot to serialize, the schedule silently falls behind and queues
// grow without bound.
type FeasibilityIssue struct {
	Cell      string
	Occupancy int
	// DrainTime is the worst-case serialization time of one slot's
	// frames at the cell's egress rate.
	DrainTime sim.Time
	Slot      sim.Time
}

// String implements fmt.Stringer.
func (i FeasibilityIssue) String() string {
	return fmt.Sprintf("%s: %d frames/slot need %v to drain > slot %v",
		i.Cell, i.Occupancy, i.DrainTime, i.Slot)
}

// CheckSlotFeasibility verifies that every queueing point of the plan
// can serialize a full slot's worth of TS frames within one slot at
// egress rate. rate is the slowest egress rate TS flows face (the
// access rate in mixed-speed networks); maxWire is the largest TS
// frame. Returns the violating cells, worst first; empty means the
// slot size is feasible.
func CheckSlotFeasibility(plan *itp.Plan, rate ethernet.Rate, maxWire int) []FeasibilityIssue {
	if plan == nil || rate <= 0 || maxWire <= 0 {
		return nil
	}
	perFrame := ethernet.TxTime(maxWire+ethernet.OverheadBytes, rate)
	var out []FeasibilityIssue
	for cell, occ := range plan.PerCell {
		drain := perFrame * sim.Time(occ)
		if drain > plan.Slot {
			out = append(out, FeasibilityIssue{
				Cell: cell, Occupancy: occ, DrainTime: drain, Slot: plan.Slot,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DrainTime != out[j].DrainTime {
			return out[i].DrainTime > out[j].DrainTime
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// MinFeasibleSlot returns the smallest slot size (rounded up to the
// given quantum) that drains the plan's worst occupancy at the given
// rate. It answers "how slow can my field-device links be before the
// 65 µs slot breaks" in reverse.
func MinFeasibleSlot(occupancy int, rate ethernet.Rate, maxWire int, quantum sim.Time) sim.Time {
	if occupancy <= 0 || rate <= 0 || maxWire <= 0 {
		return 0
	}
	if quantum <= 0 {
		quantum = sim.Microsecond
	}
	need := ethernet.TxTime(maxWire+ethernet.OverheadBytes, rate) * sim.Time(occupancy)
	return (need + quantum - 1) / quantum * quantum
}
