package core

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/resource"
)

// Platform abstracts the implementation target. The customization APIs
// are platform-independent (§III.B); only the memory cost model —
// how parameters map onto physical RAM — is platform-specific.
type Platform interface {
	Name() string
	// MemoryCost maps a configuration onto the platform's memory
	// blocks.
	MemoryCost(cfg Config) *resource.Report
}

// FPGA is the paper's target: Xilinx 7-series block RAM in 18/36 Kb
// blocks (Zynq 7020).
type FPGA struct{}

// Name implements Platform.
func (FPGA) Name() string { return "fpga-bram" }

// MemoryCost implements Platform with the calibrated Table III model.
func (FPGA) MemoryCost(cfg Config) *resource.Report {
	r := &resource.Report{
		Label: fmt.Sprintf("FPGA BRAM (%d ports)", cfg.PortNum),
		Items: []resource.Item{
			resource.SwitchTbl(cfg.UnicastSize, cfg.MulticastSize),
			resource.ClassTbl(cfg.ClassSize),
			resource.MeterTbl(cfg.MeterSize),
			resource.GateTbl(cfg.GateSize, cfg.QueueNum, cfg.PortNum),
			resource.CBSTbl(cfg.CBSMapSize, cfg.CBSSize, cfg.PortNum),
			resource.Queues(cfg.QueueDepth, cfg.QueueNum, cfg.PortNum),
			resource.Buffers(cfg.BufferNum, cfg.PortNum),
		},
	}
	// The eighth class appears only when set_frer_tbl was called, so
	// designs without redundancy reproduce Table III bit-for-bit.
	if cfg.FRERSize > 0 {
		r.Items = append(r.Items, resource.FRERTbl(cfg.FRERSize, cfg.FRERHistory))
	}
	return r
}

// ASIC models an SRAM-based ASIC target where memories are compiled to
// exact sizes with a per-macro overhead instead of fixed blocks. It
// exists to demonstrate that the same customization drives a different
// platform cost model (the paper's platform-independence claim), and as
// an ablation on block quantization.
type ASIC struct {
	// MacroOverheadBits is the fixed per-memory-macro cost (decoders,
	// sense amplifiers); defaults to 1 Kb if zero.
	MacroOverheadBits int64
}

// Name implements Platform.
func (ASIC) Name() string { return "asic-sram" }

func (a ASIC) overhead() int64 {
	if a.MacroOverheadBits > 0 {
		return a.MacroOverheadBits
	}
	return 1024
}

func (a ASIC) macro(name, width string, params string, bits int64, macros int64) resource.Item {
	if bits > 0 {
		bits += macros * a.overhead()
	}
	return resource.Item{Name: name, Width: width, Params: params, Bits: bits}
}

// MemoryCost implements Platform with exact-size SRAM macros.
func (a ASIC) MemoryCost(cfg Config) *resource.Report {
	ports := int64(cfg.PortNum)
	r := &resource.Report{
		Label: fmt.Sprintf("ASIC SRAM (%d ports)", cfg.PortNum),
		Items: []resource.Item{
			a.macro("Switch Tbl", "72b", fmt.Sprintf("%d, %d", cfg.UnicastSize, cfg.MulticastSize),
				int64(resource.UnicastWidth)*int64(cfg.UnicastSize)+
					int64(resource.MulticastWidth)*int64(cfg.MulticastSize), 2),
			a.macro("Class. Tbl", "117b", fmt.Sprintf("%d", cfg.ClassSize),
				int64(resource.ClassWidth)*int64(cfg.ClassSize), 1),
			a.macro("Meter Tbl", "68b", fmt.Sprintf("%d", cfg.MeterSize),
				int64(resource.MeterWidth)*int64(cfg.MeterSize), 1),
			a.macro("Gate Tbl", "17b", fmt.Sprintf("%d, %d, %d", cfg.GateSize, cfg.QueueNum, cfg.PortNum),
				2*int64(resource.GateWidth)*int64(cfg.GateSize)*ports, 2*ports),
			a.macro("CBS Tbl", "72b", fmt.Sprintf("%d, %d, %d", cfg.CBSMapSize, cfg.CBSSize, cfg.PortNum),
				(int64(resource.CBSMapWidth)*int64(cfg.CBSMapSize)+
					int64(resource.CBSWidth)*int64(cfg.CBSSize))*ports, 2*ports),
			a.macro("Queues", "32b", fmt.Sprintf("%d, %d, %d", cfg.QueueDepth, cfg.QueueNum, cfg.PortNum),
				int64(resource.QueueMetaWidth)*int64(cfg.QueueDepth)*int64(cfg.QueueNum)*ports,
				int64(cfg.QueueNum)*ports),
			a.macro("Buffers", "2048B", fmt.Sprintf("%d, %d", cfg.BufferNum, cfg.PortNum),
				int64(resource.BufferSlotBits)*int64(cfg.BufferNum)*ports, ports),
		},
	}
	if cfg.FRERSize > 0 {
		r.Items = append(r.Items, a.macro("FRER Tbl",
			fmt.Sprintf("%db", resource.FRERBaseWidth+cfg.FRERHistory),
			fmt.Sprintf("%d, %d", cfg.FRERSize, cfg.FRERHistory),
			int64(resource.FRERBaseWidth+cfg.FRERHistory)*int64(cfg.FRERSize), 1))
	}
	return r
}
