package core

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func buildPaper(ports int, t *testing.T) *Design {
	t.Helper()
	d, err := BuilderFor(PaperCustomizedConfig(ports), nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCommercialProfileMatchesTableIII(t *testing.T) {
	d, err := BuilderFor(CommercialProfile(), nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Report.TotalKb(); got != 10818 {
		t.Fatalf("commercial BRAM = %v Kb, want 10818", got)
	}
}

func TestCustomizedColumnsMatchTableIII(t *testing.T) {
	base, _ := BuilderFor(CommercialProfile(), nil).Build()
	cases := []struct {
		ports int
		total float64
	}{
		{3, 5778}, {2, 3942}, {1, 2106},
	}
	for _, c := range cases {
		d := buildPaper(c.ports, t)
		if got := d.Report.TotalKb(); got != c.total {
			t.Errorf("%d ports: %v Kb, want %v", c.ports, got, c.total)
		}
		_ = base
	}
}

func TestBuilderAPIChaining(t *testing.T) {
	d, err := NewBuilder(nil).
		SetSwitchTbl(1024, 0).
		SetClassTbl(1024).
		SetMeterTbl(1024).
		SetGateTbl(2, 8, 1).
		SetCBSTbl(3, 3, 1).
		SetQueues(12, 8, 1).
		SetBuffers(96, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Report.TotalKb(); got != 2106 {
		t.Fatalf("ring column = %v Kb, want 2106", got)
	}
	if len(d.Templates) != 5 {
		t.Fatalf("templates = %v", d.Templates)
	}
}

func TestBuilderDetectsPortConflict(t *testing.T) {
	_, err := NewBuilder(nil).
		SetSwitchTbl(64, 0).
		SetClassTbl(64).
		SetMeterTbl(64).
		SetGateTbl(2, 8, 4).
		SetCBSTbl(3, 3, 2). // conflicting port_num
		SetQueues(12, 8, 4).
		SetBuffers(96, 4).
		Build()
	if err == nil || !strings.Contains(err.Error(), "port_num") {
		t.Fatalf("port conflict not detected: %v", err)
	}
}

func TestBuilderDetectsQueueConflict(t *testing.T) {
	_, err := NewBuilder(nil).
		SetSwitchTbl(64, 0).
		SetClassTbl(64).
		SetMeterTbl(64).
		SetGateTbl(2, 8, 1).
		SetCBSTbl(3, 3, 1).
		SetQueues(12, 4, 1). // conflicting queue_num
		SetBuffers(96, 1).
		Build()
	if err == nil || !strings.Contains(err.Error(), "queue_num") {
		t.Fatalf("queue conflict not detected: %v", err)
	}
}

func TestBuilderMissingAPI(t *testing.T) {
	_, err := NewBuilder(nil).SetSwitchTbl(64, 0).Build()
	if err == nil || !strings.Contains(err.Error(), "never called") {
		t.Fatalf("missing APIs not detected: %v", err)
	}
}

func TestBuilderTemplateSelection(t *testing.T) {
	// A design without Egress Sched does not need set_cbs_tbl…
	_, err := NewBuilder(nil).
		Select(TemplatePacketSwitch, TemplateIngressFilter, TemplateGateCtrl, TemplateTimeSync).
		SetSwitchTbl(64, 0).
		SetClassTbl(64).
		SetMeterTbl(64).
		SetGateTbl(2, 8, 1).
		SetQueues(12, 8, 1).
		SetBuffers(96, 1).
		Build()
	if err != nil {
		t.Fatalf("reduced design failed: %v", err)
	}
	// …but calling it then is an error.
	_, err = NewBuilder(nil).
		Select(TemplatePacketSwitch).
		SetSwitchTbl(64, 0).
		SetCBSTbl(3, 3, 1).
		Build()
	if err == nil || !strings.Contains(err.Error(), "not selected") {
		t.Fatalf("unselected template API not detected: %v", err)
	}
}

func TestBuilderRejectsBadValues(t *testing.T) {
	_, err := NewBuilder(nil).
		SetSwitchTbl(-1, 0).
		SetClassTbl(-5).
		SetMeterTbl(-2).
		SetGateTbl(1, 99, 0).
		SetCBSTbl(-1, -1, 1).
		SetQueues(0, 8, 1).
		SetBuffers(0, 1).
		SetTiming(0, 0).
		Build()
	if err == nil {
		t.Fatal("invalid values accepted")
	}
	for _, frag := range []string{"set_switch_tbl", "set_class_tbl", "set_meter_tbl",
		"gate_size", "queue_num", "set_cbs_tbl", "set_queues", "set_buffers", "SetTiming"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error misses %q: %v", frag, err)
		}
	}
}

func TestSwitchConfigMaterialization(t *testing.T) {
	d := buildPaper(1, t)
	sc := d.SwitchConfig(3, 4)
	if sc.ID != 3 || sc.Ports != 4 {
		t.Fatalf("cfg = %+v", sc)
	}
	if sc.TSQueueA != 7 || sc.TSQueueB != 6 {
		t.Fatalf("TS queues = %d,%d", sc.TSQueueA, sc.TSQueueB)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ports below the design's PortNum are raised to it.
	if d.SwitchConfig(0, 0).Ports != 1 {
		t.Fatal("ports not clamped to PortNum")
	}
}

func TestDeriveConfigRing(t *testing.T) {
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count:    1024,
		Period:   10 * sim.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := 100 + i%6
			dst := 100 + (i+1+i%4)%6
			return src, dst
		},
		Seed: 3,
	})
	if err := BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := DeriveConfig(Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := der.Config
	if cfg.UnicastSize != 1024 || cfg.ClassSize != 1024 || cfg.MeterSize != 1024 {
		t.Fatalf("table sizes = %d/%d/%d", cfg.UnicastSize, cfg.ClassSize, cfg.MeterSize)
	}
	if cfg.GateSize != 2 || cfg.PortNum != 1 || cfg.QueueNum != 8 {
		t.Fatalf("gate/port/queue = %d/%d/%d", cfg.GateSize, cfg.PortNum, cfg.QueueNum)
	}
	if cfg.CBSMapSize != 3 || cfg.CBSSize != 3 {
		t.Fatalf("cbs = %d/%d", cfg.CBSMapSize, cfg.CBSSize)
	}
	// Depth = ITP occupancy + 50% margin; buffers = depth × queues.
	if cfg.QueueDepth < der.Plan.MaxOccupancy || cfg.BufferNum != cfg.QueueDepth*cfg.QueueNum {
		t.Fatalf("depth=%d occupancy=%d buffers=%d", cfg.QueueDepth, der.Plan.MaxOccupancy, cfg.BufferNum)
	}
	// The derived design must be buildable and cheaper than commercial.
	d, err := BuilderFor(cfg, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := BuilderFor(CommercialProfile(), nil).Build()
	if d.Report.ReductionVs(base.Report) <= 0.5 {
		t.Fatalf("derived ring design saves only %.1f%%", 100*d.Report.ReductionVs(base.Report))
	}
}

func TestDeriveConfigErrors(t *testing.T) {
	if _, err := DeriveConfig(Scenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	topo := topology.Ring(3)
	if _, err := DeriveConfig(Scenario{Topo: topo}); err == nil {
		t.Error("scenario without flows accepted")
	}
	spec := &flows.Spec{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: sim.Millisecond}
	if _, err := DeriveConfig(Scenario{Topo: topo, Flows: []*flows.Spec{spec}}); err == nil {
		t.Error("flow without path accepted")
	}
}

func TestBindPathsErrors(t *testing.T) {
	topo := topology.Ring(3)
	spec := &flows.Spec{ID: 1, SrcHost: 1, DstHost: 2}
	if err := BindPaths(topo, []*flows.Spec{spec}); err == nil {
		t.Error("unattached hosts accepted")
	}
}

func TestASICPlatform(t *testing.T) {
	cfg := PaperCustomizedConfig(1)
	fpga, _ := BuilderFor(cfg, FPGA{}).Build()
	asic, _ := BuilderFor(cfg, ASIC{}).Build()
	if asic.Platform.Name() != "asic-sram" || fpga.Platform.Name() != "fpga-bram" {
		t.Fatal("platform names wrong")
	}
	// Same parameters, different cost: SRAM avoids block quantization,
	// so the ASIC total must be below the FPGA total.
	if asic.Report.TotalBits() >= fpga.Report.TotalBits() {
		t.Fatalf("ASIC %v >= FPGA %v", asic.Report.TotalKb(), fpga.Report.TotalKb())
	}
	if asic.Report.TotalBits() <= 0 {
		t.Fatal("ASIC cost empty")
	}
}

func TestTemplateMetadata(t *testing.T) {
	if len(AllTemplates()) != 5 {
		t.Fatal("not five templates")
	}
	for _, tmpl := range AllTemplates() {
		if tmpl.String() == "" || len(tmpl.Submodules()) == 0 {
			t.Fatalf("template %d missing metadata", tmpl)
		}
	}
	if Template(9).String() != "Template(9)" || Template(9).Submodules() != nil {
		t.Fatal("unknown template formatting")
	}
}
