// Package core implements TSN-Builder, the paper's primary
// contribution: a template-based developing model that decomposes a TSN
// switch into five function templates (Fig. 3/5), abstracts every
// on-chip-memory consumer (Fig. 4), and exposes the seven
// platform-independent customization APIs of Table II. A Builder
// collects resource parameters, validates their consistency, and emits
// a Design: the memory report for the target platform plus the
// dataplane configuration the simulation templates instantiate.
package core

import "fmt"

// Template identifies one of the five function templates the paper
// decomposes a TSN switch into.
type Template int

// The five templates of Fig. 5.
const (
	TemplateTimeSync Template = iota
	TemplatePacketSwitch
	TemplateIngressFilter
	TemplateGateCtrl
	TemplateEgressSched
	templateCount
)

// String implements fmt.Stringer.
func (t Template) String() string {
	switch t {
	case TemplateTimeSync:
		return "Time Sync"
	case TemplatePacketSwitch:
		return "Packet Switch"
	case TemplateIngressFilter:
		return "Ingress Filter"
	case TemplateGateCtrl:
		return "Gate Ctrl"
	case TemplateEgressSched:
		return "Egress Sched"
	}
	return fmt.Sprintf("Template(%d)", int(t))
}

// AllTemplates returns the five templates in pipeline order.
func AllTemplates() []Template {
	return []Template{
		TemplateTimeSync,
		TemplatePacketSwitch,
		TemplateIngressFilter,
		TemplateGateCtrl,
		TemplateEgressSched,
	}
}

// Submodules returns the template's internal decomposition as the paper
// draws it in Fig. 5.
func (t Template) Submodules() []string {
	switch t {
	case TemplateTimeSync:
		return []string{"clock time collection", "correction time calculation", "clock correction"}
	case TemplatePacketSwitch:
		return []string{"parser", "lookup"}
	case TemplateIngressFilter:
		return []string{"classifier", "meters"}
	case TemplateGateCtrl:
		return []string{"GCL update", "in-gates", "out-gates"}
	case TemplateEgressSched:
		return []string{"strict-priority scheduler", "credit-based shapers"}
	}
	return nil
}
