package core_test

// Derivation round-trip through the live-reconfiguration engine: after
// a committed transaction the configuration observable from the switch
// equals the candidate; after a rollback it equals the pre-transaction
// design, with DiffConfigs empty in both directions.

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

func liveBase() core.Config {
	return core.Config{
		UnicastSize: 64, MulticastSize: 8,
		ClassSize: 64, MeterSize: 16,
		GateSize: 2, QueueNum: 8, PortNum: 2,
		CBSMapSize: 3, CBSSize: 3,
		QueueDepth: 8, BufferNum: 96,
		FRERSize: 4, FRERHistory: 16,
		SlotSize: 65 * sim.Microsecond, LinkRate: ethernet.Gbps,
	}
}

func liveSwitch(e *sim.Engine, cfg core.Config) *tsnswitch.Switch {
	return tsnswitch.New(e, tsnswitch.Config{
		ID: 0, Ports: cfg.PortNum, QueuesPerPort: cfg.QueueNum,
		QueueDepth: cfg.QueueDepth, BuffersPerPort: cfg.BufferNum,
		UnicastSize: cfg.UnicastSize, MulticastSize: cfg.MulticastSize,
		ClassSize: cfg.ClassSize, MeterSize: cfg.MeterSize,
		GateSize: cfg.GateSize, CBSMapSize: cfg.CBSMapSize, CBSSize: cfg.CBSSize,
		SlotSize: cfg.SlotSize, LinkRate: cfg.LinkRate,
		TSQueueA: cfg.QueueNum - 1, TSQueueB: cfg.QueueNum - 2,
	})
}

// observedConfig re-derives the Derivation-level Config from live
// switch and FRER-table state — what a management plane would read
// back from the hardware.
func observedConfig(sw *tsnswitch.Switch, tbl *frer.Table, base core.Config) core.Config {
	cfg := sw.Config()
	out := base
	out.UnicastSize = cfg.UnicastSize
	out.MulticastSize = cfg.MulticastSize
	out.ClassSize = cfg.ClassSize
	out.MeterSize = cfg.MeterSize
	out.GateSize = cfg.GateSize
	out.QueueNum = cfg.QueuesPerPort
	out.CBSMapSize = cfg.CBSMapSize
	out.CBSSize = cfg.CBSSize
	out.QueueDepth = cfg.QueueDepth
	out.BufferNum = cfg.BuffersPerPort
	out.SlotSize = cfg.SlotSize
	out.LinkRate = cfg.LinkRate
	out.FRERSize = tbl.Capacity()
	out.FRERHistory = tbl.History()
	return out
}

func TestDerivationRoundTripAfterApply(t *testing.T) {
	old := liveBase()
	engine := sim.NewEngine()
	sw := liveSwitch(engine, old)
	tbl := frer.NewTable(old.FRERSize, old.FRERHistory)
	ctrl := reconfig.NewController(engine, nil)
	b := reconfig.Bindings{Switches: []*tsnswitch.Switch{sw}, FRER: []*frer.Table{tbl}}

	cand := old
	cand.UnicastSize, cand.ClassSize, cand.MeterSize = 128, 128, 32
	cand.QueueDepth, cand.BufferNum = 16, 128
	cand.FRERSize, cand.FRERHistory = 8, 32
	cand.SlotSize = 130 * sim.Microsecond

	txn, err := ctrl.Begin(old, cand, b)
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if txn.State() != reconfig.StateCommitted {
		t.Fatalf("state = %v (%v)", txn.State(), txn.Err())
	}
	if d := core.DiffConfigs(cand, observedConfig(sw, tbl, cand)); len(d) != 0 {
		t.Fatalf("observed state diverges from committed candidate:\n%v", d)
	}

	// Apply the inverse transaction: the observable state must round-
	// trip exactly back to the original derivation.
	back, err := ctrl.Begin(cand, old, b)
	if err != nil {
		t.Fatal(err)
	}
	back.Commit()
	if back.State() != reconfig.StateCommitted {
		t.Fatalf("state = %v (%v)", back.State(), back.Err())
	}
	if d := core.DiffConfigs(old, observedConfig(sw, tbl, old)); len(d) != 0 {
		t.Fatalf("round trip diverges from original design:\n%v", d)
	}
}

func TestDerivationRoundTripAfterRollback(t *testing.T) {
	old := liveBase()
	engine := sim.NewEngine()
	sw := liveSwitch(engine, old)
	tbl := frer.NewTable(old.FRERSize, old.FRERHistory)
	ctrl := reconfig.NewController(engine, nil)
	b := reconfig.Bindings{Switches: []*tsnswitch.Switch{sw}, FRER: []*frer.Table{tbl}}

	cand := old
	cand.UnicastSize, cand.MeterSize = 128, 32
	cand.QueueDepth = 16
	cand.FRERSize = 8
	cand.SlotSize = 130 * sim.Microsecond

	txn, err := ctrl.Begin(old, cand, b)
	if err != nil {
		t.Fatal(err)
	}
	// Fail mid-apply, after several operations have already run.
	ctrl.ArmFailure(len(txn.Ops()) - 1)
	txn.Commit()
	if txn.State() != reconfig.StateRolledBack || txn.Err() == nil {
		t.Fatalf("state = %v err = %v", txn.State(), txn.Err())
	}
	// The post-rollback observable configuration must be byte-for-byte
	// the pre-transaction design: an empty diff.
	if d := core.DiffConfigs(old, observedConfig(sw, tbl, old)); len(d) != 0 {
		t.Fatalf("rollback left residue:\n%v", d)
	}
}
