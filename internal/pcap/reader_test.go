package pcap

import (
	"bytes"
	"io"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Payload large enough that the writer adds no minimum-size padding,
	// so the decoded payload matches byte for byte.
	frames := []*ethernet.Frame{
		{Dst: ethernet.HostMAC(1), Src: ethernet.HostMAC(2), VID: 5, PCP: 7,
			EtherType: ethernet.TypeTSN, Payload: make([]byte, 100),
			FlowID: 11, Seq: 3, Class: ethernet.ClassTS, SentAt: 42},
		{Dst: ethernet.HostMAC(3), Src: ethernet.HostMAC(4), VID: 9, PCP: 2,
			EtherType: ethernet.TypeVLAN, Payload: make([]byte, 200)},
	}
	stamps := []sim.Time{3 * sim.Second, 3*sim.Second + 999*sim.Nanosecond}
	for i, f := range frames {
		f.Payload[0] = byte(i + 1)
		if err := w.WriteFrame(stamps[i], f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		at, got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if at != stamps[i] {
			t.Errorf("record %d: at = %v, want %v", i, at, stamps[i])
		}
		if got.Dst != want.Dst || got.Src != want.Src || got.VID != want.VID ||
			got.PCP != want.PCP || got.EtherType != want.EtherType ||
			got.FlowID != want.FlowID || got.Seq != want.Seq ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d, want 2", r.Count())
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	f := &ethernet.Frame{EtherType: ethernet.TypeTSN, Payload: make([]byte, 50)}
	if err := w.WriteFrame(0, f); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: err = %v, want decode error", err)
	}
}
