// Package pcap writes simulated frames into the classic libpcap
// capture format (nanosecond-resolution variant), so a testbed run can
// be inspected with Wireshark/tcpdump exactly like a capture from the
// hardware demo's mirror port.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Magic number of the nanosecond-resolution pcap format.
const magicNanos = 0xa1b23c4d

// linkTypeEthernet is DLT_EN10MB.
const linkTypeEthernet = 1

// snapLen is the maximum stored frame size.
const snapLen = 65535

// Writer emits pcap records. Not safe for concurrent use (the
// simulation is single-threaded).
type Writer struct {
	w        io.Writer
	wroteHdr bool
	count    uint64
	// buf is the recycled marshal buffer: steady-state captures write
	// without allocating.
	buf []byte
}

// NewWriter wraps w. The file header is written lazily with the first
// frame (or via Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (pw *Writer) header() error {
	if pw.wroteHdr {
		return nil
	}
	pw.wroteHdr = true
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WriteFrame records one frame at the given simulated instant.
func (pw *Writer) WriteFrame(at sim.Time, f *ethernet.Frame) error {
	if err := pw.header(); err != nil {
		return err
	}
	pw.buf = f.AppendMarshal(pw.buf[:0])
	body := pw.buf
	if len(body) > snapLen {
		return fmt.Errorf("pcap: frame of %d bytes exceeds snap length", len(body))
	}
	// Pad to the minimum on-wire size so Wireshark sees a legal frame;
	// the FCS is omitted as most captures do.
	for pad := f.WireBytes() - ethernet.FCSBytes - len(body); pad > 0; pad-- {
		body = append(body, 0)
	}
	pw.buf = body
	var rec [16]byte
	sec := uint32(at / sim.Second)
	nsec := uint32(at % sim.Second)
	binary.LittleEndian.PutUint32(rec[0:], sec)
	binary.LittleEndian.PutUint32(rec[4:], nsec)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(body)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(body); err != nil {
		return err
	}
	pw.count++
	return nil
}

// Flush ensures at least the file header exists (for empty captures).
func (pw *Writer) Flush() error { return pw.header() }

// Count returns the number of frames written.
func (pw *Writer) Count() uint64 { return pw.count }
