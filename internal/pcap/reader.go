package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Reader iterates the frames of a capture written by Writer — the
// offline analysis path (replaying a testbed capture through the
// analyzer without re-running the simulation). Not safe for concurrent
// use.
type Reader struct {
	r     io.Reader
	buf   []byte // recycled record buffer; frames alias it (see Next)
	count uint64
}

// NewReader validates the capture's file header and positions the
// reader at the first record. Only the nanosecond-resolution format
// Writer emits is accepted.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != magicNanos {
		return nil, fmt.Errorf("pcap: unsupported magic %#x (want nanosecond pcap %#x)", magic, magicNanos)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r}, nil
}

// Next decodes the next record and returns its capture instant and
// frame. It returns io.EOF cleanly after the last record.
//
// Aliasing rule: the frame is decoded with ethernet.UnmarshalNoCopy
// onto the reader's recycled record buffer, so the frame (and its
// Payload) is valid only until the following Next call. A caller that
// retains frames must CloneDeep them; the intended consumers (the
// analyzer's statistics pass, filters, format dumpers) inspect and
// discard, which is what makes the read path allocation-free per
// record.
func (pr *Reader) Next() (sim.Time, *ethernet.Frame, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(rec[0:])
	nsec := binary.LittleEndian.Uint32(rec[4:])
	caplen := binary.LittleEndian.Uint32(rec[8:])
	if caplen > snapLen {
		return 0, nil, fmt.Errorf("pcap: record of %d bytes exceeds snap length", caplen)
	}
	if uint32(cap(pr.buf)) < caplen {
		pr.buf = make([]byte, caplen)
	}
	pr.buf = pr.buf[:caplen]
	if _, err := io.ReadFull(pr.r, pr.buf); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading %d-byte record body: %w", caplen, err)
	}
	f, err := ethernet.UnmarshalNoCopy(pr.buf)
	if err != nil {
		return 0, nil, err
	}
	pr.count++
	at := sim.Time(sec)*sim.Second + sim.Time(nsec)
	return at, f, nil
}

// Count returns the number of records decoded so far.
func (pr *Reader) Count() uint64 { return pr.count }
