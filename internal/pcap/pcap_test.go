package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func sampleFrame() *ethernet.Frame {
	return &ethernet.Frame{
		Dst: ethernet.HostMAC(2), Src: ethernet.HostMAC(1),
		VID: 7, PCP: 7, EtherType: ethernet.TypeTSN,
		Payload: []byte("hello"), FlowID: 3, Seq: 9, Class: ethernet.ClassTS,
	}
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header = %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != magicNanos {
		t.Fatal("wrong magic")
	}
	if binary.LittleEndian.Uint32(b[20:]) != linkTypeEthernet {
		t.Fatal("wrong link type")
	}
}

func TestWriteFrameRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	at := 2*sim.Second + 123*sim.Nanosecond
	if err := w.WriteFrame(at, sampleFrame()); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d", w.Count())
	}
	b := buf.Bytes()[24:] // skip file header
	if binary.LittleEndian.Uint32(b[0:]) != 2 {
		t.Fatal("seconds wrong")
	}
	if binary.LittleEndian.Uint32(b[4:]) != 123 {
		t.Fatal("nanoseconds wrong")
	}
	incl := binary.LittleEndian.Uint32(b[8:])
	orig := binary.LittleEndian.Uint32(b[12:])
	if incl != orig {
		t.Fatal("incl != orig")
	}
	// Padded to 60B (64B wire minus FCS).
	if incl != 60 {
		t.Fatalf("record length = %d, want 60", incl)
	}
	if len(b) != 16+int(incl) {
		t.Fatalf("record body = %d bytes", len(b)-16)
	}
	// The embedded bytes decode back to the frame.
	frame, err := ethernet.Unmarshal(b[16 : 16+incl])
	if err != nil {
		t.Fatal(err)
	}
	if frame.FlowID != 3 || frame.Seq != 9 {
		t.Fatalf("decoded frame = %+v", frame)
	}
}

func TestMultipleFramesSingleHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteFrame(sim.Time(i)*sim.Microsecond, sampleFrame()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	// 24B header + 3 × (16B + 60B).
	if buf.Len() != 24+3*(16+60) {
		t.Fatalf("capture = %d bytes", buf.Len())
	}
}

func TestLargeFrameUnpadded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	f := sampleFrame()
	f.Payload = make([]byte, 1000)
	if err := w.WriteFrame(0, f); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[24:]
	incl := binary.LittleEndian.Uint32(b[8:])
	// Tester header (17B) + payload inside an 18B header frame.
	want := uint32(18 + 17 + 1000)
	if incl != want {
		t.Fatalf("incl = %d, want %d", incl, want)
	}
}
