package tsnswitch

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// This file is the switch half of the live-reconfiguration engine
// (internal/reconfig): in-place resize primitives for every resource a
// set_* customization API dimensions, each of which either applies
// fully (and updates the switch's Config so it stays truthful) or
// fails without side effects, plus the invariant-audit accessors the
// runtime watchdog drives.

// SetDegradeLevel sets the graceful-degradation level. The watchdog is
// the intended caller; tests may drive it directly.
func (sw *Switch) SetDegradeLevel(l DegradeLevel) {
	if l < DegradeOff || l > DegradeShedRC {
		panic(fmt.Sprintf("tsnswitch: invalid degrade level %d", int(l)))
	}
	sw.degrade = l
}

// DegradeLevel returns the current graceful-degradation level.
func (sw *Switch) DegradeLevel() DegradeLevel { return sw.degrade }

// ResizeSwitchTbl resizes the unicast/multicast switch tables
// (set_switch_tbl) without disturbing installed routes.
func (sw *Switch) ResizeSwitchTbl(unicast, multicast int) error {
	if err := sw.fwd.Unicast.Resize(unicast); err != nil {
		return err
	}
	if err := sw.fwd.Multicast.Resize(multicast); err != nil {
		// Undo the half-applied unicast change; restoring the previous
		// capacity cannot fail (occupancy fit it a moment ago).
		if uerr := sw.fwd.Unicast.Resize(sw.cfg.UnicastSize); uerr != nil {
			panic(fmt.Sprintf("tsnswitch: unicast resize rollback failed: %v", uerr))
		}
		return err
	}
	sw.cfg.UnicastSize, sw.cfg.MulticastSize = unicast, multicast
	return nil
}

// ResizeClassTbl resizes the classification table (set_class_tbl).
func (sw *Switch) ResizeClassTbl(size int) error {
	if err := sw.flt.Class.Resize(size); err != nil {
		return err
	}
	sw.cfg.ClassSize = size
	return nil
}

// ResizeMeterTbl resizes the meter table (set_meter_tbl), preserving
// configured meters and their token state.
func (sw *Switch) ResizeMeterTbl(size int) error {
	if err := sw.flt.Meters.Resize(size); err != nil {
		return err
	}
	sw.cfg.MeterSize = size
	return nil
}

// SetGateSize changes the gate table budget (set_gate_tbl). The
// installed schedules must already fit the new size; CQF needs 2.
func (sw *Switch) SetGateSize(size int) error {
	if size < 2 {
		return fmt.Errorf("tsnswitch: gate size %d < 2 (CQF needs 2)", size)
	}
	for _, p := range sw.ports {
		if p.inGCL.Size() > size || p.outGCL.Size() > size {
			return fmt.Errorf("tsnswitch: port %d schedule of %d/%d entries exceeds gate size %d",
				p.id, p.inGCL.Size(), p.outGCL.Size(), size)
		}
	}
	sw.cfg.GateSize = size
	return nil
}

// ResizeCBS resizes every port's CBS MAP and CBS tables (set_cbs_tbl),
// preserving bindings, slopes and credit.
func (sw *Switch) ResizeCBS(mapSize, cbsSize int) error {
	for _, p := range sw.ports {
		if p.bank.MapLen() > mapSize {
			return fmt.Errorf("tsnswitch: port %d has %d CBS bindings, map size %d too small",
				p.id, p.bank.MapLen(), mapSize)
		}
		if req := p.bank.RequiredSize(); req > cbsSize {
			return fmt.Errorf("tsnswitch: port %d needs %d CBS entries, size %d too small",
				p.id, req, cbsSize)
		}
	}
	for _, p := range sw.ports {
		if err := p.bank.Resize(mapSize, cbsSize); err != nil {
			panic(fmt.Sprintf("tsnswitch: CBS resize failed after precheck: %v", err))
		}
	}
	sw.cfg.CBSMapSize, sw.cfg.CBSSize = mapSize, cbsSize
	return nil
}

// ResizeQueues changes every queue's descriptor depth (set_queues),
// preserving queued descriptors. It fails if any live queue occupancy
// exceeds the new depth.
func (sw *Switch) ResizeQueues(depth int) error {
	if depth <= 0 {
		return fmt.Errorf("tsnswitch: non-positive queue depth %d", depth)
	}
	for _, p := range sw.ports {
		for q, queue := range p.queues {
			if queue.Len() > depth {
				return fmt.Errorf("tsnswitch: port %d queue %d holds %d descriptors, depth %d too small",
					p.id, q, queue.Len(), depth)
			}
		}
	}
	for _, p := range sw.ports {
		for _, queue := range p.queues {
			if err := queue.Resize(depth); err != nil {
				panic(fmt.Sprintf("tsnswitch: queue resize failed after precheck: %v", err))
			}
		}
	}
	sw.cfg.QueueDepth = depth
	return nil
}

// ResizeBuffers changes every per-port buffer pool's capacity
// (set_buffers). It fails in SMS mode — the shared pool is resized
// with ResizeSharedBuffers — or when a pool's live occupancy (allocated
// plus fault-reserved slots) exceeds the new capacity.
func (sw *Switch) ResizeBuffers(perPort int) error {
	if sw.cfg.SharedBufferNum > 0 {
		return fmt.Errorf("tsnswitch: switch uses a shared (SMS) pool; use ResizeSharedBuffers")
	}
	if perPort <= 0 {
		return fmt.Errorf("tsnswitch: non-positive buffer count %d", perPort)
	}
	for _, p := range sw.ports {
		if live := p.pool.InUse() + p.pool.Reserved(); live > perPort {
			return fmt.Errorf("tsnswitch: port %d has %d live buffers, capacity %d too small",
				p.id, live, perPort)
		}
	}
	for _, p := range sw.ports {
		if err := p.pool.Resize(perPort); err != nil {
			panic(fmt.Sprintf("tsnswitch: pool resize failed after precheck: %v", err))
		}
	}
	sw.cfg.BuffersPerPort = perPort
	return nil
}

// ResizeSharedBuffers changes the SMS shared pool's capacity.
func (sw *Switch) ResizeSharedBuffers(total int) error {
	if sw.cfg.SharedBufferNum <= 0 {
		return fmt.Errorf("tsnswitch: switch uses per-port pools; use ResizeBuffers")
	}
	if total <= 0 {
		return fmt.Errorf("tsnswitch: non-positive buffer count %d", total)
	}
	if err := sw.ports[0].pool.Resize(total); err != nil {
		return err
	}
	sw.cfg.SharedBufferNum = total
	return nil
}

// CQFSchedules reports whether every port still runs the 2-entry CQF
// gate pair the switch was built with — the precondition for changing
// the slot size, since an arbitrary synthesized 802.1Qbv schedule has
// no meaningful "same schedule at a new slot".
func (sw *Switch) CQFSchedules() bool {
	for _, p := range sw.ports {
		in, inOK := p.inGCL.(*gate.GCL)
		out, outOK := p.outGCL.(*gate.GCL)
		if !inOK || !outOK || in.Size() != 2 || out.Size() != 2 {
			return false
		}
	}
	return true
}

// RebaseCQF installs fresh CQF gate pairs with the given slot size on
// every port, slot grids anchored at local time base. The caller (the
// reconfiguration engine) commits at a cycle boundary so the alignment
// change never truncates an in-progress slot.
func (sw *Switch) RebaseCQF(slot sim.Time, base sim.Time) error {
	if slot <= 0 {
		return fmt.Errorf("tsnswitch: non-positive slot size %v", slot)
	}
	if !sw.CQFSchedules() {
		return fmt.Errorf("tsnswitch: ports carry non-CQF schedules; cannot rebase slot size")
	}
	for p := range sw.ports {
		in, out := gate.CQF(slot, sw.cfg.TSQueueA, sw.cfg.TSQueueB)
		in.SetBase(base)
		out.SetBase(base)
		if err := sw.SetPortSchedules(p, in, out); err != nil {
			return err
		}
	}
	sw.cfg.SlotSize = slot
	return nil
}

// RestoreSchedules reinstalls previously captured per-port schedules
// together with the slot size they belong to — the rollback inverse of
// RebaseCQF, restoring the exact pre-transaction gate state including
// each schedule's base alignment.
func (sw *Switch) RestoreSchedules(slot sim.Time, in, out []gate.Schedule) error {
	if slot <= 0 {
		return fmt.Errorf("tsnswitch: non-positive slot size %v", slot)
	}
	if len(in) != len(sw.ports) || len(out) != len(sw.ports) {
		return fmt.Errorf("tsnswitch: %d/%d schedules for %d ports", len(in), len(out), len(sw.ports))
	}
	for p := range sw.ports {
		if err := sw.SetPortSchedules(p, in[p], out[p]); err != nil {
			return err
		}
	}
	sw.cfg.SlotSize = slot
	return nil
}

// MaxQueueLen returns the largest current occupancy across every queue
// of every port — the live state a queue-depth shrink must clear.
func (sw *Switch) MaxQueueLen() int {
	most := 0
	for _, p := range sw.ports {
		for _, q := range p.queues {
			if q.Len() > most {
				most = q.Len()
			}
		}
	}
	return most
}

// Violation is one invariant-audit finding.
type Violation struct {
	// Invariant names the violated invariant class: one of
	// "buffer-conservation", "queue-bounds", "gate-monotonic".
	Invariant string
	// Detail describes the specific finding.
	Detail string
}

// heldBuffers counts the pool slots port p's dataplane can account
// for: descriptors sitting in queues, the in-flight transmission, and
// a preempted frame awaiting resumption.
func (p *Port) heldBuffers() int {
	held := 0
	for _, q := range p.queues {
		held += q.Len()
	}
	if p.txHandle != nil {
		held++
	}
	if p.suspended != nil {
		held++
	}
	return held
}

// Audit checks the switch's conservation invariants at local time now
// and returns every violation found:
//
//   - buffer-conservation: each pool's allocated-slot count equals the
//     slots the dataplane can account for (a mismatch means a leak or
//     double free);
//   - queue-bounds: no queue holds more descriptors than its depth;
//   - gate-monotonic: every schedule has a positive cycle and its next
//     boundary lies strictly in the future.
func (sw *Switch) Audit(now sim.Time) []Violation {
	var out []Violation
	if sw.cfg.SharedBufferNum > 0 {
		held := 0
		for _, p := range sw.ports {
			held += p.heldBuffers()
		}
		if inUse := sw.ports[0].pool.InUse(); inUse != held {
			out = append(out, Violation{
				Invariant: "buffer-conservation",
				Detail: fmt.Sprintf("switch %d shared pool: %d slots allocated, %d accounted for",
					sw.cfg.ID, inUse, held),
			})
		}
	}
	for _, p := range sw.ports {
		if sw.cfg.SharedBufferNum <= 0 {
			if inUse, held := p.pool.InUse(), p.heldBuffers(); inUse != held {
				out = append(out, Violation{
					Invariant: "buffer-conservation",
					Detail: fmt.Sprintf("switch %d port %d: %d slots allocated, %d accounted for",
						sw.cfg.ID, p.id, inUse, held),
				})
			}
		}
		for q, queue := range p.queues {
			if queue.Len() > queue.Depth() {
				out = append(out, Violation{
					Invariant: "queue-bounds",
					Detail: fmt.Sprintf("switch %d port %d queue %d: %d descriptors exceed depth %d",
						sw.cfg.ID, p.id, q, queue.Len(), queue.Depth()),
				})
			}
		}
		gcls := []struct {
			dir string
			g   gate.Schedule
		}{{"in", p.inGCL}, {"out", p.outGCL}}
		for _, sg := range gcls {
			dir, g := sg.dir, sg.g
			if g.Cycle() <= 0 {
				out = append(out, Violation{
					Invariant: "gate-monotonic",
					Detail: fmt.Sprintf("switch %d port %d %s-GCL: non-positive cycle %v",
						sw.cfg.ID, p.id, dir, g.Cycle()),
				})
			} else if nb := g.NextBoundary(now); nb <= now {
				out = append(out, Violation{
					Invariant: "gate-monotonic",
					Detail: fmt.Sprintf("switch %d port %d %s-GCL: next boundary %v not after %v",
						sw.cfg.ID, p.id, dir, nb, now),
				})
			}
		}
	}
	return out
}

// PoolPressure returns the worst buffer-pool occupancy fraction across
// the switch's pools (allocated plus fault-reserved slots over
// capacity), the signal the degradation policy keys on.
func (sw *Switch) PoolPressure() float64 {
	worst := 0.0
	for i, p := range sw.ports {
		if sw.cfg.SharedBufferNum > 0 && i > 0 {
			break // one shared pool: a single sample suffices
		}
		if c := p.pool.Capacity(); c > 0 {
			if f := float64(p.pool.InUse()+p.pool.Reserved()) / float64(c); f > worst {
				worst = f
			}
		}
	}
	return worst
}
