package tsnswitch

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tables"
)

// host is a minimal end station with a FIFO MAC: transmits on demand,
// records arrivals.
type host struct {
	engine   *sim.Engine
	ifc      *netdev.Ifc
	got      []*ethernet.Frame
	arrivals []sim.Time
	pending  []*ethernet.Frame
	sending  bool
}

func newHost(e *sim.Engine, name string) *host {
	h := &host{engine: e}
	h.ifc = netdev.NewIfc(e, name, h, ethernet.Gbps)
	return h
}

func (h *host) Receive(f *ethernet.Frame, on *netdev.Ifc) {
	h.got = append(h.got, f)
	h.arrivals = append(h.arrivals, h.engine.Now())
}

func (h *host) drain() {
	if h.sending || len(h.pending) == 0 {
		return
	}
	f := h.pending[0]
	h.pending = h.pending[1:]
	h.sending = true
	h.ifc.Transmit(f, func() {
		h.sending = false
		h.drain()
	})
}

// sendAt schedules a frame transmission at the given instant; frames
// queue in the host MAC if the wire is busy.
func (h *host) sendAt(at sim.Time, f *ethernet.Frame) {
	h.engine.At(at, "host-send", func(*sim.Engine) {
		h.pending = append(h.pending, f)
		h.drain()
	})
}

func testConfig() Config {
	return Config{
		ID:             0,
		Ports:          2,
		QueuesPerPort:  8,
		QueueDepth:     8,
		BuffersPerPort: 96,
		UnicastSize:    64,
		MulticastSize:  8,
		ClassSize:      64,
		MeterSize:      16,
		GateSize:       2,
		CBSMapSize:     3,
		CBSSize:        3,
		SlotSize:       65 * sim.Microsecond,
		TSQueueA:       7,
		TSQueueB:       6,
		LinkRate:       ethernet.Gbps,
	}
}

// rig is one switch with a host on each port.
type rig struct {
	engine *sim.Engine
	sw     *Switch
	hosts  []*host
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	e := sim.NewEngine()
	sw := New(e, cfg)
	r := &rig{engine: e, sw: sw}
	for p := 0; p < cfg.Ports; p++ {
		h := newHost(e, "h"+string(rune('0'+p)))
		netdev.Connect(sw.Ifc(p), h.ifc, 100*sim.Nanosecond)
		r.hosts = append(r.hosts, h)
		// Route HostMAC(p) out of port p.
		if err := sw.Forward().Unicast.Add(ethernet.HostMAC(p), 1, p); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// tsFrame builds a TS frame destined to host dst.
func tsFrame(dst int, seq uint32) *ethernet.Frame {
	return &ethernet.Frame{
		Dst: ethernet.HostMAC(dst), Src: ethernet.HostMAC(99),
		VID: 1, PCP: 7, EtherType: ethernet.TypeTSN,
		Class: ethernet.ClassTS, FlowID: 1, Seq: seq,
		Payload: make([]byte, 46),
	}
}

func TestForwardBasic(t *testing.T) {
	r := newRig(t, testConfig())
	r.hosts[0].sendAt(0, tsFrame(1, 1))
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 1 {
		t.Fatalf("host1 received %d frames, want 1", len(r.hosts[1].got))
	}
	st := r.sw.Stats()
	if st.RxFrames != 1 || st.TxFrames != 1 || st.TotalDrops() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoRouteDrop(t *testing.T) {
	r := newRig(t, testConfig())
	f := tsFrame(1, 1)
	f.Dst = ethernet.HostMAC(55) // not installed
	r.hosts[0].sendAt(0, f)
	r.engine.RunUntil(sim.Second)
	if got := r.sw.Stats().Drops[DropNoRoute]; got != 1 {
		t.Fatalf("no-route drops = %d", got)
	}
}

func TestCQFLatencyBounds(t *testing.T) {
	// Eq. (1): for a single switch (hop = 1), end-to-end latency lies
	// in [(hop-1)·slot, (hop+1)·slot] = [0, 130 µs].
	cfg := testConfig()
	r := newRig(t, cfg)
	const n = 50
	for i := 0; i < n; i++ {
		f := tsFrame(1, uint32(i))
		at := sim.Time(i) * 123 * sim.Microsecond // arbitrary phases
		f.SentAt = at
		r.hosts[0].sendAt(at, f)
	}
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != n {
		t.Fatalf("received %d, want %d (drops: %+v)", len(r.hosts[1].got), n, r.sw.Stats().Drops)
	}
	for i, f := range r.hosts[1].got {
		lat := r.hosts[1].arrivals[i] - f.SentAt
		if lat < 0 || lat > 2*cfg.SlotSize {
			t.Fatalf("frame %d latency %v outside [0, %v]", i, lat, 2*cfg.SlotSize)
		}
	}
}

func TestCQFNextSlotForwarding(t *testing.T) {
	// A TS frame received in slot s must leave in slot s+1: its
	// departure time falls inside the following slot.
	cfg := testConfig()
	r := newRig(t, cfg)
	f := tsFrame(1, 1)
	at := 10 * sim.Microsecond // mid slot 0
	f.SentAt = at
	r.hosts[0].sendAt(at, f)
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 1 {
		t.Fatal("frame lost")
	}
	arrive := r.hosts[1].arrivals[0]
	// Frame entered queue in slot 0, so it must depart within slot 1:
	// arrival ∈ (65 µs, 130 µs + wire time].
	if arrive <= cfg.SlotSize || arrive > 2*cfg.SlotSize {
		t.Fatalf("arrival %v not in slot 1", arrive)
	}
}

func TestBEForwardedImmediately(t *testing.T) {
	// Best-effort frames are not gated: they leave as soon as the port
	// is free, far sooner than a slot.
	r := newRig(t, testConfig())
	f := tsFrame(1, 1)
	f.PCP = 0
	f.Class = ethernet.ClassBE
	r.hosts[0].sendAt(0, f)
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 1 {
		t.Fatal("BE frame lost")
	}
	if r.hosts[1].arrivals[0] > 5*sim.Microsecond {
		t.Fatalf("BE arrival %v, want < 5µs", r.hosts[1].arrivals[0])
	}
}

func TestQueueFullDrop(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	r := newRig(t, cfg)
	// Inject 5 TS frames back-to-back within one slot; queue depth 2
	// forces drops (some may land in the alternate queue after slot
	// rotation, so just require at least one drop).
	for i := 0; i < 5; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, tsFrame(1, uint32(i)))
	}
	r.engine.RunUntil(sim.Second)
	if got := r.sw.Stats().Drops[DropQueueFull]; got == 0 {
		t.Fatal("expected queue-full drops")
	}
}

func TestBufferExhaustionDrop(t *testing.T) {
	cfg := testConfig()
	cfg.BuffersPerPort = 1
	cfg.QueueDepth = 8
	r := newRig(t, cfg)
	for i := 0; i < 4; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, tsFrame(1, uint32(i)))
	}
	r.engine.RunUntil(sim.Second)
	if got := r.sw.Stats().Drops[DropBufferFull]; got == 0 {
		t.Fatal("expected buffer-full drops")
	}
}

func TestStrictPriorityTSOverBE(t *testing.T) {
	// Saturate with BE, then inject TS: TS must not queue behind the
	// BE backlog.
	cfg := testConfig()
	r := newRig(t, cfg)
	// 20 BE frames of 1024B back-to-back starting at t=0 (the ingress
	// link is 1 Gbps, so they arrive over ~170 µs).
	for i := 0; i < 20; i++ {
		f := tsFrame(1, uint32(i))
		f.PCP = 0
		f.Class = ethernet.ClassBE
		f.FlowID = 2
		f.Payload = make([]byte, 1002) // 1024B wire
		r.hosts[0].sendAt(sim.Time(i)*9*sim.Microsecond, f)
	}
	ts := tsFrame(1, 100)
	ts.SentAt = 30 * sim.Microsecond
	r.hosts[0].sendAt(30*sim.Microsecond, ts)
	r.engine.RunUntil(sim.Second)
	var tsLat sim.Time = -1
	for i, f := range r.hosts[1].got {
		if f.FlowID == 1 {
			tsLat = r.hosts[1].arrivals[i] - f.SentAt
		}
	}
	if tsLat < 0 {
		t.Fatal("TS frame lost")
	}
	if tsLat > 2*cfg.SlotSize {
		t.Fatalf("TS latency %v exceeded CQF bound under BE load", tsLat)
	}
}

func TestMeterDropsAtSwitch(t *testing.T) {
	r := newRig(t, testConfig())
	// Classify flow 3 into queue 4 with a tight meter.
	key := tables.ClassKey{
		Src: ethernet.HostMAC(99), Dst: ethernet.HostMAC(1), VID: 1, PRI: 2,
	}
	if err := r.sw.Filter().Class.Add(key, tables.ClassEntry{QueueID: 4, MeterID: 0, HasMeter: true}); err != nil {
		t.Fatal(err)
	}
	if err := r.sw.Filter().Meters.Configure(0, ethernet.Mbps, 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f := tsFrame(1, uint32(i))
		f.PCP = 2
		f.Class = ethernet.ClassRC
		f.Payload = make([]byte, 40) // 64B on wire = exactly one burst
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, f)
	}
	r.engine.RunUntil(sim.Second)
	if got := r.sw.Stats().Drops[DropMeter]; got != 2 {
		t.Fatalf("meter drops = %d, want 2", got)
	}
}

func TestMulticastReplication(t *testing.T) {
	r := newRig(t, testConfig())
	grp := ethernet.GroupMAC(5)
	if err := r.sw.Forward().Multicast.Add(uint16(5), 0b11); err != nil {
		t.Fatal(err)
	}
	f := tsFrame(0, 1)
	f.Dst = grp
	f.PCP = 0
	r.hosts[0].sendAt(0, f)
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[0].got) != 1 || len(r.hosts[1].got) != 1 {
		t.Fatalf("replication = %d,%d, want 1,1", len(r.hosts[0].got), len(r.hosts[1].got))
	}
}

func TestHighWaterTracking(t *testing.T) {
	r := newRig(t, testConfig())
	for i := 0; i < 4; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, tsFrame(1, uint32(i)))
	}
	r.engine.RunUntil(sim.Second)
	hw := r.sw.QueueHighWater(1, 7) + r.sw.QueueHighWater(1, 6)
	if hw == 0 {
		t.Fatal("queue high water not tracked")
	}
	if r.sw.PoolHighWater(1) == 0 {
		t.Fatal("pool high water not tracked")
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.QueuesPerPort = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.BuffersPerPort = 0 },
		func(c *Config) { c.GateSize = 1 },
		func(c *Config) { c.SlotSize = 0 },
		func(c *Config) { c.TSQueueB = 7 },
		func(c *Config) { c.TSQueueA = 12 },
		func(c *Config) { c.LinkRate = 0 },
		func(c *Config) { c.UnicastSize = -1 },
		func(c *Config) { c.CBSSize = -1 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config validated", i)
		}
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDropReasonStrings(t *testing.T) {
	for r := DropReason(0); r < dropReasonCount; r++ {
		if r.String() == "" {
			t.Fatal("empty drop reason name")
		}
	}
	if DropReason(99).String() != "DropReason(99)" {
		t.Fatal("unknown reason formatting")
	}
}
