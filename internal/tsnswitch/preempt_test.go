package tsnswitch

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// preemptRig builds a switch with preemption and ungated TS queues
// (always-open schedules), so express latency is bounded by MAC
// behaviour alone — the regime 802.1Qbu targets.
func preemptRig(t *testing.T, preempt bool) *rig {
	t.Helper()
	cfg := testConfig()
	cfg.EnablePreemption = preempt
	cfg.QueueDepth = 64
	cfg.BuffersPerPort = 256
	r := newRig(t, cfg)
	open := gate.NewVarGCL([]gate.VarEntry{{Mask: gate.AllOpen, Duration: sim.Millisecond}})
	for p := 0; p < cfg.Ports; p++ {
		if err := r.sw.SetPortSchedules(p, open, open); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// beFrame builds a 1500 B best-effort frame to host dst.
func beFrame(dst int, seq uint32) *ethernet.Frame {
	f := tsFrame(dst, seq)
	f.PCP = 0
	f.Class = ethernet.ClassBE
	f.FlowID = 2
	f.Payload = make([]byte, 1478) // 1500B wire
	return f
}

// expressLatency saturates port 1 with BE frames and injects one TS
// frame mid-transmission, returning the TS frame's delivery latency.
func expressLatency(t *testing.T, preempt bool) sim.Time {
	t.Helper()
	r := preemptRig(t, preempt)
	// Two BE frames back-to-back: the second is in flight when the TS
	// frame arrives.
	r.hosts[0].sendAt(0, beFrame(1, 1))
	r.hosts[0].sendAt(0, beFrame(1, 2))
	ts := tsFrame(1, 100)
	// Arrives at the switch ≈ 16.5 µs in: BE#2 is mid-transmission on
	// the egress port.
	at := 16 * sim.Microsecond
	ts.SentAt = at
	r.hosts[0].sendAt(at, ts)
	r.engine.RunUntil(sim.Second)
	for i, f := range r.hosts[1].got {
		if f.FlowID == 1 {
			return r.hosts[1].arrivals[i] - f.SentAt
		}
	}
	t.Fatal("TS frame lost")
	return 0
}

func TestPreemptionCutsExpressLatency(t *testing.T) {
	without := expressLatency(t, false)
	with := expressLatency(t, true)
	// Without preemption the TS frame waits out the 1500 B frame
	// (~12 µs); with it, only the current fragment boundary (~ µs).
	if without < 8*sim.Microsecond {
		t.Fatalf("baseline express latency %v suspiciously low", without)
	}
	if with*2 > without {
		t.Fatalf("preemption did not help: %v vs %v", with, without)
	}
	t.Logf("express latency: %v without preemption, %v with", without, with)
}

func TestPreemptedFrameStillDelivered(t *testing.T) {
	r := preemptRig(t, true)
	r.hosts[0].sendAt(0, beFrame(1, 1))
	r.hosts[0].sendAt(0, beFrame(1, 2))
	ts := tsFrame(1, 100)
	r.hosts[0].sendAt(16*sim.Microsecond, ts)
	r.engine.RunUntil(sim.Second)
	// All three frames arrive exactly once.
	if len(r.hosts[1].got) != 3 {
		t.Fatalf("received %d frames, want 3", len(r.hosts[1].got))
	}
	seen := map[uint32]int{}
	for _, f := range r.hosts[1].got {
		seen[f.FlowID<<16|f.Seq]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("frame %x delivered %d times", k, n)
		}
	}
	st := r.sw.Stats()
	if st.TotalDrops() != 0 {
		t.Fatalf("drops: %+v", st.Drops)
	}
	// The preempted frame's buffer is freed exactly once.
	for p := 0; p < 2; p++ {
		if inUse := r.sw.Port(p).Pool().InUse(); inUse != 0 {
			t.Fatalf("port %d leaked %d buffers through preemption", p, inUse)
		}
	}
}

func TestPreemptedFrameDelayedByFragmentOverhead(t *testing.T) {
	// The preempted BE frame completes after the express frame plus
	// fragment overhead — later than it would have unpreempted.
	arrivalOfBE2 := func(preempt bool) sim.Time {
		r := preemptRig(t, preempt)
		r.hosts[0].sendAt(0, beFrame(1, 1))
		r.hosts[0].sendAt(0, beFrame(1, 2))
		r.hosts[0].sendAt(16*sim.Microsecond, tsFrame(1, 100))
		r.engine.RunUntil(sim.Second)
		for i, f := range r.hosts[1].got {
			if f.FlowID == 2 && f.Seq == 2 {
				return r.hosts[1].arrivals[i]
			}
		}
		t.Fatal("BE#2 lost")
		return 0
	}
	plain := arrivalOfBE2(false)
	preempted := arrivalOfBE2(true)
	if preempted <= plain {
		t.Fatalf("preempted frame not delayed: %v vs %v", preempted, plain)
	}
	// The delay is roughly the express frame + overheads, well under
	// 5 µs.
	if preempted-plain > 5*sim.Microsecond {
		t.Fatalf("preemption cost %v, too high", preempted-plain)
	}
}

func TestNoPreemptionOfExpressByExpress(t *testing.T) {
	// A TS frame never preempts another TS frame.
	r := preemptRig(t, true)
	big := tsFrame(1, 1)
	big.Payload = make([]byte, 1478)
	r.hosts[0].sendAt(0, big)
	r.hosts[0].sendAt(14*sim.Microsecond, tsFrame(1, 2))
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 2 {
		t.Fatalf("received %d, want 2", len(r.hosts[1].got))
	}
	// In-order delivery proves no preemption occurred.
	if r.hosts[1].got[0].Seq != 1 || r.hosts[1].got[1].Seq != 2 {
		t.Fatal("express frames reordered")
	}
}

func TestPreemptionRespectsMinFragment(t *testing.T) {
	// A TS frame arriving in the last bytes of a BE frame cannot cut it
	// (remainder < 64 B): it waits instead, and nothing is lost.
	r := preemptRig(t, true)
	r.hosts[0].sendAt(0, beFrame(1, 1))
	r.hosts[0].sendAt(0, beFrame(1, 2))
	// BE#2 occupies the egress wire ≈ [12.8µs, 25µs]; hit its tail.
	r.hosts[0].sendAt(24*sim.Microsecond, tsFrame(1, 100))
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 3 {
		t.Fatalf("received %d frames, want 3", len(r.hosts[1].got))
	}
}
