package tsnswitch

import (
	"strconv"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// Metric names exported by the switch dataplane. Label sets:
// switch, and where noted port / queue / reason / dir.
const (
	MetricRxFrames   = "tsn_switch_rx_frames_total"    // {switch}
	MetricTxFrames   = "tsn_switch_tx_frames_total"    // {switch}
	MetricDrops      = "tsn_switch_drops_total"        // {switch,reason}
	MetricEnqueues   = "tsn_queue_enqueues_total"      // {switch,port,queue}
	MetricQueueHW    = "tsn_queue_depth_high_water"    // {switch,port,queue}
	MetricPoolOcc    = "tsn_pool_occupancy"            // {switch,port}
	MetricPoolHW     = "tsn_pool_high_water"           // {switch,port}
	MetricPoolFails  = "tsn_pool_alloc_failures_total" // {switch,port}
	MetricRollovers  = "tsn_gate_rollovers_total"      // {switch,port,dir}
	MetricMeterPass  = "tsn_meter_passed_total"        // {switch}
	MetricMeterDrop  = "tsn_meter_dropped_total"       // {switch}
	MetricResidence  = "tsn_queue_residence_ns"        // {switch}
	MetricPreemption = "tsn_switch_preemptions_total"  // {switch}
)

// ResidenceBounds is the egress queue-residence bucket layout:
// 1 µs .. ~4 ms in doubling steps, nanoseconds. A CQF frame resides
// at most two slots (130 µs at the default slot), so the top buckets
// only fill when gating is misconfigured.
var ResidenceBounds = metrics.ExponentialBounds(1000, 2, 12)

// swInstruments holds one switch's pre-resolved telemetry handles.
// The zero value (uninstrumented switch) is all no-ops, so the
// dataplane calls them unconditionally.
type swInstruments struct {
	rx          metrics.Counter
	tx          metrics.Counter
	drops       [dropReasonCount]metrics.Counter
	residence   metrics.Histogram
	preemptions metrics.Counter
}

// resolveInstruments binds every probe point of the switch to reg.
// Called once from New, after ports and queues exist; reg == nil
// leaves every handle inert.
func (sw *Switch) resolveInstruments(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Help(MetricRxFrames, "frames entering the ingress pipeline")
	reg.Help(MetricTxFrames, "frames fully transmitted")
	reg.Help(MetricDrops, "frames dropped, by reason")
	reg.Help(MetricEnqueues, "frames admitted to an egress queue")
	reg.Help(MetricQueueHW, "worst-case egress queue occupancy (descriptors)")
	reg.Help(MetricPoolOcc, "packet buffers currently allocated")
	reg.Help(MetricPoolHW, "worst-case packet buffer occupancy")
	reg.Help(MetricPoolFails, "packet buffer allocation failures")
	reg.Help(MetricRollovers, "gate slot/entry rollovers observed")
	reg.Help(MetricMeterPass, "frames passed by ingress policing")
	reg.Help(MetricMeterDrop, "frames dropped by ingress policing")
	reg.Help(MetricResidence, "enqueue-to-tx-start residence time, nanoseconds")
	reg.Help(MetricPreemption, "express-frame preemptions of in-flight frames")

	swl := metrics.L("switch", strconv.Itoa(sw.cfg.ID))
	sw.met.rx = reg.Counter(MetricRxFrames, swl)
	sw.met.tx = reg.Counter(MetricTxFrames, swl)
	for r := DropReason(0); r < dropReasonCount; r++ {
		sw.met.drops[r] = reg.Counter(MetricDrops, swl, metrics.L("reason", r.String()))
	}
	sw.met.residence = reg.Histogram(MetricResidence, ResidenceBounds, swl)
	sw.met.preemptions = reg.Counter(MetricPreemption, swl)
	sw.flt.Meters.Instrument(
		reg.Counter(MetricMeterPass, swl),
		reg.Counter(MetricMeterDrop, swl),
	)
	// In SMS mode every port shares one pool; register it once under
	// port="shared" so per-port sites cannot double count.
	if sw.cfg.SharedBufferNum > 0 && len(sw.ports) > 0 {
		shared := metrics.L("port", "shared")
		sw.ports[0].pool.Instrument(
			reg.Gauge(MetricPoolOcc, swl, shared),
			reg.Gauge(MetricPoolHW, swl, shared),
			reg.Counter(MetricPoolFails, swl, shared),
		)
	}
	for _, p := range sw.ports {
		pl := metrics.L("port", strconv.Itoa(p.id))
		if sw.cfg.SharedBufferNum <= 0 {
			p.pool.Instrument(
				reg.Gauge(MetricPoolOcc, swl, pl),
				reg.Gauge(MetricPoolHW, swl, pl),
				reg.Counter(MetricPoolFails, swl, pl),
			)
		}
		for q, queue := range p.queues {
			ql := metrics.L("queue", strconv.Itoa(q))
			p.metEnq[q] = reg.Counter(MetricEnqueues, swl, pl, ql)
			queue.Instrument(reg.Gauge(MetricQueueHW, swl, pl, ql))
		}
		sw.attachGateCounters(p)
	}
}

// attachGateCounters binds rollover counters to port p's current
// in/out schedules. Re-run after SetPortSchedules replaces them.
func (sw *Switch) attachGateCounters(p *Port) {
	if sw.metrics == nil {
		return
	}
	swl := metrics.L("switch", strconv.Itoa(sw.cfg.ID))
	pl := metrics.L("port", strconv.Itoa(p.id))
	type rollable interface{ SetRolloverCounter(metrics.Counter) }
	if g, ok := p.inGCL.(rollable); ok {
		g.SetRolloverCounter(sw.metrics.Counter(MetricRollovers, swl, pl, metrics.L("dir", "in")))
	}
	if g, ok := p.outGCL.(rollable); ok {
		g.SetRolloverCounter(sw.metrics.Counter(MetricRollovers, swl, pl, metrics.L("dir", "out")))
	}
}
