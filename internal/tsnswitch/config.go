// Package tsnswitch composes the five TSN-Builder function templates —
// Packet Switch, Ingress Filter, Gate Ctrl, Egress Sched and Time Sync —
// into the complete switch of Fig. 3, with the per-port queue/buffer
// resources of Fig. 4.
//
// Ingress path:  Packet Switch lookup → Ingress Filter classify+meter →
// ingress gate → metadata queue + packet buffer. Egress path: egress
// gate → strict priority + CBS → wire. Gate state is evaluated against
// the switch's local synchronized clock, as Gate Ctrl does in hardware.
package tsnswitch

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Config is the platform-level resource specification of one switch.
// Every field is set by a TSN-Builder customization API (Table II).
type Config struct {
	ID int

	// Ports is the number of enabled TSN ports (port_num).
	Ports int
	// QueuesPerPort is queue_num: queues attached to each port.
	QueuesPerPort int
	// QueueDepth is queue_depth: descriptors per queue.
	QueueDepth int
	// BuffersPerPort is buffer_num: 2048 B packet buffers per port.
	BuffersPerPort int
	// SharedBufferNum, when positive, replaces the per-port pools with
	// one pool of this many buffers shared by all ports — the
	// switch-memory-switch (SMS) architecture the paper contrasts with
	// in §VI. BuffersPerPort is ignored in that mode.
	SharedBufferNum int

	// UnicastSize / MulticastSize size the switch table
	// (set_switch_tbl).
	UnicastSize   int
	MulticastSize int
	// ClassSize sizes the classification table (set_class_tbl).
	ClassSize int
	// MeterSize sizes the meter table (set_meter_tbl).
	MeterSize int
	// GateSize is the number of entries in each in/out gate table
	// (set_gate_tbl); CQF needs exactly 2.
	GateSize int
	// CBSMapSize / CBSSize size the per-port CBS MAP and CBS tables
	// (set_cbs_tbl).
	CBSMapSize int
	CBSSize    int

	// EnablePreemption activates 802.1Qbu/802.3br frame preemption:
	// express (TS-queue) frames interrupt preemptable frames
	// mid-transmission instead of waiting for them to drain.
	EnablePreemption bool

	// SlotSize is the CQF time slot; the paper's default is 65 µs.
	SlotSize sim.Time
	// TSQueueA/TSQueueB are the two queues cycled by CQF.
	TSQueueA, TSQueueB int
	// LinkRate is the default port line rate.
	LinkRate ethernet.Rate
	// PortRates optionally overrides the line rate per port (0 entries
	// fall back to LinkRate) — mixed-speed networks attach 100 Mbps
	// field devices to 1 Gbps trunks.
	PortRates []ethernet.Rate

	// Metrics, when non-nil, receives the switch's telemetry: all
	// dataplane instruments are resolved against it at construction so
	// the hot path never pays a lookup. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// RateFor returns port p's line rate.
func (c *Config) RateFor(p int) ethernet.Rate {
	if p < len(c.PortRates) && c.PortRates[p] > 0 {
		return c.PortRates[p]
	}
	return c.LinkRate
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.Ports <= 0:
		return fmt.Errorf("tsnswitch: ports = %d", c.Ports)
	case c.QueuesPerPort <= 0 || c.QueuesPerPort > 16:
		return fmt.Errorf("tsnswitch: queues per port = %d", c.QueuesPerPort)
	case c.QueueDepth <= 0:
		return fmt.Errorf("tsnswitch: queue depth = %d", c.QueueDepth)
	case c.BuffersPerPort <= 0 && c.SharedBufferNum <= 0:
		return fmt.Errorf("tsnswitch: no buffers configured")
	case c.SharedBufferNum < 0:
		return fmt.Errorf("tsnswitch: shared buffers = %d", c.SharedBufferNum)
	case c.GateSize < 2:
		return fmt.Errorf("tsnswitch: gate size %d < 2 (CQF needs 2)", c.GateSize)
	case c.SlotSize <= 0:
		return fmt.Errorf("tsnswitch: slot size = %v", c.SlotSize)
	case c.TSQueueA == c.TSQueueB:
		return fmt.Errorf("tsnswitch: TS queues must differ")
	case c.TSQueueA >= c.QueuesPerPort || c.TSQueueB >= c.QueuesPerPort:
		return fmt.Errorf("tsnswitch: TS queue out of range")
	case c.TSQueueA < 0 || c.TSQueueB < 0:
		return fmt.Errorf("tsnswitch: negative TS queue")
	case c.LinkRate <= 0:
		return fmt.Errorf("tsnswitch: link rate = %d", c.LinkRate)
	case c.UnicastSize < 0 || c.MulticastSize < 0 || c.ClassSize < 0 || c.MeterSize < 0:
		return fmt.Errorf("tsnswitch: negative table size")
	case c.CBSMapSize < 0 || c.CBSSize < 0:
		return fmt.Errorf("tsnswitch: negative CBS table size")
	}
	for p, r := range c.PortRates {
		if r < 0 {
			return fmt.Errorf("tsnswitch: negative rate on port %d", p)
		}
	}
	return nil
}

// DropReason classifies frame drops for the statistics the analyzer and
// the experiments report.
type DropReason int

// Drop reasons observed in the dataplane.
const (
	DropNoRoute DropReason = iota
	DropMeter
	DropGateClosed
	DropBufferFull
	DropQueueFull
	// DropDegraded counts frames shed by the graceful-degradation
	// policy: under buffer pressure the watchdog raises the switch's
	// degrade level and lower classes are dropped at admission so TS
	// traffic keeps its buffers.
	DropDegraded
	dropReasonCount
)

// DropReasons lists every drop reason the dataplane records, in enum
// order — for tooling that iterates the tsn_switch_drops_total series.
func DropReasons() []DropReason {
	out := make([]DropReason, dropReasonCount)
	for i := range out {
		out[i] = DropReason(i)
	}
	return out
}

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropNoRoute:
		return "no-route"
	case DropMeter:
		return "meter"
	case DropGateClosed:
		return "gate-closed"
	case DropBufferFull:
		return "buffer-full"
	case DropQueueFull:
		return "queue-full"
	case DropDegraded:
		return "degraded"
	}
	return fmt.Sprintf("DropReason(%d)", int(r))
}

// DegradeLevel selects how aggressively the switch sheds traffic at
// admission when the watchdog detects buffer pressure. TS frames are
// never shed: the whole point of the policy is that degradation eats
// best-effort headroom before it touches the time-sensitive service.
type DegradeLevel int

// Degradation levels, in escalation order.
const (
	// DegradeOff admits every class (normal operation).
	DegradeOff DegradeLevel = iota
	// DegradeShedBE drops best-effort frames at admission.
	DegradeShedBE
	// DegradeShedRC drops best-effort and rate-constrained frames,
	// leaving buffers exclusively to TS traffic.
	DegradeShedRC
)

// String implements fmt.Stringer.
func (l DegradeLevel) String() string {
	switch l {
	case DegradeOff:
		return "off"
	case DegradeShedBE:
		return "shed-be"
	case DegradeShedRC:
		return "shed-rc"
	}
	return fmt.Sprintf("DegradeLevel(%d)", int(l))
}

// Stats aggregates one switch's dataplane counters.
type Stats struct {
	RxFrames uint64
	TxFrames uint64
	Drops    [dropReasonCount]uint64
}

// TotalDrops sums all drop reasons.
func (s *Stats) TotalDrops() uint64 {
	var total uint64
	for _, d := range s.Drops {
		total += d
	}
	return total
}
