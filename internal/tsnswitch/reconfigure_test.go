package tsnswitch

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestResizeRoundTrip(t *testing.T) {
	r := newRig(t, testConfig())
	sw := r.sw
	// Grow every resource class, then shrink back to the original.
	if err := sw.ResizeSwitchTbl(128, 16); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeClassTbl(128); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeMeterTbl(32); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeCBS(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeQueues(16); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeBuffers(128); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{
		sw.ResizeSwitchTbl(64, 8), sw.ResizeClassTbl(64), sw.ResizeMeterTbl(16),
		sw.ResizeCBS(3, 3), sw.ResizeQueues(8), sw.ResizeBuffers(96),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestResizeSwitchTblRevertsOnPartialFailure(t *testing.T) {
	r := newRig(t, testConfig())
	sw := r.sw
	// Fill the multicast table so shrinking it below occupancy fails;
	// the already-resized unicast table must be restored.
	if err := sw.Forward().Multicast.Add(200, 0b11); err != nil {
		t.Fatal(err)
	}
	if err := sw.ResizeSwitchTbl(128, 0); err == nil {
		t.Fatal("want multicast shrink failure")
	}
	// Unicast capacity must still be the original 64: entry 65 fails.
	room := 64 - sw.Forward().Unicast.Len()
	for i := 0; i < room; i++ {
		if err := sw.Forward().Unicast.Add(ethernet.HostMAC(300+i), 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Forward().Unicast.Add(ethernet.HostMAC(999), 3, 0); err == nil {
		t.Fatal("unicast table grew despite failed transaction")
	}
}

func TestResizeBuffersRejectsBelowLive(t *testing.T) {
	r := newRig(t, testConfig())
	pool := r.sw.Port(0).Pool()
	if _, ok := pool.Alloc(64); !ok {
		t.Fatal("alloc failed")
	}
	if err := r.sw.ResizeBuffers(0); err == nil {
		t.Fatal("want shrink-below-live rejection")
	}
	if err := r.sw.ResizeBuffers(8); err != nil {
		t.Fatalf("shrink above live: %v", err)
	}
}

func TestSetGateSizeRejectsLiveSchedules(t *testing.T) {
	r := newRig(t, testConfig())
	if err := r.sw.SetGateSize(1); err == nil {
		t.Fatal("gate size 1 must be rejected (< 2)")
	}
	if err := r.sw.SetGateSize(4); err != nil {
		t.Fatal(err)
	}
}

func TestCQFSchedulesAndRebase(t *testing.T) {
	cfg := testConfig()
	r := newRig(t, cfg)
	if !r.sw.CQFSchedules() {
		t.Fatal("default build must carry CQF schedules")
	}
	if err := r.sw.RebaseCQF(130*sim.Microsecond, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.sw.Config().SlotSize; got != 130*sim.Microsecond {
		t.Fatalf("slot = %v", got)
	}
	if !r.sw.CQFSchedules() {
		t.Fatal("rebase must keep CQF schedules")
	}
}

func TestAuditCleanAndLeak(t *testing.T) {
	r := newRig(t, testConfig())
	if v := r.sw.Audit(0); len(v) != 0 {
		t.Fatalf("clean switch reported %v", v)
	}
	if got := r.sw.Port(0).Pool().Leak(3); got != 3 {
		t.Fatalf("leaked %d, want 3", got)
	}
	v := r.sw.Audit(0)
	if len(v) == 0 {
		t.Fatal("leak not detected")
	}
	if v[0].Invariant != "buffer-conservation" {
		t.Fatalf("invariant = %q", v[0].Invariant)
	}
	if !strings.Contains(v[0].Detail, "port 0") {
		t.Fatalf("detail = %q", v[0].Detail)
	}
}

func TestDegradeShedsBEOnly(t *testing.T) {
	r := newRig(t, testConfig())
	r.sw.SetDegradeLevel(DegradeShedBE)
	be := tsFrame(1, 1)
	be.PCP, be.Class = 0, ethernet.ClassBE
	r.hosts[0].sendAt(0, be)
	r.hosts[0].sendAt(sim.Microsecond, tsFrame(1, 2))
	r.engine.RunUntil(sim.Second)
	st := r.sw.Stats()
	if st.Drops[DropDegraded] != 1 {
		t.Fatalf("degraded drops = %d, want 1 (BE)", st.Drops[DropDegraded])
	}
	if len(r.hosts[1].got) != 1 || r.hosts[1].got[0].Class != ethernet.ClassTS {
		t.Fatalf("TS frame must survive shedding; got %d frames", len(r.hosts[1].got))
	}
}

func TestDegradeShedRCKeepsTS(t *testing.T) {
	r := newRig(t, testConfig())
	r.sw.SetDegradeLevel(DegradeShedRC)
	rc := tsFrame(1, 1)
	rc.PCP, rc.Class = 5, ethernet.ClassRC
	r.hosts[0].sendAt(0, rc)
	r.hosts[0].sendAt(sim.Microsecond, tsFrame(1, 2))
	r.engine.RunUntil(sim.Second)
	if got := r.sw.Stats().Drops[DropDegraded]; got != 1 {
		t.Fatalf("degraded drops = %d, want 1 (RC)", got)
	}
	if len(r.hosts[1].got) != 1 || r.hosts[1].got[0].Class != ethernet.ClassTS {
		t.Fatal("TS frame must survive RC shedding")
	}
	// Back to off: everything flows again.
	r.sw.SetDegradeLevel(DegradeOff)
	rc2 := tsFrame(1, 3)
	rc2.PCP, rc2.Class = 5, ethernet.ClassRC
	r.hosts[0].sendAt(sim.Second+sim.Microsecond, rc2)
	r.engine.RunUntil(2 * sim.Second)
	if len(r.hosts[1].got) != 2 {
		t.Fatalf("recovered switch delivered %d frames, want 2", len(r.hosts[1].got))
	}
}

func TestPoolPressure(t *testing.T) {
	cfg := testConfig()
	cfg.BuffersPerPort = 10
	r := newRig(t, cfg)
	if p := r.sw.PoolPressure(); p != 0 {
		t.Fatalf("idle pressure = %v", p)
	}
	pool := r.sw.Port(0).Pool()
	for i := 0; i < 9; i++ {
		if _, ok := pool.Alloc(64); !ok {
			t.Fatal("alloc failed")
		}
	}
	if p := r.sw.PoolPressure(); p < 0.89 || p > 0.91 {
		t.Fatalf("pressure = %v, want 0.9", p)
	}
}
