package tsnswitch

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestSharedBufferPool(t *testing.T) {
	cfg := testConfig()
	cfg.BuffersPerPort = 0
	cfg.SharedBufferNum = 4
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := newRig(t, cfg)
	// Frames queue on port 1's egress; the pool is shared, so the
	// second port sees the same occupancy accounting.
	for i := 0; i < 3; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, tsFrame(1, uint32(i)))
	}
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 3 {
		t.Fatalf("received %d frames", len(r.hosts[1].got))
	}
	// Both ports report the same (shared) pool.
	if r.sw.PoolHighWater(0) != r.sw.PoolHighWater(1) {
		t.Fatal("ports report different pools in shared mode")
	}
}

func TestSharedBufferExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.BuffersPerPort = 0
	cfg.SharedBufferNum = 2
	r := newRig(t, cfg)
	for i := 0; i < 6; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Microsecond, tsFrame(1, uint32(i)))
	}
	r.engine.RunUntil(sim.Second)
	if r.sw.Stats().Drops[DropBufferFull] == 0 {
		t.Fatal("no buffer-full drops with a 2-slot shared pool")
	}
}

func TestSharedBufferConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.BuffersPerPort = 0
	cfg.SharedBufferNum = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("no buffers accepted")
	}
	cfg.SharedBufferNum = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative shared buffers accepted")
	}
}

func TestSetPortSchedules(t *testing.T) {
	cfg := testConfig()
	cfg.GateSize = 4
	r := newRig(t, cfg)
	sched := gate.NewVarGCL([]gate.VarEntry{
		{Mask: gate.AllOpen, Duration: 100 * sim.Microsecond},
		{Mask: 0, Duration: 10 * sim.Microsecond},
	})
	if err := r.sw.SetPortSchedules(1, sched, sched); err != nil {
		t.Fatal(err)
	}
	// Oversized schedule rejected.
	big := gate.NewVarGCL([]gate.VarEntry{
		{Mask: 1, Duration: 1}, {Mask: 2, Duration: 1}, {Mask: 1, Duration: 1},
		{Mask: 2, Duration: 1}, {Mask: 1, Duration: 1},
	})
	if err := r.sw.SetPortSchedules(1, big, sched); err == nil {
		t.Fatal("oversized schedule accepted")
	}
	if err := r.sw.SetPortSchedules(1, nil, sched); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestCustomScheduleDataplane(t *testing.T) {
	// Replace port 1's gates with an always-open schedule: TS frames
	// then forward immediately instead of waiting for a CQF slot.
	cfg := testConfig()
	r := newRig(t, cfg)
	open := gate.NewVarGCL([]gate.VarEntry{{Mask: gate.AllOpen, Duration: sim.Millisecond}})
	if err := r.sw.SetPortSchedules(1, open, open); err != nil {
		t.Fatal(err)
	}
	f := tsFrame(1, 1)
	f.SentAt = 0
	r.hosts[0].sendAt(0, f)
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 1 {
		t.Fatal("frame lost")
	}
	if lat := r.hosts[1].arrivals[0]; lat > 5*sim.Microsecond {
		t.Fatalf("ungated TS latency = %v, want immediate forwarding", lat)
	}
}
