package tsnswitch

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func newMetricsRig(t *testing.T) (*rig, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	cfg := testConfig()
	cfg.Metrics = reg
	return newRig(t, cfg), reg
}

func TestSwitchMetricsMatchStats(t *testing.T) {
	r, reg := newMetricsRig(t)
	for i := 0; i < 5; i++ {
		r.hosts[0].sendAt(sim.Time(i)*sim.Millisecond, tsFrame(1, uint32(i+1)))
	}
	r.engine.RunUntil(sim.Second)
	st := r.sw.Stats()
	if st.RxFrames != 5 || st.TxFrames != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if got := reg.CounterValue(MetricRxFrames, metrics.L("switch", "0")); got != st.RxFrames {
		t.Fatalf("rx counter = %d, want %d", got, st.RxFrames)
	}
	if got := reg.CounterValue(MetricTxFrames, metrics.L("switch", "0")); got != st.TxFrames {
		t.Fatalf("tx counter = %d, want %d", got, st.TxFrames)
	}
	// All five TS frames were admitted somewhere on egress port 1.
	if got := reg.SumCounter(MetricEnqueues, metrics.L("port", "1")); got != 5 {
		t.Fatalf("enqueues on port 1 = %d, want 5", got)
	}
	// Residence histogram saw one observation per transmitted frame.
	snap := reg.Snapshot()
	for _, fam := range snap.Families {
		if fam.Name != MetricResidence {
			continue
		}
		if n := fam.Samples[0].Count; n != 5 {
			t.Fatalf("residence count = %d, want 5", n)
		}
	}
}

func TestSwitchMetricsDropReasons(t *testing.T) {
	r, reg := newMetricsRig(t)
	f := tsFrame(1, 1)
	f.Dst = ethernet.HostMAC(55) // no route installed
	r.hosts[0].sendAt(0, f)
	r.engine.RunUntil(sim.Second)
	got := reg.CounterValue(MetricDrops,
		metrics.L("switch", "0"), metrics.L("reason", DropNoRoute.String()))
	if got != 1 {
		t.Fatalf("no-route drop counter = %d, want 1", got)
	}
	// Every drop reason has a registered (if zero) time series.
	if total := reg.SumCounter(MetricDrops); total != 1 {
		t.Fatalf("total drops = %d, want 1", total)
	}
}

func TestUninstrumentedSwitchRuns(t *testing.T) {
	// Nil registry: every handle is a no-op and the dataplane still
	// forwards.
	r := newRig(t, testConfig())
	r.hosts[0].sendAt(0, tsFrame(1, 1))
	r.engine.RunUntil(sim.Second)
	if len(r.hosts[1].got) != 1 {
		t.Fatalf("received %d frames, want 1", len(r.hosts[1].got))
	}
}

// sink is a frame receiver that discards, so benchmark memory stays
// flat regardless of b.N.
type sink struct{}

func (sink) Receive(*ethernet.Frame, *netdev.Ifc) {}

// benchForward pushes b.N frames through the full ingress→egress
// pipeline, draining the event queue after each injection.
func benchForward(b *testing.B, reg *metrics.Registry) {
	e := sim.NewEngine()
	cfg := testConfig()
	cfg.Metrics = reg
	sw := New(e, cfg)
	peer := netdev.NewIfc(e, "peer", sink{}, ethernet.Gbps)
	netdev.Connect(sw.Ifc(1), peer, 100*sim.Nanosecond)
	if err := sw.Forward().Unicast.Add(ethernet.HostMAC(1), 1, 1); err != nil {
		b.Fatal(err)
	}
	f := tsFrame(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ingress(f)
		e.Run()
	}
	if sw.Stats().TxFrames != uint64(b.N) {
		b.Fatalf("tx = %d, want %d", sw.Stats().TxFrames, b.N)
	}
}

func BenchmarkSwitchForward(b *testing.B) {
	benchForward(b, nil)
}

func BenchmarkSwitchForwardInstrumented(b *testing.B) {
	benchForward(b, metrics.New())
}
