package tsnswitch

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/buffering"
	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/filter"
	"github.com/tsnbuilder/tsnbuilder/internal/forward"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/shaper"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// Switch is one TSN switch instance.
type Switch struct {
	cfg    Config
	engine *sim.Engine
	// Clock is the local synchronized clock driving Gate Ctrl. It
	// defaults to a perfect clock; the testbed replaces it with the
	// gPTP-disciplined one.
	Clock *clock.Clock

	fwd   *forward.Engine
	flt   *filter.Engine
	ports []*Port

	// Tracer, when non-nil, receives per-packet dataplane events.
	Tracer *trace.Recorder
	// Flight, when non-nil, receives the same events into the always-on
	// ring-buffer flight recorder (last-N history for post-mortem dumps).
	Flight *trace.Flight

	stats Stats
	// degrade is the graceful-degradation level the watchdog drives;
	// enqueue sheds lower classes at admission while it is raised.
	degrade DegradeLevel
	// Telemetry: handles resolved once at construction (zero values are
	// no-ops), plus the registry for re-binding replaced schedules.
	met     swInstruments
	metrics *metrics.Registry
}

// emit records a trace event if tracing or the flight recorder is
// enabled.
func (sw *Switch) emit(kind trace.Kind, port, queue int, f *ethernet.Frame, detail string) {
	if sw.Tracer == nil && sw.Flight == nil {
		return
	}
	ev := trace.Event{
		At: sw.engine.Now(), Kind: kind,
		Switch: sw.cfg.ID, Port: port, Queue: queue,
		FlowID: f.FlowID, Seq: f.Seq, Detail: detail,
	}
	sw.Flight.Record(ev)
	sw.Tracer.Record(ev)
}

// Port is one enabled TSN port with its exclusive queue set, buffer
// pool, gate tables and CBS bank (Fig. 4).
type Port struct {
	sw  *Switch
	id  int
	ifc *netdev.Ifc

	queues []*buffering.Queue
	pool   *buffering.Pool
	inGCL  gate.Schedule
	outGCL gate.Schedule
	bank   *shaper.Bank

	// metEnq has one admitted-frames counter per queue; always sized
	// len(queues) so the enqueue path indexes it unconditionally.
	metEnq []metrics.Counter

	// shapeBlockedAt[q] is the engine instant the egress scheduler first
	// found queue q blocked solely by CBS credit (gate open, frames
	// waiting); zero when not blocked. Consumed — and clamped against
	// the head frame's actual wait — when the queue next pops, to
	// attribute shaper hold time in the frame's latency span.
	shapeBlockedAt []sim.Time

	transmitting bool
	retryPending bool
	// Preemption state: the in-flight transmission handle, its queue,
	// and a preempted frame awaiting resumption.
	txHandle  *netdev.TxHandle
	txQueue   int
	txBufSlot int
	suspended *suspendedTx
}

// suspendedTx is a preempted frame: its descriptor plus the bytes (and
// fragment overhead) still to serialize.
type suspendedTx struct {
	desc      buffering.Descriptor
	queue     int
	remaining int
}

// New builds a switch from cfg on engine. Panics on invalid config
// (construction is generator output; a bad config is a programming
// error upstream).
func New(engine *sim.Engine, cfg Config) *Switch {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sw := &Switch{
		cfg:    cfg,
		engine: engine,
		Clock:  clock.New(0, 0),
		fwd:    forward.New(cfg.UnicastSize, cfg.MulticastSize),
		flt:    filter.New(cfg.ClassSize, cfg.MeterSize, cfg.QueuesPerPort),
	}
	// SMS mode: one pool shared by every port; default: exclusive
	// per-port pools (Fig. 4).
	var shared *buffering.Pool
	if cfg.SharedBufferNum > 0 {
		shared = buffering.NewPool(cfg.SharedBufferNum)
	}
	for p := 0; p < cfg.Ports; p++ {
		in, out := gate.CQF(cfg.SlotSize, cfg.TSQueueA, cfg.TSQueueB)
		pool := shared
		if pool == nil {
			pool = buffering.NewPool(cfg.BuffersPerPort)
		}
		port := &Port{
			sw:     sw,
			id:     p,
			pool:   pool,
			inGCL:  in,
			outGCL: out,
			bank:   shaper.NewBank(cfg.CBSMapSize, cfg.CBSSize),
		}
		port.ifc = netdev.NewIfc(engine, fmt.Sprintf("sw%d.p%d", cfg.ID, p), port, cfg.RateFor(p))
		for q := 0; q < cfg.QueuesPerPort; q++ {
			port.queues = append(port.queues, buffering.NewQueue(cfg.QueueDepth))
		}
		port.metEnq = make([]metrics.Counter, cfg.QueuesPerPort)
		port.shapeBlockedAt = make([]sim.Time, cfg.QueuesPerPort)
		sw.ports = append(sw.ports, port)
	}
	sw.metrics = cfg.Metrics
	sw.resolveInstruments(cfg.Metrics)
	return sw
}

// ID returns the switch identifier.
func (sw *Switch) ID() int { return sw.cfg.ID }

// Config returns the resource specification the switch was built with.
func (sw *Switch) Config() Config { return sw.cfg }

// Port returns port p's handle.
func (sw *Switch) Port(p int) *Port {
	if p < 0 || p >= len(sw.ports) {
		panic(fmt.Sprintf("tsnswitch: port %d out of range (%d ports)", p, len(sw.ports)))
	}
	return sw.ports[p]
}

// Ifc returns the physical interface of port p, for cabling.
func (sw *Switch) Ifc(p int) *netdev.Ifc { return sw.Port(p).ifc }

// Stats returns a copy of the dataplane counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Forward returns the Packet Switch stage for control-plane
// programming.
func (sw *Switch) Forward() *forward.Engine { return sw.fwd }

// Filter returns the Ingress Filter stage for control-plane
// programming.
func (sw *Switch) Filter() *filter.Engine { return sw.flt }

// Bank returns port p's CBS bank for control-plane programming.
func (sw *Switch) Bank(p int) *shaper.Bank { return sw.Port(p).bank }

// Pool returns the port's buffer pool (shared across ports in SMS
// mode) for occupancy inspection.
func (p *Port) Pool() *buffering.Pool { return p.pool }

// SetPortSchedules replaces port p's in/out gate schedules — how the
// control plane loads a synthesized 802.1Qbv GCL instead of the
// default CQF pair. The schedule entry count must fit the configured
// gate table size.
func (sw *Switch) SetPortSchedules(p int, in, out gate.Schedule) error {
	if in == nil || out == nil {
		return fmt.Errorf("tsnswitch: nil schedule")
	}
	if in.Size() > sw.cfg.GateSize || out.Size() > sw.cfg.GateSize {
		return fmt.Errorf("tsnswitch: schedule of %d/%d entries exceeds gate table size %d",
			in.Size(), out.Size(), sw.cfg.GateSize)
	}
	port := sw.Port(p)
	port.inGCL, port.outGCL = in, out
	sw.attachGateCounters(port)
	return nil
}

// PortSchedules returns port p's current in/out gate schedules, so a
// caller replacing them (reconfiguration, fault injection) can restore
// the originals afterwards.
func (sw *Switch) PortSchedules(p int) (in, out gate.Schedule) {
	port := sw.Port(p)
	return port.inGCL, port.outGCL
}

// localTime returns the Gate Ctrl time base: the synchronized local
// clock reading.
func (sw *Switch) localTime() sim.Time { return sw.Clock.Now(sw.engine.Now()) }

// Receive implements netdev.Receiver on Port: frames arriving on any
// port enter the shared ingress pipeline.
func (p *Port) Receive(f *ethernet.Frame, on *netdev.Ifc) {
	p.sw.ingress(f)
}

// ingress runs Packet Switch and Ingress Filter, then hands the frame
// to each output port's enqueue stage.
func (sw *Switch) ingress(f *ethernet.Frame) {
	sw.stats.RxFrames++
	sw.met.rx.Inc()
	sw.emit(trace.KindIngress, -1, -1, f, "")
	outPorts, ok := sw.fwd.Resolve(f)
	if !ok {
		sw.stats.Drops[DropNoRoute]++
		sw.met.drops[DropNoRoute].Inc()
		sw.emit(trace.KindDrop, -1, -1, f, DropNoRoute.String())
		return
	}
	v := sw.flt.Process(f, sw.engine.Now())
	if !v.Conform {
		sw.stats.Drops[DropMeter]++
		sw.met.drops[DropMeter].Inc()
		sw.emit(trace.KindDrop, -1, -1, f, DropMeter.String())
		return
	}
	for _, op := range outPorts {
		if op < 0 || op >= len(sw.ports) {
			sw.stats.Drops[DropNoRoute]++
			sw.met.drops[DropNoRoute].Inc()
			continue
		}
		// Multicast replication copies the header only (the payload is
		// immutable in flight); the common unicast case moves the frame
		// through untouched.
		g := f
		if len(outPorts) > 1 {
			g = f.CloneHeader()
		}
		sw.ports[op].enqueue(g, v.QueueID)
	}
}

// enqueue applies Gate Ctrl's ingress gate and the queue/buffer
// admission of Fig. 4, then kicks the egress scheduler.
func (p *Port) enqueue(f *ethernet.Frame, queueID int) {
	sw := p.sw
	local := sw.localTime()
	// CQF redirects TS frames to whichever pair queue is accepting
	// this slot; other queues are admitted iff their in-gate is open.
	qid := gate.EnqueueTarget(p.inGCL, local, queueID, sw.cfg.TSQueueA, sw.cfg.TSQueueB)
	if qid < 0 {
		sw.stats.Drops[DropGateClosed]++
		sw.met.drops[DropGateClosed].Inc()
		sw.emit(trace.KindDrop, p.id, queueID, f, DropGateClosed.String())
		return
	}
	// Graceful degradation: under buffer pressure shed BE (and, one
	// level up, RC) frames before they consume a buffer. TS frames are
	// never shed here.
	if sw.degrade > DegradeOff && f.Class != ethernet.ClassTS {
		if f.Class == ethernet.ClassBE || sw.degrade >= DegradeShedRC {
			sw.stats.Drops[DropDegraded]++
			sw.met.drops[DropDegraded].Inc()
			sw.emit(trace.KindDrop, p.id, qid, f, DropDegraded.String())
			return
		}
	}
	slot, ok := p.pool.Alloc(f.BufferBytes())
	if !ok {
		sw.stats.Drops[DropBufferFull]++
		sw.met.drops[DropBufferFull].Inc()
		sw.emit(trace.KindDrop, p.id, qid, f, DropBufferFull.String())
		return
	}
	if !p.queues[qid].Push(buffering.Descriptor{Frame: f, Slot: slot, EnqueuedAt: sw.engine.Now()}) {
		p.pool.Free(slot)
		sw.stats.Drops[DropQueueFull]++
		sw.met.drops[DropQueueFull].Inc()
		sw.emit(trace.KindDrop, p.id, qid, f, DropQueueFull.String())
		return
	}
	p.metEnq[qid].Inc()
	sw.emit(trace.KindEnqueue, p.id, qid, f, "")
	p.maybePreempt(qid)
	p.tryTransmit()
}

// isExpress reports whether queue q carries express (TS) traffic.
func (p *Port) isExpress(q int) bool {
	return q == p.sw.cfg.TSQueueA || q == p.sw.cfg.TSQueueB
}

// maybePreempt interrupts an in-flight preemptable frame when an
// express frame just became ready (802.1Qbu). The express frame must
// actually be transmittable now — gate open and inside its guard
// window — or the preemption would idle the wire for nothing.
func (p *Port) maybePreempt(arrivedQueue int) {
	sw := p.sw
	if !sw.cfg.EnablePreemption || !p.transmitting || p.txHandle == nil {
		return
	}
	if p.isExpress(p.txQueue) || !p.isExpress(arrivedQueue) {
		return
	}
	if p.suspended != nil {
		return // one suspended frame at a time (802.3br)
	}
	local := sw.localTime()
	q, ok := p.selectQueue(local)
	if !ok || !p.isExpress(q) {
		return
	}
	remaining, ok := p.txHandle.Abort()
	if !ok {
		return // too early or too late in the frame to cut legally
	}
	frame := p.txHandle.Frame()
	sw.met.preemptions.Inc()
	p.suspended = &suspendedTx{
		desc:      buffering.Descriptor{Frame: frame, Slot: p.txBufSlot},
		queue:     p.txQueue,
		remaining: remaining,
	}
	p.txHandle = nil
	// The wire stays occupied for the fragment's mCRC + IFG; the port
	// frees (and the express frame starts) once it clears. transmitting
	// stays true until then so re-entrant tryTransmit calls no-op.
	gap := p.ifc.FreeAt() - sw.engine.Now()
	if gap < 0 {
		gap = 0
	}
	sw.engine.After(gap, fmt.Sprintf("sw%d.p%d.preempt-gap", sw.cfg.ID, p.id), func(*sim.Engine) {
		p.transmitting = false
		p.tryTransmit()
	})
}

// selectQueue implements Egress Sched: strict priority (highest queue
// index first) over queues that are non-empty, whose egress gate is
// open, whose CBS (if any) has non-negative credit, and — for the
// CQF-gated TS queues — whose head frame fits in the remaining slot
// (length-aware guard band).
func (p *Port) selectQueue(local sim.Time) (int, bool) {
	sw := p.sw
	outState := p.outGCL.StateAt(local)
	for q := len(p.queues) - 1; q >= 0; q-- {
		queue := p.queues[q]
		if queue.Len() == 0 {
			continue
		}
		if !outState.Open(q) {
			continue
		}
		if cbs := p.bank.For(q); cbs != nil && !cbs.Eligible(sw.engine.Now()) {
			// The only blocker is shaper credit: stamp the onset so the
			// hold shows up as Shape (not Queue) in the frame's span.
			if p.shapeBlockedAt[q] == 0 {
				p.shapeBlockedAt[q] = sw.engine.Now()
			}
			continue
		}
		if q == sw.cfg.TSQueueA || q == sw.cfg.TSQueueB {
			head, _ := queue.Peek()
			if ethernet.FrameTxTime(head.Frame, sw.cfg.RateFor(p.id)) > p.outGCL.TimeToBoundary(local) {
				// Guard band: the frame would overrun the slot.
				continue
			}
		}
		return q, true
	}
	return 0, false
}

// tryTransmit starts one transmission if the port is idle and a queue
// is eligible; otherwise it arms a retry at the next slot boundary.
// A suspended (preempted) frame resumes as soon as no express frame is
// ready.
func (p *Port) tryTransmit() {
	if p.transmitting {
		return
	}
	sw := p.sw
	local := sw.localTime()
	q, ok := p.selectQueue(local)
	if p.suspended != nil && (!ok || !p.isExpress(q)) {
		p.resumeSuspended()
		return
	}
	if !ok {
		p.armRetry(local)
		return
	}
	d, _ := p.queues[q].Pop()
	p.claimWait(q, local, d)
	if cbs := p.bank.For(q); cbs != nil {
		cbs.OnSend(sw.engine.Now(), int64(d.Frame.WireBytes())*8,
			ethernet.FrameTxTime(d.Frame, sw.cfg.RateFor(p.id)))
		if p.queues[q].Len() == 0 {
			cbs.OnEmpty(sw.engine.Now())
		}
	}
	p.transmitting = true
	p.txQueue = q
	sw.met.residence.Observe(int64(sw.engine.Now() - d.EnqueuedAt))
	sw.emit(trace.KindTxStart, p.id, q, d.Frame, "")
	p.txHandle = p.ifc.TransmitHandle(d.Frame, func() {
		p.pool.Free(d.Slot)
		sw.stats.TxFrames++
		sw.met.tx.Inc()
		p.transmitting = false
		p.txHandle = nil
		p.tryTransmit()
	})
	p.txBufSlot = d.Slot
}

// maxGateScan bounds the analytic gate-wait walk: past this many
// boundaries the remainder books as queue wait. With CQF's two-entry
// schedules 64 boundaries span 32 cycles — far beyond any wait a
// healthy configuration produces.
const maxGateScan = 64

// gateWait returns the gate-schedule share of a wait over the local
// window [from, to): time the egress gate of queue q was closed, plus —
// for the CQF TS queues — the length-aware guard band (the last `need`
// of an open interval the gate closed again before `to`, which the
// frame could not use). Uses PeekState, so probing never perturbs the
// rollover counters bound to StateAt.
func (p *Port) gateWait(q int, from, to, need sim.Time) sim.Time {
	if to <= from {
		return 0
	}
	guard := p.isExpress(q)
	var wait sim.Time
	t := from
	for i := 0; i < maxGateScan && t < to; i++ {
		next := p.outGCL.NextBoundary(t)
		closesBeforeTo := next < to
		if next > to {
			next = to
		}
		if !p.outGCL.PeekState(t).Open(q) {
			wait += next - t
		} else if guard && closesBeforeTo {
			if g := need; g > next-t {
				wait += next - t
			} else {
				wait += g
			}
		}
		t = next
	}
	return wait
}

// claimWait attributes the popped frame's wait at this hop: the gate
// share is computed analytically from the schedule, the shaper share
// from the CBS-blocked stamp; both are clamped so their sum never
// exceeds the actual wait, leaving the remainder (HOL blocking, busy
// wire, preemption gaps) to the span's queue bucket at delivery. The
// local/engine time bases drift by the synchronized clock's rate error
// (< 1e-4), negligible against any wait worth attributing.
func (p *Port) claimWait(q int, local sim.Time, d buffering.Descriptor) {
	sw := p.sw
	blockedAt := p.shapeBlockedAt[q]
	p.shapeBlockedAt[q] = 0
	if !d.Frame.Span.Active() {
		return
	}
	wait := sw.engine.Now() - d.EnqueuedAt
	if wait <= 0 {
		return
	}
	g := p.gateWait(q, local-wait, local, ethernet.FrameTxTime(d.Frame, sw.cfg.RateFor(p.id)))
	if g > wait {
		g = wait
	}
	var s sim.Time
	if blockedAt > 0 {
		if blockedAt < d.EnqueuedAt {
			blockedAt = d.EnqueuedAt // block predates the frame
		}
		s = sw.engine.Now() - blockedAt
	}
	if s > wait-g {
		s = wait - g
	}
	if g > 0 || s > 0 {
		d.Frame.Span.Claim(g, s)
	}
}

// resumeSuspended continues a preempted frame's remaining fragment.
func (p *Port) resumeSuspended() {
	sw := p.sw
	s := p.suspended
	p.suspended = nil
	p.transmitting = true
	p.txQueue = s.queue
	sw.emit(trace.KindTxStart, p.id, s.queue, s.desc.Frame, "resume")
	p.txHandle = p.ifc.Resume(s.desc.Frame, s.remaining, func() {
		p.pool.Free(s.desc.Slot)
		sw.stats.TxFrames++
		sw.met.tx.Inc()
		p.transmitting = false
		p.txHandle = nil
		p.tryTransmit()
	})
	p.txBufSlot = s.desc.Slot
}

// armRetry schedules a re-evaluation at the next gate slot boundary if
// any queue holds a frame. Gates are the only time-dependent blockers
// besides CBS credit; CBS-blocked queues are also re-checked then (the
// slot is far longer than any credit recovery of interest).
func (p *Port) armRetry(local sim.Time) {
	if p.retryPending {
		return
	}
	pending := false
	for _, q := range p.queues {
		if q.Len() > 0 {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	p.retryPending = true
	// Convert the local-time distance to the boundary into engine time.
	// The synchronized clock's rate error is < 1e-4, i.e. < 7 ns over a
	// 65 µs slot — far below the guard band — so the distance is used
	// as-is, plus 1 ns to land strictly inside the next slot.
	delay := p.outGCL.TimeToBoundary(local) + 1
	p.sw.engine.After(delay, fmt.Sprintf("sw%d.p%d.retry", p.sw.cfg.ID, p.id), func(*sim.Engine) {
		p.retryPending = false
		p.tryTransmit()
	})
}

// QueueHighWater returns the worst-case occupancy of queue q on port
// portID, the dimensioning signal of §III.C.
func (sw *Switch) QueueHighWater(portID, q int) int {
	return sw.Port(portID).queues[q].HighWater()
}

// PoolHighWater returns the worst-case buffer occupancy of port portID.
func (sw *Switch) PoolHighWater(portID int) int {
	return sw.Port(portID).pool.HighWater()
}
