// Package meter implements the Ingress Filter template's policing
// stage: a table of token-bucket meters (Fig. 4 "Meter Tbl") that
// regulate each classified flow with its current rate, as 802.1Qci
// flow metering does. A frame that finds an empty bucket is dropped at
// ingress, protecting reserved bandwidth from misbehaving sources.
package meter

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Meter is a single-rate two-color token bucket. Tokens are bits.
type Meter struct {
	rate       ethernet.Rate // fill rate, bits/s
	burstBits  int64         // bucket capacity, bits
	tokens     int64
	lastUpdate sim.Time
	// Counters.
	passed  uint64
	dropped uint64
}

// Configure (re)initializes the meter with a rate and burst size in
// bytes. The bucket starts full.
func (m *Meter) Configure(rate ethernet.Rate, burstBytes int) {
	if rate <= 0 || burstBytes <= 0 {
		panic("meter: non-positive rate or burst")
	}
	m.rate = rate
	m.burstBits = int64(burstBytes) * 8
	m.tokens = m.burstBits
	m.lastUpdate = 0
	m.passed, m.dropped = 0, 0
}

// refill credits tokens accrued since the last update.
func (m *Meter) refill(now sim.Time) {
	if now <= m.lastUpdate {
		return
	}
	elapsed := now - m.lastUpdate
	m.lastUpdate = now
	// Saturate long idle periods before multiplying: elapsed*rate can
	// overflow int64 after ~10 s at 1 Gbps.
	fillTime := (m.burstBits*int64(sim.Second) + int64(m.rate) - 1) / int64(m.rate)
	if int64(elapsed) >= fillTime {
		m.tokens = m.burstBits
		return
	}
	m.tokens += int64(elapsed) * int64(m.rate) / int64(sim.Second)
	if m.tokens > m.burstBits {
		m.tokens = m.burstBits
	}
}

// Conform reports whether a frame of wireBytes conforms at instant now
// and, if so, consumes its tokens.
func (m *Meter) Conform(now sim.Time, wireBytes int) bool {
	if m.rate == 0 {
		panic("meter: Conform on unconfigured meter")
	}
	m.refill(now)
	need := int64(wireBytes) * 8
	if m.tokens < need {
		m.dropped++
		return false
	}
	m.tokens -= need
	m.passed++
	return true
}

// Stats returns (passed, dropped) frame counts.
func (m *Meter) Stats() (uint64, uint64) { return m.passed, m.dropped }

// Table is the meter table: a fixed-capacity array of meters indexed by
// the Meter ID produced by classification.
type Table struct {
	meters []Meter
	inUse  []bool
	// Telemetry: mark/drop decisions aggregated across the table;
	// zero values are no-ops.
	metPassed  metrics.Counter
	metDropped metrics.Counter
}

// NewTable returns a meter table with the given capacity.
func NewTable(capacity int) *Table {
	if capacity < 0 {
		panic("meter: negative capacity")
	}
	return &Table{meters: make([]Meter, capacity), inUse: make([]bool, capacity)}
}

// Instrument binds the table's mark/drop decision counters,
// aggregated across all meters.
func (t *Table) Instrument(passed, dropped metrics.Counter) {
	t.metPassed = passed
	t.metDropped = dropped
}

// Capacity returns the number of meter slots.
func (t *Table) Capacity() int { return len(t.meters) }

// Configure sets up meter id. It fails if id is out of range.
func (t *Table) Configure(id int, rate ethernet.Rate, burstBytes int) error {
	if id < 0 || id >= len(t.meters) {
		return fmt.Errorf("meter: id %d out of range [0,%d)", id, len(t.meters))
	}
	t.meters[id].Configure(rate, burstBytes)
	t.inUse[id] = true
	return nil
}

// Conform applies meter id to a frame. Frames referencing an
// unconfigured meter pass unmetered (a miss in hardware falls through).
func (t *Table) Conform(id int, now sim.Time, wireBytes int) bool {
	if id < 0 || id >= len(t.meters) || !t.inUse[id] {
		return true
	}
	ok := t.meters[id].Conform(now, wireBytes)
	if ok {
		t.metPassed.Inc()
	} else {
		t.metDropped.Inc()
	}
	return ok
}

// Used returns the number of configured meters.
func (t *Table) Used() int {
	n := 0
	for _, u := range t.inUse {
		if u {
			n++
		}
	}
	return n
}

// RequiredCapacity returns the smallest capacity that keeps every
// configured meter addressable: highest configured id + 1 (0 if none).
func (t *Table) RequiredCapacity() int {
	for id := len(t.inUse) - 1; id >= 0; id-- {
		if t.inUse[id] {
			return id + 1
		}
	}
	return 0
}

// Resize changes the table capacity in place, preserving configured
// meters and their token state — the live-reconfiguration primitive
// behind set_meter_tbl. It fails if a configured meter id would fall
// outside the new capacity.
func (t *Table) Resize(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("meter: negative capacity %d", capacity)
	}
	if req := t.RequiredCapacity(); capacity < req {
		return fmt.Errorf("meter: cannot shrink table to %d: meter %d is configured", capacity, req-1)
	}
	meters := make([]Meter, capacity)
	inUse := make([]bool, capacity)
	copy(meters, t.meters)
	copy(inUse, t.inUse)
	t.meters, t.inUse = meters, inUse
	return nil
}

// Get returns meter id for inspection, or nil if unconfigured.
func (t *Table) Get(id int) *Meter {
	if id < 0 || id >= len(t.meters) || !t.inUse[id] {
		return nil
	}
	return &t.meters[id]
}
