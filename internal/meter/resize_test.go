package meter

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

func TestRequiredCapacity(t *testing.T) {
	tbl := NewTable(8)
	if got := tbl.RequiredCapacity(); got != 0 {
		t.Fatalf("empty table requires %d", got)
	}
	if err := tbl.Configure(5, ethernet.Mbps, 1500); err != nil {
		t.Fatal(err)
	}
	if got := tbl.RequiredCapacity(); got != 6 {
		t.Fatalf("required = %d, want 6 (highest id 5)", got)
	}
	if got := tbl.Used(); got != 1 {
		t.Fatalf("used = %d", got)
	}
}

func TestMeterResize(t *testing.T) {
	tbl := NewTable(8)
	if err := tbl.Configure(5, ethernet.Mbps, 1500); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Resize(5); err == nil {
		t.Fatal("shrink below configured meter accepted")
	}
	if err := tbl.Resize(6); err != nil {
		t.Fatal(err)
	}
	if tbl.Capacity() != 6 {
		t.Fatalf("capacity = %d", tbl.Capacity())
	}
	// Meter 5's state survives the resize.
	if !tbl.Conform(5, 0, 100) {
		t.Fatal("configured meter lost its token bucket")
	}
	// Grow after shrink: new ids start clean, no stale inUse bits.
	if err := tbl.Resize(8); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Used(); got != 1 {
		t.Fatalf("used after grow = %d", got)
	}
	if err := tbl.Configure(7, ethernet.Mbps, 1500); err != nil {
		t.Fatal(err)
	}
}
