package meter

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestMeterConformWithinBurst(t *testing.T) {
	var m Meter
	m.Configure(10*ethernet.Mbps, 3000)
	// Bucket starts full: a 1500B frame conforms immediately.
	if !m.Conform(0, 1500) {
		t.Fatal("first frame within burst dropped")
	}
	if !m.Conform(0, 1500) {
		t.Fatal("second frame within burst dropped")
	}
	// Bucket now empty: a third immediate frame must drop.
	if m.Conform(0, 64) {
		t.Fatal("frame beyond burst passed")
	}
}

func TestMeterRefill(t *testing.T) {
	var m Meter
	m.Configure(8*ethernet.Mbps, 1000) // 8 Mbps = 1 byte/µs
	if !m.Conform(0, 1000) {
		t.Fatal("initial burst dropped")
	}
	// After 500 µs, 500 bytes of tokens are back.
	if m.Conform(500*sim.Microsecond, 600) {
		t.Fatal("600B passed with only 500B of tokens")
	}
	if !m.Conform(500*sim.Microsecond, 500) {
		t.Fatal("500B dropped with 500B of tokens")
	}
}

func TestMeterCapsAtBurst(t *testing.T) {
	var m Meter
	m.Configure(ethernet.Gbps, 2000)
	// A long idle period must not accumulate more than the burst.
	if !m.Conform(10*sim.Second, 2000) {
		t.Fatal("burst-sized frame dropped after idle")
	}
	if m.Conform(10*sim.Second, 64) {
		t.Fatal("tokens exceeded burst cap")
	}
}

func TestMeterLongRunRate(t *testing.T) {
	// Over 1 s, a 100 Mbps meter should pass ~100 Mbit regardless of
	// offered load pattern.
	var m Meter
	m.Configure(100*ethernet.Mbps, 12000)
	passedBits := 0
	for us := 0; us < 1_000_000; us += 100 {
		if m.Conform(sim.Time(us)*sim.Microsecond, 1250) {
			passedBits += 1250 * 8
		}
	}
	got := float64(passedBits) / 1e6 // Mbit over 1 s
	if got < 99 || got > 101.1 {
		t.Fatalf("passed %.1f Mbit in 1s through 100 Mbps meter", got)
	}
}

func TestMeterStats(t *testing.T) {
	var m Meter
	m.Configure(ethernet.Mbps, 100)
	m.Conform(0, 100)
	m.Conform(0, 100)
	p, d := m.Stats()
	if p != 1 || d != 1 {
		t.Fatalf("Stats = (%d,%d), want (1,1)", p, d)
	}
}

func TestMeterPanics(t *testing.T) {
	var m Meter
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero rate Configure did not panic")
			}
		}()
		m.Configure(0, 100)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Conform on unconfigured meter did not panic")
			}
		}()
		(&Meter{}).Conform(0, 64)
	}()
}

func TestTableConfigureAndConform(t *testing.T) {
	tbl := NewTable(4)
	if err := tbl.Configure(2, ethernet.Mbps, 200); err != nil {
		t.Fatal(err)
	}
	if !tbl.Conform(2, 0, 200) {
		t.Fatal("conforming frame dropped")
	}
	if tbl.Conform(2, 0, 200) {
		t.Fatal("non-conforming frame passed")
	}
}

func TestTableUnconfiguredPasses(t *testing.T) {
	tbl := NewTable(4)
	if !tbl.Conform(1, 0, 1500) {
		t.Fatal("unconfigured meter dropped a frame")
	}
	if !tbl.Conform(-1, 0, 1500) || !tbl.Conform(99, 0, 1500) {
		t.Fatal("out-of-range meter ID dropped a frame")
	}
}

func TestTableConfigureOutOfRange(t *testing.T) {
	tbl := NewTable(2)
	if err := tbl.Configure(2, ethernet.Mbps, 100); err == nil {
		t.Fatal("out-of-range Configure succeeded")
	}
	if err := tbl.Configure(-1, ethernet.Mbps, 100); err == nil {
		t.Fatal("negative Configure succeeded")
	}
}

func TestTableGet(t *testing.T) {
	tbl := NewTable(2)
	if tbl.Get(0) != nil {
		t.Fatal("Get of unconfigured meter non-nil")
	}
	_ = tbl.Configure(0, ethernet.Mbps, 100)
	if tbl.Get(0) == nil {
		t.Fatal("Get of configured meter nil")
	}
}

// Property: a meter never passes more than burst + rate*t bits over any
// horizon t.
func TestMeterConservationProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		var m Meter
		const burst = 5000
		rate := 10 * ethernet.Mbps
		m.Configure(rate, burst)
		now := sim.Time(0)
		passedBits := int64(0)
		for _, s := range sizes {
			size := int(s%1500) + 64
			now += 50 * sim.Microsecond
			if m.Conform(now, size) {
				passedBits += int64(size) * 8
			}
		}
		budget := int64(burst)*8 + int64(now)*int64(rate)/int64(sim.Second)
		return passedBits <= budget
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
