// Package itp implements Injection Time Planning, the flow-scheduling
// mechanism of the authors' companion paper ([24], INFOCOM 2020) that
// the evaluation's queue-depth choice rests on ("the queue depth is 8
// here with our flow scheduling algorithm").
//
// Under CQF, a packet injected in slot s occupies the TS queue of hop
// h's egress port during slot s+h. If every flow injects at phase 0,
// all packets of a switch pile into the same slot and the queue depth
// must cover the whole flow count. ITP staggers each flow's injection
// offset within its period so that per-(port, slot) occupancy — and
// therefore the required queue depth and buffer count — stays small.
//
// The planner here is the greedy heuristic: flows are placed one at a
// time, each choosing the offset that minimizes the worst occupancy the
// flow would create along its own path.
package itp

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// maxHyperperiod caps the planning grid; beyond it the schedule folds
// onto the largest period (a safe over-approximation of occupancy).
const maxHyperperiod = 1 << 16

// CellKey identifies the queueing point of flow spec at hop index hop
// (0-based within spec.Path). The default keys by switch ID alone,
// which conservatively merges all ports of a switch; testbeds supply a
// port-aware function.
type CellKey func(spec *flows.Spec, hop int) string

// DefaultCellKey keys by the switch at the hop.
func DefaultCellKey(spec *flows.Spec, hop int) string {
	return fmt.Sprintf("sw%d", spec.Path[hop])
}

// Plan is the planner's result.
type Plan struct {
	// Offsets maps flow ID to its injection offset within the period
	// (a whole number of slots).
	Offsets map[uint32]sim.Time
	// MaxOccupancy is the worst packets-per-slot of any queueing point:
	// the queue depth the network needs.
	MaxOccupancy int
	// PerCell reports the worst occupancy per queueing point.
	PerCell map[string]int
	// Slot echoes the slot size planned against.
	Slot sim.Time
}

// gcd/lcm over int64.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	g := gcd(a, b)
	l := a / g * b
	if l <= 0 || l > maxHyperperiod {
		return 0 // overflow sentinel; caller caps
	}
	return l
}

// Compute plans offsets for the TS flows in specs. Non-TS flows are
// ignored. slot is the CQF slot size; key may be nil for
// DefaultCellKey. Flows must have non-empty paths.
func Compute(specs []*flows.Spec, slot sim.Time, key CellKey) (*Plan, error) {
	if slot <= 0 {
		return nil, fmt.Errorf("itp: non-positive slot %v", slot)
	}
	if key == nil {
		key = DefaultCellKey
	}
	var ts []*flows.Spec
	for _, s := range specs {
		if s.Class != ethernet.ClassTS || s.Period <= 0 {
			continue
		}
		if len(s.Path) == 0 {
			return nil, fmt.Errorf("itp: flow %d has no path", s.ID)
		}
		if s.Period < slot {
			return nil, fmt.Errorf("itp: flow %d period %v below slot %v", s.ID, s.Period, slot)
		}
		ts = append(ts, s)
	}
	plan := &Plan{
		Offsets: make(map[uint32]sim.Time),
		PerCell: make(map[string]int),
		Slot:    slot,
	}
	if len(ts) == 0 {
		return plan, nil
	}

	// Periods in slots (floor: conservative — occupancy repeats at
	// least this often).
	periodSlots := make(map[uint32]int64, len(ts))
	var hyper int64 = 1
	for _, s := range ts {
		p := int64(s.Period / slot)
		if p < 1 {
			p = 1
		}
		periodSlots[s.ID] = p
		if hyper != 0 {
			hyper = lcm(hyper, p)
		}
	}
	if hyper == 0 {
		// Cap: fold onto the largest period.
		for _, p := range periodSlots {
			if p > hyper {
				hyper = p
			}
		}
	}

	// Plan longest-period flows first: they have the most offset
	// freedom relative to their footprint, and short-period flows are
	// the binding constraint placed against an almost-final grid.
	order := append([]*flows.Spec(nil), ts...)
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := periodSlots[order[i].ID], periodSlots[order[j].ID]
		if pi != pj {
			return pi > pj
		}
		return order[i].ID < order[j].ID
	})

	grid := make(map[string][]int)
	cells := func(s *flows.Spec) []string {
		out := make([]string, len(s.Path))
		for h := range s.Path {
			out[h] = key(s, h)
		}
		return out
	}
	for _, s := range order {
		p := periodSlots[s.ID]
		reps := hyper / p
		ck := cells(s)
		for _, c := range ck {
			if grid[c] == nil {
				grid[c] = make([]int, hyper)
			}
		}
		bestOffset, bestWorst, bestSum := int64(0), int(1<<30), int(1<<30)
		for o := int64(0); o < p; o++ {
			worst, sum := 0, 0
			for h, c := range ck {
				row := grid[c]
				for r := int64(0); r < reps; r++ {
					idx := (o + int64(h) + r*p) % hyper
					v := row[idx] + 1
					sum += v
					if v > worst {
						worst = v
					}
				}
			}
			if worst < bestWorst || (worst == bestWorst && sum < bestSum) {
				bestOffset, bestWorst, bestSum = o, worst, sum
			}
		}
		for h, c := range ck {
			row := grid[c]
			for r := int64(0); r < reps; r++ {
				row[(bestOffset+int64(h)+r*p)%hyper]++
			}
		}
		plan.Offsets[s.ID] = sim.Time(bestOffset) * slot
	}

	for c, row := range grid {
		worst := 0
		for _, v := range row {
			if v > worst {
				worst = v
			}
		}
		plan.PerCell[c] = worst
		if worst > plan.MaxOccupancy {
			plan.MaxOccupancy = worst
		}
	}
	return plan, nil
}

// Apply writes the planned offsets into the specs.
func (p *Plan) Apply(specs []*flows.Spec) {
	for _, s := range specs {
		if off, ok := p.Offsets[s.ID]; ok {
			s.Offset = off
		}
	}
}

// Occupancy evaluates the worst per-cell occupancy of specs using the
// offsets already present in the specs (e.g. all-zero for the naive
// baseline the ablation compares against).
func Occupancy(specs []*flows.Spec, slot sim.Time, key CellKey) (int, error) {
	if key == nil {
		key = DefaultCellKey
	}
	if slot <= 0 {
		return 0, fmt.Errorf("itp: non-positive slot %v", slot)
	}
	// Hyperperiod over all TS flows, as in Compute.
	var hyper int64 = 1
	periodSlots := make(map[uint32]int64)
	var ts []*flows.Spec
	for _, s := range specs {
		if s.Class != ethernet.ClassTS || s.Period <= 0 || len(s.Path) == 0 {
			continue
		}
		p := int64(s.Period / slot)
		if p < 1 {
			p = 1
		}
		ts = append(ts, s)
		periodSlots[s.ID] = p
		if hyper != 0 {
			hyper = lcm(hyper, p)
		}
	}
	if hyper == 0 {
		for _, p := range periodSlots {
			if p > hyper {
				hyper = p
			}
		}
	}
	grid := make(map[string][]int)
	worst := 0
	for _, s := range ts {
		p := periodSlots[s.ID]
		o := int64(s.Offset / slot)
		for h := range s.Path {
			c := key(s, h)
			if grid[c] == nil {
				grid[c] = make([]int, hyper)
			}
			for r := int64(0); r < hyper/p; r++ {
				idx := (o + int64(h) + r*p) % hyper
				grid[c][idx]++
				if grid[c][idx] > worst {
					worst = grid[c][idx]
				}
			}
		}
	}
	return worst, nil
}
