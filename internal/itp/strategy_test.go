package itp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
)

func strategyWorkload() []*flows.Spec {
	// 200 flows over 3 shared switches, 100-slot period.
	specs := make([]*flows.Spec, 200)
	for i := range specs {
		specs[i] = &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 64,
			Period: 100 * slot, Path: []int{i % 3, (i + 1) % 3},
		}
	}
	return specs
}

func TestStrategyOrdering(t *testing.T) {
	specs := strategyWorkload()
	occ := map[Strategy]int{}
	for _, s := range []Strategy{StrategyGreedy, StrategyRoundRobin, StrategyRandom, StrategyNaive} {
		plan, err := ComputeWith(specs, slot, nil, s, 7)
		if err != nil {
			t.Fatal(err)
		}
		occ[s] = plan.MaxOccupancy
		t.Logf("%-12s occupancy %d", s, plan.MaxOccupancy)
	}
	// Naive concentrates each switch's hop-0 flows into one slot:
	// ~200×2/3 path visits over 3 switches split across 2 hop phases
	// ≈ 67 per cell.
	if occ[StrategyNaive] < 60 {
		t.Fatalf("naive occupancy = %d, want ~67", occ[StrategyNaive])
	}
	if occ[StrategyGreedy] > occ[StrategyRandom] {
		t.Fatalf("greedy (%d) worse than random (%d)", occ[StrategyGreedy], occ[StrategyRandom])
	}
	if occ[StrategyRandom] >= occ[StrategyNaive] {
		t.Fatalf("random (%d) not better than naive (%d)", occ[StrategyRandom], occ[StrategyNaive])
	}
	if occ[StrategyRoundRobin] >= occ[StrategyNaive] {
		t.Fatal("round-robin not better than naive")
	}
}

func TestStrategyDoesNotMutateSpecs(t *testing.T) {
	specs := strategyWorkload()
	specs[0].Offset = 42 * slot
	if _, err := ComputeWith(specs, slot, nil, StrategyRandom, 1); err != nil {
		t.Fatal(err)
	}
	if specs[0].Offset != 42*slot {
		t.Fatal("ComputeWith mutated spec offsets")
	}
}

func TestStrategyDeterministicRandom(t *testing.T) {
	specs := strategyWorkload()
	a, err := ComputeWith(specs, slot, nil, StrategyRandom, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeWith(specs, slot, nil, StrategyRandom, 9)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Offsets {
		if a.Offsets[id] != b.Offsets[id] {
			t.Fatal("random strategy not seed-deterministic")
		}
	}
}

func TestStrategyErrors(t *testing.T) {
	if _, err := ComputeWith(nil, 0, nil, StrategyNaive, 0); err == nil {
		t.Error("zero slot accepted")
	}
	noPath := []*flows.Spec{{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: slot}}
	if _, err := ComputeWith(noPath, slot, nil, StrategyRandom, 0); err == nil {
		t.Error("flow without path accepted")
	}
	if _, err := ComputeWith(nil, slot, nil, Strategy(99), 0); err != nil {
		// Empty spec list never reaches the strategy switch; force it.
		t.Skip()
	}
	bad := strategyWorkload()[:1]
	if _, err := ComputeWith(bad, slot, nil, Strategy(99), 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{StrategyGreedy, StrategyRoundRobin, StrategyRandom, StrategyNaive} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatal("unknown strategy formatting")
	}
}

func TestGreedyViaComputeWithMatchesCompute(t *testing.T) {
	specs := strategyWorkload()
	a, err := ComputeWith(specs, slot, nil, StrategyGreedy, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxOccupancy != b.MaxOccupancy {
		t.Fatalf("greedy wrapper occupancy %d != direct %d", a.MaxOccupancy, b.MaxOccupancy)
	}
}
