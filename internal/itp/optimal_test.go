package itp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// bruteForceOptimal exhaustively searches all offset assignments of the
// given (tiny) instance and returns the minimum achievable worst
// occupancy. Exponential — test instances only.
func bruteForceOptimal(t *testing.T, specs []*flows.Spec, slot sim.Time) int {
	t.Helper()
	periods := make([]int64, len(specs))
	for i, s := range specs {
		periods[i] = int64(s.Period / slot)
	}
	saved := make([]sim.Time, len(specs))
	for i, s := range specs {
		saved[i] = s.Offset
	}
	defer func() {
		for i, s := range specs {
			s.Offset = saved[i]
		}
	}()

	best := 1 << 30
	var rec func(i int)
	rec = func(i int) {
		if i == len(specs) {
			occ, err := Occupancy(specs, slot, nil)
			if err != nil {
				t.Fatal(err)
			}
			if occ < best {
				best = occ
			}
			return
		}
		for o := int64(0); o < periods[i]; o++ {
			specs[i].Offset = sim.Time(o) * slot
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// tinyInstance builds n flows with the given periods (in slots) over
// shared single-switch paths.
func tinyInstance(periodsInSlots []int64) []*flows.Spec {
	specs := make([]*flows.Spec, len(periodsInSlots))
	for i, p := range periodsInSlots {
		specs[i] = &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 64,
			Period: sim.Time(p) * slot, Path: []int{0},
		}
	}
	return specs
}

// TestGreedyMatchesOptimalOnTinyInstances compares the greedy planner
// against exhaustive search on every instance small enough to
// enumerate. Greedy need not be optimal in general, but on these
// single-resource instances it should be — and must never be worse
// than 2× optimal.
func TestGreedyMatchesOptimalOnTinyInstances(t *testing.T) {
	cases := [][]int64{
		{2, 2},
		{2, 2, 2},
		{2, 2, 2, 2, 2},
		{4, 4, 2},
		{4, 2, 2, 4},
		{3, 3, 3},
		{6, 3, 2},
		{4, 4, 4, 4, 2},
	}
	for _, periods := range cases {
		specs := tinyInstance(periods)
		plan, err := Compute(specs, slot, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceOptimal(t, specs, slot)
		if plan.MaxOccupancy > 2*opt {
			t.Errorf("periods %v: greedy %d > 2× optimal %d", periods, plan.MaxOccupancy, opt)
		}
		if plan.MaxOccupancy > opt {
			t.Logf("periods %v: greedy %d vs optimal %d (suboptimal but within bound)",
				periods, plan.MaxOccupancy, opt)
		}
	}
}

// TestGreedyOptimalTwoHop checks a multi-resource instance where hop
// shifts matter.
func TestGreedyOptimalTwoHop(t *testing.T) {
	specs := []*flows.Spec{
		{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{0, 1}},
		{ID: 2, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{1, 0}},
		{ID: 3, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{0}},
	}
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteForceOptimal(t, specs, slot)
	if plan.MaxOccupancy != opt {
		t.Errorf("greedy %d vs optimal %d", plan.MaxOccupancy, opt)
	}
}
