package itp

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Strategy selects the offset-assignment algorithm. The paper's §V
// frames parameter selection as an optimization problem and invites
// alternative algorithms over the same abstraction; these strategies
// span the design space the ablation compares.
type Strategy int

// Available strategies.
const (
	// StrategyGreedy is the first-fit minimizing per-cell occupancy
	// (the default planner).
	StrategyGreedy Strategy = iota
	// StrategyRoundRobin spreads flows evenly over the period without
	// looking at paths.
	StrategyRoundRobin
	// StrategyRandom draws offsets uniformly (seeded).
	StrategyRandom
	// StrategyNaive injects everything at offset zero (the worst case).
	StrategyNaive
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyGreedy:
		return "greedy"
	case StrategyRoundRobin:
		return "round-robin"
	case StrategyRandom:
		return "random"
	case StrategyNaive:
		return "naive"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ComputeWith plans injection offsets using the given strategy and
// evaluates the resulting worst-case occupancy. StrategyGreedy
// delegates to Compute; the others assign offsets first and then
// measure.
func ComputeWith(specs []*flows.Spec, slot sim.Time, key CellKey, strategy Strategy, seed uint64) (*Plan, error) {
	if strategy == StrategyGreedy {
		return Compute(specs, slot, key)
	}
	if slot <= 0 {
		return nil, fmt.Errorf("itp: non-positive slot %v", slot)
	}
	var ts []*flows.Spec
	for _, s := range specs {
		if s.Class != ethernet.ClassTS || s.Period <= 0 {
			continue
		}
		if len(s.Path) == 0 {
			return nil, fmt.Errorf("itp: flow %d has no path", s.ID)
		}
		if s.Period < slot {
			return nil, fmt.Errorf("itp: flow %d period %v below slot %v", s.ID, s.Period, slot)
		}
		ts = append(ts, s)
	}
	plan := &Plan{
		Offsets: make(map[uint32]sim.Time),
		PerCell: make(map[string]int),
		Slot:    slot,
	}
	// Deterministic order.
	order := append([]*flows.Spec(nil), ts...)
	sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	rng := sim.NewRand(seed)
	for i, s := range order {
		p := int64(s.Period / slot)
		if p < 1 {
			p = 1
		}
		var o int64
		switch strategy {
		case StrategyRoundRobin:
			o = int64(i) % p
		case StrategyRandom:
			o = rng.Int63n(p)
		case StrategyNaive:
			o = 0
		default:
			return nil, fmt.Errorf("itp: unknown strategy %d", strategy)
		}
		plan.Offsets[s.ID] = sim.Time(o) * slot
	}
	// Evaluate the assignment.
	saved := make(map[uint32]sim.Time, len(ts))
	for _, s := range ts {
		saved[s.ID] = s.Offset
		s.Offset = plan.Offsets[s.ID]
	}
	occ, err := Occupancy(specs, slot, key)
	for _, s := range ts {
		s.Offset = saved[s.ID]
	}
	if err != nil {
		return nil, err
	}
	plan.MaxOccupancy = occ
	return plan, nil
}
