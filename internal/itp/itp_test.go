package itp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

const slot = 65 * sim.Microsecond

// mkFlows builds n TS flows with the given period sharing one path.
func mkFlows(n int, period sim.Time, path []int) []*flows.Spec {
	out := make([]*flows.Spec, n)
	for i := range out {
		out[i] = &flows.Spec{
			ID:       uint32(i + 1),
			Class:    ethernet.ClassTS,
			WireSize: 64,
			Period:   period,
			Path:     append([]int(nil), path...),
		}
	}
	return out
}

func TestSpreadsUniformFlows(t *testing.T) {
	// 100 flows, period = 100 slots, one shared switch: ITP should
	// place one flow per slot (occupancy 1).
	specs := mkFlows(100, 100*slot, []int{0})
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 1 {
		t.Fatalf("MaxOccupancy = %d, want 1", plan.MaxOccupancy)
	}
	// Offsets must be distinct multiples of the slot.
	seen := map[sim.Time]bool{}
	for id, off := range plan.Offsets {
		if off%slot != 0 {
			t.Fatalf("flow %d offset %v not slot-aligned", id, off)
		}
		if seen[off] {
			t.Fatalf("offset %v reused", off)
		}
		seen[off] = true
	}
}

func TestPigeonholeOccupancy(t *testing.T) {
	// 150 flows into 50 slots: at least 3 per slot; greedy should hit
	// exactly 3.
	specs := mkFlows(150, 50*slot, []int{0})
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 3 {
		t.Fatalf("MaxOccupancy = %d, want 3", plan.MaxOccupancy)
	}
}

func TestNaiveVersusPlanned(t *testing.T) {
	// The ablation: zero offsets concentrate everything in one slot.
	specs := mkFlows(64, 64*slot, []int{0, 1, 2})
	naive, err := Occupancy(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if naive != 64 {
		t.Fatalf("naive occupancy = %d, want 64", naive)
	}
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 1 {
		t.Fatalf("planned occupancy = %d, want 1", plan.MaxOccupancy)
	}
	plan.Apply(specs)
	evaluated, err := Occupancy(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if evaluated != plan.MaxOccupancy {
		t.Fatalf("Occupancy re-evaluation = %d, plan said %d", evaluated, plan.MaxOccupancy)
	}
}

func TestMultiHopShift(t *testing.T) {
	// Two flows on overlapping paths: flow A hits switch 1 at slot
	// o_A+1, flow B at o_B. The planner must keep them apart.
	a := &flows.Spec{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{0, 1}}
	b := &flows.Spec{ID: 2, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{1}}
	plan, err := Compute([]*flows.Spec{a, b}, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 1 {
		t.Fatalf("MaxOccupancy = %d, want 1 (offsets %v)", plan.MaxOccupancy, plan.Offsets)
	}
}

func TestMixedPeriods(t *testing.T) {
	// Periods 2 and 4 slots: hyperperiod 4. Four flows of period 2
	// fill every slot twice... capacity: period-2 flows each occupy 2
	// of 4 slots; two such flows + two period-4 flows can reach
	// occupancy 1 only if slots suffice: 2*2 + 2*1 = 6 > 4 → min 2.
	specs := []*flows.Spec{
		{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{0}},
		{ID: 2, Class: ethernet.ClassTS, WireSize: 64, Period: 2 * slot, Path: []int{0}},
		{ID: 3, Class: ethernet.ClassTS, WireSize: 64, Period: 4 * slot, Path: []int{0}},
		{ID: 4, Class: ethernet.ClassTS, WireSize: 64, Period: 4 * slot, Path: []int{0}},
	}
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 2 {
		t.Fatalf("MaxOccupancy = %d, want 2", plan.MaxOccupancy)
	}
}

func TestOffsetsWithinPeriod(t *testing.T) {
	specs := mkFlows(32, 10*sim.Millisecond, []int{0, 1})
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, off := range plan.Offsets {
		if off < 0 || off >= 10*sim.Millisecond {
			t.Fatalf("flow %d offset %v outside period", id, off)
		}
	}
	plan.Apply(specs)
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPortAwareCellKey(t *testing.T) {
	// Two flows through switch 0 but out different ports must not
	// constrain each other when the key is port-aware.
	a := &flows.Spec{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: 1 * slot, Path: []int{0}}
	b := &flows.Spec{ID: 2, Class: ethernet.ClassTS, WireSize: 64, Period: 1 * slot, Path: []int{0}}
	portOf := map[uint32]int{1: 0, 2: 1}
	key := func(s *flows.Spec, hop int) string {
		return DefaultCellKey(s, hop) + string(rune('a'+portOf[s.ID]))
	}
	plan, err := Compute([]*flows.Spec{a, b}, slot, key)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy != 1 {
		t.Fatalf("port-aware occupancy = %d, want 1", plan.MaxOccupancy)
	}
	// Same setup with the default key shares the cell: occupancy 2
	// (period is one slot; both flows land in it).
	plan2, err := Compute([]*flows.Spec{a, b}, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.MaxOccupancy != 2 {
		t.Fatalf("shared-cell occupancy = %d, want 2", plan2.MaxOccupancy)
	}
}

func TestPaperWorkloadOccupancy(t *testing.T) {
	// 1024 flows, 10 ms period (153 slots at 65 µs), 6-switch ring
	// paths of ≤ 4 hops: queue depth demand must be far below the
	// naive 1024 and within the paper's customized depth of 12.
	specs := make([]*flows.Spec, 1024)
	for i := range specs {
		src := i % 6
		hops := 1 + i%4
		path := make([]int, hops)
		for h := range path {
			path[h] = (src + h) % 6
		}
		specs[i] = &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 64,
			Period: 10 * sim.Millisecond, Path: path,
		}
	}
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy > 12 {
		t.Fatalf("paper workload occupancy = %d, exceeds customized depth 12", plan.MaxOccupancy)
	}
	t.Logf("1024-flow ring occupancy: %d (naive would be up to 1024)", plan.MaxOccupancy)
}

func TestErrors(t *testing.T) {
	if _, err := Compute(nil, 0, nil); err == nil {
		t.Error("zero slot accepted")
	}
	noPath := []*flows.Spec{{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: slot}}
	if _, err := Compute(noPath, slot, nil); err == nil {
		t.Error("flow without path accepted")
	}
	tiny := []*flows.Spec{{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: slot / 2, Path: []int{0}}}
	if _, err := Compute(tiny, slot, nil); err == nil {
		t.Error("sub-slot period accepted")
	}
	if _, err := Occupancy(nil, 0, nil); err == nil {
		t.Error("Occupancy zero slot accepted")
	}
}

func TestNonTSIgnored(t *testing.T) {
	specs := []*flows.Spec{
		flows.Background(9, ethernet.ClassBE, 0, 1, 1, ethernet.Mbps),
	}
	plan, err := Compute(specs, slot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Offsets) != 0 || plan.MaxOccupancy != 0 {
		t.Fatalf("BE flow planned: %+v", plan)
	}
}
