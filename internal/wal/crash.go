package wal

import (
	"os"
	"sync/atomic"
)

// The crash hook is the chaos campaign's deterministic kill point: a
// subprocess armed via ArmCrash dies hard — os.Exit, no deferred
// cleanup, no final sync — immediately after its Nth WAL append, so a
// fixed seed hits every offset of the intent → commit path (after the
// intent record, between intent and commit, after the commit record
// but before its fsync). With torn set, the process additionally
// writes a deliberately incomplete frame first, exercising the
// torn-tail truncation rule on recovery.
//
// The hook is process-global and test-only by construction: a serving
// control plane never arms it.
var (
	crashAfter atomic.Int64 // remaining appends before the crash; 0 = disarmed
	crashTorn  atomic.Bool
)

// CrashExitCode is the armed crash's exit code, chosen to look like a
// SIGKILL'd process to the campaign driver.
const CrashExitCode = 137

// ArmCrash arms the process to exit hard after n more WAL appends
// (n <= 0 disarms). With torn set, a partial frame — a valid header
// whose payload is cut short — is written before the exit.
func ArmCrash(n int64, torn bool) {
	if n <= 0 {
		crashAfter.Store(0)
		crashTorn.Store(false)
		return
	}
	crashAfter.Store(n)
	crashTorn.Store(torn)
}

// crashStep counts one append against the armed crash point.
func crashStep(f *os.File) {
	if crashAfter.Load() == 0 {
		return
	}
	if crashAfter.Add(-1) != 0 {
		return
	}
	if crashTorn.Load() {
		// A frame header promising 64 payload bytes, followed by only a
		// few: recovery must truncate here, never error.
		torn := AppendFrame(nil, make([]byte, 64))[:headerSize+5]
		_, _ = f.Write(torn)
	}
	os.Exit(CrashExitCode)
}
