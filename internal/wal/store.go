package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store is a crash-consistent directory of one checkpoint plus the WAL
// tail written since it. Both carry a generation number g:
//
//	checkpoint-<g>.ckpt   one framed record (the caller's snapshot)
//	wal-<g>.log           framed records appended after that snapshot
//
// Checkpoint writes the next generation's snapshot to a temp file,
// fsyncs it, renames it into place (the atomic cutover), fsyncs the
// directory, creates the new empty WAL and only then deletes the old
// generation — so a crash at any instant leaves either the old
// generation fully intact or the new one recoverable. Recovery picks
// the highest validly-framed checkpoint and replays its WAL; files of
// any other generation are stale and removed.
//
// Store methods are not goroutine-safe; the control plane's
// single-writer loop is the only caller.
type Store struct {
	dir string
	gen uint64
	w   *Writer
}

// Recovered is what OpenStore found on disk: the latest checkpoint
// snapshot (nil when the directory is fresh) and the WAL records
// appended after it, in order.
type Recovered struct {
	Checkpoint []byte
	Records    [][]byte
}

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
	walPrefix        = "wal-"
	walSuffix        = ".log"
	tmpSuffix        = ".tmp"
)

func checkpointName(gen uint64) string {
	return checkpointPrefix + strconv.FormatUint(gen, 10) + checkpointSuffix
}

func walName(gen uint64) string {
	return walPrefix + strconv.FormatUint(gen, 10) + walSuffix
}

// parseGen extracts the generation from a store file name, reporting
// whether it matched the prefix/suffix shape.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return g, err == nil
}

// OpenStore opens (creating if needed) the store at dir and recovers
// its contents: highest valid checkpoint, then the matching WAL with
// its torn tail truncated. Interior corruption in either file fails
// the open loudly — a store that lies is worse than one that refuses.
func OpenStore(dir string) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: store dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: store dir: %w", err)
	}
	var ckptGens, walGens []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A checkpoint that never reached its rename: dead on arrival.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if g, ok := parseGen(name, checkpointPrefix, checkpointSuffix); ok {
			ckptGens = append(ckptGens, g)
		}
		if g, ok := parseGen(name, walPrefix, walSuffix); ok {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(ckptGens, func(i, j int) bool { return ckptGens[i] > ckptGens[j] })

	rec := &Recovered{}
	gen := uint64(1)
	if len(ckptGens) > 0 {
		gen = ckptGens[0]
		snap, err := readCheckpoint(filepath.Join(dir, checkpointName(gen)))
		if err != nil {
			return nil, nil, err
		}
		rec.Checkpoint = snap
	}
	w, records, err := OpenWriter(filepath.Join(dir, walName(gen)))
	if err != nil {
		return nil, nil, err
	}
	rec.Records = records
	s := &Store{dir: dir, gen: gen, w: w}
	// Every other generation is stale: superseded checkpoints, or a WAL
	// whose checkpoint already absorbed it mid-rotation.
	for _, g := range ckptGens[min(1, len(ckptGens)):] {
		_ = os.Remove(filepath.Join(dir, checkpointName(g)))
	}
	for _, g := range walGens {
		if g != gen {
			_ = os.Remove(filepath.Join(dir, walName(g)))
		}
	}
	if err := s.syncDir(); err != nil {
		w.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// readCheckpoint reads the single framed snapshot record a checkpoint
// file holds, validating its checksum.
func readCheckpoint(path string) ([]byte, error) {
	records, valid, err := ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(path), err)
	}
	info, statErr := os.Stat(path)
	if statErr != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(path), statErr)
	}
	// A checkpoint is renamed into place whole: a torn or multi-record
	// checkpoint file was never written by us.
	if len(records) != 1 || valid != info.Size() {
		return nil, &CorruptError{Offset: valid, Reason: fmt.Sprintf("checkpoint %s is not one whole record", filepath.Base(path))}
	}
	return records[0], nil
}

// Append appends one record to the current WAL generation. Durable
// only after Sync.
func (s *Store) Append(payload []byte) error { return s.w.Append(payload) }

// Sync makes every appended record durable — the commit point.
func (s *Store) Sync() error { return s.w.Sync() }

// Checkpoint atomically replaces the store's contents with snapshot
// and rotates to a fresh, empty WAL. On return the snapshot is
// durable and the previous generation is gone.
func (s *Store) Checkpoint(snapshot []byte) error {
	next := s.gen + 1
	final := filepath.Join(s.dir, checkpointName(next))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(AppendFrame(nil, snapshot)); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable under the new generation; cut the WAL
	// over and drop the superseded files.
	w, records, err := OpenWriter(filepath.Join(s.dir, walName(next)))
	if err != nil {
		return err
	}
	if len(records) != 0 {
		w.Close()
		return fmt.Errorf("wal: rotation found %d records in fresh wal-%d", len(records), next)
	}
	old := s.gen
	oldW := s.w
	s.w, s.gen = w, next
	_ = oldW.Close()
	_ = os.Remove(filepath.Join(s.dir, walName(old)))
	_ = os.Remove(filepath.Join(s.dir, checkpointName(old)))
	return s.syncDir()
}

// syncDir fsyncs the store directory so renames and creates are
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Gen returns the current generation (tests and diagnostics).
func (s *Store) Gen() uint64 { return s.gen }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the store.
func (s *Store) Close() error { return s.w.Close() }
