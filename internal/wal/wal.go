// Package wal is the durability layer under the TSN-as-a-Service
// control plane: a length-prefixed, CRC32C-framed write-ahead log plus
// a generation-rotated directory store with atomically-renamed
// checkpoints.
//
// The framing rule set is small and deliberate:
//
//   - every record is [4-byte LE payload length][4-byte LE CRC32C of
//     the payload][payload], appended with a single write;
//   - a *torn tail* — the incomplete final frame a crash mid-append
//     leaves behind — is silently truncated at the last complete
//     record: a partial header, a payload shorter than its length
//     prefix, or a checksum mismatch on the frame that ends exactly at
//     end-of-file all count as torn;
//   - *interior* corruption — a frame whose checksum fails (or whose
//     length prefix is implausible) while more bytes follow it — is a
//     loud, typed *CorruptError: it means a committed record rotted or
//     was overwritten, and recovery must never silently drop committed
//     state.
//
// Appends are buffered by the OS; Sync is the commit point. The
// contract callers build on: a record is durable once Sync returned,
// and every record before a durable record is durable too (frames are
// strictly sequential).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// headerSize is the per-record frame overhead: length + CRC32C.
const headerSize = 8

// MaxRecord bounds a single record's payload. Control-plane records
// are small JSON documents; anything near this bound in a frame header
// is corruption, not data.
const MaxRecord = 16 << 20

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 one —
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports interior corruption: a record that was once
// committed no longer checks out, with valid bytes following it. It is
// never returned for a torn tail.
type CorruptError struct {
	// Offset is the byte offset of the corrupt frame.
	Offset int64
	// Reason describes what failed (checksum, length prefix).
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: interior corruption at offset %d: %s", e.Offset, e.Reason)
}

// Scan parses every complete record out of data. It returns the
// records, the byte length of the valid prefix (the torn-tail
// truncation point), and a *CorruptError if a non-final frame fails
// validation. On error, records and valid still describe the trusted
// prefix before the corrupt frame.
func Scan(data []byte) (records [][]byte, valid int64, err error) {
	size := int64(len(data))
	var off int64
	for {
		rest := size - off
		if rest == 0 {
			return records, off, nil
		}
		if rest < headerSize {
			// Crash mid-header: the length prefix itself is incomplete.
			return records, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecord {
			// A full header is written atomically before any payload
			// byte, so an implausible length was never written by us —
			// the header itself rotted.
			return records, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds maximum %d", length, MaxRecord)}
		}
		end := off + headerSize + length
		if end > size {
			// Crash mid-payload: the frame claims more bytes than exist.
			return records, off, nil
		}
		payload := data[off+headerSize : end]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			if end == size {
				// The final frame is fully present but its bytes are not
				// what the checksum covers — a torn tail write.
				return records, off, nil
			}
			return records, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
		}
		records = append(records, append([]byte(nil), payload...))
		off = end
	}
}

// ReadFile scans the log at path. A missing file reads as empty. The
// returned valid offset is where an appender must truncate to before
// writing (the torn-tail rule).
func ReadFile(path string) (records [][]byte, valid int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	return Scan(data)
}

// AppendFrame appends one framed record to buf and returns the
// extended slice — the encoding side of Scan, exported so tests and
// fuzzers build corpora with the real framer.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Writer appends framed records to one log file. It is not
// goroutine-safe: the control plane serializes all writes through its
// single-writer loop, and the zero-alloc frame buffer is reused across
// appends.
type Writer struct {
	f   *os.File
	off int64
	buf []byte
}

// OpenWriter opens (or creates) the log at path for appending: it
// scans the existing contents, truncates a torn tail, and positions
// the writer after the last valid record. The recovered records are
// returned so one open both replays and resumes. Interior corruption
// fails the open.
func OpenWriter(path string) (*Writer, [][]byte, error) {
	records, valid, err := ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return &Writer{f: f, off: valid}, records, nil
}

// Append frames payload and writes it. The record is durable only
// after the next Sync; the torn-tail rule makes an unsynced (or
// half-written) append invisible to recovery.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds maximum %d", len(payload), MaxRecord)
	}
	w.buf = AppendFrame(w.buf[:0], payload)
	n, err := w.f.Write(w.buf)
	w.off += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	crashStep(w.f)
	return nil
}

// Sync flushes the log to stable storage — the commit point.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Offset returns the current end of the valid log in bytes.
func (w *Writer) Offset() int64 { return w.off }

// Close syncs and closes the log.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close sync: %w", err)
	}
	return w.f.Close()
}
