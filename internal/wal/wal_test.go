package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func frames(payloads ...[]byte) []byte {
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	return buf
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recovered, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recovered))
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, valid, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(path)
	if valid != info.Size() {
		t.Fatalf("valid %d != file size %d", valid, info.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTails drops every possible number of trailing bytes off a
// three-record log: whatever survives whole must be recovered, the
// torn remainder silently truncated, never an error.
func TestWALTornTails(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma")}
	full := frames(payloads...)
	bounds := []int64{0}
	var off int64
	for _, p := range payloads {
		off += int64(headerSize + len(p))
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		records, valid, err := Scan(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: torn tail surfaced as error: %v", cut, err)
		}
		wantWhole := 0
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				wantWhole++
			}
		}
		if len(records) != wantWhole {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(records), wantWhole)
		}
		if valid != bounds[wantWhole] {
			t.Fatalf("cut %d: valid %d, want %d", cut, valid, bounds[wantWhole])
		}
	}
}

// TestWALInteriorCorruption flips one byte in every position of the
// first record's frame while a second record follows: every flip must
// surface as *CorruptError, never as silent truncation of the second,
// still-committed record.
func TestWALInteriorCorruption(t *testing.T) {
	full := frames([]byte("committed-first"), []byte("committed-second"))
	firstLen := headerSize + len("committed-first")
	for pos := 0; pos < firstLen; pos++ {
		data := append([]byte(nil), full...)
		data[pos] ^= 0x40
		records, _, err := Scan(data)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			// One escape hatch: a flip in the length prefix can make the
			// first frame swallow the file exactly to EOF, which is
			// indistinguishable from a torn tail — but then nothing after
			// the corruption may be returned as valid.
			if err == nil && len(records) == 0 {
				continue
			}
			t.Fatalf("flip at %d: err = %v, records = %d — interior corruption not loud", pos, err, len(records))
		}
		if len(records) != 0 {
			t.Fatalf("flip at %d: %d records recovered past corruption", pos, len(records))
		}
	}
}

// TestWALTornFinalChecksum: a final frame fully present but with
// mangled payload bytes is a torn tail (crash mid-payload), not
// interior corruption.
func TestWALTornFinalChecksum(t *testing.T) {
	full := frames([]byte("keep"), []byte("torn-me"))
	data := append([]byte(nil), full...)
	data[len(data)-1] ^= 0xFF
	records, valid, err := Scan(data)
	if err != nil {
		t.Fatalf("torn final frame errored: %v", err)
	}
	if len(records) != 1 || string(records[0]) != "keep" {
		t.Fatalf("recovered %q", records)
	}
	if valid != int64(headerSize+len("keep")) {
		t.Fatalf("valid = %d", valid)
	}
}

func TestWALImplausibleLengthIsLoud(t *testing.T) {
	data := frames([]byte("good"))
	var hdr [headerSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB length
	data = append(data, hdr[:]...)
	data = append(data, bytes.Repeat([]byte("x"), 64)...)
	records, valid, err := Scan(data)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("implausible length: err = %v", err)
	}
	if len(records) != 1 || valid != int64(headerSize+len("good")) {
		t.Fatalf("prefix not preserved: %d records, valid %d", len(records), valid)
	}
}

// TestWALOpenWriterTruncatesTorn: reopening a log with a torn tail
// resumes exactly after the last whole record, and the resumed log
// reads back clean.
func TestWALOpenWriterTruncatesTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	torn := frames([]byte("first"), []byte("second"))
	torn = append(torn, frames([]byte("half-written"))[:headerSize+3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recovered, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d records", len(recovered))
	}
	if err := w.Append([]byte("third")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || string(records[2]) != "third" {
		t.Fatalf("resumed log reads %q", records)
	}
}

func TestWALOpenWriterRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	data := frames([]byte("aaaa"), []byte("bbbb"))
	data[headerSize] ^= 0x01 // first record's payload, second still follows
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWriter(path); err == nil {
		t.Fatal("interior corruption accepted by OpenWriter")
	}
}

func TestStoreCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("snapshot-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("tail-0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(rec2.Checkpoint) != "snapshot-1" {
		t.Fatalf("checkpoint = %q", rec2.Checkpoint)
	}
	if len(rec2.Records) != 1 || string(rec2.Records[0]) != "tail-0" {
		t.Fatalf("wal tail = %q", rec2.Records)
	}
	if s2.Gen() != 2 {
		t.Fatalf("generation = %d", s2.Gen())
	}
	// The superseded generation is gone.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatal("wal-1.log survived rotation")
	}
}

// TestStoreRecoversMidRotationCrash simulates the crash window between
// the checkpoint rename and the new WAL creation: the new checkpoint
// exists, the new WAL does not, and the old generation's files linger.
func TestStoreRecoversMidRotationCrash(t *testing.T) {
	dir := t.TempDir()
	// Old generation: checkpoint-1 + wal-1 with records the new
	// checkpoint has absorbed.
	ck1, err := os.Create(filepath.Join(dir, checkpointName(1)))
	if err != nil {
		t.Fatal(err)
	}
	ck1.Write(frames([]byte("old-snapshot")))
	ck1.Close()
	writeRecords(t, filepath.Join(dir, walName(1)), []byte("absorbed"))
	// New generation: checkpoint-2 renamed into place, wal-2 never made.
	ck2, err := os.Create(filepath.Join(dir, checkpointName(2)))
	if err != nil {
		t.Fatal(err)
	}
	ck2.Write(frames([]byte("new-snapshot")))
	ck2.Close()
	// Plus a stranded temp from an even later, unrenamed attempt.
	os.WriteFile(filepath.Join(dir, checkpointName(3)+tmpSuffix), []byte("junk"), 0o644)

	s, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if string(rec.Checkpoint) != "new-snapshot" {
		t.Fatalf("recovered checkpoint %q", rec.Checkpoint)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered stale wal records %q", rec.Records)
	}
	for _, stale := range []string{walName(1), checkpointName(1), checkpointName(3) + tmpSuffix} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived recovery", stale)
		}
	}
}

func TestStoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	data := frames([]byte("snapshot"))
	data[headerSize+2] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, checkpointName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestWriterRejectsOversizeRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func BenchmarkWALAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal.log")
	w, _, err := OpenWriter(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte("x"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
