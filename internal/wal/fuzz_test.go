package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALReader throws arbitrary bytes at the frame scanner and holds
// it to the recovery contract:
//
//   - never panic, whatever the bytes;
//   - the reported valid prefix is self-consistent: scanning just that
//     prefix yields exactly the same records with no error (so
//     truncating a torn tail can never lose or invent a record);
//   - re-framing the recovered records reproduces the valid prefix
//     byte for byte (nothing was decoded that was not encoded);
//   - interior corruption surfaces only as the typed *CorruptError.
func FuzzWALReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(frames([]byte("hello"), []byte("world")))
	f.Add(frames([]byte(`{"t":"intent","txn":1}`), []byte(`{"t":"commit","txn":1,"seq":1}`)))
	// Torn tail: a whole record plus half of the next.
	torn := frames([]byte("whole"))
	torn = append(torn, frames([]byte("half-of-me"))[:headerSize+4]...)
	f.Add(torn)
	// Interior bit flip with a committed record after it.
	flipped := frames([]byte("first"), []byte("second"))
	flipped[headerSize] ^= 0x80
	f.Add(flipped)
	// Duplicated frame bytes (replayed tail).
	dup := frames([]byte("dup"))
	f.Add(append(append([]byte(nil), dup...), dup...))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid, err := Scan(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of [0,%d]", valid, len(data))
		}
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped scan error: %v", err)
			}
			if ce.Offset != valid {
				t.Fatalf("corruption offset %d != valid prefix %d", ce.Offset, valid)
			}
		}
		again, againValid, againErr := Scan(data[:valid])
		if againErr != nil {
			t.Fatalf("valid prefix rescans with error: %v", againErr)
		}
		if againValid != valid || len(again) != len(records) {
			t.Fatalf("valid prefix rescan: %d records to %d, want %d to %d",
				len(again), againValid, len(records), valid)
		}
		var reframed []byte
		for i, r := range records {
			if !bytes.Equal(r, again[i]) {
				t.Fatalf("record %d differs on rescan", i)
			}
			reframed = AppendFrame(reframed, r)
		}
		if !bytes.Equal(reframed, data[:valid]) {
			t.Fatalf("re-framed records (%d bytes) differ from valid prefix (%d bytes)",
				len(reframed), valid)
		}
	})
}
