package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// Health is the mutex-guarded health board the /healthz endpoint
// serves. The simulation thread updates it (watchdog audits, fault
// injections); server goroutines read it.
type Health struct {
	mu         sync.Mutex
	degraded   bool
	detail     string
	audits     uint64
	violations uint64
}

// SetDegraded flips the degraded flag with a human-readable detail.
func (h *Health) SetDegraded(degraded bool, detail string) {
	h.mu.Lock()
	h.degraded, h.detail = degraded, detail
	h.mu.Unlock()
}

// SetAudit records the watchdog's audit/violation totals.
func (h *Health) SetAudit(audits, violations uint64) {
	h.mu.Lock()
	h.audits, h.violations = audits, violations
	h.mu.Unlock()
}

// Status returns the current board state.
func (h *Health) Status() (degraded bool, detail string, audits, violations uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded, h.detail, h.audits, h.violations
}

// Server is the live telemetry HTTP handler: Prometheus /metrics (from
// the last published snapshot — the hot path's unsynchronized cells are
// never read live), /metrics.json, /healthz, /flows and /flows/{id}
// latency breakdowns, an NDJSON /events stream off the flight recorder,
// /flightrec miss dumps, and /debug/pprof. Construct with NewServer,
// publish snapshots from the simulation thread with Publish, and serve
// via Handler.
type Server struct {
	mux    *http.ServeMux
	snap   atomic.Value // metrics.Snapshot
	attr   *Attribution
	flight *trace.Flight
	health *Health

	// httpSrv is built eagerly so Serve (listener goroutine) and
	// Shutdown (signal handler) never race on its existence.
	httpSrv *http.Server
	// closing is closed by Shutdown so streaming handlers (/events)
	// terminate promptly — net/http's graceful Shutdown waits for
	// in-flight requests but does not cancel their contexts, and an
	// NDJSON stream would otherwise hold the drain open forever.
	closing   chan struct{}
	closeOnce sync.Once
}

// NewServer wires the endpoint set. Any of attr, flight, health may be
// nil; the corresponding endpoints degrade gracefully (404/empty).
func NewServer(attr *Attribution, flight *trace.Flight, health *Health) *Server {
	s := &Server{
		mux: http.NewServeMux(), attr: attr, flight: flight, health: health,
		closing: make(chan struct{}),
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	s.snap.Store(metrics.Snapshot{})
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/flows", s.handleFlows)
	s.mux.HandleFunc("/flows/", s.handleFlow)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/flightrec", s.handleFlightrec)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Publish stores a registry snapshot for /metrics to serve. Call it
// from the simulation thread (periodically, and once after the run);
// the handler only ever reads published copies, so the registry's
// unsynchronized hot-path cells are never raced.
func (s *Server) Publish(snap metrics.Snapshot) { s.snap.Store(snap) }

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It owns the
// underlying http.Server, so in-flight requests can be drained
// gracefully; like http.Serve it always returns a non-nil error
// (http.ErrServerClosed after a clean Shutdown).
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// Shutdown drains the server: the listener closes immediately, idle
// connections drop, streaming endpoints are told to finish, and
// in-flight requests get until ctx's deadline to complete. If the
// deadline expires first, remaining connections are force-closed and
// the context's error is returned — the server is down either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() { close(s.closing) })
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		_ = s.httpSrv.Close()
		return err
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load().(metrics.Snapshot)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load().(metrics.Snapshot)
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.health == nil {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"ok"}`)
		return
	}
	degraded, detail, audits, violations := s.health.Status()
	status := "ok"
	code := http.StatusOK
	if degraded {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status, "detail": detail,
		"audits": audits, "violations": violations,
	})
}

// flowJSON is the wire form of one flow's latency breakdown.
type flowJSON struct {
	Flow    uint32     `json:"flow"`
	Class   string     `json:"class"`
	Count   uint64     `json:"count"`
	Misses  uint64     `json:"deadline_misses"`
	MeanNs  sim.Time   `json:"mean_ns"`
	Sum     Components `json:"sum"`
	Worst   Components `json:"worst"`
	WorstNs sim.Time   `json:"worst_ns"`
	WSeq    uint32     `json:"worst_seq"`
	WAt     sim.Time   `json:"worst_at_ns"`
}

func toFlowJSON(fl FlowLatency) flowJSON {
	var mean sim.Time
	if fl.Count > 0 {
		mean = fl.Sum.Total() / sim.Time(fl.Count)
	}
	return flowJSON{
		Flow: fl.FlowID, Class: fl.Class.String(), Count: fl.Count,
		Misses: fl.Misses, MeanNs: mean, Sum: fl.Sum,
		Worst: fl.Worst, WorstNs: fl.WorstLat, WSeq: fl.WorstSeq, WAt: fl.WorstAt,
	}
}

func (s *Server) handleFlows(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out := []flowJSON{}
	if s.attr != nil {
		for _, fl := range s.attr.Flows() {
			out = append(out, toFlowJSON(fl))
		}
	}
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/flows/")
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		http.Error(w, "bad flow id", http.StatusBadRequest)
		return
	}
	if s.attr == nil {
		http.Error(w, "attribution disabled", http.StatusNotFound)
		return
	}
	fl, ok := s.attr.Flow(uint32(id))
	if !ok {
		http.Error(w, "unknown flow", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(toFlowJSON(fl))
}

func (s *Server) handleFlightrec(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	miss, events := []MissDump{}, []EventDump{}
	if s.attr != nil {
		miss, events = s.attr.Dumps(), s.attr.EventDumps()
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"deadline_miss": miss,
		"triggered":     events,
	})
}

// eventJSON is the wire form of one flight-recorder event.
type eventJSON struct {
	At     sim.Time `json:"at_ns"`
	Kind   string   `json:"kind"`
	Switch int      `json:"switch"`
	Port   int      `json:"port"`
	Queue  int      `json:"queue"`
	Flow   uint32   `json:"flow"`
	Seq    uint32   `json:"seq"`
	Detail string   `json:"detail,omitempty"`
}

// eventsPollInterval paces the NDJSON stream's ring polls.
const eventsPollInterval = 100 * time.Millisecond

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var cursor uint64
	buf := make([]trace.Event, 0, 256)
	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	for {
		buf, cursor = s.flight.Since(cursor, buf[:0])
		for _, ev := range buf {
			if err := enc.Encode(eventJSON{
				At: ev.At, Kind: ev.Kind.String(),
				Switch: ev.Switch, Port: ev.Port, Queue: ev.Queue,
				Flow: ev.FlowID, Seq: ev.Seq, Detail: ev.Detail,
			}); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		case <-ticker.C:
		}
	}
}
