package obs

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// spanFrame builds a frame whose span decomposes lat into fixed shares:
// 20% prop, 10% ser, 40% queue, 20% gate, 10% shape (lat must divide
// by 10 for the books to balance exactly).
func spanFrame(flow, seq uint32, cls ethernet.Class, lat sim.Time) *ethernet.Frame {
	f := &ethernet.Frame{FlowID: flow, Seq: seq, Class: cls, SentAt: 1000}
	f.Span.Begin(f.SentAt)
	gate, shape := lat/5, lat/10
	prop, ser := lat/5, lat/10
	f.Span.Claim(gate, shape)
	f.Span.OnDeliver(f.SentAt+lat, prop, ser)
	return f
}

func TestSpanFrameBalances(t *testing.T) {
	f := spanFrame(1, 0, ethernet.ClassTS, 1000)
	if got := f.Span.Total(); got != 1000 {
		t.Fatalf("test fixture out of balance: span total %v, want 1000", got)
	}
}

func TestAttributionAggregates(t *testing.T) {
	reg := metrics.New()
	a := NewAttribution(reg, nil)

	a.ObserveLatency(spanFrame(7, 0, ethernet.ClassTS, 1000), 2000, 1000, false)
	a.ObserveLatency(spanFrame(7, 1, ethernet.ClassTS, 3000), 4000, 3000, false)
	a.ObserveLatency(spanFrame(7, 2, ethernet.ClassTS, 2000), 3000, 2000, false)
	a.ObserveLatency(spanFrame(9, 0, ethernet.ClassRC, 5000), 6000, 5000, false)

	fl, ok := a.Flow(7)
	if !ok {
		t.Fatal("flow 7 missing")
	}
	if fl.Count != 3 || fl.WorstLat != 3000 || fl.WorstSeq != 1 {
		t.Fatalf("flow 7 aggregate wrong: %+v", fl)
	}
	if got := fl.Worst.Total(); got != fl.WorstLat {
		t.Fatalf("worst components sum to %v, want exactly %v", got, fl.WorstLat)
	}
	if got := fl.Sum.Total(); got != 6000 {
		t.Fatalf("sum of components = %v, want 6000", got)
	}

	all := a.Flows()
	if len(all) != 2 || all[0].FlowID != 7 || all[1].FlowID != 9 {
		t.Fatalf("Flows() order wrong: %+v", all)
	}
	top := a.TopByWorst(1)
	if len(top) != 1 || top[0].FlowID != 9 {
		t.Fatalf("TopByWorst wrong: %+v", top)
	}

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricComponent) {
		t.Fatal("component histogram family missing from export")
	}
}

func TestAttributionSkipsInactiveSpans(t *testing.T) {
	a := NewAttribution(nil, nil)
	f := &ethernet.Frame{FlowID: 3, Class: ethernet.ClassBE}
	a.ObserveLatency(f, 100, 100, false)
	if _, ok := a.Flow(3); ok {
		t.Fatal("inactive span was aggregated")
	}
}

func TestAttributionMissDumpsWorstChain(t *testing.T) {
	fl := trace.NewFlight(64)
	for i := 0; i < 6; i++ {
		fl.Record(trace.Event{At: sim.Time(i), Kind: trace.KindEnqueue, FlowID: uint32(1 + i%2)})
	}
	reg := metrics.New()
	a := NewAttribution(reg, fl)

	a.ObserveLatency(spanFrame(1, 5, ethernet.ClassTS, 4000), 5000, 4000, true)
	dumps := a.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.FlowID != 1 || d.Seq != 5 || d.Lat != 4000 {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("dump holds %d events, want flow 1's 3", len(d.Events))
	}
	if got := d.Comp.Total(); got != d.Lat {
		t.Fatalf("dump components sum to %v, want %v", got, d.Lat)
	}

	// A milder miss does not replace the retained worst.
	a.ObserveLatency(spanFrame(2, 0, ethernet.ClassTS, 2000), 3000, 2000, true)
	if len(a.Dumps()) != 1 {
		t.Fatal("milder miss captured a dump")
	}
	// A new global worst adds one.
	a.ObserveLatency(spanFrame(2, 1, ethernet.ClassTS, 9000), 10000, 9000, true)
	if got := a.Dumps(); len(got) != 2 || got[1].FlowID != 2 {
		t.Fatalf("worse miss not captured: %+v", got)
	}

	// The per-class miss exemplar tracks the class's own worst, with
	// the offending frame's identity in the label.
	if ex, ok := histExemplar(reg, t); !ok {
		t.Fatal("miss exemplar missing")
	} else if ex.Value != 9000 || !strings.Contains(ex.Label, "flow=2") {
		t.Fatalf("exemplar = %+v, want value 9000 labelled flow=2", ex)
	}
}

// histExemplar digs the TS-class miss histogram's exemplar out of the
// registry export.
func histExemplar(reg *metrics.Registry, t *testing.T) (metrics.Exemplar, bool) {
	t.Helper()
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != MetricMiss {
			continue
		}
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if l.Value == "TS" && s.Exemplar != nil {
					return *s.Exemplar, true
				}
			}
		}
	}
	return metrics.Exemplar{}, false
}

func TestEventDumpRing(t *testing.T) {
	fl := trace.NewFlight(8)
	fl.Record(trace.Event{At: 1, Kind: trace.KindEnqueue, FlowID: 1})
	a := NewAttribution(nil, fl)
	for i := 0; i < maxEventDumps+2; i++ {
		a.DumpNow("fault:link-down", sim.Time(i))
	}
	dumps := a.EventDumps()
	if len(dumps) != maxEventDumps {
		t.Fatalf("event dumps = %d, want %d", len(dumps), maxEventDumps)
	}
	if dumps[0].At != 2 || dumps[len(dumps)-1].At != sim.Time(maxEventDumps+1) {
		t.Fatalf("ring evicted wrong end: %+v", dumps)
	}
	if dumps[0].Reason != "fault:link-down" || len(dumps[0].Events) != 1 {
		t.Fatalf("dump content wrong: %+v", dumps[0])
	}
}

// TestObserveLatencySteadyStateAllocs pins the per-delivery observation
// at zero allocations once the flow's aggregate exists.
func TestObserveLatencySteadyStateAllocs(t *testing.T) {
	reg := metrics.New()
	a := NewAttribution(reg, trace.NewFlight(64))
	f := spanFrame(4, 0, ethernet.ClassTS, 1000)
	a.ObserveLatency(f, 2000, 1000, false) // create the aggregate
	if allocs := testing.AllocsPerRun(1000, func() {
		a.ObserveLatency(f, 2000, 1000, false)
	}); allocs != 0 {
		t.Fatalf("steady-state ObserveLatency allocates %.1f/op, want 0", allocs)
	}
}

// TestAttributionMergeFoldsFlowsAndDumps merges two partition-style
// attributions into an empty target and checks per-flow folding, the
// global-worst invariant of the dump ring, and idempotence guards.
func TestAttributionMergeFoldsFlowsAndDumps(t *testing.T) {
	mk := func() *Attribution { return NewAttribution(nil, nil) }
	target, pa, pb := mk(), mk(), mk()

	obs := func(a *Attribution, flow uint32, seq uint32, lat sim.Time, missed bool) {
		f := spanFrame(flow, seq, ethernet.ClassTS, lat)
		a.ObserveLatency(f, f.SentAt+lat, lat, missed)
	}
	obs(pa, 1, 0, 100, false)
	obs(pa, 1, 1, 900, true)
	obs(pb, 2, 0, 500, true)
	obs(pb, 2, 1, 200, false)

	target.Merge(pa)
	target.Merge(pb)
	target.Merge(nil)    // no-op
	target.Merge(target) // no-op

	flows := target.Flows()
	if len(flows) != 2 {
		t.Fatalf("merged %d flows, want 2", len(flows))
	}
	f1, ok := target.Flow(1)
	if !ok || f1.Count != 2 || f1.Misses != 1 || f1.WorstLat != 900 || f1.WorstSeq != 1 {
		t.Fatalf("flow 1 fold wrong: %+v", f1)
	}
	f2, ok := target.Flow(2)
	if !ok || f2.Count != 2 || f2.WorstLat != 500 {
		t.Fatalf("flow 2 fold wrong: %+v", f2)
	}
	top := target.TopByWorst(1)
	if len(top) != 1 || top[0].FlowID != 1 {
		t.Fatalf("TopByWorst = %+v, want flow 1", top)
	}
}
