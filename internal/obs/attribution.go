// Package obs is the observability layer over the simulation: it
// aggregates the per-frame latency spans the dataplane books into
// per-flow attributions, retains flight-recorder dumps for the worst
// deadline misses, and serves the whole picture over HTTP (server.go) —
// the first concrete slice of the TSN-as-a-Service control plane the
// roadmap points at.
//
// Unlike the dataplane, everything here is mutex-guarded: the
// simulation thread feeds observations while the telemetry server reads
// them from its own goroutines.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// Components is one latency decomposition: where an end-to-end latency
// went. All values are engine-time differences, so for a delivered
// frame they sum exactly to the measured latency.
type Components struct {
	Prop  sim.Time `json:"prop_ns"`  // cable propagation
	Ser   sim.Time `json:"ser_ns"`   // store-and-forward serialization
	Queue sim.Time `json:"queue_ns"` // unattributed wait (HOL, busy wire, preemption)
	Gate  sim.Time `json:"gate_ns"`  // gate-schedule wait (closed gate, guard band)
	Shape sim.Time `json:"shape_ns"` // CBS shaper hold
}

// Total returns the component sum.
func (c Components) Total() sim.Time { return c.Prop + c.Ser + c.Queue + c.Gate + c.Shape }

// add accumulates d into c.
func (c *Components) add(d Components) {
	c.Prop += d.Prop
	c.Ser += d.Ser
	c.Queue += d.Queue
	c.Gate += d.Gate
	c.Shape += d.Shape
}

// fromSpan converts a frame's span into a Components value.
func fromSpan(s *ethernet.Span) Components {
	return Components{Prop: s.Prop, Ser: s.Ser, Queue: s.Queue, Gate: s.Gate, Shape: s.Shape}
}

// FlowLatency is one flow's attribution aggregate.
type FlowLatency struct {
	FlowID uint32         `json:"flow"`
	Class  ethernet.Class `json:"-"`
	Count  uint64         `json:"count"`
	Misses uint64         `json:"deadline_misses"`
	// Sum accumulates every delivery's decomposition; Sum.Total()/Count
	// is the mean end-to-end latency.
	Sum Components `json:"sum"`
	// Worst is the decomposition of the worst (highest-latency)
	// delivery, with its end-to-end latency, sequence number and
	// arrival instant.
	Worst    Components `json:"worst"`
	WorstLat sim.Time   `json:"worst_ns"`
	WorstSeq uint32     `json:"worst_seq"`
	WorstAt  sim.Time   `json:"worst_at_ns"`
}

// MissDump is a flight-recorder capture taken when a flow set a new
// worst deadline miss: the offending frame plus the recent dataplane
// events of its flow — the span chain that made it late.
type MissDump struct {
	FlowID uint32        `json:"flow"`
	Seq    uint32        `json:"seq"`
	Lat    sim.Time      `json:"latency_ns"`
	At     sim.Time      `json:"at_ns"`
	Comp   Components    `json:"components"`
	Events []trace.Event `json:"events"`
}

// EventDump is a full flight-recorder capture taken on a non-miss
// trigger: a watchdog degradation or an injected fault.
type EventDump struct {
	Reason string        `json:"reason"`
	At     sim.Time      `json:"at_ns"`
	Events []trace.Event `json:"events"`
}

// maxMissDumps bounds retained deadline-miss dumps: each new global
// worst replaces the mildest retained dump once the ring is full.
// maxEventDumps bounds the reason-tagged captures the same way.
const (
	maxMissDumps  = 8
	maxEventDumps = 4
)

// Metric names and bucket layout of the attribution families.
const (
	MetricComponent = "tsn_latency_component_ns"
	MetricMiss      = "tsn_deadline_miss_ns"
)

// ComponentBounds buckets component latencies: 100 ns to ~3.3 ms.
var ComponentBounds = metrics.ExponentialBounds(100, 2, 16)

// componentNames orders the five components for metric labeling.
var componentNames = [5]string{"propagation", "store_and_forward", "queue", "gate", "shaping"}

// Attribution aggregates per-frame spans into per-flow latency
// decompositions and the registry's component histograms. It implements
// analyzer.LatencySink. Safe for concurrent reads while the simulation
// observes.
type Attribution struct {
	mu    sync.Mutex
	flows map[uint32]*FlowLatency

	// comp[class][component] and miss[class] are resolved once; zero
	// handles (nil registry) no-op.
	comp [3][5]metrics.Histogram
	miss [3]metrics.Histogram

	flight     *trace.Flight
	dumps      []MissDump
	eventDumps []EventDump
	worstMiss  sim.Time
}

// NewAttribution builds the aggregation layer. reg may be nil (no
// histograms); flight may be nil (no miss dumps).
func NewAttribution(reg *metrics.Registry, flight *trace.Flight) *Attribution {
	a := &Attribution{flows: make(map[uint32]*FlowLatency), flight: flight}
	reg.Help(MetricComponent, "per-delivery latency attribution by component, nanoseconds")
	reg.Help(MetricMiss, "end-to-end latency of deadline-missing deliveries, nanoseconds")
	for _, cls := range []ethernet.Class{ethernet.ClassBE, ethernet.ClassRC, ethernet.ClassTS} {
		l := metrics.L("class", cls.String())
		for ci, name := range componentNames {
			a.comp[cls][ci] = reg.Histogram(MetricComponent, ComponentBounds, l, metrics.L("component", name))
		}
		a.miss[cls] = reg.Histogram(MetricMiss, analyzerLatencyBounds, l)
	}
	return a
}

// analyzerLatencyBounds mirrors analyzer.LatencyBounds without the
// import (obs must stay import-light so dataplane packages could link
// it if ever needed): 1 µs to ~8 ms doubling.
var analyzerLatencyBounds = metrics.ExponentialBounds(1000, 2, 14)

// ObserveLatency ingests one delivery: the frame's span decomposition,
// its measured end-to-end latency and whether it missed its deadline.
// Implements analyzer.LatencySink. Steady-state cost is a mutex pair,
// a map hit and six histogram writes — no allocation; a new global
// worst deadline miss additionally captures a flight-recorder dump.
func (a *Attribution) ObserveLatency(f *ethernet.Frame, arrival, lat sim.Time, missed bool) {
	if !f.Span.Active() {
		return
	}
	c := fromSpan(&f.Span)
	a.mu.Lock()
	fl, ok := a.flows[f.FlowID]
	if !ok {
		fl = &FlowLatency{FlowID: f.FlowID}
		a.flows[f.FlowID] = fl
	}
	fl.Class = f.Class
	fl.Count++
	fl.Sum.add(c)
	if lat > fl.WorstLat || fl.Count == 1 {
		fl.Worst, fl.WorstLat, fl.WorstSeq, fl.WorstAt = c, lat, f.Seq, arrival
	}
	cls := f.Class
	if cls > ethernet.ClassTS {
		cls = ethernet.ClassBE
	}
	a.comp[cls][0].Observe(int64(c.Prop))
	a.comp[cls][1].Observe(int64(c.Ser))
	a.comp[cls][2].Observe(int64(c.Queue))
	a.comp[cls][3].Observe(int64(c.Gate))
	a.comp[cls][4].Observe(int64(c.Shape))
	if missed {
		fl.Misses++
		a.observeMiss(cls, f, arrival, lat, c)
	}
	a.mu.Unlock()
}

// observeMiss books a deadline miss. The exemplar (and its string
// build) only happens when the miss beats the class sample's current
// exemplar, and the flight-recorder dump only on a new global worst —
// both stay off the steady-state path.
func (a *Attribution) observeMiss(cls ethernet.Class, f *ethernet.Frame, arrival, lat sim.Time, c Components) {
	h := a.miss[cls]
	if ex, ok := h.Exemplar(); !h.Active() || (ok && int64(lat) <= ex.Value) {
		h.Observe(int64(lat))
	} else {
		h.ObserveExemplar(int64(lat),
			fmt.Sprintf("flow=%d seq=%d", f.FlowID, f.Seq), int64(arrival))
	}
	if lat <= a.worstMiss {
		return
	}
	a.worstMiss = lat
	d := MissDump{FlowID: f.FlowID, Seq: f.Seq, Lat: lat, At: arrival, Comp: c,
		Events: a.flight.SnapshotFlow(f.FlowID)}
	if len(a.dumps) >= maxMissDumps {
		copy(a.dumps, a.dumps[1:])
		a.dumps = a.dumps[:len(a.dumps)-1]
	}
	a.dumps = append(a.dumps, d)
}

// Merge folds src's aggregates into a — how the partitioned testbed
// reassembles one attribution view from the per-partition layers its
// collectors fed. Per-flow sums add and worst-delivery records fold
// (every flow is delivered at one NIC, so in partition merges at most
// one side has data for any flow and the fold is exact); retained
// dumps combine ordered by severity (misses) or capture time (event
// dumps), keeping the worst/newest within the usual caps. The metric
// histograms are registry-side and merge with metrics.Registry.Merge.
func (a *Attribution) Merge(src *Attribution) {
	if src == nil || src == a {
		return
	}
	src.mu.Lock()
	flows := make([]FlowLatency, 0, len(src.flows))
	for _, fl := range src.flows {
		flows = append(flows, *fl)
	}
	dumps := append([]MissDump(nil), src.dumps...)
	eventDumps := append([]EventDump(nil), src.eventDumps...)
	worst := src.worstMiss
	src.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	for _, in := range flows {
		fl, ok := a.flows[in.FlowID]
		if !ok {
			fl = &FlowLatency{FlowID: in.FlowID}
			a.flows[in.FlowID] = fl
		}
		fl.Class = in.Class
		had := fl.Count
		fl.Count += in.Count
		fl.Misses += in.Misses
		fl.Sum.add(in.Sum)
		if in.WorstLat > fl.WorstLat || had == 0 {
			fl.Worst, fl.WorstLat, fl.WorstSeq, fl.WorstAt = in.Worst, in.WorstLat, in.WorstSeq, in.WorstAt
		}
	}
	if worst > a.worstMiss {
		a.worstMiss = worst
	}
	// Serial retention appends each new global worst, so the ring is
	// sorted by latency; keep that invariant (consumers read the last
	// element as the global worst).
	a.dumps = append(a.dumps, dumps...)
	sort.SliceStable(a.dumps, func(i, j int) bool { return a.dumps[i].Lat < a.dumps[j].Lat })
	if len(a.dumps) > maxMissDumps {
		a.dumps = append(a.dumps[:0], a.dumps[len(a.dumps)-maxMissDumps:]...)
	}
	a.eventDumps = append(a.eventDumps, eventDumps...)
	sort.SliceStable(a.eventDumps, func(i, j int) bool { return a.eventDumps[i].At < a.eventDumps[j].At })
	if len(a.eventDumps) > maxEventDumps {
		a.eventDumps = append(a.eventDumps[:0], a.eventDumps[len(a.eventDumps)-maxEventDumps:]...)
	}
}

// Flow returns one flow's aggregate (copy) and whether it exists.
func (a *Attribution) Flow(id uint32) (FlowLatency, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fl, ok := a.flows[id]
	if !ok {
		return FlowLatency{}, false
	}
	return *fl, true
}

// Flows returns every flow's aggregate sorted by flow ID.
func (a *Attribution) Flows() []FlowLatency {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FlowLatency, 0, len(a.flows))
	for _, fl := range a.flows {
		out = append(out, *fl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FlowID < out[j].FlowID })
	return out
}

// TopByWorst returns the n flows with the highest worst-case latency,
// worst first — the exit summary's shortlist.
func (a *Attribution) TopByWorst(n int) []FlowLatency {
	all := a.Flows()
	sort.SliceStable(all, func(i, j int) bool { return all[i].WorstLat > all[j].WorstLat })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Dumps returns the retained deadline-miss dumps, oldest first.
func (a *Attribution) Dumps() []MissDump {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]MissDump(nil), a.dumps...)
}

// DumpNow captures the whole flight-recorder ring under a reason tag —
// called from watchdog-degradation and fault-injection hooks.
func (a *Attribution) DumpNow(reason string, at sim.Time) {
	events := a.flight.Snapshot()
	a.mu.Lock()
	if len(a.eventDumps) >= maxEventDumps {
		copy(a.eventDumps, a.eventDumps[1:])
		a.eventDumps = a.eventDumps[:len(a.eventDumps)-1]
	}
	a.eventDumps = append(a.eventDumps, EventDump{Reason: reason, At: at, Events: events})
	a.mu.Unlock()
}

// EventDumps returns the retained reason-tagged captures, oldest first.
func (a *Attribution) EventDumps() []EventDump {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]EventDump(nil), a.eventDumps...)
}
