package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// testServer wires a server over one observed miss and a health board.
func testServer(t *testing.T) (*Server, *Health, *metrics.Registry) {
	t.Helper()
	fl := trace.NewFlight(64)
	fl.Record(trace.Event{At: 10, Kind: trace.KindEnqueue, FlowID: 7, Seq: 1})
	reg := metrics.New()
	attr := NewAttribution(reg, fl)
	attr.ObserveLatency(spanFrame(7, 1, ethernet.ClassTS, 5000), 6000, 5000, true)
	health := &Health{}
	srv := NewServer(attr, fl, health)
	srv.Publish(reg.Snapshot())
	return srv, health, reg
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestServerMetricsEndpoints(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.Handler(), "/metrics")
	if code != 200 || !strings.Contains(body, MetricComponent) {
		t.Fatalf("/metrics = %d, component family present=%v", code,
			strings.Contains(body, MetricComponent))
	}
	code, body = get(t, srv.Handler(), "/metrics.json")
	if code != 200 || !strings.Contains(body, "\"families\"") {
		t.Fatalf("/metrics.json = %d body %q", code, body[:min(len(body), 80)])
	}
}

func TestServerHealthz(t *testing.T) {
	srv, health, _ := testServer(t)
	code, body := get(t, srv.Handler(), "/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}
	health.SetDegraded(true, "pool pressure 0.93 on switch 2")
	health.SetAudit(41, 3)
	code, body = get(t, srv.Handler(), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "pool pressure") || !strings.Contains(body, `"audits":41`) {
		t.Fatalf("degraded body missing detail: %q", body)
	}
	health.SetDegraded(false, "")
	if code, _ = get(t, srv.Handler(), "/healthz"); code != 200 {
		t.Fatalf("recovered /healthz = %d, want 200", code)
	}
}

func TestServerFlowBreakdown(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.Handler(), "/flows/7")
	if code != 200 {
		t.Fatalf("/flows/7 = %d", code)
	}
	var fj struct {
		Flow   uint32 `json:"flow"`
		Class  string `json:"class"`
		Misses uint64 `json:"deadline_misses"`
		Worst  struct {
			Prop  sim.Time `json:"prop_ns"`
			Ser   sim.Time `json:"ser_ns"`
			Queue sim.Time `json:"queue_ns"`
			Gate  sim.Time `json:"gate_ns"`
			Shape sim.Time `json:"shape_ns"`
		} `json:"worst"`
		WorstNs sim.Time `json:"worst_ns"`
	}
	if err := json.Unmarshal([]byte(body), &fj); err != nil {
		t.Fatal(err)
	}
	if fj.Flow != 7 || fj.Class != "TS" || fj.Misses != 1 {
		t.Fatalf("breakdown header wrong: %+v", fj)
	}
	sum := fj.Worst.Prop + fj.Worst.Ser + fj.Worst.Queue + fj.Worst.Gate + fj.Worst.Shape
	if sum != fj.WorstNs || fj.WorstNs != 5000 {
		t.Fatalf("components sum to %v, worst_ns %v — must match exactly", sum, fj.WorstNs)
	}

	if code, _ := get(t, srv.Handler(), "/flows/999"); code != 404 {
		t.Fatalf("unknown flow = %d, want 404", code)
	}
	if code, _ := get(t, srv.Handler(), "/flows/bogus"); code != 400 {
		t.Fatalf("bad id = %d, want 400", code)
	}
	code, body = get(t, srv.Handler(), "/flows")
	if code != 200 || !strings.Contains(body, `"flow":7`) {
		t.Fatalf("/flows = %d %q", code, body)
	}
}

func TestServerFlightrec(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.Handler(), "/flightrec")
	if code != 200 {
		t.Fatalf("/flightrec = %d", code)
	}
	var out struct {
		Miss      []MissDump  `json:"deadline_miss"`
		Triggered []EventDump `json:"triggered"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Miss) != 1 || out.Miss[0].FlowID != 7 || len(out.Miss[0].Events) != 1 {
		t.Fatalf("flightrec dump wrong: %+v", out)
	}
}

func TestServerNilComponentsDegradeGracefully(t *testing.T) {
	srv := NewServer(nil, nil, nil)
	if code, _ := get(t, srv.Handler(), "/healthz"); code != 200 {
		t.Fatal("nil health should report ok")
	}
	if code, body := get(t, srv.Handler(), "/flows"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil attr /flows = %d %q", code, body)
	}
	if code, _ := get(t, srv.Handler(), "/flows/1"); code != 404 {
		t.Fatal("nil attr /flows/1 should 404")
	}
	if code, _ := get(t, srv.Handler(), "/events"); code != 404 {
		t.Fatal("nil flight /events should 404")
	}
	if code, _ := get(t, srv.Handler(), "/metrics"); code != 200 {
		t.Fatal("empty snapshot /metrics should still 200")
	}
}

// TestServerEventStream drives the NDJSON feed over a real listener:
// events recorded after the stream opens arrive as JSON lines, and the
// stream ends when the client goes away.
func TestServerEventStream(t *testing.T) {
	fl := trace.NewFlight(64)
	srv := NewServer(nil, fl, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fl.Record(trace.Event{At: 5, Kind: trace.KindIngress, FlowID: 3, Seq: 9, Switch: 1, Port: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	var ev struct {
		At   sim.Time `json:"at_ns"`
		Kind string   `json:"kind"`
		Flow uint32   `json:"flow"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	if ev.At != 5 || ev.Flow != 3 || ev.Kind == "" {
		t.Fatalf("streamed event wrong: %+v", ev)
	}
	cancel() // client departs; the handler's poll loop must exit
}

// TestServeShutdownDrainsStream exercises the owned-server lifecycle
// on a real listener: a live NDJSON /events stream is in flight when
// Shutdown fires, the stream must terminate cleanly (the poll loop
// honors the closing signal, not just client departure), Shutdown must
// return nil within its deadline, and the listener must stop accepting.
func TestServeShutdownDrainsStream(t *testing.T) {
	fl := trace.NewFlight(64)
	fl.Record(trace.Event{At: 5, Kind: trace.KindIngress, FlowID: 3, Seq: 9})
	srv := NewServer(nil, fl, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(chan error, 1)
	go func() {
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		streamed <- cerr
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	select {
	case err := <-streamed:
		if err != nil {
			t.Fatalf("in-flight stream did not drain cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open after Shutdown returned")
	}
	select {
	case err := <-served:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting connections after Shutdown")
	}
}
