package shaper

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestCBSStartsEligible(t *testing.T) {
	var c CBS
	c.Configure(100*ethernet.Mbps, ethernet.Gbps)
	if !c.Eligible(0) {
		t.Fatal("zero credit must be eligible")
	}
}

func TestCBSGoesNegativeAfterSend(t *testing.T) {
	var c CBS
	c.Configure(100*ethernet.Mbps, ethernet.Gbps)
	tx := ethernet.TxTime(1250, ethernet.Gbps) // 10 µs at 1 Gbps
	c.OnSend(0, 1250*8, tx)
	if c.Eligible(tx) {
		t.Fatal("credit should be negative right after a send")
	}
	// sendSlope = 100M-1G = -900 Mbps over 10 µs = -9000 bits.
	if got := c.Credit(tx); got != -9000 {
		t.Fatalf("credit = %d, want -9000", got)
	}
}

func TestCBSRecoversAtIdleSlope(t *testing.T) {
	var c CBS
	c.Configure(100*ethernet.Mbps, ethernet.Gbps)
	tx := ethernet.TxTime(1250, ethernet.Gbps)
	c.OnSend(0, 1250*8, tx)
	// -9000 bits at 100 Mbps recovers in 90 µs after tx end.
	end := tx + 90*sim.Microsecond
	if c.Eligible(end - sim.Microsecond) {
		t.Fatal("eligible too early")
	}
	if !c.Eligible(end) {
		t.Fatal("not eligible after full recovery")
	}
}

func TestCBSLongRunThroughput(t *testing.T) {
	// Saturated queue shaped at 200 Mbps on a 1 Gbps port: sent bits
	// over 100 ms must be ~20 Mbit.
	var c CBS
	c.Configure(200*ethernet.Mbps, ethernet.Gbps)
	const frameBytes = 1250
	tx := ethernet.TxTime(frameBytes, ethernet.Gbps)
	now := sim.Time(0)
	sent := int64(0)
	horizon := 100 * sim.Millisecond
	for now < horizon {
		if c.Eligible(now) {
			c.OnSend(now, frameBytes*8, tx)
			sent += frameBytes * 8
			now += tx
		} else {
			// Wait for credit: deficit / idleSlope.
			deficit := -c.Credit(now)
			wait := sim.Time(deficit*int64(sim.Second)/int64(200*ethernet.Mbps)) + 1
			now += wait
		}
	}
	gotMbit := float64(sent) / 1e6
	if gotMbit < 19 || gotMbit > 21 {
		t.Fatalf("shaped throughput = %.2f Mbit over 100ms, want ~20", gotMbit)
	}
}

func TestCBSResetOnEmpty(t *testing.T) {
	var c CBS
	c.Configure(500*ethernet.Mbps, ethernet.Gbps)
	// Build up credit while blocked (e.g. gate closed) for 100 µs.
	if got := c.Credit(100 * sim.Microsecond); got != 50000 {
		t.Fatalf("accrued credit = %d, want 50000", got)
	}
	c.OnEmpty(100 * sim.Microsecond)
	if got := c.Credit(100 * sim.Microsecond); got != 0 {
		t.Fatalf("credit after OnEmpty = %d, want 0", got)
	}
	// Negative credit is NOT reset by OnEmpty.
	c.OnSend(100*sim.Microsecond, 8000, ethernet.TxTime(1000, ethernet.Gbps))
	after := 100*sim.Microsecond + ethernet.TxTime(1000, ethernet.Gbps)
	neg := c.Credit(after)
	if neg >= 0 {
		t.Fatal("expected negative credit")
	}
	c.OnEmpty(after)
	if c.Credit(after) != neg {
		t.Fatal("OnEmpty changed negative credit")
	}
}

func TestCBSInvalidConfigPanics(t *testing.T) {
	cases := []struct{ idle, port ethernet.Rate }{
		{0, ethernet.Gbps},
		{ethernet.Gbps, 0},
		{2 * ethernet.Gbps, ethernet.Gbps}, // idle > port
	}
	for i, cse := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			var c CBS
			c.Configure(cse.idle, cse.port)
		}()
	}
}

func TestCBSSendSlope(t *testing.T) {
	var c CBS
	c.Configure(300*ethernet.Mbps, ethernet.Gbps)
	if c.SendSlope() != -700_000_000 {
		t.Fatalf("SendSlope = %d", c.SendSlope())
	}
	if c.IdleSlope() != 300*ethernet.Mbps {
		t.Fatalf("IdleSlope = %d", c.IdleSlope())
	}
}

func TestBankAttachCapacity(t *testing.T) {
	b := NewBank(2, 3)
	if err := b.Attach(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(3, 2); err == nil {
		t.Fatal("attach beyond map capacity succeeded")
	}
	// Re-binding an existing queue does not consume capacity.
	if err := b.Attach(5, 1); err != nil {
		t.Fatalf("re-bind failed: %v", err)
	}
	if b.MapLen() != 2 {
		t.Fatalf("MapLen = %d", b.MapLen())
	}
}

func TestBankForUnboundReturnsNil(t *testing.T) {
	b := NewBank(2, 2)
	if b.For(7) != nil {
		t.Fatal("unbound queue has a shaper")
	}
	// Bound but unconfigured also returns nil.
	_ = b.Attach(5, 0)
	if b.For(5) != nil {
		t.Fatal("unconfigured shaper returned")
	}
	_ = b.Configure(0, 100*ethernet.Mbps, ethernet.Gbps)
	if b.For(5) == nil {
		t.Fatal("configured shaper not returned")
	}
}

func TestBankRangeErrors(t *testing.T) {
	b := NewBank(2, 2)
	if err := b.Attach(1, 5); err == nil {
		t.Fatal("out-of-range cbs id accepted")
	}
	if err := b.Configure(9, ethernet.Mbps, ethernet.Gbps); err == nil {
		t.Fatal("out-of-range Configure accepted")
	}
	if err := b.Configure(-1, ethernet.Mbps, ethernet.Gbps); err == nil {
		t.Fatal("negative Configure accepted")
	}
}

func TestBankNegativeSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative bank size did not panic")
		}
	}()
	NewBank(-1, 2)
}
