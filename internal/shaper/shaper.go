// Package shaper implements the Egress Sched function template of
// Fig. 5: a strict-priority scheduler over the port's queues plus
// credit-based shapers (CBS, 802.1Qav) that limit the bandwidth of the
// RC queues "for alleviating the traffic burst". The CBS MAP table
// binds queues to shapers and the CBS table holds each shaper's
// idleslope/sendslope, mirroring the paper's resource view.
package shaper

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// CBS is one credit-based shaper implemented, as the paper notes, on a
// token-bucket-like credit counter. Credits are in bits.
//
// Semantics per 802.1Qav:
//   - while a frame of the shaped queue waits, credit rises at
//     idleSlope (bits/s);
//   - while a frame transmits, credit changes at sendSlope =
//     idleSlope − portRate (negative);
//   - a queue is eligible to transmit only when credit ≥ 0;
//   - when the queue goes empty with positive credit, credit resets to
//     zero (no banking of idle bandwidth).
type CBS struct {
	idleSlope ethernet.Rate
	portRate  ethernet.Rate
	credit    int64 // bits
	last      sim.Time
	// stalls, when bound, counts eligibility checks that failed on
	// negative credit — the shaper actively holding the queue back.
	stalls metrics.Counter
}

// Configure initializes the shaper. idleSlope is the reserved
// bandwidth; portRate the line rate it is shaped against.
func (c *CBS) Configure(idleSlope, portRate ethernet.Rate) {
	if idleSlope <= 0 || portRate <= 0 || idleSlope > portRate {
		panic(fmt.Sprintf("shaper: invalid slopes idle=%d port=%d", idleSlope, portRate))
	}
	c.idleSlope = idleSlope
	c.portRate = portRate
	c.credit = 0
	c.last = 0
}

// IdleSlope returns the reserved bandwidth.
func (c *CBS) IdleSlope() ethernet.Rate { return c.idleSlope }

// SendSlope returns the (negative) transmit slope in bits/s.
func (c *CBS) SendSlope() int64 { return int64(c.idleSlope) - int64(c.portRate) }

// accrue advances the idle accumulation to now.
func (c *CBS) accrue(now sim.Time) {
	if now <= c.last {
		return
	}
	c.credit += int64(now-c.last) * int64(c.idleSlope) / int64(sim.Second)
	c.last = now
}

// Instrument binds the shaper's credit-stall counter.
func (c *CBS) Instrument(stalls metrics.Counter) { c.stalls = stalls }

// Eligible reports whether the shaped queue may start a transmission at
// instant now (credit ≥ 0 after idle accrual).
func (c *CBS) Eligible(now sim.Time) bool {
	c.accrue(now)
	if c.credit < 0 {
		c.stalls.Inc()
		return false
	}
	return true
}

// OnSend charges a transmission that starts at now and occupies the
// wire for txTime carrying frameBits of frame data. The credit evolves
// at sendSlope across the window; accounting is applied up front with
// the clock advanced past the window.
func (c *CBS) OnSend(now sim.Time, frameBits int64, txTime sim.Time) {
	c.accrue(now)
	// sendSlope × txTime = idleSlope×txTime − portRate×txTime; the last
	// term is exactly the wire bits (frame + overhead), but charging
	// the frame's own bits is the conventional software model. Use the
	// full window against portRate for fidelity.
	c.credit += int64(txTime)*int64(c.idleSlope)/int64(sim.Second) -
		int64(txTime)*int64(c.portRate)/int64(sim.Second)
	_ = frameBits
	c.last = now + txTime
}

// OnEmpty must be called when the shaped queue drains: positive credit
// is forfeited.
func (c *CBS) OnEmpty(now sim.Time) {
	c.accrue(now)
	if c.credit > 0 {
		c.credit = 0
	}
}

// Credit returns the current credit in bits (after accrual to now).
func (c *CBS) Credit(now sim.Time) int64 {
	c.accrue(now)
	return c.credit
}

// Bank is one port's CBS MAP table + CBS table: a fixed number of
// shapers and a fixed number of queue→shaper bindings, per the
// set_cbs_tbl customization API.
type Bank struct {
	mapCapacity int
	binding     map[int]int // queueID -> shaper index
	shapers     []CBS
	configured  []bool
}

// NewBank returns a bank with mapSize binding slots and cbsSize
// shapers.
func NewBank(mapSize, cbsSize int) *Bank {
	if mapSize < 0 || cbsSize < 0 {
		panic("shaper: negative bank size")
	}
	return &Bank{
		mapCapacity: mapSize,
		binding:     make(map[int]int),
		shapers:     make([]CBS, cbsSize),
		configured:  make([]bool, cbsSize),
	}
}

// Attach binds queueID to shaper cbsID, consuming one CBS MAP entry.
func (b *Bank) Attach(queueID, cbsID int) error {
	if cbsID < 0 || cbsID >= len(b.shapers) {
		return fmt.Errorf("shaper: cbs id %d out of range [0,%d)", cbsID, len(b.shapers))
	}
	if _, ok := b.binding[queueID]; !ok && len(b.binding) >= b.mapCapacity {
		return fmt.Errorf("shaper: CBS MAP table full (%d entries)", b.mapCapacity)
	}
	b.binding[queueID] = cbsID
	return nil
}

// Configure sets shaper cbsID's slopes.
func (b *Bank) Configure(cbsID int, idleSlope, portRate ethernet.Rate) error {
	if cbsID < 0 || cbsID >= len(b.shapers) {
		return fmt.Errorf("shaper: cbs id %d out of range [0,%d)", cbsID, len(b.shapers))
	}
	b.shapers[cbsID].Configure(idleSlope, portRate)
	b.configured[cbsID] = true
	return nil
}

// For returns the shaper bound to queueID, or nil if the queue is
// unshaped (TS and BE queues).
func (b *Bank) For(queueID int) *CBS {
	id, ok := b.binding[queueID]
	if !ok || !b.configured[id] {
		return nil
	}
	return &b.shapers[id]
}

// MapLen returns the number of consumed CBS MAP entries.
func (b *Bank) MapLen() int { return len(b.binding) }

// RequiredSize returns the smallest CBS table size that keeps every
// bound or configured shaper addressable: highest such id + 1 (0 if
// none).
func (b *Bank) RequiredSize() int {
	req := 0
	for _, id := range b.binding {
		if id+1 > req {
			req = id + 1
		}
	}
	for id, cfg := range b.configured {
		if cfg && id+1 > req {
			req = id + 1
		}
	}
	return req
}

// Resize changes the CBS MAP and CBS table sizes in place, preserving
// bindings, slopes and accumulated credit — the live-reconfiguration
// primitive behind set_cbs_tbl. It fails if live bindings exceed the
// new map size or a bound/configured shaper id falls outside the new
// CBS size.
func (b *Bank) Resize(mapSize, cbsSize int) error {
	if mapSize < 0 || cbsSize < 0 {
		return fmt.Errorf("shaper: negative bank size %d/%d", mapSize, cbsSize)
	}
	if len(b.binding) > mapSize {
		return fmt.Errorf("shaper: cannot shrink CBS MAP to %d: %d bindings installed",
			mapSize, len(b.binding))
	}
	if req := b.RequiredSize(); cbsSize < req {
		return fmt.Errorf("shaper: cannot shrink CBS table to %d: shaper %d is live", cbsSize, req-1)
	}
	shapers := make([]CBS, cbsSize)
	configured := make([]bool, cbsSize)
	copy(shapers, b.shapers)
	copy(configured, b.configured)
	b.shapers, b.configured = shapers, configured
	b.mapCapacity = mapSize
	return nil
}
