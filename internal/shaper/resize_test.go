package shaper

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

func TestBankRequiredSize(t *testing.T) {
	b := NewBank(3, 4)
	if got := b.RequiredSize(); got != 0 {
		t.Fatalf("empty bank requires %d", got)
	}
	if err := b.Attach(5, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.RequiredSize(); got != 3 {
		t.Fatalf("required = %d, want 3 (highest id 2)", got)
	}
}

func TestBankResize(t *testing.T) {
	b := NewBank(3, 4)
	if err := b.Attach(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(2, ethernet.Mbps, ethernet.Gbps); err != nil {
		t.Fatal(err)
	}
	if err := b.Resize(0, 4); err == nil {
		t.Fatal("map shrink below bindings accepted")
	}
	if err := b.Resize(3, 2); err == nil {
		t.Fatal("cbs shrink below live shaper accepted")
	}
	if err := b.Resize(5, 3); err != nil {
		t.Fatal(err)
	}
	// The binding and its slope survive.
	if got := b.For(5); got == nil || got.IdleSlope() != ethernet.Mbps {
		t.Fatal("binding lost across resize")
	}
	// The grown map admits more bindings.
	for q := 0; q < 4; q++ {
		if err := b.Attach(q, 0); err != nil {
			t.Fatalf("attach q%d: %v", q, err)
		}
	}
	if err := b.Attach(7, 0); err == nil {
		t.Fatal("attach beyond new map size accepted")
	}
}
