package trace

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// flightEvent builds a distinguishable event: At carries the ordinal.
func flightEvent(i int, flow uint32) Event {
	return Event{At: sim.Time(i), Kind: KindEnqueue, FlowID: flow, Seq: uint32(i)}
}

func TestFlightWrap(t *testing.T) {
	fl := NewFlight(4)
	for i := 0; i < 10; i++ {
		fl.Record(flightEvent(i, 1))
	}
	if fl.Cap() != 4 || fl.Len() != 4 || fl.Seq() != 10 {
		t.Fatalf("cap/len/seq = %d/%d/%d, want 4/4/10", fl.Cap(), fl.Len(), fl.Seq())
	}
	snap := fl.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("snapshot[%d].At = %v, want %v (oldest-first)", i, ev.At, want)
		}
	}
}

func TestFlightPartialFill(t *testing.T) {
	fl := NewFlight(8)
	for i := 0; i < 3; i++ {
		fl.Record(flightEvent(i, 1))
	}
	if fl.Len() != 3 {
		t.Fatalf("len = %d, want 3", fl.Len())
	}
	snap := fl.Snapshot()
	if len(snap) != 3 || snap[0].At != 0 || snap[2].At != 2 {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

func TestFlightSnapshotFlow(t *testing.T) {
	fl := NewFlight(16)
	for i := 0; i < 12; i++ {
		fl.Record(flightEvent(i, uint32(1+i%3)))
	}
	only := fl.SnapshotFlow(2)
	if len(only) != 4 {
		t.Fatalf("flow-2 events = %d, want 4", len(only))
	}
	for _, ev := range only {
		if ev.FlowID != 2 {
			t.Fatalf("foreign flow %d in filtered snapshot", ev.FlowID)
		}
	}
}

func TestFlightSinceCursor(t *testing.T) {
	fl := NewFlight(8)
	for i := 0; i < 3; i++ {
		fl.Record(flightEvent(i, 1))
	}
	got, next := fl.Since(0, nil)
	if len(got) != 3 || next != 3 {
		t.Fatalf("first read: %d events next=%d, want 3/3", len(got), next)
	}
	// Nothing new: same cursor back, no events.
	got, next = fl.Since(next, got[:0])
	if len(got) != 0 || next != 3 {
		t.Fatalf("idle read: %d events next=%d, want 0/3", len(got), next)
	}
	for i := 3; i < 5; i++ {
		fl.Record(flightEvent(i, 1))
	}
	got, next = fl.Since(next, got[:0])
	if len(got) != 2 || next != 5 || got[0].At != 3 || got[1].At != 4 {
		t.Fatalf("incremental read wrong: %+v next=%d", got, next)
	}
}

func TestFlightSinceClampsToOldestRetained(t *testing.T) {
	fl := NewFlight(4)
	for i := 0; i < 10; i++ {
		fl.Record(flightEvent(i, 1))
	}
	// Cursor 0 points into overwritten history: the read skips the gap
	// and returns only the retained tail.
	got, next := fl.Since(0, nil)
	if len(got) != 4 || next != 10 {
		t.Fatalf("clamped read: %d events next=%d, want 4/10", len(got), next)
	}
	if got[0].At != 6 {
		t.Fatalf("oldest retained = %v, want 6", got[0].At)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var fl *Flight
	fl.Record(flightEvent(0, 1)) // must not panic
	if fl.Cap() != 0 || fl.Len() != 0 || fl.Seq() != 0 {
		t.Fatal("nil flight reports non-zero state")
	}
	if fl.Snapshot() != nil || fl.SnapshotFlow(1) != nil {
		t.Fatal("nil flight returned events")
	}
	if got, next := fl.Since(7, nil); got != nil || next != 7 {
		t.Fatal("nil flight Since changed state")
	}
}

func TestNewFlightRejectsNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlight(0) did not panic")
		}
	}()
	NewFlight(0)
}

// TestFlightRecordAllocs pins the always-on recording path at zero
// allocations: the ring slot copy must never escape to the heap.
func TestFlightRecordAllocs(t *testing.T) {
	fl := NewFlight(64)
	ev := flightEvent(1, 7)
	if allocs := testing.AllocsPerRun(1000, func() { fl.Record(ev) }); allocs != 0 {
		t.Fatalf("Flight.Record allocates %.1f/op, want 0", allocs)
	}
}
