package trace

import (
	"strings"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	var r Recorder
	r.Record(Event{At: 10, Kind: KindIngress, Switch: 0, FlowID: 1, Seq: 5})
	r.Record(Event{At: 20, Kind: KindEnqueue, Switch: 0, Port: 1, Queue: 7, FlowID: 1, Seq: 5})
	r.Record(Event{At: 30, Kind: KindTxStart, Switch: 0, Port: 1, Queue: 7, FlowID: 1, Seq: 5})
	r.Record(Event{At: 40, Kind: KindIngress, Switch: 1, FlowID: 2, Seq: 0})

	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	pkt := r.Packet(1, 5)
	if len(pkt) != 3 {
		t.Fatalf("packet events = %d", len(pkt))
	}
	for i := 1; i < len(pkt); i++ {
		if pkt[i].At < pkt[i-1].At {
			t.Fatal("packet events out of order")
		}
	}
	if got := r.Filter(KindIngress); len(got) != 2 {
		t.Fatalf("ingress events = %d", len(got))
	}
	if got := r.Packet(9, 9); len(got) != 0 {
		t.Fatal("unknown packet returned events")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Packet(1, 1) != nil ||
		r.Filter(KindDrop) != nil || r.Truncated() != 0 {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestLimit(t *testing.T) {
	r := Recorder{Limit: 2}
	for i := 0; i < 5; i++ {
		r.Record(Event{Seq: uint32(i)})
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Truncated() != 3 {
		t.Fatalf("Truncated = %d", r.Truncated())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1000, Kind: KindDrop, Switch: 2, Port: 1, Queue: 7,
		FlowID: 3, Seq: 4, Detail: "queue-full"}
	s := e.String()
	for _, frag := range []string{"drop", "sw2.p1", "q7", "flow=3", "queue-full"} {
		if !strings.Contains(s, frag) {
			t.Errorf("event string %q missing %q", s, frag)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting")
	}
	for k := KindIngress; k <= KindTxStart; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}
