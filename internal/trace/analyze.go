package trace

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Residence aggregates how long frames sat in one egress queue between
// enqueue and transmission start — the per-hop residence time a
// hardware bring-up reads off probe timestamps.
type Residence struct {
	Switch int
	Port   int
	Queue  int
	Count  uint64
	Sum    sim.Time
	Max    sim.Time
}

// Mean returns the average residence time.
func (r Residence) Mean() sim.Time {
	if r.Count == 0 {
		return 0
	}
	return r.Sum / sim.Time(r.Count)
}

// String implements fmt.Stringer.
func (r Residence) String() string {
	return fmt.Sprintf("sw%d.p%d q%d: %d frames, mean %v, max %v",
		r.Switch, r.Port, r.Queue, r.Count, r.Mean(), r.Max)
}

// Residences pairs each enqueue with the next transmission start of the
// same packet on the same switch/port and aggregates per (switch, port,
// queue). Dropped packets contribute nothing.
func Residences(rec *Recorder) []Residence {
	if rec == nil {
		return nil
	}
	type key struct{ sw, port, queue int }
	agg := make(map[key]*Residence)
	for pk := range rec.byPacket {
		evs := rec.Packet(pk.FlowID, pk.Seq)
		// Events are in record (time) order; walk matching pairs.
		for i := 0; i < len(evs); i++ {
			if evs[i].Kind != KindEnqueue {
				continue
			}
			enq := evs[i]
			for j := i + 1; j < len(evs); j++ {
				tx := evs[j]
				if tx.Kind != KindTxStart || tx.Switch != enq.Switch || tx.Port != enq.Port {
					continue
				}
				k := key{enq.Switch, enq.Port, enq.Queue}
				a, ok := agg[k]
				if !ok {
					a = &Residence{Switch: enq.Switch, Port: enq.Port, Queue: enq.Queue}
					agg[k] = a
				}
				d := tx.At - enq.At
				a.Count++
				a.Sum += d
				if d > a.Max {
					a.Max = d
				}
				break
			}
		}
	}
	out := make([]Residence, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Max != out[j].Max {
			return out[i].Max > out[j].Max
		}
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// TopResidences returns the n worst residence cells (by max).
func TopResidences(rec *Recorder, n int) []Residence {
	all := Residences(rec)
	if len(all) > n {
		all = all[:n]
	}
	return all
}
