// Package trace records per-packet dataplane events — the software
// equivalent of the probe points a hardware bring-up would watch with a
// logic analyzer. Switches emit an event at ingress, at enqueue, at
// every drop and at transmission start; the recorder indexes them by
// packet so tests and tools can reconstruct a frame's journey and check
// invariants like CQF's one-slot-per-hop advancement.
package trace

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds in pipeline order.
const (
	KindIngress Kind = iota
	KindEnqueue
	KindDrop
	KindTxStart
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIngress:
		return "ingress"
	case KindEnqueue:
		return "enqueue"
	case KindDrop:
		return "drop"
	case KindTxStart:
		return "tx-start"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one probe sample.
type Event struct {
	At     sim.Time
	Kind   Kind
	Switch int
	Port   int
	Queue  int
	FlowID uint32
	Seq    uint32
	// Detail carries the drop reason or other annotations.
	Detail string
}

// PacketKey identifies one packet across hops.
type PacketKey struct {
	FlowID uint32
	Seq    uint32
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder ignores all records, so dataplanes can call it
// unconditionally.
type Recorder struct {
	events   []Event
	byPacket map[PacketKey][]int
	// Limit bounds stored events (0 = unlimited). Beyond it new events
	// are counted but not stored.
	Limit   int
	dropped uint64
	// droppedKind breaks the truncation down per event kind so Filter
	// callers can tell exactly how incomplete their view is.
	droppedKind map[Kind]uint64
}

// Record appends one event.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		if r.droppedKind == nil {
			r.droppedKind = make(map[Kind]uint64)
		}
		r.droppedKind[ev.Kind]++
		return
	}
	if r.byPacket == nil {
		r.byPacket = make(map[PacketKey][]int)
	}
	idx := len(r.events)
	r.events = append(r.events, ev)
	k := PacketKey{FlowID: ev.FlowID, Seq: ev.Seq}
	r.byPacket[k] = append(r.byPacket[k], idx)
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Truncated returns how many events exceeded Limit.
func (r *Recorder) Truncated() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Complete reports whether the recorder holds every event it was
// offered. When false, Packet and Filter views are missing events and
// absence of evidence is not evidence of absence.
func (r *Recorder) Complete() bool { return r.Truncated() == 0 }

// DroppedOfKind returns how many events of the given kind were lost to
// truncation — the exact deficit of a Filter(kind) result.
func (r *Recorder) DroppedOfKind(kind Kind) uint64 {
	if r == nil {
		return 0
	}
	return r.droppedKind[kind]
}

// Events returns all stored events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Packet returns a packet's events in record (time) order. When the
// recorder is truncated (Complete() == false) the journey may be
// missing its tail: callers reconstructing per-hop invariants must
// check Truncated() before treating a short chain as a drop.
func (r *Recorder) Packet(flowID, seq uint32) []Event {
	if r == nil {
		return nil
	}
	idxs := r.byPacket[PacketKey{FlowID: flowID, Seq: seq}]
	out := make([]Event, len(idxs))
	for i, idx := range idxs {
		out[i] = r.events[idx]
	}
	return out
}

// Filter returns stored events matching kind. A counting pass sizes
// the result exactly, so the append loop never reallocates — traces
// run to millions of events and the doubling copies dominated.
// DroppedOfKind(kind) tells how many matching events truncation lost
// from the result.
func (r *Recorder) Filter(kind Kind) []Event {
	if r == nil {
		return nil
	}
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	for _, ev := range r.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// String renders an event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("%v %s sw%d.p%d q%d flow=%d seq=%d",
		e.At, e.Kind, e.Switch, e.Port, e.Queue, e.FlowID, e.Seq)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}
