package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeCountMatchesLen(t *testing.T) {
	var r Recorder
	r.Record(Event{At: 1500, Kind: KindIngress, Switch: 0, Port: -1, Queue: -1, FlowID: 1, Seq: 1})
	r.Record(Event{At: 2500, Kind: KindEnqueue, Switch: 0, Port: 1, Queue: 7, FlowID: 1, Seq: 1})
	r.Record(Event{At: 3500, Kind: KindDrop, Switch: 1, Port: 2, Queue: 3, FlowID: 2, Seq: 9, Detail: "queue-full"})

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			Args  struct {
				Flow   uint32 `json:"flow"`
				Detail string `json:"detail"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got.TraceEvents) != r.Len() {
		t.Fatalf("traceEvents = %d, want Len() = %d", len(got.TraceEvents), r.Len())
	}
	ev := got.TraceEvents[2]
	if ev.Name != "drop" || ev.Phase != "i" || ev.PID != 1 || ev.TID != 2 {
		t.Fatalf("drop event = %+v", ev)
	}
	if ev.TS != 3.5 { // 3500 ns = 3.5 µs
		t.Fatalf("ts = %v µs, want 3.5", ev.TS)
	}
	if ev.Args.Flow != 2 || ev.Args.Detail != "queue-full" {
		t.Fatalf("args = %+v", ev.Args)
	}
}

func TestWriteChromeNilAndEmpty(t *testing.T) {
	for _, r := range []*Recorder{nil, {}} {
		var buf bytes.Buffer
		if err := r.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		var got map[string]any
		if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if n := len(got["traceEvents"].([]any)); n != 0 {
			t.Fatalf("traceEvents = %d, want 0", n)
		}
	}
}

func TestLimitByPacketConsistency(t *testing.T) {
	r := Recorder{Limit: 3}
	// Two events of packet (1,1) stored, then the limit cuts off the
	// third and everything of packet (2,2).
	r.Record(Event{At: 1, Kind: KindIngress, FlowID: 1, Seq: 1})
	r.Record(Event{At: 2, Kind: KindEnqueue, FlowID: 1, Seq: 1})
	r.Record(Event{At: 3, Kind: KindIngress, FlowID: 2, Seq: 2})
	r.Record(Event{At: 4, Kind: KindTxStart, FlowID: 1, Seq: 1})
	r.Record(Event{At: 5, Kind: KindEnqueue, FlowID: 2, Seq: 2})

	if r.Len() != 3 || r.Truncated() != 2 {
		t.Fatalf("Len = %d, Truncated = %d", r.Len(), r.Truncated())
	}
	// byPacket only indexes stored events, in record order.
	p1 := r.Packet(1, 1)
	if len(p1) != 2 || p1[0].Kind != KindIngress || p1[1].Kind != KindEnqueue {
		t.Fatalf("packet(1,1) = %+v", p1)
	}
	if p2 := r.Packet(2, 2); len(p2) != 1 || p2[0].At != 3 {
		t.Fatalf("packet(2,2) = %+v", p2)
	}
	// Filter and export stay consistent with the stored view.
	if got := r.Filter(KindEnqueue); len(got) != 1 {
		t.Fatalf("enqueue events = %d", len(got))
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderChromeSafe(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nil recorder wrote nothing")
	}
}

func TestFilterPreallocated(t *testing.T) {
	var r Recorder
	for i := 0; i < 100; i++ {
		k := KindIngress
		if i%2 == 0 {
			k = KindTxStart
		}
		r.Record(Event{Seq: uint32(i), Kind: k})
	}
	out := r.Filter(KindTxStart)
	if len(out) != 50 || cap(out) != 50 {
		t.Fatalf("len = %d cap = %d, want 50/50", len(out), cap(out))
	}
	if r.Filter(KindDrop) != nil {
		t.Fatal("no-match filter should return nil")
	}
}

func BenchmarkFilter(b *testing.B) {
	var r Recorder
	for i := 0; i < 1<<16; i++ {
		r.Record(Event{Seq: uint32(i), Kind: Kind(i % 4)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Filter(KindDrop); len(got) != 1<<14 {
			b.Fatalf("filtered = %d", len(got))
		}
	}
}
