package trace

import "sync"

// Flight is the always-on flight recorder: a fixed-capacity ring of the
// most recent dataplane events, kept cheap enough to leave enabled in
// every run (one mutexed copy into a preallocated ring slot, zero
// allocations after construction — the same philosophy as the engine's
// generation-counted free list). Where Recorder stores a complete trace
// for offline analysis and is opt-in, Flight keeps only the recent past
// so that a deadline miss, a watchdog degradation or an injected fault
// can dump the events leading up to it.
//
// Unlike the rest of the dataplane, Flight is safe for concurrent use:
// the simulation thread records while the telemetry server reads
// snapshots and streams increments.
type Flight struct {
	mu  sync.Mutex
	buf []Event
	// seq counts events ever recorded; it is the generation cursor for
	// Since and tells readers how much history the ring has dropped.
	seq uint64
}

// NewFlight builds a recorder holding the last capacity events.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		panic("trace: non-positive flight recorder capacity")
	}
	return &Flight{buf: make([]Event, capacity)}
}

// Record stores one event, overwriting the oldest when the ring is
// full. Nil-safe so dataplanes can call it unconditionally.
func (fl *Flight) Record(ev Event) {
	if fl == nil {
		return
	}
	fl.mu.Lock()
	fl.buf[fl.seq%uint64(len(fl.buf))] = ev
	fl.seq++
	fl.mu.Unlock()
}

// Cap returns the ring capacity.
func (fl *Flight) Cap() int {
	if fl == nil {
		return 0
	}
	return len(fl.buf)
}

// Seq returns the total number of events ever recorded. Events with
// ordinal < Seq()-Cap() have been overwritten.
func (fl *Flight) Seq() uint64 {
	if fl == nil {
		return 0
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.seq
}

// Len returns how many events the ring currently holds.
func (fl *Flight) Len() int {
	if fl == nil {
		return 0
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.len()
}

func (fl *Flight) len() int {
	if fl.seq < uint64(len(fl.buf)) {
		return int(fl.seq)
	}
	return len(fl.buf)
}

// Snapshot copies the retained events oldest-first.
func (fl *Flight) Snapshot() []Event {
	if fl == nil {
		return nil
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	n := fl.len()
	out := make([]Event, n)
	start := fl.seq - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = fl.buf[(start+uint64(i))%uint64(len(fl.buf))]
	}
	return out
}

// SnapshotFlow copies the retained events of one flow, oldest-first —
// the "offending span chain" a deadline-miss dump wants.
func (fl *Flight) SnapshotFlow(flowID uint32) []Event {
	if fl == nil {
		return nil
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	n := fl.len()
	start := fl.seq - uint64(n)
	var out []Event
	for i := 0; i < n; i++ {
		ev := fl.buf[(start+uint64(i))%uint64(len(fl.buf))]
		if ev.FlowID == flowID {
			out = append(out, ev)
		}
	}
	return out
}

// Since appends the events recorded after cursor to buf (oldest-first)
// and returns the extended slice plus the new cursor — the streaming
// read primitive for the telemetry server's event feed. If the ring has
// wrapped past cursor the overwritten events are skipped; the caller
// can detect the gap by comparing next-cursor deltas against the
// returned length.
func (fl *Flight) Since(cursor uint64, buf []Event) (out []Event, next uint64) {
	if fl == nil {
		return buf, cursor
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	n := fl.len()
	oldest := fl.seq - uint64(n)
	if cursor < oldest {
		cursor = oldest
	}
	for ; cursor < fl.seq; cursor++ {
		buf = append(buf, fl.buf[cursor%uint64(len(fl.buf))])
	}
	return buf, fl.seq
}
