package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the JSON consumed by chrome://tracing and
// Perfetto). Timestamps are microseconds; fractional digits keep the
// simulator's nanosecond resolution.
type chromeEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat"`
	Phase string     `json:"ph"`
	TS    float64    `json:"ts"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Scope string     `json:"s"`
	Args  chromeArgs `json:"args"`
}

type chromeArgs struct {
	Flow   uint32 `json:"flow"`
	Seq    uint32 `json:"seq"`
	Queue  int    `json:"queue"`
	Detail string `json:"detail,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
	// TruncatedEvents is the recorder's Truncated() count: how many
	// events the Limit dropped and this export therefore lacks. Zero on
	// a complete trace; tooling must treat a non-zero value as an
	// incomplete view, not a clean run.
	TruncatedEvents uint64 `json:"truncatedEvents"`
}

// WriteChrome exports every stored event as a thread-scoped instant
// event: pid = switch, tid = port, name = event kind. The output loads
// directly into chrome://tracing or Perfetto; the traceEvents array
// holds exactly Len() entries (no metadata records), and the top-level
// truncatedEvents field carries Truncated() so tooling can cross-check
// completeness against the recorder.
func (r *Recorder) WriteChrome(w io.Writer) error {
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		TraceEvents:     []chromeEvent{},
		TruncatedEvents: r.Truncated(),
	}
	if r != nil {
		out.TraceEvents = make([]chromeEvent, 0, len(r.events))
		for _, ev := range r.events {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  ev.Kind.String(),
				Cat:   "dataplane",
				Phase: "i",
				TS:    float64(ev.At) / 1e3,
				PID:   ev.Switch,
				TID:   ev.Port,
				Scope: "t",
				Args: chromeArgs{
					Flow: ev.FlowID, Seq: ev.Seq,
					Queue: ev.Queue, Detail: ev.Detail,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
