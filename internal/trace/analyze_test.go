package trace

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// record a packet's journey: enqueue at sw/port at t, tx at t+d.
func journey(r *Recorder, flow, seq uint32, sw, port, queue int, at, residence sim.Time) {
	r.Record(Event{At: at, Kind: KindEnqueue, Switch: sw, Port: port, Queue: queue, FlowID: flow, Seq: seq})
	r.Record(Event{At: at + residence, Kind: KindTxStart, Switch: sw, Port: port, Queue: queue, FlowID: flow, Seq: seq})
}

func TestResidences(t *testing.T) {
	var r Recorder
	journey(&r, 1, 0, 0, 1, 7, 0, 10*sim.Microsecond)
	journey(&r, 1, 0, 1, 0, 7, 20*sim.Microsecond, 30*sim.Microsecond)
	journey(&r, 2, 0, 0, 1, 7, 5*sim.Microsecond, 20*sim.Microsecond)

	res := Residences(&r)
	if len(res) != 2 {
		t.Fatalf("cells = %d, want 2", len(res))
	}
	// Worst max first: sw1 (30µs) then sw0 (20µs).
	if res[0].Switch != 1 || res[0].Max != 30*sim.Microsecond {
		t.Fatalf("worst = %+v", res[0])
	}
	sw0 := res[1]
	if sw0.Count != 2 || sw0.Mean() != 15*sim.Microsecond || sw0.Max != 20*sim.Microsecond {
		t.Fatalf("sw0 = %+v", sw0)
	}
	if !strings.Contains(sw0.String(), "sw0.p1 q7") {
		t.Fatalf("format: %s", sw0.String())
	}
}

func TestResidencesIgnoresDrops(t *testing.T) {
	var r Recorder
	r.Record(Event{At: 0, Kind: KindEnqueue, Switch: 0, Port: 1, Queue: 7, FlowID: 1, Seq: 0})
	r.Record(Event{At: 5, Kind: KindDrop, Switch: 0, Port: 1, Queue: 7, FlowID: 1, Seq: 0})
	if res := Residences(&r); len(res) != 0 {
		t.Fatalf("dropped packet produced residences: %v", res)
	}
}

func TestResidencesMultiHopPairing(t *testing.T) {
	// One packet crossing two switches: each enqueue pairs with its own
	// switch's tx, not the downstream one.
	var r Recorder
	journey(&r, 1, 0, 0, 0, 7, 0, 10)
	journey(&r, 1, 0, 1, 0, 7, 100, 40)
	res := Residences(&r)
	if len(res) != 2 {
		t.Fatalf("cells = %d", len(res))
	}
	for _, c := range res {
		switch c.Switch {
		case 0:
			if c.Max != 10 {
				t.Fatalf("sw0 residence %v", c.Max)
			}
		case 1:
			if c.Max != 40 {
				t.Fatalf("sw1 residence %v", c.Max)
			}
		}
	}
}

func TestTopResidences(t *testing.T) {
	var r Recorder
	for i := 0; i < 5; i++ {
		journey(&r, uint32(i+1), 0, i, 0, 7, 0, sim.Time(i+1)*sim.Microsecond)
	}
	top := TopResidences(&r, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].Switch != 4 || top[1].Switch != 3 {
		t.Fatalf("ordering wrong: %v", top)
	}
	if TopResidences(nil, 3) != nil {
		t.Fatal("nil recorder produced results")
	}
}
