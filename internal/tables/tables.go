// Package tables implements the capacity-bounded lookup tables of the
// paper's resource view (Fig. 4): the unicast and multicast switch
// tables consulted by the Packet Switch template and the classification
// table consulted by the Ingress Filter template.
//
// Every table has a fixed capacity set through the TSN-Builder
// customization APIs; inserting beyond capacity fails with ErrTableFull
// exactly as a full hardware table would reject a control-plane write.
package tables

import (
	"errors"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

// ErrTableFull is returned when an insert exceeds the configured
// capacity.
var ErrTableFull = errors.New("tables: table full")

// UnicastKey is the switch-table key: destination MAC + VLAN ID
// (Fig. 4 "Dst MAC, VID").
type UnicastKey struct {
	Dst ethernet.MAC
	VID uint16
}

// UnicastTable maps (Dst MAC, VID) to an output port.
type UnicastTable struct {
	capacity int
	entries  map[UnicastKey]int
	// lookups/misses are observability counters for the experiments.
	lookups uint64
	misses  uint64
}

// NewUnicast returns a unicast table with the given capacity.
func NewUnicast(capacity int) *UnicastTable {
	if capacity < 0 {
		panic("tables: negative capacity")
	}
	return &UnicastTable{capacity: capacity, entries: make(map[UnicastKey]int)}
}

// Capacity returns the configured entry budget.
func (t *UnicastTable) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *UnicastTable) Len() int { return len(t.entries) }

// Add installs dst/vid -> outPort. Overwriting an existing key does not
// consume capacity.
func (t *UnicastTable) Add(dst ethernet.MAC, vid uint16, outPort int) error {
	k := UnicastKey{Dst: dst, VID: vid}
	if _, ok := t.entries[k]; !ok && len(t.entries) >= t.capacity {
		return fmt.Errorf("%w: unicast capacity %d", ErrTableFull, t.capacity)
	}
	t.entries[k] = outPort
	return nil
}

// Lookup resolves the output port for dst/vid.
func (t *UnicastTable) Lookup(dst ethernet.MAC, vid uint16) (outPort int, ok bool) {
	t.lookups++
	outPort, ok = t.entries[UnicastKey{Dst: dst, VID: vid}]
	if !ok {
		t.misses++
	}
	return outPort, ok
}

// Stats returns (lookups, misses).
func (t *UnicastTable) Stats() (uint64, uint64) { return t.lookups, t.misses }

// Resize changes the entry budget in place — the live-reconfiguration
// primitive behind set_switch_tbl. Installed entries survive; shrinking
// below the live occupancy fails.
func (t *UnicastTable) Resize(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("tables: negative unicast capacity %d", capacity)
	}
	if len(t.entries) > capacity {
		return fmt.Errorf("tables: cannot shrink unicast table to %d: %d entries installed",
			capacity, len(t.entries))
	}
	t.capacity = capacity
	return nil
}

// MulticastTable maps a multicast index (MC ID) to a set of output
// ports, represented as a bitmask.
type MulticastTable struct {
	capacity int
	entries  map[uint16]uint32
}

// NewMulticast returns a multicast table with the given capacity.
// Capacity zero is valid: the paper's customized switches split
// multicast flows into unicast flows and allocate no multicast table.
func NewMulticast(capacity int) *MulticastTable {
	if capacity < 0 {
		panic("tables: negative capacity")
	}
	return &MulticastTable{capacity: capacity, entries: make(map[uint16]uint32)}
}

// Capacity returns the configured entry budget.
func (t *MulticastTable) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *MulticastTable) Len() int { return len(t.entries) }

// Add installs mcID -> port bitmask.
func (t *MulticastTable) Add(mcID uint16, portMask uint32) error {
	if _, ok := t.entries[mcID]; !ok && len(t.entries) >= t.capacity {
		return fmt.Errorf("%w: multicast capacity %d", ErrTableFull, t.capacity)
	}
	t.entries[mcID] = portMask
	return nil
}

// Lookup resolves the output port set for mcID.
func (t *MulticastTable) Lookup(mcID uint16) (portMask uint32, ok bool) {
	portMask, ok = t.entries[mcID]
	return portMask, ok
}

// Resize changes the entry budget in place; shrinking below the live
// occupancy fails.
func (t *MulticastTable) Resize(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("tables: negative multicast capacity %d", capacity)
	}
	if len(t.entries) > capacity {
		return fmt.Errorf("tables: cannot shrink multicast table to %d: %d entries installed",
			capacity, len(t.entries))
	}
	t.capacity = capacity
	return nil
}

// ClassKey is the classification-table key from Fig. 4: the combination
// of Src MAC, Dst MAC, VID and PRI carried in the packet header.
type ClassKey struct {
	Src ethernet.MAC
	Dst ethernet.MAC
	VID uint16
	PRI uint8
}

// ClassEntry is the classification result: which meter polices the flow
// and which queue it joins (Fig. 4 "Meter ID, Queue ID").
type ClassEntry struct {
	MeterID int
	QueueID int
	// HasMeter distinguishes unmetered entries (TS flows are gate-
	// controlled, not rate-policed).
	HasMeter bool
}

// ClassTable is the Ingress Filter's classification table.
type ClassTable struct {
	capacity int
	entries  map[ClassKey]ClassEntry
	lookups  uint64
	misses   uint64
}

// NewClass returns a classification table with the given capacity.
func NewClass(capacity int) *ClassTable {
	if capacity < 0 {
		panic("tables: negative capacity")
	}
	return &ClassTable{capacity: capacity, entries: make(map[ClassKey]ClassEntry)}
}

// Capacity returns the configured entry budget.
func (t *ClassTable) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *ClassTable) Len() int { return len(t.entries) }

// Add installs a classification entry.
func (t *ClassTable) Add(k ClassKey, e ClassEntry) error {
	if _, ok := t.entries[k]; !ok && len(t.entries) >= t.capacity {
		return fmt.Errorf("%w: classification capacity %d", ErrTableFull, t.capacity)
	}
	t.entries[k] = e
	return nil
}

// Lookup classifies a header tuple.
func (t *ClassTable) Lookup(k ClassKey) (ClassEntry, bool) {
	t.lookups++
	e, ok := t.entries[k]
	if !ok {
		t.misses++
	}
	return e, ok
}

// KeyFor extracts the classification key from a frame.
func KeyFor(f *ethernet.Frame) ClassKey {
	return ClassKey{Src: f.Src, Dst: f.Dst, VID: f.VID, PRI: f.PCP}
}

// Stats returns (lookups, misses).
func (t *ClassTable) Stats() (uint64, uint64) { return t.lookups, t.misses }

// Resize changes the entry budget in place — the live-reconfiguration
// primitive behind set_class_tbl. Installed entries survive; shrinking
// below the live occupancy fails.
func (t *ClassTable) Resize(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("tables: negative classification capacity %d", capacity)
	}
	if len(t.entries) > capacity {
		return fmt.Errorf("tables: cannot shrink classification table to %d: %d entries installed",
			capacity, len(t.entries))
	}
	t.capacity = capacity
	return nil
}
