package tables

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

func TestUnicastAddLookup(t *testing.T) {
	tbl := NewUnicast(4)
	if err := tbl.Add(ethernet.HostMAC(1), 100, 2); err != nil {
		t.Fatal(err)
	}
	port, ok := tbl.Lookup(ethernet.HostMAC(1), 100)
	if !ok || port != 2 {
		t.Fatalf("Lookup = (%d,%v)", port, ok)
	}
	// Same MAC, different VID is a distinct key.
	if _, ok := tbl.Lookup(ethernet.HostMAC(1), 101); ok {
		t.Fatal("lookup with wrong VID hit")
	}
}

func TestUnicastCapacity(t *testing.T) {
	tbl := NewUnicast(2)
	if err := tbl.Add(ethernet.HostMAC(1), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(ethernet.HostMAC(2), 1, 0); err != nil {
		t.Fatal(err)
	}
	err := tbl.Add(ethernet.HostMAC(3), 1, 0)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("overflow err = %v, want ErrTableFull", err)
	}
	// Overwrite of an existing key must still succeed.
	if err := tbl.Add(ethernet.HostMAC(2), 1, 3); err != nil {
		t.Fatalf("overwrite failed: %v", err)
	}
	if port, _ := tbl.Lookup(ethernet.HostMAC(2), 1); port != 3 {
		t.Fatal("overwrite not applied")
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
}

func TestUnicastStats(t *testing.T) {
	tbl := NewUnicast(1)
	_ = tbl.Add(ethernet.HostMAC(1), 1, 0)
	tbl.Lookup(ethernet.HostMAC(1), 1)
	tbl.Lookup(ethernet.HostMAC(9), 1)
	lookups, misses := tbl.Stats()
	if lookups != 2 || misses != 1 {
		t.Fatalf("Stats = (%d,%d), want (2,1)", lookups, misses)
	}
}

func TestMulticast(t *testing.T) {
	tbl := NewMulticast(2)
	if err := tbl.Add(7, 0b1010); err != nil {
		t.Fatal(err)
	}
	mask, ok := tbl.Lookup(7)
	if !ok || mask != 0b1010 {
		t.Fatalf("Lookup = (%b,%v)", mask, ok)
	}
	if _, ok := tbl.Lookup(8); ok {
		t.Fatal("missing MC ID hit")
	}
}

func TestMulticastZeroCapacity(t *testing.T) {
	// The paper's customized switches allocate no multicast table.
	tbl := NewMulticast(0)
	if err := tbl.Add(1, 1); !errors.Is(err, ErrTableFull) {
		t.Fatalf("zero-capacity add err = %v", err)
	}
	if tbl.Capacity() != 0 {
		t.Fatal("capacity not 0")
	}
}

func TestClassTable(t *testing.T) {
	tbl := NewClass(8)
	k := ClassKey{Src: ethernet.HostMAC(1), Dst: ethernet.HostMAC(2), VID: 10, PRI: 7}
	e := ClassEntry{MeterID: 3, QueueID: 7, HasMeter: true}
	if err := tbl.Add(k, e); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Lookup(k)
	if !ok || got != e {
		t.Fatalf("Lookup = (%+v,%v)", got, ok)
	}
	// PRI participates in the key.
	k2 := k
	k2.PRI = 5
	if _, ok := tbl.Lookup(k2); ok {
		t.Fatal("lookup with wrong PRI hit")
	}
}

func TestClassCapacity(t *testing.T) {
	tbl := NewClass(1)
	k1 := ClassKey{VID: 1}
	k2 := ClassKey{VID: 2}
	if err := tbl.Add(k1, ClassEntry{}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(k2, ClassEntry{}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyFor(t *testing.T) {
	f := &ethernet.Frame{
		Src: ethernet.HostMAC(1), Dst: ethernet.HostMAC(2),
		VID: 55, PCP: 6,
	}
	k := KeyFor(f)
	want := ClassKey{Src: f.Src, Dst: f.Dst, VID: 55, PRI: 6}
	if k != want {
		t.Fatalf("KeyFor = %+v", k)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"unicast":   func() { NewUnicast(-1) },
		"multicast": func() { NewMulticast(-1) },
		"class":     func() { NewClass(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: a unicast table never holds more entries than its capacity,
// and every successful Add is subsequently visible.
func TestUnicastCapacityProperty(t *testing.T) {
	prop := func(ids []uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		tbl := NewUnicast(capacity)
		for _, id := range ids {
			mac := ethernet.HostMAC(int(id % 64))
			err := tbl.Add(mac, 1, int(id))
			if err == nil {
				if port, ok := tbl.Lookup(mac, 1); !ok || port != int(id) {
					return false
				}
			}
			if tbl.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
