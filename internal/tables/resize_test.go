package tables

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

func TestUnicastResize(t *testing.T) {
	tbl := NewUnicast(2)
	if err := tbl.Add(ethernet.HostMAC(1), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(ethernet.HostMAC(2), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Resize(1); err == nil {
		t.Fatal("shrink below occupancy accepted")
	}
	if err := tbl.Resize(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := tbl.Resize(3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(ethernet.HostMAC(3), 1, 0); err != nil {
		t.Fatalf("add after grow: %v", err)
	}
	if err := tbl.Add(ethernet.HostMAC(4), 1, 0); err == nil {
		t.Fatal("add beyond new capacity accepted")
	}
}

func TestMulticastResize(t *testing.T) {
	tbl := NewMulticast(1)
	if err := tbl.Add(7, 0b11); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Resize(0); err == nil {
		t.Fatal("shrink below occupancy accepted")
	}
	if err := tbl.Resize(2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(8, 0b01); err != nil {
		t.Fatal(err)
	}
}

func TestClassResize(t *testing.T) {
	tbl := NewClass(1)
	key := ClassKey{Src: ethernet.HostMAC(1), Dst: ethernet.HostMAC(2), VID: 1, PRI: 7}
	if err := tbl.Add(key, ClassEntry{QueueID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Resize(0); err == nil {
		t.Fatal("shrink below occupancy accepted")
	}
	if err := tbl.Resize(2); err != nil {
		t.Fatal(err)
	}
	key2 := key
	key2.VID = 2
	if err := tbl.Add(key2, ClassEntry{QueueID: 2}); err != nil {
		t.Fatal(err)
	}
}
