// Package filter implements the Ingress Filter function template of
// Fig. 5: a classifier that differentiates flows on the (Src MAC,
// Dst MAC, VID, PRI) tuple and puts packets into the specified meters
// (802.1Qci per-stream filtering and policing). The classification
// result carries the Meter ID that polices the flow and the Queue ID it
// joins at the output port.
package filter

import (
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/meter"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tables"
)

// Verdict is the outcome of the ingress filtering stage.
type Verdict struct {
	QueueID int
	// Classified reports whether a classification entry matched;
	// unclassified frames fall back to PCP-based queue mapping.
	Classified bool
	// Conform is false when the flow's meter dropped the frame.
	Conform bool
}

// Engine is one switch's Ingress Filter stage.
type Engine struct {
	Class  *tables.ClassTable
	Meters *meter.Table
	// queueCount bounds the fallback PCP→queue mapping.
	queueCount int
	meterDrops uint64
}

// New creates the stage with the given classification-table and
// meter-table capacities (set_class_tbl / set_meter_tbl parameters).
func New(classSize, meterSize, queueCount int) *Engine {
	if queueCount <= 0 {
		panic("filter: non-positive queue count")
	}
	return &Engine{
		Class:      tables.NewClass(classSize),
		Meters:     meter.NewTable(meterSize),
		queueCount: queueCount,
	}
}

// Process classifies and polices one frame at instant now.
func (e *Engine) Process(f *ethernet.Frame, now sim.Time) Verdict {
	entry, hit := e.Class.Lookup(tables.KeyFor(f))
	if !hit {
		// Fallback: map PCP directly onto a queue, unmetered. This is
		// the 802.1Q default priority→traffic-class mapping.
		q := int(f.PCP)
		if q >= e.queueCount {
			q = e.queueCount - 1
		}
		return Verdict{QueueID: q, Classified: false, Conform: true}
	}
	v := Verdict{QueueID: entry.QueueID, Classified: true, Conform: true}
	if entry.HasMeter && !e.Meters.Conform(entry.MeterID, now, f.WireBytes()) {
		v.Conform = false
		e.meterDrops++
	}
	return v
}

// MeterDrops returns the number of frames dropped by policing.
func (e *Engine) MeterDrops() uint64 { return e.meterDrops }
