package filter

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tables"
)

func tsFrame() *ethernet.Frame {
	return &ethernet.Frame{
		Src: ethernet.HostMAC(1), Dst: ethernet.HostMAC(2),
		VID: 10, PCP: 7, Class: ethernet.ClassTS,
	}
}

func TestClassifiedFrame(t *testing.T) {
	e := New(8, 8, 8)
	err := e.Class.Add(tables.KeyFor(tsFrame()), tables.ClassEntry{QueueID: 7})
	if err != nil {
		t.Fatal(err)
	}
	v := e.Process(tsFrame(), 0)
	if !v.Classified || v.QueueID != 7 || !v.Conform {
		t.Fatalf("Verdict = %+v", v)
	}
}

func TestFallbackPCPMapping(t *testing.T) {
	e := New(8, 8, 8)
	f := tsFrame()
	f.PCP = 3
	v := e.Process(f, 0)
	if v.Classified || v.QueueID != 3 || !v.Conform {
		t.Fatalf("Verdict = %+v", v)
	}
}

func TestFallbackClampsToQueueCount(t *testing.T) {
	e := New(8, 8, 4)
	f := tsFrame()
	f.PCP = 7
	if v := e.Process(f, 0); v.QueueID != 3 {
		t.Fatalf("QueueID = %d, want clamped 3", v.QueueID)
	}
}

func TestMeteredFlow(t *testing.T) {
	e := New(8, 8, 8)
	key := tables.KeyFor(tsFrame())
	if err := e.Class.Add(key, tables.ClassEntry{QueueID: 5, MeterID: 2, HasMeter: true}); err != nil {
		t.Fatal(err)
	}
	// 1 Mbps meter with a one-frame burst.
	if err := e.Meters.Configure(2, ethernet.Mbps, 64); err != nil {
		t.Fatal(err)
	}
	if v := e.Process(tsFrame(), 0); !v.Conform {
		t.Fatal("first frame dropped")
	}
	if v := e.Process(tsFrame(), 0); v.Conform {
		t.Fatal("burst-exceeding frame passed")
	}
	if e.MeterDrops() != 1 {
		t.Fatalf("MeterDrops = %d", e.MeterDrops())
	}
	// After 512 µs at 1 Mbps, 64B of tokens are back.
	if v := e.Process(tsFrame(), 512*sim.Microsecond); !v.Conform {
		t.Fatal("frame after refill dropped")
	}
}

func TestUnmeteredEntry(t *testing.T) {
	e := New(8, 8, 8)
	key := tables.KeyFor(tsFrame())
	_ = e.Class.Add(key, tables.ClassEntry{QueueID: 7, HasMeter: false})
	for i := 0; i < 100; i++ {
		if v := e.Process(tsFrame(), 0); !v.Conform {
			t.Fatal("unmetered frame dropped")
		}
	}
}

func TestInvalidQueueCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero queueCount did not panic")
		}
	}()
	New(8, 8, 0)
}
