// Package workload constructs the canonical tsnsim workload — topology,
// attached hosts, TS flow set with optional FRER coverage and RC/BE
// background, derived configuration and built design — from a compact
// parameter set. It is the single definition both cmd/tsnsim and the
// chaos campaign engine build from, which is what makes a chaos case
// replayable through plain tsnsim flags: the same Params always produce
// byte-identical flow sets and designs.
package workload

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// MaxFRERFlows caps how many TS flows can carry FRER redundancy: each
// member stream needs its own alternate VID from the band above the TS
// VID space (4001..4064).
const MaxFRERFlows = 64

// Params selects one workload. Every field maps 1:1 to a tsnsim flag,
// so any Params value is expressible as a command line.
type Params struct {
	// Topology is one of star, ring, bidir-ring, linear, tree, mesh,
	// fattree.
	Topology string
	// Switches is the node count (star children = Switches-1, tree
	// leaves = (Switches-3)/2, mesh the squarest grid of exactly this
	// many nodes, fattree the smallest even arity reaching it).
	Switches int
	// TSFlows is the TS flow count.
	TSFlows int
	// Hops is how many switches each TS flow traverses.
	Hops int
	// WireSize is the TS frame size in bytes.
	WireSize int
	// SlotUs is the CQF slot in microseconds.
	SlotUs int
	// RCMbps/BEMbps are the per-injector background rates (up to three
	// injectors each).
	RCMbps, BEMbps int
	// FRERFlows makes the first min(FRERFlows, TSFlows, MaxFRERFlows)
	// TS flows 802.1CB-redundant (bidir-ring topologies only: the
	// alternate member stream needs a link-disjoint path).
	FRERFlows int
	// TSDeadline, when positive, overrides every TS flow's deadline.
	TSDeadline sim.Time
	// Seed drives deadline assignment (and clock drift downstream).
	Seed uint64
}

// Built is a constructed workload ready for testbed.Build.
type Built struct {
	Topo   *topology.Topology
	Specs  []*flows.Spec
	Der    *core.Derivation
	Design *core.Design
	// FRERFlows is the effective (capped) redundant-flow count.
	FRERFlows int
}

// Build constructs the workload deterministically from p. The
// construction order — topology, hosts 100+h/200+h per switch, TS flows
// with VID 1+i%4000, FRER tagging, background flows from id 100000,
// path binding, derivation, plan application, deadline override, design
// build — is load-bearing: cmd/tsnsim produced exactly this sequence
// before the extraction, and replay equivalence depends on keeping it.
func Build(p Params) (*Built, error) {
	var topo *topology.Topology
	switch p.Topology {
	case "star":
		topo = topology.Star(p.Switches - 1)
	case "ring":
		topo = topology.Ring(p.Switches)
	case "bidir-ring":
		topo = topology.RingBidir(p.Switches)
	case "linear":
		topo = topology.Linear(p.Switches)
	case "tree":
		topo = topology.Tree(2, (p.Switches-3)/2)
	case "mesh":
		topo = topology.MeshSquarish(p.Switches)
	case "fattree":
		topo = topology.FatTreeAtLeast(p.Switches)
	default:
		return nil, fmt.Errorf("unknown topology %q", p.Topology)
	}
	n := topo.N
	for h := 0; h < n; h++ {
		topo.AttachHost(100+h, h)
		topo.AttachHost(200+h, h)
	}

	specs := flows.GenerateTS(flows.TSParams{
		Count:    p.TSFlows,
		Period:   10 * sim.Millisecond,
		WireSize: p.WireSize,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % n
			return 100 + src, 100 + (src+p.Hops-1)%n
		},
		Seed: p.Seed,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	frerN := p.FRERFlows
	if frerN > len(specs) {
		frerN = len(specs)
	}
	if frerN > MaxFRERFlows {
		frerN = MaxFRERFlows
	}
	for i := 0; i < frerN; i++ {
		specs[i].FRER = true
		specs[i].AltVID = uint16(4001 + i)
	}
	id := uint32(100_000)
	for srcIdx := 0; srcIdx < 3 && srcIdx < n; srcIdx++ {
		if p.RCMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassRC,
				200+srcIdx, 100+(srcIdx+p.Hops-1)%n, uint16(3000+srcIdx),
				ethernet.Rate(p.RCMbps)*ethernet.Mbps))
			id++
		}
		if p.BEMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassBE,
				200+srcIdx, 100+(srcIdx+p.Hops-1)%n, uint16(3200+srcIdx),
				ethernet.Rate(p.BEMbps)*ethernet.Mbps))
			id++
		}
	}
	if err := core.BindPaths(topo, specs); err != nil {
		return nil, err
	}
	der, err := core.DeriveConfig(core.Scenario{
		Topo: topo, Flows: specs,
		SlotSize: sim.Time(p.SlotUs) * sim.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	der.Plan.Apply(specs)
	if p.TSDeadline > 0 {
		for _, s := range specs {
			if s.Class == ethernet.ClassTS {
				s.Deadline = sim.Time(p.TSDeadline)
			}
		}
	}
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		return nil, err
	}
	return &Built{Topo: topo, Specs: specs, Der: der, Design: design, FRERFlows: frerN}, nil
}
