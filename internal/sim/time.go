// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other subsystem runs on: switches,
// links, traffic generators and the gPTP protocol all schedule callbacks
// on a single event wheel. Time is modeled as integer nanoseconds, which
// is exact for 1 Gbps Ethernet (1 bit per nanosecond) and fine enough to
// observe sub-50 ns clock synchronization error.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant in nanoseconds since the start of the
// simulation. Negative values are valid only as deltas.
type Time int64

// Common durations expressed in simulation Time units (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts t into a time.Duration for interoperability with
// the standard library (both are nanosecond counts).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds, the unit the paper
// uses for slot sizes and end-to-end latency plots.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the instant with an adaptive unit, e.g. "65µs" or
// "1.5ms", matching how the paper labels its axes.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t%Microsecond == 0:
		return fmt.Sprintf("%dµs", t/Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
