package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, "c", func(*Engine) { got = append(got, 3) })
	e.At(10, "a", func(*Engine) { got = append(got, 1) })
	e.At(20, "b", func(*Engine) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		e.At(5, "tie", func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want scheduling order", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fires int
	var recur Handler
	recur = func(en *Engine) {
		fires++
		if fires < 10 {
			en.After(7, "recur", recur)
		}
	}
	e.After(7, "recur", recur)
	e.Run()
	if fires != 10 {
		t.Fatalf("fires = %d, want 10", fires)
	}
	if e.Now() != 70 {
		t.Fatalf("Now = %v, want 70", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, "late", func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(50, "past", func(*Engine) {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().After(-1, "neg", func(*Engine) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.At(10, "x", func(*Engine) { fired = true })
	if !e.Cancel(ref) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ref) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ref := e.At(10, "x", func(*Engine) {})
	e.Run()
	if e.Cancel(ref) {
		t.Fatal("Cancel after fire returned true")
	}
	if ref.Valid() {
		t.Fatal("fired event still Valid")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, "t", func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 events", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick Handler
	tick = func(en *Engine) {
		count++
		en.After(10, "tick", tick)
	}
	e.After(10, "tick", tick)
	e.RunFor(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	e.RunFor(100)
	if count != 20 {
		t.Fatalf("count = %d, want 20 after second RunFor", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), "n", func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestEngineAtPrioOrdersWithinInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	// Schedule out of priority order at one instant; plain At events
	// (prio 0) must run first, then prioritized events by prio.
	e.AtPrio(10, 7, "p7", func(*Engine) { got = append(got, 7) })
	e.AtPrio(10, 3, "p3", func(*Engine) { got = append(got, 3) })
	e.At(10, "plain", func(*Engine) { got = append(got, 0) })
	e.AtPrio(10, 5, "p5", func(*Engine) { got = append(got, 5) })
	e.Run()
	want := []int{0, 3, 5, 7}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineAtPrioFIFOWithinPrio(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.AtPrio(5, 1, "tie", func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-prio tie-break order = %v, want scheduling order", got)
		}
	}
}

func TestEnginePrioDoesNotOutrankTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.AtPrio(10, 1, "early-highprio", func(*Engine) { got = append(got, 1) })
	e.At(20, "late-plain", func(*Engine) { got = append(got, 2) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", got)
	}
}

func TestEngineRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 25, 30} {
		at := at
		e.At(at, "t", func(*Engine) { fired = append(fired, at) })
	}
	// Strictly-before semantics: the event at exactly 25 stays queued.
	e.RunBefore(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want the 2 events before 25", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	// The next window picks the boundary event up.
	e.RunBefore(26)
	if len(fired) != 3 || fired[2] != 25 {
		t.Fatalf("fired %v, want the boundary event at 25 in the next window", fired)
	}
	e.RunBefore(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 events", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEngineRunUntilStopKeepsClock(t *testing.T) {
	e := NewEngine()
	e.At(10, "stopper", func(en *Engine) { en.Stop() })
	e.At(20, "later", func(*Engine) {})
	e.RunUntil(100)
	if e.Now() != 10 {
		t.Fatalf("Now = %v after early Stop, want 10 (must not jump to the deadline)", e.Now())
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop ended the run")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// Resuming works: the next bounded run consumes the remaining event
	// and, completing normally, advances to its deadline.
	e.RunUntil(100)
	if e.Stopped() {
		t.Fatal("Stopped() = true after a run that completed normally")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v after resume, want 100", e.Now())
	}
}

func TestEngineRunBeforeStopKeepsClock(t *testing.T) {
	e := NewEngine()
	e.At(10, "stopper", func(en *Engine) { en.Stop() })
	e.RunBefore(100)
	if e.Now() != 10 {
		t.Fatalf("Now = %v after early Stop, want 10", e.Now())
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop ended the run")
	}
}

func TestEngineExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), "n", func(*Engine) {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

// Property: events always fire in nondecreasing time order regardless of
// the scheduling order.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.At(at, "p", func(*Engine) { fired = append(fired, at) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{65 * Microsecond, "65µs"},
		{10 * Millisecond, "10ms"},
		{2 * Second, "2s"},
		{1500, "1500ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (65 * Microsecond).Micros() != 65 {
		t.Error("Micros conversion wrong")
	}
	if (2 * Second).Seconds() != 2 {
		t.Error("Seconds conversion wrong")
	}
	if (1 * Millisecond).Duration().Microseconds() != 1000 {
		t.Error("Duration conversion wrong")
	}
}

func TestEngineFreeListReuse(t *testing.T) {
	e := NewEngine()
	var tick Handler
	n := 0
	tick = func(en *Engine) {
		n++
		if n < 1000 {
			en.After(1, "tick", tick)
		}
	}
	e.After(1, "tick", tick)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10 && e.step(); i++ {
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state self-rescheduling allocated %.1f/run, want 0", allocs)
	}
}

func TestEngineStaleRefDoesNotCancelReusedSlot(t *testing.T) {
	e := NewEngine()
	stale := e.At(10, "a", func(*Engine) {})
	e.Run() // fires "a"; its struct returns to the free list

	fired := false
	fresh := e.At(20, "b", func(*Engine) { fired = true })
	if stale.ev != fresh.ev {
		t.Skip("free list did not reuse the slot; nothing to test")
	}
	if stale.Valid() {
		t.Fatal("stale ref Valid after slot reuse")
	}
	if e.Cancel(stale) {
		t.Fatal("stale ref canceled a reused slot")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
	if fresh.Valid() {
		t.Fatal("fired ref still Valid")
	}
}

func TestEngineCancelReleasesClosure(t *testing.T) {
	e := NewEngine()
	big := make([]byte, 1<<20)
	ref := e.At(10, "big", func(*Engine) { _ = big })
	ev := ref.ev
	if !e.Cancel(ref) {
		t.Fatal("Cancel failed")
	}
	if ev.fn != nil || ev.label != "" {
		t.Fatal("canceled event retains closure or label")
	}
	if len(e.free) != 1 {
		t.Fatalf("free list length = %d, want 1", len(e.free))
	}
}

func TestEnginePopReleasesClosure(t *testing.T) {
	e := NewEngine()
	ref := e.At(10, "x", func(*Engine) {})
	ev := ref.ev
	e.Run()
	if ev.fn != nil || ev.label != "" {
		t.Fatal("fired event retains closure or label")
	}
}

func TestEngineFreeListBoundedByPendingDepth(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.At(Time(i), "x", func(*Engine) {})
	}
	e.Run()
	if len(e.free) > 64 {
		t.Fatalf("free list length = %d, want <= 64", len(e.free))
	}
	// A second wave of the same depth must not grow the free list.
	for i := 0; i < 64; i++ {
		e.At(e.Now()+Time(i+1), "y", func(*Engine) {})
	}
	e.Run()
	if len(e.free) > 64 {
		t.Fatalf("free list grew to %d after reuse wave, want <= 64", len(e.free))
	}
}
