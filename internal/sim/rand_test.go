package sim

import "testing"

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 64 draws", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values in 1000 draws, want 10", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / 10000
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandTimeRange(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 100; i++ {
		v := r.Time(65 * Microsecond)
		if v < 0 || v >= 65*Microsecond {
			t.Fatalf("Time draw %v out of range", v)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(32)
	seen := make([]bool, 32)
	for _, v := range p {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPick(t *testing.T) {
	r := NewRand(9)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[Pick(r, xs)]++
	}
	for _, x := range xs {
		if counts[x] == 0 {
			t.Fatalf("Pick never chose %q in 300 draws", x)
		}
	}
}
