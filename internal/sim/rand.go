package sim

// Rand is a small deterministic pseudo-random source (SplitMix64).
// Simulations must be reproducible across runs and platforms, so we do
// not use math/rand's global state; every stochastic component owns a
// seeded Rand stream.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Time returns a uniform Time in [0, n). n must be positive.
func (r *Rand) Time(n Time) Time {
	return Time(r.Int63n(int64(n)))
}

// Pick returns a uniformly chosen element of xs.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
