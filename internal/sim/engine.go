package sim

import (
	"container/heap"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled callback. Ties between events scheduled for the
// same instant break on (prio, seq): prio is a stable identity assigned
// by the caller (AtPrio) — zero for ordinary events, a unique
// per-interface index for frame deliveries — and seq is the scheduling
// order. Ordinary events therefore stay FIFO in scheduling order, while
// deliveries order by interface identity, which is what lets a
// partitioned run reproduce the serial execution order exactly: an
// interface index is the same number no matter which engine schedules
// the delivery, whereas a creation seq is not.
//
// Popped and canceled events are recycled through the engine's free
// list, so steady-state scheduling allocates nothing. gen increments on
// every recycle; an EventRef snapshots it so a stale ref can never
// resurrect (or cancel) a reused event.
type event struct {
	at    Time
	prio  uint64
	seq   uint64
	fn    Handler
	index int // heap index, -1 once popped or canceled
	label string
	gen   uint32
}

// eventHeap implements container/heap ordered by (at, prio, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// EventRef identifies a scheduled event so it can be canceled. The zero
// value refers to no event. A ref is pinned to the scheduling it came
// from: once the event fires or is canceled its slot may be recycled
// for a later scheduling, and the ref (generation-checked) reports
// invalid rather than aliasing the new occupant.
type EventRef struct {
	ev  *event
	gen uint32
}

// Valid reports whether the reference points at a still-pending event.
func (r EventRef) Valid() bool { return r.ev != nil && r.ev.gen == r.gen && r.ev.index >= 0 }

// Engine is a deterministic discrete-event scheduler. The zero value is
// not ready for use; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool
	// free recycles fired/canceled event structs so steady-state
	// scheduling is allocation-free. Bounded by the worst concurrent
	// pending-event count, not by total events executed.
	free []*event
	// Executed counts events run since construction; useful for
	// progress accounting in benchmarks.
	executed uint64

	// Telemetry handles; zero values are no-ops.
	metExecuted metrics.Counter
	metHeapHW   metrics.Gauge
	// Progress hook: fire progressFn every progressEvery events.
	progressEvery uint64
	progressLeft  uint64
	progressFn    func(executed uint64, now Time)
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Instrument binds the engine's telemetry: executed counts every
// dispatched event, heapHW tracks the worst pending-event heap depth.
// Call once, before Run; passing a nil registry's handles is safe.
func (e *Engine) Instrument(executed metrics.Counter, heapHW metrics.Gauge) {
	e.metExecuted = executed
	e.metHeapHW = heapHW
}

// SetProgress arranges for fn to be called every `every` dispatched
// events — the hook wall-clock progress reporters build on. A zero
// every or nil fn disables the hook.
func (e *Engine) SetProgress(every uint64, fn func(executed uint64, now Time)) {
	if every == 0 || fn == nil {
		e.progressEvery, e.progressFn = 0, nil
		return
	}
	e.progressEvery = every
	e.progressLeft = every
	e.progressFn = fn
}

// Now returns the current simulated time. During an event callback this
// is the event's scheduled instant.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have been dispatched.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// alloc takes an event struct off the free list, or heap-allocates one
// when the list is dry (cold start or a new pending-depth high water).
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped/canceled event to the free list. The
// closure and label are cleared eagerly so a parked struct never
// retains the callback's captured state, and the generation bump
// invalidates every outstanding EventRef to this slot.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.label = ""
	ev.gen++
	e.free = append(e.free, ev)
}

// At schedules fn to run at the absolute instant at. Scheduling in the
// past (before Now) panics: it indicates a causality bug in the caller.
func (e *Engine) At(at Time, label string, fn Handler) EventRef {
	return e.AtPrio(at, 0, label, fn)
}

// AtPrio schedules fn at the absolute instant at with an explicit
// same-instant tie-break priority. Events at one instant execute in
// (prio, scheduling-order) order; plain At/After events carry prio 0
// and so run before any prioritized event at the same instant. Callers
// use prio as a stable identity (netdev stamps frame deliveries with
// the receiving interface's global index) so execution order at an
// instant is a function of the model, not of which engine scheduled
// the event — the property partitioned runs need to match serial runs
// byte for byte.
func (e *Engine) AtPrio(at Time, prio uint64, label string, fn Handler) EventRef {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v which is before now %v", label, at, e.now))
	}
	ev := e.alloc()
	ev.at, ev.prio, ev.seq, ev.fn, ev.label = at, prio, e.nextSeq, fn, label
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.metHeapHW.SetMax(int64(len(e.queue)))
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run delay after the current time.
func (e *Engine) After(delay Time, label string, fn Handler) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", delay, label))
	}
	return e.At(e.now+delay, label, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op and returns false. The canceled
// event's closure is released immediately (and its struct recycled), so
// a canceled timer never pins its captured state.
func (e *Engine) Cancel(r EventRef) bool {
	if !r.Valid() {
		return false
	}
	heap.Remove(&e.queue, r.ev.index)
	e.recycle(r.ev)
	return true
}

// Stop makes the current Run/RunUntil/RunBefore/RunFor call return
// after the in-flight event completes. Pending events remain queued and
// the clock stays at the last executed event's instant — a stopped
// bounded run does NOT jump to its deadline, so Now() always reflects
// how far the simulation actually got. The flag is consumed by the next
// run call (each entry point resets it), so Stop outside a run is a
// no-op.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the last run call ended early via Stop.
func (e *Engine) Stopped() bool { return e.stopped }

// step pops and runs the earliest event. It reports false when the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.executed++
	e.metExecuted.Inc()
	if e.progressFn != nil {
		e.progressLeft--
		if e.progressLeft == 0 {
			e.progressLeft = e.progressEvery
			e.progressFn(e.executed, e.now)
		}
	}
	// Recycle before dispatch: the handler's own follow-up scheduling
	// (the self-rescheduling tick every periodic source uses) reuses
	// this very struct, making the steady state allocation-free.
	fn := ev.fn
	e.recycle(ev)
	fn(e)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to the deadline. Events scheduled beyond the deadline stay
// queued. If Stop ends the run early the clock is NOT advanced to the
// deadline — it stays at the last executed event so callers can see
// where the run actually stopped (check Stopped()).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before limit, then
// sets the clock to limit. It is the half-open window primitive the
// partitioned scheduler steps with: a conservative window [T, T+W) runs
// via RunBefore(T+W), leaving every event at exactly T+W (including
// cross-partition deliveries arriving at the window edge) for the next
// window. As with RunUntil, an early Stop leaves the clock where the
// run stopped.
func (e *Engine) RunBefore(limit Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at >= limit {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < limit {
		e.now = limit
	}
}

// RunFor advances the simulation by d from the current instant.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
