// Package clock models the free-running local oscillators inside TSN
// devices. Each device owns a Clock whose frequency deviates from ideal
// by a fixed drift (parts per billion) and whose readings are quantized
// to the hardware timestamping granularity (8 ns at the paper's 125 MHz
// FPGA clock). The gPTP servo disciplines a Clock by stepping its phase
// and trimming its frequency, exactly as the Time Sync template does in
// hardware.
package clock

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// PPB expresses a frequency offset in parts per billion. Typical
// crystal oscillators are within ±100 ppm = ±100_000 ppb; TSN-grade
// oscillators are much tighter.
type PPB int64

// Granularity125MHz is the timestamp quantum of a 125 MHz FPGA clock,
// the frequency of the paper's Zynq 7020 prototype.
const Granularity125MHz = 8 * sim.Nanosecond

// Clock is a disciplinable local oscillator.
//
// The local time advances at rate (1 + (drift+trim)/1e9) relative to
// simulated (true) time. Phase and frequency adjustments re-anchor the
// accumulation so adjustments never rewrite history.
type Clock struct {
	anchorSim   sim.Time // sim instant of the last re-anchor
	anchorLocal sim.Time // local reading at anchorSim
	drift       PPB      // intrinsic oscillator error (fixed)
	trim        PPB      // servo frequency correction
	granularity sim.Time // timestamp quantum; 0 = exact
}

// New returns a clock with the given intrinsic drift and initial phase
// offset from true time.
func New(drift PPB, initialOffset sim.Time) *Clock {
	return &Clock{anchorLocal: initialOffset, drift: drift}
}

// SetGranularity sets the timestamp quantum used by Timestamp.
func (c *Clock) SetGranularity(g sim.Time) {
	if g < 0 {
		panic("clock: negative granularity")
	}
	c.granularity = g
}

// rate returns the total frequency offset currently in effect.
func (c *Clock) rate() PPB { return c.drift + c.trim }

// Now returns the clock's local time at simulated instant now. now must
// not precede the last adjustment.
func (c *Clock) Now(now sim.Time) sim.Time {
	elapsed := now - c.anchorSim
	if elapsed < 0 {
		panic(fmt.Sprintf("clock: time moved backwards (%v before anchor %v)", now, c.anchorSim))
	}
	skew := int64(elapsed) * int64(c.rate()) / 1_000_000_000
	return c.anchorLocal + elapsed + sim.Time(skew)
}

// Timestamp returns the local time quantized to the hardware
// granularity, as a PHY timestamping unit would report it.
func (c *Clock) Timestamp(now sim.Time) sim.Time {
	t := c.Now(now)
	if c.granularity > 1 {
		t -= t % c.granularity
	}
	return t
}

// Offset returns localTime - trueTime at the simulated instant now:
// positive when the clock runs ahead.
func (c *Clock) Offset(now sim.Time) sim.Time { return c.Now(now) - now }

// reanchor fixes the current reading so subsequent rate changes apply
// only forward in time.
func (c *Clock) reanchor(now sim.Time) {
	c.anchorLocal = c.Now(now)
	c.anchorSim = now
}

// Step adds delta to the clock's phase at instant now.
func (c *Clock) Step(now sim.Time, delta sim.Time) {
	c.reanchor(now)
	c.anchorLocal += delta
}

// Trim replaces the servo frequency correction, effective from now.
func (c *Clock) Trim(now sim.Time, trim PPB) {
	c.reanchor(now)
	c.trim = trim
}

// TrimPPB returns the current servo frequency correction.
func (c *Clock) TrimPPB() PPB { return c.trim }

// Drift returns the intrinsic oscillator error.
func (c *Clock) Drift() PPB { return c.drift }

// SetDrift replaces the intrinsic oscillator error from now on — a
// frequency step, as a temperature shock or failing oscillator would
// produce. Past readings are unaffected; the servo trim is kept, so a
// disciplined clock starts re-converging from its current correction.
func (c *Clock) SetDrift(now sim.Time, drift PPB) {
	c.reanchor(now)
	c.drift = drift
}
