package clock

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestPerfectClockTracksTrueTime(t *testing.T) {
	c := New(0, 0)
	for _, now := range []sim.Time{0, 1, 1000, sim.Second} {
		if c.Now(now) != now {
			t.Fatalf("perfect clock Now(%v) = %v", now, c.Now(now))
		}
	}
}

func TestDriftAccumulates(t *testing.T) {
	// +100 ppm clock gains 100 µs per second.
	c := New(100_000, 0)
	got := c.Offset(sim.Second)
	if got != 100*sim.Microsecond {
		t.Fatalf("offset after 1s at +100ppm = %v, want 100µs", got)
	}
}

func TestNegativeDrift(t *testing.T) {
	c := New(-50_000, 0)
	if got := c.Offset(sim.Second); got != -50*sim.Microsecond {
		t.Fatalf("offset = %v, want -50µs", got)
	}
}

func TestInitialOffset(t *testing.T) {
	c := New(0, 3*sim.Millisecond)
	if c.Now(0) != 3*sim.Millisecond {
		t.Fatal("initial offset not applied")
	}
}

func TestStep(t *testing.T) {
	c := New(0, 0)
	c.Step(10*sim.Second, -7*sim.Microsecond)
	if got := c.Offset(10 * sim.Second); got != -7*sim.Microsecond {
		t.Fatalf("offset after step = %v", got)
	}
	// Step applies only from the adjustment instant forward.
	if got := c.Offset(20 * sim.Second); got != -7*sim.Microsecond {
		t.Fatalf("offset later = %v", got)
	}
}

func TestTrimCancelsDrift(t *testing.T) {
	c := New(25_000, 0)
	c.Trim(sim.Second, -25_000)
	before := c.Now(sim.Second)
	// After trimming, the clock should advance at the true rate.
	after := c.Now(2 * sim.Second)
	if after-before != sim.Second {
		t.Fatalf("trimmed clock advanced %v over 1s", after-before)
	}
	if c.TrimPPB() != -25_000 {
		t.Fatalf("TrimPPB = %d", c.TrimPPB())
	}
}

func TestTrimDoesNotRewriteHistory(t *testing.T) {
	c := New(100_000, 0)
	atTrim := c.Now(sim.Second)
	c.Trim(sim.Second, -100_000)
	if c.Now(sim.Second) != atTrim {
		t.Fatal("Trim changed the reading at the trim instant")
	}
}

func TestTimestampGranularity(t *testing.T) {
	c := New(0, 0)
	c.SetGranularity(Granularity125MHz)
	ts := c.Timestamp(13 * sim.Nanosecond)
	if ts != 8*sim.Nanosecond {
		t.Fatalf("Timestamp = %v, want 8ns", ts)
	}
	if c.Now(13*sim.Nanosecond) != 13*sim.Nanosecond {
		t.Fatal("granularity must not affect Now")
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	c := New(0, 0)
	c.Step(sim.Second, 0)
	defer func() {
		if recover() == nil {
			t.Error("reading before anchor did not panic")
		}
	}()
	c.Now(0)
}

func TestNegativeGranularityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative granularity did not panic")
		}
	}()
	New(0, 0).SetGranularity(-1)
}

// Property: for any drift within ±200 ppm and horizon within 10 s, the
// accumulated offset matches elapsed*drift/1e9 within 1 ns rounding.
func TestDriftProperty(t *testing.T) {
	prop := func(driftRaw int32, elapsedRaw uint32) bool {
		drift := PPB(driftRaw % 200_000)
		elapsed := sim.Time(elapsedRaw) % (10 * sim.Second)
		c := New(drift, 0)
		want := int64(elapsed) * int64(drift) / 1_000_000_000
		got := int64(c.Offset(elapsed))
		diff := got - want
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: stepping by d then reading at the same instant shifts the
// reading by exactly d.
func TestStepProperty(t *testing.T) {
	prop := func(driftRaw int32, stepRaw int32) bool {
		drift := PPB(driftRaw % 100_000)
		step := sim.Time(stepRaw)
		c := New(drift, 0)
		at := 5 * sim.Second
		before := c.Now(at)
		c.Step(at, step)
		return c.Now(at) == before+step
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDriftFrequencyStep(t *testing.T) {
	c := New(0, 0)
	// Perfect for 1 s, then a +100 ppm frequency step.
	c.SetDrift(sim.Second, 100_000)
	if got := c.Now(sim.Second); got != sim.Second {
		t.Fatalf("SetDrift rewrote history: Now(1s) = %v", got)
	}
	// One second at +100 ppm gains 100 µs.
	want := 2*sim.Second + 100*sim.Microsecond
	if got := c.Now(2 * sim.Second); got != want {
		t.Fatalf("Now(2s) = %v, want %v", got, want)
	}
	if c.Drift() != 100_000 {
		t.Fatalf("Drift = %d, want 100000", c.Drift())
	}
}

func TestSetDriftKeepsTrim(t *testing.T) {
	c := New(50_000, 0)
	c.Trim(0, -50_000) // servo cancels the drift exactly
	c.SetDrift(sim.Second, 80_000)
	if c.TrimPPB() != -50_000 {
		t.Fatalf("SetDrift clobbered trim: %d", c.TrimPPB())
	}
	// Net rate is now 80k-50k = +30k ppb = +30 ppm: gains 30 µs/s.
	want := 2*sim.Second + 30*sim.Microsecond
	if got := c.Now(2 * sim.Second); got != want {
		t.Fatalf("Now(2s) = %v, want %v", got, want)
	}
}
