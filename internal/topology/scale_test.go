package topology

import "testing"

func TestMeshShape(t *testing.T) {
	m := Mesh(3, 4)
	if m.N != 12 || m.Kind != KindMesh {
		t.Fatalf("mesh 3x4: N=%d kind=%v", m.N, m.Kind)
	}
	// Grid edge count: rows·(cols-1) horizontal + (rows-1)·cols vertical.
	if got, want := len(m.TrunkLinks()), 3*3+2*4; got != want {
		t.Fatalf("trunk links = %d, want %d", got, want)
	}
	// Interior node 5 (row 1, col 1) reaches all four neighbors.
	for _, nb := range []int{4, 6, 1, 9} {
		if _, ok := m.PortToward(5, nb); !ok {
			t.Fatalf("interior node 5 has no port toward %d", nb)
		}
	}
	// Corner 0 has exactly right and down.
	if m.PortCount(0) != 2 {
		t.Fatalf("corner port count = %d, want 2", m.PortCount(0))
	}
	// Shortest path crosses the grid with Manhattan length.
	path, err := m.Path(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Fatalf("path 0->11 has %d switches, want 6 (Manhattan 3+2)", len(path))
	}
}

func TestMeshSquarishFactors(t *testing.T) {
	cases := []struct{ n, rows int }{
		{12, 3},   // 3x4
		{16, 4},   // 4x4
		{200, 10}, // 10x20
		{7, 1},    // prime: 1x7 chain
	}
	for _, tc := range cases {
		m := MeshSquarish(tc.n)
		if m.N != tc.n {
			t.Fatalf("n=%d: built %d switches", tc.n, m.N)
		}
		// Recover rows from switch 0's downward neighbor: port toward
		// cols exists iff rows > 1.
		cols := tc.n / tc.rows
		if tc.rows > 1 {
			if _, ok := m.PortToward(0, cols); !ok {
				t.Fatalf("n=%d: expected %dx%d grid, no link 0->%d", tc.n, tc.rows, cols, cols)
			}
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	ft := FatTree(4) // 4 pods of 4, 4 core = 20 switches
	if ft.N != 20 || ft.Kind != KindFatTree {
		t.Fatalf("fat-tree k=4: N=%d kind=%v", ft.N, ft.Kind)
	}
	// Edge-agg: k pods × (k/2)² = 16; agg-core: k pods × k/2 aggs × k/2 = 16.
	if got := len(ft.TrunkLinks()); got != 32 {
		t.Fatalf("trunk links = %d, want 32", got)
	}
	// Pod 0: edges 0,1; aggs 2,3. Edge 0 reaches both aggs, no core.
	for _, nb := range []int{2, 3} {
		if _, ok := ft.PortToward(0, nb); !ok {
			t.Fatalf("edge 0 has no port toward agg %d", nb)
		}
	}
	// Agg 2 (index 0 in pod) uplinks to cores 16,17; agg 3 to 18,19.
	if _, ok := ft.PortToward(2, 16); !ok {
		t.Fatal("agg 2 missing uplink to core 16")
	}
	if _, ok := ft.PortToward(3, 18); !ok {
		t.Fatal("agg 3 missing uplink to core 18")
	}
	// Cross-pod path: edge 0 (pod 0) to edge 4 (pod 1) goes
	// edge→agg→core→agg→edge.
	path, err := ft.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Fatalf("cross-pod path %v has %d hops, want 5", path, len(path))
	}
	// Same-pod path stays inside the pod.
	path, err = ft.Path(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] >= 4 {
		t.Fatalf("same-pod path %v should relay via a pod agg", path)
	}
}

func TestFatTreeEdgeSwitch(t *testing.T) {
	ft := FatTree(4)
	wantEdges := map[int]bool{0: true, 1: true, 4: true, 5: true, 8: true, 9: true, 12: true, 13: true}
	for sw := 0; sw < ft.N; sw++ {
		if got := ft.EdgeSwitch(sw); got != wantEdges[sw] {
			t.Fatalf("EdgeSwitch(%d) = %v, want %v", sw, got, wantEdges[sw])
		}
	}
	// Non-fat-tree kinds treat every switch as edge.
	if !Ring(3).EdgeSwitch(2) {
		t.Fatal("ring switch should count as edge")
	}
}

func TestFatTreeAtLeast(t *testing.T) {
	cases := []struct{ n, wantN int }{
		{1, 5},     // k=2: 4+1
		{6, 20},    // k=4: 16+4
		{21, 45},   // k=6: 36+9
		{200, 245}, // k=14: 196+49
	}
	for _, tc := range cases {
		if got := FatTreeAtLeast(tc.n).N; got != tc.wantN {
			t.Fatalf("FatTreeAtLeast(%d).N = %d, want %d", tc.n, got, tc.wantN)
		}
	}
}
