// Scale topologies: the mesh grid and the fat-tree backbone used by
// the partitioned-simulation benchmarks and chaos campaigns. Both
// number switches locality-preservingly — mesh rows and fat-tree pods
// occupy contiguous ID ranges — so psim.Assign's ascending-ID blocks
// cut few links (see internal/psim).
package topology

import "fmt"

// Mesh builds a rows×cols grid, switch r*cols+c at row r column c,
// with bidirectional trunks to the right and downward neighbors. Four
// enabled TSN ports per interior node — the densest of the shapes, a
// factory-cell backbone with redundant shortest paths. Row-major
// numbering keeps each row a contiguous ID range, so an ID-block
// partition cuts only the vertical links between row bands.
func Mesh(rows, cols int) *Topology {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("topology: mesh needs at least 2 switches")
	}
	t := newTopology(KindMesh, rows*cols, 4)
	connect := func(a, b int) {
		ap := t.nextPort[a]
		t.addTrunk(a, b)
		bp := t.nextPort[b]
		t.addTrunk(b, a)
		t.links = append(t.links, Link{
			A: Attach{Switch: a, Port: ap},
			B: Attach{Switch: b, Port: bp},
		})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sw := r*cols + c
			if c+1 < cols {
				connect(sw, sw+1)
			}
			if r+1 < rows {
				connect(sw, sw+cols)
			}
		}
	}
	return t
}

// MeshSquarish builds a mesh of exactly n switches, as close to square
// as n's factorization allows: rows is the largest divisor of n not
// exceeding √n (a prime n degenerates to a 1×n chain).
func MeshSquarish(n int) *Topology {
	if n < 2 {
		panic("topology: mesh needs at least 2 switches")
	}
	rows := 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return Mesh(rows, n/rows)
}

// FatTree builds the k-ary fat-tree: k pods of k/2 edge plus k/2
// aggregation switches, and (k/2)² core switches — k²+(k/2)²
// switches total. Every edge switch links to every aggregation switch
// in its pod; aggregation switch j of each pod links to core switches
// j·k/2 .. j·k/2+k/2-1. k must be even and ≥ 2.
//
// Numbering is pod-major: pod p occupies IDs p·k .. p·k+k-1 (edges
// first, then aggregations), and the core block comes last — so an
// ID-block partition keeps whole pods together and only the
// aggregation-to-core uplinks cross partitions.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic("topology: fat-tree arity must be even and >= 2")
	}
	half := k / 2
	nPods := k * k // k pods × k switches
	n := nPods + half*half
	t := newTopology(KindFatTree, n, k)
	connect := func(a, b int) {
		ap := t.nextPort[a]
		t.addTrunk(a, b)
		bp := t.nextPort[b]
		t.addTrunk(b, a)
		t.links = append(t.links, Link{
			A: Attach{Switch: a, Port: ap},
			B: Attach{Switch: b, Port: bp},
		})
	}
	for p := 0; p < k; p++ {
		base := p * k
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				connect(base+e, base+half+a)
			}
		}
	}
	for p := 0; p < k; p++ {
		base := p * k
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				connect(base+half+a, nPods+a*half+c)
			}
		}
	}
	return t
}

// FatTreeAtLeast returns the smallest fat-tree with at least n
// switches (k grows in steps of 2).
func FatTreeAtLeast(n int) *Topology {
	for k := 2; ; k += 2 {
		if k*k+(k/2)*(k/2) >= n {
			return FatTree(k)
		}
	}
}

// EdgeSwitch reports whether sw is a fat-tree edge switch (the tier
// end stations belong on). Every switch of other kinds hosts traffic,
// so they all report true.
func (t *Topology) EdgeSwitch(sw int) bool {
	if t.Kind != KindFatTree {
		return true
	}
	// Arity from N = k² + (k/2)².
	for k := 2; k*k <= 4*t.N; k += 2 {
		if k*k+(k/2)*(k/2) == t.N {
			return sw < k*k && sw%k < k/2
		}
	}
	panic(fmt.Sprintf("topology: %d switches is not a fat-tree size", t.N))
}
