// Package topology builds the paper's three industrial-control network
// shapes — star, ring and linear (§IV.A) — as switch-level graphs with
// port assignments, and computes the deterministic paths flows follow.
//
// Trunk (inter-switch) ports are allocated first and are the "enabled
// TSN ports" of the resource analysis: 3 for the star core, 2 for
// linear interior nodes, 1 for the unidirectional ring. Host access
// ports are allocated after the trunks.
package topology

import (
	"fmt"
	"sort"
)

// Kind enumerates the supported shapes.
type Kind int

// Supported topology kinds.
const (
	KindStar Kind = iota
	KindRing
	KindLinear
	KindTree
	KindRingBidir
	KindMesh
	KindFatTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindStar:
		return "star"
	case KindRing:
		return "ring"
	case KindLinear:
		return "linear"
	case KindTree:
		return "tree"
	case KindRingBidir:
		return "bidir-ring"
	case KindMesh:
		return "mesh"
	case KindFatTree:
		return "fattree"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Topology is a switch-level graph with port bookkeeping.
type Topology struct {
	Kind Kind
	// N is the number of switches, numbered 0..N-1.
	N int
	// EnabledTSNPorts is the per-switch maximum of deterministic trunk
	// ports, the port_num of the paper's resource analysis (3/2/1 for
	// star/linear/ring).
	EnabledTSNPorts int

	// adj[sw][neighbor] = output port on sw toward neighbor.
	adj []map[int]int
	// nextPort[sw] = next unallocated port index.
	nextPort []int
	// hostPort[host] = attachment point.
	hostPort map[int]Attach
	// links are the physical trunk cables (both endpoints).
	links []Link
}

// Attach locates a host's access port.
type Attach struct {
	Switch int
	Port   int
}

// Link is one physical trunk cable between two switch ports.
type Link struct {
	A, B Attach
}

func newTopology(kind Kind, n, enabled int) *Topology {
	t := &Topology{
		Kind:            kind,
		N:               n,
		EnabledTSNPorts: enabled,
		adj:             make([]map[int]int, n),
		nextPort:        make([]int, n),
		hostPort:        make(map[int]Attach),
	}
	for i := range t.adj {
		t.adj[i] = make(map[int]int)
	}
	return t
}

// addTrunk allocates the next port on sw toward neighbor.
func (t *Topology) addTrunk(sw, neighbor int) {
	t.adj[sw][neighbor] = t.nextPort[sw]
	t.nextPort[sw]++
}

// Star builds a core switch (0) with children 1..children. The paper's
// star has three children (4 switches) and 3 enabled TSN ports on the
// core.
func Star(children int) *Topology {
	if children < 1 {
		panic("topology: star needs at least one child")
	}
	t := newTopology(KindStar, children+1, children)
	for c := 1; c <= children; c++ {
		corePort := t.nextPort[0]
		t.addTrunk(0, c)
		childPort := t.nextPort[c]
		t.addTrunk(c, 0)
		t.links = append(t.links, Link{
			A: Attach{Switch: 0, Port: corePort},
			B: Attach{Switch: c, Port: childPort},
		})
	}
	return t
}

// Ring builds n switches in a unidirectional ring: switch i forwards to
// switch (i+1) mod n. Each node has a single enabled TSN port, the
// paper's most resource-frugal case.
func Ring(n int) *Topology {
	if n < 3 {
		panic("topology: ring needs at least 3 switches")
	}
	t := newTopology(KindRing, n, 1)
	for i := 0; i < n; i++ {
		t.addTrunk(i, (i+1)%n)
	}
	// Receiving side of each trunk: the upstream neighbor's cable lands
	// on a dedicated ingress port (egress-idle, so it consumes no
	// queue/buffer resources).
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		rx := t.nextPort[next]
		t.nextPort[next]++
		t.links = append(t.links, Link{
			A: Attach{Switch: i, Port: t.adj[i][next]},
			B: Attach{Switch: next, Port: rx},
		})
	}
	return t
}

// RingBidir builds n switches in a bidirectional ring: switch i can
// forward both to (i+1) mod n (port 0, clockwise) and to (i-1) mod n
// (port 1, counter-clockwise). Two enabled TSN ports per node. This is
// the redundant-ring shape 802.1CB FRER needs: any two nodes are joined
// by two link-disjoint paths, one per ring direction.
func RingBidir(n int) *Topology {
	if n < 3 {
		panic("topology: bidir ring needs at least 3 switches")
	}
	t := newTopology(KindRingBidir, n, 2)
	for i := 0; i < n; i++ {
		t.addTrunk(i, (i+1)%n) // port 0: clockwise
	}
	for i := 0; i < n; i++ {
		t.addTrunk(i, (i-1+n)%n) // port 1: counter-clockwise
	}
	// One physical cable per adjacent pair, joining i's clockwise port
	// to (i+1)'s counter-clockwise port.
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		t.links = append(t.links, Link{
			A: Attach{Switch: i, Port: t.adj[i][next]},
			B: Attach{Switch: next, Port: t.adj[next][i]},
		})
	}
	return t
}

// Tree builds a two-level aggregation tree: one root switch with
// `spines` children, each child with `leaves` children of its own
// (1 + spines + spines×leaves switches). The root's spine count is the
// per-switch maximum of deterministic trunk ports, the paper's
// "etc." case for larger industrial backbones.
func Tree(spines, leaves int) *Topology {
	if spines < 1 || leaves < 0 {
		panic("topology: tree needs at least one spine")
	}
	n := 1 + spines + spines*leaves
	enabled := spines
	if leaves+1 > enabled {
		enabled = leaves + 1 // a spine's downlinks + uplink
	}
	t := newTopology(KindTree, n, enabled)
	next := 1
	for s := 0; s < spines; s++ {
		spine := next
		next++
		rootPort := t.nextPort[0]
		t.addTrunk(0, spine)
		spinePort := t.nextPort[spine]
		t.addTrunk(spine, 0)
		t.links = append(t.links, Link{
			A: Attach{Switch: 0, Port: rootPort},
			B: Attach{Switch: spine, Port: spinePort},
		})
		for l := 0; l < leaves; l++ {
			leaf := next
			next++
			sp := t.nextPort[spine]
			t.addTrunk(spine, leaf)
			lp := t.nextPort[leaf]
			t.addTrunk(leaf, spine)
			t.links = append(t.links, Link{
				A: Attach{Switch: spine, Port: sp},
				B: Attach{Switch: leaf, Port: lp},
			})
		}
	}
	return t
}

// Linear builds n switches in a chain with bidirectional forwarding;
// interior nodes have 2 enabled TSN ports.
func Linear(n int) *Topology {
	if n < 2 {
		panic("topology: linear needs at least 2 switches")
	}
	t := newTopology(KindLinear, n, 2)
	for i := 0; i < n-1; i++ {
		left := t.nextPort[i]
		t.addTrunk(i, i+1)
		right := t.nextPort[i+1]
		t.addTrunk(i+1, i)
		t.links = append(t.links, Link{
			A: Attach{Switch: i, Port: left},
			B: Attach{Switch: i + 1, Port: right},
		})
	}
	return t
}

// AttachHost allocates an access port for host on switch sw.
func (t *Topology) AttachHost(host, sw int) Attach {
	if sw < 0 || sw >= t.N {
		panic(fmt.Sprintf("topology: switch %d out of range", sw))
	}
	if a, ok := t.hostPort[host]; ok {
		return a
	}
	a := Attach{Switch: sw, Port: t.nextPort[sw]}
	t.nextPort[sw]++
	t.hostPort[host] = a
	return a
}

// HostAttach returns host's attachment point.
func (t *Topology) HostAttach(host int) (Attach, bool) {
	a, ok := t.hostPort[host]
	return a, ok
}

// Hosts returns all attached host IDs.
func (t *Topology) Hosts() []int {
	out := make([]int, 0, len(t.hostPort))
	for h := range t.hostPort {
		out = append(out, h)
	}
	return out
}

// PortCount returns the number of ports switch sw needs instantiated.
func (t *Topology) PortCount(sw int) int { return t.nextPort[sw] }

// TrunkLinks returns the physical inter-switch cables.
func (t *Topology) TrunkLinks() []Link { return t.links }

// PortToward returns sw's output port toward direct neighbor next.
func (t *Topology) PortToward(sw, next int) (int, bool) {
	p, ok := t.adj[sw][next]
	return p, ok
}

// Path returns the switch sequence from switch src to switch dst,
// inclusive. For the unidirectional ring the path follows the ring
// direction; otherwise it is the (unique) shortest path.
func (t *Topology) Path(src, dst int) ([]int, error) {
	if src < 0 || src >= t.N || dst < 0 || dst >= t.N {
		return nil, fmt.Errorf("topology: path %d->%d out of range", src, dst)
	}
	if src == dst {
		return []int{src}, nil
	}
	// BFS over the directed adjacency (the ring is directed; star and
	// linear are symmetric).
	prev := make([]int, t.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		// Iterate neighbors in sorted order so tie-breaking between
		// equal-length paths (possible on the bidirectional ring) is
		// deterministic across runs.
		nbs := make([]int, 0, len(t.adj[cur]))
		for nb := range t.adj[cur] {
			nbs = append(nbs, nb)
		}
		sort.Ints(nbs)
		for _, nb := range nbs {
			if prev[nb] == -1 {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	if prev[dst] == -1 {
		return nil, fmt.Errorf("topology: no path %d->%d", src, dst)
	}
	var rev []int
	for cur := dst; cur != src; cur = prev[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, src)
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// DisjointPaths returns two link-disjoint switch paths from src to
// dst: the clockwise and counter-clockwise walks of a bidirectional
// ring. These are the member streams' paths for 802.1CB replication.
// Only KindRingBidir guarantees disjointness; other kinds return an
// error.
func (t *Topology) DisjointPaths(src, dst int) (primary, alternate []int, err error) {
	if t.Kind != KindRingBidir {
		return nil, nil, fmt.Errorf("topology: disjoint paths need a bidirectional ring, have %v", t.Kind)
	}
	if src < 0 || src >= t.N || dst < 0 || dst >= t.N {
		return nil, nil, fmt.Errorf("topology: disjoint paths %d->%d out of range", src, dst)
	}
	if src == dst {
		return nil, nil, fmt.Errorf("topology: disjoint paths need distinct endpoints")
	}
	for cur := src; ; cur = (cur + 1) % t.N {
		primary = append(primary, cur)
		if cur == dst {
			break
		}
	}
	for cur := src; ; cur = (cur - 1 + t.N) % t.N {
		alternate = append(alternate, cur)
		if cur == dst {
			break
		}
	}
	return primary, alternate, nil
}

// DisjointHostPaths is DisjointPaths between two attached hosts.
func (t *Topology) DisjointHostPaths(srcHost, dstHost int) (primary, alternate []int, err error) {
	sa, ok := t.hostPort[srcHost]
	if !ok {
		return nil, nil, fmt.Errorf("topology: host %d not attached", srcHost)
	}
	da, ok := t.hostPort[dstHost]
	if !ok {
		return nil, nil, fmt.Errorf("topology: host %d not attached", dstHost)
	}
	return t.DisjointPaths(sa.Switch, da.Switch)
}

// HostPath returns the full switch path between two attached hosts.
func (t *Topology) HostPath(srcHost, dstHost int) ([]int, error) {
	sa, ok := t.hostPort[srcHost]
	if !ok {
		return nil, fmt.Errorf("topology: host %d not attached", srcHost)
	}
	da, ok := t.hostPort[dstHost]
	if !ok {
		return nil, fmt.Errorf("topology: host %d not attached", dstHost)
	}
	return t.Path(sa.Switch, da.Switch)
}
