package topology

import (
	"testing"
)

func TestStarShape(t *testing.T) {
	s := Star(3)
	if s.N != 4 || s.EnabledTSNPorts != 3 {
		t.Fatalf("star: N=%d enabled=%d", s.N, s.EnabledTSNPorts)
	}
	// Core has ports 0,1,2 toward children 1,2,3.
	for c := 1; c <= 3; c++ {
		p, ok := s.PortToward(0, c)
		if !ok || p != c-1 {
			t.Fatalf("core port toward %d = (%d,%v)", c, p, ok)
		}
		if p, ok := s.PortToward(c, 0); !ok || p != 0 {
			t.Fatalf("child %d uplink = (%d,%v)", c, p, ok)
		}
	}
	if len(s.TrunkLinks()) != 3 {
		t.Fatalf("links = %d", len(s.TrunkLinks()))
	}
}

func TestStarPath(t *testing.T) {
	s := Star(3)
	p, err := s.Path(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 3}
	if len(p) != 3 || p[0] != 1 || p[1] != 0 || p[2] != 3 {
		t.Fatalf("path = %v, want %v", p, want)
	}
}

func TestRingShape(t *testing.T) {
	r := Ring(6)
	if r.N != 6 || r.EnabledTSNPorts != 1 {
		t.Fatalf("ring: N=%d enabled=%d", r.N, r.EnabledTSNPorts)
	}
	// Every switch's trunk out is port 0.
	for i := 0; i < 6; i++ {
		p, ok := r.PortToward(i, (i+1)%6)
		if !ok || p != 0 {
			t.Fatalf("sw%d trunk = (%d,%v)", i, p, ok)
		}
		// No reverse edge in a unidirectional ring.
		if _, ok := r.PortToward((i+1)%6, i); ok {
			t.Fatalf("ring has reverse edge %d->%d", (i+1)%6, i)
		}
	}
	if len(r.TrunkLinks()) != 6 {
		t.Fatalf("links = %d", len(r.TrunkLinks()))
	}
	// RX side of each cable is port 1.
	for _, l := range r.TrunkLinks() {
		if l.B.Port != 1 {
			t.Fatalf("ring rx port = %d, want 1", l.B.Port)
		}
	}
}

func TestRingPathFollowsDirection(t *testing.T) {
	r := Ring(6)
	p, err := r.Path(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 0, 1}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestLinearShape(t *testing.T) {
	l := Linear(6)
	if l.N != 6 || l.EnabledTSNPorts != 2 {
		t.Fatalf("linear: N=%d enabled=%d", l.N, l.EnabledTSNPorts)
	}
	if len(l.TrunkLinks()) != 5 {
		t.Fatalf("links = %d", len(l.TrunkLinks()))
	}
	// Bidirectional edges exist.
	if _, ok := l.PortToward(2, 3); !ok {
		t.Fatal("missing forward edge")
	}
	if _, ok := l.PortToward(3, 2); !ok {
		t.Fatal("missing reverse edge")
	}
}

func TestLinearPath(t *testing.T) {
	l := Linear(6)
	p, err := l.Path(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 4, 3, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestPathSameSwitch(t *testing.T) {
	l := Linear(3)
	p, err := l.Path(1, 1)
	if err != nil || len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func TestPathErrors(t *testing.T) {
	l := Linear(3)
	if _, err := l.Path(-1, 2); err == nil {
		t.Fatal("out-of-range path accepted")
	}
	if _, err := l.Path(0, 9); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
}

func TestAttachHost(t *testing.T) {
	r := Ring(3)
	a := r.AttachHost(100, 0)
	// Ring switch 0: port 0 trunk out, port 1 trunk rx, host gets 2.
	if a.Switch != 0 || a.Port != 2 {
		t.Fatalf("attach = %+v", a)
	}
	// Idempotent.
	if b := r.AttachHost(100, 0); b != a {
		t.Fatalf("re-attach moved host: %+v vs %+v", b, a)
	}
	// Second host gets the next port.
	c := r.AttachHost(101, 0)
	if c.Port != 3 {
		t.Fatalf("second host port = %d", c.Port)
	}
	if len(r.Hosts()) != 2 {
		t.Fatalf("Hosts = %v", r.Hosts())
	}
}

func TestHostPath(t *testing.T) {
	s := Star(3)
	s.AttachHost(1, 1)
	s.AttachHost(2, 3)
	p, err := s.HostPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 1 || p[1] != 0 || p[2] != 3 {
		t.Fatalf("host path = %v", p)
	}
	if _, err := s.HostPath(1, 99); err == nil {
		t.Fatal("unattached host accepted")
	}
}

func TestPortCount(t *testing.T) {
	r := Ring(3)
	r.AttachHost(7, 1)
	if r.PortCount(1) != 3 { // trunk out + trunk rx + host
		t.Fatalf("PortCount = %d", r.PortCount(1))
	}
	if r.PortCount(2) != 2 {
		t.Fatalf("PortCount(2) = %d", r.PortCount(2))
	}
}

func TestTreeShape(t *testing.T) {
	// Root + 2 spines + 2×3 leaves = 9 switches.
	tr := Tree(2, 3)
	if tr.N != 9 {
		t.Fatalf("N = %d, want 9", tr.N)
	}
	if tr.Kind != KindTree || tr.Kind.String() != "tree" {
		t.Fatalf("kind = %v", tr.Kind)
	}
	// Spine enabled ports: 3 downlinks + 1 uplink = 4 > root's 2.
	if tr.EnabledTSNPorts != 4 {
		t.Fatalf("enabled = %d, want 4", tr.EnabledTSNPorts)
	}
	// 2 root links + 6 spine-leaf links.
	if len(tr.TrunkLinks()) != 8 {
		t.Fatalf("links = %d", len(tr.TrunkLinks()))
	}
	// Leaf-to-leaf across spines goes leaf→spine→root→spine→leaf.
	p, err := tr.Path(3, 8) // a leaf of spine 1 to a leaf of spine 2
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 || p[0] != 3 || p[2] != 0 || p[4] != 8 {
		t.Fatalf("cross-spine path = %v", p)
	}
	// Sibling leaves go through their spine only.
	p, err = tr.Path(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("sibling path = %v", p)
	}
}

func TestTreeHostsAndPorts(t *testing.T) {
	tr := Tree(2, 2)
	// Leaf switch 3: uplink port 0, host gets port 1.
	a := tr.AttachHost(100, 3)
	if a.Port != 1 {
		t.Fatalf("leaf host port = %d", a.Port)
	}
	// Spine 1: uplink + 2 downlinks = ports 0..2, host gets 3.
	b := tr.AttachHost(101, 1)
	if b.Port != 3 {
		t.Fatalf("spine host port = %d", b.Port)
	}
}

func TestTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Tree(0,...) did not panic")
		}
	}()
	Tree(0, 2)
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"star0":   func() { Star(0) },
		"ring2":   func() { Ring(2) },
		"linear1": func() { Linear(1) },
		"attach":  func() { Ring(3).AttachHost(1, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindStar.String() != "star" || KindRing.String() != "ring" || KindLinear.String() != "linear" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestRingBidir(t *testing.T) {
	r := RingBidir(5)
	if r.EnabledTSNPorts != 2 {
		t.Fatalf("EnabledTSNPorts = %d, want 2", r.EnabledTSNPorts)
	}
	if got := len(r.TrunkLinks()); got != 5 {
		t.Fatalf("links = %d, want 5", got)
	}
	// Clockwise on port 0, counter-clockwise on port 1, everywhere.
	for i := 0; i < 5; i++ {
		if p, _ := r.PortToward(i, (i+1)%5); p != 0 {
			t.Fatalf("sw%d clockwise port = %d, want 0", i, p)
		}
		if p, _ := r.PortToward(i, (i+4)%5); p != 1 {
			t.Fatalf("sw%d counter-clockwise port = %d, want 1", i, p)
		}
	}
	// Shortest path goes the short way round.
	path, err := r.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[1] != 4 {
		t.Fatalf("Path(0,4) = %v, want [0 4]", path)
	}
}

func TestRingBidirDisjointPaths(t *testing.T) {
	r := RingBidir(6)
	pri, alt, err := r.DisjointPaths(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantPri := []int{0, 1, 2, 3}
	wantAlt := []int{0, 5, 4, 3}
	for i := range wantPri {
		if pri[i] != wantPri[i] {
			t.Fatalf("primary = %v, want %v", pri, wantPri)
		}
	}
	for i := range wantAlt {
		if alt[i] != wantAlt[i] {
			t.Fatalf("alternate = %v, want %v", alt, wantAlt)
		}
	}
	// Link-disjoint: no shared interior hop pair.
	seen := map[[2]int]bool{}
	for i := 0; i+1 < len(pri); i++ {
		seen[[2]int{pri[i], pri[i+1]}] = true
	}
	for i := 0; i+1 < len(alt); i++ {
		hop := [2]int{alt[i], alt[i+1]}
		rev := [2]int{alt[i+1], alt[i]}
		if seen[hop] || seen[rev] {
			t.Fatalf("paths share link %v", hop)
		}
	}
}

func TestDisjointPathsErrors(t *testing.T) {
	if _, _, err := Ring(4).DisjointPaths(0, 2); err == nil {
		t.Fatal("unidirectional ring accepted disjoint paths")
	}
	r := RingBidir(4)
	if _, _, err := r.DisjointPaths(1, 1); err == nil {
		t.Fatal("same-endpoint disjoint paths accepted")
	}
	if _, _, err := r.DisjointPaths(0, 9); err == nil {
		t.Fatal("out-of-range disjoint paths accepted")
	}
}

func TestRingBidirHostDisjointPaths(t *testing.T) {
	r := RingBidir(4)
	r.AttachHost(100, 0)
	r.AttachHost(101, 2)
	pri, alt, err := r.DisjointHostPaths(100, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(pri) != 3 || len(alt) != 3 || pri[1] == alt[1] {
		t.Fatalf("host disjoint paths wrong: %v / %v", pri, alt)
	}
	if _, _, err := r.DisjointHostPaths(100, 999); err == nil {
		t.Fatal("unattached host accepted")
	}
}
