package buffering

import (
	"strings"
	"testing"
)

func TestPoolResizeGrowShrink(t *testing.T) {
	p := NewPool(4)
	if err := p.Resize(8); err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 8 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
	// All 8 slots allocatable after the grow.
	for i := 0; i < 8; i++ {
		if _, ok := p.Alloc(64); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := p.Alloc(64); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
}

func TestPoolResizeRejectsBelowLive(t *testing.T) {
	p := NewPool(8)
	slots := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		s, _ := p.Alloc(64)
		slots = append(slots, s)
	}
	p.Reserve(2)
	if err := p.Resize(4); err == nil || !strings.Contains(err.Error(), "5 slots live") {
		t.Fatalf("err = %v", err)
	}
	if err := p.Resize(5); err != nil {
		t.Fatal(err)
	}
	// Freeing the original slots still works after the shrink.
	for _, s := range slots {
		p.Free(s)
	}
	if p.InUse() != 0 {
		t.Fatalf("inUse = %d", p.InUse())
	}
}

func TestPoolFreeRetiredSlotPanics(t *testing.T) {
	p := NewPool(4)
	s, _ := p.Alloc(64)
	p.Free(s)
	// Shrink retires free slots; a stale Free of a retired slot is a
	// double-free class error and must panic.
	if err := p.Resize(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("free of retired slot did not panic")
		}
	}()
	p.Free(s)
}

func TestPoolShrinkThenGrowMintsFreshSlots(t *testing.T) {
	p := NewPool(4)
	if err := p.Resize(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize(4); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		s, ok := p.Alloc(64)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[s] {
			t.Fatalf("slot %d handed out twice", s)
		}
		seen[s] = true
	}
}

func TestPoolLeak(t *testing.T) {
	p := NewPool(4)
	if got := p.Leak(3); got != 3 {
		t.Fatalf("leaked %d", got)
	}
	if p.Leaked() != 3 || p.InUse() != 3 {
		t.Fatalf("leaked=%d inUse=%d", p.Leaked(), p.InUse())
	}
	// Leaking more than remains takes what is there.
	if got := p.Leak(5); got != 1 {
		t.Fatalf("second leak = %d", got)
	}
	if _, ok := p.Alloc(64); ok {
		t.Fatal("alloc from fully leaked pool succeeded")
	}
}

func TestQueueResize(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 3; i++ {
		if !q.Push(Descriptor{Slot: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if err := q.Resize(2); err == nil {
		t.Fatal("shrink below occupancy accepted")
	}
	if err := q.Resize(8); err != nil {
		t.Fatal(err)
	}
	// FIFO order survives the reallocation.
	for i := 0; i < 3; i++ {
		d, ok := q.Pop()
		if !ok || d.Slot != i {
			t.Fatalf("pop %d = (%v, %v)", i, d, ok)
		}
	}
	// New depth is honored.
	for i := 0; i < 8; i++ {
		if !q.Push(Descriptor{Slot: i}) {
			t.Fatalf("push %d failed after grow", i)
		}
	}
	if q.Push(Descriptor{}) {
		t.Fatal("push beyond new depth succeeded")
	}
	if err := q.Resize(0); err == nil {
		t.Fatal("non-positive depth accepted")
	}
}
