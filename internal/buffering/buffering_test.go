package buffering

import (
	"testing"
	"testing/quick"
)

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(2)
	s1, ok := p.Alloc(64)
	if !ok {
		t.Fatal("alloc 1 failed")
	}
	s2, ok := p.Alloc(1522)
	if !ok {
		t.Fatal("alloc 2 failed")
	}
	if s1 == s2 {
		t.Fatal("duplicate slot")
	}
	if _, ok := p.Alloc(64); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	p.Free(s1)
	if _, ok := p.Alloc(64); !ok {
		t.Fatal("alloc after free failed")
	}
	if p.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", p.InUse())
	}
}

func TestPoolOversizeFrame(t *testing.T) {
	p := NewPool(4)
	if _, ok := p.Alloc(SlotBytes + 1); ok {
		t.Fatal("oversize frame allocated")
	}
	if p.AllocFailures() != 1 {
		t.Fatalf("AllocFailures = %d", p.AllocFailures())
	}
}

func TestPoolHighWater(t *testing.T) {
	p := NewPool(8)
	slots := []int{}
	for i := 0; i < 5; i++ {
		s, _ := p.Alloc(64)
		slots = append(slots, s)
	}
	for _, s := range slots {
		p.Free(s)
	}
	if p.HighWater() != 5 {
		t.Fatalf("HighWater = %d, want 5", p.HighWater())
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", p.InUse())
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool(2)
	s, _ := p.Alloc(64)
	p.Free(s)
	defer func() {
		if recover() == nil {
			t.Error("double Free did not panic")
		}
	}()
	p.Free(s)
}

func TestPoolInvalidFreePanics(t *testing.T) {
	p := NewPool(2)
	defer func() {
		if recover() == nil {
			t.Error("invalid Free did not panic")
		}
	}()
	p.Free(7)
}

func TestPoolZeroCapacity(t *testing.T) {
	p := NewPool(0)
	if _, ok := p.Alloc(64); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 4; i++ {
		if !q.Push(Descriptor{Slot: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(Descriptor{Slot: 99}) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Rejects() != 1 {
		t.Fatalf("Rejects = %d", q.Rejects())
	}
	for i := 0; i < 4; i++ {
		d, ok := q.Pop()
		if !ok || d.Slot != i {
			t.Fatalf("pop %d = (%+v,%v)", i, d, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue(3)
	for round := 0; round < 10; round++ {
		if !q.Push(Descriptor{Slot: round}) {
			t.Fatal("push failed")
		}
		d, ok := q.Pop()
		if !ok || d.Slot != round {
			t.Fatalf("round %d: pop = (%+v,%v)", round, d, ok)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Push(Descriptor{Slot: 7})
	d, ok := q.Peek()
	if !ok || d.Slot != 7 {
		t.Fatal("peek wrong")
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed the descriptor")
	}
}

func TestQueueHighWater(t *testing.T) {
	q := NewQueue(8)
	q.Push(Descriptor{})
	q.Push(Descriptor{})
	q.Pop()
	q.Push(Descriptor{})
	if q.HighWater() != 2 {
		t.Fatalf("HighWater = %d, want 2", q.HighWater())
	}
}

func TestQueueInvalidDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero depth did not panic")
		}
	}()
	NewQueue(0)
}

func TestNegativePoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity did not panic")
		}
	}()
	NewPool(-1)
}

// Property: the queue preserves FIFO order and never exceeds its depth
// under arbitrary push/pop interleavings.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(ops []bool, depthRaw uint8) bool {
		depth := int(depthRaw%16) + 1
		q := NewQueue(depth)
		next := 0   // next value to push
		expect := 0 // next value expected from pop
		for _, push := range ops {
			if push {
				if q.Push(Descriptor{Slot: next}) {
					next++
				}
			} else if d, ok := q.Pop(); ok {
				if d.Slot != expect {
					return false
				}
				expect++
			}
			if q.Len() > depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pool never hands out the same slot twice concurrently.
func TestPoolUniqueSlotsProperty(t *testing.T) {
	prop := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw % 16)
		p := NewPool(capacity)
		held := map[int]bool{}
		var order []int
		for _, alloc := range ops {
			if alloc {
				if s, ok := p.Alloc(64); ok {
					if held[s] {
						return false
					}
					held[s] = true
					order = append(order, s)
				}
			} else if len(order) > 0 {
				s := order[len(order)-1]
				order = order[:len(order)-1]
				delete(held, s)
				p.Free(s)
			}
			if p.InUse() != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: HighWater never decreases and always bounds InUse.
func TestPoolHighWaterProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		p := NewPool(16)
		var held []int
		prevHW := 0
		for _, alloc := range ops {
			if alloc {
				if s, ok := p.Alloc(64); ok {
					held = append(held, s)
				}
			} else if len(held) > 0 {
				p.Free(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if p.HighWater() < prevHW || p.HighWater() < p.InUse() {
				return false
			}
			prevHW = p.HighWater()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReserveExhausts(t *testing.T) {
	p := NewPool(4)
	s, _ := p.Alloc(64)
	if got := p.Reserve(10); got != 3 {
		t.Fatalf("Reserve took %d slots, want 3 (all remaining)", got)
	}
	if p.Reserved() != 3 {
		t.Fatalf("Reserved = %d, want 3", p.Reserved())
	}
	if _, ok := p.Alloc(64); ok {
		t.Fatal("alloc succeeded while pool reserved-out")
	}
	if p.InUse() != 1 {
		t.Fatalf("reservation leaked into InUse: %d", p.InUse())
	}
	if p.ReleaseReserved() != 3 {
		t.Fatal("ReleaseReserved count wrong")
	}
	if _, ok := p.Alloc(64); !ok {
		t.Fatal("alloc failed after release")
	}
	p.Free(s)
	if p.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", p.InUse())
	}
}

func TestPoolReserveNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Reserve did not panic")
		}
	}()
	NewPool(1).Reserve(-1)
}
