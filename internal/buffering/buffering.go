// Package buffering models the two memory resources the paper's
// customization targets hardest: the per-queue metadata FIFOs ("queue
// stores packet descriptor") and the per-port packet buffer pools
// ("buffer stores packet payload"). Queue depth and buffer count are
// the parameters of the set_queues / set_buffers customization APIs;
// when either is exhausted the frame is dropped, which is exactly the
// failure mode Table I's Case study probes.
package buffering

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// SlotBytes is the payload capacity of one packet buffer, sized to hold
// an MTU frame (paper §IV.B: "The size of the packet buffer is 2048B").
const SlotBytes = 2048

// Descriptor is the 32-bit metadata word a queue holds for each packet:
// a buffer reference plus bookkeeping. We carry the frame pointer for
// the simulation and the slot index for pool accounting.
type Descriptor struct {
	Frame      *ethernet.Frame
	Slot       int
	EnqueuedAt sim.Time
}

// Pool is a port's packet buffer pool with a fixed number of SlotBytes
// slots.
type Pool struct {
	capacity int
	free     []int // LIFO free list of slot indices
	inUse    int
	// highWater tracks the worst-case simultaneous occupancy, the
	// number a dimensioning pass would need.
	highWater int
	// allocFail counts allocation failures (drops due to buffer
	// exhaustion).
	allocFail uint64
	// reserved holds slots withheld from the free list by a fault
	// injector (transient buffer exhaustion). Reserved slots are
	// neither free nor in use, so leak accounting ignores them.
	reserved []int
	// created is the total number of slot ids ever minted; Resize mints
	// fresh ids on growth instead of reusing retired ones, so a stale
	// Free of a retired slot is always detectable.
	created int
	// retired marks slot ids removed by a shrink; nil until first use.
	retired map[int]bool
	// leaked counts slots deliberately lost via Leak (fault injection).
	leaked int

	// Telemetry handles; zero values are no-ops.
	metOcc  metrics.Gauge
	metHW   metrics.Gauge
	metFail metrics.Counter
}

// NewPool returns a pool of capacity slots.
func NewPool(capacity int) *Pool {
	if capacity < 0 {
		panic("buffering: negative pool capacity")
	}
	p := &Pool{capacity: capacity, free: make([]int, capacity), created: capacity}
	for i := range p.free {
		p.free[i] = capacity - 1 - i // pop order 0,1,2,...
	}
	return p
}

// Instrument binds the pool's telemetry: occupancy follows InUse,
// highWater follows the worst occupancy, allocFail counts failed
// allocations. Call once at construction time.
func (p *Pool) Instrument(occupancy, highWater metrics.Gauge, allocFail metrics.Counter) {
	p.metOcc = occupancy
	p.metHW = highWater
	p.metFail = allocFail
}

// Capacity returns the configured number of slots.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of currently allocated slots.
func (p *Pool) InUse() int { return p.inUse }

// HighWater returns the worst-case simultaneous occupancy seen.
func (p *Pool) HighWater() int { return p.highWater }

// AllocFailures returns how many allocations failed.
func (p *Pool) AllocFailures() uint64 { return p.allocFail }

// Alloc reserves a slot for a frame of wireBytes. It fails if the frame
// exceeds SlotBytes (a hardware buffer cannot hold it) or the pool is
// exhausted.
func (p *Pool) Alloc(wireBytes int) (slot int, ok bool) {
	if wireBytes > SlotBytes {
		p.allocFail++
		p.metFail.Inc()
		return -1, false
	}
	if len(p.free) == 0 {
		p.allocFail++
		p.metFail.Inc()
		return -1, false
	}
	slot = p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse++
	if p.inUse > p.highWater {
		p.highWater = p.inUse
	}
	p.metOcc.Set(int64(p.inUse))
	p.metHW.SetMax(int64(p.inUse))
	return slot, true
}

// Free releases a slot back to the pool.
func (p *Pool) Free(slot int) {
	if slot < 0 || slot >= p.created {
		panic(fmt.Sprintf("buffering: Free of invalid slot %d", slot))
	}
	if p.retired[slot] {
		panic(fmt.Sprintf("buffering: Free of retired slot %d", slot))
	}
	for _, f := range p.free {
		if f == slot {
			panic(fmt.Sprintf("buffering: double Free of slot %d", slot))
		}
	}
	p.free = append(p.free, slot)
	p.inUse--
	p.metOcc.Set(int64(p.inUse))
}

// Reserve withholds up to n slots from the free list without marking
// them in use — the fault-injection model for transient buffer
// exhaustion (e.g. a babbling internal DMA engine hogging buffers).
// Returns how many slots were actually withheld; allocations competing
// with the reservation fail exactly as on a genuinely full pool.
func (p *Pool) Reserve(n int) int {
	if n < 0 {
		panic("buffering: negative Reserve")
	}
	taken := 0
	for taken < n && len(p.free) > 0 {
		slot := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.reserved = append(p.reserved, slot)
		taken++
	}
	return taken
}

// ReleaseReserved returns every reserved slot to the free list and
// reports how many were released.
func (p *Pool) ReleaseReserved() int {
	n := len(p.reserved)
	p.free = append(p.free, p.reserved...)
	p.reserved = nil
	return n
}

// Reserved returns how many slots are currently withheld.
func (p *Pool) Reserved() int { return len(p.reserved) }

// Resize changes the pool capacity in place — the live-reconfiguration
// primitive behind set_buffers. Growth mints fresh slot ids; shrink
// retires free slots only, so it fails if the new capacity cannot cover
// the slots currently allocated or reserved. In-flight frames keep
// their (possibly high-numbered) slot ids and Free them normally after
// a shrink.
func (p *Pool) Resize(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("buffering: negative pool capacity %d", capacity)
	}
	if need := p.inUse + len(p.reserved); capacity < need {
		return fmt.Errorf("buffering: cannot shrink pool to %d: %d slots live (%d in use, %d reserved)",
			capacity, need, p.inUse, len(p.reserved))
	}
	if capacity < p.capacity {
		// The free list holds capacity-inUse-reserved slots, which the
		// check above guarantees is at least the number to retire.
		for i := p.capacity - capacity; i > 0; i-- {
			slot := p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			if p.retired == nil {
				p.retired = make(map[int]bool)
			}
			p.retired[slot] = true
		}
	} else {
		for i := p.capacity; i < capacity; i++ {
			p.free = append(p.free, p.created)
			p.created++
		}
	}
	p.capacity = capacity
	return nil
}

// Leak deliberately loses up to n free slots: they are removed from the
// free list and counted in use, but no owner will ever Free them — the
// fault-injection model for a buffer leak the invariant watchdog must
// catch. Returns how many slots were actually leaked.
func (p *Pool) Leak(n int) int {
	if n < 0 {
		panic("buffering: negative Leak")
	}
	taken := 0
	for taken < n && len(p.free) > 0 {
		p.free = p.free[:len(p.free)-1]
		p.inUse++
		taken++
	}
	p.leaked += taken
	if p.inUse > p.highWater {
		p.highWater = p.inUse
	}
	p.metOcc.Set(int64(p.inUse))
	p.metHW.SetMax(int64(p.inUse))
	return taken
}

// Leaked returns how many slots have been lost via Leak.
func (p *Pool) Leaked() int { return p.leaked }

// Queue is a fixed-depth FIFO of descriptors: the hardware per-queue
// metadata memory.
type Queue struct {
	depth int
	ring  []Descriptor
	head  int
	count int
	// highWater tracks the worst-case depth reached.
	highWater int
	// rejects counts failed pushes (queue-full drops).
	rejects uint64

	// metHW mirrors highWater into the telemetry registry; the zero
	// value is a no-op.
	metHW metrics.Gauge
}

// NewQueue returns a queue holding at most depth descriptors.
func NewQueue(depth int) *Queue {
	if depth <= 0 {
		panic("buffering: non-positive queue depth")
	}
	return &Queue{depth: depth, ring: make([]Descriptor, depth)}
}

// Instrument binds the queue's depth high-water gauge.
func (q *Queue) Instrument(highWater metrics.Gauge) { q.metHW = highWater }

// Depth returns the configured capacity.
func (q *Queue) Depth() int { return q.depth }

// Len returns the number of queued descriptors.
func (q *Queue) Len() int { return q.count }

// HighWater returns the worst-case occupancy seen.
func (q *Queue) HighWater() int { return q.highWater }

// Rejects returns the number of failed pushes.
func (q *Queue) Rejects() uint64 { return q.rejects }

// Resize changes the queue depth in place, preserving queued
// descriptors in FIFO order — the live-reconfiguration primitive behind
// set_queues. It fails if the current occupancy exceeds the new depth.
func (q *Queue) Resize(depth int) error {
	if depth <= 0 {
		return fmt.Errorf("buffering: non-positive queue depth %d", depth)
	}
	if q.count > depth {
		return fmt.Errorf("buffering: cannot shrink queue to %d: %d descriptors queued", depth, q.count)
	}
	ring := make([]Descriptor, depth)
	for i := 0; i < q.count; i++ {
		ring[i] = q.ring[(q.head+i)%q.depth]
	}
	q.ring = ring
	q.head = 0
	q.depth = depth
	return nil
}

// Push appends d. It reports false (and drops) when the queue is full.
func (q *Queue) Push(d Descriptor) bool {
	if q.count == q.depth {
		q.rejects++
		return false
	}
	q.ring[(q.head+q.count)%q.depth] = d
	q.count++
	if q.count > q.highWater {
		q.highWater = q.count
		q.metHW.Set(int64(q.count))
	}
	return true
}

// Peek returns the head descriptor without removing it.
func (q *Queue) Peek() (Descriptor, bool) {
	if q.count == 0 {
		return Descriptor{}, false
	}
	return q.ring[q.head], true
}

// Pop removes and returns the head descriptor.
func (q *Queue) Pop() (Descriptor, bool) {
	if q.count == 0 {
		return Descriptor{}, false
	}
	d := q.ring[q.head]
	q.ring[q.head] = Descriptor{}
	q.head = (q.head + 1) % q.depth
	q.count--
	return d, true
}
