package analyzer

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func frame(flow uint32, cls ethernet.Class, sent sim.Time) *ethernet.Frame {
	return &ethernet.Frame{FlowID: flow, Class: cls, SentAt: sent}
}

func TestRecordBasics(t *testing.T) {
	c := NewCollector()
	c.Record(frame(1, ethernet.ClassTS, 0), 100)
	c.Record(frame(1, ethernet.ClassTS, 50), 250)
	st := c.Flow(1)
	if st == nil {
		t.Fatal("no stats")
	}
	if st.Received != 2 {
		t.Fatalf("Received = %d", st.Received)
	}
	if st.MeanLatency() != 150 {
		t.Fatalf("MeanLatency = %v, want 150", st.MeanLatency())
	}
	if st.MinLat != 100 || st.MaxLat != 200 {
		t.Fatalf("min/max = %v/%v", st.MinLat, st.MaxLat)
	}
	// Jitter = stddev of {100,200} = 50.
	if st.Jitter() != 50 {
		t.Fatalf("Jitter = %v, want 50", st.Jitter())
	}
}

func TestJitterZeroForConstantLatency(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Record(frame(1, ethernet.ClassTS, sim.Time(i*1000)), sim.Time(i*1000+130))
	}
	if got := c.Flow(1).Jitter(); got != 0 {
		t.Fatalf("Jitter = %v, want 0", got)
	}
	if c.Flow(1).MeanLatency() != 130 {
		t.Fatal("mean wrong")
	}
}

func TestJitterSingleSample(t *testing.T) {
	c := NewCollector()
	c.Record(frame(1, ethernet.ClassTS, 0), 99)
	if c.Flow(1).Jitter() != 0 {
		t.Fatal("single-sample jitter must be 0")
	}
}

func TestDeadlineMisses(t *testing.T) {
	c := NewCollector()
	c.SetDeadline(1, 100)
	c.Record(frame(1, ethernet.ClassTS, 0), 99)  // hit
	c.Record(frame(1, ethernet.ClassTS, 0), 150) // miss
	if got := c.Flow(1).DeadlineMisses; got != 1 {
		t.Fatalf("DeadlineMisses = %d", got)
	}
}

func TestNegativeLatencyClamped(t *testing.T) {
	c := NewCollector()
	c.Record(frame(1, ethernet.ClassTS, 100), 50)
	if c.Flow(1).MinLat != 0 {
		t.Fatal("negative latency not clamped")
	}
}

func TestFlowsSorted(t *testing.T) {
	c := NewCollector()
	for _, id := range []uint32{5, 1, 3} {
		c.Record(frame(id, ethernet.ClassTS, 0), 10)
	}
	got := c.Flows()
	if len(got) != 3 || got[0].FlowID != 1 || got[1].FlowID != 3 || got[2].FlowID != 5 {
		t.Fatalf("Flows order wrong: %v", got)
	}
}

func TestFlowMissing(t *testing.T) {
	c := NewCollector()
	if c.Flow(9) != nil {
		t.Fatal("missing flow returned stats")
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	// Two TS flows, one RC flow.
	c.Record(frame(1, ethernet.ClassTS, 0), 100)
	c.Record(frame(1, ethernet.ClassTS, 0), 100)
	c.Record(frame(2, ethernet.ClassTS, 0), 300)
	c.Record(frame(3, ethernet.ClassRC, 0), 1000)
	sent := map[uint32]uint64{1: 3, 2: 1, 3: 1}

	ts := c.Summarize(ethernet.ClassTS, sent)
	if ts.Flows != 2 || ts.Received != 3 || ts.Sent != 4 {
		t.Fatalf("TS summary = %+v", ts)
	}
	if ts.Lost != 1 || ts.LossRate != 0.25 {
		t.Fatalf("loss = %d rate %v", ts.Lost, ts.LossRate)
	}
	if ts.MeanLatency != sim.Time((100+100+300)/3) {
		t.Fatalf("mean = %v", ts.MeanLatency)
	}
	if ts.MinLat != 100 || ts.MaxLat != 300 {
		t.Fatalf("min/max = %v/%v", ts.MinLat, ts.MaxLat)
	}

	rc := c.Summarize(ethernet.ClassRC, sent)
	if rc.Flows != 1 || rc.Received != 1 || rc.Lost != 0 {
		t.Fatalf("RC summary = %+v", rc)
	}
}

func TestSummarizeEmptyClass(t *testing.T) {
	c := NewCollector()
	s := c.Summarize(ethernet.ClassBE, nil)
	if s.Flows != 0 || s.Received != 0 || s.MinLat != 0 || s.MeanLatency != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	// 100 samples with latencies 1..100 µs.
	for i := 1; i <= 100; i++ {
		c.Record(frame(1, ethernet.ClassTS, 0), sim.Time(i)*sim.Microsecond)
	}
	s := c.Summarize(ethernet.ClassTS, nil)
	if s.P50 < 49*sim.Microsecond || s.P50 > 52*sim.Microsecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 98*sim.Microsecond || s.P99 > 100*sim.Microsecond {
		t.Fatalf("P99 = %v", s.P99)
	}
}

func TestPercentilesPerClass(t *testing.T) {
	c := NewCollector()
	c.Record(frame(1, ethernet.ClassTS, 0), 10)
	c.Record(frame(2, ethernet.ClassBE, 0), 1000)
	ts := c.Summarize(ethernet.ClassTS, nil)
	be := c.Summarize(ethernet.ClassBE, nil)
	if ts.P99 != 10 || be.P99 != 1000 {
		t.Fatalf("per-class quantiles mixed: %v / %v", ts.P99, be.P99)
	}
}

func TestPercentileDecimation(t *testing.T) {
	c := NewCollector()
	// Push well past the sample cap with a uniform 0..999 µs pattern;
	// the decimated quantiles must stay representative.
	n := sampleCap*2 + 1000
	for i := 0; i < n; i++ {
		lat := sim.Time(i%1000) * sim.Microsecond
		c.Record(frame(1, ethernet.ClassTS, 0), lat)
	}
	s := c.Summarize(ethernet.ClassTS, nil)
	if s.P50 < 400*sim.Microsecond || s.P50 > 600*sim.Microsecond {
		t.Fatalf("decimated P50 = %v, want ~500µs", s.P50)
	}
	cs := c.perClass[ethernet.ClassTS]
	if len(cs.samples) > sampleCap {
		t.Fatalf("sample store grew to %d", len(cs.samples))
	}
	if cs.stride == 0 {
		t.Fatal("decimation never engaged")
	}
}

func seqFrame(flow uint32, seq uint32) *ethernet.Frame {
	return &ethernet.Frame{FlowID: flow, Class: ethernet.ClassTS, Seq: seq}
}

func TestSeqTrackingInOrder(t *testing.T) {
	c := NewCollector()
	for seq := uint32(0); seq < 10; seq++ {
		c.Record(seqFrame(1, seq), sim.Time(seq))
	}
	st := c.Flow(1)
	if st.SeqGaps != 0 || st.Reordered != 0 {
		t.Fatalf("clean stream: gaps=%d reordered=%d", st.SeqGaps, st.Reordered)
	}
}

func TestSeqTrackingGaps(t *testing.T) {
	c := NewCollector()
	for _, seq := range []uint32{0, 1, 4, 5, 9} {
		c.Record(seqFrame(1, seq), 0)
	}
	st := c.Flow(1)
	// Missing: 2,3 and 6,7,8 → 5 gaps.
	if st.SeqGaps != 5 {
		t.Fatalf("SeqGaps = %d, want 5", st.SeqGaps)
	}
	if st.Reordered != 0 {
		t.Fatalf("Reordered = %d", st.Reordered)
	}
}

func TestSeqTrackingFirstFrameLost(t *testing.T) {
	c := NewCollector()
	c.Record(seqFrame(1, 3), 0) // frames 0..2 never arrived
	if got := c.Flow(1).SeqGaps; got != 3 {
		t.Fatalf("SeqGaps = %d, want 3", got)
	}
}

func TestSeqTrackingReorder(t *testing.T) {
	c := NewCollector()
	for _, seq := range []uint32{0, 2, 1, 3} {
		c.Record(seqFrame(1, seq), 0)
	}
	st := c.Flow(1)
	if st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
	// Gap at 1 (when 2 arrived) is later filled; the counter keeps the
	// pessimistic count — documented behaviour.
	if st.SeqGaps != 1 {
		t.Fatalf("SeqGaps = %d, want 1", st.SeqGaps)
	}
}

func TestSummarizeZeroLoss(t *testing.T) {
	c := NewCollector()
	c.Record(frame(1, ethernet.ClassTS, 0), 10)
	s := c.Summarize(ethernet.ClassTS, map[uint32]uint64{1: 1})
	if s.Lost != 0 || s.LossRate != 0 {
		t.Fatalf("loss = %+v", s)
	}
}

func TestRegisteredButLostFlowCountsAsLoss(t *testing.T) {
	// A flow whose every frame was dropped must still contribute its
	// sent count to the class summary (the fully-lost blind spot).
	c := NewCollector()
	c.RegisterFlow(1, ethernet.ClassTS)
	c.Record(frame(2, ethernet.ClassTS, 0), 100)
	s := c.Summarize(ethernet.ClassTS, map[uint32]uint64{1: 10, 2: 1})
	if s.Sent != 11 || s.Received != 1 || s.Lost != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Flows != 2 {
		t.Fatalf("Flows = %d, want 2", s.Flows)
	}
	// The lost flow must not poison min/mean latency.
	if s.MinLat != 100 || s.MeanLatency != 100 {
		t.Fatalf("latency stats poisoned: %+v", s)
	}
}

// clsSeqFrame is frame with an explicit sequence number and class.
func clsSeqFrame(flow uint32, cls ethernet.Class, seq uint32, sent sim.Time) *ethernet.Frame {
	f := frame(flow, cls, sent)
	f.Seq = seq
	return f
}

// TestMergeDisjointFlowsMatchesSerial records the same deliveries into
// one collector and into two partition collectors (flows disjoint, as
// in a partitioned run), merges the partitions, and checks every
// exported statistic matches the serial collector exactly.
func TestMergeDisjointFlowsMatchesSerial(t *testing.T) {
	serial := NewCollector()
	pa, pb := NewCollector(), NewCollector()
	merged := NewCollector()

	for _, c := range []*Collector{serial, pa} {
		c.RegisterFlow(1, ethernet.ClassTS)
		c.SetDeadline(1, 120)
	}
	for _, c := range []*Collector{serial, pb} {
		c.RegisterFlow(2, ethernet.ClassRC)
		c.RegisterFlow(3, ethernet.ClassTS) // fully lost: zero receives
	}

	// Flow 1 (partition A): a hit, a miss, a sequence gap.
	for _, c := range []*Collector{serial, pa} {
		c.Record(clsSeqFrame(1, ethernet.ClassTS, 0, 0), 100)
		c.Record(clsSeqFrame(1, ethernet.ClassTS, 1, 50), 200)  // miss (150 > 120)
		c.Record(clsSeqFrame(1, ethernet.ClassTS, 3, 100), 180) // gap: seq 2 skipped
	}
	// Flow 2 (partition B).
	for _, c := range []*Collector{serial, pb} {
		c.Record(clsSeqFrame(2, ethernet.ClassRC, 0, 0), 900)
		c.Record(clsSeqFrame(2, ethernet.ClassRC, 1, 0), 1100)
		c.NoteDuplicate(2)
		c.NoteRogue(2)
	}

	merged.Merge(pa)
	merged.Merge(pb)

	sent := map[uint32]uint64{1: 4, 2: 2, 3: 5}
	for _, cls := range []ethernet.Class{ethernet.ClassTS, ethernet.ClassRC} {
		want := serial.Summarize(cls, sent)
		got := merged.Summarize(cls, sent)
		if got != want {
			t.Fatalf("%v summary mismatch:\n got %+v\nwant %+v", cls, got, want)
		}
	}
	for _, id := range []uint32{1, 2, 3} {
		ws, gs := serial.Flow(id), merged.Flow(id)
		if (ws == nil) != (gs == nil) {
			t.Fatalf("flow %d presence mismatch", id)
		}
		if ws == nil {
			continue
		}
		if *gs != *ws {
			t.Fatalf("flow %d mismatch:\n got %+v\nwant %+v", id, *gs, *ws)
		}
	}
}

// TestClassSamplesMergeDecimated checks the stride-aligned merge: a
// decimated side and a fresh side combine without losing either set's
// coverage, and the count reflects every observation.
func TestClassSamplesMergeDecimated(t *testing.T) {
	a, b := &classSamples{}, &classSamples{}
	for i := 0; i < sampleCap+10; i++ { // forces one decimation in a
		a.add(sim.Time(i))
	}
	for i := 0; i < 100; i++ {
		b.add(sim.Time(1000000 + i))
	}
	if a.stride == 0 {
		t.Fatal("a never decimated; test is vacuous")
	}
	wantCount := a.count + b.count
	a.merge(b)
	if a.count != wantCount {
		t.Fatalf("merged count = %d, want %d", a.count, wantCount)
	}
	if len(a.samples) > sampleCap {
		t.Fatalf("merged retained %d samples, over the %d cap", len(a.samples), sampleCap)
	}
	// The merged set still spans both inputs.
	if q := a.quantile(0.999); q < 1000000 {
		t.Fatalf("p99.9 = %v; b's samples lost in merge", q)
	}
	if q := a.quantile(0.001); q > 100000 {
		t.Fatalf("p0.1 = %v; a's samples lost in merge", q)
	}
}
