// Package analyzer is the software counterpart of the paper's TSN
// analyzer box: it receives TS/RC/BE flows at the network edge and
// computes per-flow and aggregate latency, jitter and packet loss —
// the three metrics of the paper's §IV.C evaluation. Jitter is reported
// as the standard deviation of latency, the paper's definition.
package analyzer

import (
	"math"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// FlowStats accumulates one flow's receive-side statistics.
type FlowStats struct {
	FlowID   uint32
	Class    ethernet.Class
	Received uint64
	// Latency accumulators in float ns (sums of large ns values can
	// overflow int64 squared).
	sumLat   float64
	sumLatSq float64
	MinLat   sim.Time
	MaxLat   sim.Time
	// DeadlineMisses counts frames whose latency exceeded the flow's
	// deadline (set via SetDeadline).
	DeadlineMisses uint64
	deadline       sim.Time
	// SeqGaps counts sequence numbers skipped on arrival (in-path
	// loss positions); Reordered counts arrivals at or below the last
	// seen sequence number. A correct single-path TSN dataplane never
	// reorders.
	SeqGaps   uint64
	Reordered uint64
	lastSeq   uint32
	seenSeq   bool
	// Duplicates and Rogue count frames the 802.1CB sequence-recovery
	// function eliminated before this collector: redundancy working as
	// intended (duplicates) or out-of-window arrivals (rogue). Neither
	// contributes to Received — an eliminated copy is not a delivery.
	Duplicates uint64
	Rogue      uint64
}

// MeanLatency returns the average latency.
func (f *FlowStats) MeanLatency() sim.Time {
	if f.Received == 0 {
		return 0
	}
	return sim.Time(f.sumLat / float64(f.Received))
}

// Jitter returns the standard deviation of latency.
func (f *FlowStats) Jitter() sim.Time {
	if f.Received < 2 {
		return 0
	}
	n := float64(f.Received)
	mean := f.sumLat / n
	variance := f.sumLatSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return sim.Time(math.Sqrt(variance))
}

// sampleCap bounds the per-class latency sample store used for
// percentiles. Beyond it, samples are decimated deterministically
// (every other retained sample is dropped and the stride doubles),
// which keeps quantile estimates stable for arbitrarily long runs.
const sampleCap = 1 << 16

// classSamples keeps a strided latency sample set for one class.
type classSamples struct {
	samples []sim.Time
	stride  uint64 // keep one sample in 2^stride
	count   uint64
}

func (c *classSamples) add(lat sim.Time) {
	c.count++
	if c.count&((1<<c.stride)-1) != 0 {
		return
	}
	if len(c.samples) >= sampleCap {
		c.decimate()
		if c.count&((1<<c.stride)-1) != 0 {
			return
		}
	}
	c.samples = append(c.samples, lat)
}

// decimate halves the retained set in place (keep every other sample)
// and doubles the sampling stride.
func (c *classSamples) decimate() {
	kept := c.samples[:0]
	for i := 0; i < len(c.samples); i += 2 {
		kept = append(kept, c.samples[i])
	}
	c.samples = kept
	c.stride++
}

// merge folds src's retained samples into c. The coarser stride wins:
// the finer side is decimated until the strides match, then the sets
// concatenate (quantile sorts, so order is immaterial). While both
// sides are below the decimation threshold the merged set is the exact
// union — a partitioned run's percentiles equal the serial run's.
func (c *classSamples) merge(src *classSamples) {
	ss := append([]sim.Time(nil), src.samples...)
	st := src.stride
	for c.stride < st {
		c.decimate()
	}
	for st < c.stride {
		kept := ss[:0]
		for i := 0; i < len(ss); i += 2 {
			kept = append(kept, ss[i])
		}
		ss = kept
		st++
	}
	c.samples = append(c.samples, ss...)
	c.count += src.count
	for len(c.samples) > sampleCap {
		c.decimate()
	}
}

// quantile returns the q-quantile (0..1) of the retained samples.
func (c *classSamples) quantile(q float64) sim.Time {
	if len(c.samples) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), c.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// LatencySink receives every delivery the collector records, with the
// computed latency and deadline verdict — the hook the observability
// layer uses to decompose latency from the frame's span without the
// analyzer importing it.
type LatencySink interface {
	ObserveLatency(f *ethernet.Frame, arrival, lat sim.Time, missed bool)
}

// Collector receives frames and maintains statistics. It implements
// the receive half of a TSNNic endpoint.
type Collector struct {
	perFlow  map[uint32]*FlowStats
	perClass map[ethernet.Class]*classSamples

	// sink, when set, observes every recorded delivery.
	sink LatencySink

	// Telemetry handles, indexed by traffic class (BE/RC/TS); zero
	// values are no-ops.
	metDelivered [3]metrics.Counter
	metLatency   [3]metrics.Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		perFlow:  make(map[uint32]*FlowStats),
		perClass: make(map[ethernet.Class]*classSamples),
	}
}

// LatencyBounds is the end-to-end latency bucket layout: 1 µs to
// ~8 ms in quarter-decade-ish steps, in nanoseconds.
var LatencyBounds = metrics.ExponentialBounds(1000, 2, 14)

// Instrument resolves the collector's per-class telemetry from reg: a
// delivered-frames counter and an end-to-end latency histogram for
// each traffic class. A nil registry is a no-op.
func (c *Collector) Instrument(reg *metrics.Registry) {
	reg.Help("tsn_flows_delivered_total", "frames delivered to end stations")
	reg.Help("tsn_e2e_latency_ns", "end-to-end frame latency, nanoseconds")
	for _, cls := range []ethernet.Class{ethernet.ClassBE, ethernet.ClassRC, ethernet.ClassTS} {
		l := metrics.L("class", cls.String())
		c.metDelivered[cls] = reg.Counter("tsn_flows_delivered_total", l)
		c.metLatency[cls] = reg.Histogram("tsn_e2e_latency_ns", LatencyBounds, l)
	}
}

// SetLatencySink installs the per-delivery observation hook.
func (c *Collector) SetLatencySink(s LatencySink) { c.sink = s }

// SetDeadline registers flowID's deadline for miss accounting.
func (c *Collector) SetDeadline(flowID uint32, d sim.Time) {
	c.stats(flowID).deadline = d
}

// RegisterFlow pre-registers a flow's class so fully-lost flows (zero
// receives) still count toward their class's Sent/Lost totals.
func (c *Collector) RegisterFlow(flowID uint32, cls ethernet.Class) {
	c.stats(flowID).Class = cls
}

func (c *Collector) stats(flowID uint32) *FlowStats {
	st, ok := c.perFlow[flowID]
	if !ok {
		st = &FlowStats{FlowID: flowID, MinLat: math.MaxInt64}
		c.perFlow[flowID] = st
	}
	return st
}

// Record ingests one frame arriving at the given instant. Latency is
// measured from the tester timestamp the generator stamped at
// injection.
func (c *Collector) Record(f *ethernet.Frame, arrival sim.Time) {
	st := c.stats(f.FlowID)
	st.Class = f.Class
	lat := arrival - f.SentAt
	if lat < 0 {
		lat = 0
	}
	st.Received++
	if f.Class < ethernet.Class(len(c.metDelivered)) {
		c.metDelivered[f.Class].Inc()
		c.metLatency[f.Class].Observe(int64(lat))
	}
	st.sumLat += float64(lat)
	st.sumLatSq += float64(lat) * float64(lat)
	if lat < st.MinLat {
		st.MinLat = lat
	}
	if lat > st.MaxLat {
		st.MaxLat = lat
	}
	missed := st.deadline > 0 && lat > st.deadline
	if missed {
		st.DeadlineMisses++
	}
	if c.sink != nil {
		c.sink.ObserveLatency(f, arrival, lat, missed)
	}
	if !st.seenSeq {
		st.seenSeq = true
		st.SeqGaps += uint64(f.Seq) // frames lost before the first arrival
	} else if f.Seq > st.lastSeq+1 {
		st.SeqGaps += uint64(f.Seq - st.lastSeq - 1)
	} else if f.Seq <= st.lastSeq {
		st.Reordered++
	}
	if f.Seq > st.lastSeq || !st.seenSeq {
		st.lastSeq = f.Seq
	}
	cs, ok := c.perClass[f.Class]
	if !ok {
		cs = &classSamples{}
		c.perClass[f.Class] = cs
	}
	cs.add(lat)
}

// NoteDuplicate records a FRER-eliminated duplicate for flowID. The
// frame is accounted as redundancy overhead, not as a delivery, so
// loss/latency statistics never double-count member streams.
func (c *Collector) NoteDuplicate(flowID uint32) {
	c.stats(flowID).Duplicates++
}

// NoteRogue records a FRER rogue discard (arrival outside the
// recovery window) for flowID.
func (c *Collector) NoteRogue(flowID uint32) {
	c.stats(flowID).Rogue++
}

// Merge folds src's statistics into c — how the partitioned testbed
// reassembles one collector view from the per-partition collectors its
// NICs recorded into. Per-flow accumulators add (counts, latency sums,
// misses, FRER eliminations), extrema fold, and per-class percentile
// sample sets concatenate (exact while below the decimation
// threshold). Sequence-tracking state (lastSeq/seenSeq) carries over
// only when c has not itself received the flow: every flow is
// delivered at exactly one NIC, so in partition merges at most one
// side has receive-state for any flow and the fold is exact. Telemetry
// handles are registry-side and merge with metrics.Registry.Merge.
func (c *Collector) Merge(src *Collector) {
	if src == nil || src == c {
		return
	}
	for id, st := range src.perFlow {
		dst := c.stats(id)
		dst.Class = st.Class
		dst.Received += st.Received
		dst.sumLat += st.sumLat
		dst.sumLatSq += st.sumLatSq
		if st.MinLat < dst.MinLat {
			dst.MinLat = st.MinLat
		}
		if st.MaxLat > dst.MaxLat {
			dst.MaxLat = st.MaxLat
		}
		dst.DeadlineMisses += st.DeadlineMisses
		if dst.deadline == 0 {
			dst.deadline = st.deadline
		}
		dst.SeqGaps += st.SeqGaps
		dst.Reordered += st.Reordered
		dst.Duplicates += st.Duplicates
		dst.Rogue += st.Rogue
		if !dst.seenSeq {
			dst.lastSeq, dst.seenSeq = st.lastSeq, st.seenSeq
		}
	}
	for cls, cs := range src.perClass {
		dst, ok := c.perClass[cls]
		if !ok {
			dst = &classSamples{}
			c.perClass[cls] = dst
		}
		dst.merge(cs)
	}
}

// Flow returns flowID's statistics, or nil if nothing arrived.
func (c *Collector) Flow(flowID uint32) *FlowStats {
	st, ok := c.perFlow[flowID]
	if !ok {
		return nil
	}
	return st
}

// Flows returns all flow statistics sorted by flow ID.
func (c *Collector) Flows() []*FlowStats {
	out := make([]*FlowStats, 0, len(c.perFlow))
	for _, st := range c.perFlow {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FlowID < out[j].FlowID })
	return out
}

// Summary aggregates statistics across flows of one class.
type Summary struct {
	Class    ethernet.Class
	Flows    int
	Received uint64
	Sent     uint64
	Lost     uint64
	LossRate float64
	// MeanLatency / Jitter pool every frame of the class.
	MeanLatency    sim.Time
	Jitter         sim.Time
	MinLat, MaxLat sim.Time
	// P50/P99 are latency quantiles over (possibly decimated) class
	// samples.
	P50, P99       sim.Time
	DeadlineMisses uint64
	// Duplicates/Rogue pool the FRER elimination counts of the class's
	// flows (see FlowStats).
	Duplicates uint64
	Rogue      uint64
}

// Summarize pools all flows of class cls. sent maps flowID to the
// generator's transmit count (for loss accounting); unknown flows count
// zero sent.
func (c *Collector) Summarize(cls ethernet.Class, sent map[uint32]uint64) Summary {
	s := Summary{Class: cls, MinLat: math.MaxInt64}
	var sumLat, sumSq float64
	for _, st := range c.perFlow {
		if st.Class != cls {
			continue
		}
		s.Flows++
		s.Duplicates += st.Duplicates
		s.Rogue += st.Rogue
		if st.Received == 0 {
			continue // registered but fully lost: no latency samples
		}
		s.Received += st.Received
		sumLat += st.sumLat
		sumSq += st.sumLatSq
		if st.MinLat < s.MinLat {
			s.MinLat = st.MinLat
		}
		if st.MaxLat > s.MaxLat {
			s.MaxLat = st.MaxLat
		}
		s.DeadlineMisses += st.DeadlineMisses
	}
	for id, n := range sent {
		if st, ok := c.perFlow[id]; ok && st.Class == cls {
			s.Sent += n
		}
	}
	if s.Sent > s.Received {
		s.Lost = s.Sent - s.Received
	}
	if s.Sent > 0 {
		s.LossRate = float64(s.Lost) / float64(s.Sent)
	}
	if s.Received > 0 {
		n := float64(s.Received)
		mean := sumLat / n
		s.MeanLatency = sim.Time(mean)
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		s.Jitter = sim.Time(math.Sqrt(variance))
	} else {
		s.MinLat = 0
	}
	if cs, ok := c.perClass[cls]; ok {
		s.P50 = cs.quantile(0.50)
		s.P99 = cs.quantile(0.99)
	}
	return s
}
