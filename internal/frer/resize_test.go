package frer

import "testing"

func TestTableResize(t *testing.T) {
	tbl := NewTable(2, 16)
	if err := tbl.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Resize(1, 16); err == nil {
		t.Fatal("shrink below registered streams accepted")
	}
	if err := tbl.Resize(4, 0); err == nil {
		t.Fatal("history 0 accepted")
	}
	if err := tbl.Resize(4, MaxHistory+1); err == nil {
		t.Fatal("history beyond MaxHistory accepted")
	}
	if err := tbl.Resize(-1, 16); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := tbl.Resize(4, 32); err != nil {
		t.Fatal(err)
	}
	if tbl.Capacity() != 4 || tbl.History() != 32 {
		t.Fatalf("capacity=%d history=%d", tbl.Capacity(), tbl.History())
	}
	// Registered streams and their recovery state survive.
	if !tbl.Registered(1) || !tbl.Registered(2) {
		t.Fatal("streams lost across resize")
	}
	if err := tbl.Register(3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(4); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(5); err == nil {
		t.Fatal("register beyond new capacity accepted")
	}
	// Duplicate elimination still works after the resize.
	if d := tbl.Accept(1, 10); d != Pass {
		t.Fatalf("first copy = %v", d)
	}
	if d := tbl.Accept(1, 10); d != Duplicate {
		t.Fatalf("second copy = %v", d)
	}
}
