package frer

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

func TestRecoveryPassesFirstEliminatesSecond(t *testing.T) {
	tbl := NewTable(4, 8)
	if err := tbl.Register(1); err != nil {
		t.Fatal(err)
	}
	// Two member streams delivering the same sequence numbers.
	for seq := uint32(1); seq <= 10; seq++ {
		if d := tbl.Accept(1, seq); d != Pass {
			t.Fatalf("first copy of seq %d: %v", seq, d)
		}
		if d := tbl.Accept(1, seq); d != Duplicate {
			t.Fatalf("second copy of seq %d: %v", seq, d)
		}
	}
	passed, elim, rogue := tbl.Stats()
	if passed != 10 || elim != 10 || rogue != 0 {
		t.Fatalf("stats = %d/%d/%d, want 10/10/0", passed, elim, rogue)
	}
}

func TestRecoveryInterleavedMemberStreams(t *testing.T) {
	// Path-length skew: member B lags member A by 3 sequence numbers.
	tbl := NewTable(1, 8)
	_ = tbl.Register(9)
	lagged := []uint32{4, 1, 5, 2, 6, 3, 7, 4, 8, 5}
	want := []Decision{Pass, Pass, Pass, Pass, Pass, Pass, Pass, Duplicate, Pass, Duplicate}
	for i, seq := range lagged {
		if d := tbl.Accept(9, seq); d != want[i] {
			t.Fatalf("step %d seq %d: got %v, want %v", i, seq, d, want[i])
		}
	}
}

func TestRecoveryRogueOutsideWindow(t *testing.T) {
	tbl := NewTable(1, 4)
	_ = tbl.Register(5)
	tbl.Accept(5, 100)
	if d := tbl.Accept(5, 96); d != Rogue { // 100-96 = 4 ≥ history
		t.Fatalf("stale seq: %v, want Rogue", d)
	}
	if d := tbl.Accept(5, 97); d != Pass { // just inside the window
		t.Fatalf("in-window seq: %v, want Pass", d)
	}
	if _, _, rogue := tbl.Stats(); rogue != 1 {
		t.Fatalf("rogue count = %d, want 1", rogue)
	}
}

func TestRecoveryLargeJumpClearsWindow(t *testing.T) {
	tbl := NewTable(1, 8)
	_ = tbl.Register(1)
	tbl.Accept(1, 1)
	tbl.Accept(1, 1000) // jump far past the window
	if d := tbl.Accept(1, 1000); d != Duplicate {
		t.Fatal("post-jump duplicate not eliminated")
	}
	if d := tbl.Accept(1, 999); d != Pass {
		t.Fatal("post-jump in-window arrival rejected")
	}
}

func TestUnregisteredStreamPassesThrough(t *testing.T) {
	tbl := NewTable(1, 8)
	for i := 0; i < 3; i++ {
		if d := tbl.Accept(77, 1); d != Pass {
			t.Fatal("unregistered stream did not pass through")
		}
	}
	if passed, _, _ := tbl.Stats(); passed != 0 {
		t.Fatal("unregistered stream counted as recovered")
	}
}

func TestTableCapacity(t *testing.T) {
	tbl := NewTable(2, 8)
	if err := tbl.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(1); err != nil {
		t.Fatal("re-register errored")
	}
	if err := tbl.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(3); err == nil {
		t.Fatal("register beyond frer_size succeeded")
	}
	if tbl.Len() != 2 || tbl.Capacity() != 2 {
		t.Fatalf("Len/Capacity = %d/%d", tbl.Len(), tbl.Capacity())
	}
	if tbl.Registered(3) {
		t.Fatal("failed registration left an entry")
	}
}

func TestMaxHistoryWindow(t *testing.T) {
	tbl := NewTable(1, MaxHistory)
	_ = tbl.Register(1)
	tbl.Accept(1, 100)
	if d := tbl.Accept(1, 37); d != Pass { // 100-37 = 63 < 64
		t.Fatalf("edge-of-window seq: %v, want Pass", d)
	}
	if d := tbl.Accept(1, 36); d != Rogue {
		t.Fatalf("just-outside seq: %v, want Rogue", d)
	}
}

func TestNewTableValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTable(-1, 8) },
		func() { NewTable(1, 0) },
		func() { NewTable(1, MaxHistory+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewTable did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestInstrument(t *testing.T) {
	reg := metrics.New()
	tbl := NewTable(1, 8)
	tbl.Instrument(
		reg.Counter(MetricPassed),
		reg.Counter(MetricEliminated),
		reg.Counter(MetricRogue),
	)
	_ = tbl.Register(1)
	tbl.Accept(1, 1)
	tbl.Accept(1, 1)
	if reg.CounterValue(MetricPassed) != 1 || reg.CounterValue(MetricEliminated) != 1 {
		t.Fatal("telemetry counters not updated")
	}
}

func TestDecisionString(t *testing.T) {
	if Pass.String() != "pass" || Duplicate.String() != "duplicate" || Rogue.String() != "rogue" {
		t.Fatal("Decision strings wrong")
	}
	if Decision(9).String() == "" {
		t.Fatal("unknown decision unprintable")
	}
}
