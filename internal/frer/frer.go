// Package frer implements 802.1CB-style Frame Replication and
// Elimination for Reliability (FRER) as TSN-Builder's eighth
// customizable resource class. A talker replicates each stream frame
// onto link-disjoint member streams (in this repro: the two directions
// of a bidirectional ring, separated by VLAN); the listener runs the
// sequence-recovery function below to eliminate the duplicates, so a
// single link failure anywhere on either path is invisible to the
// application.
//
// The recovery state is a bounded table — frer_size streams, each with
// a history_len-bit window — sized by the set_frer_tbl customization
// API exactly like the paper's seven table classes (resource.FRERTbl
// gives its BRAM cost).
package frer

import (
	"errors"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// MaxHistory bounds the per-stream history window: one 64-bit vector
// register per entry, the widest the modeled hardware implements.
const MaxHistory = 64

// DefaultHistory is the window used when a design does not configure
// one: generous enough to absorb the path-length skew between the two
// ring directions at TS rates.
const DefaultHistory = 32

// Metric names for sequence-recovery telemetry.
const (
	MetricPassed     = "tsn_frer_passed_total"
	MetricEliminated = "tsn_frer_eliminated_total"
	MetricRogue      = "tsn_frer_rogue_total"
)

// ErrTableFull is returned when registering beyond the configured
// frer_size, as a full hardware table would reject the write.
var ErrTableFull = errors.New("frer: sequence-recovery table full")

// Decision is the outcome of the sequence-recovery function for one
// received member-stream frame.
type Decision int

// Possible decisions.
const (
	// Pass: first copy of this sequence number — deliver upward.
	Pass Decision = iota
	// Duplicate: already delivered (or same number seen) within the
	// history window — eliminate silently.
	Duplicate
	// Rogue: sequence number too far behind the window (802.1CB's
	// "rogue packet") — discard and count; likely a stale or babbling
	// member stream.
	Rogue
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Pass:
		return "pass"
	case Duplicate:
		return "duplicate"
	case Rogue:
		return "rogue"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// recoveryState is one table entry: the vector recovery algorithm's
// per-stream state (802.1CB §7.4.3.4).
type recoveryState struct {
	started bool
	top     uint32 // highest sequence number accepted so far
	// window bit i (0-based) remembers whether sequence top-i was
	// accepted; bit 0 is top itself.
	window uint64
}

// Table is a sequence-recovery table for up to capacity streams, the
// listener-side half of FRER.
type Table struct {
	capacity int
	history  int
	streams  map[uint32]*recoveryState

	passed     uint64
	eliminated uint64
	rogue      uint64
	mPassed    metrics.Counter
	mElim      metrics.Counter
	mRogue     metrics.Counter
}

// NewTable returns a table for capacity streams with a history-window
// of history sequence numbers (1..MaxHistory).
func NewTable(capacity, history int) *Table {
	if capacity < 0 {
		panic("frer: negative table capacity")
	}
	if history < 1 || history > MaxHistory {
		panic(fmt.Sprintf("frer: history %d out of [1,%d]", history, MaxHistory))
	}
	return &Table{capacity: capacity, history: history, streams: make(map[uint32]*recoveryState)}
}

// Instrument binds recovery telemetry; zero-value counters are no-ops.
func (t *Table) Instrument(passed, eliminated, rogue metrics.Counter) {
	t.mPassed, t.mElim, t.mRogue = passed, eliminated, rogue
}

// Capacity returns the configured frer_size.
func (t *Table) Capacity() int { return t.capacity }

// History returns the configured window length.
func (t *Table) History() int { return t.history }

// Len returns how many streams are registered.
func (t *Table) Len() int { return len(t.streams) }

// Registered reports whether stream id has a recovery entry.
func (t *Table) Registered(id uint32) bool {
	_, ok := t.streams[id]
	return ok
}

// Resize changes the stream capacity and history window in place,
// preserving registered streams and their recovery state — the
// live-reconfiguration primitive behind set_frer_tbl. It fails if the
// new capacity cannot hold the registered streams or the history is
// outside [1,MaxHistory]. Shrinking the history narrows the duplicate-
// detection window for subsequent frames only.
func (t *Table) Resize(capacity, history int) error {
	if capacity < 0 {
		return fmt.Errorf("frer: negative table capacity %d", capacity)
	}
	if history < 1 || history > MaxHistory {
		return fmt.Errorf("frer: history %d out of [1,%d]", history, MaxHistory)
	}
	if len(t.streams) > capacity {
		return fmt.Errorf("frer: cannot shrink table to %d: %d streams registered",
			capacity, len(t.streams))
	}
	t.capacity = capacity
	t.history = history
	return nil
}

// Register allocates a recovery entry for stream id. Registering an
// already-present stream is a no-op; registering beyond capacity fails.
func (t *Table) Register(id uint32) error {
	if _, ok := t.streams[id]; ok {
		return nil
	}
	if len(t.streams) >= t.capacity {
		return fmt.Errorf("%w: capacity %d", ErrTableFull, t.capacity)
	}
	t.streams[id] = &recoveryState{}
	return nil
}

// Accept runs the vector recovery algorithm for one received frame of
// stream id with the given sequence number. Frames of unregistered
// streams pass through untouched (no recovery function attached, per
// 802.1CB stream identification).
func (t *Table) Accept(id uint32, seq uint32) Decision {
	st, ok := t.streams[id]
	if !ok {
		return Pass
	}
	d := st.accept(seq, t.history)
	switch d {
	case Pass:
		t.passed++
		t.mPassed.Inc()
	case Duplicate:
		t.eliminated++
		t.mElim.Inc()
	case Rogue:
		t.rogue++
		t.mRogue.Inc()
	}
	return d
}

func (st *recoveryState) accept(seq uint32, history int) Decision {
	if !st.started {
		st.started = true
		st.top = seq
		st.window = 1
		return Pass
	}
	mask := uint64(1)<<history - 1
	if history == MaxHistory {
		mask = ^uint64(0)
	}
	delta := int64(seq) - int64(st.top)
	switch {
	case delta > 0:
		// Ahead of everything seen: advance the window. A jump past
		// the window length simply shifts the old history out.
		if delta >= int64(MaxHistory) {
			st.window = 0
		} else {
			st.window <<= uint(delta)
		}
		st.window = (st.window | 1) & mask
		st.top = seq
		return Pass
	case delta == 0:
		return Duplicate
	case delta > -int64(history):
		// Inside the window: out-of-order arrival or duplicate.
		bit := uint64(1) << uint(-delta)
		if st.window&bit != 0 {
			return Duplicate
		}
		st.window |= bit
		return Pass
	default:
		return Rogue
	}
}

// Stats returns (passed, eliminated, rogue) totals across all streams.
func (t *Table) Stats() (passed, eliminated, rogue uint64) {
	return t.passed, t.eliminated, t.rogue
}
