package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus for FuzzParse: at least one well-formed
// document per fault kind, plus representative malformed inputs, so
// coverage-guided mutation starts from every accepting code path.
var fuzzSeeds = []string{
	`{"faults": []}`,
	`{"seed": 42, "faults": [{"at_us": 0, "kind": "link-down", "a": 0, "b": 1}]}`,
	`{"faults": [{"at_us": 10, "kind": "link-up", "host": 104}]}`,
	`{"faults": [{"at_us": 0, "kind": "link-flap", "a": 1, "b": 2, "period_us": 200, "count": 4}]}`,
	`{"faults": [{"at_us": 5, "kind": "link-loss", "a": 0, "b": 1, "prob": 0.25, "duration_us": 1000}]}`,
	`{"faults": [{"at_us": 5, "kind": "link-corrupt", "host": 201, "prob": 0.01, "duration_us": 500}]}`,
	`{"faults": [{"at_us": 100, "kind": "clock-step", "switch": 3, "step_ns": -5000}]}`,
	`{"faults": [{"at_us": 100, "kind": "clock-drift", "switch": 2, "drift_ppb": 150}]}`,
	`{"faults": [{"at_us": 1000, "kind": "gm-kill"}]}`,
	`{"faults": [{"at_us": 1000, "kind": "node-kill", "switch": 4}]}`,
	`{"faults": [{"at_us": 50, "kind": "buffer-exhaust", "switch": 1, "port": 2, "slots": 8, "duration_us": 300}]}`,
	`{"faults": [{"at_us": 50, "kind": "gate-close", "switch": 0, "port": 1, "duration_us": 200}]}`,
	`{"faults": [{"at_us": 50, "kind": "buffer-leak", "switch": 1, "port": 0, "slots": 2}]}`,
	`{"faults": [{"at_us": 5, "kind": "reconfig-fail", "op": 1}]}`,
	`{"faults": [{"at_us": 5, "kind": "reconfig-transient", "op": 0, "count": 3}]}`,
	`{"faults": [{"at_us": 5, "kind": "reconfig-wedge", "op": 2}]}`,
	// Multi-fault document exercising the duplicate-targeting check.
	`{"faults": [
		{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
		{"at_us": 200, "kind": "link-up", "a": 1, "b": 2}]}`,
	// Malformed inputs: truncation, type confusion, unknown fields.
	``,
	`{`,
	`null`,
	`[]`,
	`{"faults": [{]}`,
	`{"faults": [{"at_us": "soon", "kind": "gm-kill"}]}`,
	`{"faults": [{"at_us": 0, "kind": "link-sever"}]}`,
	`{"faults": [{"at_us": 0, "kind": "gm-kill", "severity": "high"}]}`,
	`{"faults": [{"at_us": -1, "kind": "gm-kill"}]}`,
	`{"faults": [{"at_us": 1e99, "kind": "gm-kill"}]}`,
}

// FuzzParse asserts the scenario parser's safety contract on arbitrary
// input: it must never panic, and any document it accepts must survive
// a marshal → re-parse round trip unchanged (the chaos shrinker depends
// on re-serialized minimal repros meaning the same thing).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		sc2, err := Parse(strings.NewReader(string(out)))
		if err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\ndoc: %s", err, out)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", sc, sc2)
		}
	})
}
