package faults

import (
	"strings"
	"testing"
)

// TestParseNewKinds covers the buffer-leak and reconfig-fail kinds.
func TestParseNewKinds(t *testing.T) {
	sc, err := Parse(strings.NewReader(`{
		"faults": [
			{"at_us": 10, "kind": "buffer-leak", "switch": 1, "port": 0, "slots": 4},
			{"at_us": 20, "kind": "reconfig-fail"},
			{"at_us": 30, "kind": "reconfig-fail", "op": 2}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 3 {
		t.Fatalf("parsed %d faults", len(sc.Faults))
	}
	if sc.Faults[1].Op != nil {
		t.Fatal("absent op must stay nil")
	}
	if sc.Faults[2].Op == nil || *sc.Faults[2].Op != 2 {
		t.Fatal("op 2 not parsed")
	}
}

// TestValidateErrorPaths is the table-driven error-path suite: every
// rejection must carry a descriptive message naming the problem, so a
// scenario typo is diagnosable from the error alone.
func TestValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{
			name:    "unknown kind",
			json:    `{"faults": [{"at_us": 0, "kind": "link-sever"}]}`,
			wantErr: `unknown kind "link-sever"`,
		},
		{
			name:    "empty kind",
			json:    `{"faults": [{"at_us": 0}]}`,
			wantErr: `unknown kind ""`,
		},
		{
			name:    "negative time",
			json:    `{"faults": [{"at_us": -5, "kind": "gm-kill"}]}`,
			wantErr: "negative at_us -5",
		},
		{
			name:    "irrelevant prob on link-down",
			json:    `{"faults": [{"at_us": 0, "kind": "link-down", "a": 0, "b": 1, "prob": 0.5}]}`,
			wantErr: `field "prob" is not valid for kind "link-down"`,
		},
		{
			name:    "irrelevant switch on link-loss",
			json:    `{"faults": [{"at_us": 0, "kind": "link-loss", "a": 0, "b": 1, "prob": 0.5, "duration_us": 10, "switch": 2}]}`,
			wantErr: `field "switch" is not valid for kind "link-loss"`,
		},
		{
			name:    "irrelevant link selector on clock-step",
			json:    `{"faults": [{"at_us": 0, "kind": "clock-step", "switch": 1, "step_ns": 100, "a": 0}]}`,
			wantErr: `field "a" is not valid for kind "clock-step"`,
		},
		{
			name:    "irrelevant target on gm-kill",
			json:    `{"faults": [{"at_us": 0, "kind": "gm-kill", "switch": 3}]}`,
			wantErr: `field "switch" is not valid for kind "gm-kill"`,
		},
		{
			name:    "irrelevant duration on buffer-leak",
			json:    `{"faults": [{"at_us": 0, "kind": "buffer-leak", "switch": 0, "port": 0, "slots": 2, "duration_us": 50}]}`,
			wantErr: `field "duration_us" is not valid for kind "buffer-leak"`,
		},
		{
			name:    "irrelevant op on gate-close",
			json:    `{"faults": [{"at_us": 0, "kind": "gate-close", "switch": 0, "port": 0, "duration_us": 5, "op": 1}]}`,
			wantErr: `field "op" is not valid for kind "gate-close"`,
		},
		{
			name:    "irrelevant slots on reconfig-fail",
			json:    `{"faults": [{"at_us": 0, "kind": "reconfig-fail", "slots": 3}]}`,
			wantErr: `field "slots" is not valid for kind "reconfig-fail"`,
		},
		{
			name:    "negative reconfig-fail op",
			json:    `{"faults": [{"at_us": 0, "kind": "reconfig-fail", "op": -1}]}`,
			wantErr: "reconfig-fail op -1 negative",
		},
		{
			name:    "buffer-leak missing port",
			json:    `{"faults": [{"at_us": 0, "kind": "buffer-leak", "switch": 0, "slots": 2}]}`,
			wantErr: "buffer-leak needs port and positive slots",
		},
		{
			name:    "buffer-leak zero slots",
			json:    `{"faults": [{"at_us": 0, "kind": "buffer-leak", "switch": 0, "port": 0}]}`,
			wantErr: "buffer-leak needs port and positive slots",
		},
		{
			name:    "buffer-leak missing switch",
			json:    `{"faults": [{"at_us": 0, "kind": "buffer-leak", "port": 0, "slots": 2}]}`,
			wantErr: "buffer-leak needs switch",
		},
		{
			name:    "malformed: string where number expected",
			json:    `{"faults": [{"at_us": "soon", "kind": "gm-kill"}]}`,
			wantErr: "cannot unmarshal",
		},
		{
			name:    "malformed: unknown json field",
			json:    `{"faults": [{"at_us": 0, "kind": "gm-kill", "severity": "high"}]}`,
			wantErr: `unknown field "severity"`,
		},
		{
			name:    "fault index in message",
			json:    `{"faults": [{"at_us": 0, "kind": "gm-kill"}, {"at_us": 0, "kind": "bogus"}]}`,
			wantErr: "fault 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("accepted: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestEveryKindRejectsForeignField sweeps the whole matrix: for each
// kind, a field from another kind's vocabulary must be rejected with
// the field named in the error.
// TestParseReconfigChaosKinds covers the transient and wedge reconfig
// kinds the chaos engine injects.
func TestParseReconfigChaosKinds(t *testing.T) {
	sc, err := Parse(strings.NewReader(`{
		"faults": [
			{"at_us": 10, "kind": "reconfig-transient", "op": 1, "count": 3},
			{"at_us": 20, "kind": "reconfig-wedge", "op": 2},
			{"at_us": 30, "kind": "reconfig-wedge"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 3 {
		t.Fatalf("parsed %d faults", len(sc.Faults))
	}
	if sc.Faults[0].Count != 3 {
		t.Fatalf("count = %d", sc.Faults[0].Count)
	}
	if sc.Faults[1].Op == nil || *sc.Faults[1].Op != 2 {
		t.Fatal("wedge op 2 not parsed")
	}
	for _, bad := range []struct{ json, want string }{
		{`{"faults": [{"at_us": 0, "kind": "reconfig-transient", "op": -1}]}`, "reconfig-transient op -1 negative"},
		{`{"faults": [{"at_us": 0, "kind": "reconfig-transient", "count": -2}]}`, "reconfig-transient count -2 negative"},
		{`{"faults": [{"at_us": 0, "kind": "reconfig-wedge", "op": -3}]}`, "reconfig-wedge op -3 negative"},
		{`{"faults": [{"at_us": 0, "kind": "reconfig-wedge", "count": 2}]}`, `field "count" is not valid for kind "reconfig-wedge"`},
	} {
		_, err := Parse(strings.NewReader(bad.json))
		if err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("error %v does not contain %q", err, bad.want)
		}
	}
}

// TestDuplicateTargeting: two faults of the same kind aimed at the same
// target with overlapping active windows are a scenario bug — the
// engine would double-schedule them — so Validate rejects the pair,
// naming both fault indices.
func TestDuplicateTargeting(t *testing.T) {
	reject := []struct {
		name string
		json string
		want string
	}{
		{
			name: "same link-down instant",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
				{"at_us": 100, "kind": "link-down", "a": 1, "b": 2}]}`,
			want: "fault 1 duplicates fault 0",
		},
		{
			name: "overlapping loss windows",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.5, "duration_us": 500},
				{"at_us": 400, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.1, "duration_us": 50}]}`,
			want: "fault 1 duplicates fault 0",
		},
		{
			name: "flap cycles overlap a later flap",
			json: `{"faults": [
				{"at_us": 0, "kind": "link-flap", "a": 0, "b": 1, "period_us": 100, "count": 5},
				{"at_us": 450, "kind": "link-flap", "a": 0, "b": 1, "period_us": 100, "count": 2}]}`,
			want: "fault 1 duplicates fault 0",
		},
		{
			name: "same host link",
			json: `{"faults": [
				{"at_us": 10, "kind": "link-down", "host": 104},
				{"at_us": 10, "kind": "link-down", "host": 104}]}`,
			want: "on host104",
		},
		{
			name: "same switch port gate window",
			json: `{"faults": [
				{"at_us": 0, "kind": "gate-close", "switch": 2, "port": 1, "duration_us": 100},
				{"at_us": 50, "kind": "gate-close", "switch": 2, "port": 1, "duration_us": 100}]}`,
			want: "on sw2.p1",
		},
		{
			name: "double-armed reconfig failure",
			json: `{"faults": [
				{"at_us": 5, "kind": "reconfig-fail"},
				{"at_us": 5, "kind": "reconfig-fail", "op": 3}]}`,
			want: "on global",
		},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("accepted duplicate scenario: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	accept := []struct {
		name string
		json string
	}{
		{
			name: "same link, disjoint windows",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.5, "duration_us": 100},
				{"at_us": 200, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.1, "duration_us": 100}]}`,
		},
		{
			name: "same instant, different links",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
				{"at_us": 100, "kind": "link-down", "a": 2, "b": 3}]}`,
		},
		{
			name: "same link, opposite directions",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
				{"at_us": 100, "kind": "link-down", "a": 2, "b": 1}]}`,
		},
		{
			name: "different kinds share target and window",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.5, "duration_us": 100},
				{"at_us": 120, "kind": "link-corrupt", "a": 1, "b": 2, "prob": 0.1, "duration_us": 10}]}`,
		},
		{
			name: "down then up on the same link",
			json: `{"faults": [
				{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
				{"at_us": 200, "kind": "link-up", "a": 1, "b": 2}]}`,
		},
	}
	for _, tc := range accept {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.json)); err != nil {
				t.Fatalf("rejected legitimate scenario: %v", err)
			}
		})
	}
}

func TestEveryKindRejectsForeignField(t *testing.T) {
	foreign := map[string]string{
		KindLinkDown:      `"slots": 1`,
		KindLinkUp:        `"step_ns": 1`,
		KindLinkFlap:      `"prob": 0.5`,
		KindLinkLoss:      `"count": 2`,
		KindLinkCorrupt:   `"drift_ppb": 1`,
		KindClockStep:     `"duration_us": 1`,
		KindClockDrift:    `"host": 1`,
		KindGMKill:        `"port": 1`,
		KindNodeKill:      `"b": 1`,
		KindBufferExhaust: `"prob": 0.5`,
		KindGateClose:     `"slots": 1`,
		KindBufferLeak:    `"op": 1`,
		KindReconfigFail:  `"switch": 1`,

		KindReconfigTransient: `"switch": 1`,
		KindReconfigWedge:     `"slots": 1`,
	}
	if len(foreign) != len(kinds) {
		t.Fatalf("matrix covers %d kinds, package has %d", len(foreign), len(kinds))
	}
	for kind, field := range foreign {
		doc := `{"faults": [{"at_us": 0, "kind": "` + kind + `", ` + field + `}]}`
		_, err := Parse(strings.NewReader(doc))
		if err == nil {
			t.Errorf("%s accepted foreign field %s", kind, field)
			continue
		}
		if !strings.Contains(err.Error(), "is not valid for kind") {
			t.Errorf("%s: error %q is not a field-validity rejection", kind, err)
		}
	}
}
