package faults

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// sink collects delivered frames.
type sink struct{ frames []*ethernet.Frame }

func (s *sink) Receive(f *ethernet.Frame, on *netdev.Ifc) { s.frames = append(s.frames, f) }

func TestParseValid(t *testing.T) {
	sc, err := Parse(strings.NewReader(`{
		"seed": 7,
		"faults": [
			{"at_us": 100, "kind": "link-down", "a": 1, "b": 2},
			{"at_us": 900, "kind": "link-up", "a": 1, "b": 2},
			{"at_us": 10, "kind": "link-flap", "host": 3, "period_us": 50, "count": 4},
			{"at_us": 0, "kind": "link-loss", "a": 0, "b": 1, "prob": 0.1, "duration_us": 500},
			{"at_us": 0, "kind": "link-corrupt", "a": 0, "b": 1, "prob": 0.01, "duration_us": 500},
			{"at_us": 5, "kind": "clock-step", "switch": 2, "step_ns": 500},
			{"at_us": 5, "kind": "clock-drift", "switch": 2, "drift_ppb": 90000},
			{"at_us": 50, "kind": "gm-kill"},
			{"at_us": 50, "kind": "node-kill", "switch": 1},
			{"at_us": 20, "kind": "buffer-exhaust", "switch": 0, "port": 1, "slots": 90, "duration_us": 200},
			{"at_us": 20, "kind": "gate-close", "switch": 0, "port": 0, "duration_us": 130}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || len(sc.Faults) != 11 {
		t.Fatalf("parsed %d faults seed %d", len(sc.Faults), sc.Seed)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		`{"faults": [{"at_us": 0, "kind": "nonsense"}]}`,
		`{"faults": [{"at_us": -1, "kind": "gm-kill"}]}`,
		`{"faults": [{"at_us": 0, "kind": "link-down"}]}`,                             // no target
		`{"faults": [{"at_us": 0, "kind": "link-down", "a": 1, "b": 2, "host": 3}]}`,  // both targets
		`{"faults": [{"at_us": 0, "kind": "link-flap", "a": 1, "b": 2, "count": 3}]}`, // no period
		`{"faults": [{"at_us": 0, "kind": "link-loss", "a": 1, "b": 2, "prob": 1.5, "duration_us": 1}]}`,
		`{"faults": [{"at_us": 0, "kind": "link-loss", "a": 1, "b": 2, "prob": 0.5}]}`, // no duration
		`{"faults": [{"at_us": 0, "kind": "clock-step", "switch": 1}]}`,                // zero step
		`{"faults": [{"at_us": 0, "kind": "clock-drift"}]}`,                            // no switch
		`{"faults": [{"at_us": 0, "kind": "buffer-exhaust", "switch": 0, "port": 1, "slots": 0, "duration_us": 5}]}`,
		`{"faults": [{"at_us": 0, "kind": "gate-close", "switch": 0, "duration_us": 5}]}`, // no port
		`{"faults": [{"at_us": 0, "kind": "gm-kill", "bogus_field": 1}]}`,                 // unknown field
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid scenario %s", c)
		}
	}
}

// linkPair builds one cable between two sinks.
func linkPair(e *sim.Engine) (*netdev.Ifc, *sink, *sink) {
	sa, sb := &sink{}, &sink{}
	a := netdev.NewIfc(e, "a", sa, ethernet.Gbps)
	b := netdev.NewIfc(e, "b", sb, ethernet.Gbps)
	netdev.Connect(a, b, 0)
	return a, sa, sb
}

func trunkBinding(ifc *netdev.Ifc) Bindings {
	return Bindings{
		TrunkIfc: func(a, b int) (*netdev.Ifc, error) { return ifc, nil },
	}
}

func TestLinkDownUpFault(t *testing.T) {
	e := sim.NewEngine()
	reg := metrics.New()
	ifc, _, sb := linkPair(e)
	inj := NewInjector(e, 1, reg)
	sc, err := Parse(strings.NewReader(`{"faults": [
		{"at_us": 10, "kind": "link-down", "a": 0, "b": 1},
		{"at_us": 30, "kind": "link-up", "a": 0, "b": 1}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Apply(sc, trunkBinding(ifc)); err != nil {
		t.Fatal(err)
	}
	// One frame during the outage (lost), one after recovery.
	e.At(15*sim.Microsecond, "tx1", func(*sim.Engine) { ifc.Transmit(&ethernet.Frame{Seq: 1}, nil) })
	e.At(40*sim.Microsecond, "tx2", func(*sim.Engine) { ifc.Transmit(&ethernet.Frame{Seq: 2}, nil) })
	e.Run()
	if len(sb.frames) != 1 || sb.frames[0].Seq != 2 {
		t.Fatalf("delivered %v, want only seq 2", sb.frames)
	}
	if inj.Injected() != 1 || inj.Recovered() != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", inj.Injected(), inj.Recovered())
	}
	if v := reg.CounterValue(MetricInjected, metrics.L("kind", KindLinkDown)); v != 1 {
		t.Fatalf("injected counter = %d", v)
	}
	if v := reg.SumCounter(MetricLinkDrops, metrics.L("reason", "link-down")); v != 1 {
		t.Fatalf("link drop counter = %d", v)
	}
}

func TestLinkFlapFault(t *testing.T) {
	e := sim.NewEngine()
	ifc, _, _ := linkPair(e)
	inj := NewInjector(e, 1, nil) // nil registry: counters are no-ops
	sc, _ := Parse(strings.NewReader(`{"faults": [
		{"at_us": 0, "kind": "link-flap", "a": 0, "b": 1, "period_us": 20, "count": 3}
	]}`))
	if err := inj.Apply(sc, trunkBinding(ifc)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if inj.Injected() != 3 || inj.Recovered() != 3 {
		t.Fatalf("flap counts = %d/%d, want 3/3", inj.Injected(), inj.Recovered())
	}
	if !ifc.LinkUp() {
		t.Fatal("link not up after final flap cycle")
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	run := func() (delivered int) {
		e := sim.NewEngine()
		ifc, _, sb := linkPair(e)
		inj := NewInjector(e, 42, nil)
		sc, _ := Parse(strings.NewReader(`{"faults": [
			{"at_us": 0, "kind": "link-loss", "a": 0, "b": 1, "prob": 0.5, "duration_us": 1000}
		]}`))
		if err := inj.Apply(sc, trunkBinding(ifc)); err != nil {
			t.Fatal(err)
		}
		next := sim.Time(0)
		for i := 0; i < 100; i++ {
			seq := uint32(i)
			e.At(next, "tx", func(*sim.Engine) { ifc.Transmit(&ethernet.Frame{Seq: seq}, nil) })
			next += sim.Microsecond
		}
		e.Run()
		return len(sb.frames)
	}
	first := run()
	if first == 0 || first == 100 {
		t.Fatalf("loss 0.5 delivered %d of 100", first)
	}
	if again := run(); again != first {
		t.Fatalf("same seed delivered %d then %d frames", first, again)
	}
}

func TestClockFaults(t *testing.T) {
	// Clock faults resolve through the Switch binding, exercised by
	// the testbed integration tests; here verify the two primitive
	// operations they compose (phase step + frequency step).
	c := clock.New(0, 0)
	c.Step(sim.Second, 500*sim.Nanosecond)
	c.SetDrift(sim.Second, 90_000)
	want := 2*sim.Second + 500*sim.Nanosecond + 90*sim.Microsecond
	if got := c.Now(2 * sim.Second); got != want {
		t.Fatalf("clock fault arithmetic: %v, want %v", got, want)
	}
}

func TestApplyBindingErrors(t *testing.T) {
	e := sim.NewEngine()
	inj := NewInjector(e, 1, nil)
	sc, _ := Parse(strings.NewReader(`{"faults": [{"at_us": 0, "kind": "link-down", "a": 0, "b": 1}]}`))
	if err := inj.Apply(sc, Bindings{}); err == nil {
		t.Fatal("missing trunk binding accepted")
	}
	sc, _ = Parse(strings.NewReader(`{"faults": [{"at_us": 0, "kind": "gm-kill"}]}`))
	if err := inj.Apply(sc, Bindings{}); err == nil {
		t.Fatal("gm-kill without domain accepted")
	}
	sc, _ = Parse(strings.NewReader(`{"faults": [{"at_us": 0, "kind": "clock-drift", "switch": 0}]}`))
	if err := inj.Apply(sc, Bindings{}); err == nil {
		t.Fatal("clock fault without switch binding accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/faults.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
