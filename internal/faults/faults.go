// Package faults is a deterministic fault-scenario engine for the
// testbed: a JSON scenario lists faults (what, where, when), and the
// Injector schedules them through the simulation engine so every run
// with the same seed and scenario replays identically. Faults cover
// the physical layer (link down/up, flapping, probabilistic loss, bit
// corruption), time sync (clock frequency steps, grandmaster death),
// buffering (transient pool exhaustion) and gating (gate-table
// misconfiguration).
//
// Two hard rules shape the implementation. First, a fault must never
// leak an in-flight completion or strand the scheduler: link faults
// suppress deliveries but never interrupt MAC timing (see
// netdev.SetLink), gate and buffer faults always schedule their own
// recovery, and nothing here blocks. Second, everything is counted:
// each injection and recovery increments a per-kind counter in the
// metrics registry, and link-level drops are attributed per link and
// reason.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/gptp"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// Fault kinds accepted in scenario files.
const (
	KindLinkDown      = "link-down"      // cable pull: a/b or host, at_us
	KindLinkUp        = "link-up"        // cable restore: a/b or host, at_us
	KindLinkFlap      = "link-flap"      // alternating down/up: + period_us, count
	KindLinkLoss      = "link-loss"      // probabilistic loss: + prob, duration_us
	KindLinkCorrupt   = "link-corrupt"   // FCS-failing bit errors: + prob, duration_us
	KindClockStep     = "clock-step"     // phase jump: switch, step_ns
	KindClockDrift    = "clock-drift"    // frequency step: switch, drift_ppb
	KindGMKill        = "gm-kill"        // silent grandmaster death, at_us
	KindNodeKill      = "node-kill"      // silent gPTP node death: switch
	KindBufferExhaust = "buffer-exhaust" // pool starvation: switch, port, slots, duration_us
	KindGateClose     = "gate-close"     // TS gates stuck closed: switch, port, duration_us
	KindBufferLeak    = "buffer-leak"    // permanent slot loss: switch, port, slots
	KindReconfigFail  = "reconfig-fail"  // fail next reconfig commit mid-apply: op
	// KindReconfigTransient fails the next `count` reconfig commit
	// attempts mid-apply before staged op `op`, then clears — the
	// transient staging failure the engine's bounded retry absorbs.
	KindReconfigTransient = "reconfig-transient"
	// KindReconfigWedge fails the next reconfig commit mid-apply with
	// the rollback path disabled: applied operations stay in place while
	// the transaction claims rolled-back. A deliberately seeded
	// atomicity bug for the chaos oracles.
	KindReconfigWedge = "reconfig-wedge"
)

// kinds lists every kind once, in the fixed order used for metric
// registration (determinism: registration order must not depend on the
// scenario content). New kinds append at the end so existing metric
// orderings never shift.
var kinds = []string{
	KindLinkDown, KindLinkUp, KindLinkFlap, KindLinkLoss, KindLinkCorrupt,
	KindClockStep, KindClockDrift, KindGMKill, KindNodeKill,
	KindBufferExhaust, KindGateClose, KindBufferLeak, KindReconfigFail,
	KindReconfigTransient, KindReconfigWedge,
}

// Metric names.
const (
	// MetricInjected counts fault activations, labeled by kind.
	MetricInjected = "tsn_faults_injected_total"
	// MetricRecovered counts fault recoveries (link back up, impairment
	// cleared, buffers released, gates restored), labeled by kind.
	MetricRecovered = "tsn_faults_recovered_total"
	// MetricLinkDrops counts frames lost to link faults, labeled by
	// link and reason (link-down / loss / corrupt).
	MetricLinkDrops = "tsn_link_drops_total"
)

// Scenario is the root JSON document of a fault-scenario file.
type Scenario struct {
	// Seed drives the probabilistic impairments. Zero defers to the
	// seed the Injector was created with (tsnsim's -seed).
	Seed   uint64  `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// Fault is one scheduled fault. Which fields apply depends on Kind;
// Validate enforces the combinations.
type Fault struct {
	// AtUs is the activation time in microseconds after scenario start.
	AtUs int64  `json:"at_us"`
	Kind string `json:"kind"`

	// A/B select the trunk link between switches A and B; Host selects
	// a host's access link instead.
	A    *int `json:"a,omitempty"`
	B    *int `json:"b,omitempty"`
	Host *int `json:"host,omitempty"`

	// Switch/Port select a switch (clock/node faults) or one of its
	// ports (buffer/gate faults).
	Switch *int `json:"switch,omitempty"`
	Port   *int `json:"port,omitempty"`

	// DurationUs bounds transient faults (loss, corruption, buffer
	// exhaustion, gate misconfiguration): recovery is scheduled at
	// AtUs + DurationUs.
	DurationUs int64 `json:"duration_us,omitempty"`
	// PeriodUs and Count shape link flapping: Count down/up cycles of
	// PeriodUs each (half down, half up).
	PeriodUs int64 `json:"period_us,omitempty"`
	Count    int   `json:"count,omitempty"`
	// Prob is the per-frame loss/corruption probability.
	Prob float64 `json:"prob,omitempty"`
	// StepNs is the clock phase jump; DriftPPB the new oscillator
	// frequency error.
	StepNs   int64 `json:"step_ns,omitempty"`
	DriftPPB int64 `json:"drift_ppb,omitempty"`
	// Slots is how many buffer slots the exhaustion or leak fault
	// removes from service.
	Slots int `json:"slots,omitempty"`
	// Op is the staged-operation index a reconfig-fail fault arms: the
	// next reconfiguration commit fails right before that operation.
	Op *int `json:"op,omitempty"`
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse decodes and validates a scenario. Unknown fields are errors,
// so a typo cannot silently disable a fault.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks every fault's field combination, then rejects
// duplicate targeting: two faults of the same kind on the same target
// with overlapping active windows would silently double-schedule
// (flaps interleave, impairments clear early), so the scenario is a
// bug, not a stress test.
func (sc *Scenario) Validate() error {
	for i := range sc.Faults {
		if err := sc.Faults[i].validate(); err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
	}
	for i := range sc.Faults {
		for j := 0; j < i; j++ {
			a, b := &sc.Faults[j], &sc.Faults[i]
			if a.Kind != b.Kind || a.targetKey() != b.targetKey() {
				continue
			}
			as, ae := a.window()
			bs, be := b.window()
			if as < be && bs < ae {
				return fmt.Errorf("faults: fault %d duplicates fault %d: %s on %s, active windows [%d,%d)µs and [%d,%d)µs overlap",
					i, j, b.Kind, b.targetKey(), as, ae, bs, be)
			}
		}
	}
	return nil
}

// targetKey is the stable label of what a fault acts on, used for
// duplicate detection. Faults of the same kind collide only when these
// keys match; a trunk selector is directional (a→b and b→a impair
// different directions and may coexist).
func (f *Fault) targetKey() string {
	switch {
	case f.A != nil && f.B != nil:
		return fmt.Sprintf("sw%d-sw%d", *f.A, *f.B)
	case f.Host != nil:
		return fmt.Sprintf("host%d", *f.Host)
	case f.Switch != nil && f.Port != nil:
		return fmt.Sprintf("sw%d.p%d", *f.Switch, *f.Port)
	case f.Switch != nil:
		return fmt.Sprintf("sw%d", *f.Switch)
	default:
		return "global"
	}
}

// window returns the fault's active interval [start, end) in µs.
// Durational kinds span their duration, flaps span all cycles, and
// point kinds occupy a single instant — two point faults duplicate
// each other only at the exact same at_us.
func (f *Fault) window() (start, end int64) {
	start = f.AtUs
	switch f.Kind {
	case KindLinkFlap:
		return start, start + f.PeriodUs*int64(f.Count)
	case KindLinkLoss, KindLinkCorrupt, KindBufferExhaust, KindGateClose:
		return start, start + f.DurationUs
	default:
		return start, start + 1
	}
}

// allowedFields whitelists, per kind, the selector/parameter fields a
// fault may set. Validation rejects any other populated field with a
// descriptive error: a misplaced "prob" on a link-down fault is a
// scenario bug, not something to silently ignore.
var allowedFields = map[string]map[string]bool{
	KindLinkDown:          {"a": true, "b": true, "host": true},
	KindLinkUp:            {"a": true, "b": true, "host": true},
	KindLinkFlap:          {"a": true, "b": true, "host": true, "period_us": true, "count": true},
	KindLinkLoss:          {"a": true, "b": true, "host": true, "prob": true, "duration_us": true},
	KindLinkCorrupt:       {"a": true, "b": true, "host": true, "prob": true, "duration_us": true},
	KindClockStep:         {"switch": true, "step_ns": true},
	KindClockDrift:        {"switch": true, "drift_ppb": true},
	KindGMKill:            {},
	KindNodeKill:          {"switch": true},
	KindBufferExhaust:     {"switch": true, "port": true, "slots": true, "duration_us": true},
	KindGateClose:         {"switch": true, "port": true, "duration_us": true},
	KindBufferLeak:        {"switch": true, "port": true, "slots": true},
	KindReconfigFail:      {"op": true},
	KindReconfigTransient: {"op": true, "count": true},
	KindReconfigWedge:     {"op": true},
}

// presentFields lists the optional fields this fault populates, by
// JSON name. Pointer fields count when non-nil, value fields when
// non-zero (their zero values are indistinguishable from absent).
func (f *Fault) presentFields() []string {
	var out []string
	add := func(name string, set bool) {
		if set {
			out = append(out, name)
		}
	}
	add("a", f.A != nil)
	add("b", f.B != nil)
	add("host", f.Host != nil)
	add("switch", f.Switch != nil)
	add("port", f.Port != nil)
	add("duration_us", f.DurationUs != 0)
	add("period_us", f.PeriodUs != 0)
	add("count", f.Count != 0)
	add("prob", f.Prob != 0)
	add("step_ns", f.StepNs != 0)
	add("drift_ppb", f.DriftPPB != 0)
	add("slots", f.Slots != 0)
	add("op", f.Op != nil)
	return out
}

func (f *Fault) validate() error {
	if f.AtUs < 0 {
		return fmt.Errorf("negative at_us %d", f.AtUs)
	}
	allowed, known := allowedFields[f.Kind]
	if !known {
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	for _, field := range f.presentFields() {
		if !allowed[field] {
			return fmt.Errorf("field %q is not valid for kind %q", field, f.Kind)
		}
	}
	needLink := func() error {
		hasTrunk := f.A != nil && f.B != nil
		hasHost := f.Host != nil
		if hasTrunk == hasHost {
			return fmt.Errorf("%s needs either a+b or host", f.Kind)
		}
		return nil
	}
	needSwitch := func() error {
		if f.Switch == nil {
			return fmt.Errorf("%s needs switch", f.Kind)
		}
		return nil
	}
	switch f.Kind {
	case KindLinkDown, KindLinkUp:
		return needLink()
	case KindLinkFlap:
		if err := needLink(); err != nil {
			return err
		}
		if f.PeriodUs <= 0 || f.Count <= 0 {
			return fmt.Errorf("link-flap needs positive period_us and count")
		}
	case KindLinkLoss, KindLinkCorrupt:
		if err := needLink(); err != nil {
			return err
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("%s prob %v outside (0,1]", f.Kind, f.Prob)
		}
		if f.DurationUs <= 0 {
			return fmt.Errorf("%s needs positive duration_us", f.Kind)
		}
	case KindClockStep:
		if err := needSwitch(); err != nil {
			return err
		}
		if f.StepNs == 0 {
			return fmt.Errorf("clock-step needs non-zero step_ns")
		}
	case KindClockDrift:
		return needSwitch()
	case KindGMKill:
		// No target: the current grandmaster dies.
	case KindNodeKill:
		return needSwitch()
	case KindBufferExhaust:
		if err := needSwitch(); err != nil {
			return err
		}
		if f.Port == nil || f.Slots <= 0 || f.DurationUs <= 0 {
			return fmt.Errorf("buffer-exhaust needs port, positive slots and duration_us")
		}
	case KindGateClose:
		if err := needSwitch(); err != nil {
			return err
		}
		if f.Port == nil || f.DurationUs <= 0 {
			return fmt.Errorf("gate-close needs port and positive duration_us")
		}
	case KindBufferLeak:
		if err := needSwitch(); err != nil {
			return err
		}
		if f.Port == nil || f.Slots <= 0 {
			return fmt.Errorf("buffer-leak needs port and positive slots")
		}
	case KindReconfigFail:
		if f.Op != nil && *f.Op < 0 {
			return fmt.Errorf("reconfig-fail op %d negative", *f.Op)
		}
	case KindReconfigTransient:
		if f.Op != nil && *f.Op < 0 {
			return fmt.Errorf("reconfig-transient op %d negative", *f.Op)
		}
		if f.Count < 0 {
			return fmt.Errorf("reconfig-transient count %d negative", f.Count)
		}
	case KindReconfigWedge:
		if f.Op != nil && *f.Op < 0 {
			return fmt.Errorf("reconfig-wedge op %d negative", *f.Op)
		}
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

// Bindings resolves scenario selectors to live testbed objects. The
// testbed provides these so this package needs no dependency on it.
type Bindings struct {
	// TrunkIfc returns the interface on switch a facing switch b (its
	// Peer is the reverse direction).
	TrunkIfc func(a, b int) (*netdev.Ifc, error)
	// HostIfc returns host's NIC-side access interface.
	HostIfc func(host int) (*netdev.Ifc, error)
	// Switch returns a switch by ID.
	Switch func(id int) (*tsnswitch.Switch, error)
	// Domain is the gPTP domain; nil when time sync is disabled, which
	// makes gm-kill and node-kill scenario errors.
	Domain *gptp.Domain
	// ArmReconfigFail arms a one-shot mid-apply failure of the next
	// reconfiguration commit, right before staged operation op. Nil
	// makes reconfig-fail a scenario error.
	ArmReconfigFail func(op int) error
	// ArmReconfigTransient arms a transient mid-apply failure: the next
	// `times` commit attempts fail before staged operation op, then the
	// fault clears. Nil makes reconfig-transient a scenario error.
	ArmReconfigTransient func(op, times int) error
	// ArmReconfigWedge arms a one-shot mid-apply failure with the
	// rollback path disabled. Nil makes reconfig-wedge a scenario
	// error.
	ArmReconfigWedge func(op int) error
}

// Injector schedules a scenario's faults on a simulation engine.
type Injector struct {
	engine *sim.Engine
	reg    *metrics.Registry
	seed   uint64

	injected  map[string]metrics.Counter
	recovered map[string]metrics.Counter

	injectedN  uint64
	recoveredN uint64

	// OnInject, when set, runs on the simulation thread at every fault
	// activation — the observability layer dumps the flight recorder
	// from it. Set before the scenario starts firing.
	OnInject func(kind string)
}

// NewInjector creates an injector. seed drives the probabilistic
// impairments (a scenario's own Seed field overrides it); reg may be
// nil for uncounted use.
func NewInjector(engine *sim.Engine, seed uint64, reg *metrics.Registry) *Injector {
	inj := &Injector{
		engine:    engine,
		reg:       reg,
		seed:      seed,
		injected:  make(map[string]metrics.Counter),
		recovered: make(map[string]metrics.Counter),
	}
	if reg != nil {
		reg.Help(MetricInjected, "fault activations by kind")
		reg.Help(MetricRecovered, "fault recoveries by kind")
		reg.Help(MetricLinkDrops, "frames lost to link faults by link and reason")
		for _, k := range kinds {
			l := metrics.L("kind", k)
			inj.injected[k] = reg.Counter(MetricInjected, l)
			inj.recovered[k] = reg.Counter(MetricRecovered, l)
		}
	}
	return inj
}

// Injected returns the total number of fault activations so far.
func (inj *Injector) Injected() uint64 { return inj.injectedN }

// Recovered returns the total number of fault recoveries so far.
func (inj *Injector) Recovered() uint64 { return inj.recoveredN }

func (inj *Injector) markInjected(kind string) {
	inj.injectedN++
	inj.injected[kind].Inc()
	if inj.OnInject != nil {
		inj.OnInject(kind)
	}
}

func (inj *Injector) markRecovered(kind string) {
	inj.recoveredN++
	inj.recovered[kind].Inc()
}

// fnv1a hashes a label so each impaired link direction gets its own
// deterministic random stream regardless of scenario ordering.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Apply validates bindings for every fault in sc and schedules them
// relative to the engine's current time. Call once, before Run.
func (inj *Injector) Apply(sc *Scenario, b Bindings) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	seed := inj.seed
	if sc.Seed != 0 {
		seed = sc.Seed
	}
	base := inj.engine.Now()
	for i := range sc.Faults {
		f := &sc.Faults[i]
		at := base + sim.Time(f.AtUs)*sim.Microsecond
		if err := inj.schedule(f, at, seed, b); err != nil {
			return fmt.Errorf("faults: fault %d (%s): %w", i, f.Kind, err)
		}
	}
	return nil
}

// linkTarget resolves a fault's link selector to the two directional
// interfaces of one cable plus a stable label.
func (inj *Injector) linkTarget(f *Fault, b Bindings) (fwd, rev *netdev.Ifc, label string, err error) {
	if f.Host != nil {
		if b.HostIfc == nil {
			return nil, nil, "", fmt.Errorf("no host binding")
		}
		ifc, err := b.HostIfc(*f.Host)
		if err != nil {
			return nil, nil, "", err
		}
		if ifc.Peer() == nil {
			return nil, nil, "", fmt.Errorf("host %d interface not cabled", *f.Host)
		}
		return ifc, ifc.Peer(), fmt.Sprintf("host%d", *f.Host), nil
	}
	if b.TrunkIfc == nil {
		return nil, nil, "", fmt.Errorf("no trunk binding")
	}
	ifc, err := b.TrunkIfc(*f.A, *f.B)
	if err != nil {
		return nil, nil, "", err
	}
	return ifc, ifc.Peer(), fmt.Sprintf("sw%d-sw%d", *f.A, *f.B), nil
}

// instrumentLink binds per-reason drop counters for both directions of
// a faulted link (idempotent: the registry returns the same handles).
func (inj *Injector) instrumentLink(fwd, rev *netdev.Ifc, label string) {
	if inj.reg == nil {
		return
	}
	for _, d := range []struct {
		ifc *netdev.Ifc
		dir string
	}{{fwd, "fwd"}, {rev, "rev"}} {
		l := metrics.L("link", label+"/"+d.dir)
		d.ifc.InstrumentLink(
			inj.reg.Counter(MetricLinkDrops, l, metrics.L("reason", "link-down")),
			inj.reg.Counter(MetricLinkDrops, l, metrics.L("reason", "loss")),
			inj.reg.Counter(MetricLinkDrops, l, metrics.L("reason", "corrupt")),
		)
	}
}

func (inj *Injector) schedule(f *Fault, at sim.Time, seed uint64, b Bindings) error {
	switch f.Kind {
	case KindLinkDown, KindLinkUp, KindLinkFlap:
		fwd, rev, label, err := inj.linkTarget(f, b)
		if err != nil {
			return err
		}
		inj.instrumentLink(fwd, rev, label)
		switch f.Kind {
		case KindLinkDown:
			inj.engine.At(at, "fault:link-down:"+label, func(*sim.Engine) {
				fwd.SetLink(false)
				inj.markInjected(KindLinkDown)
			})
		case KindLinkUp:
			inj.engine.At(at, "fault:link-up:"+label, func(*sim.Engine) {
				fwd.SetLink(true)
				inj.markRecovered(KindLinkUp)
			})
		default: // flap: Count down/up cycles, half a period each state
			half := sim.Time(f.PeriodUs) * sim.Microsecond / 2
			for c := 0; c < f.Count; c++ {
				down := at + sim.Time(c)*2*half
				inj.engine.At(down, "fault:flap-down:"+label, func(*sim.Engine) {
					fwd.SetLink(false)
					inj.markInjected(KindLinkFlap)
				})
				inj.engine.At(down+half, "fault:flap-up:"+label, func(*sim.Engine) {
					fwd.SetLink(true)
					inj.markRecovered(KindLinkFlap)
				})
			}
		}

	case KindLinkLoss, KindLinkCorrupt:
		fwd, rev, label, err := inj.linkTarget(f, b)
		if err != nil {
			return err
		}
		inj.instrumentLink(fwd, rev, label)
		kind := f.Kind
		prob := f.Prob
		until := at + sim.Time(f.DurationUs)*sim.Microsecond
		// One independent deterministic stream per direction, derived
		// from the seed and the link label, so reordering faults in
		// the file cannot change per-link outcomes.
		rngF := sim.NewRand(seed ^ fnv1a(label+"/fwd/"+kind))
		rngR := sim.NewRand(seed ^ fnv1a(label+"/rev/"+kind))
		inj.engine.At(at, "fault:"+kind+":"+label, func(*sim.Engine) {
			if kind == KindLinkLoss {
				fwd.SetImpairment(prob, 0, rngF)
				rev.SetImpairment(prob, 0, rngR)
			} else {
				fwd.SetImpairment(0, prob, rngF)
				rev.SetImpairment(0, prob, rngR)
			}
			inj.markInjected(kind)
		})
		inj.engine.At(until, "recover:"+kind+":"+label, func(*sim.Engine) {
			fwd.ClearImpairment()
			rev.ClearImpairment()
			inj.markRecovered(kind)
		})

	case KindClockStep, KindClockDrift:
		sw, err := inj.bindSwitch(f, b)
		if err != nil {
			return err
		}
		kind := f.Kind
		step := sim.Time(f.StepNs) * sim.Nanosecond
		drift := clock.PPB(f.DriftPPB)
		inj.engine.At(at, fmt.Sprintf("fault:%s:sw%d", kind, sw.ID()), func(e *sim.Engine) {
			if kind == KindClockStep {
				sw.Clock.Step(e.Now(), step)
			} else {
				sw.Clock.SetDrift(e.Now(), drift)
			}
			inj.markInjected(kind)
		})

	case KindGMKill:
		if b.Domain == nil {
			return fmt.Errorf("gm-kill without a gPTP domain")
		}
		dom := b.Domain
		inj.engine.At(at, "fault:gm-kill", func(*sim.Engine) {
			if gm := dom.Grandmaster(); gm != nil {
				dom.KillNode(gm)
			}
			inj.markInjected(KindGMKill)
		})

	case KindNodeKill:
		if b.Domain == nil {
			return fmt.Errorf("node-kill without a gPTP domain")
		}
		dom := b.Domain
		var node *gptp.Node
		for _, n := range dom.Nodes() {
			if n.ID == *f.Switch {
				node = n
				break
			}
		}
		if node == nil {
			return fmt.Errorf("no gPTP node for switch %d", *f.Switch)
		}
		inj.engine.At(at, fmt.Sprintf("fault:node-kill:sw%d", *f.Switch), func(*sim.Engine) {
			dom.KillNode(node)
			inj.markInjected(KindNodeKill)
		})

	case KindBufferExhaust:
		sw, err := inj.bindSwitch(f, b)
		if err != nil {
			return err
		}
		pool := sw.Port(*f.Port).Pool()
		slots := f.Slots
		until := at + sim.Time(f.DurationUs)*sim.Microsecond
		label := fmt.Sprintf("sw%d.p%d", sw.ID(), *f.Port)
		inj.engine.At(at, "fault:buffer-exhaust:"+label, func(*sim.Engine) {
			pool.Reserve(slots)
			inj.markInjected(KindBufferExhaust)
		})
		inj.engine.At(until, "recover:buffer-exhaust:"+label, func(*sim.Engine) {
			pool.ReleaseReserved()
			inj.markRecovered(KindBufferExhaust)
		})

	case KindGateClose:
		sw, err := inj.bindSwitch(f, b)
		if err != nil {
			return err
		}
		port := *f.Port
		until := at + sim.Time(f.DurationUs)*sim.Microsecond
		label := fmt.Sprintf("sw%d.p%d", sw.ID(), port)
		cfg := sw.Config()
		// The misconfigured GCL keeps every gate open EXCEPT the TS
		// queues — the paper's CQF pair is stuck closed, so TS frames
		// drop with reason gate-closed while RC/BE continue.
		closed := gate.Mask(1<<uint(cfg.QueuesPerPort) - 1)
		closed &^= 1 << uint(cfg.TSQueueA)
		closed &^= 1 << uint(cfg.TSQueueB)
		bad := gate.NewGCL(cfg.SlotSize, []gate.Mask{closed, closed})
		inj.engine.At(at, "fault:gate-close:"+label, func(*sim.Engine) {
			in, out := sw.PortSchedules(port)
			if err := sw.SetPortSchedules(port, bad, bad); err != nil {
				panic(fmt.Sprintf("faults: gate-close %s: %v", label, err))
			}
			inj.markInjected(KindGateClose)
			inj.engine.At(until, "recover:gate-close:"+label, func(*sim.Engine) {
				if err := sw.SetPortSchedules(port, in, out); err != nil {
					panic(fmt.Sprintf("faults: gate restore %s: %v", label, err))
				}
				inj.markRecovered(KindGateClose)
			})
		})

	case KindBufferLeak:
		sw, err := inj.bindSwitch(f, b)
		if err != nil {
			return err
		}
		pool := sw.Port(*f.Port).Pool()
		slots := f.Slots
		label := fmt.Sprintf("sw%d.p%d", sw.ID(), *f.Port)
		// A leak never recovers: the slots are gone until the watchdog
		// (or a human) notices the conservation violation.
		inj.engine.At(at, "fault:buffer-leak:"+label, func(*sim.Engine) {
			pool.Leak(slots)
			inj.markInjected(KindBufferLeak)
		})

	case KindReconfigFail:
		if b.ArmReconfigFail == nil {
			return fmt.Errorf("reconfig-fail without a reconfiguration controller")
		}
		arm := b.ArmReconfigFail
		opIdx := 0
		if f.Op != nil {
			opIdx = *f.Op
		}
		inj.engine.At(at, "fault:reconfig-fail", func(*sim.Engine) {
			if err := arm(opIdx); err != nil {
				panic(fmt.Sprintf("faults: reconfig-fail: %v", err))
			}
			inj.markInjected(KindReconfigFail)
		})

	case KindReconfigTransient:
		if b.ArmReconfigTransient == nil {
			return fmt.Errorf("reconfig-transient without a reconfiguration controller")
		}
		arm := b.ArmReconfigTransient
		opIdx := 0
		if f.Op != nil {
			opIdx = *f.Op
		}
		times := f.Count
		if times < 1 {
			times = 1
		}
		inj.engine.At(at, "fault:reconfig-transient", func(*sim.Engine) {
			if err := arm(opIdx, times); err != nil {
				panic(fmt.Sprintf("faults: reconfig-transient: %v", err))
			}
			inj.markInjected(KindReconfigTransient)
		})

	case KindReconfigWedge:
		if b.ArmReconfigWedge == nil {
			return fmt.Errorf("reconfig-wedge without a reconfiguration controller")
		}
		arm := b.ArmReconfigWedge
		opIdx := 0
		if f.Op != nil {
			opIdx = *f.Op
		}
		inj.engine.At(at, "fault:reconfig-wedge", func(*sim.Engine) {
			if err := arm(opIdx); err != nil {
				panic(fmt.Sprintf("faults: reconfig-wedge: %v", err))
			}
			inj.markInjected(KindReconfigWedge)
		})

	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

func (inj *Injector) bindSwitch(f *Fault, b Bindings) (*tsnswitch.Switch, error) {
	if b.Switch == nil {
		return nil, fmt.Errorf("no switch binding")
	}
	return b.Switch(*f.Switch)
}
