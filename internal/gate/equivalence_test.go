package gate

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// cqfAsVarGCL expresses the CQF fixed-slot schedule as a
// variable-duration list.
func cqfAsVarGCL(slot sim.Time, a, b int) (in, out *VarGCL) {
	others := AllOpen &^ (1<<uint(a) | 1<<uint(b))
	in = NewVarGCL([]VarEntry{
		{Mask: others.With(a), Duration: slot},
		{Mask: others.With(b), Duration: slot},
	})
	out = NewVarGCL([]VarEntry{
		{Mask: others.With(b), Duration: slot},
		{Mask: others.With(a), Duration: slot},
	})
	return in, out
}

// TestCQFVarGCLEquivalence proves the two schedule representations are
// behaviourally identical: same state, same boundaries, for arbitrary
// instants. This pins down the Schedule abstraction the switch relies
// on when the control plane swaps CQF for a synthesized list.
func TestCQFVarGCLEquivalence(t *testing.T) {
	slot := 65 * sim.Microsecond
	fixedIn, fixedOut := CQF(slot, 7, 6)
	varIn, varOut := cqfAsVarGCL(slot, 7, 6)

	prop := func(raw uint32) bool {
		at := sim.Time(raw)
		if fixedIn.StateAt(at) != varIn.StateAt(at) {
			return false
		}
		if fixedOut.StateAt(at) != varOut.StateAt(at) {
			return false
		}
		if fixedIn.NextBoundary(at) != varIn.NextBoundary(at) {
			return false
		}
		return fixedOut.TimeToBoundary(at) == varOut.TimeToBoundary(at)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if fixedIn.Cycle() != varIn.Cycle() || fixedIn.Size() != varIn.Size() {
		t.Fatal("cycle/size mismatch between representations")
	}
}

// TestEnqueueTargetEquivalence checks the redirection logic agrees on
// both representations.
func TestEnqueueTargetEquivalence(t *testing.T) {
	slot := 65 * sim.Microsecond
	fixedIn, _ := CQF(slot, 7, 6)
	varIn, _ := cqfAsVarGCL(slot, 7, 6)
	prop := func(raw uint32, qRaw uint8) bool {
		at := sim.Time(raw)
		q := int(qRaw % 8)
		return EnqueueTarget(fixedIn, at, q, 7, 6) == EnqueueTarget(varIn, at, q, 7, 6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
