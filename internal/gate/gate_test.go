package gate

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestMask(t *testing.T) {
	var m Mask
	if m.Open(3) {
		t.Fatal("empty mask open")
	}
	m = m.With(3)
	if !m.Open(3) || m.Open(4) {
		t.Fatal("With(3) wrong")
	}
	for q := 0; q < 16; q++ {
		if !AllOpen.Open(q) {
			t.Fatalf("AllOpen closed for %d", q)
		}
	}
}

func TestGCLRotation(t *testing.T) {
	slot := 65 * sim.Microsecond
	g := NewGCL(slot, []Mask{Mask(0).With(7), Mask(0).With(6)})
	if !g.StateAt(0).Open(7) || g.StateAt(0).Open(6) {
		t.Fatal("slot 0 state wrong")
	}
	if !g.StateAt(slot).Open(6) || g.StateAt(slot).Open(7) {
		t.Fatal("slot 1 state wrong")
	}
	// Wraps to entry 0 at the cycle boundary.
	if !g.StateAt(2 * slot).Open(7) {
		t.Fatal("cycle wrap wrong")
	}
	// Mid-slot stays on the same entry.
	if !g.StateAt(slot / 2).Open(7) {
		t.Fatal("mid-slot state wrong")
	}
}

func TestGCLBase(t *testing.T) {
	slot := 10 * sim.Microsecond
	g := NewGCL(slot, []Mask{1, 2})
	g.SetBase(3 * sim.Microsecond)
	if g.StateAt(3*sim.Microsecond) != 1 {
		t.Fatal("base not honored")
	}
	if g.StateAt(13*sim.Microsecond) != 2 {
		t.Fatal("post-base slot wrong")
	}
	// Before the base, the schedule extends cyclically backwards.
	if g.StateAt(0) != 2 {
		t.Fatalf("pre-base state = %v, want entry 1", g.StateAt(0))
	}
}

func TestGCLBoundaries(t *testing.T) {
	slot := 10 * sim.Microsecond
	g := NewGCL(slot, []Mask{1, 2, 3})
	if g.NextBoundary(0) != slot {
		t.Fatalf("NextBoundary(0) = %v", g.NextBoundary(0))
	}
	if g.NextBoundary(slot) != 2*slot {
		t.Fatal("boundary at exact slot edge must be the next edge")
	}
	if g.TimeToBoundary(slot-1) != 1 {
		t.Fatalf("TimeToBoundary = %v", g.TimeToBoundary(slot-1))
	}
	if g.SlotIndex(25*sim.Microsecond) != 2 {
		t.Fatalf("SlotIndex = %d", g.SlotIndex(25*sim.Microsecond))
	}
	if g.Cycle() != 3*slot {
		t.Fatalf("Cycle = %v", g.Cycle())
	}
}

func TestGCLPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero slot did not panic")
			}
		}()
		NewGCL(0, []Mask{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty GCL did not panic")
			}
		}()
		NewGCL(sim.Microsecond, nil)
	}()
}

func TestAlwaysOpen(t *testing.T) {
	g := AlwaysOpen(65 * sim.Microsecond)
	if g.Size() != 1 {
		t.Fatalf("Size = %d", g.Size())
	}
	for _, at := range []sim.Time{0, 1, 1000, 999 * sim.Millisecond} {
		if g.StateAt(at) != AllOpen {
			t.Fatal("AlwaysOpen gated something")
		}
	}
}

func TestCQFComplementary(t *testing.T) {
	slot := 65 * sim.Microsecond
	in, out := CQF(slot, 7, 6)
	if in.Size() != 2 || out.Size() != 2 {
		t.Fatalf("CQF GCL sizes = %d,%d, want 2,2", in.Size(), out.Size())
	}
	for slotIdx := 0; slotIdx < 4; slotIdx++ {
		at := sim.Time(slotIdx) * slot
		inState, outState := in.StateAt(at), out.StateAt(at)
		// Exactly one TS queue enqueues while the other drains.
		if inState.Open(7) == inState.Open(6) {
			t.Fatal("in-gates not exclusive")
		}
		if outState.Open(7) == outState.Open(6) {
			t.Fatal("out-gates not exclusive")
		}
		if inState.Open(7) == outState.Open(7) {
			t.Fatal("queue 7 enqueues and drains in the same slot")
		}
		// Non-TS queues are never gated.
		for q := 0; q <= 5; q++ {
			if !inState.Open(q) || !outState.Open(q) {
				t.Fatalf("non-TS queue %d gated", q)
			}
		}
	}
}

func TestCQFSameQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CQF with same queues did not panic")
		}
	}()
	CQF(sim.Microsecond, 7, 7)
}

func TestEnqueueQueueAlternates(t *testing.T) {
	slot := 65 * sim.Microsecond
	in, _ := CQF(slot, 7, 6)
	if EnqueueQueue(in, 0, 7, 6) != 7 {
		t.Fatal("slot 0 should enqueue into queue 7")
	}
	if EnqueueQueue(in, slot, 7, 6) != 6 {
		t.Fatal("slot 1 should enqueue into queue 6")
	}
	if EnqueueQueue(in, 2*slot, 7, 6) != 7 {
		t.Fatal("slot 2 should wrap to queue 7")
	}
}

// Property: for any time, the CQF in- and out-gates of the two TS
// queues are exclusive and complementary, and the state is periodic
// with the cycle.
func TestCQFInvariantProperty(t *testing.T) {
	slot := 65 * sim.Microsecond
	in, out := CQF(slot, 7, 6)
	prop := func(raw uint32) bool {
		at := sim.Time(raw)
		i, o := in.StateAt(at), out.StateAt(at)
		if i.Open(7) == i.Open(6) || o.Open(7) == o.Open(6) {
			return false
		}
		if i.Open(7) != o.Open(6) {
			return false
		}
		cyc := in.Cycle()
		return in.StateAt(at+cyc) == i && out.StateAt(at+cyc) == o
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextBoundary is always strictly in the future and at most
// one slot away, and lies on a slot edge.
func TestBoundaryProperty(t *testing.T) {
	slot := 13 * sim.Microsecond
	g := NewGCL(slot, []Mask{1, 2, 3, 4, 5})
	prop := func(raw uint32, baseRaw uint16) bool {
		g.SetBase(sim.Time(baseRaw))
		at := sim.Time(raw)
		nb := g.NextBoundary(at)
		if nb <= at || nb-at > slot {
			return false
		}
		return (nb-sim.Time(baseRaw))%slot == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
