package gate

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Schedule is the Gate Ctrl abstraction both GCL flavors implement:
// fixed-slot lists (CQF) and variable-duration lists (802.1Qbv TAS).
type Schedule interface {
	// StateAt returns the gate mask in effect at local time t.
	StateAt(t sim.Time) Mask
	// PeekState returns the same mask as StateAt but is side-effect
	// free: it never advances a bound rollover counter, so callers may
	// probe arbitrary instants (analytic gate-wait attribution does).
	PeekState(t sim.Time) Mask
	// NextBoundary returns the earliest state-change instant strictly
	// after t.
	NextBoundary(t sim.Time) sim.Time
	// TimeToBoundary returns NextBoundary(t) - t.
	TimeToBoundary(t sim.Time) sim.Time
	// Size returns the number of gate table entries the schedule
	// consumes (the gate_size resource parameter).
	Size() int
	// Cycle returns the schedule period.
	Cycle() sim.Time
}

// Interface checks.
var (
	_ Schedule = (*GCL)(nil)
	_ Schedule = (*VarGCL)(nil)
)

// VarEntry is one entry of a variable-duration gate control list: a
// gate mask held for a duration, as 802.1Qbv's
// SetGateStates/TimeInterval pairs.
type VarEntry struct {
	Mask     Mask
	Duration sim.Time
}

// VarGCL is an 802.1Qbv-style gate control list with per-entry
// durations. The list repeats with period Cycle().
type VarGCL struct {
	entries []VarEntry
	// starts[i] is the offset of entry i within the cycle.
	starts []sim.Time
	cycle  sim.Time
	base   sim.Time
	// roll, when bound, counts entry rollovers observed by StateAt;
	// lastEpoch is cycleCount*len(entries)+entryIndex at the last
	// evaluation.
	roll      metrics.Counter
	lastEpoch int64
}

// NewVarGCL builds a variable-duration GCL. Durations must be positive.
func NewVarGCL(entries []VarEntry) *VarGCL {
	if len(entries) == 0 {
		panic("gate: empty VarGCL")
	}
	g := &VarGCL{entries: append([]VarEntry(nil), entries...)}
	var at sim.Time
	for _, e := range entries {
		if e.Duration <= 0 {
			panic(fmt.Sprintf("gate: non-positive entry duration %v", e.Duration))
		}
		g.starts = append(g.starts, at)
		at += e.Duration
	}
	g.cycle = at
	return g
}

// SetBase aligns the cycle start to local time base.
func (g *VarGCL) SetBase(base sim.Time) { g.base = base }

// Size returns the entry count.
func (g *VarGCL) Size() int { return len(g.entries) }

// Cycle returns the schedule period.
func (g *VarGCL) Cycle() sim.Time { return g.cycle }

// phase maps local time t onto [0, cycle).
func (g *VarGCL) phase(t sim.Time) sim.Time {
	rel := (t - g.base) % g.cycle
	if rel < 0 {
		rel += g.cycle
	}
	return rel
}

// index returns the entry covering phase p via binary search.
func (g *VarGCL) index(p sim.Time) int {
	lo, hi := 0, len(g.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.starts[mid] <= p {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// SetRolloverCounter binds a counter that tallies gate-entry
// rollovers as the schedule is evaluated. Only forward progress
// counts.
func (g *VarGCL) SetRolloverCounter(c metrics.Counter) { g.roll = c }

// StateAt implements Schedule.
func (g *VarGCL) StateAt(t sim.Time) Mask {
	p := g.phase(t)
	i := g.index(p)
	if g.roll.Active() {
		cycles := (t - g.base) / g.cycle
		if t < g.base && (t-g.base)%g.cycle != 0 {
			cycles--
		}
		epoch := int64(cycles)*int64(len(g.entries)) + int64(i)
		if epoch > g.lastEpoch {
			g.roll.Add(uint64(epoch - g.lastEpoch))
		}
		g.lastEpoch = epoch
	}
	return g.entries[i].Mask
}

// PeekState implements Schedule: StateAt without rollover accounting.
func (g *VarGCL) PeekState(t sim.Time) Mask {
	return g.entries[g.index(g.phase(t))].Mask
}

// NextBoundary implements Schedule.
func (g *VarGCL) NextBoundary(t sim.Time) sim.Time {
	p := g.phase(t)
	i := g.index(p)
	end := g.starts[i] + g.entries[i].Duration
	return t + (end - p)
}

// TimeToBoundary implements Schedule.
func (g *VarGCL) TimeToBoundary(t sim.Time) sim.Time { return g.NextBoundary(t) - t }

// String renders the schedule compactly.
func (g *VarGCL) String() string {
	return fmt.Sprintf("VarGCL{entries=%d cycle=%v}", len(g.entries), g.cycle)
}

// EnqueueTarget generalizes CQF's queue redirection to any Schedule:
// given the classified queue q and the CQF pair (a, b), it returns the
// queue the frame should join, or -1 if its gate is closed. When q is
// not part of the pair the in-gate state decides admission directly.
func EnqueueTarget(in Schedule, t sim.Time, q, a, b int) int {
	state := in.StateAt(t)
	if q == a || q == b {
		if state.Open(a) {
			return a
		}
		if state.Open(b) {
			return b
		}
		return -1
	}
	if !state.Open(q) {
		return -1
	}
	return q
}
