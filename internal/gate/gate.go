// Package gate implements the Gate Ctrl function template: the ingress
// and egress Gate Control Lists (GCLs) attached to each queue of each
// port (802.1Qbv), plus the CQF (Cyclic Queuing and Forwarding,
// 802.1Qch) GCL synthesis the paper's evaluation uses.
//
// Time is divided into equal slots. Each GCL entry holds an open/close
// bit per queue; the entry in effect at local time t is
// entries[(t/slot) mod len(entries)]. With CQF the list has exactly two
// entries — which is why the paper's customized gate tables need only
// gate_size = 2.
package gate

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Mask is a per-queue open/close bitmap; bit q set means queue q's gate
// is open.
type Mask uint16

// Open reports whether queue q's gate is open in m.
func (m Mask) Open(q int) bool { return m&(1<<uint(q)) != 0 }

// With returns m with queue q's gate opened.
func (m Mask) With(q int) Mask { return m | 1<<uint(q) }

// AllOpen is the mask with every gate open (ungated queues).
const AllOpen Mask = 0xffff

// GCL is one gate control list: a cyclic schedule of gate masks over
// equally sized time slots.
type GCL struct {
	slot    sim.Time
	entries []Mask
	// base aligns slot 0; local gate time is measured from it.
	base sim.Time
	// roll, when bound, counts slot rollovers observed by StateAt;
	// lastSlot is the last slot index seen.
	roll     metrics.Counter
	lastSlot int64
}

// NewGCL builds a GCL with the given slot size and entries. The entry
// count is the gate table size of the set_gate_tbl customization API.
func NewGCL(slot sim.Time, entries []Mask) *GCL {
	if slot <= 0 {
		panic("gate: non-positive slot size")
	}
	if len(entries) == 0 {
		panic("gate: empty GCL")
	}
	return &GCL{slot: slot, entries: append([]Mask(nil), entries...)}
}

// AlwaysOpen returns a one-entry GCL that never gates any queue, used
// for ports or queues without time-aware shaping.
func AlwaysOpen(slot sim.Time) *GCL {
	return NewGCL(slot, []Mask{AllOpen})
}

// Size returns the number of entries (the gate table depth).
func (g *GCL) Size() int { return len(g.entries) }

// Slot returns the slot duration.
func (g *GCL) Slot() sim.Time { return g.slot }

// Cycle returns the full schedule period: slot × entries.
func (g *GCL) Cycle() sim.Time { return g.slot * sim.Time(len(g.entries)) }

// SetBase aligns slot boundaries to local time base.
func (g *GCL) SetBase(base sim.Time) { g.base = base }

// index returns the entry index in effect at local time t.
func (g *GCL) index(t sim.Time) int {
	rel := t - g.base
	if rel < 0 {
		// Align negative times onto the cycle.
		rel = rel%g.Cycle() + g.Cycle()
	}
	return int(rel/g.slot) % len(g.entries)
}

// SetRolloverCounter binds a counter that tallies slot rollovers as
// the schedule is evaluated. Only forward progress counts: a clock
// step backwards re-anchors without decrementing.
func (g *GCL) SetRolloverCounter(c metrics.Counter) { g.roll = c }

// observeRollover advances the rollover counter to slot s.
func (g *GCL) observeRollover(s int64) {
	if s > g.lastSlot {
		g.roll.Add(uint64(s - g.lastSlot))
	}
	g.lastSlot = s
}

// StateAt returns the gate mask in effect at local time t.
func (g *GCL) StateAt(t sim.Time) Mask {
	if g.roll.Active() {
		g.observeRollover(g.SlotIndex(t))
	}
	return g.entries[g.index(t)]
}

// PeekState is StateAt without the rollover observation: safe for
// probing arbitrary (including future) instants, e.g. latency
// attribution replaying a frame's gate wait, without perturbing the
// rollover counter.
func (g *GCL) PeekState(t sim.Time) Mask { return g.entries[g.index(t)] }

// SlotIndex returns the absolute slot number containing local time t.
func (g *GCL) SlotIndex(t sim.Time) int64 {
	rel := t - g.base
	if rel < 0 {
		return int64(rel/g.slot) - 1
	}
	return int64(rel / g.slot)
}

// NextBoundary returns the earliest slot boundary strictly after local
// time t.
func (g *GCL) NextBoundary(t sim.Time) sim.Time {
	rel := t - g.base
	n := rel / g.slot
	if rel < 0 && rel%g.slot != 0 {
		// Integer division truncates toward zero; floor it instead.
		n--
	}
	return g.base + (n+1)*g.slot
}

// TimeToBoundary returns how long after local time t the next slot
// boundary occurs; in (0, slot].
func (g *GCL) TimeToBoundary(t sim.Time) sim.Time { return g.NextBoundary(t) - t }

// String renders the schedule compactly.
func (g *GCL) String() string {
	return fmt.Sprintf("GCL{slot=%v entries=%d}", g.slot, len(g.entries))
}

// CQF builds the paper's static CQF configuration for one port: two TSN
// queues (queueA, queueB) enqueue and dequeue in a cyclic manner. In
// even slots queueA accepts arrivals while queueB drains; odd slots
// swap roles. Non-TS queues (all others) are always open in both
// directions.
//
// The returned in/out GCLs each have exactly 2 entries, matching the
// paper's gate table parameter gate_size = 2.
func CQF(slot sim.Time, queueA, queueB int) (in, out *GCL) {
	if queueA == queueB {
		panic("gate: CQF queues must differ")
	}
	others := AllOpen &^ (1<<uint(queueA) | 1<<uint(queueB))
	inEntries := []Mask{
		others.With(queueA), // slot 0: A enqueues
		others.With(queueB), // slot 1: B enqueues
	}
	outEntries := []Mask{
		others.With(queueB), // slot 0: B drains
		others.With(queueA), // slot 1: A drains
	}
	return NewGCL(slot, inEntries), NewGCL(slot, outEntries)
}

// EnqueueQueue returns which of the two CQF queues accepts arrivals at
// local time t under the in-GCL built by CQF.
func EnqueueQueue(in *GCL, t sim.Time, queueA, queueB int) int {
	if in.StateAt(t).Open(queueA) {
		return queueA
	}
	return queueB
}
