package gate

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func us(n int) sim.Time { return sim.Time(n) * sim.Microsecond }

func sampleVarGCL() *VarGCL {
	// 10 µs window for queue 7, 30 µs everything-but-7, 20 µs queue 6
	// only: cycle 60 µs.
	return NewVarGCL([]VarEntry{
		{Mask: Mask(0).With(7), Duration: us(10)},
		{Mask: AllOpen &^ (1 << 7), Duration: us(30)},
		{Mask: Mask(0).With(6), Duration: us(20)},
	})
}

func TestVarGCLStateAt(t *testing.T) {
	g := sampleVarGCL()
	cases := []struct {
		at   sim.Time
		open int
		shut int
	}{
		{0, 7, 6},
		{us(9), 7, 0},
		{us(10), 0, 7},
		{us(39), 0, 7},
		{us(40), 6, 7},
		{us(59), 6, 0},
		{us(60), 7, 6},  // wraps
		{us(125), 7, 6}, // phase 5 in the third cycle
	}
	for _, c := range cases {
		st := g.StateAt(c.at)
		if !st.Open(c.open) {
			t.Errorf("at %v queue %d closed", c.at, c.open)
		}
		if st.Open(c.shut) {
			t.Errorf("at %v queue %d open", c.at, c.shut)
		}
	}
}

func TestVarGCLBoundaries(t *testing.T) {
	g := sampleVarGCL()
	if g.Cycle() != us(60) {
		t.Fatalf("cycle = %v", g.Cycle())
	}
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	if nb := g.NextBoundary(0); nb != us(10) {
		t.Fatalf("NextBoundary(0) = %v", nb)
	}
	if nb := g.NextBoundary(us(10)); nb != us(40) {
		t.Fatalf("NextBoundary(10µs) = %v", nb)
	}
	if nb := g.NextBoundary(us(59)); nb != us(60) {
		t.Fatalf("NextBoundary(59µs) = %v", nb)
	}
	if d := g.TimeToBoundary(us(5)); d != us(5) {
		t.Fatalf("TimeToBoundary = %v", d)
	}
}

func TestVarGCLBase(t *testing.T) {
	g := sampleVarGCL()
	g.SetBase(us(7))
	if !g.StateAt(us(7)).Open(7) {
		t.Fatal("base not applied")
	}
	if !g.StateAt(us(6)).Open(6) {
		t.Fatal("pre-base wrap wrong") // 6µs before base = end of cycle
	}
}

func TestVarGCLPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty VarGCL did not panic")
			}
		}()
		NewVarGCL(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero duration did not panic")
			}
		}()
		NewVarGCL([]VarEntry{{Mask: 1, Duration: 0}})
	}()
}

// Property: NextBoundary is strictly future, lands on an entry edge,
// and StateAt is cycle-periodic.
func TestVarGCLProperty(t *testing.T) {
	g := sampleVarGCL()
	prop := func(raw uint32) bool {
		at := sim.Time(raw)
		nb := g.NextBoundary(at)
		if nb <= at || nb-at > g.Cycle() {
			return false
		}
		if g.StateAt(at) != g.StateAt(at+g.Cycle()) {
			return false
		}
		// Immediately after the boundary the mask differs from just
		// before it (entries with equal adjacent masks are legal in
		// general but not in this sample).
		return g.StateAt(nb) != g.StateAt(nb-1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueTargetCQF(t *testing.T) {
	slot := us(65)
	in, _ := CQF(slot, 7, 6)
	if got := EnqueueTarget(in, 0, 7, 7, 6); got != 7 {
		t.Fatalf("slot 0 target = %d", got)
	}
	if got := EnqueueTarget(in, slot, 7, 7, 6); got != 6 {
		t.Fatalf("slot 1 target = %d", got)
	}
	// Non-pair queue passes through when open.
	if got := EnqueueTarget(in, 0, 3, 7, 6); got != 3 {
		t.Fatalf("queue 3 target = %d", got)
	}
}

func TestEnqueueTargetClosed(t *testing.T) {
	// A schedule closing everything: pair members and others rejected.
	g := NewVarGCL([]VarEntry{{Mask: 0, Duration: us(10)}})
	if got := EnqueueTarget(g, 0, 7, 7, 6); got != -1 {
		t.Fatalf("closed pair target = %d", got)
	}
	if got := EnqueueTarget(g, 0, 3, 7, 6); got != -1 {
		t.Fatalf("closed queue 3 target = %d", got)
	}
}

func TestEnqueueTargetAlwaysOpen(t *testing.T) {
	g := NewVarGCL([]VarEntry{{Mask: AllOpen, Duration: us(10)}})
	// Both pair members open: prefer a.
	if got := EnqueueTarget(g, 0, 6, 7, 6); got != 7 {
		t.Fatalf("target = %d, want preference for a", got)
	}
}
