package tas

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// ringWorkload builds a ring with hosts and n TS flows of the given
// hop count.
func ringWorkload(t *testing.T, n, hops int, period sim.Time) (*topology.Topology, []*flows.Spec) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: n, Period: period, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+hops-1)%6
		},
		Seed: 5,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := topoBind(topo, specs); err != nil {
		t.Fatal(err)
	}
	return topo, specs
}

func topoBind(topo *topology.Topology, specs []*flows.Spec) error {
	for _, s := range specs {
		p, err := topo.HostPath(s.SrcHost, s.DstHost)
		if err != nil {
			return err
		}
		s.Path = p
	}
	return nil
}

func TestSynthesizeBasic(t *testing.T) {
	topo, specs := ringWorkload(t, 32, 3, 10*sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Cycle != 10*sim.Millisecond {
		t.Fatalf("cycle = %v", sch.Cycle)
	}
	if len(sch.Offsets) != 32 {
		t.Fatalf("offsets = %d", len(sch.Offsets))
	}
	if sch.MaxGateEntries <= 2 {
		t.Fatalf("MaxGateEntries = %d, expected more than CQF's 2", sch.MaxGateEntries)
	}
}

func TestWindowsDisjointWithGuard(t *testing.T) {
	topo, specs := ringWorkload(t, 64, 4, 10*sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pk, ws := range sch.Windows {
		for i := 1; i < len(ws); i++ {
			gap := ws[i].Start - ws[i-1].End
			if gap < sch.GuardBand {
				t.Fatalf("%v: windows %d/%d separated by %v < guard %v",
					pk, i-1, i, gap, sch.GuardBand)
			}
		}
	}
}

func TestHopProgression(t *testing.T) {
	// Each hop's window must start after the previous hop's window
	// ends (frame must have fully arrived).
	topo, specs := ringWorkload(t, 8, 3, sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		ports, err := egressPorts(s, topo)
		if err != nil {
			t.Fatal(err)
		}
		var prevEnd sim.Time = -1
		for _, pk := range ports {
			var mine *Window
			for i := range sch.Windows[pk] {
				if sch.Windows[pk][i].FlowID == s.ID {
					mine = &sch.Windows[pk][i]
					break
				}
			}
			if mine == nil {
				t.Fatalf("flow %d missing window on %v", s.ID, pk)
			}
			if mine.Start < prevEnd {
				t.Fatalf("flow %d window starts %v before previous hop ended %v",
					s.ID, mine.Start, prevEnd)
			}
			prevEnd = mine.End
		}
	}
}

func TestOffsetsWithinPeriod(t *testing.T) {
	topo, specs := ringWorkload(t, 32, 2, 2*sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sch.Apply(specs)
	for _, s := range specs {
		if s.Offset < 0 || s.Offset >= s.Period {
			t.Fatalf("flow %d offset %v outside period", s.ID, s.Offset)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMixedPeriodsHyperperiod(t *testing.T) {
	topo, specs := ringWorkload(t, 8, 2, 2*sim.Millisecond)
	for i, s := range specs {
		if i%2 == 0 {
			s.Period = 4 * sim.Millisecond
		}
	}
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Cycle != 4*sim.Millisecond {
		t.Fatalf("cycle = %v, want lcm 4ms", sch.Cycle)
	}
	// 2 ms flows appear twice per cycle on their first-hop port.
	counts := map[uint32]int{}
	for _, ws := range sch.Windows {
		for _, w := range ws {
			counts[w.FlowID]++
		}
	}
	for _, s := range specs {
		want := len(s.Path)
		if s.Period == 2*sim.Millisecond {
			want *= 2
		}
		if counts[s.ID] != want {
			t.Fatalf("flow %d (period %v): %d windows, want %d",
				s.ID, s.Period, counts[s.ID], want)
		}
	}
}

func TestGCLCompilation(t *testing.T) {
	topo, specs := ringWorkload(t, 16, 3, sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pk := range sch.Windows {
		in, out, err := sch.GCLs(pk, 7, 6)
		if err != nil {
			t.Fatal(err)
		}
		if in.Cycle() != sch.Cycle || out.Cycle() != sch.Cycle {
			t.Fatalf("GCL cycles %v/%v != %v", in.Cycle(), out.Cycle(), sch.Cycle)
		}
		// The in-list admits everything always.
		for _, at := range []sim.Time{0, sch.Cycle / 3, sch.Cycle - 1} {
			if in.StateAt(at) != 0xffff {
				t.Fatal("TAS in-gate not always open")
			}
		}
		// Inside each window only the TS queues are open; in the guard
		// band before it nothing is.
		for _, w := range sch.Windows[pk] {
			mid := (w.Start + w.End) / 2
			st := out.StateAt(mid)
			if !st.Open(7) || !st.Open(6) || st.Open(0) || st.Open(5) {
				t.Fatalf("%v: window mask wrong: %b", pk, st)
			}
			if w.Start >= sch.GuardBand {
				g := out.StateAt(w.Start - 1)
				if g != 0 {
					t.Fatalf("%v: guard band mask %b, want closed", pk, g)
				}
			}
		}
	}
}

func TestWorstCaseLatency(t *testing.T) {
	topo, specs := ringWorkload(t, 4, 3, sim.Millisecond)
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sch.WorstCaseLatency(specs[0], topo)
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops of (0.672µs tx + 2µs guard + 0.1µs cable) + injection
	// ≈ 9µs — far below CQF's 3×65µs.
	if wc <= 0 || wc > 20*sim.Microsecond {
		t.Fatalf("worst-case latency = %v", wc)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	topo := topology.Ring(3)
	topo.AttachHost(100, 0)
	topo.AttachHost(101, 1)
	noPath := &flows.Spec{ID: 1, Class: ethernet.ClassTS, WireSize: 64, Period: sim.Millisecond}
	if _, err := Synthesize([]*flows.Spec{noPath}, topo, Options{}); err == nil {
		t.Error("flow without path accepted")
	}
	// Saturated: more flows than one period can hold windows for.
	var many []*flows.Spec
	for i := 0; i < 64; i++ {
		many = append(many, &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 1500,
			Period: 100 * sim.Microsecond, SrcHost: 100, DstHost: 101,
			Path: []int{0, 1},
		})
	}
	if _, err := Synthesize(many, topo, Options{}); err == nil {
		t.Error("infeasible workload accepted")
	}
}

func TestNonTSIgnored(t *testing.T) {
	topo := topology.Ring(3)
	topo.AttachHost(100, 0)
	be := flows.Background(9, ethernet.ClassBE, 100, 100, 1, ethernet.Mbps)
	sch, err := Synthesize([]*flows.Spec{be}, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Offsets) != 0 {
		t.Fatal("BE flow scheduled")
	}
}

func TestSourceSerialization(t *testing.T) {
	// Many flows from one source: injections must never overlap on the
	// tester NIC.
	topo := topology.Ring(3)
	topo.AttachHost(100, 0)
	topo.AttachHost(101, 1)
	// Each 1500 B window plus its guard band reserves ~26 µs of the
	// port timeline, so 25 flows fill about two thirds of the 1 ms
	// period — packed but feasible.
	var specs []*flows.Spec
	for i := 0; i < 25; i++ {
		specs = append(specs, &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 1500,
			Period: sim.Millisecond, SrcHost: 100, DstHost: 101,
			Path: []int{0, 1},
		})
	}
	sch, err := Synthesize(specs, topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx := ethernet.TxTime(1500+ethernet.OverheadBytes, ethernet.Gbps)
	type iv struct{ s, e sim.Time }
	var ivs []iv
	for _, s := range specs {
		o := sch.Offsets[s.ID]
		ivs = append(ivs, iv{o, o + tx})
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].s < ivs[j].e && ivs[j].s < ivs[i].e {
				t.Fatalf("injections overlap: %v and %v", ivs[i], ivs[j])
			}
		}
	}
}
