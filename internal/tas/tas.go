// Package tas synthesizes 802.1Qbv Time-Aware Shaper gate control
// lists — the alternative to the static CQF configuration the paper
// evaluates. The paper's Gate Ctrl template supports arbitrary
// gate_size precisely so that synthesized schedules like these (cf. the
// paper's reference [20], Oliver et al., RTAS 2018) can be loaded; CQF
// is the degenerate 2-entry case.
//
// The synthesizer is a greedy first-fit over the schedule hyperperiod:
// each TS flow gets one exclusive transmission window per period on
// every egress port of its path, hop h+1's window opening when hop h's
// worst-case departure has arrived. Windows are padded with a guard
// band of one maximum frame so a non-TS frame that just seized the wire
// can drain before the window opens, and the injection times are
// reserved per source NIC so a tester never has to emit two frames at
// once.
//
// Compared to CQF the synthesized schedule removes the ±slot
// quantization — end-to-end latency drops from hops×65 µs to
// microseconds — at the price of gate tables that grow with the number
// of windows per port: exactly the resource trade the set_gate_tbl
// customization API exposes.
package tas

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// PortKey identifies one egress port.
type PortKey struct {
	Switch int
	Port   int
}

// Window is one reserved transmission interval within the cycle.
type Window struct {
	Start  sim.Time
	End    sim.Time
	FlowID uint32
}

// Options tunes synthesis.
type Options struct {
	// Guard is the slack added to each window beyond the frame's
	// transmission time (absorbs clock error and timestamping jitter).
	// Default 2 µs.
	Guard sim.Time
	// CableDelay is the propagation delay of every link (must match
	// the testbed). Default 100 ns.
	CableDelay sim.Time
	// LinkRate is the port line rate. Default 1 Gbps.
	LinkRate ethernet.Rate
	// MaxFrameBytes bounds the interfering frame a guard band must
	// absorb. Default 1522.
	MaxFrameBytes int
	// Quantum is the offset search step. Default 1 µs.
	Quantum sim.Time
}

func (o *Options) defaults() {
	if o.Guard == 0 {
		o.Guard = 2 * sim.Microsecond
	}
	if o.CableDelay == 0 {
		o.CableDelay = 100 * sim.Nanosecond
	}
	if o.LinkRate == 0 {
		o.LinkRate = ethernet.Gbps
	}
	if o.MaxFrameBytes == 0 {
		o.MaxFrameBytes = ethernet.MaxFrameBytes
	}
	if o.Quantum == 0 {
		o.Quantum = sim.Microsecond
	}
}

// Schedule is a synthesized TAS configuration.
type Schedule struct {
	// Cycle is the hyperperiod all port schedules repeat with.
	Cycle sim.Time
	// Offsets maps flow ID to its injection offset within its period.
	Offsets map[uint32]sim.Time
	// Windows lists each egress port's reserved windows, sorted by
	// start.
	Windows map[PortKey][]Window
	// MaxGateEntries is the largest gate control list any port needs
	// (the gate_size parameter the design must provision).
	MaxGateEntries int
	// GuardBand is the pre-window quiet interval baked into the GCLs.
	GuardBand sim.Time

	opts Options
}

// maxHyper caps the hyperperiod in quanta.
const maxHyper = int64(1) << 22

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Synthesize plans windows for every TS flow in specs over topo.
// Flows must have paths bound. Non-TS flows are ignored (they run
// un-gated under the TS windows' guard regime).
func Synthesize(specs []*flows.Spec, topo *topology.Topology, opts Options) (*Schedule, error) {
	opts.defaults()
	var ts []*flows.Spec
	var cycle sim.Time = 0
	for _, s := range specs {
		if s.Class != ethernet.ClassTS {
			continue
		}
		if len(s.Path) == 0 {
			return nil, fmt.Errorf("tas: flow %d has no path", s.ID)
		}
		if s.Period <= 0 {
			return nil, fmt.Errorf("tas: flow %d has no period", s.ID)
		}
		ts = append(ts, s)
		if cycle == 0 {
			cycle = s.Period
		} else {
			g := gcd(int64(cycle), int64(s.Period))
			l := int64(cycle) / g * int64(s.Period)
			if l > int64(sim.Second) {
				return nil, fmt.Errorf("tas: hyperperiod beyond 1s")
			}
			cycle = sim.Time(l)
		}
	}
	sch := &Schedule{
		Cycle:     cycle,
		Offsets:   make(map[uint32]sim.Time),
		Windows:   make(map[PortKey][]Window),
		GuardBand: ethernet.TxTime(opts.MaxFrameBytes+ethernet.OverheadBytes, opts.LinkRate),
		opts:      opts,
	}
	if len(ts) == 0 {
		return sch, nil
	}
	if int64(cycle/opts.Quantum) > maxHyper {
		return nil, fmt.Errorf("tas: cycle %v too fine for quantum %v", cycle, opts.Quantum)
	}

	// Longest-period (rarest) flows first would fragment the timeline
	// for the tight ones; schedule shortest-period flows first instead.
	order := append([]*flows.Spec(nil), ts...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Period != order[j].Period {
			return order[i].Period < order[j].Period
		}
		return order[i].ID < order[j].ID
	})

	// busy tracks reserved intervals per resource (egress ports and
	// source NICs), kept sorted.
	busy := make(map[string][]Window)
	reserve := func(key string, w Window) {
		list := busy[key]
		i := sort.Search(len(list), func(i int) bool { return list[i].Start > w.Start })
		list = append(list, Window{})
		copy(list[i+1:], list[i:])
		list[i] = w
		busy[key] = list
	}
	conflicts := func(key string, start, end sim.Time) bool {
		list := busy[key]
		// Reserved intervals are disjoint and sorted by Start: only the
		// neighbors around the insertion point can overlap.
		i := sort.Search(len(list), func(i int) bool { return list[i].Start >= end })
		if i < len(list) && list[i].Start < end {
			return true
		}
		if i > 0 && list[i-1].End > start {
			return true
		}
		return false
	}

	for _, s := range order {
		txT := ethernet.TxTime(s.WireSize+ethernet.OverheadBytes, opts.LinkRate)
		winLen := txT + opts.Guard
		ports, err := egressPorts(s, topo)
		if err != nil {
			return nil, err
		}
		reps := int64(cycle / s.Period)
		placed := false
	search:
		for o := sim.Time(0); o+winLen < s.Period; o += opts.Quantum {
			// Candidate windows for every hop and repetition.
			for r := int64(0); r < reps; r++ {
				base := o + sim.Time(r)*s.Period
				// Source NIC occupancy: the tester serializes one frame
				// starting at the injection instant.
				if conflicts(srcKey(s), base, base+txT) {
					continue search
				}
				at := base + txT + opts.CableDelay // arrival at first switch
				for _, pk := range ports {
					start, end := at, at+winLen
					// Reserve the guard band before the window too, so
					// adjacent windows keep their quiet zones.
					if conflicts(portKeyString(pk), start-sch.GuardBand, end) {
						continue search
					}
					at = end + opts.CableDelay // worst-case arrival at next hop
				}
			}
			// Feasible: commit all reservations.
			for r := int64(0); r < reps; r++ {
				base := o + sim.Time(r)*s.Period
				reserve(srcKey(s), Window{Start: base, End: base + txT, FlowID: s.ID})
				at := base + txT + opts.CableDelay
				for _, pk := range ports {
					w := Window{Start: at, End: at + winLen, FlowID: s.ID}
					reserve(portKeyString(pk), Window{Start: w.Start - sch.GuardBand, End: w.End, FlowID: s.ID})
					sch.Windows[pk] = append(sch.Windows[pk], w)
					at = w.End + opts.CableDelay
				}
			}
			sch.Offsets[s.ID] = o
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("tas: no feasible window placement for flow %d", s.ID)
		}
	}

	for pk := range sch.Windows {
		ws := sch.Windows[pk]
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		sch.Windows[pk] = ws
		// Count entries with distinct placeholder masks so equal-mask
		// merging reflects the real compilation.
		segs, err := buildSegments(ws, 1, 2, sch.Cycle, sch.GuardBand)
		if err != nil {
			return nil, err
		}
		if len(segs) > sch.MaxGateEntries {
			sch.MaxGateEntries = len(segs)
		}
	}
	return sch, nil
}

// egressPorts resolves the flow's egress port at every hop.
func egressPorts(s *flows.Spec, topo *topology.Topology) ([]PortKey, error) {
	out := make([]PortKey, len(s.Path))
	for h, sw := range s.Path {
		if h+1 < len(s.Path) {
			p, ok := topo.PortToward(sw, s.Path[h+1])
			if !ok {
				return nil, fmt.Errorf("tas: flow %d: no trunk %d->%d", s.ID, sw, s.Path[h+1])
			}
			out[h] = PortKey{Switch: sw, Port: p}
			continue
		}
		at, ok := topo.HostAttach(s.DstHost)
		if !ok || at.Switch != sw {
			return nil, fmt.Errorf("tas: flow %d destination host %d not on switch %d", s.ID, s.DstHost, sw)
		}
		out[h] = PortKey{Switch: sw, Port: at.Port}
	}
	return out, nil
}

func srcKey(s *flows.Spec) string { return fmt.Sprintf("src%d", s.SrcHost) }

func portKeyString(pk PortKey) string { return fmt.Sprintf("sw%d.p%d", pk.Switch, pk.Port) }

// Apply writes the planned offsets into the specs.
func (s *Schedule) Apply(specs []*flows.Spec) {
	for _, sp := range specs {
		if off, ok := s.Offsets[sp.ID]; ok {
			sp.Offset = off
		}
	}
}

// buildSegments compiles windows into mask/duration segments. tsMask
// and defMask select the open sets inside and outside TS windows.
func buildSegments(ws []Window, tsMask, defMask gate.Mask, cycle, guard sim.Time) ([]gate.VarEntry, error) {
	var out []gate.VarEntry
	emit := func(m gate.Mask, d sim.Time) {
		if d <= 0 {
			return
		}
		if len(out) > 0 && out[len(out)-1].Mask == m {
			out[len(out)-1].Duration += d
			return
		}
		out = append(out, gate.VarEntry{Mask: m, Duration: d})
	}
	at := sim.Time(0)
	for _, w := range ws {
		gStart := w.Start - guard
		if gStart < at {
			gStart = at
		}
		if w.Start < at || w.End > cycle {
			return nil, fmt.Errorf("tas: window [%v,%v) outside cycle or overlapping", w.Start, w.End)
		}
		emit(defMask, gStart-at)
		emit(0, w.Start-gStart)     // guard band: everything closed
		emit(tsMask, w.End-w.Start) // exclusive TS window
		at = w.End
	}
	emit(defMask, cycle-at)
	if len(out) == 0 {
		out = append(out, gate.VarEntry{Mask: defMask, Duration: cycle})
	}
	return out, nil
}

// GCLs compiles one port's windows into in/out gate schedules for a
// switch whose CQF pair is (tsA, tsB): the in-list admits everything
// (TAS gates on egress only); the out-list opens only the TS queues
// inside windows, closes everything during the pre-window guard band,
// and opens everything except the TS queues elsewhere.
func (s *Schedule) GCLs(pk PortKey, tsA, tsB int) (in, out gate.Schedule, err error) {
	tsMask := gate.Mask(0).With(tsA).With(tsB)
	defMask := gate.AllOpen &^ tsMask
	segs, err := buildSegments(s.Windows[pk], tsMask, defMask, s.Cycle, s.GuardBand)
	if err != nil {
		return nil, nil, err
	}
	inList := gate.NewVarGCL([]gate.VarEntry{{Mask: gate.AllOpen, Duration: s.Cycle}})
	return inList, gate.NewVarGCL(segs), nil
}

// WorstCaseLatency returns the synthesized bound for flow id: from
// injection to delivery at the destination host (last window end plus
// the final cable hop).
func (s *Schedule) WorstCaseLatency(spec *flows.Spec, topo *topology.Topology) (sim.Time, error) {
	ports, err := egressPorts(spec, topo)
	if err != nil {
		return 0, err
	}
	o, ok := s.Offsets[spec.ID]
	if !ok {
		return 0, fmt.Errorf("tas: flow %d not scheduled", spec.ID)
	}
	txT := ethernet.TxTime(spec.WireSize+ethernet.OverheadBytes, s.opts.LinkRate)
	at := o + txT + s.opts.CableDelay
	for range ports {
		at += txT + s.opts.Guard + s.opts.CableDelay
	}
	return at - o, nil
}
