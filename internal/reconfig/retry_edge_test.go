package reconfig

import (
	"math"
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Edge cases of the bounded retry policy: zero budgets, negative
// budgets, and backoffs large enough to overflow sim.Time arithmetic.

func TestZeroMaxRetriesRollsBackImmediately(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(0, 10*sim.Microsecond)
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmTransient(0, 1)
	txn.Commit()
	// No retry event may be pending: the rollback resolves within the
	// commit call itself, before any engine time passes.
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v, want rolled-back with zero retry budget", txn.State())
	}
	if got := txn.Attempts(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
	if got := h.reg.CounterValue(MetricRetries); got != 0 {
		t.Fatalf("retries counter = %d, want 0", got)
	}
	// The meter table is back at its old size.
	if err := h.sw.Filter().Meters.Configure(16, ethernet.Mbps, 1500); err == nil {
		t.Fatal("meter table grew despite immediate rollback")
	}
}

func TestNegativeMaxRetriesClampsToZero(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(-7, 10*sim.Microsecond)
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmTransient(0, 1)
	txn.Commit()
	if txn.State() != StateRolledBack || txn.Attempts() != 1 {
		t.Fatalf("state=%v attempts=%d, want immediate rollback", txn.State(), txn.Attempts())
	}
}

// TestBackoffOverflowClamped arms a backoff near the sim.Time maximum:
// naive now+backoff arithmetic would wrap negative and schedule the
// retry in the past. The clamp pins the retry at maxCommitAt instead,
// keeping time monotonic and leaving headroom for callers that compute
// CommitTime()+offset.
func TestBackoffOverflowClamped(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(2, sim.Time(math.MaxInt64-3))
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmTransient(0, 1)
	txn.Commit()
	if txn.State() != StatePrepared {
		t.Fatalf("state = %v, want prepared with a retry pending", txn.State())
	}
	if got := txn.CommitTime(); got != maxCommitAt {
		t.Fatalf("retry scheduled at %d, want clamp %d", got, maxCommitAt)
	}
	if txn.CommitTime() < h.engine.Now() {
		t.Fatal("retry scheduled in the past (overflow)")
	}
	// The clamped instant is still schedulable: running there resolves
	// the transaction, and CommitTime()+1 does not wrap.
	h.engine.RunUntil(txn.CommitTime() + 1)
	if txn.State() != StateCommitted {
		t.Fatalf("state = %v after clamped retry", txn.State())
	}
	if txn.CommitTime()+1 < 0 {
		t.Fatal("CommitTime()+1 overflowed")
	}
}

// TestHugeBackoffRepeatedRetriesStayMonotonic exhausts several retries
// under an overflowing backoff: every rescheduled attempt must land at
// the clamp, never earlier than the previous one.
func TestHugeBackoffRepeatedRetriesStayMonotonic(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(3, sim.Time(math.MaxInt64/2+1))
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmTransient(0, 4) // every attempt inside the budget fails
	txn.Commit()
	prev := sim.Time(0)
	for txn.State() == StatePrepared {
		at := txn.CommitTime()
		if at < prev {
			t.Fatalf("retry at %d before previous %d: time travel", at, prev)
		}
		if at < h.engine.Now() {
			t.Fatalf("retry at %d already in the past (now %d)", at, h.engine.Now())
		}
		prev = at
		h.engine.RunUntil(at + 1)
	}
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v, want rolled-back after exhausted budget", txn.State())
	}
	if got := txn.Attempts(); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
	if txn.Err() == nil || !strings.Contains(txn.Err().Error(), "injected failure") {
		t.Fatalf("err = %v", txn.Err())
	}
}
