package reconfig

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{ShedBE: 0.9, ShedRC: 0.8, Recover: 0.5}, // RC below BE
		{ShedBE: 0.5, ShedRC: 0.9, Recover: 0.6}, // recover above BE
		{ShedBE: 0.5, ShedRC: 1.5, Recover: 0.2}, // above 1
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %d accepted: %+v", i, p)
		}
	}
}

func TestWatchdogCleanRun(t *testing.T) {
	h := newHarness(t)
	reg := metrics.New()
	w := NewWatchdog(h.engine, reg, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.RunUntil(10 * sim.Millisecond)
	if w.Audits() < 9 {
		t.Fatalf("audits = %d", w.Audits())
	}
	if w.TotalViolations() != 0 {
		t.Fatalf("violations on clean switch: %v (%s)", w.Violations(), w.LastDetail())
	}
	if got := reg.CounterValue(MetricAudits); got != w.Audits() {
		t.Fatalf("audit counter = %d, want %d", got, w.Audits())
	}
}

func TestWatchdogDetectsBufferLeak(t *testing.T) {
	h := newHarness(t)
	reg := metrics.New()
	w := NewWatchdog(h.engine, reg, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.At(5*sim.Millisecond, "leak", func(*sim.Engine) {
		h.sw.Port(0).Pool().Leak(2)
	})
	h.engine.RunUntil(10 * sim.Millisecond)
	if got := w.Violations()["buffer-conservation"]; got == 0 {
		t.Fatalf("leak not detected: %v", w.Violations())
	}
	if !strings.Contains(w.LastDetail(), "port 0") {
		t.Fatalf("detail = %q", w.LastDetail())
	}
	if reg.CounterValue(MetricViolations, metrics.L("invariant", "buffer-conservation")) == 0 {
		t.Fatal("violation not counted in registry")
	}
}

func TestWatchdogDetectsFREROverflow(t *testing.T) {
	h := newHarness(t)
	tbl := frer.NewTable(2, 16)
	w := NewWatchdog(h.engine, nil, sim.Millisecond)
	w.WatchFRER(tbl)
	w.Start()
	h.engine.RunUntil(3 * sim.Millisecond)
	if w.TotalViolations() != 0 {
		t.Fatalf("violations on healthy table: %v", w.Violations())
	}
}

func TestWatchdogStop(t *testing.T) {
	h := newHarness(t)
	w := NewWatchdog(h.engine, nil, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.At(3500*sim.Microsecond, "stop", func(*sim.Engine) { w.Stop() })
	h.engine.RunUntil(20 * sim.Millisecond)
	if got := w.Audits(); got != 3 {
		t.Fatalf("audits after stop = %d, want 3", got)
	}
}

func TestDegradationLadder(t *testing.T) {
	cfg := baseCfg()
	cfg.BufferNum = 10
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	w := NewWatchdog(engine, metrics.New(), sim.Millisecond)
	w.Watch(sw)
	w.Start()

	pool := sw.Port(0).Pool()
	slots := make([]int, 0, 10)
	alloc := func(n int) {
		for i := 0; i < n; i++ {
			s, ok := pool.Alloc(64)
			if !ok {
				t.Fatal("alloc failed")
			}
			slots = append(slots, s)
		}
	}
	free := func(n int) {
		for i := 0; i < n; i++ {
			pool.Free(slots[len(slots)-1])
			slots = slots[:len(slots)-1]
		}
	}

	// 8/10 = 0.8 ≥ ShedBE(0.75): shed BE.
	engine.At(500*sim.Microsecond, "fill-be", func(*sim.Engine) { alloc(8) })
	engine.RunUntil(2 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedBE {
		t.Fatalf("level at 0.8 = %v", got)
	}
	// 9/10 = 0.9 ≥ ShedRC(0.90): escalate.
	engine.At(2500*sim.Microsecond, "fill-rc", func(*sim.Engine) { alloc(1) })
	engine.RunUntil(4 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level at 0.9 = %v", got)
	}
	// 6/10 = 0.6: between Recover and ShedBE — hold (hysteresis).
	engine.At(4500*sim.Microsecond, "partial-drain", func(*sim.Engine) { free(3) })
	engine.RunUntil(6 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level at 0.6 = %v, want held shed-rc", got)
	}
	// 4/10 = 0.4 ≤ Recover(0.50): back off.
	engine.At(6500*sim.Microsecond, "drain", func(*sim.Engine) { free(2) })
	engine.RunUntil(8 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeOff {
		t.Fatalf("level at 0.4 = %v, want off", got)
	}
}

func TestDegradationHoldsBelowShedRC(t *testing.T) {
	// Pressure between ShedBE and ShedRC while already at ShedRC must
	// not de-escalate to ShedBE: the ladder only steps down at Recover.
	cfg := baseCfg()
	cfg.BufferNum = 100
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	w := NewWatchdog(engine, nil, sim.Millisecond)
	w.Watch(sw)
	w.Start()
	pool := sw.Port(0).Pool()
	slots := []int{}
	engine.At(500*sim.Microsecond, "fill", func(*sim.Engine) {
		for i := 0; i < 95; i++ {
			s, _ := pool.Alloc(64)
			slots = append(slots, s)
		}
	})
	engine.At(2500*sim.Microsecond, "drain-to-80", func(*sim.Engine) {
		for i := 0; i < 15; i++ {
			pool.Free(slots[len(slots)-1])
			slots = slots[:len(slots)-1]
		}
	})
	engine.RunUntil(4 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level = %v, want shed-rc held at 0.8", got)
	}
}
