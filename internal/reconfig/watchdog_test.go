package reconfig

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{ShedBE: 0.9, ShedRC: 0.8, Recover: 0.5}, // RC below BE
		{ShedBE: 0.5, ShedRC: 0.9, Recover: 0.6}, // recover above BE
		{ShedBE: 0.5, ShedRC: 1.5, Recover: 0.2}, // above 1
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %d accepted: %+v", i, p)
		}
	}
}

func TestWatchdogCleanRun(t *testing.T) {
	h := newHarness(t)
	reg := metrics.New()
	w := NewWatchdog(h.engine, reg, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.RunUntil(10 * sim.Millisecond)
	if w.Audits() < 9 {
		t.Fatalf("audits = %d", w.Audits())
	}
	if w.TotalViolations() != 0 {
		t.Fatalf("violations on clean switch: %v (%s)", w.Violations(), w.LastDetail())
	}
	if got := reg.CounterValue(MetricAudits); got != w.Audits() {
		t.Fatalf("audit counter = %d, want %d", got, w.Audits())
	}
}

func TestWatchdogDetectsBufferLeak(t *testing.T) {
	h := newHarness(t)
	reg := metrics.New()
	w := NewWatchdog(h.engine, reg, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.At(5*sim.Millisecond, "leak", func(*sim.Engine) {
		h.sw.Port(0).Pool().Leak(2)
	})
	h.engine.RunUntil(10 * sim.Millisecond)
	if got := w.Violations()["buffer-conservation"]; got == 0 {
		t.Fatalf("leak not detected: %v", w.Violations())
	}
	if !strings.Contains(w.LastDetail(), "port 0") {
		t.Fatalf("detail = %q", w.LastDetail())
	}
	if reg.CounterValue(MetricViolations, metrics.L("invariant", "buffer-conservation")) == 0 {
		t.Fatal("violation not counted in registry")
	}
}

func TestWatchdogDetectsFREROverflow(t *testing.T) {
	h := newHarness(t)
	tbl := frer.NewTable(2, 16)
	w := NewWatchdog(h.engine, nil, sim.Millisecond)
	w.WatchFRER(tbl)
	w.Start()
	h.engine.RunUntil(3 * sim.Millisecond)
	if w.TotalViolations() != 0 {
		t.Fatalf("violations on healthy table: %v", w.Violations())
	}
}

func TestWatchdogStop(t *testing.T) {
	h := newHarness(t)
	w := NewWatchdog(h.engine, nil, sim.Millisecond)
	w.Watch(h.sw)
	w.Start()
	h.engine.At(3500*sim.Microsecond, "stop", func(*sim.Engine) { w.Stop() })
	h.engine.RunUntil(20 * sim.Millisecond)
	if got := w.Audits(); got != 3 {
		t.Fatalf("audits after stop = %d, want 3", got)
	}
}

func TestDegradationLadder(t *testing.T) {
	cfg := baseCfg()
	cfg.BufferNum = 10
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	w := NewWatchdog(engine, metrics.New(), sim.Millisecond)
	w.Watch(sw)
	w.Start()

	pool := sw.Port(0).Pool()
	slots := make([]int, 0, 10)
	alloc := func(n int) {
		for i := 0; i < n; i++ {
			s, ok := pool.Alloc(64)
			if !ok {
				t.Fatal("alloc failed")
			}
			slots = append(slots, s)
		}
	}
	free := func(n int) {
		for i := 0; i < n; i++ {
			pool.Free(slots[len(slots)-1])
			slots = slots[:len(slots)-1]
		}
	}

	// 8/10 = 0.8 ≥ ShedBE(0.75): shed BE.
	engine.At(500*sim.Microsecond, "fill-be", func(*sim.Engine) { alloc(8) })
	engine.RunUntil(2 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedBE {
		t.Fatalf("level at 0.8 = %v", got)
	}
	// 9/10 = 0.9 ≥ ShedRC(0.90): escalate.
	engine.At(2500*sim.Microsecond, "fill-rc", func(*sim.Engine) { alloc(1) })
	engine.RunUntil(4 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level at 0.9 = %v", got)
	}
	// 6/10 = 0.6: between Recover and ShedBE — hold (hysteresis).
	engine.At(4500*sim.Microsecond, "partial-drain", func(*sim.Engine) { free(3) })
	engine.RunUntil(6 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level at 0.6 = %v, want held shed-rc", got)
	}
	// 4/10 = 0.4 ≤ Recover(0.50): back off.
	engine.At(6500*sim.Microsecond, "drain", func(*sim.Engine) { free(2) })
	engine.RunUntil(8 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeOff {
		t.Fatalf("level at 0.4 = %v, want off", got)
	}
}

func TestDegradationHoldsBelowShedRC(t *testing.T) {
	// Pressure between ShedBE and ShedRC while already at ShedRC must
	// not de-escalate to ShedBE: the ladder only steps down at Recover.
	cfg := baseCfg()
	cfg.BufferNum = 100
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	w := NewWatchdog(engine, nil, sim.Millisecond)
	w.Watch(sw)
	w.Start()
	pool := sw.Port(0).Pool()
	slots := []int{}
	engine.At(500*sim.Microsecond, "fill", func(*sim.Engine) {
		for i := 0; i < 95; i++ {
			s, _ := pool.Alloc(64)
			slots = append(slots, s)
		}
	})
	engine.At(2500*sim.Microsecond, "drain-to-80", func(*sim.Engine) {
		for i := 0; i < 15; i++ {
			pool.Free(slots[len(slots)-1])
			slots = slots[:len(slots)-1]
		}
	})
	engine.RunUntil(4 * sim.Millisecond)
	if got := sw.DegradeLevel(); got != tsnswitch.DegradeShedRC {
		t.Fatalf("level = %v, want shed-rc held at 0.8", got)
	}
}

// ladderRig is the shared scaffolding for the recovery tests: a
// 10-buffer switch under a watchdog auditing every millisecond, with
// alloc/free helpers to move pool pressure.
type ladderRig struct {
	engine *sim.Engine
	sw     *tsnswitch.Switch
	w      *Watchdog
	slots  []int
	t      *testing.T
}

func newLadderRig(t *testing.T) *ladderRig {
	cfg := baseCfg()
	cfg.BufferNum = 10
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	w := NewWatchdog(engine, metrics.New(), sim.Millisecond)
	w.Watch(sw)
	w.Start()
	return &ladderRig{engine: engine, sw: sw, w: w, t: t}
}

func (r *ladderRig) alloc(n int) {
	pool := r.sw.Port(0).Pool()
	for i := 0; i < n; i++ {
		s, ok := pool.Alloc(64)
		if !ok {
			r.t.Fatal("alloc failed")
		}
		r.slots = append(r.slots, s)
	}
}

func (r *ladderRig) free(n int) {
	pool := r.sw.Port(0).Pool()
	for i := 0; i < n; i++ {
		pool.Free(r.slots[len(r.slots)-1])
		r.slots = r.slots[:len(r.slots)-1]
	}
}

// TestDegradationRecoversInReverseOrder drives the full episode —
// shed BE, escalate to shed RC, drain, recover — and asserts the
// recovery restores classes in reverse order of shedding: RC service
// returns first (ShedRC → ShedBE), BE last (ShedBE → Off), one rung
// per audit, with the intermediate ShedBE level observable for a full
// interval.
func TestDegradationRecoversInReverseOrder(t *testing.T) {
	r := newLadderRig(t)
	r.engine.At(500*sim.Microsecond, "fill-be", func(*sim.Engine) { r.alloc(8) })  // 0.8 → ShedBE
	r.engine.At(2500*sim.Microsecond, "fill-rc", func(*sim.Engine) { r.alloc(1) }) // 0.9 → ShedRC
	r.engine.At(3500*sim.Microsecond, "drain", func(*sim.Engine) { r.free(5) })    // 0.4 ≤ Recover

	// One audit after the drain: exactly one rung down. RC restored, BE
	// still shed.
	r.engine.RunUntil(4500 * sim.Microsecond)
	if got := r.sw.DegradeLevel(); got != tsnswitch.DegradeShedBE {
		t.Fatalf("level one audit after drain = %v, want shed-be (RC restored first)", got)
	}
	// Next audit: the last rung clears.
	r.engine.RunUntil(5500 * sim.Microsecond)
	if got := r.sw.DegradeLevel(); got != tsnswitch.DegradeOff {
		t.Fatalf("level two audits after drain = %v, want off", got)
	}

	want := []struct{ from, to tsnswitch.DegradeLevel }{
		{tsnswitch.DegradeOff, tsnswitch.DegradeShedBE},
		{tsnswitch.DegradeShedBE, tsnswitch.DegradeShedRC},
		{tsnswitch.DegradeShedRC, tsnswitch.DegradeShedBE},
		{tsnswitch.DegradeShedBE, tsnswitch.DegradeOff},
	}
	trans := r.w.Transitions()
	if len(trans) != len(want) {
		t.Fatalf("transitions = %+v, want %d entries", trans, len(want))
	}
	for i, tr := range trans {
		if tr.From != want[i].from || tr.To != want[i].to {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, tr.From, tr.To, want[i].from, want[i].to)
		}
		if tr.Switch != r.sw.ID() {
			t.Fatalf("transition %d switch = %d", i, tr.Switch)
		}
		if i > 0 && tr.At <= trans[i-1].At {
			t.Fatalf("transition times not increasing: %v then %v", trans[i-1].At, tr.At)
		}
		// The ladder contract the chaos oracle checks: every downward
		// move steps exactly one rung.
		if tr.To < tr.From && tr.From-tr.To != 1 {
			t.Fatalf("transition %d skips rungs: %v→%v", i, tr.From, tr.To)
		}
	}
}

// TestDegradationLadderRearms: after a full recovery, a second pressure
// episode must re-engage shedding — the ladder re-arms rather than
// latching off after its first violation clears.
func TestDegradationLadderRearms(t *testing.T) {
	r := newLadderRig(t)
	// Episode one: straight to ShedRC, then drain out.
	r.engine.At(500*sim.Microsecond, "fill", func(*sim.Engine) { r.alloc(9) })
	r.engine.At(1500*sim.Microsecond, "drain", func(*sim.Engine) { r.free(9) })
	r.engine.RunUntil(4 * sim.Millisecond)
	if got := r.sw.DegradeLevel(); got != tsnswitch.DegradeOff {
		t.Fatalf("level after episode one = %v, want off", got)
	}
	first := len(r.w.Transitions())
	if first == 0 {
		t.Fatal("episode one drove no transitions")
	}
	// Episode two: pressure returns; the ladder must engage again.
	r.engine.At(4500*sim.Microsecond, "refill", func(*sim.Engine) { r.alloc(8) })
	r.engine.RunUntil(6 * sim.Millisecond)
	if got := r.sw.DegradeLevel(); got != tsnswitch.DegradeShedBE {
		t.Fatalf("level in episode two = %v, want shed-be (ladder re-armed)", got)
	}
	r.engine.At(6500*sim.Microsecond, "drain2", func(*sim.Engine) { r.free(8) })
	r.engine.RunUntil(8 * sim.Millisecond)
	if got := r.sw.DegradeLevel(); got != tsnswitch.DegradeOff {
		t.Fatalf("level after episode two = %v, want off again", got)
	}
	trans := r.w.Transitions()
	if len(trans) <= first {
		t.Fatalf("episode two added no transitions (still %d)", first)
	}
	last := trans[len(trans)-1]
	if last.To != tsnswitch.DegradeOff {
		t.Fatalf("final transition = %v→%v, want →off", last.From, last.To)
	}
}
