package reconfig

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

func baseCfg() core.Config {
	return core.Config{
		UnicastSize: 64, MulticastSize: 8,
		ClassSize: 64, MeterSize: 16,
		GateSize: 2, QueueNum: 8, PortNum: 2,
		CBSMapSize: 3, CBSSize: 3,
		QueueDepth: 8, BufferNum: 96,
		SlotSize: 65 * sim.Microsecond, LinkRate: ethernet.Gbps,
	}
}

func switchCfg(cfg core.Config) tsnswitch.Config {
	return tsnswitch.Config{
		ID: 0, Ports: cfg.PortNum, QueuesPerPort: cfg.QueueNum,
		QueueDepth: cfg.QueueDepth, BuffersPerPort: cfg.BufferNum,
		UnicastSize: cfg.UnicastSize, MulticastSize: cfg.MulticastSize,
		ClassSize: cfg.ClassSize, MeterSize: cfg.MeterSize,
		GateSize: cfg.GateSize, CBSMapSize: cfg.CBSMapSize, CBSSize: cfg.CBSSize,
		SlotSize: cfg.SlotSize, LinkRate: cfg.LinkRate,
		TSQueueA: cfg.QueueNum - 1, TSQueueB: cfg.QueueNum - 2,
	}
}

// harness is one live switch plus a controller over it.
type harness struct {
	engine *sim.Engine
	sw     *tsnswitch.Switch
	ctrl   *Controller
	reg    *metrics.Registry
	cfg    core.Config
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	cfg := baseCfg()
	engine := sim.NewEngine()
	sw := tsnswitch.New(engine, switchCfg(cfg))
	reg := metrics.New()
	return &harness{
		engine: engine,
		sw:     sw,
		ctrl:   NewController(engine, reg),
		reg:    reg,
		cfg:    cfg,
	}
}

func (h *harness) bindings() Bindings {
	return Bindings{Switches: []*tsnswitch.Switch{h.sw}}
}

func TestBeginRejectsImmutableFields(t *testing.T) {
	h := newHarness(t)
	for _, tc := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"queue_num", func(c *core.Config) { c.QueueNum = 4 }},
		{"port_num", func(c *core.Config) { c.PortNum = 4 }},
		{"link_rate", func(c *core.Config) { c.LinkRate = ethernet.Mbps }},
	} {
		cand := h.cfg
		tc.mutate(&cand)
		_, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
		if err == nil || !strings.Contains(err.Error(), "requires regeneration") {
			t.Fatalf("%s: err = %v", tc.name, err)
		}
	}
	if got := h.reg.CounterValue(MetricTxns, metrics.L("outcome", "rejected")); got != 3 {
		t.Fatalf("rejected counter = %d, want 3", got)
	}
}

func TestBeginRejectsShrinkBelowOccupancy(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 4; i++ {
		if err := h.sw.Forward().Unicast.Add(ethernet.HostMAC(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	cand := h.cfg
	cand.UnicastSize = 2
	_, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err == nil || !strings.Contains(err.Error(), "unicast table holds 4 entries") {
		t.Fatalf("err = %v", err)
	}
	// Shrinking to exactly the occupancy is allowed.
	cand.UnicastSize = 4
	if _, err := h.ctrl.Begin(h.cfg, cand, h.bindings()); err != nil {
		t.Fatalf("shrink-to-fit rejected: %v", err)
	}
}

func TestBeginCollectsAllProblems(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.QueueNum = 4   // immutable
	cand.MeterSize = -1 // structurally invalid
	cand.QueueDepth = 0 // structurally invalid
	_, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err == nil {
		t.Fatal("want rejection")
	}
	for _, want := range []string{"queue_num", "set_meter_tbl", "set_queues"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestPrepareOpsDeterministicOrder(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.UnicastSize = 128
	cand.ClassSize = 128
	cand.MeterSize = 32
	cand.GateSize = 4
	cand.CBSMapSize = 4
	cand.CBSSize = 4
	cand.QueueDepth = 16
	cand.BufferNum = 128
	cand.SlotSize = 130 * sim.Microsecond
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sw0:set_switch_tbl", "sw0:set_class_tbl", "sw0:set_meter_tbl",
		"sw0:set_gate_tbl", "sw0:set_cbs_tbl", "sw0:set_queues",
		"sw0:set_buffers", "sw0:rebase_slot",
	}
	got := txn.Ops()
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCommitApplies(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.MeterSize = 32
	cand.QueueDepth = 16
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if txn.State() != StateCommitted || txn.Err() != nil {
		t.Fatalf("state=%v err=%v", txn.State(), txn.Err())
	}
	// The grown meter table admits id 31.
	if err := h.sw.Filter().Meters.Configure(31, ethernet.Mbps, 1500); err != nil {
		t.Fatalf("meter 31 after grow: %v", err)
	}
	if got := h.reg.CounterValue(MetricTxns, metrics.L("outcome", "committed")); got != 1 {
		t.Fatalf("committed counter = %d", got)
	}
	if got := h.reg.CounterValue(MetricOps, metrics.L("result", "applied")); got != 2 {
		t.Fatalf("applied counter = %d", got)
	}
}

func TestInjectedFailureRollsBack(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.UnicastSize = 128 // op 0
	cand.MeterSize = 32    // op 1
	cand.QueueDepth = 16   // op 2
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmFailure(2)
	txn.Commit()
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v", txn.State())
	}
	if txn.Err() == nil || !strings.Contains(txn.Err().Error(), "injected failure") {
		t.Fatalf("err = %v", txn.Err())
	}
	// Ops 0 and 1 were applied then reverted: the unicast table must be
	// back at 64 and the meter table back at 16.
	for i := 0; i < 64; i++ {
		if err := h.sw.Forward().Unicast.Add(ethernet.HostMAC(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.sw.Forward().Unicast.Add(ethernet.HostMAC(999), 1, 0); err == nil {
		t.Fatal("unicast table not restored to 64")
	}
	if err := h.sw.Filter().Meters.Configure(16, ethernet.Mbps, 1500); err == nil {
		t.Fatal("meter table not restored to 16")
	}
	if got := h.reg.CounterValue(MetricTxns, metrics.L("outcome", "rolled-back")); got != 1 {
		t.Fatalf("rolled-back counter = %d", got)
	}
	if got := h.reg.CounterValue(MetricOps, metrics.L("result", "reverted")); got != 2 {
		t.Fatalf("reverted counter = %d", got)
	}
	// The arm is one-shot: a fresh identical transaction commits.
	txn2, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
	if txn2.State() != StateCommitted {
		t.Fatalf("second attempt = %v", txn2.State())
	}
}

func TestArmFailureClampsToStagedRange(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.MeterSize = 32 // single op
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmFailure(99)
	txn.Commit()
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v (clamped failure must still fire)", txn.State())
	}
}

func TestCommitAtBoundaryAlignment(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.QueueDepth = 16
	var at sim.Time
	// Begin mid-cycle so the boundary is in the future.
	h.engine.At(100*sim.Microsecond, "begin", func(*sim.Engine) {
		txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
		if err != nil {
			t.Error(err)
			return
		}
		at = txn.CommitAtBoundary()
	})
	h.engine.RunUntil(sim.Second)
	cycle := 2 * h.cfg.SlotSize
	if at%cycle != 0 || at <= 100*sim.Microsecond {
		t.Fatalf("commit at %v, not a future cycle boundary (cycle %v)", at, cycle)
	}
}

func TestSlotRebaseRoundTrip(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.SlotSize = 130 * sim.Microsecond
	cand.UnicastSize = 128
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if txn.State() != StateCommitted {
		t.Fatalf("state = %v (%v)", txn.State(), txn.Err())
	}
	if got := h.sw.Config().SlotSize; got != cand.SlotSize {
		t.Fatalf("slot = %v", got)
	}
	back, err := h.ctrl.Begin(cand, h.cfg, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	back.Commit()
	if back.State() != StateCommitted {
		t.Fatalf("state = %v (%v)", back.State(), back.Err())
	}
	if got := h.sw.Config().SlotSize; got != h.cfg.SlotSize {
		t.Fatalf("slot not restored: %v", got)
	}
}

func TestSlotRebaseRollsBackToSavedSchedules(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.SlotSize = 130 * sim.Microsecond
	cand.QueueDepth = 16
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	// Ops: [set_queues, rebase_slot]. The out-of-range index clamps to
	// the last op, so set_queues applies, the injected failure fires in
	// place of rebase_slot, and set_queues reverts.
	h.ctrl.ArmFailure(99)
	txn.Commit()
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v", txn.State())
	}
	if got := h.sw.Config().SlotSize; got != h.cfg.SlotSize {
		t.Fatalf("slot changed on rolled-back txn: %v", got)
	}
	if !h.sw.CQFSchedules() {
		t.Fatal("schedules corrupted by rollback")
	}
}

func TestFRERResizeOps(t *testing.T) {
	h := newHarness(t)
	tbl := frer.NewTable(2, 16)
	if err := tbl.Register(7); err != nil {
		t.Fatal(err)
	}
	old := h.cfg
	old.FRERSize, old.FRERHistory = 2, 16
	cand := old
	cand.FRERSize, cand.FRERHistory = 8, 32
	b := h.bindings()
	b.FRER = []*frer.Table{tbl}
	txn, err := h.ctrl.Begin(old, cand, b)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range txn.Ops() {
		if name == "frer0:set_frer_tbl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no FRER op in %v", txn.Ops())
	}
	txn.Commit()
	if txn.State() != StateCommitted {
		t.Fatalf("state = %v (%v)", txn.State(), txn.Err())
	}
	if tbl.Capacity() != 8 || tbl.History() != 32 {
		t.Fatalf("capacity=%d history=%d", tbl.Capacity(), tbl.History())
	}
	// Shrinking below the registered stream count is rejected.
	bad := cand
	bad.FRERSize = 0
	if _, err := h.ctrl.Begin(cand, bad, b); err == nil {
		t.Fatal("FRER shrink below occupancy accepted")
	}
}

func TestCommitOfResolvedTxnPanics(t *testing.T) {
	h := newHarness(t)
	cand := h.cfg
	cand.QueueDepth = 16
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("double commit did not panic")
		}
	}()
	txn.Commit()
}

func TestTransientFailureRetriesThenCommits(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(3, 10*sim.Microsecond)
	cand := h.cfg
	cand.UnicastSize = 128 // op 0
	cand.MeterSize = 32    // op 1
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	// The next two commit attempts fail before op 1; the third clears.
	h.ctrl.ArmTransient(1, 2)
	txn.Commit()
	if txn.State() != StatePrepared {
		t.Fatalf("state after first failure = %v, want prepared (retry pending)", txn.State())
	}
	h.engine.RunUntil(sim.Millisecond)
	if txn.State() != StateCommitted || txn.Err() != nil {
		t.Fatalf("state=%v err=%v, want committed after retries", txn.State(), txn.Err())
	}
	if got := txn.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := txn.CommitTime(); got != 20*sim.Microsecond {
		t.Fatalf("commit time = %v, want 20µs (two 10µs backoffs)", got)
	}
	if got := h.reg.CounterValue(MetricRetries); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	if got := h.reg.CounterValue(MetricTxns, metrics.L("outcome", "committed")); got != 1 {
		t.Fatalf("committed counter = %d", got)
	}
	// Failed attempts rolled their applied prefix back before retrying,
	// so the final state is exactly one clean application.
	if err := h.sw.Filter().Meters.Configure(31, ethernet.Mbps, 1500); err != nil {
		t.Fatalf("meter 31 after committed grow: %v", err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(1, 10*sim.Microsecond)
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	// Both the first attempt and its single retry fail.
	h.ctrl.ArmTransient(0, 5)
	txn.Commit()
	h.engine.RunUntil(sim.Millisecond)
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v, want rolled-back after budget", txn.State())
	}
	if txn.Err() == nil || !strings.Contains(txn.Err().Error(), "injected failure") {
		t.Fatalf("err = %v", txn.Err())
	}
	if got := txn.Attempts(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (original + one retry)", got)
	}
	if got := h.reg.CounterValue(MetricRetries); got != 1 {
		t.Fatalf("retries counter = %d, want 1", got)
	}
	// The meter table is back at its old size.
	if err := h.sw.Filter().Meters.Configure(16, ethernet.Mbps, 1500); err == nil {
		t.Fatal("meter table not restored after exhausted retries")
	}
}

func TestRetryDefaultBackoffIsTwoCycles(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(1, 0) // zero backoff: default to 2× old slot
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmTransient(0, 1)
	txn.Commit()
	h.engine.RunUntil(sim.Millisecond)
	if txn.State() != StateCommitted {
		t.Fatalf("state = %v", txn.State())
	}
	if want := 2 * h.cfg.SlotSize; txn.CommitTime() != want {
		t.Fatalf("commit time = %v, want %v (2 slot cycles)", txn.CommitTime(), want)
	}
}

func TestWedgeSkipsRollbackAndRetry(t *testing.T) {
	h := newHarness(t)
	// Even with a generous retry budget, a wedged failure must not
	// retry: the bug it models dies mid-commit, not transiently.
	h.ctrl.SetRetryPolicy(5, 10*sim.Microsecond)
	cand := h.cfg
	cand.UnicastSize = 128 // op 0
	cand.MeterSize = 32    // op 1
	cand.QueueDepth = 16   // op 2
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.ArmWedge(2)
	txn.Commit()
	h.engine.RunUntil(sim.Millisecond)
	if txn.State() != StateRolledBack {
		t.Fatalf("state = %v: the wedge must still claim rolled-back", txn.State())
	}
	if txn.Err() == nil || !strings.Contains(txn.Err().Error(), "rollback disabled") {
		t.Fatalf("err = %v", txn.Err())
	}
	if got := txn.Attempts(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry for a wedge)", got)
	}
	// Ops 0 and 1 stayed applied: the unicast table admits entry 64 and
	// the meter table admits id 31 — partial state the atomicity oracle
	// catches by comparing live switch config against the old config.
	for i := 0; i < 65; i++ {
		if err := h.sw.Forward().Unicast.Add(ethernet.HostMAC(i), 1, 0); err != nil {
			t.Fatalf("unicast entry %d after wedge: %v", i, err)
		}
	}
	if err := h.sw.Filter().Meters.Configure(31, ethernet.Mbps, 1500); err != nil {
		t.Fatalf("meter 31 after wedge: %v", err)
	}
	if got := h.sw.Config().QueueDepth; got != h.cfg.QueueDepth {
		t.Fatalf("queue depth = %d changed by unapplied op", got)
	}
}

// TestOnAttemptCommitPointHook: the hook fires at the start of every
// commit attempt — before the first staged operation mutates anything —
// once per attempt, with the attempt ordinal. The durability layer
// relies on this ordering to make a transaction's intent record stable
// ahead of any engine state change.
func TestOnAttemptCommitPointHook(t *testing.T) {
	h := newHarness(t)
	h.ctrl.SetRetryPolicy(2, 10*sim.Microsecond)
	cand := h.cfg
	cand.MeterSize = 32
	txn, err := h.ctrl.Begin(h.cfg, cand, h.bindings())
	if err != nil {
		t.Fatal(err)
	}
	var attempts []int
	h.ctrl.OnAttempt(func(got *Txn, attempt int) {
		if got != txn {
			t.Fatal("hook saw a different transaction")
		}
		if got.State() != StatePrepared {
			t.Fatalf("hook fired with state %v, want prepared (before any op applies)", got.State())
		}
		// At the commit point nothing may have been applied yet: the
		// meter table must still be at its old size on every attempt.
		if cfgErr := h.sw.Filter().Meters.Configure(16, ethernet.Mbps, 1500); cfgErr == nil {
			t.Fatal("hook fired after a staged op applied")
		}
		attempts = append(attempts, attempt)
	})
	h.ctrl.ArmTransient(0, 1)
	txn.CommitAt(h.engine.Now() + 1)
	h.engine.RunUntil(txn.CommitTime() + 1)
	for txn.State() == StatePrepared {
		h.engine.RunUntil(txn.CommitTime() + 1)
	}
	if txn.State() != StateCommitted {
		t.Fatalf("state = %v", txn.State())
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("hook attempts = %v, want [1 2]", attempts)
	}
}
