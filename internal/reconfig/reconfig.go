// Package reconfig is the transactional live-reconfiguration engine:
// it applies a new core.Config to a running switch network through a
// validate → prepare → commit → rollback lifecycle driven by the
// discrete-event engine.
//
// The paper's development-model claim is that changing the application
// scenario only means regulating the set_* parameters and re-deriving;
// this package extends that to a switch that is already forwarding
// traffic. Validation statically checks the candidate against the
// platform's builder rules and against in-flight state (a table cannot
// shrink below its live occupancy, buffers cannot shrink below current
// reservations); prepare stages one idempotent operation per changed
// resource class; commit applies them atomically at a CQF cycle
// boundary so slot alignment is never violated mid-slot; and any
// mid-apply failure — including one injected through internal/faults —
// rolls every applied operation back in reverse order, restoring the
// exact pre-transaction state.
package reconfig

import (
	"errors"
	"fmt"
	"math"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// Metric names exported by the reconfiguration engine.
const (
	// MetricTxns counts resolved transactions by outcome
	// {outcome=committed|rejected|rolled-back}.
	MetricTxns = "tsn_reconfig_txns_total"
	// MetricOps counts staged operations by result
	// {result=applied|reverted}.
	MetricOps = "tsn_reconfig_ops_total"
	// MetricRetries counts commit attempts re-scheduled after a
	// transient staging failure.
	MetricRetries = "tsn_reconfig_retries_total"
)

// maxCommitAt is the latest instant a retry may be scheduled at: half
// the sim.Time range, so arithmetic like CommitTime()+1 or adding a
// watchdog interval downstream can never overflow.
const maxCommitAt = sim.Time(math.MaxInt64 / 2)

// State is a transaction's lifecycle position.
type State int

// Transaction states. A rejected candidate never becomes a Txn: Begin
// returns the validation error and counts the rejection.
const (
	// StatePrepared: validated, operations staged, commit not yet run.
	StatePrepared State = iota
	// StateCommitted: every operation applied at the commit instant.
	StateCommitted
	// StateRolledBack: a mid-apply failure occurred and every already-
	// applied operation was reverted in reverse order.
	StateRolledBack
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePrepared:
		return "prepared"
	case StateCommitted:
		return "committed"
	case StateRolledBack:
		return "rolled-back"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Bindings connects the engine to the running network's resources. The
// testbed supplies them; keeping the type here (rather than importing
// testbed) mirrors faults.Bindings and avoids the import cycle.
type Bindings struct {
	// Switches are the live switches the new configuration applies to.
	Switches []*tsnswitch.Switch
	// FRER lists the sequence-recovery tables resized by set_frer_tbl
	// changes, in deterministic order.
	FRER []*frer.Table
	// Platform validates the candidate's structural rules; nil selects
	// the default FPGA platform.
	Platform core.Platform
}

// op is one staged reconfiguration step: apply moves a resource from
// the old to the new configuration, revert restores it exactly.
type op struct {
	name   string
	apply  func() error
	revert func() error
}

// Controller owns transaction bookkeeping: metrics, and the fault-
// injection hook that makes a commit fail mid-apply.
type Controller struct {
	engine *sim.Engine

	metCommitted  metrics.Counter
	metRejected   metrics.Counter
	metRolledBack metrics.Counter
	metApplied    metrics.Counter
	metReverted   metrics.Counter
	metRetried    metrics.Counter

	// armed/failOp: injected failure before staged op failOp; armCount
	// is how many consecutive commit attempts it survives (1 =
	// one-shot), wedged marks the failure as rollback-disabling.
	armed    bool
	failOp   int
	armCount int
	wedged   bool

	// retryMax/backoff: bounded retry policy for failed commits. Zero
	// retryMax (the default) resolves every failure as a rollback
	// immediately, the pre-retry behavior.
	retryMax int
	backoff  sim.Time

	// onAttempt, when set, runs at the commit point of every attempt —
	// after the attempt counter ticks, before the first staged
	// operation applies. The durability layer hooks it to make the
	// transaction's intent record stable before any engine state moves
	// (the write-ahead rule).
	onAttempt func(*Txn, int)
}

// OnAttempt registers the commit-point hook: fn(txn, attempt) runs at
// the start of every commit attempt, before the first staged operation
// mutates the network. One hook per controller; nil clears it.
func (c *Controller) OnAttempt(fn func(*Txn, int)) { c.onAttempt = fn }

// NewController returns a controller scheduling on engine and counting
// into reg (nil disables instrumentation).
func NewController(engine *sim.Engine, reg *metrics.Registry) *Controller {
	c := &Controller{engine: engine}
	if reg != nil {
		reg.Help(MetricTxns, "reconfiguration transactions resolved, by outcome")
		reg.Help(MetricOps, "reconfiguration operations, by result")
		c.metCommitted = reg.Counter(MetricTxns, metrics.L("outcome", "committed"))
		c.metRejected = reg.Counter(MetricTxns, metrics.L("outcome", "rejected"))
		c.metRolledBack = reg.Counter(MetricTxns, metrics.L("outcome", "rolled-back"))
		c.metApplied = reg.Counter(MetricOps, metrics.L("result", "applied"))
		c.metReverted = reg.Counter(MetricOps, metrics.L("result", "reverted"))
		reg.Help(MetricRetries, "reconfiguration commit attempts retried after transient failure")
		c.metRetried = reg.Counter(MetricRetries)
	}
	return c
}

// SetRetryPolicy bounds the commit retry loop: a failed commit rolls
// its applied prefix back (each attempt stays atomic within one event)
// and re-runs up to maxRetries times, backoff apart. Non-positive
// backoff defaults to one CQF cycle of the outgoing configuration at
// retry time. maxRetries 0 disables retrying.
func (c *Controller) SetRetryPolicy(maxRetries int, backoff sim.Time) {
	if maxRetries < 0 {
		maxRetries = 0
	}
	c.retryMax = maxRetries
	c.backoff = backoff
}

// ArmFailure arms a one-shot injected failure: the next commit fails
// right before staged operation index opIndex (clamped to the staged
// range), exercising the rollback path. Negative indexes fail before
// the first operation.
func (c *Controller) ArmFailure(opIndex int) {
	c.arm(opIndex, 1, false)
}

// ArmTransient arms a transient injected failure: the next `times`
// commit attempts fail right before staged operation opIndex, then the
// fault clears. Paired with SetRetryPolicy it exercises the bounded
// retry path end to end.
func (c *Controller) ArmTransient(opIndex, times int) {
	if times < 1 {
		times = 1
	}
	c.arm(opIndex, times, false)
}

// ArmWedge arms a one-shot injected failure whose rollback path is
// disabled: the commit fails mid-apply and the already-applied prefix
// is NOT reverted, yet the transaction still reports rolled-back. This
// deliberately violates the commit-or-exact-rollback contract — it
// exists so the chaos invariant oracles have a real bug to catch.
func (c *Controller) ArmWedge(opIndex int) {
	c.arm(opIndex, 1, true)
}

func (c *Controller) arm(opIndex, times int, wedged bool) {
	if opIndex < 0 {
		opIndex = 0
	}
	c.armed = true
	c.failOp = opIndex
	c.armCount = times
	c.wedged = wedged
}

// takeFailure consumes one armed failure for staged op i of n,
// reporting whether it fires and whether the rollback path is wedged.
func (c *Controller) takeFailure(i, n int) (fired, wedged bool) {
	if !c.armed {
		return false, false
	}
	fail := c.failOp
	if fail >= n {
		fail = n - 1
	}
	if i != fail {
		return false, false
	}
	wedged = c.wedged
	c.armCount--
	if c.armCount <= 0 {
		c.armed = false
		c.wedged = false
	}
	return true, wedged
}

// Txn is one prepared reconfiguration transaction.
type Txn struct {
	c        *Controller
	old, new core.Config
	b        Bindings
	ops      []op
	state    State
	err      error

	scheduled bool
	commitAt  sim.Time
	attempts  int
	onResolve []func(*Txn)
}

// Begin validates candidate new against the running state reachable
// through b and, if it is applicable, returns a prepared transaction.
// A rejected candidate returns a descriptive error (all problems, not
// just the first) and counts under outcome="rejected".
func (c *Controller) Begin(old, new core.Config, b Bindings) (*Txn, error) {
	if err := validate(old, new, b); err != nil {
		c.metRejected.Inc()
		return nil, err
	}
	t := &Txn{c: c, old: old, new: new, b: b, state: StatePrepared}
	t.prepare()
	return t, nil
}

// validate statically checks the candidate: structural rules first
// (the same Builder validation a fresh design passes), then the fields
// a live switch cannot change, then every live-occupancy constraint.
func validate(old, new core.Config, b Bindings) error {
	var errs []error
	if _, err := core.BuilderFor(new, b.Platform).Build(); err != nil {
		errs = append(errs, err)
	}
	if new.QueueNum != old.QueueNum {
		errs = append(errs, fmt.Errorf("reconfig: queue_num %d → %d requires regeneration, not live reconfiguration",
			old.QueueNum, new.QueueNum))
	}
	if new.PortNum != old.PortNum {
		errs = append(errs, fmt.Errorf("reconfig: port_num %d → %d requires regeneration, not live reconfiguration",
			old.PortNum, new.PortNum))
	}
	if new.LinkRate != old.LinkRate {
		errs = append(errs, fmt.Errorf("reconfig: link_rate %d → %d requires regeneration, not live reconfiguration",
			old.LinkRate, new.LinkRate))
	}
	for _, sw := range b.Switches {
		id := sw.ID()
		if n := sw.Forward().Unicast.Len(); n > new.UnicastSize {
			errs = append(errs, fmt.Errorf("reconfig: switch %d unicast table holds %d entries > candidate size %d",
				id, n, new.UnicastSize))
		}
		if n := sw.Forward().Multicast.Len(); n > new.MulticastSize {
			errs = append(errs, fmt.Errorf("reconfig: switch %d multicast table holds %d entries > candidate size %d",
				id, n, new.MulticastSize))
		}
		if n := sw.Filter().Class.Len(); n > new.ClassSize {
			errs = append(errs, fmt.Errorf("reconfig: switch %d classification table holds %d entries > candidate size %d",
				id, n, new.ClassSize))
		}
		if req := sw.Filter().Meters.RequiredCapacity(); req > new.MeterSize {
			errs = append(errs, fmt.Errorf("reconfig: switch %d meter %d is configured, candidate size %d too small",
				id, req-1, new.MeterSize))
		}
		cfg := sw.Config()
		for p := 0; p < cfg.Ports; p++ {
			in, out := sw.PortSchedules(p)
			if in.Size() > new.GateSize || out.Size() > new.GateSize {
				errs = append(errs, fmt.Errorf("reconfig: switch %d port %d schedules (%d/%d entries) exceed candidate gate size %d",
					id, p, in.Size(), out.Size(), new.GateSize))
			}
			bank := sw.Bank(p)
			if bank.MapLen() > new.CBSMapSize {
				errs = append(errs, fmt.Errorf("reconfig: switch %d port %d has %d CBS bindings > candidate map size %d",
					id, p, bank.MapLen(), new.CBSMapSize))
			}
			if req := bank.RequiredSize(); req > new.CBSSize {
				errs = append(errs, fmt.Errorf("reconfig: switch %d port %d CBS %d is live, candidate size %d too small",
					id, p, req-1, new.CBSSize))
			}
			pool := sw.Port(p).Pool()
			if cfg.SharedBufferNum <= 0 {
				if live := pool.InUse() + pool.Reserved(); live > new.BufferNum {
					errs = append(errs, fmt.Errorf("reconfig: switch %d port %d holds %d live buffers > candidate buffer_num %d",
						id, p, live, new.BufferNum))
				}
			}
		}
		if n := sw.MaxQueueLen(); n > new.QueueDepth {
			errs = append(errs, fmt.Errorf("reconfig: switch %d queue holds %d descriptors > candidate depth %d",
				id, n, new.QueueDepth))
		}
		if cfg.SharedBufferNum > 0 && new.BufferNum != old.BufferNum {
			errs = append(errs, fmt.Errorf("reconfig: switch %d uses a shared (SMS) pool; buffer_num is not live-reconfigurable",
				id))
		}
		if new.SlotSize != old.SlotSize && !sw.CQFSchedules() {
			errs = append(errs, fmt.Errorf("reconfig: switch %d carries synthesized (non-CQF) schedules; slot_size is not live-reconfigurable",
				id))
		}
	}
	newHist := effectiveHistory(new)
	for i, tbl := range b.FRER {
		if tbl.Len() > new.FRERSize {
			errs = append(errs, fmt.Errorf("reconfig: FRER table %d holds %d streams > candidate frer_size %d",
				i, tbl.Len(), new.FRERSize))
		}
		if new.FRERSize > 0 && (newHist < 1 || newHist > frer.MaxHistory) {
			errs = append(errs, fmt.Errorf("reconfig: FRER history %d out of [1,%d]", newHist, frer.MaxHistory))
		}
	}
	return errors.Join(errs...)
}

// effectiveHistory resolves the candidate's FRER window: explicit
// value, or the default when frer_size is set without one.
func effectiveHistory(cfg core.Config) int {
	if cfg.FRERHistory != 0 {
		return cfg.FRERHistory
	}
	if cfg.FRERSize > 0 {
		return frer.DefaultHistory
	}
	return 0
}

// prepare stages one operation per changed resource class, per switch,
// in deterministic order. Each operation's revert closure restores the
// exact state its apply replaced.
func (t *Txn) prepare() {
	old, new := t.old, t.new
	for _, sw := range t.b.Switches {
		sw := sw
		pfx := fmt.Sprintf("sw%d:", sw.ID())
		if new.UnicastSize != old.UnicastSize || new.MulticastSize != old.MulticastSize {
			t.ops = append(t.ops, op{
				name:   pfx + "set_switch_tbl",
				apply:  func() error { return sw.ResizeSwitchTbl(new.UnicastSize, new.MulticastSize) },
				revert: func() error { return sw.ResizeSwitchTbl(old.UnicastSize, old.MulticastSize) },
			})
		}
		if new.ClassSize != old.ClassSize {
			t.ops = append(t.ops, op{
				name:   pfx + "set_class_tbl",
				apply:  func() error { return sw.ResizeClassTbl(new.ClassSize) },
				revert: func() error { return sw.ResizeClassTbl(old.ClassSize) },
			})
		}
		if new.MeterSize != old.MeterSize {
			t.ops = append(t.ops, op{
				name:   pfx + "set_meter_tbl",
				apply:  func() error { return sw.ResizeMeterTbl(new.MeterSize) },
				revert: func() error { return sw.ResizeMeterTbl(old.MeterSize) },
			})
		}
		if new.GateSize != old.GateSize {
			t.ops = append(t.ops, op{
				name:   pfx + "set_gate_tbl",
				apply:  func() error { return sw.SetGateSize(new.GateSize) },
				revert: func() error { return sw.SetGateSize(old.GateSize) },
			})
		}
		if new.CBSMapSize != old.CBSMapSize || new.CBSSize != old.CBSSize {
			t.ops = append(t.ops, op{
				name:   pfx + "set_cbs_tbl",
				apply:  func() error { return sw.ResizeCBS(new.CBSMapSize, new.CBSSize) },
				revert: func() error { return sw.ResizeCBS(old.CBSMapSize, old.CBSSize) },
			})
		}
		if new.QueueDepth != old.QueueDepth {
			t.ops = append(t.ops, op{
				name:   pfx + "set_queues",
				apply:  func() error { return sw.ResizeQueues(new.QueueDepth) },
				revert: func() error { return sw.ResizeQueues(old.QueueDepth) },
			})
		}
		if new.BufferNum != old.BufferNum && sw.Config().SharedBufferNum <= 0 {
			t.ops = append(t.ops, op{
				name:   pfx + "set_buffers",
				apply:  func() error { return sw.ResizeBuffers(new.BufferNum) },
				revert: func() error { return sw.ResizeBuffers(old.BufferNum) },
			})
		}
		if new.SlotSize != old.SlotSize {
			// Capture the replaced schedules at apply time so revert
			// restores the exact objects, base alignment included.
			var savedIn, savedOut []gate.Schedule
			t.ops = append(t.ops, op{
				name: pfx + "rebase_slot",
				apply: func() error {
					ports := sw.Config().Ports
					savedIn = make([]gate.Schedule, ports)
					savedOut = make([]gate.Schedule, ports)
					for p := 0; p < ports; p++ {
						savedIn[p], savedOut[p] = sw.PortSchedules(p)
					}
					base := sw.Clock.Now(t.c.engine.Now())
					return sw.RebaseCQF(new.SlotSize, base)
				},
				revert: func() error { return sw.RestoreSchedules(old.SlotSize, savedIn, savedOut) },
			})
		}
	}
	if new.FRERSize != old.FRERSize || effectiveHistory(new) != effectiveHistory(old) {
		newHist := effectiveHistory(new)
		for i, tbl := range t.b.FRER {
			i, tbl := i, tbl
			oldHist := tbl.History()
			hist := newHist
			if hist == 0 {
				hist = oldHist // frer_size 0: keep the window, only the budget shrinks
			}
			t.ops = append(t.ops, op{
				name:   fmt.Sprintf("frer%d:set_frer_tbl", i),
				apply:  func() error { return tbl.Resize(new.FRERSize, hist) },
				revert: func() error { return tbl.Resize(old.FRERSize, oldHist) },
			})
		}
	}
}

// State returns the transaction's lifecycle state.
func (t *Txn) State() State { return t.state }

// Err returns the failure that forced a rollback, or nil.
func (t *Txn) Err() error { return t.err }

// Old returns the pre-transaction configuration.
func (t *Txn) Old() core.Config { return t.old }

// New returns the candidate configuration.
func (t *Txn) New() core.Config { return t.new }

// Ops lists the staged operation names in apply order.
func (t *Txn) Ops() []string {
	names := make([]string, len(t.ops))
	for i, o := range t.ops {
		names[i] = o.name
	}
	return names
}

// CommitTime returns the scheduled commit instant (zero until
// scheduled; the latest retry's instant once retries have run).
func (t *Txn) CommitTime() sim.Time { return t.commitAt }

// Attempts returns how many commit attempts have run (0 before the
// first; >1 only when a retry policy is set).
func (t *Txn) Attempts() int { return t.attempts }

// OnResolve registers a callback invoked once, when the transaction
// commits or rolls back, in registration order.
func (t *Txn) OnResolve(fn func(*Txn)) { t.onResolve = append(t.onResolve, fn) }

// CommitAtBoundary schedules the commit for the next CQF cycle
// boundary of the outgoing configuration (cycle = 2 × slot for the
// two-entry CQF pair) and returns the chosen instant. Committing on a
// boundary means the slot grid realignment of a slot-size change never
// truncates an in-progress slot, and every staged table swap lands
// between slots. Any hyperperiod of the flow set is a multiple of the
// cycle, so hyperperiod alignment follows from choosing k cycles.
func (t *Txn) CommitAtBoundary() sim.Time {
	cycle := 2 * t.old.SlotSize
	now := t.c.engine.Now()
	at := now - now%cycle + cycle
	t.commitSchedule(at)
	return at
}

// CommitAt schedules the commit for the absolute instant at.
func (t *Txn) CommitAt(at sim.Time) { t.commitSchedule(at) }

func (t *Txn) commitSchedule(at sim.Time) {
	if t.state != StatePrepared {
		panic(fmt.Sprintf("reconfig: commit of %s transaction", t.state))
	}
	if t.scheduled {
		panic("reconfig: transaction already scheduled")
	}
	t.scheduled = true
	t.commitAt = at
	t.c.engine.At(at, "reconfig:commit", func(*sim.Engine) { t.Commit() })
}

// Commit applies every staged operation in order, immediately. On the
// first failure — real or injected via Controller.ArmFailure — every
// already-applied operation is reverted in reverse order; then, while
// the controller's retry budget lasts, the whole commit is re-run one
// backoff later (each attempt stays atomic within its own event), and
// only a failure past the budget resolves the transaction rolled-back
// with Err set. A wedged injected failure (Controller.ArmWedge) skips
// both the rollback and the retries: the applied prefix is left in
// place while the transaction still claims rolled-back — the seeded
// atomicity bug the chaos oracles exist to catch. All operations of
// one attempt run within one event, so no frame moves between apply
// steps.
func (t *Txn) Commit() {
	if t.state != StatePrepared {
		panic(fmt.Sprintf("reconfig: commit of %s transaction", t.state))
	}
	t.attempts++
	if t.c.onAttempt != nil {
		t.c.onAttempt(t, t.attempts)
	}
	for i, o := range t.ops {
		var err error
		fired, wedged := t.c.takeFailure(i, len(t.ops))
		if fired {
			err = fmt.Errorf("reconfig: injected failure before %q", o.name)
		} else {
			err = o.apply()
		}
		if err != nil {
			if wedged {
				t.err = fmt.Errorf("reconfig: commit failed at %q with rollback disabled: %w", o.name, err)
				t.state = StateRolledBack
				t.c.metRolledBack.Inc()
				t.resolve()
				return
			}
			t.rollback(i)
			if t.attempts <= t.c.retryMax {
				t.c.metRetried.Inc()
				backoff := t.c.backoff
				if backoff <= 0 {
					backoff = 2 * t.old.SlotSize
				}
				// Clamp the retry instant: a pathological backoff (or a
				// long-lived engine already deep into its timeline) must
				// not overflow sim.Time into the past and time-travel the
				// retry. maxCommitAt leaves headroom for callers that add
				// small offsets to CommitTime.
				now := t.c.engine.Now()
				if backoff > maxCommitAt-now {
					t.commitAt = maxCommitAt
				} else {
					t.commitAt = now + backoff
				}
				t.c.engine.At(t.commitAt, "reconfig:retry", func(*sim.Engine) { t.Commit() })
				return
			}
			t.err = fmt.Errorf("reconfig: commit failed at %q: %w", o.name, err)
			t.state = StateRolledBack
			t.c.metRolledBack.Inc()
			t.resolve()
			return
		}
		t.c.metApplied.Inc()
	}
	t.state = StateCommitted
	t.c.metCommitted.Inc()
	t.resolve()
}

// rollback reverts ops [0, applied) in reverse order. A revert that
// fails would leave the switch in an undefined mixed state, which the
// staged operations are constructed to make impossible — occupancy can
// only have been checked against the tighter of the two configurations
// — so it panics.
func (t *Txn) rollback(applied int) {
	for i := applied - 1; i >= 0; i-- {
		if err := t.ops[i].revert(); err != nil {
			panic(fmt.Sprintf("reconfig: rollback of %q failed: %v", t.ops[i].name, err))
		}
		t.c.metReverted.Inc()
	}
}

func (t *Txn) resolve() {
	fns := t.onResolve
	t.onResolve = nil
	for _, fn := range fns {
		fn(t)
	}
}
