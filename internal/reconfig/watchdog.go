package reconfig

import (
	"fmt"
	"strconv"

	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// Watchdog metric names.
const (
	// MetricAudits counts completed audit sweeps.
	MetricAudits = "tsn_watchdog_audits_total"
	// MetricViolations counts invariant violations {invariant=...}.
	MetricViolations = "tsn_watchdog_violations_total"
	// MetricDegradeLevel is the current degradation level {switch}.
	MetricDegradeLevel = "tsn_degrade_level"
	// MetricDegradeTransitions counts level changes {switch}.
	MetricDegradeTransitions = "tsn_degrade_transitions_total"
)

// Invariants lists every invariant class the watchdog audits, in the
// order their violation counters are registered.
func Invariants() []string {
	return []string{"buffer-conservation", "queue-bounds", "gate-monotonic", "frer-bounds"}
}

// Policy is the graceful-degradation policy: pool-occupancy fractions
// at which traffic shedding engages and disengages. Recover < ShedBE <
// ShedRC gives the ladder hysteresis so the level does not flap around
// a threshold.
type Policy struct {
	// ShedBE engages best-effort shedding at this occupancy fraction.
	ShedBE float64
	// ShedRC escalates to shedding BE and RC at this fraction.
	ShedRC float64
	// Recover disengages shedding once occupancy falls to this
	// fraction or below.
	Recover float64
}

// DefaultPolicy returns the degradation thresholds used when none are
// configured: shed BE at 75 % pool occupancy, shed RC too at 90 %,
// recover below 50 %.
func DefaultPolicy() Policy {
	return Policy{ShedBE: 0.75, ShedRC: 0.90, Recover: 0.50}
}

// Validate checks the ladder ordering.
func (p Policy) Validate() error {
	if !(0 <= p.Recover && p.Recover < p.ShedBE && p.ShedBE <= p.ShedRC && p.ShedRC <= 1) {
		return fmt.Errorf("reconfig: degradation policy not ordered: recover=%v shedBE=%v shedRC=%v",
			p.Recover, p.ShedBE, p.ShedRC)
	}
	return nil
}

// Transition records one degradation-level change the policy drove:
// which switch moved, from which level to which, at which instant. The
// ladder contract is directional — escalation may jump straight to the
// pressure's level, but de-escalation steps exactly one rung per audit
// (ShedRC → ShedBE → Off), so shed classes are restored in reverse
// order of shedding: RC service returns before BE.
type Transition struct {
	Switch   int
	From, To tsnswitch.DegradeLevel
	At       sim.Time
}

// Watchdog periodically audits runtime conservation invariants on the
// watched switches — buffer leak / double free, queue occupancy within
// depth, gate schedule monotonicity, FRER table bounds — and drives
// the graceful-degradation policy from buffer-pool pressure. It runs
// as an ordinary simulation event, so audits land deterministically in
// the event order and the same seed reproduces the same findings.
type Watchdog struct {
	engine   *sim.Engine
	reg      *metrics.Registry
	interval sim.Time
	policy   Policy

	switches []*tsnswitch.Switch
	frers    []*frer.Table

	audits      uint64
	violations  map[string]uint64
	lastDetail  string
	transitions []Transition

	metAudits metrics.Counter
	metViol   map[string]metrics.Counter
	metLevel  []metrics.Gauge
	metTrans  []metrics.Counter

	started bool
	stopped bool

	// OnAudit, when set, runs on the simulation thread at the end of
	// every audit sweep — the observability layer publishes watchdog
	// state to its health board from it.
	OnAudit func()
}

// NewWatchdog returns a watchdog auditing every interval, counting
// into reg (nil disables instrumentation), with the default policy.
func NewWatchdog(engine *sim.Engine, reg *metrics.Registry, interval sim.Time) *Watchdog {
	if interval <= 0 {
		panic(fmt.Sprintf("reconfig: non-positive watchdog interval %v", interval))
	}
	w := &Watchdog{
		engine:     engine,
		reg:        reg,
		interval:   interval,
		policy:     DefaultPolicy(),
		violations: make(map[string]uint64),
		metViol:    make(map[string]metrics.Counter),
	}
	if reg != nil {
		reg.Help(MetricAudits, "watchdog audit sweeps completed")
		reg.Help(MetricViolations, "invariant violations detected, by invariant")
		reg.Help(MetricDegradeLevel, "graceful-degradation level (0 off, 1 shed BE, 2 shed BE+RC)")
		reg.Help(MetricDegradeTransitions, "graceful-degradation level changes")
		w.metAudits = reg.Counter(MetricAudits)
		for _, inv := range Invariants() {
			w.metViol[inv] = reg.Counter(MetricViolations, metrics.L("invariant", inv))
		}
	}
	return w
}

// SetPolicy replaces the degradation policy. Call before Start.
func (w *Watchdog) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	w.policy = p
	return nil
}

// Watch adds sw to the audited set.
func (w *Watchdog) Watch(sw *tsnswitch.Switch) {
	w.switches = append(w.switches, sw)
	if w.reg != nil {
		swl := metrics.L("switch", strconv.Itoa(sw.ID()))
		w.metLevel = append(w.metLevel, w.reg.Gauge(MetricDegradeLevel, swl))
		w.metTrans = append(w.metTrans, w.reg.Counter(MetricDegradeTransitions, swl))
	} else {
		w.metLevel = append(w.metLevel, metrics.Gauge{})
		w.metTrans = append(w.metTrans, metrics.Counter{})
	}
}

// WatchFRER adds a sequence-recovery table to the audited set.
func (w *Watchdog) WatchFRER(tbl *frer.Table) { w.frers = append(w.frers, tbl) }

// Start schedules the first audit one interval from now.
func (w *Watchdog) Start() {
	if w.started {
		return
	}
	w.started = true
	w.engine.After(w.interval, "watchdog:tick", w.tick)
}

// Stop halts auditing after the current interval.
func (w *Watchdog) Stop() { w.stopped = true }

// Audits returns how many audit sweeps have completed.
func (w *Watchdog) Audits() uint64 { return w.audits }

// Violations returns a copy of the per-invariant violation counts.
func (w *Watchdog) Violations() map[string]uint64 {
	out := make(map[string]uint64, len(w.violations))
	for k, v := range w.violations {
		out[k] = v
	}
	return out
}

// TotalViolations sums all invariant violations observed.
func (w *Watchdog) TotalViolations() uint64 {
	var total uint64
	for _, v := range w.violations {
		total += v
	}
	return total
}

// LastDetail returns the most recent violation's description, for
// diagnostics.
func (w *Watchdog) LastDetail() string { return w.lastDetail }

// Transitions returns every degradation-level change driven so far, in
// audit order — the evidence trail the chaos ladder-ordering oracle
// checks.
func (w *Watchdog) Transitions() []Transition {
	out := make([]Transition, len(w.transitions))
	copy(out, w.transitions)
	return out
}

// note records one violation.
func (w *Watchdog) note(invariant, detail string) {
	w.violations[invariant]++
	w.lastDetail = detail
	if c, ok := w.metViol[invariant]; ok {
		c.Inc()
	}
}

// tick runs one audit sweep and reschedules itself.
func (w *Watchdog) tick(e *sim.Engine) {
	if w.stopped {
		return
	}
	w.audits++
	w.metAudits.Inc()
	for i, sw := range w.switches {
		local := sw.Clock.Now(e.Now())
		for _, v := range sw.Audit(local) {
			w.note(v.Invariant, v.Detail)
		}
		w.drivePolicy(i, sw)
	}
	for i, tbl := range w.frers {
		if tbl.Len() > tbl.Capacity() {
			w.note("frer-bounds", fmt.Sprintf("FRER table %d: %d streams exceed capacity %d",
				i, tbl.Len(), tbl.Capacity()))
		}
		if h := tbl.History(); h < 1 || h > frer.MaxHistory {
			w.note("frer-bounds", fmt.Sprintf("FRER table %d: history %d out of [1,%d]",
				i, h, frer.MaxHistory))
		}
	}
	if w.OnAudit != nil {
		w.OnAudit()
	}
	w.engine.After(w.interval, "watchdog:tick", w.tick)
}

// Degraded reports whether any watched switch currently sheds traffic.
func (w *Watchdog) Degraded() bool {
	for _, sw := range w.switches {
		if sw.DegradeLevel() > tsnswitch.DegradeOff {
			return true
		}
	}
	return false
}

// drivePolicy moves switch i's degradation level along the ladder:
// escalate when pool pressure crosses a shed threshold, de-escalate
// only once pressure falls to Recover (hysteresis), hold in between.
// De-escalation is stepwise — one rung per audit — so a switch that
// shed BE then RC restores them in reverse order (RC first, BE last),
// and each restoration gets a full audit interval to prove the
// pressure stays down before the next class returns.
func (w *Watchdog) drivePolicy(i int, sw *tsnswitch.Switch) {
	pressure := sw.PoolPressure()
	cur := sw.DegradeLevel()
	want := cur
	switch {
	case pressure >= w.policy.ShedRC:
		want = tsnswitch.DegradeShedRC
	case pressure >= w.policy.ShedBE:
		if cur < tsnswitch.DegradeShedBE {
			want = tsnswitch.DegradeShedBE
		}
	case pressure <= w.policy.Recover:
		if cur > tsnswitch.DegradeOff {
			want = cur - 1
		}
	}
	if want != cur {
		sw.SetDegradeLevel(want)
		w.metTrans[i].Inc()
		w.transitions = append(w.transitions, Transition{
			Switch: sw.ID(), From: cur, To: want, At: w.engine.Now(),
		})
	}
	w.metLevel[i].Set(int64(want))
}
