package chaos

import (
	"bytes"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// txnRecord tracks one mid-run reconfiguration for the atomicity
// oracle: the configuration in force when the transaction began, the
// candidate it tried to reach, and the transaction itself (nil when
// the begin instant fell outside the run).
type txnRecord struct {
	pre, cand core.Config
	txn       *reconfig.Txn
	beginErr  error
}

// Execute runs one case in a fresh simulation and applies every
// invariant oracle to the outcome. The returned error means the case
// could not be constructed or run at all — an infrastructure problem,
// distinct from a Result with violations, which means the system under
// test broke an invariant.
func Execute(c Case) (*Result, error) {
	wl, err := workload.Build(workload.Params{
		Topology: c.Topology, Switches: c.Switches, TSFlows: c.TSFlows,
		Hops: c.Hops, WireSize: c.WireSize, SlotUs: c.SlotUs,
		RCMbps: c.RCMbps, BEMbps: c.BEMbps, FRERFlows: c.FRERFlows,
		Seed: c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: case %d workload: %w", c.Index, err)
	}
	var scenario *faults.Scenario
	if len(c.Faults) > 0 {
		scenario = &faults.Scenario{Faults: c.Faults}
		if err := scenario.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: case %d: %w", c.Index, err)
		}
	}
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design: wl.Design, Topo: wl.Topo, Flows: wl.Specs,
		Metrics: reg, Seed: c.Seed,
		Faults:         scenario,
		EnableWatchdog: c.Watchdog,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: case %d build: %w", c.Index, err)
	}
	if c.RetryMax > 0 {
		net.Reconfig.SetRetryPolicy(c.RetryMax, sim.Time(c.RetryBackoffUs)*sim.Microsecond)
	}
	var txns []*txnRecord
	if c.Reconfig != nil && !c.Reconfig.empty() {
		rec := &txnRecord{}
		txns = append(txns, rec)
		d := c.Reconfig
		net.Engine.At(sim.Time(d.AtUs)*sim.Microsecond, "chaos:reconfig", func(*sim.Engine) {
			rec.pre = net.LiveConfig()
			rec.cand = d.Candidate(rec.pre)
			rec.txn, rec.beginErr = net.Reconfigure(rec.cand)
		})
	}
	net.Run(0, c.dur())

	res := &Result{Case: c, Events: net.Engine.Executed()}
	res.Violations = checkOracles(&c, net, reg, txns)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("chaos: case %d metrics export: %w", c.Index, err)
	}
	res.MetricsJSON = buf.Bytes()
	return res, nil
}
