package chaos

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// txnRecord tracks one mid-run reconfiguration for the atomicity
// oracle: the configuration in force when the transaction began, the
// candidate it tried to reach, and the transaction itself (nil when
// the begin instant fell outside the run).
type txnRecord struct {
	pre, cand core.Config
	txn       *reconfig.Txn
	beginErr  error
}

// Execute runs one case in a fresh simulation and applies every
// invariant oracle to the outcome. The returned error means the case
// could not be constructed or run at all — an infrastructure problem,
// distinct from a Result with violations, which means the system under
// test broke an invariant.
func Execute(c Case) (*Result, error) {
	wl, err := workload.Build(workload.Params{
		Topology: c.Topology, Switches: c.Switches, TSFlows: c.TSFlows,
		Hops: c.Hops, WireSize: c.WireSize, SlotUs: c.SlotUs,
		RCMbps: c.RCMbps, BEMbps: c.BEMbps, FRERFlows: c.FRERFlows,
		Seed: c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: case %d workload: %w", c.Index, err)
	}
	var scenario *faults.Scenario
	if len(c.Faults) > 0 {
		scenario = &faults.Scenario{Faults: c.Faults}
		if err := scenario.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: case %d: %w", c.Index, err)
		}
	}
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design: wl.Design, Topo: wl.Topo, Flows: wl.Specs,
		Metrics: reg, Seed: c.Seed,
		Faults:         scenario,
		EnableWatchdog: c.Watchdog,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: case %d build: %w", c.Index, err)
	}
	if c.RetryMax > 0 {
		net.Reconfig.SetRetryPolicy(c.RetryMax, sim.Time(c.RetryBackoffUs)*sim.Microsecond)
	}
	var txns []*txnRecord
	if c.Reconfig != nil && !c.Reconfig.empty() {
		rec := &txnRecord{}
		txns = append(txns, rec)
		d := c.Reconfig
		net.Engine.At(sim.Time(d.AtUs)*sim.Microsecond, "chaos:reconfig", func(*sim.Engine) {
			rec.pre = net.LiveConfig()
			rec.cand = d.Candidate(rec.pre)
			rec.txn, rec.beginErr = net.Reconfigure(rec.cand)
		})
	}
	net.Run(0, c.dur())

	res := &Result{Case: c, Events: net.Engine.Executed()}
	res.Violations = checkOracles(&c, net, reg, txns)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("chaos: case %d metrics export: %w", c.Index, err)
	}
	res.MetricsJSON = buf.Bytes()
	return res, nil
}

// parityStrip reduces a case to the feature set the partitioned build
// supports: no faults, no mid-run reconfiguration, no watchdog, no
// FRER. The workload itself (topology, flows, background, seed,
// duration) is untouched, so the comparison still covers the full
// forwarding, gating and shaping dataplane.
func parityStrip(c Case) Case {
	c.Faults = nil
	c.Reconfig = nil
	c.Watchdog = false
	c.FRERFlows = 0
	c.FRERCovered = false
	c.RetryMax = 0
	c.RetryBackoffUs = 0
	return c
}

// stripHeapGauge drops the scheduler heap-depth gauge's value lines
// from a Prometheus export — the one metric serial and partitioned
// runs legitimately disagree on (per-partition heaps have their own
// high waters; the merge keeps the maximum).
func stripHeapGauge(export string) string {
	lines := strings.Split(export, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "tsn_sim_heap_depth_high_water ") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// CheckPartitionParity is the partition-parity oracle: it re-runs the
// sampled case — stripped to the partitionable feature set — once on
// the serial engine and once sharded across the given partition count,
// and byte-compares the two metrics exports (heap-depth gauge
// normalized). A nil return means parity held; a non-nil Violation
// means the parallel simulator diverged from the serial schedule, the
// determinism contract tsnsim -partitions promises.
func CheckPartitionParity(c Case, partitions int) *Violation {
	s := parityStrip(c)
	run := func(parts int) (string, error) {
		wl, err := workload.Build(workload.Params{
			Topology: s.Topology, Switches: s.Switches, TSFlows: s.TSFlows,
			Hops: s.Hops, WireSize: s.WireSize, SlotUs: s.SlotUs,
			RCMbps: s.RCMbps, BEMbps: s.BEMbps,
			Seed: s.Seed,
		})
		if err != nil {
			return "", err
		}
		reg := metrics.New()
		net, err := testbed.Build(testbed.Options{
			Design: wl.Design, Topo: wl.Topo, Flows: wl.Specs,
			Metrics: reg, Seed: s.Seed,
			Partitions: parts,
		})
		if err != nil {
			return "", err
		}
		net.Run(0, s.dur())
		var b strings.Builder
		if err := reg.Snapshot().WritePrometheus(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	}
	serial, err := run(0)
	if err != nil {
		return &Violation{Oracle: OracleParity, Detail: fmt.Sprintf("serial re-run errored: %v", err)}
	}
	par, err := run(partitions)
	if err != nil {
		return &Violation{Oracle: OracleParity, Detail: fmt.Sprintf("partitions=%d run errored: %v", partitions, err)}
	}
	if a, b := stripHeapGauge(serial), stripHeapGauge(par); a != b {
		return &Violation{Oracle: OracleParity, Detail: fmt.Sprintf(
			"partitions=%d metrics diverged from serial (%d vs %d bytes after heap-gauge normalization)",
			partitions, len(a), len(b))}
	}
	return nil
}
