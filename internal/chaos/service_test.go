package chaos

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/svc"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// TestServiceCampaignFixedSeed is the acceptance run: a fixed-seed
// campaign drives the live service concurrently — stampedes, coherence
// probes, slow clients, transient and wedged mid-commit faults, shed
// bursts — and both service oracles must hold.
func TestServiceCampaignFixedSeed(t *testing.T) {
	sum, err := RunServiceCampaign(ServiceOptions{
		Seed:     42,
		Clients:  8,
		Requests: 140,
		Budget:   2 * time.Minute,
		Service: svc.Options{
			Workload: workload.Params{
				Topology: "linear", Switches: 2, TSFlows: 6, Hops: 2,
				WireSize: 200, SlotUs: 65, Seed: 1,
			},
			RetryMax: 3,
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sum.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	for _, e := range sum.Errors {
		t.Errorf("campaign error: %s", e)
	}
	if sum.Executed == 0 {
		t.Fatal("campaign executed nothing")
	}
	if sum.Accepted == 0 {
		t.Error("no reconfiguration was ever accepted — the drive plan is broken")
	}
	if sum.CoherenceProbes == 0 {
		t.Error("no coherence probe ran")
	}
	if sum.FaultsArmed < 2 {
		t.Errorf("faults armed = %d, want transient(s) + the wedge", sum.FaultsArmed)
	}
	if sum.ByStatus[http.StatusOK] == 0 {
		t.Error("no request ever succeeded")
	}
	// The wedge must have surfaced as at least one hard failure
	// (500 verify/rollback) — never as a silent 2xx.
	if sum.ByStatus[http.StatusInternalServerError] == 0 {
		t.Error("the armed wedge never produced a 500")
	}
}

// TestServiceCampaignOracleCatchesFabricatedLoss verifies the
// accepted-then-lost oracle actually bites: a fabricated client-side
// acknowledgment that the journal never saw must be flagged.
func TestServiceCampaignOracleCatchesFabricatedLoss(t *testing.T) {
	s, err := svc.NewService(svc.Options{Workload: workload.Params{
		Topology: "linear", Switches: 2, TSFlows: 4, Hops: 2,
		WireSize: 200, SlotUs: 65, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	d := &svcDriver{
		base:     "http://" + ln.Addr().String(),
		client:   &http.Client{Timeout: 10 * time.Second},
		byStatus: make(map[int]int64),
	}
	d.accepted = []acceptedTxn{{seq: 999, config: svc.ConfigJSON{UnicastSize: 1}}}
	sum := &ServiceSummary{ByStatus: d.byStatus}
	d.checkAcceptedThenLost(sum, svc.ToConfigJSON(s.Instance().LiveConfig()))
	found := false
	for _, v := range sum.Violations {
		if v.Oracle == OracleAcceptedLost && strings.Contains(v.Detail, "seq 999") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fabricated acknowledgment not flagged; violations: %v", sum.Violations)
	}
}
