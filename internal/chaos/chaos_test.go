package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// smallProfile keeps campaign tests cheap: tiny networks, short runs.
func smallProfile() Profile {
	p := DefaultProfile()
	p.MaxRuns = 6
	p.MaxSwitches = 5
	p.MinTSFlows = 2
	p.MaxTSFlows = 6
	p.MinDurMs = 10
	p.MaxDurMs = 15
	p.MaxFaults = 3
	p.RCMaxMbps = 20
	p.BEMaxMbps = 20
	p.DeterminismEvery = 3
	p.Seed = 7
	return p
}

func TestProfileValidate(t *testing.T) {
	def := DefaultProfile()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.MaxRuns = 0 },
		func(p *Profile) { p.Topologies = nil },
		func(p *Profile) { p.Topologies = []string{"moebius"} },
		func(p *Profile) { p.MinSwitches = 1 },
		func(p *Profile) { p.MaxTSFlows = 0 },
		func(p *Profile) { p.MinDurMs = 1 },
		func(p *Profile) { p.WedgeProb = 1.5 },
		func(p *Profile) { p.RetryMax = -1 },
	}
	for i, mutate := range bad {
		p := DefaultProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallProfile()
	for i := 0; i < 8; i++ {
		a, err := Generate(p, i)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		b, err := Generate(p, i)
		if err != nil {
			t.Fatalf("case %d replay: %v", i, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("case %d not deterministic:\n%+v\n%+v", i, a, b)
		}
		if err := (&faults.Scenario{Faults: a.Faults}).Validate(); err != nil {
			t.Fatalf("case %d scenario invalid: %v", i, err)
		}
	}
	// Different indices draw different scenarios.
	a, _ := Generate(p, 0)
	b, _ := Generate(p, 1)
	if reflect.DeepEqual(a.Faults, b.Faults) && a.Topology == b.Topology &&
		a.TSFlows == b.TSFlows && a.Seed == b.Seed {
		t.Fatal("cases 0 and 1 identical")
	}
}

func TestExecuteCleanCase(t *testing.T) {
	res, err := Execute(Case{
		Seed: 3, Topology: "ring", Switches: 4, TSFlows: 4, Hops: 2,
		WireSize: 64, SlotUs: 65, DurMs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("clean case violated: %v", res.Violations)
	}
	if res.Events == 0 {
		t.Fatal("no events executed")
	}
}

func TestZeroLossOracleHoldsOnCoveredCase(t *testing.T) {
	a, b := 1, 2
	res, err := Execute(Case{
		Seed: 5, Topology: "bidir-ring", Switches: 4, TSFlows: 4, Hops: 2,
		WireSize: 64, SlotUs: 65, DurMs: 15,
		FRERFlows: 4, FRERCovered: true,
		Faults: []faults.Fault{
			{AtUs: 3000, Kind: faults.KindLinkDown, A: &a, B: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("covered link-down violated: %v", res.Violations)
	}
}

// wedgeCase builds the deliberately seeded atomicity bug — a mid-run
// reconfiguration whose commit wedges between stage and commit with
// rollback disabled — wrapped in decoy faults the shrinker must strip.
func wedgeCase(t *testing.T) Case {
	t.Helper()
	c := Case{
		Seed: 11, Topology: "bidir-ring", Switches: 4, TSFlows: 4, Hops: 2,
		WireSize: 64, SlotUs: 65, DurMs: 15,
		RetryMax: 2, RetryBackoffUs: 200,
	}
	wl, err := workload.Build(workload.Params{
		Topology: c.Topology, Switches: c.Switches, TSFlows: c.TSFlows,
		Hops: c.Hops, WireSize: c.WireSize, SlotUs: c.SlotUs, Seed: c.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := wl.Der.Config
	c.Reconfig = &Delta{
		AtUs:        5000,
		UnicastSize: 2 * base.UnicastSize,
		MeterSize:   2 * base.MeterSize,
	}
	op := 1
	sw2 := 2
	a01, b01 := 0, 1
	a12, b12 := 1, 2
	c.Faults = []faults.Fault{
		{AtUs: 1000, Kind: faults.KindReconfigWedge, Op: &op},
		// Decoys: unrelated noise the shrinker should remove.
		{AtUs: 2000, Kind: faults.KindClockDrift, Switch: &sw2, DriftPPB: 5000},
		{AtUs: 3000, Kind: faults.KindLinkLoss, A: &a01, B: &b01, Prob: 0.1, DurationUs: 2000},
		{AtUs: 6000, Kind: faults.KindLinkCorrupt, A: &a12, B: &b12, Prob: 0.1, DurationUs: 2000},
		{AtUs: 9000, Kind: faults.KindLinkDown, A: &a12, B: &b12},
	}
	return c
}

func TestWedgeCaughtByAtomicityOracle(t *testing.T) {
	res, err := Execute(wedgeCase(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Oracle == OracleAtomicity {
			found = true
			if !strings.Contains(v.Detail, "partial") && !strings.Contains(v.Detail, "candidate") &&
				!strings.Contains(v.Detail, "pre-transaction") {
				t.Fatalf("atomicity detail uninformative: %q", v.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("wedge not caught; violations: %v", res.Violations)
	}
}

func TestShrinkWedgeToMinimalRepro(t *testing.T) {
	c := wedgeCase(t)
	res, err := Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("wedge case did not fail")
	}
	minimal, viols := Shrink(c, res.Violations, 64)
	if len(minimal.Faults) > 3 {
		t.Fatalf("shrunk to %d faults, want ≤ 3: %+v", len(minimal.Faults), minimal.Faults)
	}
	if !hasFaultKind(&minimal, faults.KindReconfigWedge) {
		t.Fatal("shrinker removed the causal wedge fault")
	}
	if minimal.Reconfig == nil {
		t.Fatal("shrinker removed the reconfiguration the wedge needs")
	}
	hasAtomicity := false
	for _, v := range viols {
		if v.Oracle == OracleAtomicity {
			hasAtomicity = true
		}
	}
	if !hasAtomicity {
		t.Fatalf("minimal case lost the atomicity violation: %v", viols)
	}

	// The minimal repro replays: write the artifact, load it back, and
	// re-execute the embedded case.
	dir := t.TempDir()
	path, err := WriteRepro(dir, "wedge", minimal, viols)
	if err != nil {
		t.Fatal(err)
	}
	repro, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(repro.TsnsimArgs) == 0 {
		t.Fatal("repro has no replay argv")
	}
	replay, err := Execute(repro.Case)
	if err != nil {
		t.Fatal(err)
	}
	reproduced := false
	for _, v := range replay.Violations {
		if v.Oracle == OracleAtomicity {
			reproduced = true
		}
	}
	if !reproduced {
		t.Fatalf("loaded repro does not reproduce: %v", replay.Violations)
	}
	// The fault sidecar is valid tsnsim -faults input.
	if _, err := os.Stat(filepath.Join(dir, "wedge.faults.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.Load(filepath.Join(dir, "wedge.faults.json")); err != nil {
		t.Fatalf("fault sidecar does not parse: %v", err)
	}
}

func TestCampaignFixedSeedReproducible(t *testing.T) {
	run := func() *Summary {
		sum, err := RunCampaign(Options{Profile: smallProfile(), Parallel: 4, ShrinkRuns: -1})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("campaign not reproducible:\n%s\n%s", aj, bj)
	}
	if a.Executed != a.Planned {
		t.Fatalf("executed %d of %d planned", a.Executed, a.Planned)
	}
	if a.DeterminismChecks == 0 {
		t.Fatal("no determinism checks ran")
	}
	if a.ParityChecks == 0 {
		t.Fatal("no partition-parity checks ran")
	}
	if len(a.Errors) > 0 {
		t.Fatalf("campaign errors: %v", a.Errors)
	}
}

// TestPartitionParityOracleHolds runs the oracle on a case that
// carries every feature the strip must remove (faults, watchdog,
// FRER): after stripping, the serial and 2-partition runs of the
// remaining workload must export byte-identical metrics.
func TestPartitionParityOracleHolds(t *testing.T) {
	a, b := 1, 2
	c := Case{
		Seed: 9, Topology: "bidir-ring", Switches: 6, TSFlows: 8, Hops: 3,
		WireSize: 128, SlotUs: 65, RCMbps: 20, BEMbps: 20, DurMs: 15,
		Watchdog: true, FRERFlows: 2,
		Faults: []faults.Fault{
			{AtUs: 3000, Kind: faults.KindLinkDown, A: &a, B: &b},
		},
	}
	if v := CheckPartitionParity(c, 2); v != nil {
		t.Fatalf("parity oracle violated on a clean dataplane: %s", v)
	}
	// The new scale topologies run through the same oracle.
	for _, topo := range []string{"mesh", "fattree"} {
		c := Case{Seed: 11, Topology: topo, Switches: 9, TSFlows: 12, Hops: 3,
			WireSize: 64, SlotUs: 65, DurMs: 10}
		if v := CheckPartitionParity(c, 2); v != nil {
			t.Fatalf("%s: parity oracle violated: %s", topo, v)
		}
	}
}

func TestCampaignBudgetStopsClaiming(t *testing.T) {
	sum, err := RunCampaign(Options{
		Profile: smallProfile(), Parallel: 2, ShrinkRuns: -1,
		Budget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 0 {
		t.Fatalf("executed %d cases under an expired budget", sum.Executed)
	}
}

func TestCampaignCatchesGeneratedWedge(t *testing.T) {
	p := smallProfile()
	p.MaxRuns = 8
	p.Topologies = []string{"bidir-ring"}
	p.ReconfigProb = 1
	p.WedgeProb = 1
	p.TransientProb = 0
	p.DeterminismEvery = 0
	sum, err := RunCampaign(Options{Profile: p, Parallel: 4, ShrinkRuns: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatal("campaign with wedge_prob=1 found no failures")
	}
	for _, f := range sum.Failures {
		hasAtomicity := false
		for _, v := range f.MinimalViolations {
			if v.Oracle == OracleAtomicity {
				hasAtomicity = true
			}
		}
		if !hasAtomicity {
			t.Fatalf("case %d failure lacks atomicity violation: %v",
				f.Result.Case.Index, f.MinimalViolations)
		}
		if len(f.Minimal.Faults) > 3 {
			t.Fatalf("case %d shrunk to %d faults", f.Result.Case.Index, len(f.Minimal.Faults))
		}
	}
}
