package chaos

// Crash-recovery campaign: kill-anywhere chaos for the durable control
// plane.
//
// Where the service campaign attacks one in-process svc.Service, the
// crash campaign drives a REAL tsnserve subprocess with -state-dir
// under reconfiguration load and kills it hard — SIGKILL at a seeded
// random moment, or deterministically via the WAL crash hook
// (-crash-after-wal-writes N) which exits the process immediately
// after its Nth WAL append: after an intent record, between intent and
// commit, after the commit append but before its fsync, optionally
// leaving a deliberately torn frame behind. Then it restarts the
// server on the same state directory and judges recovery:
//
//   - crash-accepted-then-lost: every reconfiguration a client ever
//     saw acknowledged with 2xx — across every previous life of the
//     process — is present in the recovered journal with the exact
//     acknowledged configuration, and journal sequence numbers are
//     gapless from 1;
//   - crash-journal-immutable: a journal entry, once observed, is
//     byte-identical in every later observation — recovery never
//     rewrites history;
//   - crash-live-is-tail: the recovered live configuration equals the
//     recovered journal's tail entry — an un-acked in-flight
//     transaction is either fully present (committed and journaled
//     before the kill) or fully absent, never half-applied.
//
// The kill plan is a pure function of (Seed, round), so a fixed seed
// replays the same mix of armed, torn and random-timing kills.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/svc"
	"github.com/tsnbuilder/tsnbuilder/internal/wal"
)

// Crash-recovery oracle names.
const (
	// OracleCrashAcceptedLost rejects a run where a 2xx-acknowledged
	// reconfiguration from any pre-kill life is missing from the
	// recovered journal, acknowledged with a different configuration
	// than recovered, or where recovered sequence numbers have gaps.
	OracleCrashAcceptedLost = "crash-accepted-then-lost"
	// OracleCrashJournalImmutable rejects a run where an already
	// observed journal entry changed across a restart.
	OracleCrashJournalImmutable = "crash-journal-immutable"
	// OracleCrashLiveIsTail rejects a run where the recovered live
	// configuration is not the recovered journal's tail — the partial
	// in-flight state signature.
	OracleCrashLiveIsTail = "crash-live-is-tail"
)

// CrashOptions configures one crash-recovery campaign.
type CrashOptions struct {
	// Seed fixes the kill plan (kill kinds, WAL-append offsets, delays,
	// request mix).
	Seed uint64
	// Kills is how many kill→recover rounds to run (default 50).
	Kills int
	// ServerPath is the tsnserve binary to run (required).
	ServerPath string
	// StateDir is the durable state directory shared by every life of
	// the server. Empty creates a fresh temp directory, removed on a
	// passing run and kept for inspection on a failing one.
	StateDir string
	// Budget bounds the campaign wall clock; rounds stop being started
	// once it is spent (in-flight rounds finish). Zero means 10 minutes.
	Budget time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// CrashSummary is a finished crash campaign's outcome.
type CrashSummary struct {
	// Planned/Kills are the requested and executed kill rounds (they
	// differ only when the budget expires early).
	Planned int `json:"planned"`
	Kills   int `json:"kills"`
	// ArmedKills died on the deterministic WAL-append crash hook;
	// TornKills additionally left a torn frame; RandomKills were
	// SIGKILLed at a seeded random moment under load.
	ArmedKills  int `json:"armed_kills"`
	TornKills   int `json:"torn_kills"`
	RandomKills int `json:"random_kills"`
	// Accepted counts 2xx reconfiguration acknowledgments across every
	// life of the server; Recovered counts journal entries observed
	// after the final recovery.
	Accepted  int `json:"accepted"`
	Recovered int `json:"recovered"`
	// StateDir is where the durable state lives (kept on failure).
	StateDir string `json:"state_dir"`
	// Violations holds every oracle failure.
	Violations []Violation `json:"violations,omitempty"`
	// Errors holds infrastructure failures (spawn, readiness timeout).
	Errors []string `json:"errors,omitempty"`
}

// Failed reports whether any oracle rejected the run or the drive
// itself broke.
func (s *CrashSummary) Failed() bool { return len(s.Violations) > 0 || len(s.Errors) > 0 }

// crashPlan is one round's kill decision, derived purely from the seed.
type crashPlan struct {
	armed bool          // die via the WAL crash hook instead of timer SIGKILL
	after int64         // armed: WAL appends before death (odd = between intent and commit)
	torn  bool          // armed: leave a torn frame behind
	delay time.Duration // random: SIGKILL after this much load time
}

// planRound derives round r's kill plan. Odd `after` values land
// between a transaction's intent and commit appends, even values land
// right after a commit append (before its fsync returns) — both sides
// of the durability boundary get hit many times in 50 rounds.
func planRound(rng *rand.Rand) crashPlan {
	switch rng.Intn(3) {
	case 0: // deterministic, clean cut
		return crashPlan{armed: true, after: 1 + int64(rng.Intn(8))}
	case 1: // deterministic with a torn tail behind it
		return crashPlan{armed: true, after: 1 + int64(rng.Intn(8)), torn: true}
	default: // kill -9 at a random moment under load
		return crashPlan{delay: time.Duration(5+rng.Intn(120)) * time.Millisecond}
	}
}

// crashDriver accumulates ground truth across every life of the server.
type crashDriver struct {
	client *http.Client

	mu         sync.Mutex
	acked      map[uint64]svc.ConfigJSON // every 2xx ack, any life
	seen       map[uint64]svc.ConfigJSON // every journal entry ever observed
	violations []Violation
	errors     []string
}

func (d *crashDriver) errf(format string, args ...any) {
	d.mu.Lock()
	d.errors = append(d.errors, fmt.Sprintf(format, args...))
	d.mu.Unlock()
}

// serverProc is one life of the tsnserve subprocess.
type serverProc struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
	done chan error
}

// crashFreePort grabs an ephemeral port and releases it for the
// subprocess to bind. The tiny race window is acceptable for a local
// campaign.
func crashFreePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

// startServer spawns one life of tsnserve on the shared state dir.
func startServer(serverPath, stateDir string, plan crashPlan) (*serverProc, error) {
	port, err := crashFreePort()
	if err != nil {
		return nil, fmt.Errorf("free port: %w", err)
	}
	addr := "127.0.0.1:" + strconv.Itoa(port)
	args := []string{
		"-addr", addr,
		"-state-dir", stateDir,
		// A small managed network keeps each life's build time in the
		// low milliseconds; it must be identical across lives — the
		// state dir is pinned to the workload's parameter hash.
		"-switches", "2", "-ts-flows", "4",
		"-checkpoint-every", "4", // rotate often: kills land in every store phase
	}
	if plan.armed {
		args = append(args, "-crash-after-wal-writes", strconv.FormatInt(plan.after, 10))
		if plan.torn {
			args = append(args, "-crash-torn")
		}
	}
	p := &serverProc{
		cmd:  exec.Command(serverPath, args...),
		base: "http://" + addr,
		out:  &bytes.Buffer{},
		done: make(chan error, 1),
	}
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", serverPath, err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	return p, nil
}

// kill SIGKILLs the life and waits for it to reap.
func (p *serverProc) kill() {
	_ = p.cmd.Process.Kill()
	<-p.done
}

// waitExit waits for a self-terminating (armed) life to die, escalating
// to SIGKILL after the timeout.
func (p *serverProc) waitExit(timeout time.Duration) (selfExit bool) {
	select {
	case <-p.done:
		return true
	case <-time.After(timeout):
		p.kill()
		return false
	}
}

// waitReady polls /readyz until the server answers 200 (replay done) or
// the deadline passes. 503 recovering responses along the way are the
// expected shape of the window.
func (d *crashDriver) waitReady(p *serverProc, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		select {
		case err := <-p.done:
			return fmt.Errorf("server died before ready (%v); output:\n%s", err, tail(p.out.String(), 1200))
		default:
		}
		resp, err := d.client.Get(p.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("server not ready within %v; output:\n%s", timeout, tail(p.out.String(), 1200))
}

// tail returns at most the last n bytes of s.
func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}

func (d *crashDriver) getJSON(base, path string, v any) error {
	resp, err := d.client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// verifyRecovery fetches the recovered journal + live config and holds
// them to the three crash oracles. Returns the journal length.
func (d *crashDriver) verifyRecovery(p *serverProc, round int, initial *svc.ConfigJSON) int {
	var journal []svc.JournalEntry
	if err := d.getJSON(p.base, "/v1/journal", &journal); err != nil {
		d.errf("round %d: fetch journal: %v", round, err)
		return 0
	}
	var live svc.ConfigJSON
	if err := d.getJSON(p.base, "/v1/config", &live); err != nil {
		d.errf("round %d: fetch config: %v", round, err)
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	recovered := make(map[uint64]svc.ConfigJSON, len(journal))
	for i, e := range journal {
		if e.Seq != uint64(i)+1 {
			d.violations = append(d.violations, Violation{
				Oracle: OracleCrashAcceptedLost,
				Detail: fmt.Sprintf("round %d: journal entry %d has seq %d: sequence gap", round, i, e.Seq),
			})
		}
		recovered[e.Seq] = e.Config
		if prev, ok := d.seen[e.Seq]; ok && prev != e.Config {
			d.violations = append(d.violations, Violation{
				Oracle: OracleCrashJournalImmutable,
				Detail: fmt.Sprintf("round %d: journal seq %d changed across restart: %+v became %+v", round, e.Seq, prev, e.Config),
			})
		}
		d.seen[e.Seq] = e.Config
	}
	// Entries once observed can only be missing if the whole recovered
	// journal shrank — which the acked check below and the gapless check
	// above would surface; acked entries are the binding contract.
	for seq, cfg := range d.acked {
		got, ok := recovered[seq]
		if !ok {
			d.violations = append(d.violations, Violation{
				Oracle: OracleCrashAcceptedLost,
				Detail: fmt.Sprintf("round %d: 2xx-acknowledged seq %d missing after recovery", round, seq),
			})
			continue
		}
		if got != cfg {
			d.violations = append(d.violations, Violation{
				Oracle: OracleCrashAcceptedLost,
				Detail: fmt.Sprintf("round %d: seq %d recovered with different config than acknowledged", round, seq),
			})
		}
	}
	want := *initial
	if len(journal) > 0 {
		want = journal[len(journal)-1].Config
	}
	if live != want {
		d.violations = append(d.violations, Violation{
			Oracle: OracleCrashLiveIsTail,
			Detail: fmt.Sprintf("round %d: recovered live config is not the journal tail (live %+v, want %+v)", round, live, want),
		})
	}
	return len(journal)
}

// drive fires grow-reconfigurations at the life until stop closes, the
// request cap is hit, or the server dies under it. Every 2xx is
// recorded as an ack the kill must not erase.
func (d *crashDriver) drive(p *serverProc, rng *rand.Rand, initial svc.ConfigJSON, stop <-chan struct{}, maxReqs int) {
	for i := 0; i < maxReqs; i++ {
		select {
		case <-stop:
			return
		default:
		}
		var delta svc.ReconfigRequest
		// Absolute target sizes cycle over small multiples of the
		// initial configuration: always valid grows-or-sideways moves,
		// bounded no matter how many lives the campaign runs.
		m := 2 + rng.Intn(4)
		switch rng.Intn(3) {
		case 0:
			delta.UnicastSize = initial.UnicastSize * m
		case 1:
			delta.MeterSize = initial.MeterSize * m
		default:
			delta.ClassSize = initial.ClassSize * m
		}
		body, _ := json.Marshal(delta)
		resp, err := d.client.Post(p.base+"/v1/reconfig", "application/json", bytes.NewReader(body))
		if err != nil {
			// The kill landed mid-request: expected, not an error.
			return
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var rr svc.ReconfigResponse
		if err := json.Unmarshal(rb, &rr); err != nil {
			d.errf("reconfig 200 with unparseable body: %v", err)
			continue
		}
		d.mu.Lock()
		if prev, dup := d.acked[rr.Seq]; dup && prev != rr.Config {
			d.violations = append(d.violations, Violation{
				Oracle: OracleCrashAcceptedLost,
				Detail: fmt.Sprintf("seq %d acknowledged twice with different configs", rr.Seq),
			})
		}
		d.acked[rr.Seq] = rr.Config
		d.mu.Unlock()
	}
}

// RunCrashCampaign runs the kill→recover loop: each round starts a
// fresh life of tsnserve on the shared state directory, verifies the
// previous kill recovered cleanly, drives load and kills again. A
// final life verifies the last kill and is drained gracefully.
func RunCrashCampaign(opts CrashOptions) (*CrashSummary, error) {
	if opts.ServerPath == "" {
		return nil, fmt.Errorf("chaos: crash campaign needs ServerPath (a tsnserve binary)")
	}
	if opts.Kills <= 0 {
		opts.Kills = 50
	}
	if opts.Budget <= 0 {
		opts.Budget = 10 * time.Minute
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stateDir := opts.StateDir
	ownDir := false
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "tsn-crash-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: state dir: %w", err)
		}
		stateDir, ownDir = dir, true
	}

	d := &crashDriver{
		client: &http.Client{Timeout: 10 * time.Second},
		acked:  make(map[uint64]svc.ConfigJSON),
		seen:   make(map[uint64]svc.ConfigJSON),
	}
	sum := &CrashSummary{Planned: opts.Kills, StateDir: stateDir}
	rng := rand.New(rand.NewSource(int64(opts.Seed)))
	ctx, cancel := context.WithTimeout(context.Background(), opts.Budget)
	defer cancel()

	var initial svc.ConfigJSON
	haveInitial := false
	logf("crash campaign: %d kills, seed %d, state %s", opts.Kills, opts.Seed, stateDir)
	for round := 0; round < opts.Kills; round++ {
		if ctx.Err() != nil {
			logf("budget spent after %d/%d kills", round, opts.Kills)
			break
		}
		plan := planRound(rng)
		p, err := startServer(opts.ServerPath, stateDir, plan)
		if err != nil {
			d.errf("round %d: %v", round, err)
			break
		}
		if err := d.waitReady(p, 30*time.Second); err != nil {
			d.errf("round %d: %v", round, err)
			p.kill()
			break
		}
		if !haveInitial {
			// The very first life's pre-commit configuration anchors the
			// live-is-tail oracle for empty journals.
			if err := d.getJSON(p.base, "/v1/config", &initial); err != nil {
				d.errf("round 0: fetch initial config: %v", err)
				p.kill()
				break
			}
			haveInitial = true
		}
		d.verifyRecovery(p, round, &initial)

		stop := make(chan struct{})
		driveDone := make(chan struct{})
		go func() {
			defer close(driveDone)
			d.drive(p, rand.New(rand.NewSource(int64(opts.Seed)*7_919+int64(round))), initial, stop, 40)
		}()
		if plan.armed {
			// The crash hook fires on the Nth WAL append: the load above
			// is what walks it there.
			if p.waitExit(20 * time.Second) {
				sum.ArmedKills++
				if plan.torn {
					sum.TornKills++
				}
				if code := p.cmd.ProcessState.ExitCode(); code != CrashHookExitCode {
					d.errf("round %d: armed life exited %d, want %d; output:\n%s",
						round, code, CrashHookExitCode, tail(p.out.String(), 1200))
				}
			} else {
				d.errf("round %d: armed crash (after %d appends) never fired", round, plan.after)
			}
		} else {
			time.Sleep(plan.delay)
			p.kill()
			sum.RandomKills++
		}
		close(stop)
		<-driveDone
		sum.Kills++
		if (round+1)%10 == 0 {
			logf("%d/%d kills (%d armed, %d torn, %d random), %d acks so far",
				round+1, opts.Kills, sum.ArmedKills, sum.TornKills, sum.RandomKills, len(d.acked))
		}
	}

	// The final life: verify the last kill recovered, then drain it
	// gracefully — the clean-shutdown path gets judged by the same
	// oracles as every crash.
	if haveInitial {
		p, err := startServer(opts.ServerPath, stateDir, crashPlan{})
		if err != nil {
			d.errf("final life: %v", err)
		} else if err := d.waitReady(p, 30*time.Second); err != nil {
			d.errf("final life: %v", err)
			p.kill()
		} else {
			sum.Recovered = d.verifyRecovery(p, opts.Kills, &initial)
			_ = p.cmd.Process.Signal(syscall.SIGTERM)
			if !p.waitExit(20 * time.Second) {
				d.errf("final life: graceful drain timed out")
			}
		}
	}

	sum.Accepted = len(d.acked)
	sum.Violations = d.violations
	sum.Errors = d.errors
	if ownDir && !sum.Failed() {
		_ = os.RemoveAll(stateDir)
	}
	logf("crash campaign: %d kills, %d acks, %d journal entries recovered, %d violations, %d errors",
		sum.Kills, sum.Accepted, sum.Recovered, len(sum.Violations), len(sum.Errors))
	return sum, nil
}

// CrashHookExitCode re-exports the WAL crash hook's exit code so the
// campaign's callers can distinguish armed deaths in logs.
const CrashHookExitCode = wal.CrashExitCode
