package chaos

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildTsnserve compiles the real daemon binary the crash campaign
// kills — the campaign's whole point is that recovery is judged across
// process boundaries, not inside one address space.
func buildTsnserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tsnserve")
	cmd := exec.Command("go", "build", "-o", bin, "github.com/tsnbuilder/tsnbuilder/cmd/tsnserve")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build tsnserve: %v\n%s", err, out)
	}
	return bin
}

// TestCrashCampaign runs a scaled-down fixed-seed kill→recover loop:
// every armed, torn and random kill point must recover with zero
// oracle violations. The full 50-kill campaign runs in CI via
// `tsnserve -crash-chaos` (make crash).
func TestCrashCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash campaign skipped in -short")
	}
	bin := buildTsnserve(t)
	kills := 8
	if os.Getenv("TSN_CRASH_FULL") != "" {
		kills = 50
	}
	sum, err := RunCrashCampaign(CrashOptions{
		Seed:       42,
		Kills:      kills,
		ServerPath: bin,
		Budget:     4 * time.Minute,
		Log:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sum.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, e := range sum.Errors {
		t.Errorf("error: %s", e)
	}
	if sum.Kills != kills {
		t.Errorf("executed %d/%d kills (budget too tight?)", sum.Kills, kills)
	}
	// The fixed seed must exercise both kill families and the torn-tail
	// recovery path, and the campaign must have real acks to protect.
	if sum.ArmedKills == 0 || sum.RandomKills == 0 || sum.TornKills == 0 {
		t.Errorf("kill mix degenerate: %d armed, %d torn, %d random",
			sum.ArmedKills, sum.TornKills, sum.RandomKills)
	}
	if sum.Accepted == 0 {
		t.Error("campaign never got a 2xx ack: oracles judged nothing")
	}
	if sum.Recovered == 0 {
		t.Error("final recovery journal empty despite acks")
	}
	if sum.Failed() {
		t.Fatalf("crash campaign failed (state kept at %s)", sum.StateDir)
	}
}
