package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/tsnbuilder/tsnbuilder/internal/faults"
)

// Repro is the top-level minimal-repro artifact: the shrunk case, the
// violations it reproduces, and the exact tsnsim invocation that
// replays it (the fault script and reconfig delta ride in sidecar
// files next to the artifact).
type Repro struct {
	Case       Case        `json:"case"`
	Violations []Violation `json:"violations"`
	// TsnsimArgs is the argv tail replaying this case:
	// `tsnsim <args...>` from the artifact's directory.
	TsnsimArgs []string `json:"tsnsim_args"`
}

// TsnsimArgs renders the flag list that replays c through plain
// tsnsim. faultsFile/reconfigFile are the sidecar paths to reference
// ("" when the case has none).
func (c *Case) TsnsimArgs(faultsFile, reconfigFile string) []string {
	args := []string{
		"-topology", c.Topology,
		"-switches", strconv.Itoa(c.Switches),
		"-flows", strconv.Itoa(c.TSFlows),
		"-hops", strconv.Itoa(c.Hops),
		"-size", strconv.Itoa(c.WireSize),
		"-slot", strconv.Itoa(c.SlotUs),
		"-duration", strconv.Itoa(c.DurMs),
		"-seed", strconv.FormatUint(c.Seed, 10),
		"-no-gptp",
	}
	if c.RCMbps > 0 {
		args = append(args, "-rc", strconv.Itoa(c.RCMbps))
	}
	if c.BEMbps > 0 {
		args = append(args, "-be", strconv.Itoa(c.BEMbps))
	}
	if c.FRERFlows > 0 {
		args = append(args, "-frer", strconv.Itoa(c.FRERFlows))
	}
	if c.Watchdog {
		args = append(args, "-watchdog")
	}
	if c.RetryMax > 0 {
		args = append(args, "-reconfig-retries", strconv.Itoa(c.RetryMax),
			"-reconfig-backoff", fmt.Sprintf("%dus", c.RetryBackoffUs))
	}
	if faultsFile != "" {
		args = append(args, "-faults", faultsFile)
	}
	if reconfigFile != "" {
		args = append(args, "-reconfig", reconfigFile)
	}
	return args
}

// reconfigFile mirrors tsnsim's -reconfig JSON: pointer fields so only
// the delta's changed resources appear in the file.
type reconfigFile struct {
	AtUs        int64 `json:"at_us"`
	UnicastSize *int  `json:"unicast_size,omitempty"`
	ClassSize   *int  `json:"class_size,omitempty"`
	MeterSize   *int  `json:"meter_size,omitempty"`
	QueueDepth  *int  `json:"queue_depth,omitempty"`
	BufferNum   *int  `json:"buffer_num,omitempty"`
}

func reconfigFileFrom(d *Delta) *reconfigFile {
	rf := &reconfigFile{AtUs: d.AtUs}
	opt := func(v int) *int {
		if v > 0 {
			return &v
		}
		return nil
	}
	rf.UnicastSize = opt(d.UnicastSize)
	rf.ClassSize = opt(d.ClassSize)
	rf.MeterSize = opt(d.MeterSize)
	rf.QueueDepth = opt(d.QueueDepth)
	rf.BufferNum = opt(d.BufferNum)
	return rf
}

// WriteRepro writes the minimal-repro artifact set for one failure
// into dir: <name>.repro.json (case + violations + replay argv), and
// when applicable <name>.faults.json / <name>.reconfig.json sidecars
// that tsnsim -faults / -reconfig load directly. It returns the repro
// file's path.
func WriteRepro(dir, name string, c Case, violations []Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	writeJSON := func(path string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	var faultsName, reconfigName string
	if len(c.Faults) > 0 {
		faultsName = name + ".faults.json"
		sc := faults.Scenario{Faults: c.Faults}
		if err := writeJSON(filepath.Join(dir, faultsName), &sc); err != nil {
			return "", err
		}
	}
	if c.Reconfig != nil && !c.Reconfig.empty() {
		reconfigName = name + ".reconfig.json"
		if err := writeJSON(filepath.Join(dir, reconfigName), reconfigFileFrom(c.Reconfig)); err != nil {
			return "", err
		}
	}
	repro := Repro{
		Case:       c,
		Violations: violations,
		TsnsimArgs: c.TsnsimArgs(faultsName, reconfigName),
	}
	path := filepath.Join(dir, name+".repro.json")
	if err := writeJSON(path, &repro); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads a repro artifact back for -chaos-replay.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("chaos repro %s: %w", path, err)
	}
	return &r, nil
}
