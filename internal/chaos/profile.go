package chaos

import (
	"encoding/json"
	"fmt"
	"os"
)

// Profile bounds the scenario generator: which topologies and scales
// to draw from, how hostile the fault scripts get, and how often the
// expensive cross-checks (replay determinism) run. A profile plus a
// seed is a complete, reproducible campaign definition.
type Profile struct {
	// MaxRuns caps the campaign when no explicit run count is given.
	MaxRuns int `json:"max_runs"`
	// Topologies to draw from (subset of star, ring, bidir-ring,
	// linear, tree).
	Topologies []string `json:"topologies"`
	// MinSwitches/MaxSwitches bound the node count (per-topology floors
	// still apply: rings need 3, trees 5).
	MinSwitches int `json:"min_switches"`
	MaxSwitches int `json:"max_switches"`
	// MinTSFlows/MaxTSFlows bound the TS flow count.
	MinTSFlows int `json:"min_ts_flows"`
	MaxTSFlows int `json:"max_ts_flows"`
	// MaxHops caps each TS flow's path length.
	MaxHops int `json:"max_hops"`
	// MinDurMs/MaxDurMs bound the measurement window.
	MinDurMs int `json:"min_dur_ms"`
	MaxDurMs int `json:"max_dur_ms"`
	// MaxFaults caps the fault script length.
	MaxFaults int `json:"max_faults"`
	// RCMaxMbps/BEMaxMbps cap the background injector rates (0 allows
	// none of that class).
	RCMaxMbps int `json:"rc_max_mbps"`
	BEMaxMbps int `json:"be_max_mbps"`
	// FRERProb is the chance a bidir-ring case runs with FRER; half of
	// those are generated FRER-covered (zero-loss oracle armed).
	FRERProb float64 `json:"frer_prob"`
	// ReconfigProb is the chance a case carries a mid-run
	// reconfiguration delta.
	ReconfigProb float64 `json:"reconfig_prob"`
	// WatchdogProb is the chance a case runs the invariant watchdog.
	WatchdogProb float64 `json:"watchdog_prob"`
	// TransientProb is the chance a reconfiguring case also injects a
	// transient mid-commit staging failure (which the retry policy must
	// absorb).
	TransientProb float64 `json:"transient_prob"`
	// WedgeProb is the chance a reconfiguring case injects the wedged
	// mid-commit failure — the deliberately seeded atomicity bug. Keep
	// it zero outside oracle self-tests.
	WedgeProb float64 `json:"wedge_prob"`
	// DeterminismEvery runs the same-seed replay cross-check on every
	// n-th case (0 disables).
	DeterminismEvery int `json:"determinism_every"`
	// ParityEvery runs the partition-parity cross-check (serial vs
	// 2-partition metrics byte-compare, faults/reconfig/watchdog/FRER
	// stripped) on every n-th case (0 disables).
	ParityEvery int `json:"parity_every"`
	// RetryMax/RetryBackoffUs configure the reconfig retry policy for
	// reconfiguring cases.
	RetryMax       int `json:"retry_max"`
	RetryBackoffUs int `json:"retry_backoff_us"`
	// Seed is the campaign master seed.
	Seed uint64 `json:"seed"`
}

// DefaultProfile is the stock campaign: every topology, modest scales
// (cases must stay cheap enough to run hundreds under a CI budget),
// full fault menu, reconfig plus transient staging failures, replay
// and partition-parity cross-checks every 8th case.
func DefaultProfile() Profile {
	return Profile{
		MaxRuns:          256,
		Topologies:       []string{"star", "ring", "bidir-ring", "linear", "tree", "mesh", "fattree"},
		MinSwitches:      3,
		MaxSwitches:      8,
		MinTSFlows:       4,
		MaxTSFlows:       48,
		MaxHops:          4,
		MinDurMs:         20,
		MaxDurMs:         60,
		MaxFaults:        6,
		RCMaxMbps:        100,
		BEMaxMbps:        100,
		FRERProb:         0.6,
		ReconfigProb:     0.4,
		WatchdogProb:     0.5,
		TransientProb:    0.5,
		WedgeProb:        0,
		DeterminismEvery: 8,
		ParityEvery:      8,
		RetryMax:         3,
		RetryBackoffUs:   200,
		Seed:             1,
	}
}

// Validate rejects profiles the generator cannot draw from.
func (p *Profile) Validate() error {
	if p.MaxRuns < 1 {
		return fmt.Errorf("chaos: max_runs %d < 1", p.MaxRuns)
	}
	if len(p.Topologies) == 0 {
		return fmt.Errorf("chaos: no topologies")
	}
	known := map[string]bool{"star": true, "ring": true, "bidir-ring": true, "linear": true, "tree": true, "mesh": true, "fattree": true}
	for _, t := range p.Topologies {
		if !known[t] {
			return fmt.Errorf("chaos: unknown topology %q", t)
		}
	}
	if p.MinSwitches < 2 || p.MaxSwitches < p.MinSwitches {
		return fmt.Errorf("chaos: switch range [%d,%d] invalid", p.MinSwitches, p.MaxSwitches)
	}
	if p.MinTSFlows < 1 || p.MaxTSFlows < p.MinTSFlows {
		return fmt.Errorf("chaos: ts-flow range [%d,%d] invalid", p.MinTSFlows, p.MaxTSFlows)
	}
	if p.MaxHops < 2 {
		return fmt.Errorf("chaos: max_hops %d < 2", p.MaxHops)
	}
	if p.MinDurMs < 5 || p.MaxDurMs < p.MinDurMs {
		return fmt.Errorf("chaos: duration range [%d,%d]ms invalid (min 5ms)", p.MinDurMs, p.MaxDurMs)
	}
	if p.MaxFaults < 0 {
		return fmt.Errorf("chaos: max_faults %d negative", p.MaxFaults)
	}
	for name, pr := range map[string]float64{
		"frer_prob": p.FRERProb, "reconfig_prob": p.ReconfigProb,
		"watchdog_prob": p.WatchdogProb, "transient_prob": p.TransientProb,
		"wedge_prob": p.WedgeProb,
	} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("chaos: %s %v outside [0,1]", name, pr)
		}
	}
	if p.DeterminismEvery < 0 {
		return fmt.Errorf("chaos: determinism_every %d negative", p.DeterminismEvery)
	}
	if p.ParityEvery < 0 {
		return fmt.Errorf("chaos: parity_every %d negative", p.ParityEvery)
	}
	if p.RetryMax < 0 || p.RetryBackoffUs < 0 {
		return fmt.Errorf("chaos: retry policy (%d, %dµs) negative", p.RetryMax, p.RetryBackoffUs)
	}
	return nil
}

// LoadProfile parses a profile file strictly: unknown fields are
// rejected so a typo'd knob cannot silently fall back to a default.
func LoadProfile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("chaos profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("chaos profile %s: %w", path, err)
	}
	return p, nil
}
