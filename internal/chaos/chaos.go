// Package chaos is the randomized campaign engine over the testbed: it
// generates seeded scenarios (topology, flow mix, fault script,
// mid-run reconfiguration), fans them out across a worker pool under a
// wall-clock budget, checks a suite of invariant oracles after every
// run, and delta-debugs any failing scenario down to a minimal
// replayable repro.
//
// Determinism is the spine of the design. A campaign is a pure
// function of its profile: case i derives its RNG stream from
// (profile.Seed, i) alone, every case runs in its own sim.Engine with
// its own metrics registry, and results are collected in case order —
// so the same profile always yields the same scenarios and the same
// verdicts regardless of worker count or which runs a budget cut off
// mid-sweep (a budget only truncates the tail, never reorders it).
// That is also what makes a shrunk failure trustworthy: the minimal
// case replays through plain tsnsim flags and fault/reconfig files,
// byte-for-byte the same workload the campaign ran.
package chaos

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Case is one fully-specified chaos scenario. Every field is
// expressible as a tsnsim flag or sidecar file, which is what makes
// the minimal-repro artifact replayable outside the campaign.
type Case struct {
	// Index is the case's position in the campaign; with the campaign
	// seed it fully determines the scenario.
	Index int `json:"index"`
	// Seed is the per-case workload seed (also the fault RNG seed).
	Seed uint64 `json:"seed"`

	Topology string `json:"topology"`
	Switches int    `json:"switches"`
	TSFlows  int    `json:"ts_flows"`
	Hops     int    `json:"hops"`
	WireSize int    `json:"wire_size"`
	SlotUs   int    `json:"slot_us"`
	RCMbps   int    `json:"rc_mbps"`
	BEMbps   int    `json:"be_mbps"`
	// FRERFlows > 0 makes the first n TS flows 802.1CB-redundant
	// (bidir-ring only).
	FRERFlows int `json:"frer_flows"`
	// FRERCovered marks a case whose every TS flow is redundant and
	// whose fault script only breaks one ring cable (a cable pull downs
	// both directions, and the disjoint member-stream arcs share no
	// cable) — the single-point-of-failure class FRER provably masks,
	// so the zero-loss oracle applies.
	FRERCovered bool `json:"frer_covered"`
	// DurMs is the measurement window in milliseconds (no warmup: chaos
	// cases run with perfect clocks).
	DurMs int `json:"dur_ms"`
	// Watchdog enables the invariant watchdog and degradation ladder.
	Watchdog bool `json:"watchdog"`
	// RetryMax/RetryBackoffUs configure the reconfiguration engine's
	// bounded retry of transiently-failed commits.
	RetryMax       int `json:"retry_max,omitempty"`
	RetryBackoffUs int `json:"retry_backoff_us,omitempty"`

	// Faults is the fault script, in faults.Scenario form.
	Faults []faults.Fault `json:"faults,omitempty"`
	// Reconfig, when set, applies a mid-run live reconfiguration.
	Reconfig *Delta `json:"reconfig,omitempty"`
}

// Delta is a mid-run reconfiguration request: the begin instant plus
// absolute new values for the resizable resources (zero = keep live
// value). Field names match tsnsim's -reconfig JSON so a case's delta
// serializes directly into a replay file.
type Delta struct {
	AtUs        int64 `json:"at_us"`
	UnicastSize int   `json:"unicast_size,omitempty"`
	ClassSize   int   `json:"class_size,omitempty"`
	MeterSize   int   `json:"meter_size,omitempty"`
	QueueDepth  int   `json:"queue_depth,omitempty"`
	BufferNum   int   `json:"buffer_num,omitempty"`
}

// Candidate overlays the delta's non-zero fields on the live config.
func (d *Delta) Candidate(cfg core.Config) core.Config {
	if d.UnicastSize > 0 {
		cfg.UnicastSize = d.UnicastSize
	}
	if d.ClassSize > 0 {
		cfg.ClassSize = d.ClassSize
	}
	if d.MeterSize > 0 {
		cfg.MeterSize = d.MeterSize
	}
	if d.QueueDepth > 0 {
		cfg.QueueDepth = d.QueueDepth
	}
	if d.BufferNum > 0 {
		cfg.BufferNum = d.BufferNum
	}
	return cfg
}

// empty reports a delta that changes nothing.
func (d *Delta) empty() bool {
	return d.UnicastSize == 0 && d.ClassSize == 0 && d.MeterSize == 0 &&
		d.QueueDepth == 0 && d.BufferNum == 0
}

// Violation is one oracle failure on one case.
type Violation struct {
	// Oracle names the invariant that failed (see oracle.go).
	Oracle string `json:"oracle"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Oracle, v.Detail) }

// Result is one executed case's verdict.
type Result struct {
	Case       Case        `json:"case"`
	Violations []Violation `json:"violations,omitempty"`
	// MetricsJSON is the run's full telemetry snapshot, byte-comparable
	// across replays (the determinism oracle's evidence).
	MetricsJSON []byte `json:"-"`
	// Events is how many simulation events the run executed.
	Events uint64 `json:"events"`
}

// Failed reports whether any oracle rejected the run.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// durUs returns the case duration in microseconds.
func (c *Case) durUs() int64 { return int64(c.DurMs) * 1000 }

// dur returns the case duration as simulated time.
func (c *Case) dur() sim.Time { return sim.Time(c.DurMs) * sim.Millisecond }
