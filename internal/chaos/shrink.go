package chaos

import (
	"bytes"

	"github.com/tsnbuilder/tsnbuilder/internal/faults"
)

// The automatic failure shrinker: delta debugging over the parts of a
// case that can be removed without changing what it means — faults,
// the reconfig delta, flow count, background load, duration. A
// candidate reduction is kept only if re-executing it still violates
// one of the original case's oracles, so the minimal case fails for
// the same reason, not a new one.

// shrinker carries the predicate state: which oracles count as a
// reproduction and how many executions remain.
type shrinker struct {
	oracles map[string]bool
	runs    int
}

// reproduces re-executes c and reports whether it still violates one
// of the target oracles. Out of budget or erroring candidates count as
// non-reproducing, so shrinking degrades to keeping the larger case —
// never to shipping a repro that does not repro.
func (s *shrinker) reproduces(c Case) bool {
	if s.runs <= 0 {
		return false
	}
	s.runs--
	res, err := Execute(c)
	if err != nil {
		return false
	}
	for _, v := range res.Violations {
		if s.oracles[v.Oracle] {
			return true
		}
	}
	// The determinism oracle is campaign-level (it needs two runs);
	// reproduce it here the same way.
	if s.oracles[OracleDeterminism] && s.runs > 0 {
		s.runs--
		replay, rerr := Execute(c)
		if rerr == nil && !bytes.Equal(res.MetricsJSON, replay.MetricsJSON) {
			return true
		}
	}
	return false
}

// Shrink minimizes c while it still reproduces at least one of the
// given violations' oracles, spending at most maxRuns re-executions.
// It returns the minimal case and the violations it reproduces. When
// nothing can be removed (or the budget is too small to verify any
// reduction), the original case comes back unchanged.
func Shrink(c Case, violations []Violation, maxRuns int) (Case, []Violation) {
	s := &shrinker{oracles: make(map[string]bool), runs: maxRuns}
	for _, v := range violations {
		s.oracles[v.Oracle] = true
	}
	cur := c
	for changed := true; changed && s.runs > 0; {
		changed = false
		// Drop faults one at a time, scanning until a full pass removes
		// nothing. Linear rather than classic ddmin halving: scripts
		// are short (≤ MaxFaults), so one pass is cheaper than the
		// bookkeeping and stays deterministic.
		for i := 0; i < len(cur.Faults) && s.runs > 0; i++ {
			cand := cur
			cand.Faults = append(append([]faults.Fault{}, cur.Faults[:i]...), cur.Faults[i+1:]...)
			if s.reproduces(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Drop the reconfiguration delta (and its retry policy).
		if cur.Reconfig != nil && s.runs > 0 {
			cand := cur
			cand.Reconfig = nil
			cand.RetryMax, cand.RetryBackoffUs = 0, 0
			if s.reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		// Halve the TS flow count.
		if cur.TSFlows > 1 && s.runs > 0 {
			cand := cur
			cand.TSFlows = cur.TSFlows / 2
			if cand.FRERFlows > cand.TSFlows {
				cand.FRERFlows = cand.TSFlows
			}
			if s.reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		// Zero the background load.
		if (cur.RCMbps > 0 || cur.BEMbps > 0) && s.runs > 0 {
			cand := cur
			cand.RCMbps, cand.BEMbps = 0, 0
			if s.reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		// Halve the duration when every scheduled event still fits.
		if half := cur.DurMs / 2; half >= 5 && fits(&cur, half) && s.runs > 0 {
			cand := cur
			cand.DurMs = half
			if s.reproduces(cand) {
				cur = cand
				changed = true
			}
		}
	}
	// Report the violations the minimal case actually reproduces. The
	// budget may be exhausted; fall back to the original violations
	// filtered by target oracles rather than re-running.
	if res, err := Execute(cur); err == nil && len(res.Violations) > 0 {
		return cur, res.Violations
	}
	return cur, violations
}

// fits reports whether every fault window and the reconfig commit
// would land comfortably inside a run of durMs.
func fits(c *Case, durMs int) bool {
	limit := int64(durMs)*1000 - 2000
	for i := range c.Faults {
		f := c.Faults[i]
		end := f.AtUs
		switch {
		case f.DurationUs > 0:
			end += f.DurationUs
		case f.PeriodUs > 0:
			end += f.PeriodUs * int64(f.Count)
		}
		if end > limit {
			return false
		}
	}
	if c.Reconfig != nil && c.Reconfig.AtUs+int64(c.RetryMax+1)*maxInt64(int64(c.RetryBackoffUs), 2*int64(c.SlotUs)) > limit {
		return false
	}
	return true
}
