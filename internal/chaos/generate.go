package chaos

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// caseSeed derives case i's RNG seed from the campaign seed with a
// splitmix64-style mix, so adjacent indices get uncorrelated streams
// and the mapping is stable across releases (it is part of the repro
// format: a case regenerates from (profile, index) alone).
func caseSeed(campaign uint64, index int) uint64 {
	z := campaign + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// topoFloor is the minimum switch count each topology builds with.
func topoFloor(topo string) int {
	switch topo {
	case "ring", "bidir-ring":
		return 3
	case "tree":
		return 5
	default: // star, linear
		return 2
	}
}

// rangeInt draws uniformly from [lo, hi].
func rangeInt(rng *sim.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Generate derives case index of the campaign described by p. The
// same (p, index) always yields the same case; generation draws every
// random decision from one per-case stream in a fixed order. The
// returned case has already passed faults.Scenario validation.
func Generate(p Profile, index int) (Case, error) {
	rng := sim.NewRand(caseSeed(p.Seed, index))
	c := Case{
		Index:    index,
		Seed:     caseSeed(p.Seed, index) | 1,
		Topology: p.Topologies[rng.Intn(len(p.Topologies))],
		WireSize: []int{64, 128, 256, 512}[rng.Intn(4)],
		SlotUs:   []int{65, 130}[rng.Intn(2)],
		DurMs:    rangeInt(rng, p.MinDurMs, p.MaxDurMs),
	}
	lo := p.MinSwitches
	if f := topoFloor(c.Topology); lo < f {
		lo = f
	}
	hi := p.MaxSwitches
	if hi < lo {
		hi = lo
	}
	c.Switches = rangeInt(rng, lo, hi)
	c.TSFlows = rangeInt(rng, p.MinTSFlows, p.MaxTSFlows)
	c.Hops = rangeInt(rng, 2, min(p.MaxHops, c.Switches))
	if p.RCMaxMbps > 0 && rng.Float64() < 0.5 {
		c.RCMbps = rangeInt(rng, 10, p.RCMaxMbps)
	}
	if p.BEMaxMbps > 0 && rng.Float64() < 0.5 {
		c.BEMbps = rangeInt(rng, 10, p.BEMaxMbps)
	}
	c.Watchdog = rng.Float64() < p.WatchdogProb

	if c.Topology == "bidir-ring" && rng.Float64() < p.FRERProb {
		if rng.Float64() < 0.5 {
			// Covered case: every TS flow redundant, faults restricted
			// below to one-directional ring-trunk failures.
			if c.TSFlows > workload.MaxFRERFlows {
				c.TSFlows = workload.MaxFRERFlows
			}
			c.FRERFlows = c.TSFlows
			c.FRERCovered = true
		} else {
			c.FRERFlows = rangeInt(rng, 1, min(c.TSFlows, workload.MaxFRERFlows))
		}
	}

	// Build the workload once at generation time: it proves the case
	// constructs, and supplies the base configuration the reconfig
	// delta doubles from.
	wl, err := workload.Build(workload.Params{
		Topology: c.Topology, Switches: c.Switches, TSFlows: c.TSFlows,
		Hops: c.Hops, WireSize: c.WireSize, SlotUs: c.SlotUs,
		RCMbps: c.RCMbps, BEMbps: c.BEMbps, FRERFlows: c.FRERFlows,
		Seed: c.Seed,
	})
	if err != nil {
		return Case{}, fmt.Errorf("chaos: case %d does not build: %w", index, err)
	}

	if rng.Float64() < p.ReconfigProb {
		base := wl.Der.Config
		d := &Delta{AtUs: rangeInt64(rng, c.durUs()/4, c.durUs()/2)}
		// Grow one to three resizable resources to double their derived
		// size. Growth is always valid (shrink could collide with live
		// occupancy and get rejected, which would not exercise commit).
		for _, grow := range rng.Perm(5)[:1+rng.Intn(3)] {
			switch grow {
			case 0:
				d.UnicastSize = 2 * base.UnicastSize
			case 1:
				d.ClassSize = 2 * base.ClassSize
			case 2:
				d.MeterSize = 2 * base.MeterSize
			case 3:
				d.QueueDepth = 2 * base.QueueDepth
			case 4:
				d.BufferNum = 2 * base.BufferNum
			}
		}
		c.Reconfig = d
		c.RetryMax = p.RetryMax
		c.RetryBackoffUs = p.RetryBackoffUs
		armAt := d.AtUs / 2
		if armAt < 1 {
			armAt = 1
		}
		if rng.Float64() < p.TransientProb && c.RetryMax > 0 {
			op := rng.Intn(4)
			count := rangeInt(rng, 1, c.RetryMax)
			c.Faults = append(c.Faults, faults.Fault{
				AtUs: armAt, Kind: faults.KindReconfigTransient, Op: &op, Count: count,
			})
		}
		if rng.Float64() < p.WedgeProb {
			op := rng.Intn(3)
			c.Faults = append(c.Faults, faults.Fault{
				AtUs: armAt, Kind: faults.KindReconfigWedge, Op: &op,
			})
		}
	}

	// Directed trunk selectors: every orientation the topology can
	// actually address (rings are one-way, linear links go both ways).
	trunks := make([][2]int, 0, 16)
	for _, l := range wl.Topo.TrunkLinks() {
		if _, ok := wl.Topo.PortToward(l.A.Switch, l.B.Switch); ok {
			trunks = append(trunks, [2]int{l.A.Switch, l.B.Switch})
		}
		if _, ok := wl.Topo.PortToward(l.B.Switch, l.A.Switch); ok {
			trunks = append(trunks, [2]int{l.B.Switch, l.A.Switch})
		}
	}
	c.Faults = append(c.Faults, randomFaults(rng, &c, wl.Topo.N, trunks, p.MaxFaults)...)
	if err := (&faults.Scenario{Faults: c.Faults}).Validate(); err != nil {
		return Case{}, fmt.Errorf("chaos: case %d generated an invalid scenario: %w", index, err)
	}
	return c, nil
}

// rangeInt64 draws uniformly from [lo, hi].
func rangeInt64(rng *sim.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// randomFaults draws up to maxFaults faults for c. Each candidate is
// validated against the script built so far and silently dropped when
// it duplicates an earlier fault's kind/target/window — the generator
// never emits a scenario the S2 duplicate check would reject.
func randomFaults(rng *sim.Rand, c *Case, n int, trunks [][2]int, maxFaults int) []faults.Fault {
	var out []faults.Fault
	tryAdd := func(f faults.Fault) bool {
		script := append(append([]faults.Fault{}, c.Faults...), out...)
		script = append(script, f)
		if err := (&faults.Scenario{Faults: script}).Validate(); err != nil {
			return false
		}
		out = append(out, f)
		return true
	}
	// Fault instants stay inside the run with a margin at both ends so
	// activation and (usually) recovery land while traffic flows.
	at := func() int64 { return rangeInt64(rng, 1000, maxInt64(1001, c.durUs()-5000)) }
	dur := func() int64 { return rangeInt64(rng, 500, 5000) }

	budget := rng.Intn(maxFaults + 1)
	// Covered cases confine every fault to ONE ring cable, drawn once:
	// a cable pull severs both directions (netdev.SetLink), so faults
	// across two cables could cut both member-stream arcs — FRER's
	// zero-loss guarantee only covers a single point of failure.
	coveredA := rng.Intn(n)
	coveredB := (coveredA + 1) % n
	for len(out) < budget {
		var f faults.Fault
		if c.FRERCovered {
			a, b := coveredA, coveredB
			f = faults.Fault{AtUs: at(), A: &a, B: &b}
			if rng.Float64() < 0.5 {
				f.Kind = faults.KindLinkDown
			} else {
				f.Kind = faults.KindLinkFlap
				f.PeriodUs = 2 * dur()
				f.Count = 1 + rng.Intn(3)
			}
		} else {
			f = randomFault(rng, n, trunks, at, dur)
		}
		if !tryAdd(f) {
			// A collision consumes budget instead of retrying: keeps
			// generation O(maxFaults) and deterministic.
			budget--
			continue
		}
		// Pair half the link-down faults with a later recovery.
		if f.Kind == faults.KindLinkDown && rng.Float64() < 0.5 && len(out) < budget {
			up := f
			up.Kind = faults.KindLinkUp
			up.AtUs = rangeInt64(rng, f.AtUs+500, f.AtUs+8000)
			tryAdd(up)
		}
	}
	return out
}

// randomFault draws one fault from the full menu. gPTP-dependent kinds
// (gm-kill, node-kill) are excluded: chaos cases run with perfect
// clocks. Trunk faults draw from the topology's real trunk list (with
// random orientation), and port-scoped faults hit port 0, which exists
// on every switch in every topology.
func randomFault(rng *sim.Rand, n int, trunks [][2]int, at, dur func() int64) faults.Fault {
	sw := rng.Intn(n)
	port := 0
	host := 100 + 100*rng.Intn(2) + rng.Intn(n)
	t := trunks[rng.Intn(len(trunks))]
	a, b := t[0], t[1]
	f := faults.Fault{AtUs: at()}
	switch rng.Intn(9) {
	case 0:
		f.Kind = faults.KindLinkDown
		f.A, f.B = &a, &b
	case 1:
		f.Kind = faults.KindLinkDown
		f.Host = &host
	case 2:
		f.Kind = faults.KindLinkFlap
		f.A, f.B = &a, &b
		f.PeriodUs = 2 * dur()
		f.Count = 1 + rng.Intn(3)
	case 3:
		f.Kind = faults.KindLinkLoss
		f.A, f.B = &a, &b
		f.Prob = 0.05 + 0.4*rng.Float64()
		f.DurationUs = dur()
	case 4:
		f.Kind = faults.KindLinkCorrupt
		f.A, f.B = &a, &b
		f.Prob = 0.05 + 0.4*rng.Float64()
		f.DurationUs = dur()
	case 5:
		f.Kind = faults.KindClockStep
		f.Switch = &sw
		f.StepNs = (1 + rng.Int63n(500_000)) * int64(1-2*rng.Intn(2))
	case 6:
		f.Kind = faults.KindClockDrift
		f.Switch = &sw
		f.DriftPPB = rng.Int63n(200_000) - 100_000
	case 7:
		f.Kind = faults.KindBufferExhaust
		f.Switch, f.Port = &sw, &port
		f.Slots = 1 + rng.Intn(8)
		f.DurationUs = dur()
	case 8:
		f.Kind = faults.KindGateClose
		f.Switch, f.Port = &sw, &port
		f.DurationUs = dur()
	}
	return f
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
