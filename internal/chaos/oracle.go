package chaos

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// Oracle names, as they appear in violations and repro artifacts.
const (
	// OracleConservation: every frame the generators sent is either
	// received or accounted to a recorded drop (link fault, switch
	// dataplane), and buffer pools drain back to empty unless a
	// buffer-leak fault was deliberately injected.
	OracleConservation = "frame-conservation"
	// OracleZeroLoss: on an FRER-covered case (all TS flows redundant,
	// faults confined to a single ring cable — FRER's single point of
	// failure) TS traffic loses nothing.
	OracleZeroLoss = "ts-frer-zero-loss"
	// OracleAttribution: each flow's worst-delivery component
	// decomposition sums exactly to its recorded worst latency.
	OracleAttribution = "attribution-exact-sum"
	// OracleLadder: the degradation ladder never skips a rung downward
	// (shed classes are restored in reverse order: RC before BE) and
	// never leaves the defined levels — TS is never shed.
	OracleLadder = "ladder-order"
	// OracleAtomicity: every reconfiguration resolves commit-or-exact-
	// rollback — a committed transaction leaves every switch on the
	// candidate configuration, anything else leaves them exactly on the
	// pre-transaction configuration.
	OracleAtomicity = "reconfig-atomicity"
	// OracleDeterminism: re-running the same case yields a
	// byte-identical metrics snapshot (checked by the campaign on a
	// sampled subset).
	OracleDeterminism = "replay-determinism"
	// OracleParity: re-running the case (stripped to the partitionable
	// feature set) on the partitioned parallel simulator yields a
	// byte-identical metrics export to the serial engine, the scheduler
	// heap-depth gauge excepted (checked by the campaign on a sampled
	// subset; see DESIGN.md §16).
	OracleParity = "partition-parity"
)

// Oracles lists every invariant oracle the engine can report, in
// documentation order.
func Oracles() []string {
	return []string{OracleConservation, OracleZeroLoss, OracleAttribution,
		OracleLadder, OracleAtomicity, OracleDeterminism, OracleParity}
}

// checkOracles applies the post-run oracle suite to one executed case.
func checkOracles(c *Case, net *testbed.Net, reg *metrics.Registry, txns []*txnRecord) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	// Frame conservation. Per-class loss is per-flow sent-vs-accepted,
	// so each lost unit corresponds to at least one physically dropped
	// frame; the recorded drops must cover them.
	var lost uint64
	for _, cls := range []ethernet.Class{ethernet.ClassTS, ethernet.ClassRC, ethernet.ClassBE} {
		lost += net.Summary(cls).Lost
	}
	st := net.SwitchStats()
	accounted := reg.SumCounter(faults.MetricLinkDrops) + st.TotalDrops()
	if lost > accounted {
		add(OracleConservation, "%d frames lost but only %d drops recorded (link=%d switch=%d)",
			lost, accounted, reg.SumCounter(faults.MetricLinkDrops), st.TotalDrops())
	}
	if !hasFaultKind(c, faults.KindBufferLeak) {
		if err := net.CheckBufferLeaks(); err != nil {
			add(OracleConservation, "buffer pools did not drain: %v", err)
		}
	}

	// TS zero loss under FRER-covered failures.
	if c.FRERCovered {
		if ts := net.Summary(ethernet.ClassTS); ts.Lost > 0 {
			add(OracleZeroLoss, "covered case lost %d TS frames (sent=%d recv=%d)",
				ts.Lost, ts.Sent, ts.Received)
		}
	}

	// Exact-sum latency attribution.
	if net.Attr != nil {
		for _, fl := range net.Attr.Flows() {
			if fl.Count == 0 {
				continue
			}
			if got := fl.Worst.Total(); got != fl.WorstLat {
				add(OracleAttribution, "flow %d worst components sum %v != worst latency %v",
					fl.FlowID, got, fl.WorstLat)
			}
		}
	}

	// Degradation-ladder ordering.
	if net.Watchdog != nil {
		for i, tr := range net.Watchdog.Transitions() {
			if tr.To < tsnswitch.DegradeOff || tr.To > tsnswitch.DegradeShedRC {
				add(OracleLadder, "transition %d: switch %d moved to undefined level %d",
					i, tr.Switch, int(tr.To))
			}
			if tr.To < tr.From && tr.From-tr.To != 1 {
				add(OracleLadder, "transition %d: switch %d de-escalated %v→%v, skipping a rung",
					i, tr.Switch, tr.From, tr.To)
			}
		}
	}

	// Reconfiguration atomicity: commit-or-exact-rollback.
	live := net.LiveConfig()
	for i, rec := range txns {
		switch {
		case rec.txn == nil && rec.beginErr == nil:
			// The begin instant fell outside the run; nothing staged.
			continue
		case rec.beginErr != nil:
			// Rejected before staging: the live config must be untouched.
			if !sameResizable(live, rec.pre) {
				add(OracleAtomicity, "txn %d rejected (%v) but live config drifted", i, rec.beginErr)
			}
		case rec.txn.State() == reconfig.StateCommitted:
			if !sameResizable(live, rec.cand) {
				add(OracleAtomicity, "txn %d committed but live config is not the candidate", i)
			}
		case rec.txn.State() == reconfig.StateRolledBack:
			if !sameResizable(live, rec.pre) {
				add(OracleAtomicity, "txn %d rolled back but live config is not the pre-transaction config", i)
			}
		default:
			// Unresolved at run end (commit boundary or retry beyond the
			// window): nothing to assert about the outcome.
			continue
		}
	}
	// Regardless of claimed outcomes, the switches themselves must
	// match whatever configuration the controller says is in force —
	// this is what catches a wedged commit that left partial state
	// while claiming rolled-back.
	if len(txns) > 0 {
		if err := net.VerifyLive(); err != nil {
			add(OracleAtomicity, "%v", err)
		}
	}
	return out
}

// hasFaultKind reports whether the case's script contains kind.
func hasFaultKind(c *Case, kind string) bool {
	for i := range c.Faults {
		if c.Faults[i].Kind == kind {
			return true
		}
	}
	return false
}

// sameResizable compares the reconfigurable resources of two configs —
// every field a live reconfiguration can change.
func sameResizable(a, b core.Config) bool {
	return a.UnicastSize == b.UnicastSize && a.MulticastSize == b.MulticastSize &&
		a.ClassSize == b.ClassSize && a.MeterSize == b.MeterSize &&
		a.GateSize == b.GateSize && a.CBSMapSize == b.CBSMapSize &&
		a.CBSSize == b.CBSSize && a.QueueDepth == b.QueueDepth &&
		a.BufferNum == b.BufferNum && a.FRERSize == b.FRERSize &&
		a.FRERHistory == b.FRERHistory && a.SlotSize == b.SlotSize
}
