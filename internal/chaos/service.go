package chaos

// Service campaign: chaos for the TSN-as-a-Service control plane.
//
// Where RunCampaign builds an isolated simulated network per case, the
// service campaign attacks one LIVE svc.Service through its public HTTP
// API with many concurrent clients: derivation stampedes on shared
// specs, cache-coherence probes that race fresh recomputation against
// cached bodies, reconfiguration transactions with transient and
// wedged mid-commit faults armed underneath them, slow clients that
// squat on admission slots, and unique-spec bursts that push the
// admission queue into shedding.
//
// Two service-level oracles judge the run:
//
//   - accepted-then-lost: every 2xx POST /v1/reconfig the clients ever
//     saw must appear in the instance's committed journal with the
//     exact configuration it acknowledged, journal sequence numbers
//     must be gapless, and the final live configuration must equal the
//     journal tail — an accepted transaction can never silently vanish.
//   - cache coherence: a cached derivation body and a freshly
//     recomputed one for the same spec must be byte-identical.
//
// The drive plan is a pure function of (Seed, request index), so a
// fixed seed replays the same request mix; only the interleaving varies
// and both oracles are interleaving-independent by construction.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/experiments"
	"github.com/tsnbuilder/tsnbuilder/internal/svc"
)

// Service-level oracle names.
const (
	// OracleAcceptedLost rejects a run where a 2xx-acknowledged
	// reconfiguration is missing from the journal, acknowledged with a
	// different configuration than committed, or no longer reflected by
	// the final live configuration.
	OracleAcceptedLost = "svc-accepted-then-lost"
	// OracleCacheCoherence rejects a run where a cached derivation and a
	// fresh recomputation of the same spec differ.
	OracleCacheCoherence = "svc-cache-coherence"
	// OracleQueueBounded rejects a run where an admission queue's depth
	// high-water mark exceeded its configured bound.
	OracleQueueBounded = "svc-queue-bounded"
)

// ServiceOptions configures one service campaign.
type ServiceOptions struct {
	// Seed fixes the drive plan (request mix, specs, deltas, faults).
	Seed uint64
	// Clients is the concurrent driver count (default 8).
	Clients int
	// Requests is the total scripted request count (default 200).
	Requests int
	// Budget bounds the campaign's wall clock; zero means unbudgeted.
	// Like the simulation campaign, it stops new requests from being
	// claimed — requests in flight finish, so verdicts never tear.
	Budget time.Duration
	// Service overrides the service construction; the zero value gets
	// deliberately small queues so overload shedding is reachable.
	Service svc.Options
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// ServiceSummary is a finished service campaign's outcome.
type ServiceSummary struct {
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	// ByStatus counts responses per HTTP status code.
	ByStatus map[int]int64 `json:"by_status"`
	// Accepted is how many reconfigurations were acknowledged with 2xx.
	Accepted int `json:"accepted"`
	// CoherenceProbes counts cached-vs-fresh byte comparisons run.
	CoherenceProbes int `json:"coherence_probes"`
	// FaultsArmed counts transient/wedge faults injected mid-campaign.
	FaultsArmed int `json:"faults_armed"`
	// Violations holds every oracle failure.
	Violations []Violation `json:"violations,omitempty"`
	// Errors holds infrastructure failures (transport errors etc.).
	Errors []string `json:"errors,omitempty"`
}

// Failed reports whether any oracle rejected the run or the drive
// itself broke.
func (s *ServiceSummary) Failed() bool { return len(s.Violations) > 0 || len(s.Errors) > 0 }

// acceptedTxn is one client-side 2xx reconfiguration acknowledgment.
type acceptedTxn struct {
	seq    uint64
	config svc.ConfigJSON
}

// svcDriver is the shared mutable state of one campaign run.
type svcDriver struct {
	base   string
	client *http.Client

	mu         sync.Mutex
	byStatus   map[int]int64
	accepted   []acceptedTxn
	violations []Violation
	errors     []string
	probes     int
	faults     int
	executed   int
}

func (d *svcDriver) record(status int) {
	d.mu.Lock()
	d.byStatus[status]++
	d.executed++
	d.mu.Unlock()
}

func (d *svcDriver) violate(oracle, format string, args ...any) {
	d.mu.Lock()
	d.violations = append(d.violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	d.mu.Unlock()
}

func (d *svcDriver) errf(format string, args ...any) {
	d.mu.Lock()
	d.errors = append(d.errors, fmt.Sprintf(format, args...))
	d.mu.Unlock()
}

// specPool is the shared spec set the stampede leans on: few distinct
// specs across many concurrent clients maximizes singleflight pressure.
func specPool(seed uint64) []string {
	specs := make([]string, 4)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"topology":"linear","switches":%d,"ts_flows":%d,"seed":%d}`,
			2+i%2, 4+2*i, seed)
	}
	return specs
}

// RunServiceCampaign builds a service, drives it with the scripted
// concurrent load, applies the service oracles and shuts it down.
func RunServiceCampaign(opts ServiceOptions) (*ServiceSummary, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sopts := opts.Service
	if sopts.Workload.Topology == "" {
		sopts.Workload = svc.DefaultWorkload()
	}
	if sopts.DeriveQueue == 0 {
		sopts.DeriveQueue = 8 // small on purpose: shedding must be reachable
	}
	if sopts.ReconfigQueue == 0 {
		sopts.ReconfigQueue = 4
	}
	s, err := svc.NewService(sopts)
	if err != nil {
		return nil, fmt.Errorf("chaos: service build: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-serveDone
	}()

	d := &svcDriver{
		base:     "http://" + ln.Addr().String(),
		client:   &http.Client{Timeout: 30 * time.Second},
		byStatus: make(map[int]int64),
	}
	specs := specPool(opts.Seed)
	initial := svc.ToConfigJSON(s.Instance().LiveConfig())

	ctx := context.Background()
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	wedgeAt := opts.Requests / 2 // exactly one wedge, mid-campaign
	logf("service campaign: %d requests over %d clients against %s", opts.Requests, opts.Clients, d.base)
	_ = experiments.FanOutCtx(ctx, opts.Clients, opts.Requests, func(i int) bool {
		rng := rand.New(rand.NewSource(int64(opts.Seed)*1_000_003 + int64(i)))
		switch {
		case i == wedgeAt:
			d.armWedgeThenReconfig(s, initial, rng)
		case i%11 == 3:
			d.coherenceProbe(specs[rng.Intn(len(specs))])
		case i%11 == 6:
			d.reconfig(initial, rng, true)
		case i%11 == 8:
			d.slowDerive(specs[rng.Intn(len(specs))])
		case i%23 == 9:
			d.armTransientThenReconfig(s, initial, rng)
		case i%29 == 11:
			d.burst(rng)
		default:
			d.derive(specs[rng.Intn(len(specs))], false)
		}
		return true
	})

	sum := &ServiceSummary{
		Planned:         opts.Requests,
		Executed:        d.executed,
		ByStatus:        d.byStatus,
		Accepted:        len(d.accepted),
		CoherenceProbes: d.probes,
		FaultsArmed:     d.faults,
		Violations:      d.violations,
		Errors:          d.errors,
	}
	d.checkAcceptedThenLost(sum, initial)
	checkQueueBound(sum, "derive", s.Admission().Derive)
	checkQueueBound(sum, "reconfig", s.Admission().Reconfig)
	logf("service campaign: %d executed, %d accepted, %d violations",
		sum.Executed, sum.Accepted, len(sum.Violations))
	return sum, nil
}

// derive POSTs a spec and returns the body (nil on any non-200).
func (d *svcDriver) derive(spec string, fresh bool) []byte {
	req, err := http.NewRequest(http.MethodPost, d.base+"/v1/derive", strings.NewReader(spec))
	if err != nil {
		d.errf("derive request: %v", err)
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	if fresh {
		req.Header.Set("Cache-Control", "no-cache")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		d.errf("derive: %v", err)
		return nil
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	d.record(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	return body
}

// coherenceProbe compares a cached derivation against a fresh
// recomputation of the same spec: the cache-coherence oracle.
func (d *svcDriver) coherenceProbe(spec string) {
	cached := d.derive(spec, false)
	fresh := d.derive(spec, true)
	if cached == nil || fresh == nil {
		return // shed or deadline — nothing to compare
	}
	d.mu.Lock()
	d.probes++
	d.mu.Unlock()
	if !bytes.Equal(cached, fresh) {
		d.violate(OracleCacheCoherence,
			"cached body (%d bytes) != fresh body (%d bytes) for spec %s",
			len(cached), len(fresh), spec)
	}
}

// slowDerive trickles the request body in, squatting on an admission
// slot while the handler waits for bytes — the slow-client attack.
func (d *svcDriver) slowDerive(spec string) {
	pr, pw := io.Pipe()
	go func() {
		for _, half := range []string{spec[:len(spec)/2], spec[len(spec)/2:]} {
			_, _ = io.WriteString(pw, half)
			time.Sleep(50 * time.Millisecond)
		}
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, d.base+"/v1/derive", pr)
	if err != nil {
		d.errf("slow derive request: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		d.errf("slow derive: %v", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d.record(resp.StatusCode)
}

// burst fires several unique-spec derivations back to back — all cache
// misses, aimed at pushing the admission queue into shedding.
func (d *svcDriver) burst(rng *rand.Rand) {
	for k := 0; k < 6; k++ {
		spec := fmt.Sprintf(`{"topology":"ring","switches":%d,"ts_flows":%d,"seed":%d}`,
			3+rng.Intn(3), 6+rng.Intn(20), rng.Int63())
		d.derive(spec, false)
	}
}

// reconfig POSTs a delta. Grows are always valid; when allowShrink is
// set the delta occasionally asks for an implausible shrink to exercise
// the 409 validation path.
func (d *svcDriver) reconfig(initial svc.ConfigJSON, rng *rand.Rand, allowShrink bool) {
	var delta svc.ReconfigRequest
	if allowShrink && rng.Intn(4) == 0 {
		delta.UnicastSize = 1
	} else {
		switch rng.Intn(3) {
		case 0:
			delta.UnicastSize = initial.UnicastSize * (2 + rng.Intn(3))
		case 1:
			delta.MeterSize = initial.MeterSize * (2 + rng.Intn(3))
		default:
			delta.ClassSize = initial.ClassSize * (2 + rng.Intn(3))
		}
	}
	body, _ := json.Marshal(delta)
	resp, err := d.client.Post(d.base+"/v1/reconfig", "application/json", bytes.NewReader(body))
	if err != nil {
		d.errf("reconfig: %v", err)
		return
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	d.record(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		return
	}
	var rr svc.ReconfigResponse
	if err := json.Unmarshal(rb, &rr); err != nil {
		d.errf("reconfig 200 with unparseable body: %v", err)
		return
	}
	d.mu.Lock()
	d.accepted = append(d.accepted, acceptedTxn{seq: rr.Seq, config: rr.Config})
	d.mu.Unlock()
}

// armTransientThenReconfig injects a transient mid-commit fault and
// immediately transacts: the bounded retry should absorb it into a 2xx.
func (d *svcDriver) armTransientThenReconfig(s *svc.Service, initial svc.ConfigJSON, rng *rand.Rand) {
	if err := s.Instance().ArmTransient(rng.Intn(2), 1); err != nil {
		d.errf("arm transient: %v", err)
		return
	}
	d.mu.Lock()
	d.faults++
	d.mu.Unlock()
	d.reconfig(initial, rng, false)
}

// armWedgeThenReconfig injects the seeded atomicity bug — a commit that
// dies mid-apply claiming rolled-back — and transacts into it. The
// response must NOT be 2xx: the post-commit verification catches the
// partial state and the breaker starts tripping.
func (d *svcDriver) armWedgeThenReconfig(s *svc.Service, initial svc.ConfigJSON, rng *rand.Rand) {
	if err := s.Instance().ArmWedge(1); err != nil {
		d.errf("arm wedge: %v", err)
		return
	}
	d.mu.Lock()
	d.faults++
	d.mu.Unlock()
	d.reconfig(initial, rng, false)
}

// checkAcceptedThenLost applies the accepted-then-lost oracle: journal
// and live config fetched over the API after the drive drains.
func (d *svcDriver) checkAcceptedThenLost(sum *ServiceSummary, initial svc.ConfigJSON) {
	var journal []svc.JournalEntry
	if err := d.getJSON("/v1/journal", &journal); err != nil {
		sum.Errors = append(sum.Errors, fmt.Sprintf("fetch journal: %v", err))
		return
	}
	var live svc.ConfigJSON
	if err := d.getJSON("/v1/config", &live); err != nil {
		sum.Errors = append(sum.Errors, fmt.Sprintf("fetch config: %v", err))
		return
	}
	bySeq := make(map[uint64]svc.ConfigJSON, len(journal))
	for i, e := range journal {
		if e.Seq != uint64(i+1) {
			sum.Violations = append(sum.Violations, Violation{
				Oracle: OracleAcceptedLost,
				Detail: fmt.Sprintf("journal entry %d has seq %d: sequence gap", i, e.Seq),
			})
		}
		bySeq[e.Seq] = e.Config
	}
	for _, a := range d.accepted {
		got, ok := bySeq[a.seq]
		if !ok {
			sum.Violations = append(sum.Violations, Violation{
				Oracle: OracleAcceptedLost,
				Detail: fmt.Sprintf("2xx-acknowledged seq %d missing from journal", a.seq),
			})
			continue
		}
		if got != a.config {
			sum.Violations = append(sum.Violations, Violation{
				Oracle: OracleAcceptedLost,
				Detail: fmt.Sprintf("seq %d: acknowledged config differs from journal", a.seq),
			})
		}
	}
	// The configuration in force is the journal tail (or the initial
	// configuration when nothing ever committed): a rolled-back or
	// wedged transaction must never move it.
	want := initial
	if len(journal) > 0 {
		want = journal[len(journal)-1].Config
	}
	if live != want {
		sum.Violations = append(sum.Violations, Violation{
			Oracle: OracleAcceptedLost,
			Detail: "live config is not the journal tail: accepted state lost or unaccepted state live",
		})
	}
}

func checkQueueBound(sum *ServiceSummary, name string, q *svc.ClassQueue) {
	if hw := q.DepthHW.Value(); hw > q.MaxWait() {
		sum.Violations = append(sum.Violations, Violation{
			Oracle: OracleQueueBounded,
			Detail: fmt.Sprintf("%s queue high water %d exceeded bound %d", name, hw, q.MaxWait()),
		})
	}
}

func (d *svcDriver) getJSON(path string, v any) error {
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
