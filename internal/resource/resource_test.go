package resource

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestTableIIIExact verifies the model against every BRAM figure in the
// paper's Table III.
func TestTableIIIExact(t *testing.T) {
	type row struct {
		name string
		item Item
		want float64 // Kb
	}
	commercial := []row{
		{"switch", SwitchTbl(16*1024, 0), 1152},
		{"class", ClassTbl(1024), 126},
		{"meter", MeterTbl(512), 36},
		{"gate", GateTbl(2, 8, 4), 144},
		{"cbs", CBSTbl(8, 8, 4), 144},
		{"queues", Queues(16, 8, 4), 576},
		{"buffers", Buffers(128, 4), 8640},
	}
	star := []row{
		{"switch", SwitchTbl(1024, 0), 72},
		{"class", ClassTbl(1024), 126},
		{"meter", MeterTbl(1024), 72},
		{"gate", GateTbl(2, 8, 3), 108},
		{"cbs", CBSTbl(3, 3, 3), 108},
		{"queues", Queues(12, 8, 3), 432},
		{"buffers", Buffers(96, 3), 4860},
	}
	linear := []row{
		{"gate", GateTbl(2, 8, 2), 72},
		{"cbs", CBSTbl(3, 3, 2), 72},
		{"queues", Queues(12, 8, 2), 288},
		{"buffers", Buffers(96, 2), 3240},
	}
	ring := []row{
		{"gate", GateTbl(2, 8, 1), 36},
		{"cbs", CBSTbl(3, 3, 1), 36},
		{"queues", Queues(12, 8, 1), 144},
		{"buffers", Buffers(96, 1), 1620},
	}
	for _, group := range [][]row{commercial, star, linear, ring} {
		for _, r := range group {
			if got := r.item.Kb(); got != r.want {
				t.Errorf("%s %s: Kb = %v, want %v", r.item.Name, r.item.Params, got, r.want)
			}
		}
	}
}

func commercialReport() *Report {
	return &Report{Label: "Commercial (4 ports)", Items: []Item{
		SwitchTbl(16*1024, 0), ClassTbl(1024), MeterTbl(512),
		GateTbl(2, 8, 4), CBSTbl(8, 8, 4), Queues(16, 8, 4), Buffers(128, 4),
	}}
}

func customizedReport(ports int) *Report {
	return &Report{Label: "Customized", Items: []Item{
		SwitchTbl(1024, 0), ClassTbl(1024), MeterTbl(1024),
		GateTbl(2, 8, ports), CBSTbl(3, 3, ports), Queues(12, 8, ports), Buffers(96, ports),
	}}
}

// TestTableIIITotals verifies the column totals and headline reduction
// percentages (46.59%, 63.56%, 80.53%).
func TestTableIIITotals(t *testing.T) {
	base := commercialReport()
	if got := base.TotalKb(); got != 10818 {
		t.Fatalf("commercial total = %v, want 10818", got)
	}
	cases := []struct {
		ports     int
		total     float64
		reduction float64
	}{
		{3, 5778, 46.59},
		{2, 3942, 63.56},
		{1, 2106, 80.53},
	}
	for _, c := range cases {
		r := customizedReport(c.ports)
		if got := r.TotalKb(); got != c.total {
			t.Errorf("%d ports: total = %v, want %v", c.ports, got, c.total)
		}
		red := 100 * r.ReductionVs(base)
		if math.Abs(red-c.reduction) > 0.005 {
			t.Errorf("%d ports: reduction = %.2f%%, want %.2f%%", c.ports, red, c.reduction)
		}
	}
}

// TestTableIExact verifies the motivation study's two configurations:
// Case 1 (depth 16, 128 buffers) = 2304 Kb, Case 2 (depth 12, 96
// buffers) = 1764 Kb — a 540 Kb saving.
func TestTableIExact(t *testing.T) {
	case1 := Queues(16, 8, 1).Kb() + Buffers(128, 1).Kb()
	case2 := Queues(12, 8, 1).Kb() + Buffers(96, 1).Kb()
	if case1 != 2304 {
		t.Errorf("Case 1 = %v, want 2304", case1)
	}
	if case2 != 1764 {
		t.Errorf("Case 2 = %v, want 1764", case2)
	}
	if case1-case2 != 540 {
		t.Errorf("saving = %v, want 540", case1-case2)
	}
}

func TestZeroSizedTables(t *testing.T) {
	if SwitchTbl(0, 0).Bits != 0 {
		t.Error("empty switch table allocates BRAM")
	}
	if Buffers(0, 4).Bits != 0 {
		t.Error("zero buffers allocate BRAM")
	}
}

func TestBlocks(t *testing.T) {
	it := ClassTbl(1024) // 126 Kb = 7 × 18 Kb = 3×36 + 1×18
	n36, n18 := it.Blocks()
	if n36 != 3 || n18 != 1 {
		t.Fatalf("Blocks = (%d,%d), want (3,1)", n36, n18)
	}
	sw := SwitchTbl(16*1024, 0) // 64 blocks = 32×36
	n36, n18 = sw.Blocks()
	if n36 != 32 || n18 != 0 {
		t.Fatalf("Blocks = (%d,%d), want (32,0)", n36, n18)
	}
}

func TestCompactParams(t *testing.T) {
	if got := SwitchTbl(16*1024, 0).Params; got != "16K, 0" {
		t.Errorf("Params = %q, want \"16K, 0\"", got)
	}
	if got := ClassTbl(1000).Params; got != "1000" {
		t.Errorf("Params = %q", got)
	}
}

func TestReportString(t *testing.T) {
	r := commercialReport()
	s := r.String()
	for _, want := range []string{"Switch Tbl", "Buffers", "Total", "10818Kb"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestReductionVsZeroBaseline(t *testing.T) {
	empty := &Report{}
	if (&Report{}).ReductionVs(empty) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

// Property: BRAM never decreases when a table grows, and is always a
// whole number of 18 Kb blocks.
func TestMonotoneQuantizedProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		x, y := int(a%8192), int(b%8192)
		if x > y {
			x, y = y, x
		}
		small, large := ClassTbl(x), ClassTbl(y)
		if small.Bits > large.Bits {
			return false
		}
		return small.Bits%Block18Bits == 0 && large.Bits%Block18Bits == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-port resources scale linearly with port count.
func TestPortLinearityProperty(t *testing.T) {
	prop := func(portsRaw uint8) bool {
		ports := int(portsRaw%8) + 1
		if GateTbl(2, 8, ports).Bits != int64(ports)*GateTbl(2, 8, 1).Bits {
			return false
		}
		if Queues(12, 8, ports).Bits != int64(ports)*Queues(12, 8, 1).Bits {
			return false
		}
		return Buffers(96, ports).Bits == int64(ports)*Buffers(96, 1).Bits
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFRERTbl(t *testing.T) {
	// 32 streams × (48+32)b = 2560 bits → one 18 Kb block.
	it := FRERTbl(32, 32)
	if it.Bits != Block18Bits {
		t.Fatalf("FRERTbl(32,32) = %d bits, want one 18Kb block", it.Bits)
	}
	if it.Width != "80b" || it.Params != "32, 32" {
		t.Fatalf("FRERTbl row = %q %q", it.Width, it.Params)
	}
	// 1024 streams × (48+64)b = 114688 bits → ceil(/18Kb) = 7 blocks.
	it = FRERTbl(1024, 64)
	if it.Bits != 7*Block18Bits {
		t.Fatalf("FRERTbl(1024,64) = %d bits, want 7 blocks", it.Bits)
	}
	if it.Params != "1K, 64" {
		t.Fatalf("compact params = %q", it.Params)
	}
	if FRERTbl(0, 32).Bits != 0 {
		t.Fatal("zero-sized FRER table costs BRAM")
	}
}
