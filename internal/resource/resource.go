// Package resource is the fine-grained on-chip-memory abstraction of
// TSN-Builder (§III.B): it maps every resource class of Fig. 4 —
// switch/classification/meter/gate/CBS tables, metadata queues and
// packet buffers — onto FPGA block RAM, using the entry widths and the
// 18 Kb/36 Kb block allocation of the paper's Table III.
//
// Calibration: this model reproduces every BRAM figure in Table I and
// Table III of the paper exactly (see the package tests).
package resource

import (
	"fmt"
	"strings"
)

// Entry widths in bits, from Table III's "Bit/Byte Width" column.
const (
	UnicastWidth   = 72  // Dst MAC + VID + outport
	MulticastWidth = 72  // MC ID + port set
	ClassWidth     = 117 // Src MAC + Dst MAC + VID + PRI → Meter/Queue ID
	MeterWidth     = 68  // rate, bucket state
	GateWidth      = 17  // per-queue gate bits + slot bookkeeping
	// CBSMapWidth + CBSWidth: "the entry width of CBS table and CBS MAP
	// table is 72b in total".
	CBSMapWidth    = 8  // queue → shaper binding
	CBSWidth       = 64 // idleslope + sendslope + credit
	QueueMetaWidth = 32 // packet descriptor (metadata)
	// FRERBaseWidth is the fixed part of one 802.1CB sequence-recovery
	// entry: stream handle (16b) + RecovSeqNum (16b, the standard's
	// sequence-number space) + head pointer and per-stream counters.
	// The history window bitmap (SequenceHistory, one bit per sequence
	// number remembered) is added per configured history length.
	FRERBaseWidth = 48
)

// Buffer geometry: a 2048 B payload slot plus a 112 B descriptor
// (next-pointer, length, timestamps), i.e. 17280 bits of BRAM per
// buffer. This footprint is what reconciles the paper's buffer rows
// (e.g. 96 buffers × 1 port = 1620 Kb).
const (
	BufferPayloadBytes = 2048
	BufferDescBytes    = 112
	BufferSlotBits     = (BufferPayloadBytes + BufferDescBytes) * 8
)

// BRAM block sizes in bits. Xilinx 7-series block RAM comes in 18 Kb
// primitives pairable into 36 Kb blocks; Kb here is 1024 bits.
const (
	Block18Bits = 18 * 1024
	Block36Bits = 36 * 1024
)

// blocks18 returns the number of 18 Kb blocks needed for bits of
// storage (zero for zero bits).
func blocks18(bits int64) int64 {
	if bits <= 0 {
		return 0
	}
	return (bits + Block18Bits - 1) / Block18Bits
}

// tableBits returns the BRAM bits a table of depth entries × width bits
// occupies after block quantization.
func tableBits(width, depth int) int64 {
	return blocks18(int64(width)*int64(depth)) * Block18Bits
}

// Item is one row of a resource report (one row of Table III).
type Item struct {
	Name   string
	Width  string // human-readable width, e.g. "72b" or "2048B"
	Params string // the customization API parameters, e.g. "2, 8, 4"
	Bits   int64  // BRAM bits allocated
}

// Kb returns the row's BRAM in Kb (1 Kb = 1024 bits), the paper's unit.
func (it Item) Kb() float64 { return float64(it.Bits) / 1024 }

// Blocks returns the allocation as (count36, count18): as many 36 Kb
// blocks as possible plus at most one trailing 18 Kb block, the
// packing synthesis tools report.
func (it Item) Blocks() (int64, int64) {
	n18 := it.Bits / Block18Bits
	if it.Bits%Block18Bits != 0 {
		n18++
	}
	return n18 / 2, n18 % 2
}

// SwitchTbl models set_switch_tbl(unicast_size, multicast_size): the
// unicast and multicast switch tables, shared by all ports.
func SwitchTbl(unicastSize, multicastSize int) Item {
	return Item{
		Name:   "Switch Tbl",
		Width:  fmt.Sprintf("%db", UnicastWidth),
		Params: fmt.Sprintf("%s, %s", compact(unicastSize), compact(multicastSize)),
		Bits:   tableBits(UnicastWidth, unicastSize) + tableBits(MulticastWidth, multicastSize),
	}
}

// ClassTbl models set_class_tbl(class_size).
func ClassTbl(classSize int) Item {
	return Item{
		Name:   "Class. Tbl",
		Width:  fmt.Sprintf("%db", ClassWidth),
		Params: compact(classSize),
		Bits:   tableBits(ClassWidth, classSize),
	}
}

// MeterTbl models set_meter_tbl(meter_size).
func MeterTbl(meterSize int) Item {
	return Item{
		Name:   "Meter Tbl",
		Width:  fmt.Sprintf("%db", MeterWidth),
		Params: compact(meterSize),
		Bits:   tableBits(MeterWidth, meterSize),
	}
}

// GateTbl models set_gate_tbl(gate_size, queue_num, port_num): each
// port owns an input and an output gate table of gate_size entries;
// each table occupies at least one 18 Kb block.
func GateTbl(gateSize, queueNum, portNum int) Item {
	perTable := tableBits(GateWidth, gateSize)
	return Item{
		Name:   "Gate Tbl",
		Width:  fmt.Sprintf("%db", GateWidth),
		Params: fmt.Sprintf("%d, %d, %d", gateSize, queueNum, portNum),
		Bits:   2 * perTable * int64(portNum),
	}
}

// CBSTbl models set_cbs_tbl(cbs_map_size, cbs_size, port_num): each
// port owns a CBS MAP table and a CBS table, each at least one block.
func CBSTbl(cbsMapSize, cbsSize, portNum int) Item {
	per := tableBits(CBSMapWidth, cbsMapSize) + tableBits(CBSWidth, cbsSize)
	return Item{
		Name:   "CBS Tbl",
		Width:  fmt.Sprintf("%db", CBSMapWidth+CBSWidth),
		Params: fmt.Sprintf("%d, %d, %d", cbsMapSize, cbsSize, portNum),
		Bits:   per * int64(portNum),
	}
}

// Queues models set_queues(queue_depth, queue_num, port_num): each
// queue is an independent memory of queue_depth descriptors and
// occupies at least one 18 Kb block.
func Queues(queueDepth, queueNum, portNum int) Item {
	perQueue := tableBits(QueueMetaWidth, queueDepth)
	return Item{
		Name:   "Queues",
		Width:  fmt.Sprintf("%db", QueueMetaWidth),
		Params: fmt.Sprintf("%d, %d, %d", queueDepth, queueNum, portNum),
		Bits:   perQueue * int64(queueNum) * int64(portNum),
	}
}

// Buffers models set_buffers(buffer_num, port_num): each port owns a
// contiguous pool of buffer_num slots (payload + descriptor).
func Buffers(bufferNum, portNum int) Item {
	return Item{
		Name:   "Buffers",
		Width:  fmt.Sprintf("%dB", BufferPayloadBytes),
		Params: fmt.Sprintf("%d, %d", bufferNum, portNum),
		Bits:   int64(BufferSlotBits) * int64(bufferNum) * int64(portNum),
	}
}

// FRERTbl models set_frer_tbl(frer_size, history_len): the eighth
// resource class, not in the paper's Table II but built in its spirit —
// an 802.1CB sequence-recovery table of frer_size streams, each entry
// carrying the vector-recovery state plus a history_len-bit window.
func FRERTbl(frerSize, historyLen int) Item {
	return Item{
		Name:   "FRER Tbl",
		Width:  fmt.Sprintf("%db", FRERBaseWidth+historyLen),
		Params: fmt.Sprintf("%s, %d", compact(frerSize), historyLen),
		Bits:   tableBits(FRERBaseWidth+historyLen, frerSize),
	}
}

// SharedBuffers models the switch-memory-switch alternative (§VI,
// ref [16]): one pool of bufferNum slots shared by every port instead
// of per-port pools.
func SharedBuffers(bufferNum int) Item {
	return Item{
		Name:   "Buffers",
		Width:  fmt.Sprintf("%dB", BufferPayloadBytes),
		Params: fmt.Sprintf("%d shared", bufferNum),
		Bits:   int64(BufferSlotBits) * int64(bufferNum),
	}
}

// compact renders entry counts the way the paper does ("16K", "1024").
func compact(n int) string {
	if n != 0 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

// Report is a full resource breakdown (one column group of Table III).
type Report struct {
	Label string
	Items []Item
}

// TotalBits sums the allocation.
func (r *Report) TotalBits() int64 {
	var total int64
	for _, it := range r.Items {
		total += it.Bits
	}
	return total
}

// TotalKb returns the total in Kb, the paper's bottom row.
func (r *Report) TotalKb() float64 { return float64(r.TotalBits()) / 1024 }

// ReductionVs returns the fractional saving versus a baseline report,
// e.g. 0.8053 for the ring column of Table III.
func (r *Report) ReductionVs(baseline *Report) float64 {
	b := baseline.TotalBits()
	if b == 0 {
		return 0
	}
	return 1 - float64(r.TotalBits())/float64(b)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Label)
	fmt.Fprintf(&b, "  %-11s %-6s %-14s %10s\n", "Resource", "Width", "Parameters", "BRAM")
	for _, it := range r.Items {
		fmt.Fprintf(&b, "  %-11s %-6s %-14s %8.0fKb\n", it.Name, it.Width, it.Params, it.Kb())
	}
	fmt.Fprintf(&b, "  %-11s %-6s %-14s %8.0fKb\n", "Total", "", "", r.TotalKb())
	return b.String()
}
