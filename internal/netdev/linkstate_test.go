package netdev

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestLinkDownSuppressesDeliveryNotCompletion(t *testing.T) {
	e := sim.NewEngine()
	a, b, _, sb := pair(e, 100*sim.Nanosecond)
	doneCount := 0
	e.After(0, "tx", func(*sim.Engine) {
		a.Transmit(&ethernet.Frame{FlowID: 7}, func() { doneCount++ })
	})
	// Cable pulled mid-serialization (64B at 1 Gbps finishes at 512 ns).
	e.After(200*sim.Nanosecond, "pull", func(*sim.Engine) { a.Disconnect() })
	e.Run()
	if len(sb.frames) != 0 {
		t.Fatal("frame delivered across a dead link")
	}
	if doneCount != 1 {
		t.Fatalf("onDone fired %d times, want exactly 1", doneCount)
	}
	if a.LinkUp() || b.LinkUp() {
		t.Fatal("link state not symmetric after Disconnect")
	}
	if down, _, _ := a.LinkDrops(); down != 1 {
		t.Fatalf("link-down drops = %d, want 1", down)
	}
}

func TestLinkDownDoesNotStrandBusyInterface(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	sent := 0
	var sendNext func()
	sendNext = func() {
		if sent >= 3 {
			return
		}
		sent++
		a.Transmit(&ethernet.Frame{Seq: uint32(sent)}, sendNext)
	}
	e.After(0, "start", func(*sim.Engine) { sendNext() })
	// Down during frame 1, back up before frame 3 starts (occupancy
	// 672 ns per frame).
	e.After(100*sim.Nanosecond, "down", func(*sim.Engine) { a.SetLink(false) })
	e.After(1300*sim.Nanosecond, "up", func(*sim.Engine) { a.SetLink(true) })
	e.Run()
	if sent != 3 {
		t.Fatalf("MAC stranded: only %d of 3 frames transmitted", sent)
	}
	// Frames 1 and 2 launched before/during the outage are lost;
	// frame 3 starts at 1344 ns with the link up again.
	if len(sb.frames) != 1 || sb.frames[0].Seq != 3 {
		t.Fatalf("delivered %v, want only seq 3", sb.frames)
	}
}

func TestLinkFlapEpochDropsInFlightFrame(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, sim.Millisecond) // long propagation
	e.After(0, "tx", func(*sim.Engine) { a.Transmit(&ethernet.Frame{}, nil) })
	// Full down/up flap while the frame is in flight: it must still
	// be lost even though the link is up at delivery time.
	e.After(10*sim.Microsecond, "down", func(*sim.Engine) { a.SetLink(false) })
	e.After(20*sim.Microsecond, "up", func(*sim.Engine) { a.SetLink(true) })
	e.Run()
	if len(sb.frames) != 0 {
		t.Fatal("flap did not drop the in-flight frame")
	}
	if down, _, _ := a.LinkDrops(); down != 1 {
		t.Fatalf("link-down drops = %d, want 1", down)
	}
}

func TestSetLinkIdempotent(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	a.SetLink(false)
	epoch := a.epoch
	a.SetLink(false) // repeated down must not bump the epoch again
	if a.epoch != epoch {
		t.Fatal("repeated SetLink(false) bumped epoch")
	}
	a.SetLink(true)
	a.SetLink(true)
	if !a.LinkUp() || a.epoch != epoch {
		t.Fatal("repeated SetLink(true) misbehaved")
	}
}

func TestSetLinkWithoutCablePanics(t *testing.T) {
	e := sim.NewEngine()
	c := NewIfc(e, "c", &sink{engine: e}, ethernet.Gbps)
	defer func() {
		if recover() == nil {
			t.Error("SetLink with no cable did not panic")
		}
	}()
	c.SetLink(false)
}

func TestAbortOnDownedLink(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) {
		h = a.TransmitHandle(&ethernet.Frame{Payload: make([]byte, 1400)}, nil)
	})
	e.After(2*sim.Microsecond, "pull+abort", func(*sim.Engine) {
		a.Disconnect()
		if _, ok := h.Abort(); !ok {
			t.Error("legal-window abort failed on downed link")
		}
	})
	e.After(10*sim.Microsecond, "settle", func(*sim.Engine) {})
	e.Run()
	if len(sb.frames) != 0 {
		t.Fatal("aborted frame delivered")
	}
	if a.Busy() {
		t.Fatal("interface still busy after run")
	}
}

func TestImpairmentLossAndCorruption(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	a.SetImpairment(1.0, 0, sim.NewRand(1))
	sent := 0
	var sendNext func()
	sendNext = func() {
		if sent >= 5 {
			return
		}
		sent++
		a.Transmit(&ethernet.Frame{Seq: uint32(sent)}, sendNext)
	}
	e.After(0, "start", func(*sim.Engine) { sendNext() })
	e.Run()
	if len(sb.frames) != 0 {
		t.Fatal("loss=1.0 delivered frames")
	}
	if _, loss, _ := a.LinkDrops(); loss != 5 {
		t.Fatalf("loss drops = %d, want 5", loss)
	}

	// Corruption: every frame discarded as an FCS failure.
	e2 := sim.NewEngine()
	a2, _, _, sb2 := pair(e2, 0)
	a2.SetImpairment(0, 1.0, sim.NewRand(1))
	e2.After(0, "tx", func(*sim.Engine) { a2.Transmit(&ethernet.Frame{}, nil) })
	e2.Run()
	if len(sb2.frames) != 0 {
		t.Fatal("corrupt=1.0 delivered a frame")
	}
	if _, _, corrupt := a2.LinkDrops(); corrupt != 1 {
		t.Fatalf("corrupt drops = %d, want 1", corrupt)
	}
	a2.ClearImpairment()
	e2.After(0, "tx2", func(*sim.Engine) { a2.Transmit(&ethernet.Frame{}, nil) })
	e2.Run()
	if len(sb2.frames) != 1 {
		t.Fatal("ClearImpairment did not restore delivery")
	}
}

func TestImpairmentValidation(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	for _, fn := range []func(){
		func() { a.SetImpairment(0.5, 0, nil) },
		func() { a.SetImpairment(-0.1, 0, sim.NewRand(1)) },
		func() { a.SetImpairment(0, 1.5, sim.NewRand(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid impairment did not panic")
				}
			}()
			fn()
		}()
	}
}
