package netdev

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func bigFrame() *ethernet.Frame {
	return &ethernet.Frame{Payload: make([]byte, 1478)} // 1500B wire
}

func TestAbortMidFrame(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) { h = a.TransmitHandle(bigFrame(), nil) })
	// 6 µs in: ~750 of 1500 bytes sent.
	e.RunUntil(6 * sim.Microsecond)
	remaining, ok := h.Abort()
	if !ok {
		t.Fatal("mid-frame abort refused")
	}
	// ~750 bytes left + 24 B fragment overhead.
	if remaining < 700 || remaining > 820 {
		t.Fatalf("remaining = %d", remaining)
	}
	// Delivery was suppressed.
	e.Run()
	if len(sb.frames) != 0 {
		t.Fatal("aborted frame delivered")
	}
	// The wire frees shortly (mCRC + IFG), then Resume delivers whole.
	if a.Busy() {
		e.RunUntil(e.Now() + ethernet.TxTime(ethernet.OverheadBytes, ethernet.Gbps))
	}
	done := false
	a.Resume(bigFrame(), remaining, func() { done = true })
	e.Run()
	if len(sb.frames) != 1 || !done {
		t.Fatalf("resume delivered %d frames, done=%v", len(sb.frames), done)
	}
}

func TestAbortTooEarlyRefused(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) { h = a.TransmitHandle(bigFrame(), nil) })
	// 100 ns in: only ~12 bytes sent (< 64 B minimum fragment).
	e.RunUntil(100 * sim.Nanosecond)
	if _, ok := h.Abort(); ok {
		t.Fatal("abort accepted before the minimum fragment")
	}
	e.Run() // frame must still complete normally
}

func TestAbortTooLateRefused(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) { h = a.TransmitHandle(bigFrame(), nil) })
	// 11.9 µs in: fewer than 64 bytes remain.
	e.RunUntil(11900 * sim.Nanosecond)
	if _, ok := h.Abort(); ok {
		t.Fatal("abort accepted with a sub-minimum remainder")
	}
}

func TestAbortAfterCompletionRefused(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) { h = a.TransmitHandle(bigFrame(), nil) })
	e.Run()
	if _, ok := h.Abort(); ok {
		t.Fatal("abort accepted after completion")
	}
}

func TestAbortDoubleRefused(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	var h *TxHandle
	e.After(0, "tx", func(*sim.Engine) { h = a.TransmitHandle(bigFrame(), nil) })
	e.RunUntil(6 * sim.Microsecond)
	if _, ok := h.Abort(); !ok {
		t.Fatal("first abort refused")
	}
	if _, ok := h.Abort(); ok {
		t.Fatal("second abort accepted")
	}
}

func TestHandleFrameAccessor(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	f := bigFrame()
	f.FlowID = 77
	e.After(0, "tx", func(*sim.Engine) {
		h := a.TransmitHandle(f, nil)
		if h.Frame().FlowID != 77 {
			t.Error("Frame accessor wrong")
		}
	})
	e.Run()
}
