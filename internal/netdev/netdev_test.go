package netdev

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// sink records received frames with their arrival times.
type sink struct {
	frames []*ethernet.Frame
	times  []sim.Time
	engine *sim.Engine
}

func (s *sink) Receive(f *ethernet.Frame, on *Ifc) {
	s.frames = append(s.frames, f)
	s.times = append(s.times, s.engine.Now())
}

func pair(e *sim.Engine, prop sim.Time) (*Ifc, *Ifc, *sink, *sink) {
	sa, sb := &sink{engine: e}, &sink{engine: e}
	a := NewIfc(e, "a", sa, ethernet.Gbps)
	b := NewIfc(e, "b", sb, ethernet.Gbps)
	Connect(a, b, prop)
	return a, b, sa, sb
}

func TestTransmitDelivers(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 100*sim.Nanosecond)
	f := &ethernet.Frame{FlowID: 42} // 64B minimum frame
	done := false
	e.After(0, "tx", func(*sim.Engine) { a.Transmit(f, func() { done = true }) })
	e.Run()
	if len(sb.frames) != 1 || sb.frames[0].FlowID != 42 {
		t.Fatalf("delivery wrong: %v", sb.frames)
	}
	// 64B at 1 Gbps = 512 ns serialization + 100 ns propagation.
	if sb.times[0] != 612*sim.Nanosecond {
		t.Fatalf("arrival = %v, want 612ns", sb.times[0])
	}
	if !done {
		t.Fatal("onDone never fired")
	}
}

func TestTransmitOccupancyIncludesIFG(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	var freeAt sim.Time
	e.After(0, "tx", func(*sim.Engine) {
		a.Transmit(&ethernet.Frame{}, nil)
		freeAt = a.FreeAt()
	})
	e.Run()
	// (64+20)B at 1 Gbps = 672 ns.
	if freeAt != 672*sim.Nanosecond {
		t.Fatalf("FreeAt = %v, want 672ns", freeAt)
	}
}

func TestTransmitWhileBusyPanics(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, _ := pair(e, 0)
	e.After(0, "tx", func(*sim.Engine) {
		a.Transmit(&ethernet.Frame{}, nil)
		defer func() {
			if recover() == nil {
				t.Error("transmit while busy did not panic")
			}
		}()
		a.Transmit(&ethernet.Frame{}, nil)
	})
	e.Run()
}

func TestBackToBackViaOnDone(t *testing.T) {
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	sent := 0
	var sendNext func()
	sendNext = func() {
		if sent >= 3 {
			return
		}
		sent++
		a.Transmit(&ethernet.Frame{Seq: uint32(sent)}, sendNext)
	}
	e.After(0, "start", func(*sim.Engine) { sendNext() })
	e.Run()
	if len(sb.frames) != 3 {
		t.Fatalf("received %d frames, want 3", len(sb.frames))
	}
	// Frames are spaced by full occupancy (672 ns), arrivals at
	// 512, 1184, 1856 ns.
	if sb.times[1]-sb.times[0] != 672*sim.Nanosecond {
		t.Fatalf("spacing = %v, want 672ns", sb.times[1]-sb.times[0])
	}
}

func TestTransmitClonesHeader(t *testing.T) {
	// Delivery hands the receiver its own header copy: mutating the
	// sender's header fields after Transmit must not reach the peer.
	// (Payload bytes are deliberately shared — immutable in flight per
	// the ethernet payload ownership contract — so only header fields
	// are probed here.)
	e := sim.NewEngine()
	a, _, _, sb := pair(e, 0)
	f := &ethernet.Frame{Seq: 1, VID: 7, Payload: []byte{1}}
	e.After(0, "tx", func(*sim.Engine) {
		a.Transmit(f, nil)
		f.Seq = 99 // mutate after transmit
		f.VID = 99
	})
	e.Run()
	if sb.frames[0].Seq != 1 || sb.frames[0].VID != 7 {
		t.Fatal("delivered frame aliases sender's header")
	}
	if &sb.frames[0].Payload[0] != &f.Payload[0] {
		t.Fatal("delivery deep-copied the payload; want shared bytes")
	}
}

func TestFullDuplex(t *testing.T) {
	e := sim.NewEngine()
	a, b, sa, sb := pair(e, 0)
	e.After(0, "tx", func(*sim.Engine) {
		a.Transmit(&ethernet.Frame{Seq: 1}, nil)
		b.Transmit(&ethernet.Frame{Seq: 2}, nil) // simultaneous reverse direction
	})
	e.Run()
	if len(sa.frames) != 1 || len(sb.frames) != 1 {
		t.Fatal("full duplex failed")
	}
}

func TestConnectErrors(t *testing.T) {
	e := sim.NewEngine()
	s := &sink{engine: e}
	a := NewIfc(e, "a", s, ethernet.Gbps)
	b := NewIfc(e, "b", s, ethernet.Gbps)
	c := NewIfc(e, "c", s, ethernet.Gbps)
	Connect(a, b, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double connect did not panic")
			}
		}()
		Connect(a, c, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("transmit without cable did not panic")
			}
		}()
		c.Transmit(&ethernet.Frame{}, nil)
	}()
}

func TestCounters(t *testing.T) {
	e := sim.NewEngine()
	a, b, _, _ := pair(e, 0)
	e.After(0, "tx", func(*sim.Engine) { a.Transmit(&ethernet.Frame{}, nil) })
	e.Run()
	tx, _, txb := a.Counters()
	_, rx, _ := b.Counters()
	if tx != 1 || rx != 1 || txb != 64 {
		t.Fatalf("counters = tx%d rx%d txb%d", tx, rx, txb)
	}
}
