// Package netdev is the physical layer of the testbed: full-duplex
// point-to-point Ethernet interfaces joined by links with a line rate
// and a propagation delay. Switches and TSNNic endpoints implement
// Receiver and exchange frames through Ifc values, with store-and-
// forward delivery and wire occupancy that includes preamble and
// inter-frame gap.
package netdev

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Receiver consumes frames arriving on an interface it owns.
type Receiver interface {
	Receive(f *ethernet.Frame, on *Ifc)
}

// Ifc is one direction-agnostic Ethernet interface. Transmission is
// exclusive: the owner must wait for the completion callback before
// transmitting again, as a MAC would.
type Ifc struct {
	Name   string
	engine *sim.Engine
	owner  Receiver
	rate   ethernet.Rate
	prop   sim.Time
	peer   *Ifc

	busyUntil sim.Time
	txFrames  uint64
	rxFrames  uint64
	txBytes   uint64
	// sniff, when set, observes every frame delivered to this
	// interface (a mirror-port tap).
	sniff func(*ethernet.Frame, sim.Time)
}

// NewIfc creates an interface owned by owner at the given line rate.
func NewIfc(engine *sim.Engine, name string, owner Receiver, rate ethernet.Rate) *Ifc {
	if rate <= 0 {
		panic("netdev: non-positive rate")
	}
	return &Ifc{Name: name, engine: engine, owner: owner, rate: rate}
}

// Connect joins a and b with a cable of the given propagation delay.
func Connect(a, b *Ifc, prop sim.Time) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("netdev: %s or %s already connected", a.Name, b.Name))
	}
	if prop < 0 {
		panic("netdev: negative propagation delay")
	}
	a.peer, b.peer = b, a
	a.prop, b.prop = prop, prop
}

// Rate returns the line rate.
func (i *Ifc) Rate() ethernet.Rate { return i.rate }

// Peer returns the interface at the other end of the cable.
func (i *Ifc) Peer() *Ifc { return i.peer }

// Busy reports whether a transmission is occupying the wire now.
func (i *Ifc) Busy() bool { return i.engine.Now() < i.busyUntil }

// FreeAt returns when the current transmission (if any) releases the
// wire.
func (i *Ifc) FreeAt() sim.Time { return i.busyUntil }

// Transmit serializes f onto the wire starting now. onDone (may be nil)
// fires when the interface is free again — after the frame plus
// inter-frame gap. The peer receives the frame store-and-forward: after
// full serialization plus propagation.
//
// Transmitting while Busy panics: the MAC layer above must serialize.
func (i *Ifc) Transmit(f *ethernet.Frame, onDone func()) {
	i.TransmitHandle(f, onDone)
}

// TxHandle tracks one in-flight transmission so a preemption-capable
// MAC (802.3br) can interrupt it.
type TxHandle struct {
	ifc       *Ifc
	frame     *ethernet.Frame
	wireBytes int // bytes still to serialize when this (fragment) began
	started   sim.Time
	deliver   sim.EventRef
	done      sim.EventRef
	completed bool
}

// TransmitHandle is Transmit returning an abort handle.
func (i *Ifc) TransmitHandle(f *ethernet.Frame, onDone func()) *TxHandle {
	return i.transmitBytes(f, f.WireBytes(), onDone)
}

// transmitBytes serializes wireBytes worth of f (a fragment when below
// the frame's full size); the complete frame is delivered only when the
// final fragment finishes.
func (i *Ifc) transmitBytes(f *ethernet.Frame, wireBytes int, onDone func()) *TxHandle {
	if i.peer == nil {
		panic(fmt.Sprintf("netdev: %s transmit with no cable", i.Name))
	}
	now := i.engine.Now()
	if now < i.busyUntil {
		panic(fmt.Sprintf("netdev: %s transmit while busy until %v", i.Name, i.busyUntil))
	}
	wire := ethernet.TxTime(wireBytes, i.rate)
	occupancy := ethernet.TxTime(wireBytes+ethernet.OverheadBytes, i.rate)
	i.busyUntil = now + occupancy
	i.txFrames++
	i.txBytes += uint64(wireBytes)

	h := &TxHandle{ifc: i, frame: f, wireBytes: wireBytes, started: now}
	deliver := f.Clone()
	peer := i.peer
	h.deliver = i.engine.After(wire+i.prop, "deliver:"+i.Name, func(e *sim.Engine) {
		peer.rxFrames++
		peer.owner.Receive(deliver, peer)
		if peer.sniff != nil {
			peer.sniff(deliver, e.Now())
		}
	})
	h.done = i.engine.After(occupancy, "txdone:"+i.Name, func(*sim.Engine) {
		h.completed = true
		if onDone != nil {
			onDone()
		}
	})
	return h
}

// Frame returns the frame this handle is transmitting.
func (h *TxHandle) Frame() *ethernet.Frame { return h.frame }

// fragOverheadBytes is the extra on-wire cost of each additional
// 802.3br fragment: renewed preamble/SFD, fragment header and mCRC.
const fragOverheadBytes = 24

// minFragmentBytes is the smallest legal non-final fragment.
const minFragmentBytes = 64

// Abort interrupts the transmission at the current instant (802.3br
// preemption): the partial fragment's wire time is already spent, the
// delivery is suppressed, and the remaining bytes (plus the per-
// fragment overhead) are returned for a later Resume. ok is false when
// the frame is too far along (or too early) to preempt legally.
func (h *TxHandle) Abort() (remainingBytes int, ok bool) {
	if h.completed {
		return 0, false
	}
	now := h.ifc.engine.Now()
	elapsed := now - h.started
	sentBytes := int(int64(elapsed) * int64(h.ifc.rate) / (8 * int64(sim.Second)))
	remaining := h.wireBytes - sentBytes
	if sentBytes < minFragmentBytes || remaining < minFragmentBytes {
		return 0, false
	}
	if !h.ifc.engine.Cancel(h.deliver) || !h.ifc.engine.Cancel(h.done) {
		return 0, false
	}
	h.completed = true
	// The wire frees after the fragment's mCRC + IFG.
	h.ifc.busyUntil = now + ethernet.TxTime(ethernet.OverheadBytes, h.ifc.rate)
	return remaining + fragOverheadBytes, true
}

// Resume continues an aborted frame: transmits remainingBytes and
// delivers the full original frame when they complete.
func (i *Ifc) Resume(f *ethernet.Frame, remainingBytes int, onDone func()) *TxHandle {
	return i.transmitBytes(f, remainingBytes, onDone)
}

// SetSniffer installs a receive-side tap: fn observes every frame
// delivered to this interface, after the owner processed it.
func (i *Ifc) SetSniffer(fn func(*ethernet.Frame, sim.Time)) { i.sniff = fn }

// Counters returns (txFrames, rxFrames, txBytes).
func (i *Ifc) Counters() (uint64, uint64, uint64) {
	return i.txFrames, i.rxFrames, i.txBytes
}
