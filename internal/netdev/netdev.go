// Package netdev is the physical layer of the testbed: full-duplex
// point-to-point Ethernet interfaces joined by links with a line rate
// and a propagation delay. Switches and TSNNic endpoints implement
// Receiver and exchange frames through Ifc values, with store-and-
// forward delivery and wire occupancy that includes preamble and
// inter-frame gap.
package netdev

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Receiver consumes frames arriving on an interface it owns.
type Receiver interface {
	Receive(f *ethernet.Frame, on *Ifc)
}

// Ifc is one direction-agnostic Ethernet interface. Transmission is
// exclusive: the owner must wait for the completion callback before
// transmitting again, as a MAC would.
type Ifc struct {
	Name   string
	engine *sim.Engine
	owner  Receiver
	rate   ethernet.Rate
	prop   sim.Time
	peer   *Ifc

	busyUntil sim.Time
	txFrames  uint64
	rxFrames  uint64
	txBytes   uint64
	// sniff, when set, observes every frame delivered to this
	// interface (a mirror-port tap).
	sniff func(*ethernet.Frame, sim.Time)

	// deliverPrio is this interface's stable global index, stamped as
	// the same-instant tie-break priority on every delivery event
	// arriving here. Two deliveries to one interface can never tie (the
	// wire serializes them), so at any instant the priority totally
	// orders all deliveries — by interface identity rather than by
	// scheduling order, which is what lets a partitioned run execute
	// same-instant deliveries in exactly the serial order. Zero (unset)
	// degrades to plain FIFO tie-breaking.
	deliverPrio uint64
	// remotePost, when set, reroutes this interface's deliveries across
	// a partition boundary: instead of scheduling the delivery on the
	// sender's engine, the transmit path hands (frame, arrival instant,
	// final-fragment wire time) to the hook, which mails it to the
	// receiving partition for ScheduleRemoteDelivery. Cut links carry no
	// fault injection or impairments (the partitioned testbed rejects
	// them), so the delivery-time fault checks are skipped on this path.
	remotePost func(f *ethernet.Frame, at, wire sim.Time)

	// Link state. down is symmetric across the cable (both ends are
	// flipped together); epoch increments on every down transition so
	// frames serialized before an outage are dropped at delivery time
	// even if the link has flapped back up by then.
	down  bool
	epoch uint64

	// Egress impairments for the i→peer direction, evaluated at
	// delivery time: lossProb drops the frame outright, corruptProb
	// models a bit error the receiver discards as an FCS failure.
	lossProb    float64
	corruptProb float64
	impairRng   *sim.Rand

	dropLinkDown uint64
	dropLoss     uint64
	dropCorrupt  uint64
	mLinkDown    metrics.Counter
	mLoss        metrics.Counter
	mCorrupt     metrics.Counter
}

// NewIfc creates an interface owned by owner at the given line rate.
func NewIfc(engine *sim.Engine, name string, owner Receiver, rate ethernet.Rate) *Ifc {
	if rate <= 0 {
		panic("netdev: non-positive rate")
	}
	return &Ifc{Name: name, engine: engine, owner: owner, rate: rate}
}

// Connect joins a and b with a cable of the given propagation delay.
func Connect(a, b *Ifc, prop sim.Time) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("netdev: %s or %s already connected", a.Name, b.Name))
	}
	if prop < 0 {
		panic("netdev: negative propagation delay")
	}
	a.peer, b.peer = b, a
	a.prop, b.prop = prop, prop
}

// Rate returns the line rate.
func (i *Ifc) Rate() ethernet.Rate { return i.rate }

// LinkUp reports whether the cable is up. An interface with no cable
// is down by definition.
func (i *Ifc) LinkUp() bool { return i.peer != nil && !i.down }

// SetLink changes the administrative/physical state of the cable this
// interface is attached to. Both ends change together, as with a real
// cable pull. Taking the link down does NOT interrupt the local MAC:
// an in-flight transmission keeps occupying the wire and its onDone
// completion still fires exactly once at the normal time — only the
// delivery to the peer is suppressed. This guarantees a fault can
// never strand a busy interface or double-fire a completion.
//
// Idempotent: setting the current state again is a no-op.
func (i *Ifc) SetLink(up bool) {
	if i.peer == nil {
		panic(fmt.Sprintf("netdev: %s SetLink with no cable", i.Name))
	}
	if up != i.down { // already in the requested state
		return
	}
	i.down, i.peer.down = !up, !up
	if !up {
		i.epoch++
		i.peer.epoch++
	}
}

// Disconnect is SetLink(false): the peer disappears mid-flight. Frames
// currently on the wire are lost; the transmitting MAC completes
// normally.
func (i *Ifc) Disconnect() { i.SetLink(false) }

// SetImpairment configures probabilistic loss and bit corruption for
// frames transmitted from this interface toward its peer. Corrupted
// frames are discarded by the receiver (FCS check), so both impairments
// surface as drops; they are counted separately. rng must be non-nil
// when either probability is positive, and should be dedicated to this
// interface so fault scenarios stay deterministic.
func (i *Ifc) SetImpairment(lossProb, corruptProb float64, rng *sim.Rand) {
	if (lossProb > 0 || corruptProb > 0) && rng == nil {
		panic(fmt.Sprintf("netdev: %s impairment without rng", i.Name))
	}
	if lossProb < 0 || lossProb > 1 || corruptProb < 0 || corruptProb > 1 {
		panic(fmt.Sprintf("netdev: %s impairment probability out of [0,1]", i.Name))
	}
	i.lossProb, i.corruptProb, i.impairRng = lossProb, corruptProb, rng
}

// ClearImpairment removes any configured loss/corruption.
func (i *Ifc) ClearImpairment() { i.lossProb, i.corruptProb, i.impairRng = 0, 0, nil }

// InstrumentLink binds per-reason drop counters for frames lost on the
// i→peer direction of the link (link-down, probabilistic loss, bit
// corruption). Zero-value counters are no-ops.
func (i *Ifc) InstrumentLink(linkDown, loss, corrupt metrics.Counter) {
	i.mLinkDown, i.mLoss, i.mCorrupt = linkDown, loss, corrupt
}

// LinkDrops returns the number of frames lost on the i→peer direction
// broken down by cause: (link down, probabilistic loss, corruption).
func (i *Ifc) LinkDrops() (linkDown, loss, corrupt uint64) {
	return i.dropLinkDown, i.dropLoss, i.dropCorrupt
}

// Peer returns the interface at the other end of the cable.
func (i *Ifc) Peer() *Ifc { return i.peer }

// SetDeliverPrio assigns this interface's stable global index, used as
// the same-instant tie-break priority for deliveries arriving here.
// The testbed assigns indexes in build order (switch ports first, then
// NICs in sorted host order, 1-based) so the numbering is identical in
// serial and partitioned builds.
func (i *Ifc) SetDeliverPrio(p uint64) { i.deliverPrio = p }

// DeliverPrio returns the interface's delivery tie-break index.
func (i *Ifc) DeliverPrio() uint64 { return i.deliverPrio }

// SetRemotePost installs the cut-link hook: deliveries transmitted
// from this interface are handed to fn instead of being scheduled on
// the local engine. The receiving partition replays them through the
// peer's ScheduleRemoteDelivery. Pass nil to restore local delivery.
func (i *Ifc) SetRemotePost(fn func(f *ethernet.Frame, at, wire sim.Time)) { i.remotePost = fn }

// ScheduleRemoteDelivery schedules a frame arriving from the peer
// across a partition boundary onto this (receiving) interface's
// engine, at the precomputed arrival instant with this interface's
// delivery priority — byte-for-byte the same dispatch the serial
// engine would have performed. wire is the final fragment's
// serialization time, needed to close the latency-attribution hop.
// Fault and impairment checks are skipped: partitioned runs carry
// neither (validated at build), so a cut link is always clean.
func (i *Ifc) ScheduleRemoteDelivery(f *ethernet.Frame, at, wire sim.Time) {
	i.engine.AtPrio(at, i.deliverPrio, "rdeliver:"+i.Name, func(e *sim.Engine) {
		i.rxFrames++
		f.Span.OnDeliver(e.Now(), i.prop, wire)
		i.owner.Receive(f, i)
		if i.sniff != nil {
			i.sniff(f, e.Now())
		}
	})
}

// Busy reports whether a transmission is occupying the wire now.
func (i *Ifc) Busy() bool { return i.engine.Now() < i.busyUntil }

// FreeAt returns when the current transmission (if any) releases the
// wire.
func (i *Ifc) FreeAt() sim.Time { return i.busyUntil }

// Transmit serializes f onto the wire starting now. onDone (may be nil)
// fires when the interface is free again — after the frame plus
// inter-frame gap. The peer receives the frame store-and-forward: after
// full serialization plus propagation.
//
// Transmitting while Busy panics: the MAC layer above must serialize.
func (i *Ifc) Transmit(f *ethernet.Frame, onDone func()) {
	i.TransmitHandle(f, onDone)
}

// TxHandle tracks one in-flight transmission so a preemption-capable
// MAC (802.3br) can interrupt it.
type TxHandle struct {
	ifc       *Ifc
	frame     *ethernet.Frame
	wireBytes int // bytes still to serialize when this (fragment) began
	started   sim.Time
	deliver   sim.EventRef
	done      sim.EventRef
	completed bool
}

// TransmitHandle is Transmit returning an abort handle.
func (i *Ifc) TransmitHandle(f *ethernet.Frame, onDone func()) *TxHandle {
	return i.transmitBytes(f, f.WireBytes(), onDone)
}

// transmitBytes serializes wireBytes worth of f (a fragment when below
// the frame's full size); the complete frame is delivered only when the
// final fragment finishes.
func (i *Ifc) transmitBytes(f *ethernet.Frame, wireBytes int, onDone func()) *TxHandle {
	if i.peer == nil {
		panic(fmt.Sprintf("netdev: %s transmit with no cable", i.Name))
	}
	now := i.engine.Now()
	if now < i.busyUntil {
		panic(fmt.Sprintf("netdev: %s transmit while busy until %v", i.Name, i.busyUntil))
	}
	wire := ethernet.TxTime(wireBytes, i.rate)
	occupancy := ethernet.TxTime(wireBytes+ethernet.OverheadBytes, i.rate)
	i.busyUntil = now + occupancy
	i.txFrames++
	i.txBytes += uint64(wireBytes)

	h := &TxHandle{ifc: i, frame: f, wireBytes: wireBytes, started: now}
	// Header-only copy: the receiver gets its own header fields but
	// shares the payload bytes, which are immutable once in flight
	// (see the ethernet payload ownership contract).
	deliver := f.CloneHeader()
	peer := i.peer
	epoch := i.epoch
	if i.remotePost != nil {
		// Cut link: the receiving partition schedules the delivery on
		// its own engine. No local deliver event exists, so Abort()
		// cannot cancel it — the partitioned testbed rejects
		// preemption-enabled designs for exactly this reason.
		i.remotePost(deliver, now+wire+i.prop, wire)
		h.done = i.engine.After(occupancy, "txdone:"+i.Name, func(*sim.Engine) {
			h.completed = true
			if onDone != nil {
				onDone()
			}
		})
		return h
	}
	h.deliver = i.engine.AtPrio(now+wire+i.prop, peer.deliverPrio, "deliver:"+i.Name, func(e *sim.Engine) {
		// Link faults and impairments are applied at delivery time so
		// the transmitting MAC's timing is never perturbed. The epoch
		// check catches a down/up flap between serialization and
		// arrival: a frame launched before (or during) an outage is
		// lost even if the link is back up now.
		if i.down || i.epoch != epoch {
			i.dropLinkDown++
			i.mLinkDown.Inc()
			return
		}
		if i.lossProb > 0 && i.impairRng.Float64() < i.lossProb {
			i.dropLoss++
			i.mLoss.Inc()
			return
		}
		if i.corruptProb > 0 && i.impairRng.Float64() < i.corruptProb {
			// Bit error on the wire: the receiver's FCS check fails
			// and the MAC discards the frame silently.
			i.dropCorrupt++
			i.mCorrupt.Inc()
			return
		}
		peer.rxFrames++
		// Close the latency-attribution hop: propagation plus this
		// (final) fragment's serialization; the remainder since the last
		// boundary books as residence at the transmitting node.
		deliver.Span.OnDeliver(e.Now(), i.prop, wire)
		peer.owner.Receive(deliver, peer)
		if peer.sniff != nil {
			peer.sniff(deliver, e.Now())
		}
	})
	h.done = i.engine.After(occupancy, "txdone:"+i.Name, func(*sim.Engine) {
		h.completed = true
		if onDone != nil {
			onDone()
		}
	})
	return h
}

// Frame returns the frame this handle is transmitting.
func (h *TxHandle) Frame() *ethernet.Frame { return h.frame }

// fragOverheadBytes is the extra on-wire cost of each additional
// 802.3br fragment: renewed preamble/SFD, fragment header and mCRC.
const fragOverheadBytes = 24

// minFragmentBytes is the smallest legal non-final fragment.
const minFragmentBytes = 64

// Abort interrupts the transmission at the current instant (802.3br
// preemption): the partial fragment's wire time is already spent, the
// delivery is suppressed, and the remaining bytes (plus the per-
// fragment overhead) are returned for a later Resume. ok is false when
// the frame is too far along (or too early) to preempt legally.
func (h *TxHandle) Abort() (remainingBytes int, ok bool) {
	if h.completed {
		return 0, false
	}
	now := h.ifc.engine.Now()
	elapsed := now - h.started
	sentBytes := int(int64(elapsed) * int64(h.ifc.rate) / (8 * int64(sim.Second)))
	remaining := h.wireBytes - sentBytes
	if sentBytes < minFragmentBytes || remaining < minFragmentBytes {
		return 0, false
	}
	if !h.ifc.engine.Cancel(h.deliver) || !h.ifc.engine.Cancel(h.done) {
		return 0, false
	}
	h.completed = true
	// The wire frees after the fragment's mCRC + IFG.
	h.ifc.busyUntil = now + ethernet.TxTime(ethernet.OverheadBytes, h.ifc.rate)
	return remaining + fragOverheadBytes, true
}

// Resume continues an aborted frame: transmits remainingBytes and
// delivers the full original frame when they complete.
func (i *Ifc) Resume(f *ethernet.Frame, remainingBytes int, onDone func()) *TxHandle {
	return i.transmitBytes(f, remainingBytes, onDone)
}

// SetSniffer installs a receive-side tap: fn observes every frame
// delivered to this interface, after the owner processed it.
func (i *Ifc) SetSniffer(fn func(*ethernet.Frame, sim.Time)) { i.sniff = fn }

// Counters returns (txFrames, rxFrames, txBytes).
func (i *Ifc) Counters() (uint64, uint64, uint64) {
	return i.txFrames, i.rxFrames, i.txBytes
}
