package forward

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

func TestResolveUnicast(t *testing.T) {
	e := New(16, 4)
	if err := e.Unicast.Add(ethernet.HostMAC(1), 10, 2); err != nil {
		t.Fatal(err)
	}
	f := &ethernet.Frame{Dst: ethernet.HostMAC(1), VID: 10}
	ports, ok := e.Resolve(f)
	if !ok || len(ports) != 1 || ports[0] != 2 {
		t.Fatalf("Resolve = (%v,%v)", ports, ok)
	}
}

func TestResolveMiss(t *testing.T) {
	e := New(16, 4)
	f := &ethernet.Frame{Dst: ethernet.HostMAC(9), VID: 1}
	if _, ok := e.Resolve(f); ok {
		t.Fatal("miss resolved")
	}
	if e.NoRoute() != 1 {
		t.Fatalf("NoRoute = %d", e.NoRoute())
	}
}

func TestResolveMulticast(t *testing.T) {
	e := New(16, 4)
	grp := ethernet.GroupMAC(300)
	if err := e.Multicast.Add(MCID(grp), 0b1101); err != nil {
		t.Fatal(err)
	}
	ports, ok := e.Resolve(&ethernet.Frame{Dst: grp})
	if !ok {
		t.Fatal("multicast miss")
	}
	want := []int{0, 2, 3}
	if len(ports) != len(want) {
		t.Fatalf("ports = %v, want %v", ports, want)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ports = %v, want %v", ports, want)
		}
	}
}

func TestResolveMulticastMiss(t *testing.T) {
	e := New(16, 4)
	if _, ok := e.Resolve(&ethernet.Frame{Dst: ethernet.GroupMAC(7)}); ok {
		t.Fatal("multicast miss resolved")
	}
}

func TestMCIDDerivation(t *testing.T) {
	if MCID(ethernet.GroupMAC(0x1234)) != 0x1234 {
		t.Fatalf("MCID = %x", MCID(ethernet.GroupMAC(0x1234)))
	}
}

func TestZeroMulticastTable(t *testing.T) {
	// Customized switches split multicast into unicast and run with a
	// zero-entry multicast table.
	e := New(16, 0)
	if _, ok := e.Resolve(&ethernet.Frame{Dst: ethernet.GroupMAC(1)}); ok {
		t.Fatal("zero-capacity multicast resolved")
	}
}
