// Package forward implements the Packet Switch function template of
// Fig. 5: a parser submodule that extracts the lookup fields from the
// packet header and a lookup submodule that resolves the output
// port(s). Unicast destinations are matched on (Dst MAC, VID); if the
// destination is a multicast address the multicast index is used to
// find a set of outports (Fig. 4).
package forward

import (
	"encoding/binary"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/tables"
)

// Engine is one switch's Packet Switch stage.
type Engine struct {
	Unicast   *tables.UnicastTable
	Multicast *tables.MulticastTable
	// noRoute counts lookup misses (frames dropped for lack of a
	// forwarding entry).
	noRoute uint64
}

// New creates the stage with the given table capacities (the
// set_switch_tbl customization API parameters).
func New(unicastSize, multicastSize int) *Engine {
	return &Engine{
		Unicast:   tables.NewUnicast(unicastSize),
		Multicast: tables.NewMulticast(multicastSize),
	}
}

// MCID derives the multicast index from a group MAC: the low 16 bits,
// the common hardware convention.
func MCID(dst ethernet.MAC) uint16 {
	return binary.BigEndian.Uint16(dst[4:6])
}

// Resolve parses the frame header and returns the set of output ports.
// ok is false when no table entry matches (the frame is dropped; the
// testbed installs static routes for every flow, so a miss indicates a
// misconfiguration, which the stats surface).
func (e *Engine) Resolve(f *ethernet.Frame) (ports []int, ok bool) {
	if f.Dst.IsMulticast() && !f.Dst.IsBroadcast() {
		mask, hit := e.Multicast.Lookup(MCID(f.Dst))
		if !hit {
			e.noRoute++
			return nil, false
		}
		for p := 0; p < 32; p++ {
			if mask&(1<<uint(p)) != 0 {
				ports = append(ports, p)
			}
		}
		return ports, true
	}
	p, hit := e.Unicast.Lookup(f.Dst, f.VID)
	if !hit {
		e.noRoute++
		return nil, false
	}
	return []int{p}, true
}

// NoRoute returns the number of lookup misses.
func (e *Engine) NoRoute() uint64 { return e.noRoute }
