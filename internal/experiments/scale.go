// The scale study exercises the partitioned parallel simulator
// (internal/psim) on a topology two orders of magnitude beyond the
// paper's 6-switch demo ring: one large mesh, the same seeded
// workload, run at 1/2/4/8 partitions. Events-per-second and the
// speedup over the serial engine are the headline numbers; the
// delivered-frame count doubles as a live parity witness (every
// partition count must deliver the identical total).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// ScaleRow is one partition count's measurement.
type ScaleRow struct {
	Partitions int
	// Window is the conservative lookahead the run stepped by (0 when
	// serial).
	Window sim.Time
	// Wall is the host time the simulation took.
	Wall time.Duration
	// Events is the discrete-event count (identical at every partition
	// count — the parity contract).
	Events uint64
	// EventsPerSec is Events/Wall, the throughput headline.
	EventsPerSec float64
	// Speedup is this row's throughput over the serial row's.
	Speedup float64
	// Delivered is the total delivered-frame count, a parity witness.
	Delivered uint64
	// TSMax is the worst TS latency, a second parity witness.
	TSMax sim.Time
}

// scaleSwitches is the mesh size of the study: a 14×15 grid, ~35× the
// paper's ring.
const scaleSwitches = 210

// scaleCableDelay stretches every cable to long-haul factory trunks.
// The conservative window is one cable delay plus a minimum frame's
// store-and-forward time, so longer cables mean fewer barrier steps
// per simulated second — this is the knob that keeps synchronization
// cost negligible against event execution.
const scaleCableDelay = 30 * sim.Microsecond

// ScalePartitionCounts are the partition counts the study sweeps.
var ScalePartitionCounts = []int{1, 2, 4, 8}

// buildScale constructs the study's workload and network for one
// partition count. Exported to bench_test.go via ScaleStudy only.
func buildScale(p Params, partitions int) (*testbed.Net, *metrics.Registry, error) {
	w, err := workload.Build(workload.Params{
		Topology: "mesh",
		Switches: scaleSwitches,
		TSFlows:  p.TSFlows * 8,
		Hops:     4,
		WireSize: 64,
		SlotUs:   65,
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design:     w.Design,
		Topo:       w.Topo,
		Flows:      w.Specs,
		Metrics:    reg,
		Seed:       p.Seed,
		CableDelay: scaleCableDelay,
		Partitions: partitions,
	})
	if err != nil {
		return nil, nil, err
	}
	return net, reg, nil
}

// ScaleStudy runs the partitioned-simulation sweep and returns one row
// per partition count. It errors if any partitioned run's parity
// witnesses (event, delivery and worst-latency totals) diverge from
// the serial row — the study refuses to report throughput for a run
// that broke determinism.
func ScaleStudy(p Params) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, parts := range ScalePartitionCounts {
		net, reg, err := buildScale(p, parts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		net.Run(0, p.Duration)
		wall := time.Since(start)
		row := ScaleRow{
			Partitions: net.Partitions(),
			Window:     net.LookaheadWindow(),
			Wall:       wall,
			Events:     reg.CounterValue("tsn_sim_events_total"),
			Delivered:  reg.SumCounter("tsn_flows_delivered_total"),
			TSMax:      net.Summary(ethernet.ClassTS).MaxLat,
		}
		if secs := wall.Seconds(); secs > 0 {
			row.EventsPerSec = float64(row.Events) / secs
		}
		rows = append(rows, row)
	}
	base := rows[0]
	for i := range rows {
		if base.EventsPerSec > 0 {
			rows[i].Speedup = rows[i].EventsPerSec / base.EventsPerSec
		}
		if rows[i].Events != base.Events || rows[i].Delivered != base.Delivered || rows[i].TSMax != base.TSMax {
			return nil, fmt.Errorf("scale: partitions=%d diverged from serial (events %d vs %d, delivered %d vs %d, tsmax %v vs %v)",
				rows[i].Partitions, rows[i].Events, base.Events,
				rows[i].Delivered, base.Delivered, rows[i].TSMax, base.TSMax)
		}
	}
	return rows, nil
}

// FormatScale renders the study as an aligned table.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-SCALE — partitioned simulation, %d-switch mesh (lookahead %v)\n",
		scaleSwitches, rows[len(rows)-1].Window)
	fmt.Fprintf(&b, "  %-10s %12s %12s %10s %12s\n",
		"partitions", "events", "wall", "ev/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10d %12d %12v %10.0f %11.2fx\n",
			r.Partitions, r.Events, r.Wall.Round(time.Millisecond), r.EventsPerSec, r.Speedup)
	}
	return b.String()
}
