// Package experiments regenerates every table and figure of the
// paper's evaluation (§II.A Table I/Fig. 2, §IV Table III/Fig. 7) plus
// the sync-precision claim and an ITP ablation, against the simulated
// substrate. Each experiment returns structured rows; cmd/tsnbench
// prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// Row is one data point of a latency experiment.
type Row struct {
	// Label names the x value ("2 hops", "512B", "200Mbps"...).
	Label string
	// X is the numeric x value for plotting.
	X float64
	// TS-flow metrics.
	Mean, Jitter, Min, Max sim.Time
	LossRate               float64
	Sent, Received         uint64
	DeadlineMisses         uint64
}

// Series is one experiment's output: an x-axis sweep of Rows.
type Series struct {
	Name  string
	XAxis string
	Rows  []Row
}

// String renders the series as an aligned table in µs, the paper's
// unit.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %8s %8s\n",
		s.XAxis, "mean(µs)", "jitter(µs)", "min(µs)", "max(µs)", "loss", "sent")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "  %-12s %10.1f %10.2f %10.1f %10.1f %7.2f%% %8d\n",
			r.Label, r.Mean.Micros(), r.Jitter.Micros(), r.Min.Micros(), r.Max.Micros(),
			100*r.LossRate, r.Sent)
	}
	return b.String()
}

// CSV renders the series as comma-separated rows for external
// plotting tools.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,label,mean_us,jitter_us,min_us,max_us,loss,sent,received,deadline_misses\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%g,%s,%.3f,%.3f,%.3f,%.3f,%.6f,%d,%d,%d\n",
			r.X, r.Label, r.Mean.Micros(), r.Jitter.Micros(), r.Min.Micros(),
			r.Max.Micros(), r.LossRate, r.Sent, r.Received, r.DeadlineMisses)
	}
	return b.String()
}

// Params scales the experiments; DefaultParams matches the paper,
// ShortParams keeps unit tests fast.
type Params struct {
	// TSFlows is the TS flow count (paper: 1024).
	TSFlows int
	// Duration is the measured traffic window.
	Duration sim.Time
	// Seed drives workload randomization.
	Seed uint64
	// Metrics, when non-nil, instruments every built network into this
	// registry (cmd/tsnbench -metrics). Under the parallel harness each
	// sweep point instruments a scratch registry that is merged back in
	// sweep order (see pool.go), so the export does not depend on
	// worker scheduling.
	Metrics *metrics.Registry
	// Parallel bounds the sweep worker pool: sweep points (independent
	// build-and-run pairs) run on up to this many goroutines. 1 is
	// fully serial; 0 (the default) uses runtime.GOMAXPROCS(0). Output
	// is byte-identical at every setting.
	Parallel int
}

// DefaultParams reproduces the paper's workload scale.
func DefaultParams() Params {
	return Params{TSFlows: 1024, Duration: 100 * sim.Millisecond, Seed: 42}
}

// ShortParams is a reduced scale for -short test runs.
func ShortParams() Params {
	return Params{TSFlows: 128, Duration: 50 * sim.Millisecond, Seed: 42}
}

// ringBench assembles the paper's demo network: a 6-switch ring with
// one TSNNic host per switch, TS flows of a fixed hop count (number of
// switches traversed), optional RC/BE background on the first hop, and
// a derived (customized) or commercial design.
type ringBench struct {
	Topo  *topology.Topology
	Specs []*flows.Spec
	Net   *testbed.Net
}

// benchSpec configures buildRing.
type benchSpec struct {
	p         Params
	hops      int // switches traversed by each TS flow
	wireSize  int
	slot      sim.Time
	rcMbps    int // per-source RC background
	beMbps    int // per-source BE background
	useConfig *core.Config
	gptp      bool
	// noITP leaves every TS flow at injection offset zero (the naive
	// baseline of the ITP ablation).
	noITP bool
	// queueDepth/bufferNum override the derived provisioning when > 0
	// (the Table I threshold study turns these knobs).
	queueDepth int
	bufferNum  int
}

// buildRing constructs and programs the network.
func buildRing(bs benchSpec) (*ringBench, error) {
	if bs.wireSize == 0 {
		bs.wireSize = 64
	}
	if bs.slot == 0 {
		bs.slot = 65 * sim.Microsecond
	}
	if bs.hops == 0 {
		bs.hops = 3
	}
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
		topo.AttachHost(200+h, h) // background injector per switch
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count:    bs.p.TSFlows,
		Period:   10 * sim.Millisecond,
		WireSize: bs.wireSize,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+bs.hops-1)%6
		},
		Seed: bs.p.Seed,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	// Background: RC and/or BE from three injectors, two hops each, so
	// they share trunks with the TS flows.
	id := uint32(100_000)
	for src := 0; src < 3; src++ {
		if bs.rcMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassRC,
				200+src, 100+(src+2)%6, uint16(3000+src), ethernet.Rate(bs.rcMbps)*ethernet.Mbps))
			id++
		}
		if bs.beMbps > 0 {
			specs = append(specs, flows.Background(id, ethernet.ClassBE,
				200+src, 100+(src+2)%6, uint16(3200+src), ethernet.Rate(bs.beMbps)*ethernet.Mbps))
			id++
		}
	}
	if err := core.BindPaths(topo, specs); err != nil {
		return nil, err
	}

	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs, SlotSize: bs.slot})
	if err != nil {
		return nil, err
	}
	if !bs.noITP {
		der.Plan.Apply(specs)
	}
	cfg := der.Config
	if bs.useConfig != nil {
		cfg = *bs.useConfig
		cfg.SlotSize = bs.slot
	}
	if bs.queueDepth > 0 {
		cfg.QueueDepth = bs.queueDepth
	}
	if bs.bufferNum > 0 {
		cfg.BufferNum = bs.bufferNum
	}
	design, err := core.BuilderFor(cfg, nil).Build()
	if err != nil {
		return nil, err
	}
	net, err := testbed.Build(testbed.Options{
		Design:     design,
		Topo:       topo,
		Flows:      specs,
		EnableGPTP: bs.gptp,
		Seed:       bs.p.Seed,
		Metrics:    bs.p.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &ringBench{Topo: topo, Specs: specs, Net: net}, nil
}

// run executes the scenario and summarizes the TS class.
func (rb *ringBench) run(p Params, warmup sim.Time) Row {
	rb.Net.Run(warmup, p.Duration)
	s := rb.Net.Summary(ethernet.ClassTS)
	return Row{
		Mean: s.MeanLatency, Jitter: s.Jitter, Min: s.MinLat, Max: s.MaxLat,
		LossRate: s.LossRate, Sent: s.Sent, Received: s.Received,
		DeadlineMisses: s.DeadlineMisses,
	}
}
