package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnnic"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// PreemptRow is one MAC-configuration data point.
type PreemptRow struct {
	Config   string
	TSMean   sim.Time
	TSP99    sim.Time
	TSMax    sim.Time
	BELoss   float64
	TSJitter sim.Time
}

// PreemptStudy measures 802.1Qbu/802.3br frame preemption on an
// ungated strict-priority port: periodic express (TS) frames compete
// with saturating 1500 B best-effort traffic. Without preemption the
// express worst case includes one full MTU of head-of-line blocking
// (~12 µs at 1 Gbps); with preemption the blocking shrinks to a
// fragment boundary. (CQF hides this effect behind its guard band,
// which is why the paper's evaluation doesn't need preemption — this
// study shows what the MAC feature buys an ungated design.)
func PreemptStudy(p Params) ([]PreemptRow, error) {
	run := func(rp Params, preempt bool) (PreemptRow, error) {
		engine := sim.NewEngine()
		cfg := tsnswitch.Config{
			ID: 0, Ports: 2, QueuesPerPort: 8, QueueDepth: 64,
			BuffersPerPort: 256, UnicastSize: 16, MulticastSize: 0,
			ClassSize: 16, MeterSize: 4, GateSize: 2, CBSMapSize: 3, CBSSize: 3,
			SlotSize: 65 * sim.Microsecond, TSQueueA: 7, TSQueueB: 6,
			LinkRate: ethernet.Gbps, EnablePreemption: preempt,
		}
		sw := tsnswitch.New(engine, cfg)
		// Ungated: strict priority only.
		open := gate.NewVarGCL([]gate.VarEntry{{Mask: gate.AllOpen, Duration: sim.Millisecond}})
		for port := 0; port < cfg.Ports; port++ {
			if err := sw.SetPortSchedules(port, open, open); err != nil {
				return PreemptRow{}, err
			}
		}
		col := analyzer.NewCollector()
		src := tsnnic.New(engine, 1, ethernet.Gbps, col)
		dst := tsnnic.New(engine, 2, ethernet.Gbps, col)
		netdev.Connect(src.Ifc(), sw.Ifc(0), 100*sim.Nanosecond)
		netdev.Connect(dst.Ifc(), sw.Ifc(1), 100*sim.Nanosecond)
		if err := sw.Forward().Unicast.Add(ethernet.HostMAC(2), 1, 1); err != nil {
			return PreemptRow{}, err
		}
		if err := sw.Forward().Unicast.Add(ethernet.HostMAC(2), 2, 1); err != nil {
			return PreemptRow{}, err
		}

		// Express: 64 B every 100 µs. The period is coprime with the
		// 1500 B BE pacing, so arrivals sample every phase of the
		// interfering frame.
		ts := &flows.Spec{
			ID: 1, Class: ethernet.ClassTS, SrcHost: 1, DstHost: 2,
			VID: 1, PCP: 7, WireSize: 64, Period: 100 * sim.Microsecond,
		}
		// Background: 900 Mbps of 1500 B BE frames from a second queue
		// on the same egress port.
		be := flows.Background(2, ethernet.ClassBE, 1, 2, 2, 900*ethernet.Mbps)
		be.WireSize = 1500
		stop := rp.Duration
		src.SetStopTime(stop)
		src.StartFlow(be)
		src.StartFlow(ts)
		engine.RunUntil(stop + sim.Millisecond)

		sent := src.Sent()
		tsSum := col.Summarize(ethernet.ClassTS, sent)
		beSum := col.Summarize(ethernet.ClassBE, sent)
		label := "store-and-forward MAC"
		if preempt {
			label = "preemptive MAC (802.3br)"
		}
		return PreemptRow{
			Config: label,
			TSMean: tsSum.MeanLatency, TSP99: tsSum.P99, TSMax: tsSum.MaxLat,
			TSJitter: tsSum.Jitter, BELoss: beSum.LossRate,
		}, nil
	}

	return sweep(p, 2, func(i int, rp Params) (PreemptRow, error) {
		return run(rp, i == 1)
	})
}

// FormatPreempt renders the study.
func FormatPreempt(rows []PreemptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-PREEMPT — frame preemption on an ungated strict-priority port (900 Mbps BE)\n")
	fmt.Fprintf(&b, "  %-26s %10s %10s %10s %10s\n", "MAC", "TS mean", "TS p99", "TS max", "TS jitter")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %8.2fµs %8.2fµs %8.2fµs %8.2fµs\n",
			r.Config, r.TSMean.Micros(), r.TSP99.Micros(), r.TSMax.Micros(), r.TSJitter.Micros())
	}
	return b.String()
}
