package experiments

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// TestParallelDeterminism is the harness's core guarantee: the same
// sweep run serially and on an oversubscribed worker pool produces
// byte-identical output.
func TestParallelDeterminism(t *testing.T) {
	serial := ShortParams()
	serial.Parallel = 1
	par := ShortParams()
	par.Parallel = 8

	s1, err := Fig7Hops(serial)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := Fig7Hops(par)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CSV() != s8.CSV() {
		t.Errorf("Fig7Hops CSV differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			s1.CSV(), s8.CSV())
	}
	if s1.String() != s8.String() {
		t.Errorf("Fig7Hops table rendering differs between -parallel 1 and -parallel 8")
	}
}

// TestParallelMetricsParity checks the scratch-and-merge telemetry
// path: the accumulated registry export must not depend on worker
// count or completion order.
func TestParallelMetricsParity(t *testing.T) {
	export := func(parallel int) string {
		p := ShortParams()
		p.Parallel = parallel
		p.Metrics = metrics.New()
		if _, err := Fig7Hops(p); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := p.Metrics.Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := export(1)
	par := export(8)
	if serial == "" {
		t.Fatal("serial export is empty — instrumentation not wired?")
	}
	if serial != par {
		t.Errorf("metrics export differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			serial, par)
	}
}

// TestSweepErrorPropagation: the lowest-index error wins regardless of
// worker scheduling, matching the serial loop's behavior.
func TestSweepErrorPropagation(t *testing.T) {
	errBoom := errors.New("boom")
	for _, parallel := range []int{1, 8} {
		p := ShortParams()
		p.Parallel = parallel
		_, err := sweep(p, 16, func(i int, rp Params) (int, error) {
			if i == 3 || i == 11 {
				return 0, errBoom
			}
			return i, nil
		})
		if !errors.Is(err, errBoom) {
			t.Errorf("parallel=%d: want errBoom, got %v", parallel, err)
		}
	}
}

// TestSweepOrderAndCoverage: every index runs at most once and results
// land at their sweep position.
func TestSweepOrderAndCoverage(t *testing.T) {
	const n = 64
	var calls atomic.Int64
	p := ShortParams()
	p.Parallel = 8
	out, err := sweep(p, n, func(i int, rp Params) (int, error) {
		calls.Add(1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != n {
		t.Errorf("want %d calls, got %d", n, got)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
