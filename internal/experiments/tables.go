package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
)

// TableIRow is one configuration row of Table I (the motivation case
// study on queue/buffer customization).
type TableIRow struct {
	Case         string
	QueueNumPort int
	PktPerQueue  int
	BufferNum    int
	TotalKb      float64
}

// TableI reproduces the paper's Table I: two queue/buffer
// configurations for the 3-switch, 1-enabled-port motivation network.
func TableI() []TableIRow {
	row := func(name string, depth, buffers int) TableIRow {
		q := resource.Queues(depth, 8, 1)
		b := resource.Buffers(buffers, 1)
		return TableIRow{
			Case: name, QueueNumPort: 8, PktPerQueue: depth, BufferNum: buffers,
			TotalKb: q.Kb() + b.Kb(),
		}
	}
	return []TableIRow{
		row("Case 1", 16, 128),
		row("Case 2", 12, 96),
	}
}

// FormatTableI renders Table I like the paper.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Configuration of queue and packet buffer\n")
	fmt.Fprintf(&b, "  %-7s %10s %10s %10s %12s\n", "", "Queue/Port", "Pkt/Queue", "Buffers", "Total BRAM")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7s %10d %10d %10d %10.0fKb\n",
			r.Case, r.QueueNumPort, r.PktPerQueue, r.BufferNum, r.TotalKb)
	}
	if len(rows) == 2 {
		fmt.Fprintf(&b, "  saving: %.0fKb\n", rows[0].TotalKb-rows[1].TotalKb)
	}
	return b.String()
}

// TableIIIColumn is one column group of Table III.
type TableIIIColumn struct {
	Label     string
	Config    core.Config
	Report    *resource.Report
	TotalKb   float64
	Reduction float64 // vs commercial, in percent
}

// TableIII reproduces the paper's Table III: the commercial BCM53154
// configuration against the customized star/linear/ring switches.
func TableIII() ([]TableIIIColumn, error) {
	build := func(label string, cfg core.Config) (TableIIIColumn, error) {
		d, err := core.BuilderFor(cfg, nil).Build()
		if err != nil {
			return TableIIIColumn{}, err
		}
		return TableIIIColumn{Label: label, Config: cfg, Report: d.Report, TotalKb: d.Report.TotalKb()}, nil
	}
	base, err := build("Commercial Switch (4 ports)", core.CommercialProfile())
	if err != nil {
		return nil, err
	}
	cols := []TableIIIColumn{base}
	for _, c := range []struct {
		label string
		ports int
	}{
		{"Customized (Star, 3 ports)", 3},
		{"Customized (Linear, 2 ports)", 2},
		{"Customized (Ring, 1 port)", 1},
	} {
		col, err := build(c.label, core.PaperCustomizedConfig(c.ports))
		if err != nil {
			return nil, err
		}
		col.Reduction = 100 * col.Report.ReductionVs(base.Report)
		cols = append(cols, col)
	}
	return cols, nil
}

// FormatTableIII renders Table III like the paper.
func FormatTableIII(cols []TableIIIColumn) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — Comparison of resource usage under different scenarios\n\n")
	for _, c := range cols {
		fmt.Fprintf(&b, "%s\n", c.Label)
		for _, it := range c.Report.Items {
			fmt.Fprintf(&b, "  %-11s %-6s %-14s %8.0fKb\n", it.Name, it.Width, it.Params, it.Kb())
		}
		if c.Reduction != 0 {
			fmt.Fprintf(&b, "  %-11s %-21s %8.0fKb (-%.2f%%)\n\n", "Total", "", c.TotalKb, c.Reduction)
		} else {
			fmt.Fprintf(&b, "  %-11s %-21s %8.0fKb\n\n", "Total", "", c.TotalKb)
		}
	}
	return b.String()
}
