package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/gptp"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// SyncResult reports the E-SYNC experiment: the prototype's claimed
// sub-50 ns synchronization precision (§IV.A).
type SyncResult struct {
	Nodes          int
	WorstOffset    sim.Time
	SteadyState    sim.Time // worst offset after convergence window
	ConvergedAfter sim.Time
}

// SyncPrecision measures gPTP precision on the 6-switch ring with
// randomized oscillator drifts up to ±50 ppm.
func SyncPrecision(seed uint64) SyncResult {
	engine := sim.NewEngine()
	cfg := gptp.DefaultConfig()
	dom := gptp.NewDomain(engine, cfg)
	rng := sim.NewRand(seed)
	const n = 6
	nodes := make([]*gptp.Node, n)
	for i := 0; i < n; i++ {
		drift := clock.PPB(rng.Int63n(100_000) - 50_000)
		offset := sim.Time(rng.Int63n(int64(sim.Millisecond)))
		if i == 0 {
			drift, offset = 0, 0
		}
		nodes[i] = dom.AddNode(i, drift, offset)
	}
	for i := 0; i < n; i++ {
		dom.Connect(nodes[i], nodes[(i+1)%n], 400*sim.Nanosecond)
	}
	dom.SetGrandmaster(nodes[0])
	dom.Start()

	res := SyncResult{Nodes: n}
	converged := sim.Time(-1)
	// 2 s convergence, then a 1 s steady-state window sampled twice per
	// sync interval.
	for engine.Now() < 3*sim.Second {
		engine.RunFor(cfg.SyncInterval / 2)
		off := dom.MaxAbsOffset()
		if off > res.WorstOffset {
			res.WorstOffset = off
		}
		if converged < 0 && off < 50*sim.Nanosecond {
			converged = engine.Now()
		}
		if engine.Now() > 2*sim.Second && off > res.SteadyState {
			res.SteadyState = off
		}
	}
	if converged >= 0 {
		res.ConvergedAfter = converged
	}
	return res
}

// ITPRow is one strategy of the ITP ablation.
type ITPRow struct {
	Strategy   string
	Occupancy  int // worst packets per (port, slot) = required depth
	QueueDepth int // provisioned (with margin)
	BufferNum  int
	QueueBufKb float64 // queue + buffer BRAM per port
}

// ITPAblation quantifies what Injection Time Planning buys: the queue
// depth (and thus buffer count and BRAM) required with naive all-at-
// zero injection versus planned offsets, for the paper's 1024-flow
// ring workload.
func ITPAblation(p Params) ([]ITPRow, error) {
	slot := 65 * sim.Microsecond

	row := func(strategy string, occupancy int) ITPRow {
		depth := occupancy + (occupancy+1)/2 // 50% margin
		buffers := depth * 8
		kb := resource.Queues(depth, 8, 1).Kb() + resource.Buffers(buffers, 1).Kb()
		return ITPRow{
			Strategy: strategy, Occupancy: occupancy,
			QueueDepth: depth, BufferNum: buffers, QueueBufKb: kb,
		}
	}

	// The full strategy spectrum of §V: naive zero offsets, blind
	// round-robin and random spreading, and the greedy ITP planner.
	// Each sweep point regenerates its own spec set so the points stay
	// self-contained under the parallel harness.
	strategies := []itp.Strategy{itp.StrategyNaive, itp.StrategyRandom,
		itp.StrategyRoundRobin, itp.StrategyGreedy}
	return sweep(p, len(strategies), func(i int, rp Params) (ITPRow, error) {
		st := strategies[i]
		topo := topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
		}
		specs := flows.GenerateTS(flows.TSParams{
			Count:    rp.TSFlows,
			Period:   10 * sim.Millisecond,
			WireSize: 64,
			VID:      1,
			Hosts: func(i int) (int, int) {
				src := i % 6
				return 100 + src, 100 + (src+2)%6
			},
			Seed: rp.Seed,
		})
		if err := core.BindPaths(topo, specs); err != nil {
			return ITPRow{}, err
		}
		plan, err := itp.ComputeWith(specs, slot, nil, st, rp.Seed)
		if err != nil {
			return ITPRow{}, err
		}
		label := st.String()
		switch st {
		case itp.StrategyNaive:
			label = "naive (offset 0)"
		case itp.StrategyGreedy:
			label = "ITP (greedy)"
		}
		return row(label, plan.MaxOccupancy), nil
	})
}

// FormatITP renders the ablation rows.
func FormatITP(rows []ITPRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-ITP — Injection Time Planning ablation (per enabled port)\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s %10s %12s\n", "strategy", "occupancy", "depth", "buffers", "queue+buf")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %10d %10d %10d %10.0fKb\n",
			r.Strategy, r.Occupancy, r.QueueDepth, r.BufferNum, r.QueueBufKb)
	}
	return b.String()
}

// PlatformRow compares cost models for one configuration.
type PlatformRow struct {
	Platform string
	TotalKb  float64
}

// PlatformAblation prices the ring-customized configuration on the
// FPGA BRAM model versus the exact-size ASIC SRAM model, demonstrating
// the platform-independent APIs driving platform-specific costs.
func PlatformAblation() ([]PlatformRow, error) {
	cfg := core.PaperCustomizedConfig(1)
	var rows []PlatformRow
	for _, pf := range []core.Platform{core.FPGA{}, core.ASIC{}} {
		d, err := core.BuilderFor(cfg, pf).Build()
		if err != nil {
			return nil, err
		}
		rows = append(rows, PlatformRow{Platform: pf.Name(), TotalKb: d.Report.TotalKb()})
	}
	return rows, nil
}
