package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// DeadlineRow is one slot-size point of the deadline analysis.
type DeadlineRow struct {
	Slot       sim.Time
	MeanLat    sim.Time
	MaxLat     sim.Time
	MissRate   float64  // fraction of received TS frames past their deadline
	TightBound sim.Time // Eq. (1) upper bound (hop+1)·slot
}

// DeadlineStudy connects the slot-size sweep of Fig. 7(c) to the
// paper's IEC 60802-guided deadline set {1,2,4,8 ms}: CQF's upper bound
// (hop+1)·slot must stay below the tightest deadline. With 3-switch
// paths the 65 µs slot leaves three orders of magnitude of margin;
// pushing the slot toward 260 µs and beyond erodes it until the 1 ms
// deadline class starts missing.
func DeadlineStudy(p Params) ([]DeadlineRow, error) {
	slots := []sim.Time{65 * sim.Microsecond, 130 * sim.Microsecond,
		260 * sim.Microsecond, 390 * sim.Microsecond, 520 * sim.Microsecond}
	return sweep(p, len(slots), func(i int, rp Params) (DeadlineRow, error) {
		slot := slots[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3, slot: slot})
		if err != nil {
			return DeadlineRow{}, err
		}
		row := rb.run(rp, 0)
		missRate := 0.0
		if row.Received > 0 {
			missRate = float64(row.DeadlineMisses) / float64(row.Received)
		}
		return DeadlineRow{
			Slot:       slot,
			MeanLat:    row.Mean,
			MaxLat:     row.Max,
			MissRate:   missRate,
			TightBound: 4 * slot,
		}, nil
	})
}

// FormatDeadline renders the study.
func FormatDeadline(rows []DeadlineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-DEADLINE — slot size vs deadline misses (deadlines {1,2,4,8}ms, 3-switch paths)\n")
	fmt.Fprintf(&b, "  %-8s %10s %10s %12s %10s\n", "slot", "mean(µs)", "max(µs)", "bound(µs)", "misses")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8v %10.1f %10.1f %12.1f %9.2f%%\n",
			r.Slot, r.MeanLat.Micros(), r.MaxLat.Micros(), r.TightBound.Micros(),
			100*r.MissRate)
	}
	return b.String()
}
