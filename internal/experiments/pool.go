package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// The parallel sweep harness.
//
// Every experiment is an x-axis sweep whose points are self-contained
// build-and-run pairs: each point constructs its own sim.Engine,
// topology, flow set and network from (Params, index) alone, so points
// share no mutable state and can run on any OS thread. sweep fans the
// points out over a bounded worker pool and collects results back in
// sweep order, which makes the output — Series rows, CSV bytes,
// formatted tables — independent of worker count and completion order.
//
// Telemetry isolation: handle operations (Counter.Inc etc.) are
// deliberately unsynchronized, so workers must never share a live
// registry. When Params.Metrics is set, every point runs against its
// own scratch registry and the harness folds the scratch registries
// into Params.Metrics in sweep order after the pool drains
// (metrics.Registry.Merge). The serial path (Parallel=1) goes through
// the identical scratch-and-merge sequence, so serial and parallel
// exports are byte-identical by construction.

// FanOut runs fn(i) for every i in [0, n) across a pool of workers
// goroutines, claiming indices atomically in ascending order. When fn
// returns false no further indices are claimed — work already claimed
// by other workers still finishes — which is how a wall-clock-budgeted
// caller (the chaos campaign) stops a sweep midway. fn must be
// self-contained: it runs concurrently with other indices and must not
// share unsynchronized mutable state.
func FanOut(workers, n int, fn func(i int) bool) {
	FanOutCtx(context.Background(), workers, n, fn)
}

// FanOutCtx is FanOut under a context: once ctx is done no further
// indices are claimed, exactly as if fn had returned false. Work
// already claimed still finishes — cancellation is a stop signal, not
// an abort — so fn never observes a torn half-run and the caller can
// rely on every started index having completed when FanOutCtx returns.
// It returns ctx.Err() when cancellation cut the sweep short and nil
// when every index was claimed.
func FanOutCtx(ctx context.Context, workers, n int, fn func(i int) bool) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next, done atomic.Int64
	next.Store(-1)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				ok := fn(i)
				done.Add(1)
				if !ok {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && int(done.Load()) < n {
		return err
	}
	return nil
}

// workers resolves the sweep fan-out width from Params.
func (p Params) workers() int {
	if p.Parallel > 0 {
		return p.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// rowParams derives the Params a single sweep point runs under: the
// same workload scale and seed, but an isolated scratch metrics
// registry (when telemetry is on) so concurrent points never touch the
// same cells.
func rowParams(p Params) Params {
	rp := p
	if p.Metrics != nil {
		rp.Metrics = metrics.New()
	}
	return rp
}

// sweep runs fn(i, rowParams) for every i in [0, n) across the worker
// pool and returns the results in sweep order. fn must be
// self-contained per the package contract above. On error the
// lowest-index error wins (matching what a serial loop would have
// returned), scratch telemetry of rows past it is discarded, and the
// partial prefix is still merged so serial and parallel error paths
// leave identical registry state.
func sweep[T any](p Params, n int, fn func(i int, rp Params) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	var regs []*metrics.Registry
	if p.Metrics != nil {
		regs = make([]*metrics.Registry, n)
	}

	runOne := func(i int, rp Params) {
		if regs != nil {
			regs[i] = rp.Metrics
		}
		out[i], errs[i] = fn(i, rp)
	}

	if w := min(p.workers(), n); w <= 1 {
		for i := 0; i < n; i++ {
			runOne(i, rowParams(p))
			if errs[i] != nil {
				break // a serial sweep stops at the first error
			}
		}
	} else {
		FanOut(w, n, func(i int) bool {
			runOne(i, rowParams(p))
			return true
		})
	}

	firstErr := -1
	for i, err := range errs {
		if err != nil {
			firstErr = i
			break
		}
	}
	if p.Metrics != nil {
		for i, reg := range regs {
			if firstErr >= 0 && i >= firstErr {
				break
			}
			if reg != nil {
				p.Metrics.Merge(reg)
			}
		}
	}
	if firstErr >= 0 {
		return nil, errs[firstErr]
	}
	return out, nil
}
