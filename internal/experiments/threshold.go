package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// ThresholdRow is one provisioning point of the threshold study.
type ThresholdRow struct {
	QueueDepth int
	BufferNum  int
	QueueBufKb float64
	TSLossRate float64
	MeanLat    sim.Time
	Jitter     sim.Time
	// HighWater is the worst TS queue occupancy actually observed.
	HighWater int
}

// ThresholdStudy substantiates the paper's motivation claim behind
// Table I: "the resource parameters in Case 1 are larger than the
// traffic-dependent threshold and the extra memory resources are free."
// It sweeps the queue depth (buffers = depth × queues) below and above
// the ITP-planned occupancy and reports where TS loss appears. The
// expected shape: zero loss and unchanged latency above the threshold,
// loss below it.
func ThresholdStudy(p Params) ([]ThresholdRow, error) {
	depths := []int{1, 2, 3, 4, 6, 8, 12, 16}
	return sweep(p, len(depths), func(i int, rp Params) (ThresholdRow, error) {
		depth := depths[i]
		rb, err := buildRing(benchSpec{
			p: rp, hops: 3,
			queueDepth: depth,
			bufferNum:  depth * 8,
			rcMbps:     100,
			beMbps:     100,
		})
		if err != nil {
			return ThresholdRow{}, err
		}
		row := rb.run(rp, 0)
		kb := resource.Queues(depth, 8, 1).Kb() + resource.Buffers(depth*8, 1).Kb()
		return ThresholdRow{
			QueueDepth: depth,
			BufferNum:  depth * 8,
			QueueBufKb: kb,
			TSLossRate: row.LossRate,
			MeanLat:    row.Mean,
			Jitter:     row.Jitter,
			HighWater:  rb.Net.MaxQueueHighWater(),
		}, nil
	})
}

// NoITPStudy runs the same network with planned versus naive (zero)
// injection offsets on the same small provisioning, showing that ITP is
// what keeps the customized depth feasible at run time.
func NoITPStudy(p Params, depth int) (planned, naive ThresholdRow, err error) {
	rows, err := sweep(p, 2, func(i int, rp Params) (ThresholdRow, error) {
		rb, err := buildRing(benchSpec{
			p: rp, hops: 3,
			queueDepth: depth,
			bufferNum:  depth * 8,
			noITP:      i == 1,
		})
		if err != nil {
			return ThresholdRow{}, err
		}
		row := rb.run(rp, 0)
		return ThresholdRow{
			QueueDepth: depth,
			BufferNum:  depth * 8,
			TSLossRate: row.LossRate,
			MeanLat:    row.Mean,
			Jitter:     row.Jitter,
			HighWater:  rb.Net.MaxQueueHighWater(),
		}, nil
	})
	if err != nil {
		return ThresholdRow{}, ThresholdRow{}, err
	}
	return rows[0], rows[1], nil
}

// FormatThreshold renders the study.
func FormatThreshold(rows []ThresholdRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-THRESHOLD — queue/buffer provisioning vs TS loss (ring, 3 hops, 100+100 Mbps bg)\n")
	fmt.Fprintf(&b, "  %6s %8s %12s %8s %10s %10s %10s\n",
		"depth", "buffers", "queue+buf", "loss", "mean(µs)", "jitter(µs)", "highwater")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %6d %8d %10.0fKb %7.2f%% %10.1f %10.2f %10d\n",
			r.QueueDepth, r.BufferNum, r.QueueBufKb, 100*r.TSLossRate,
			r.MeanLat.Micros(), r.Jitter.Micros(), r.HighWater)
	}
	return b.String()
}
